package distec

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/distec/distec/internal/bench"
)

// absentEdges returns count node pairs that are not edges of g, in
// deterministic order.
func absentEdges(t *testing.T, g *Graph, count int) [][2]int {
	t.Helper()
	var out [][2]int
	for u := 0; u < g.N() && len(out) < count; u++ {
		for v := u + 1; v < g.N() && len(out) < count; v++ {
			if _, ok := g.HasEdge(u, v); !ok {
				out = append(out, [2]int{u, v})
			}
		}
	}
	if len(out) < count {
		t.Fatalf("graph too dense: only %d absent pairs", len(out))
	}
	return out
}

// TestDynamicSnapshotRoundTrip snapshots live sessions mid-stream across
// the palette regimes and restores them: state, sequence number, and future
// behavior must all survive the round trip.
func TestDynamicSnapshotRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		opts func(g *Graph) Options
	}{
		{"auto-2d-1", func(*Graph) Options { return Options{} }},
		{"vizing-auto-d+1", func(*Graph) Options { return Options{Algorithm: Vizing} }},
		{"fixed-tight", func(g *Graph) Options { return Options{Palette: g.MaxEdgeDegree() + 2} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := RandomRegular(32, 4, 5)
			opts := tc.opts(g)
			d, err := NewDynamic(g, DynamicOptions{Options: opts})
			if err != nil {
				t.Fatal(err)
			}
			ops := bench.ChurnCapped(g, 60, g.MaxDegree(), 11)
			for _, op := range ops {
				var err error
				if op.Delete {
					err = d.Delete(op.U, op.V)
				} else {
					_, _, err = d.Insert(op.U, op.V)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			var buf bytes.Buffer
			if err := d.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := NewDynamicFromSnapshot(bytes.NewReader(buf.Bytes()), DynamicOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Verify(); err != nil {
				t.Fatalf("restored session: %v", err)
			}
			if r.Seq() != d.Seq() {
				t.Fatalf("seq %d, want %d", r.Seq(), d.Seq())
			}
			if r.Palette() != d.Palette() || r.Edges() != d.Edges() {
				t.Fatalf("palette/edges %d/%d, want %d/%d", r.Palette(), r.Edges(), d.Palette(), d.Edges())
			}
			want, got := d.Colors(), r.Colors()
			for e := range want {
				if want[e] != got[e] {
					t.Fatalf("edge %d: color %d, want %d", e, got[e], want[e])
				}
			}
			// Both sessions must evolve identically from here (deterministic
			// solvers, identical state and degrees).
			more := bench.ChurnCapped(g, 40, g.MaxDegree(), 13)
			for i, op := range more {
				if op.Delete {
					e1, e2 := d.Delete(op.U, op.V), r.Delete(op.U, op.V)
					if (e1 == nil) != (e2 == nil) {
						t.Fatalf("op %d diverged: %v vs %v", i, e1, e2)
					}
				} else {
					id1, c1, e1 := d.Insert(op.U, op.V)
					id2, c2, e2 := r.Insert(op.U, op.V)
					if (e1 == nil) != (e2 == nil) || id1 != id2 || c1 != c2 {
						t.Fatalf("op %d diverged: (%d,%d,%v) vs (%d,%d,%v)", i, id1, c1, e1, id2, c2, e2)
					}
				}
			}
			if err := r.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDynamicSnapshotRejectsCorrupt flips one byte anywhere in a snapshot:
// restoration must fail, never yield a silently wrong session.
func TestDynamicSnapshotRejectsCorrupt(t *testing.T) {
	g := Cycle(10)
	d, err := NewDynamic(g, DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, i := range []int{0, 8, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x10
		if _, err := NewDynamicFromSnapshot(bytes.NewReader(bad), DynamicOptions{}); err == nil {
			t.Fatalf("byte %d: corrupt snapshot accepted", i)
		}
	}
	if _, err := NewDynamicFromSnapshot(bytes.NewReader(data[:len(data)-3]), DynamicOptions{}); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// TestApplyBatchAppliedPrefix is the regression test for the partial-
// failure contract: a mid-batch failure must return the results of exactly
// the applied prefix, with the coloring reflecting it and nothing after it.
func TestApplyBatchAppliedPrefix(t *testing.T) {
	run := func(t *testing.T, pool *Pool) {
		g := RandomRegular(32, 4, 5)
		d, err := NewDynamic(g, DynamicOptions{Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		fresh := absentEdges(t, g, 2)
		u0, v0 := g.Endpoints(0)
		batch := []Update{
			{Op: InsertEdge, U: fresh[0][0], V: fresh[0][1]},
			{Op: DeleteEdge, U: u0, V: v0},
			{Op: InsertEdge, U: u0, V: v0},                   // fails: just-deleted then re-inserted is fine...
			{Op: InsertEdge, U: fresh[0][0], V: fresh[0][1]}, // ...this duplicate fails
			{Op: InsertEdge, U: fresh[1][0], V: fresh[1][1]}, // never reached
		}
		results, err := d.ApplyBatch(context.Background(), batch)
		if err == nil {
			t.Fatal("duplicate insert did not fail the batch")
		}
		if len(results) != 3 {
			t.Fatalf("applied prefix of %d results, want 3", len(results))
		}
		if d.Seq() != 1 {
			t.Fatalf("seq %d after one partially-applied batch, want 1", d.Seq())
		}
		// The coloring reflects exactly the prefix: fresh[0] inserted, edge
		// 0 deleted then revived, fresh[1] untouched.
		if _, ok := g.HasEdge(fresh[1][0], fresh[1][1]); ok {
			t.Fatal("update after the failure point was applied")
		}
		if d.Color(results[0].Edge) < 0 {
			t.Fatal("prefix insert lost its color")
		}
		if d.Color(0) != results[2].Color {
			t.Fatalf("revived edge colored %d, want %d", d.Color(0), results[2].Color)
		}
		if err := d.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("one-shot", func(t *testing.T) { run(t, nil) })
	t.Run("pool", func(t *testing.T) {
		pool := NewPool(PoolOptions{Workers: 2})
		defer pool.Close()
		run(t, pool)
	})
	t.Run("admission-failure-applies-nothing", func(t *testing.T) {
		pool := NewPool(PoolOptions{Workers: 1})
		g := Cycle(8)
		d, err := NewDynamic(g, DynamicOptions{Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		pool.Close()
		results, err := d.ApplyBatch(context.Background(), []Update{{Op: InsertEdge, U: 0, V: 2}})
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("err = %v, want ErrPoolClosed", err)
		}
		if results != nil {
			t.Fatalf("admission failure returned results: %v", results)
		}
		if d.Seq() != 0 {
			t.Fatalf("seq %d, want 0", d.Seq())
		}
	})
}

// TestDynamicJournal pins the journal contract: one call per applied batch,
// sequence numbers contiguous, Applied exactly the applied prefix, the
// snapshot capture consistent with the batch, and journal failures surfaced
// as ErrJournal without losing the in-memory batch.
func TestDynamicJournal(t *testing.T) {
	g := RandomRegular(32, 4, 5)
	d, err := NewDynamic(g, DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		seq     uint64
		applied []Update
		snap    []byte
	}
	var journal []entry
	d.SetJournal(func(b JournalBatch) error {
		var buf bytes.Buffer
		if err := b.Snapshot(&buf); err != nil {
			return err
		}
		journal = append(journal, entry{b.Seq, append([]Update(nil), b.Applied...), buf.Bytes()})
		return nil
	})
	fresh := absentEdges(t, g, 4)
	ok := []Update{
		{Op: InsertEdge, U: fresh[0][0], V: fresh[0][1]},
		{Op: InsertEdge, U: fresh[1][0], V: fresh[1][1]},
	}
	if _, err := d.ApplyBatch(context.Background(), ok); err != nil {
		t.Fatal(err)
	}
	failing := []Update{
		{Op: InsertEdge, U: fresh[2][0], V: fresh[2][1]},
		{Op: InsertEdge, U: fresh[0][0], V: fresh[0][1]}, // duplicate: fails
	}
	if _, err := d.ApplyBatch(context.Background(), failing); err == nil {
		t.Fatal("duplicate insert did not fail")
	}
	if len(journal) != 2 {
		t.Fatalf("%d journal entries, want 2", len(journal))
	}
	if journal[0].seq != 1 || journal[1].seq != 2 {
		t.Fatalf("journal seqs %d,%d", journal[0].seq, journal[1].seq)
	}
	if len(journal[0].applied) != 2 || len(journal[1].applied) != 1 {
		t.Fatalf("journal applied lengths %d,%d, want 2,1 (exact prefix)", len(journal[0].applied), len(journal[1].applied))
	}
	if journal[1].applied[0] != failing[0] {
		t.Fatalf("journaled prefix %+v, want %+v", journal[1].applied[0], failing[0])
	}
	// The captured snapshot is the state with exactly that batch applied:
	// restoring the second entry must reproduce the live session.
	r, err := NewDynamicFromSnapshot(bytes.NewReader(journal[1].snap), DynamicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq() != 2 {
		t.Fatalf("restored seq %d, want 2", r.Seq())
	}
	want, got := d.Colors(), r.Colors()
	for e := range want {
		if want[e] != got[e] {
			t.Fatalf("edge %d: restored color %d, want %d", e, got[e], want[e])
		}
	}

	// A failing journal surfaces as ErrJournal; the batch stays applied.
	d.SetJournal(func(JournalBatch) error { return fmt.Errorf("disk full") })
	results, err := d.ApplyBatch(context.Background(), []Update{{Op: InsertEdge, U: fresh[3][0], V: fresh[3][1]}})
	if !errors.Is(err, ErrJournal) {
		t.Fatalf("err = %v, want ErrJournal", err)
	}
	if len(results) != 1 || d.Color(results[0].Edge) != results[0].Color {
		t.Fatalf("journal failure lost the applied batch: %v", results)
	}
	if d.Seq() != 3 {
		t.Fatalf("seq %d, want 3", d.Seq())
	}
}

// TestDynamicClose is the regression test for the delete/update race: a
// closed session fails late batches with ErrSessionClosed and stops an
// in-flight batch at its next update boundary, and never journals after
// close.
func TestDynamicClose(t *testing.T) {
	t.Run("late-batch", func(t *testing.T) {
		g := Cycle(8)
		d, err := NewDynamic(g, DynamicOptions{})
		if err != nil {
			t.Fatal(err)
		}
		journaled := 0
		d.SetJournal(func(JournalBatch) error { journaled++; return nil })
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		results, err := d.ApplyBatch(context.Background(), []Update{{Op: InsertEdge, U: 0, V: 2}})
		if !errors.Is(err, ErrSessionClosed) || results != nil {
			t.Fatalf("late batch: results=%v err=%v", results, err)
		}
		if _, _, err := d.Insert(0, 2); !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("late insert: %v", err)
		}
		if err := d.Delete(0, 1); !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("late delete: %v", err)
		}
		if journaled != 0 {
			t.Fatalf("closed session journaled %d batches", journaled)
		}
		// Read accessors keep working; Close is idempotent.
		if err := d.Verify(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("in-flight-batch", func(t *testing.T) {
		g := RandomRegular(1000, 8, 3)
		d, err := NewDynamic(g, DynamicOptions{})
		if err != nil {
			t.Fatal(err)
		}
		journaled := 0
		d.SetJournal(func(JournalBatch) error { journaled++; return nil })
		ops := bench.Churn(g, 200000, 7)
		batch := make([]Update, len(ops))
		for i, op := range ops {
			batch[i] = Update{Op: InsertEdge, U: op.U, V: op.V}
			if op.Delete {
				batch[i].Op = DeleteEdge
			}
		}
		done := make(chan struct{})
		var results []UpdateResult
		var apErr error
		go func() {
			defer close(done)
			results, apErr = d.ApplyBatch(context.Background(), batch)
		}()
		d.Close() // races with the batch; both outcomes below are legal
		<-done
		if apErr == nil {
			if len(results) != len(batch) {
				t.Fatalf("clean finish with %d/%d results", len(results), len(batch))
			}
		} else {
			if !errors.Is(apErr, ErrSessionClosed) {
				t.Fatalf("err = %v, want ErrSessionClosed", apErr)
			}
			if len(results) >= len(batch) {
				t.Fatalf("all %d updates applied yet batch failed", len(results))
			}
			if journaled != 0 {
				t.Fatal("interrupted batch was journaled")
			}
		}
		// Whatever the race outcome, the maintained coloring is proper.
		if err := d.Verify(); err != nil {
			t.Fatal(err)
		}
	})
}
