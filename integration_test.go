package distec

import (
	"testing"
	"testing/quick"
)

// Integration tests: the public API end to end, across algorithms, graph
// families, list shapes and engines.

func TestExtendColoring(t *testing.T) {
	g := Complete(10)
	c := 2*g.MaxDegree() - 1
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = palette
	}
	// Fix a valid partial coloring with PR01 on a subset... simplest: color
	// everything, then erase half and re-extend.
	full, err := ColorEdges(g, Options{Algorithm: PR01})
	if err != nil {
		t.Fatal(err)
	}
	partial := make([]int, g.M())
	for e := range partial {
		if e%2 == 0 {
			partial[e] = full.Colors[e]
		} else {
			partial[e] = -1
		}
	}
	res, err := ExtendColoring(g, partial, lists, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	for e := range partial {
		if partial[e] >= 0 && res.Colors[e] != partial[e] {
			t.Fatalf("fixed edge %d changed color %d -> %d", e, partial[e], res.Colors[e])
		}
	}
}

func TestExtendColoringRejectsImproperPartial(t *testing.T) {
	g := Star(4)
	partial := []int{3, 3, -1} // two conflicting fixed edges
	lists := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	if _, err := ExtendColoring(g, partial, lists, 4, Options{}); err == nil {
		t.Fatal("accepted improper partial coloring")
	}
}

func TestExtendColoringAllFixed(t *testing.T) {
	g := Path(4)
	partial := []int{0, 1, 0}
	lists := [][]int{{0}, {1}, {0}}
	res, err := ExtendColoring(g, partial, lists, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for e, want := range partial {
		if res.Colors[e] != want {
			t.Fatalf("edge %d: %d, want %d", e, res.Colors[e], want)
		}
	}
}

// Cross-algorithm agreement: all deterministic algorithms must produce
// valid colorings with the same palette on the same instance.
func TestCrossAlgorithmMatrix(t *testing.T) {
	graphs := map[string]*Graph{
		"torus":       Torus(6, 6),
		"hypercube":   Hypercube(5),
		"cliquechain": CliqueChain(4, 6),
		"caterpillar": Caterpillar(8, 4),
		"geometric":   RandomGeometric(120, 0.15, 3),
	}
	algs := []Algorithm{BKO, PR01, GreedyClasses, Randomized}
	for name, g := range graphs {
		for _, alg := range algs {
			t.Run(name+"/"+string(alg), func(t *testing.T) {
				res, err := ColorEdges(g, Options{Algorithm: alg, Seed: 13})
				if err != nil {
					t.Fatalf("%v", err)
				}
				if err := Verify(g, res.Colors); err != nil {
					t.Fatal(err)
				}
				if res.ColorsUsed > res.Palette {
					t.Fatalf("used %d > palette %d", res.ColorsUsed, res.Palette)
				}
			})
		}
	}
}

// Property: for random instances, BKO and PR01 both solve, and round counts
// are positive and finite.
func TestPublicAPIProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNP(40, 0.12, seed)
		if g.M() < 2 {
			return true
		}
		for _, alg := range []Algorithm{BKO, PR01} {
			res, err := ColorEdges(g, Options{Algorithm: alg})
			if err != nil {
				return false
			}
			if Verify(g, res.Colors) != nil || res.Rounds <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// The BKO diagnostics must be self-consistent.
func TestDiagnosticsConsistency(t *testing.T) {
	g := RandomRegular(96, 12, 17)
	res, err := ColorEdges(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diagnostics
	if d == nil {
		t.Fatal("no diagnostics")
	}
	// SweepDegrees records every sweep iteration including the final
	// base-case one, so it is OuterSweeps or OuterSweeps+1 entries.
	if len(d.SweepDegrees) < d.OuterSweeps || len(d.SweepDegrees) > d.OuterSweeps+1 {
		t.Fatalf("sweeps %d vs degree trace length %d", d.OuterSweeps, len(d.SweepDegrees))
	}
	if d.DefectiveCalls < d.OuterSweeps {
		t.Fatalf("defective calls %d < sweeps %d", d.DefectiveCalls, d.OuterSweeps)
	}
	for i := 1; i < len(d.SweepDegrees); i++ {
		if d.SweepDegrees[i] >= d.SweepDegrees[i-1] {
			t.Fatalf("sweep degrees not decreasing: %v", d.SweepDegrees)
		}
	}
}

// Round monotonicity sanity across palette sizes: a larger palette can only
// make the problem easier (never err), and colors stay within it.
func TestPaletteSweep(t *testing.T) {
	g := RandomRegular(64, 8, 23)
	for _, c := range []int{g.MaxEdgeDegree() + 1, 2*g.MaxDegree() - 1, 4 * g.MaxDegree()} {
		res, err := ColorEdges(g, Options{Palette: c})
		if err != nil {
			t.Fatalf("palette %d: %v", c, err)
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Fatalf("palette %d: %v", c, err)
		}
		for _, col := range res.Colors {
			if col >= c {
				t.Fatalf("palette %d: color %d escaped", c, col)
			}
		}
	}
}
