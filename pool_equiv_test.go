package distec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/distec/distec/internal/local"
)

// TestPoolEquivalence is the serving-layer counterpart of
// TestEngineEquivalence: at least 32 simultaneous jobs — all six
// algorithms (the sequential vizing included: its jobs run inside the
// pool's admission/accounting without ever touching the lanes), mixed sizes
// spanning every pool route, some cancelled mid-run — through ONE shared
// pool, under the race detector in CI. Every job that completes must verify
// and be bit-identical (colors, rounds, messages) to a one-shot sequential
// rerun; every cancelled job must fail with its context's error.
func TestPoolEquivalence(t *testing.T) {
	// SmallJob 300 forces the larger workloads onto the sharded routes
	// (fanout with 4 lanes) while the small ones take the sequential lane.
	// The cache is off so every job exercises a computation path (several
	// jobs repeat a (graph, options) pair; the cache has its own tests).
	pool := NewPool(PoolOptions{Workers: 4, QueueDepth: 48, SmallJob: 300, CacheSize: -1})
	defer pool.Close()

	algorithms := []Algorithm{BKO, BKOTheory, PR01, GreedyClasses, Randomized, Vizing}
	graphs := []*Graph{
		Cycle(64),
		RandomRegular(48, 6, 17),
		CompleteBipartite(9, 7),
		GNP(40, 0.12, 23),
		RandomTree(50, 29),
		RandomRegular(220, 8, 9), // 880 edge entities: above SmallJob
	}

	type jobSpec struct {
		name        string
		g           *Graph
		alg         Algorithm
		cancelAfter time.Duration // 0: run to completion
	}
	var jobs []jobSpec
	for gi, g := range graphs {
		for ai, alg := range algorithms {
			j := jobSpec{name: fmt.Sprintf("g%d/%s", gi, alg), g: g, alg: alg}
			if (gi+ai)%5 == 4 {
				// A handful of jobs get cancelled mid-run (stagger the
				// cancellation points across the batch).
				j.cancelAfter = time.Duration(1+gi+ai) * time.Millisecond
			}
			jobs = append(jobs, j)
		}
	}
	// Two doomed jobs: an already-expired deadline and an instant cancel.
	jobs = append(jobs,
		jobSpec{name: "expired/bko", g: graphs[5], alg: BKO, cancelAfter: -1},
		jobSpec{name: "instant/pr01", g: graphs[5], alg: PR01, cancelAfter: time.Nanosecond},
	)
	if len(jobs) < 32 {
		t.Fatalf("only %d jobs, want ≥32", len(jobs))
	}

	type outcome struct {
		res *Result
		err error
	}
	outcomes := make([]outcome, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j jobSpec) {
			defer wg.Done()
			ctx := context.Background()
			switch {
			case j.cancelAfter < 0:
				var cancel context.CancelFunc
				ctx, cancel = context.WithDeadline(ctx, time.Now().Add(-time.Second))
				defer cancel()
			case j.cancelAfter > 0:
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, j.cancelAfter)
				defer cancel()
			}
			res, err := pool.ColorEdges(ctx, j.g, Options{Algorithm: j.alg, Seed: 5})
			outcomes[i] = outcome{res, err}
		}(i, j)
	}
	wg.Wait()

	completed, cancelled := 0, 0
	for i, j := range jobs {
		o := outcomes[i]
		if o.err != nil {
			if !errors.Is(o.err, context.Canceled) && !errors.Is(o.err, context.DeadlineExceeded) {
				t.Fatalf("%s: unexpected error %v", j.name, o.err)
			}
			if j.cancelAfter == 0 {
				t.Fatalf("%s: cancelled without a cancellation", j.name)
			}
			cancelled++
			continue
		}
		completed++
		if err := Verify(j.g, o.res.Colors); err != nil {
			t.Fatalf("%s: invalid coloring: %v", j.name, err)
		}
		want, err := ColorEdges(j.g, Options{Algorithm: j.alg, Seed: 5})
		if err != nil {
			t.Fatalf("%s: sequential rerun: %v", j.name, err)
		}
		if o.res.Rounds != want.Rounds || o.res.Messages != want.Messages {
			t.Fatalf("%s: stats %d/%d, want %d/%d", j.name, o.res.Rounds, o.res.Messages, want.Rounds, want.Messages)
		}
		for e := range want.Colors {
			if o.res.Colors[e] != want.Colors[e] {
				t.Fatalf("%s: edge %d colored %d, want %d", j.name, e, o.res.Colors[e], want.Colors[e])
			}
		}
	}
	if completed == 0 {
		t.Fatal("no job completed")
	}
	if cancelled == 0 {
		t.Fatal("no job was cancelled — the cancellation path went untested")
	}
	s := pool.Stats()
	if s.Submitted != uint64(len(jobs)) {
		t.Fatalf("stats submitted = %d, want %d", s.Submitted, len(jobs))
	}
	if s.Completed != uint64(completed) || s.Cancelled != uint64(cancelled) || s.Failed != 0 {
		t.Fatalf("stats %+v disagree with completed=%d cancelled=%d", s, completed, cancelled)
	}
	if s.SequentialRuns == 0 || s.FanoutRuns == 0 {
		t.Fatalf("both routes should have been exercised: %+v", s)
	}
}

// fakeInterruptEngine is a local.Engine that also exposes the liveness seam
// vizing polls; Run is never reached by a vizing job.
type fakeInterruptEngine struct{ err error }

func (f fakeInterruptEngine) Name() string { return "fake-interrupt" }
func (f fakeInterruptEngine) Run(*local.Topology, local.Factory, *local.Options) (local.Stats, error) {
	return local.Stats{}, nil
}
func (f fakeInterruptEngine) Interrupt() error { return f.err }

// TestVizingInterruptSeam deterministically pins the liveness plumbing:
// colorOn must poll an engine-provided Interrupt during a vizing run (the
// algorithm executes no protocol Run the per-round hook could stop) and
// surface its error; an engine without the seam — or with a healthy one —
// completes normally.
func TestVizingInterruptSeam(t *testing.T) {
	g := RandomRegular(2000, 8, 3)
	in, err := uniformInstanceFor(g, Options{Algorithm: Vizing})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("job interrupted")
	if _, err := colorOn(g, in, Options{Algorithm: Vizing}, fakeInterruptEngine{err: sentinel}); !errors.Is(err, sentinel) {
		t.Fatalf("interrupting engine: got %v, want the sentinel", err)
	}
	if _, err := colorOn(g, in, Options{Algorithm: Vizing}, fakeInterruptEngine{}); err != nil {
		t.Fatalf("healthy seam: %v", err)
	}
	if _, err := colorOn(g, in, Options{Algorithm: Vizing}, local.Sequential); err != nil {
		t.Fatalf("engine without the seam: %v", err)
	}
}

// TestPoolVizingCancellation drives the same seam through the pool: a
// deadline expiring mid-run (the job is admitted long before 5 ms elapse,
// and a 2·10⁵-edge vizing run takes far longer) aborts the job with the
// context's error instead of letting it occupy its admission slot to
// completion.
func TestPoolVizingCancellation(t *testing.T) {
	pool := NewPool(PoolOptions{Workers: 1, CacheSize: -1})
	defer pool.Close()
	big := RandomRegular(50000, 8, 3) // 2·10⁵ edges: tens of ms of vizing work
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := pool.ColorEdges(ctx, big, Options{Algorithm: Vizing}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-run deadline returned %v, want DeadlineExceeded", err)
	}
	// A live context still completes bit-identically.
	g := RandomRegular(2000, 8, 3)
	res, err := pool.ColorEdges(context.Background(), g, Options{Algorithm: Vizing})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ColorEdges(g, Options{Algorithm: Vizing})
	if err != nil {
		t.Fatal(err)
	}
	for e := range want.Colors {
		if res.Colors[e] != want.Colors[e] {
			t.Fatalf("edge %d: pool %d, one-shot %d", e, res.Colors[e], want.Colors[e])
		}
	}
}

// TestPoolListAndExtend runs the list and extension mirrors through the
// pool and checks bit-identical agreement with the one-shot API.
func TestPoolListAndExtend(t *testing.T) {
	pool := NewPool(PoolOptions{Workers: 2})
	defer pool.Close()
	ctx := context.Background()

	g := RandomRegular(36, 5, 41)
	dbar := g.MaxEdgeDegree()
	c := dbar + 3
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = make([]int, 0, dbar+1)
		for k := 0; k <= dbar; k++ {
			lists[e] = append(lists[e], (e+k)%c)
		}
		sort.Ints(lists[e])
	}
	want, err := ColorEdgesList(g, lists, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pool.ColorEdgesList(ctx, g, lists, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.Messages != want.Messages {
		t.Fatalf("list stats %d/%d, want %d/%d", got.Rounds, got.Messages, want.Rounds, want.Messages)
	}
	for e := range want.Colors {
		if got.Colors[e] != want.Colors[e] {
			t.Fatalf("list edge %d: %d, want %d", e, got.Colors[e], want.Colors[e])
		}
	}

	// Extension: fix half the coloring, complete the rest on the pool.
	palette := 2*g.MaxDegree() - 1
	full := make([]int, g.M())
	fullRes, err := ColorEdges(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	copy(full, fullRes.Colors)
	partial := make([]int, g.M())
	uni := make([]int, palette)
	for i := range uni {
		uni[i] = i
	}
	unilists := make([][]int, g.M())
	for e := range partial {
		unilists[e] = uni
		partial[e] = full[e]
		if e%2 == 0 {
			partial[e] = -1
		}
	}
	wantExt, err := ExtendColoring(g, partial, unilists, palette, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gotExt, err := pool.ExtendColoring(ctx, g, partial, unilists, palette, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, gotExt.Colors); err != nil {
		t.Fatal(err)
	}
	for e := range wantExt.Colors {
		if gotExt.Colors[e] != wantExt.Colors[e] {
			t.Fatalf("extend edge %d: %d, want %d", e, gotExt.Colors[e], wantExt.Colors[e])
		}
	}

	// Invalid input surfaces as an error, not a hang.
	if _, err := pool.ColorEdgesList(ctx, g, lists[:1], c, Options{}); err == nil {
		t.Fatal("accepted truncated lists")
	}
	if s := pool.Stats(); s.Completed == 0 {
		t.Fatalf("stats: %+v", s)
	}
}
