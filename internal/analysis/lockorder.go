package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// newLockOrder builds the lockorder analyzer: a whole-module check that
// two mutexes are never acquired in opposite orders on different call
// chains — the classic AB/BA deadlock, which in this stack would look
// like the session registry lock vs. a per-session lock vs. the WAL
// append lock, each individually correct and jointly fatal.
//
// The analyzer groups acquisitions into lock classes — the declared
// field or variable being locked, e.g. "(edgecolord.session).mu" — and
// builds a directed acquired-while-held graph: an edge A→B means some
// function acquires B (directly, or anywhere down its static call
// chain) while holding A. Any edge that closes a cycle is a deadlock
// candidate, reported at the acquire or call site that induces it; an
// A→A edge is a recursive-acquisition candidate (Go mutexes are not
// reentrant).
//
// Held-lock tracking reuses lockio's conservative model: RLock counts
// as Lock (reader/writer pairs still deadlock against each other),
// deferred unlocks never release, branches do not change the state of
// following statements, and goroutine/closure bodies are skipped. Call
// chains follow only static call-graph edges — interface and
// function-value calls resolve to nothing, so an unresolvable call
// never manufactures a finding. Deliberate exceptions (e.g. an
// address-ordered double acquire) carry //distec:nolint lockorder at
// the reported site.
//
// The check is only sound with every acquisition in view, so it runs in
// Finish and stands down on partial package selections.
func newLockOrder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "builds the module-wide mutex acquired-while-held graph across static call chains and reports cycles as deadlock candidates",
	}
	a.Finish = func(m *Module, pkgs []*Package, cfg Config, report func(Diagnostic)) {
		if len(pkgs) != len(m.Pkgs) {
			return // lock classes span packages; partial views would lie
		}
		s := &lockOrderState{
			m:         m,
			display:   map[*types.Var]string{},
			edgeSeen:  map[[2]*types.Var]bool{},
			summaries: map[*CGNode]map[*types.Var]bool{},
			visiting:  map[*CGNode]bool{},
		}
		g := m.CallGraph()
		for _, pkg := range m.Pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
					s.scanStmts(g.NodeOf(fn), pkg, fd.Body.List, nil)
				}
			}
		}
		s.reportCycles(report)
	}
	return a
}

// loEdge is one acquired-while-held observation: to was acquired while
// from was held, witnessed at pos (via names the callee when the
// acquisition happens down a call chain).
type loEdge struct {
	from, to *types.Var
	pos      token.Pos
	via      string
}

type lockOrderState struct {
	m         *Module
	display   map[*types.Var]string
	edges     []loEdge
	edgeSeen  map[[2]*types.Var]bool
	summaries map[*CGNode]map[*types.Var]bool
	visiting  map[*CGNode]bool
}

// lockClassOf classifies call as an acquire (+1) or release (-1) of a
// declared mutex field/variable, returning the class object and its
// printable name. (nil, 0, "") for everything else.
func lockClassOf(pkg *Package, call *ast.CallExpr) (*types.Var, int, string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, 0, ""
	}
	delta := 0
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return nil, 0, ""
	}
	info := pkg.Info
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil || !isMutexType(tv.Type) {
		return nil, 0, ""
	}
	switch x := unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		v, ok := info.Uses[x.Sel].(*types.Var)
		if !ok {
			return nil, 0, ""
		}
		owner := recvNamed(info, x)
		if owner == "" {
			owner = pkg.Types.Name()
		}
		return v, delta, fmt.Sprintf("(%s).%s", owner, x.Sel.Name)
	case *ast.Ident:
		v, ok := identObj(info, x).(*types.Var)
		if !ok {
			return nil, 0, ""
		}
		return v, delta, pkg.Types.Name() + "." + x.Name
	}
	return nil, 0, ""
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

func (s *lockOrderState) class(pkg *Package, call *ast.CallExpr) (*types.Var, int) {
	v, delta, disp := lockClassOf(pkg, call)
	if v != nil {
		if _, ok := s.display[v]; !ok {
			s.display[v] = disp
		}
	}
	return v, delta
}

// scanStmts mirrors lockio's statement walk, tracking held lock classes
// and recording acquired-while-held edges.
func (s *lockOrderState) scanStmts(node *CGNode, pkg *Package, stmts []ast.Stmt, held []*types.Var) []*types.Var {
	for _, st := range stmts {
		held = s.scanStmt(node, pkg, st, held)
	}
	return held
}

func (s *lockOrderState) scanStmt(node *CGNode, pkg *Package, st ast.Stmt, held []*types.Var) []*types.Var {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := unparen(st.X).(*ast.CallExpr); ok {
			if v, delta := s.class(pkg, call); v != nil {
				if delta > 0 {
					for _, h := range held {
						s.addEdge(h, v, call.Pos(), "")
					}
					return append(held, v)
				}
				return releaseClass(held, v)
			}
		}
		s.checkCallsExpr(pkg, st.X, held)
	case *ast.DeferStmt:
		// Runs at return, outside the scanned order; and a deferred unlock
		// never releases for scanning purposes.
	case *ast.GoStmt:
		// The spawned goroutine does not hold this function's locks.
	case *ast.BlockStmt:
		held = s.scanStmts(node, pkg, st.List, held)
	case *ast.LabeledStmt:
		held = s.scanStmt(node, pkg, st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = s.scanStmt(node, pkg, st.Init, held)
		}
		s.checkCallsExpr(pkg, st.Cond, held)
		s.scanStmts(node, pkg, st.Body.List, held)
		if st.Else != nil {
			s.scanStmt(node, pkg, st.Else, held)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = s.scanStmt(node, pkg, st.Init, held)
		}
		if st.Cond != nil {
			s.checkCallsExpr(pkg, st.Cond, held)
		}
		s.scanStmts(node, pkg, st.Body.List, held)
	case *ast.RangeStmt:
		s.checkCallsExpr(pkg, st.X, held)
		s.scanStmts(node, pkg, st.Body.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = s.scanStmt(node, pkg, st.Init, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(node, pkg, cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(node, pkg, cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				s.scanStmts(node, pkg, cc.Body, held)
			}
		}
	default:
		if len(held) > 0 {
			ast.Inspect(st, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					s.checkCall(pkg, call, held)
				}
				return true
			})
		}
	}
	return held
}

// checkCallsExpr records summary edges for every call inside e made
// while locks are held.
func (s *lockOrderState) checkCallsExpr(pkg *Package, e ast.Expr, held []*types.Var) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			s.checkCall(pkg, call, held)
		}
		return true
	})
}

// checkCall records, for a call made with locks held, an edge from every
// held class to every class the static callee may transitively acquire.
func (s *lockOrderState) checkCall(pkg *Package, call *ast.CallExpr, held []*types.Var) {
	if len(held) == 0 {
		return
	}
	callee, ok := s.m.CallGraph().StaticCallee(call)
	if !ok {
		return // dynamic dispatch: fail safe, no manufactured edges
	}
	for _, v := range s.sortedClasses(s.acquiredEver(callee)) {
		for _, h := range held {
			s.addEdge(h, v, call.Pos(), callee.Fn.Name())
		}
	}
}

// acquiredEver returns every lock class the function may acquire,
// directly or down its static call chain. Memoized; recursion returns
// the empty partial, which terminates cycles (an under-approximation
// only for classes acquired strictly deeper in the cycle — acceptable,
// and strictly fail-safe).
func (s *lockOrderState) acquiredEver(n *CGNode) map[*types.Var]bool {
	if got, ok := s.summaries[n]; ok {
		return got
	}
	if s.visiting[n] {
		return nil
	}
	s.visiting[n] = true
	defer delete(s.visiting, n)
	out := map[*types.Var]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // other goroutines / deferred closures: not this chain
		case *ast.CallExpr:
			if v, delta := s.class(n.Pkg, node); v != nil && delta > 0 {
				out[v] = true
			}
			if callee, ok := s.m.CallGraph().StaticCallee(node); ok {
				for v := range s.acquiredEver(callee) {
					out[v] = true
				}
			}
		}
		return true
	})
	s.summaries[n] = out
	return out
}

func (s *lockOrderState) sortedClasses(set map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if s.display[out[i]] != s.display[out[j]] {
			return s.display[out[i]] < s.display[out[j]]
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}

// addEdge records one acquired-while-held pair; the first witness in
// scan order (deterministic: packages, files, statements) wins.
func (s *lockOrderState) addEdge(from, to *types.Var, pos token.Pos, via string) {
	key := [2]*types.Var{from, to}
	if s.edgeSeen[key] {
		return
	}
	s.edgeSeen[key] = true
	s.edges = append(s.edges, loEdge{from: from, to: to, pos: pos, via: via})
}

func releaseClass(held []*types.Var, v *types.Var) []*types.Var {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == v {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	if len(held) > 0 {
		return held[:len(held)-1]
	}
	return held
}

// reportCycles reports every edge that participates in a cycle of the
// acquired-while-held graph, at its witness position.
func (s *lockOrderState) reportCycles(report func(Diagnostic)) {
	adj := map[*types.Var][]*types.Var{}
	for _, e := range s.edges {
		if e.from != e.to {
			adj[e.from] = append(adj[e.from], e.to)
		}
	}
	reaches := func(from, to *types.Var) bool {
		visited := map[*types.Var]bool{}
		var dfs func(v *types.Var) bool
		dfs = func(v *types.Var) bool {
			if v == to {
				return true
			}
			if visited[v] {
				return false
			}
			visited[v] = true
			for _, next := range adj[v] {
				if dfs(next) {
					return true
				}
			}
			return false
		}
		return dfs(from)
	}
	for _, e := range s.edges {
		var msg string
		switch {
		case e.from == e.to && e.via == "":
			msg = fmt.Sprintf("recursive acquisition: %s is re-acquired while already held (Go mutexes are not reentrant; self-deadlock)", s.display[e.to])
		case e.from == e.to:
			msg = fmt.Sprintf("recursive acquisition: call to %s re-acquires %s while it is held (Go mutexes are not reentrant; self-deadlock)", e.via, s.display[e.to])
		case reaches(e.to, e.from) && e.via == "":
			msg = fmt.Sprintf("lock-order cycle: %s is acquired while %s is held, and another chain acquires them in the opposite order (deadlock candidate)", s.display[e.to], s.display[e.from])
		case reaches(e.to, e.from):
			msg = fmt.Sprintf("lock-order cycle: call to %s acquires %s while %s is held, and another chain acquires them in the opposite order (deadlock candidate)", e.via, s.display[e.to], s.display[e.from])
		default:
			continue
		}
		pos := s.m.Fset.Position(e.pos)
		report(Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column, Message: msg})
	}
}
