package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Catalog markers: the README's metric table sits between these two
// HTML comments, and every backticked snake_case token inside is taken
// as a documented metric name. The metricnames analyzer cross-checks
// that span against the registrations it collected, both directions.
const (
	catalogBegin = "<!-- distecvet:metric-catalog:begin -->"
	catalogEnd   = "<!-- distecvet:metric-catalog:end -->"
)

// metricKinds maps registry method name → index of the first label
// argument (name and help come first; the Func/Histogram variants have
// one extra positional argument before the labels). Label arguments are
// alternating name,value pairs, mirroring Registry.Counter's contract.
var metricKinds = map[string]int{
	"Counter":     2,
	"CounterFunc": 3,
	"Gauge":       2,
	"GaugeFunc":   3,
	"Histogram":   3,
}

// metricFamilies normalizes method → exposition TYPE, the identity the
// runtime registry enforces kind consistency on.
var metricFamilies = map[string]string{
	"Counter": "counter", "CounterFunc": "counter",
	"Gauge": "gauge", "GaugeFunc": "gauge",
	"Histogram": "histogram",
}

var (
	metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*[a-z0-9]$`)
	labelNameRE  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// catalogNameRE extracts documented names from catalog lines: backticked
// lowercase tokens containing at least one underscore (every metric in
// this repo is distec_*-prefixed, so plain backticked words in prose or
// label columns don't collide).
var catalogNameRE = regexp.MustCompile("`([a-z][a-z0-9]*(?:_[a-z0-9]+)+)`")

// metricReg is one registration site collected during Run.
type metricReg struct {
	name, kind string
	// labelSig identifies the series within the family: rendered label
	// name=value pairs, constant-folded where possible. constSig is true
	// when every pair was a compile-time constant, which is what makes
	// duplicate detection sound for this registration.
	labelSig string
	constSig bool
	diag     Diagnostic // position template for Finish-time findings
}

// newMetricNames builds the metricnames analyzer. It collects every
// metric registered against the internal/metrics Registry as a
// compile-time string, validates Prometheus naming (lowercase
// snake_case, counters end in _total), flags duplicate registrations
// and kind conflicts across the whole module, and cross-checks the set
// against the README catalog: an undocumented registration and a stale
// catalog row are both findings, so the docs cannot drift from the
// code.
func newMetricNames() *Analyzer {
	var regs []metricReg
	a := &Analyzer{
		Name: "metricnames",
		Doc:  "validates metric registration names, flags duplicates, and cross-checks the README metric catalog",
	}
	a.Run = func(p *Pass) {
		if hasPathSuffix(p.Pkg.Path, p.Config.MetricsPkgSuffix) {
			return // the registry's own internals are not registrations
		}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if reg := metricRegistration(p, call); reg != nil {
					regs = append(regs, *reg)
				}
				return true
			})
		}
	}
	a.Finish = func(m *Module, pkgs []*Package, cfg Config, report func(Diagnostic)) {
		finishMetricNames(m, cfg, regs, len(pkgs) == len(m.Pkgs), report)
	}
	return a
}

// metricRegistration recognizes r.Counter("name", ...)-style calls on
// the metrics Registry, validates the name inline, and returns the
// registration record (nil for non-registration calls).
func metricRegistration(p *Pass, call *ast.CallExpr) *metricReg {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	labelStart, ok := metricKinds[sel.Sel.Name]
	if !ok {
		return nil
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !hasPathSuffix(fn.Pkg().Path(), p.Config.MetricsPkgSuffix) {
		return nil
	}
	if fn.Type().(*types.Signature).Recv() == nil {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	tv, ok := p.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		p.Reportf(call.Args[0].Pos(), "metric name must be a compile-time string constant so the catalog stays statically checkable")
		return nil
	}
	name := constant.StringVal(tv.Value)
	kind := sel.Sel.Name
	// A misnamed metric is already a finding; don't also drag it through
	// the duplicate and catalog checks.
	switch {
	case !metricNameRE.MatchString(name) || strings.Contains(name, "__"):
		p.Reportf(call.Args[0].Pos(), "metric name %q is not lowercase snake_case", name)
		return nil
	case (kind == "Counter" || kind == "CounterFunc") && !strings.HasSuffix(name, "_total"):
		p.Reportf(call.Args[0].Pos(), "counter %q must end in _total (Prometheus counter naming)", name)
		return nil
	}
	// Label arguments alternate name,value. Names must be compile-time
	// constants with valid label syntax; values may be dynamic (the
	// build_info pattern stamps runtime.Version() into a label value).
	labelArgs := call.Args[labelStart:]
	if len(labelArgs)%2 != 0 {
		p.Reportf(call.Args[len(call.Args)-1].Pos(), "metric %q has an odd number of label arguments: labels are name,value pairs", name)
	}
	var sig []string
	constSig := true
	for i, arg := range labelArgs {
		ltv, ok := p.Pkg.Info.Types[arg]
		isConst := ok && ltv.Value != nil && ltv.Value.Kind() == constant.String
		if i%2 == 0 {
			switch {
			case !isConst:
				p.Reportf(arg.Pos(), "label name for metric %q must be a compile-time string constant", name)
				constSig = false
				sig = append(sig, types.ExprString(arg))
			case !labelNameRE.MatchString(constant.StringVal(ltv.Value)):
				p.Reportf(arg.Pos(), "label name %q on metric %q is not lowercase snake_case", constant.StringVal(ltv.Value), name)
				sig = append(sig, constant.StringVal(ltv.Value))
			default:
				sig = append(sig, constant.StringVal(ltv.Value))
			}
			continue
		}
		if isConst {
			sig = append(sig, constant.StringVal(ltv.Value))
		} else {
			constSig = false
			sig = append(sig, types.ExprString(arg))
		}
	}
	pos := p.Module.Fset.Position(call.Pos())
	return &metricReg{
		name:     name,
		kind:     metricFamilies[kind],
		labelSig: strings.Join(sig, ","),
		constSig: constSig,
		diag:     Diagnostic{File: pos.Filename, Line: pos.Line, Col: pos.Column},
	}
}

// finishMetricNames runs the whole-module checks: duplicates, kind
// conflicts, and the two-way README catalog cross-check. wholeModule
// reports whether every module package was analyzed; the catalog
// cross-check only makes claims about absence, so on a partial run it
// stands down entirely rather than call every unseen metric missing.
func finishMetricNames(m *Module, cfg Config, regs []metricReg, wholeModule bool, report func(Diagnostic)) {
	sort.SliceStable(regs, func(i, j int) bool {
		if regs[i].name != regs[j].name {
			return regs[i].name < regs[j].name
		}
		return regs[i].diag.File < regs[j].diag.File ||
			(regs[i].diag.File == regs[j].diag.File && regs[i].diag.Line < regs[j].diag.Line)
	})
	byName := map[string][]metricReg{}
	for _, r := range regs {
		byName[r.name] = append(byName[r.name], r)
	}
	for _, group := range byName {
		first := group[0]
		// A family must keep one kind; distinct series within it (different
		// label signatures) are the labeled-counter pattern and fine.
		bySeries := map[string]metricReg{}
		for _, r := range group {
			if r.kind != first.kind {
				d := r.diag
				d.Message = fmt.Sprintf("metric %q registered as %s here but as %s at %s:%d", r.name, r.kind, first.kind, first.diag.File, first.diag.Line)
				report(d)
				continue
			}
			// Duplicate-series detection is only sound when both signatures
			// are fully constant (dynamic label values can differ at runtime).
			if !r.constSig {
				continue
			}
			if prev, ok := bySeries[r.labelSig]; ok {
				d := r.diag
				d.Message = fmt.Sprintf("metric series %q{%s} already registered at %s:%d", r.name, r.labelSig, prev.diag.File, prev.diag.Line)
				report(d)
				continue
			}
			bySeries[r.labelSig] = r
		}
	}

	if cfg.ReadmePath == "" || !wholeModule {
		return
	}
	readme := cfg.ReadmePath
	if !filepath.IsAbs(readme) {
		readme = filepath.Join(m.Root, readme)
	}
	documented, err := readCatalog(readme)
	if err != nil {
		if len(regs) > 0 {
			report(Diagnostic{File: readme, Line: 1, Message: err.Error()})
		}
		return
	}
	for name, group := range byName {
		if _, ok := documented[name]; !ok {
			d := group[0].diag
			d.Message = fmt.Sprintf("metric %q is not documented in the README metric catalog (%s)", name, cfg.ReadmePath)
			report(d)
		}
	}
	var docNames []string
	for name := range documented {
		docNames = append(docNames, name)
	}
	sort.Strings(docNames)
	for _, name := range docNames {
		if _, ok := byName[name]; !ok {
			report(Diagnostic{
				File:    readme,
				Line:    documented[name],
				Message: fmt.Sprintf("catalog documents metric %q but nothing registers it", name),
			})
		}
	}
}

// readCatalog extracts documented metric names (→ line number) from the
// marker-delimited span of the README.
func readCatalog(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("metric catalog: %v", err)
	}
	out := map[string]int{}
	in := false
	seen := false
	for i, line := range strings.Split(string(data), "\n") {
		switch {
		case strings.Contains(line, catalogBegin):
			in, seen = true, true
		case strings.Contains(line, catalogEnd):
			in = false
		case in:
			for _, match := range catalogNameRE.FindAllStringSubmatch(line, -1) {
				if _, dup := out[match[1]]; !dup {
					out[match[1]] = i + 1
				}
			}
		}
	}
	if !seen {
		return nil, fmt.Errorf("metric catalog: %s has no %s marker", path, catalogBegin)
	}
	return out, nil
}
