// Package analysis is distec's repo-specific static-analysis suite: a
// small driver framework (package loading, type checking, diagnostic
// reporting, //distec:nolint suppressions) plus analyzers that
// machine-check the conventions the codebase's correctness rests on —
// deterministic solvers, errors.Is on sentinels, allocation-free hot
// paths, no blocking I/O under locks, and a metrics catalog that cannot
// drift from the docs.
//
// The suite is zero-dependency by construction: loading is go/parser,
// type checking is go/types with the stdlib source importer, and the
// driver is cmd/distecvet. The analyzers encode invariants, not style:
// every check corresponds to a failure mode this repository has to
// defend against (cross-engine equivalence and WAL replay assume
// bit-for-bit deterministic solvers; wrapped sentinels break == matching;
// the ≤2% tracer-overhead gate assumes nil-guarded emission; the WAL
// append lock must not silently grow new I/O).
//
// Two source annotations drive the suite:
//
//	//distec:hotpath            marks a function as per-round/per-batch
//	                            hot; the hotpath analyzer then checks its
//	                            body (no fmt, closures, map allocations,
//	                            fresh-slice appends, unguarded tracers).
//	//distec:nolint [names]     suppresses diagnostics on its line (or,
//	                            alone on a line, the line below) — all
//	                            analyzers when bare, else the named,
//	                            comma-separated ones.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Run is invoked once per analyzed
// package; Finish, when set, runs after every package (for whole-module
// checks such as duplicate metric registrations). Analyzers carry run
// state, so a fresh set must be built per driver run (see Analyzers).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
	// Finish runs once after all packages were analyzed, for checks that
	// span packages (cross-package duplicates, docs cross-checks). pkgs is
	// the set actually analyzed; checks that are only sound with the whole
	// module in view (is anything missing?) must compare it against
	// m.Pkgs and stand down on partial runs.
	Finish func(m *Module, pkgs []*Package, cfg Config, report func(Diagnostic))
}

// Pass is one analyzer × package unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Module   *Module
	Config   Config
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned at file:line:col.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the go-vet style human form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Config parameterizes the suite for the module under analysis. The zero
// value plus DefaultConfig() is what cmd/distecvet uses; fixture tests
// override the suffixes to point at testdata stand-ins.
type Config struct {
	// SolverPackages are import-path suffixes of the packages whose
	// execution must be bit-for-bit deterministic (the determinism
	// analyzer's scope). Engine packages are excluded on purpose: they may
	// measure wall time for stats, but never let it influence results.
	SolverPackages []string
	// MetricsPkgSuffix identifies the metrics registry package; calls to
	// Counter/Gauge/Histogram/...Func methods on its Registry type are
	// metric registrations.
	MetricsPkgSuffix string
	// TracePkgSuffix identifies the tracer package; calls to methods on
	// its types inside //distec:hotpath functions must be nil-guarded.
	TracePkgSuffix string
	// ReadmePath, when non-empty, is the documentation file whose metric
	// catalog the metricnames analyzer cross-checks against the registered
	// set (both directions: undocumented registrations and stale doc rows
	// are findings).
	ReadmePath string
	// RequestScopedPackages are import-path suffixes of packages whose
	// code runs per request or per session: the ctxflow analyzer forbids
	// minting fresh roots via context.Background()/TODO() there (outside
	// main/init), because a root context detaches the work from the
	// caller's deadline and cancellation.
	RequestScopedPackages []string
}

// DefaultConfig returns the configuration for this repository.
func DefaultConfig() Config {
	return Config{
		SolverPackages: []string{
			"internal/core",
			"internal/linial",
			"internal/listcolor",
			"internal/defective",
			"internal/pseudoforest",
			"internal/vertexcolor",
			"internal/vizing",
			"internal/dynamic",
		},
		MetricsPkgSuffix: "internal/metrics",
		TracePkgSuffix:   "internal/trace",
		ReadmePath:       "README.md",
		RequestScopedPackages: []string{
			"internal/serve",
			"cmd/edgecolord",
		},
	}
}

// Analyzers returns a fresh instance of the full suite. Instances hold
// per-run state (the metricnames registration table), so never share a
// set between driver runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		newDeterminism(),
		newSentinelErr(),
		newHotPath(),
		newLockIO(),
		newMetricNames(),
		newLockOrder(),
		newGoroLeak(),
		newCtxFlow(),
		newAtomicMix(),
	}
}

// AnalyzerNames returns the names of the full suite, sorted.
func AnalyzerNames() []string {
	as := Analyzers()
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// hasPathSuffix reports whether import path p ends with suffix at a path
// boundary ("x/internal/core" matches "internal/core", "myinternal/core"
// does not).
func hasPathSuffix(p, suffix string) bool {
	if p == suffix {
		return true
	}
	return strings.HasSuffix(p, "/"+suffix)
}

// nolintDirective is the suppression comment prefix.
const nolintDirective = "//distec:nolint"

// hotpathDirective marks a function whose body the hotpath analyzer checks.
const hotpathDirective = "//distec:hotpath"

// suppression is one //distec:nolint comment: the line it acts on and the
// analyzer names it silences (empty = all).
type suppression struct {
	analyzers map[string]bool // nil means every analyzer
}

// suppressionsOf indexes every //distec:nolint comment of a file by the
// line it suppresses: its own line, or — when the comment stands alone on
// its line — the line directly below.
func suppressionsOf(fset *token.FileSet, f *ast.File) map[int]suppression {
	out := map[int]suppression{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, nolintDirective)
			if !ok {
				continue
			}
			if text != "" && !strings.HasPrefix(text, " ") && !strings.HasPrefix(text, "\t") {
				continue // e.g. //distec:nolinting — not the directive
			}
			s := suppression{}
			if names := strings.TrimSpace(text); names != "" {
				s.analyzers = map[string]bool{}
				for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					s.analyzers[n] = true
				}
			}
			pos := fset.Position(c.Pos())
			line := pos.Line
			// A directive alone on its line suppresses the next line.
			if startsLine(fset, f, c) {
				line++
			}
			if prev, ok := out[line]; ok {
				s = mergeSuppression(prev, s)
			}
			out[line] = s
		}
	}
	return out
}

// startsLine reports whether comment c is the first token on its line.
func startsLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	pos := fset.Position(c.Pos())
	// Column 1 is a trivial yes; otherwise scan whether any declaration
	// node starts earlier on the same line. Comments attached after code
	// ("x := 1 //distec:nolint") have code before them on the line.
	if pos.Column == 1 {
		return true
	}
	sameLineCode := false
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || sameLineCode {
			return false
		}
		np := fset.Position(n.Pos())
		if np.Line == pos.Line && np.Column < pos.Column {
			sameLineCode = true
			return false
		}
		return true
	})
	return !sameLineCode
}

// mergeSuppression unions two directives acting on one line; a bare
// directive (analyzers == nil, "suppress everything") absorbs named ones.
func mergeSuppression(a, b suppression) suppression {
	if a.analyzers == nil || b.analyzers == nil {
		return suppression{}
	}
	for n := range b.analyzers {
		a.analyzers[n] = true
	}
	return a
}

// suppressed reports whether s silences the named analyzer.
func (s suppression) suppressed(analyzer string) bool {
	return s.analyzers == nil || s.analyzers[analyzer]
}

// isHotPath reports whether a function declaration carries the
// //distec:hotpath marker in its doc comment.
func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}
