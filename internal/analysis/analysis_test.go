package analysis_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/distec/distec/internal/analysis"
)

// fixtureConfig points the suite at the testdata module's stand-ins.
func fixtureConfig() analysis.Config {
	return analysis.Config{
		SolverPackages:        []string{"determ"},
		MetricsPkgSuffix:      "stubs/metrics",
		TracePkgSuffix:        "stubs/trace",
		ReadmePath:            "README.md",
		RequestScopedPackages: []string{"ctxflow"},
	}
}

func loadFixtureModule(t *testing.T) *analysis.Module {
	t.Helper()
	m, err := analysis.LoadModule(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return m
}

// want is one `// want "regexp"` expectation from a fixture file.
type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantLineRE = regexp.MustCompile(`// want (.*)$`)
var wantQuoteRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// loadWants scans every fixture Go file for want comments, keyed by
// absolute filename and line.
func loadWants(t *testing.T, root string) map[string]map[int][]*want {
	t.Helper()
	out := map[string]map[int][]*want{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantLineRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, q := range wantQuoteRE.FindAllStringSubmatch(m[1], -1) {
				pat, err := strconv.Unquote(`"` + q[1] + `"`)
				if err != nil {
					t.Fatalf("%s:%d: bad want string %q: %v", path, line, q[1], err)
				}
				if out[abs] == nil {
					out[abs] = map[int][]*want{}
				}
				out[abs][line] = append(out[abs][line], &want{re: regexp.MustCompile(pat)})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return out
}

// TestFixtures runs the whole suite over the fixture module and checks
// the findings against the // want comments: every want must be hit,
// every finding must be wanted. README-side findings (the stale catalog
// row) are asserted directly since want comments only live in Go files.
func TestFixtures(t *testing.T) {
	m := loadFixtureModule(t)
	diags, err := analysis.Run(m, m.Pkgs, fixtureConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	wants := loadWants(t, filepath.Join("testdata", "src"))

	var readmeDiags []analysis.Diagnostic
	for _, d := range diags {
		if strings.HasSuffix(d.File, "README.md") {
			readmeDiags = append(readmeDiags, d)
			continue
		}
		ws := wants[d.File][d.Line]
		hit := false
		for _, w := range ws {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, hit = true, true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected a finding matching %q, got none", file, line, w.re)
				}
			}
		}
	}

	if len(readmeDiags) != 1 {
		t.Fatalf("README findings = %d (%v), want exactly the stale catalog row", len(readmeDiags), readmeDiags)
	}
	if d := readmeDiags[0]; d.Analyzer != "metricnames" || !strings.Contains(d.Message, `"app_stale_total"`) {
		t.Fatalf("README finding = %s, want the app_stale_total stale-row diagnostic", d)
	}
}

// TestPartialRunSkipsCatalogCheck pins that analyzing a package subset
// does not produce absence claims: the stale-row finding (and the
// undocumented-metric finding) need the whole module in view.
func TestPartialRunSkipsCatalogCheck(t *testing.T) {
	m := loadFixtureModule(t)
	pkgs, err := m.Select([]string{"determ"})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	diags, err := analysis.Run(m, pkgs, fixtureConfig())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		if d.Analyzer == "metricnames" {
			t.Errorf("partial run produced a metricnames finding: %s", d)
		}
		if !strings.HasSuffix(filepath.Dir(d.File), "determ") {
			t.Errorf("finding outside the selected package: %s", d)
		}
	}
}

// TestSelectPatterns pins the package-pattern grammar.
func TestSelectPatterns(t *testing.T) {
	m := loadFixtureModule(t)
	if got, err := m.Select(nil); err != nil || len(got) != len(m.Pkgs) {
		t.Fatalf("Select(nil) = %d pkgs, err %v; want all %d", len(got), err, len(m.Pkgs))
	}
	if got, err := m.Select([]string{"./..."}); err != nil || len(got) != len(m.Pkgs) {
		t.Fatalf(`Select("./...") = %d pkgs, err %v; want all %d`, len(got), err, len(m.Pkgs))
	}
	got, err := m.Select([]string{"./stubs/..."})
	if err != nil || len(got) != 2 {
		t.Fatalf(`Select("./stubs/...") = %v, err %v; want the two stubs`, got, err)
	}
	one, err := m.Select([]string{"determ"})
	if err != nil || len(one) != 1 || !strings.HasSuffix(one[0].Path, "/determ") {
		t.Fatalf(`Select("determ") = %v, err %v`, one, err)
	}
	if _, err := m.Select([]string{"./nonexistent"}); err == nil {
		t.Fatal(`Select("./nonexistent") succeeded, want error`)
	}
}

// TestAnalyzerNames pins the suite roster.
func TestAnalyzerNames(t *testing.T) {
	got := analysis.AnalyzerNames()
	want := []string{"atomicmix", "ctxflow", "determinism", "goroleak", "hotpath", "lockio", "lockorder", "metricnames", "sentinelerr"}
	if len(got) != len(want) {
		t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AnalyzerNames() = %v, want %v", got, want)
		}
	}
}

// TestRepoIsClean is the acceptance criterion as a test: the suite with
// the repository's own configuration finds nothing in the final tree.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module against the source importer")
	}
	m, err := analysis.LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule(repo): %v", err)
	}
	diags, err := analysis.Run(m, m.Pkgs, analysis.DefaultConfig())
	if err != nil {
		t.Fatalf("Run(repo): %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}
