package analysis

import (
	"go/ast"
	"go/types"
)

// newCtxFlow builds the ctxflow analyzer: context.Context discipline.
// Contexts carry the caller's deadline and cancellation; every rule here
// guards the same property — that cancellation actually propagates to
// the work it is supposed to stop:
//
//   - a context parameter must come first (after the receiver), the
//     convention every caller and wrapper in the module relies on;
//   - a context must not be stored in a struct field — a field outlives
//     the call that produced it, so later uses observe a stale deadline
//     (the rare lifecycle-binding exceptions carry //distec:nolint
//     ctxflow with a justification);
//   - the cancel function of context.WithCancel/WithTimeout/WithDeadline
//     must not be discarded, must be called on every path (defer it
//     immediately, or it leaks the context's timer and child goroutines
//     on early returns), or must escape to a caller who owns it;
//   - request-scoped packages (Config.RequestScopedPackages) must not
//     mint fresh roots via context.Background()/TODO() outside main or
//     init — a fresh root detaches the work from the request's deadline.
func newCtxFlow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "enforces context discipline: ctx first param, no ctx struct fields, cancel called on all paths, no fresh roots in request-scoped code",
	}
	a.Run = func(p *Pass) {
		requestScoped := false
		for _, suffix := range p.Config.RequestScopedPackages {
			if hasPathSuffix(p.Pkg.Path, suffix) {
				requestScoped = true
				break
			}
		}
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				switch decl := decl.(type) {
				case *ast.GenDecl:
					checkCtxFields(p, decl)
				case *ast.FuncDecl:
					checkCtxParamFirst(p, decl)
					if decl.Body == nil {
						continue
					}
					if requestScoped && decl.Name.Name != "main" && decl.Name.Name != "init" {
						checkCtxRoots(p, decl.Body)
					}
					// Cancel discipline is per function body; nested literals
					// are their own scope and get their own walk.
					checkCancelDiscipline(p, decl.Body)
					ast.Inspect(decl.Body, func(n ast.Node) bool {
						if lit, ok := n.(*ast.FuncLit); ok {
							checkCancelDiscipline(p, lit.Body)
						}
						return true
					})
				}
			}
		}
	}
	return a
}

// isContextType reports whether t is exactly context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCtxParamFirst reports context parameters not in first position.
func checkCtxParamFirst(p *Pass, fd *ast.FuncDecl) {
	fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	params := fn.Type().(*types.Signature).Params()
	for i := 1; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) && !isContextType(params.At(0).Type()) {
			p.Reportf(fd.Pos(), "context.Context parameter %q is not first: callers and wrappers assume ctx leads the signature", params.At(i).Name())
			return
		}
	}
}

// checkCtxFields reports struct fields of type context.Context.
func checkCtxFields(p *Pass, decl *ast.GenDecl) {
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			tv, ok := p.Pkg.Info.Types[field.Type]
			if !ok || tv.Type == nil || !isContextType(tv.Type) {
				continue
			}
			name := "(embedded)"
			if len(field.Names) > 0 {
				name = field.Names[0].Name
			}
			p.Reportf(field.Pos(), "context.Context stored in struct field %q: a field outlives the call that produced the ctx, so cancellation and deadlines go stale — pass ctx as a parameter", name)
		}
	}
}

// checkCtxRoots reports context.Background()/TODO() calls inside a
// request-scoped function body (fresh roots detach work from the
// caller's deadline).
func checkCtxRoots(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range [...]string{"Background", "TODO"} {
			if isPkgCall(p.Pkg.Info, call, "context", name) {
				p.Reportf(call.Pos(), "context.%s() in request-scoped package: this detaches the work from the caller's deadline and cancellation — derive from the incoming ctx", name)
			}
		}
		return true
	})
}

// ctxCancelFuncs maps the context constructors that return a CancelFunc
// (as their second result) for the cancel-discipline check.
var ctxCancelFuncs = map[string]bool{
	"WithCancel":        true,
	"WithTimeout":       true,
	"WithDeadline":      true,
	"WithCancelCause":   true,
	"WithTimeoutCause":  true,
	"WithDeadlineCause": true,
}

// checkCancelDiscipline finds `ctx, cancel := context.WithX(...)`
// assignments directly in body (not in nested literals) and verifies the
// cancel function is handled: not discarded, and either deferred,
// escaped to a caller, or called with no return path before the call.
func checkCancelDiscipline(p *Pass, body *ast.BlockStmt) {
	info := p.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // its own scope, walked separately
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := calleeObj(info, call).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" || !ctxCancelFuncs[fn.Name()] {
			return true
		}
		cancelID, ok := unparen(as.Lhs[1]).(*ast.Ident)
		if !ok {
			return true
		}
		if cancelID.Name == "_" {
			p.Reportf(as.Pos(), "cancel function of context.%s discarded: the context (and its timer) leaks until the parent ends — keep it and defer it", fn.Name())
			return true
		}
		obj := identObj(info, cancelID)
		if obj == nil {
			return true
		}
		checkCancelUse(p, body, as, fn.Name(), cancelID, obj)
		return true
	})
}

// checkCancelUse classifies every use of the cancel variable inside body
// and reports the two leak shapes: never used at all, and called on the
// fall-through path only (a return between the assignment and the call
// skips it).
func checkCancelUse(p *Pass, body *ast.BlockStmt, as *ast.AssignStmt, ctor string, cancelID *ast.Ident, obj types.Object) {
	info := p.Pkg.Info
	var (
		deferred, escaped bool
		firstCall         ast.Node
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if id, ok := unparen(n.Call.Fun).(*ast.Ident); ok && identObj(info, id) == obj {
				deferred = true
				return false
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && identObj(info, id) == obj {
				if firstCall == nil || n.Pos() < firstCall.Pos() {
					firstCall = n
				}
				return true
			}
			// cancel passed as an argument: ownership moves to the callee.
			for _, arg := range n.Args {
				if id, ok := unparen(arg).(*ast.Ident); ok && identObj(info, id) == obj {
					escaped = true
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := unparen(res).(*ast.Ident); ok && identObj(info, id) == obj {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			if n == as {
				return true
			}
			for i, rhs := range n.Rhs {
				id, ok := unparen(rhs).(*ast.Ident)
				if !ok || identObj(info, id) != obj {
					continue
				}
				// `_ = cancel` is a lint-silencing no-op, not a transfer of
				// ownership; a real store (field, map, variable) is.
				if i < len(n.Lhs) {
					if lhs, ok := unparen(n.Lhs[i]).(*ast.Ident); ok && lhs.Name == "_" {
						continue
					}
				}
				escaped = true
			}
		}
		return true
	})
	if deferred || escaped {
		return
	}
	if firstCall == nil {
		p.Reportf(as.Pos(), "cancel function %q of context.%s is never called: the context (and its timer) leaks — defer it immediately", cancelID.Name, ctor)
		return
	}
	// Called, but not deferred: any return between the assignment and the
	// first call skips the cancel.
	leakyReturn := false
	ast.Inspect(body, func(n ast.Node) bool {
		if leakyReturn {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > as.End() && ret.Pos() < firstCall.Pos() {
			leakyReturn = true
		}
		return true
	})
	if leakyReturn {
		p.Reportf(as.Pos(), "cancel function %q of context.%s is called but not deferred, and a return path precedes the call: that path leaks the context — defer it immediately", cancelID.Name, ctor)
	}
}
