package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// rootIdent returns the base identifier of an lvalue-ish chain:
// x, x.f, x[i].f, *x, ... → x. Nil when the chain is not rooted in an
// identifier (e.g. a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// identObj resolves an identifier to its object, whichever side of a
// definition it is on.
func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// calleeObj resolves the called function/method object of a call, nil
// for indirect calls through non-selector expressions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// isPkgCall reports whether call invokes pkgPath.name (package-level
// function, not a method).
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// callPkgPath returns the defining package path of the callee ("" for
// builtins, locals through variables, and unresolvable calls).
func callPkgPath(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isAppendCall reports whether call is the append builtin.
func isAppendCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// within reports whether pos falls inside node n.
func within(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// enclosingStmtList finds the statement list of the innermost
// block-like construct (block, case clause, comm clause) of root that
// contains pos, and whether that construct is root's own top-level body.
func enclosingStmtList(root *ast.FuncDecl, pos token.Pos) (list []ast.Stmt, top bool) {
	if root.Body == nil || !within(root.Body, pos) {
		return nil, false
	}
	list, top = root.Body.List, true
	ast.Inspect(root.Body, func(n ast.Node) bool {
		if n == nil || !within(n, pos) {
			return false
		}
		switch n := n.(type) {
		case *ast.BlockStmt:
			if n != root.Body {
				list, top = n.List, false
			}
		case *ast.CaseClause:
			list, top = n.Body, false
		case *ast.CommClause:
			list, top = n.Body, false
		case *ast.FuncLit:
			// A nested function's blocks belong to its own control flow.
			list, top = n.Body.List, false
		}
		return true
	})
	return list, top
}

// endsInReturn reports whether a statement list terminates in a return
// (the shape of a cold early-exit error path).
func endsInReturn(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	_, ok := list[len(list)-1].(*ast.ReturnStmt)
	return ok
}

// errorIface is the universe error interface, for sentinel detection.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
