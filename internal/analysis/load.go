package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Module is a loaded, type-checked Go module: every non-test package
// under its root, sharing one FileSet. Test files are excluded on
// purpose — the invariants the suite checks are production-code
// contracts, and excluding tests keeps the type-check surface (and the
// finding set) exactly the shipped tree.
type Module struct {
	Root string // absolute module root (the go.mod directory)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	byPath   map[string]*Package
	fallback types.Importer // stdlib, from source

	cg    *CallGraph             // lazy, via CallGraph()
	supAt map[string]suppression // lazy "file:line" suppression index, via suppressedAt
}

// suppressedAt reports whether a //distec:nolint directive anywhere in
// the module silences the named analyzer at file:line. The driver
// applies suppressions per selected package; this module-wide index
// exists for the transitive analyzers, whose callee summaries must skip
// sites that were already justified in place — otherwise every caller of
// a nolint-ed function would re-report the suppressed finding.
func (m *Module) suppressedAt(file string, line int, analyzer string) bool {
	if m.supAt == nil {
		m.supAt = map[string]suppression{}
		for _, pkg := range m.Pkgs {
			for _, f := range pkg.Files {
				for l, s := range suppressionsOf(m.Fset, f) {
					name := m.Fset.Position(f.Pos()).Filename
					key := fmt.Sprintf("%s:%d", name, l)
					if prev, ok := m.supAt[key]; ok {
						s = mergeSuppression(prev, s)
					}
					m.supAt[key] = s
				}
			}
		}
	}
	s, ok := m.supAt[fmt.Sprintf("%s:%d", file, line)]
	return ok && s.suppressed(analyzer)
}

// posSuppressed is suppressedAt keyed by a token.Pos.
func (m *Module) posSuppressed(pos token.Pos, analyzer string) bool {
	p := m.Fset.Position(pos)
	return m.suppressedAt(p.Filename, p.Line, analyzer)
}

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path      string // import path
	Dir       string
	Filenames []string
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
	// TypeErrors collects type-check problems. The driver refuses to
	// report findings over a tree that does not type-check (diagnostics
	// over broken types are noise), so these surface as load errors.
	TypeErrors []error

	checking, checked bool
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule parses and type-checks every non-test package under root
// (a directory containing go.mod). Directories named testdata or vendor,
// and dot/underscore-prefixed entries, are skipped — mirroring the go
// tool's package discovery.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modData, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is not a module root: %w", root, err)
	}
	match := moduleLineRE.FindSubmatch(modData)
	if match == nil {
		return nil, fmt.Errorf("analysis: %s/go.mod has no module line", root)
	}
	m := &Module{
		Root:   root,
		Path:   string(match[1]),
		Fset:   token.NewFileSet(),
		byPath: map[string]*Package{},
	}
	m.fallback = importer.ForCompiler(m.Fset, "source", nil)
	if err := m.discover(); err != nil {
		return nil, err
	}
	for _, pkg := range m.Pkgs {
		if err := m.check(pkg); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// discover walks the tree, parsing every package directory.
func (m *Module) discover() error {
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != m.Root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		base := filepath.Base(path)
		if strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(m.Root, dir)
		if err != nil {
			return err
		}
		ip := m.Path
		if rel != "." {
			ip = m.Path + "/" + filepath.ToSlash(rel)
		}
		pkg := m.byPath[ip]
		if pkg == nil {
			pkg = &Package{Path: ip, Dir: dir}
			m.byPath[ip] = pkg
			m.Pkgs = append(m.Pkgs, pkg)
		}
		file, err := parser.ParseFile(m.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		pkg.Filenames = append(pkg.Filenames, path)
		pkg.Files = append(pkg.Files, file)
		return nil
	})
	if err != nil {
		return err
	}
	if len(m.Pkgs) == 0 {
		return fmt.Errorf("analysis: no Go packages under %s", m.Root)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].Path < m.Pkgs[j].Path })
	return nil
}

// check type-checks pkg (idempotent), resolving in-module imports
// recursively and everything else through the stdlib source importer.
func (m *Module) check(pkg *Package) error {
	if pkg.checked {
		return nil
	}
	if pkg.checking {
		return fmt.Errorf("analysis: import cycle through %s", pkg.Path)
	}
	pkg.checking = true
	defer func() { pkg.checking = false }()

	cfg := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if dep, ok := m.byPath[path]; ok {
				if err := m.check(dep); err != nil {
					return nil, err
				}
				return dep.Types, nil
			}
			return m.fallback.Import(path)
		}),
		Error: func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := cfg.Check(pkg.Path, m.Fset, pkg.Files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	pkg.checked = true
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Select resolves package patterns against the module: no patterns or
// "./..." selects every package; "./x" or "x" or a full import path
// selects one subtree ("./x/..." its descendants too).
func (m *Module) Select(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		return m.Pkgs, nil
	}
	seen := map[string]bool{}
	var out []*Package
	for _, pat := range patterns {
		if pat == "./..." || pat == "..." || pat == "all" {
			return m.Pkgs, nil
		}
		subtree := false
		if s, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, subtree = s, true
		}
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/")
		// Accept both module-relative ("internal/core") and full import
		// paths ("github.com/x/internal/core").
		want := pat
		if !strings.HasPrefix(pat, m.Path) {
			if pat == "." || pat == "" {
				want = m.Path
			} else {
				want = m.Path + "/" + filepath.ToSlash(pat)
			}
		}
		matched := false
		for _, pkg := range m.Pkgs {
			if pkg.Path == want || (subtree && strings.HasPrefix(pkg.Path, want+"/")) {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("analysis: pattern %q matches no packages", pat)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}
