package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// newAtomicMix builds the atomicmix analyzer: a field or variable that
// is ever passed to a sync/atomic operation must be accessed atomically
// everywhere. A plain read racing an atomic write is still a data race
// (and on top of that the compiler may cache, tear, or reorder the
// plain access) — the race detector only catches it when both sides
// actually collide under test, while this check catches it statically,
// module-wide, including across packages.
//
// Pass one collects the target of every `atomic.AddX/LoadX/StoreX/
// SwapX/CompareAndSwapX(&v, ...)` call (the typed atomic.Int64-style
// API cannot mix — its representation is unexported, so plain access
// does not compile). Pass two reports every other appearance of a
// collected variable: plain reads, writes, and non-atomic aliasing via
// &v. Declarations, the atomic call sites themselves, and composite-
// literal field keys are exempt. Deliberate single-goroutine phases
// (e.g. a constructor before publication) carry //distec:nolint
// atomicmix at the access.
//
// Mixing is a module-wide property (the atomic side and the plain side
// are usually in different files), so the check runs in Finish and
// stands down on partial package selections.
func newAtomicMix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc:  "flags fields accessed both through sync/atomic and with plain reads/writes anywhere in the module",
	}
	a.Finish = func(m *Module, pkgs []*Package, cfg Config, report func(Diagnostic)) {
		if len(pkgs) != len(m.Pkgs) {
			return // the plain side may live in an unselected package
		}
		atomicVars := map[*types.Var]string{} // var -> position of one atomic site
		consumed := map[*ast.Ident]bool{}     // idents that are the atomic operand itself
		for _, pkg := range m.Pkgs {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					v, id := atomicTarget(pkg.Info, call)
					if v == nil {
						return true
					}
					if _, ok := atomicVars[v]; !ok {
						atomicVars[v] = m.Fset.Position(call.Pos()).String()
					}
					consumed[id] = true
					return true
				})
			}
		}
		if len(atomicVars) == 0 {
			return
		}
		for _, pkg := range m.Pkgs {
			for _, f := range pkg.Files {
				// Composite-literal field keys name the field without reading it.
				keys := map[*ast.Ident]bool{}
				ast.Inspect(f, func(n ast.Node) bool {
					if kv, ok := n.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							keys[id] = true
						}
					}
					return true
				})
				ast.Inspect(f, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok || consumed[id] || keys[id] {
						return true
					}
					v, ok := pkg.Info.Uses[id].(*types.Var)
					if !ok {
						return true
					}
					site, mixed := atomicVars[v]
					if !mixed {
						return true
					}
					pos := m.Fset.Position(id.Pos())
					report(Diagnostic{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("%s is accessed atomically at %s but with a plain read/write here: a plain access racing the atomic side is a data race", id.Name, site),
					})
					return true
				})
			}
		}
	}
	return a
}

// atomicTarget recognizes old-style pointer atomic calls —
// atomic.Op(&v, ...) — and returns the variable object v resolves to,
// plus the identifier naming it (so the call site itself can be
// exempted from the plain-access pass).
func atomicTarget(info *types.Info, call *ast.CallExpr) (*types.Var, *ast.Ident) {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, nil
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return nil, nil // typed API (atomic.Int64 methods): cannot mix
	}
	name := fn.Name()
	switch {
	case strings.HasPrefix(name, "Add"), strings.HasPrefix(name, "Load"),
		strings.HasPrefix(name, "Store"), strings.HasPrefix(name, "Swap"),
		strings.HasPrefix(name, "CompareAndSwap"), strings.HasPrefix(name, "Or"),
		strings.HasPrefix(name, "And"):
	default:
		return nil, nil
	}
	if len(call.Args) == 0 {
		return nil, nil
	}
	addr, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil, nil
	}
	switch operand := unparen(addr.X).(type) {
	case *ast.Ident:
		v, _ := identObj(info, operand).(*types.Var)
		return v, operand
	case *ast.SelectorExpr:
		v, _ := info.Uses[operand.Sel].(*types.Var)
		return v, operand.Sel
	}
	return nil, nil
}
