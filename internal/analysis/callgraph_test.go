package analysis_test

import (
	"strings"
	"testing"
)

// TestCallGraphGoldens pins the builder's edges over the cg fixture: one
// example per edge kind — static calls, CHA interface dispatch to value-
// and pointer-receiver implementations, function-typed-field resolution,
// and a bound method value — plus the Ping/Pong static cycle, whose
// presence in the output proves graph construction terminates on cycles.
func TestCallGraphGoldens(t *testing.T) {
	m := loadFixtureModule(t)
	g := m.CallGraph()
	var got []string
	for _, e := range g.Edges() {
		if strings.Contains(e.Caller.String(), "/cg.") {
			got = append(got, e.String())
		}
	}
	want := []string{
		"(*distecvet.example/cg.Box).Call -> distecvet.example/cg.leaf [value]",
		"distecvet.example/cg.Dispatch -> (*distecvet.example/cg.Slow).Run [interface]",
		"distecvet.example/cg.Dispatch -> (distecvet.example/cg.Fast).Run [interface]",
		"distecvet.example/cg.MethodValue -> (distecvet.example/cg.Fast).Run [value]",
		"distecvet.example/cg.NewBox -> distecvet.example/cg.leaf [value]",
		"distecvet.example/cg.Ping -> distecvet.example/cg.Pong [static]",
		"distecvet.example/cg.Pong -> distecvet.example/cg.Ping [static]",
	}
	if len(got) != len(want) {
		t.Fatalf("cg edges:\n  got  %q\n  want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
