package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// newDeterminism builds the determinism analyzer: in the solver
// packages — the code whose output the cross-engine equivalence matrix
// and WAL replay assert on bit-for-bit — flag every construct that lets
// runtime nondeterminism leak into results:
//
//   - range over a map whose body writes non-local state or sends on a
//     channel. The one exempt shape is append-then-sort: every value
//     appended under the range is sorted before use, which is exactly
//     how order-insensitive collection is supposed to be written here.
//   - time.Now / time.Since: wall time must never influence a solver.
//   - package-level math/rand calls: the shared source is both
//     unseeded-by-default and process-global; solvers must thread an
//     explicit *rand.Rand derived from the run seed.
//   - select over two or more channels: the winner is scheduler-chosen.
func newDeterminism() *Analyzer {
	a := &Analyzer{
		Name: "determinism",
		Doc:  "flags nondeterminism sources (map-order-dependent writes, wall clock, global rand, multi-way select) in solver packages",
	}
	a.Run = func(p *Pass) {
		inScope := false
		for _, s := range p.Config.SolverPackages {
			if hasPathSuffix(p.Pkg.Path, s) {
				inScope = true
				break
			}
		}
		if !inScope {
			return
		}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fd, ok := n.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					checkDetFunc(p, fd)
				}
				return true
			})
		}
	}
	return a
}

func checkDetFunc(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			checkMapRange(p, fd, n)
		case *ast.CallExpr:
			if isPkgCall(info, n, "time", "Now") || isPkgCall(info, n, "time", "Since") {
				p.Reportf(n.Pos(), "wall-clock call %s in solver code: results must not depend on time", types.ExprString(n.Fun))
			}
			if path := callPkgPath(info, n); path == "math/rand" || path == "math/rand/v2" {
				if fn, ok := calleeObj(info, n).(*types.Func); ok && fn.Type().(*types.Signature).Recv() == nil {
					switch fn.Name() {
					case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
					default:
						p.Reportf(n.Pos(), "global %s.%s in solver code: thread an explicit seeded *rand.Rand instead", path, fn.Name())
					}
				}
			}
		case *ast.SelectStmt:
			comms := 0
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				p.Reportf(n.Pos(), "select over %d channels in solver code: the chosen case is scheduler-dependent", comms)
			}
		}
		return true
	})
}

// appendTarget is one `x = append(x, ...)` seen under a map range: the
// target's printed form plus where to report if it is never sorted.
type appendTarget struct {
	expr string
	pos  token.Pos
}

// checkMapRange flags a range over a map whose body mutates non-local
// state, unless every such mutation is an append whose target is sorted
// after the loop (order laundered away before anything observes it).
func checkMapRange(p *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := p.Pkg.Info
	tv, ok := info.Types[rng.X]
	if !ok || tv.Type == nil {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	rangeDesc := types.ExprString(rng.X)

	var appends []appendTarget
	done := false
	report := func(pos token.Pos, format string, args ...any) {
		if !done {
			p.Reportf(pos, format, args...)
			done = true
		}
	}
	localObj := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		if id.Name == "_" {
			return true
		}
		obj := identObj(info, id)
		return obj != nil && within(rng, obj.Pos())
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n.Pos(), "send on channel inside range over map %s: map iteration order is nondeterministic", rangeDesc)
		case *ast.IncDecStmt:
			if !localObj(n.X) {
				report(n.Pos(), "write to %s inside range over map %s without a sort: iteration order leaks into state", types.ExprString(n.X), rangeDesc)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if localObj(lhs) {
					continue
				}
				// x = append(x, ...) is the collect-then-sort half of the
				// exempt pattern; remember the target and verify the sort
				// after the loop.
				if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
					if call, ok := unparen(n.Rhs[i]).(*ast.CallExpr); ok && isAppendCall(info, call) && len(call.Args) > 0 {
						if types.ExprString(call.Args[0]) == types.ExprString(lhs) {
							appends = append(appends, appendTarget{types.ExprString(lhs), n.Pos()})
							continue
						}
					}
				}
				report(n.Pos(), "write to %s inside range over map %s without a sort: iteration order leaks into state", types.ExprString(lhs), rangeDesc)
			}
		}
		return true
	})
	if done {
		return
	}
	for _, tgt := range appends {
		if !sortedAfter(info, fd, rng.End(), tgt.expr) {
			p.Reportf(tgt.pos, "append to %s inside range over map %s is never sorted afterwards: iteration order leaks into the slice", tgt.expr, rangeDesc)
			return
		}
	}
}

// sortedAfter reports whether, somewhere in fd after pos, a sort/slices
// ordering call is applied to the expression printed as target.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		switch callPkgPath(info, call) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if types.ExprString(arg) == target {
				found = true
			}
		}
		return true
	})
	return found
}
