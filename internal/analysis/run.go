package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Run executes the full analyzer suite over the selected packages of a
// loaded module and returns the surviving diagnostics, sorted by
// position. //distec:nolint suppressions are applied here, so callers
// see only actionable findings.
//
// A module that does not type-check is an error, not a finding list:
// analyzers read types.Info, and diagnostics computed over broken type
// information are noise.
func Run(m *Module, pkgs []*Package, cfg Config) ([]Diagnostic, error) {
	var typeErrs []string
	for _, pkg := range m.Pkgs {
		for _, e := range pkg.TypeErrors {
			typeErrs = append(typeErrs, e.Error())
		}
	}
	if len(typeErrs) > 0 {
		limit := typeErrs
		if len(limit) > 10 {
			limit = limit[:10]
		}
		return nil, fmt.Errorf("analysis: module does not type-check:\n  %s", strings.Join(limit, "\n  "))
	}

	analyzers := Analyzers()
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run != nil {
				a.Run(&Pass{Analyzer: a, Pkg: pkg, Module: m, Config: cfg, report: collect})
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			name := a.Name
			a.Finish(m, pkgs, cfg, func(d Diagnostic) {
				d.Analyzer = name
				collect(d)
			})
		}
	}

	sup := suppressionIndex(m.Fset, pkgs)
	out := diags[:0]
	for _, d := range diags {
		if s, ok := sup[d.File][d.Line]; ok && s.suppressed(d.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

// suppressionIndex gathers every //distec:nolint directive of the
// selected packages, keyed by filename then line.
func suppressionIndex(fset *token.FileSet, pkgs []*Package) map[string]map[int]suppression {
	out := map[string]map[int]suppression{}
	for _, pkg := range pkgs {
		for i, f := range pkg.Files {
			if sups := suppressionsOf(fset, f); len(sups) > 0 {
				out[pkg.Filenames[i]] = sups
			}
		}
	}
	return out
}
