package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// newLockIO builds the lockio analyzer: a linear, intraprocedural scan
// that flags blocking I/O reachable while a sync.Mutex/RWMutex locked
// in the same function is still held. Such a call turns device latency
// (a slow fsync, a throttled disk) into lock hold time for every other
// goroutine queued on the mutex — the failure mode that makes a p999
// cliff out of one bad write.
//
// Blocking I/O here means: *os.File writes/Sync/Close, os package
// filesystem calls, any niladic-looking Sync/Flush method (fsync and
// buffered-writer flushes on wrapper types), and calls through fields
// whose name contains "journal" (the persistence hook seam). Sites
// where I/O under the lock is the documented design — the WAL append
// path serializes writes by construction — carry //distec:nolint lockio
// with a justification.
//
// The scan is deliberately conservative: branches are analyzed with the
// lock state at entry and do not change it for following statements
// (an unlock inside an if that returns does not release the lock for
// the code after the if), deferred unlocks never release for scanning
// purposes, and goroutine bodies and function literals are skipped.
//
// The check is transitive through the module call graph: a call made
// under the lock whose static callee (at any depth) performs blocking
// I/O is the same bug as the I/O inlined, and is reported at the call
// site under the lock. Callee I/O sites carrying an in-place
// //distec:nolint lockio are part of a documented design and do not
// propagate to callers; dynamic calls resolve to nothing and fail safe.
func newLockIO() *Analyzer {
	a := &Analyzer{
		Name: "lockio",
		Doc:  "flags blocking I/O (file writes, fsync, os calls, journal hooks) reachable, directly or through static callees, while a mutex locked in the same function is held",
	}
	sums := &ioSums{memo: map[*CGNode]*ioViolation{}, visiting: map[*CGNode]bool{}}
	a.Run = func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
					scanLockedIO(p, sums, fd.Body.List, nil)
				}
				return true
			})
		}
	}
	return a
}

// ioViolation is one blocking-I/O site found in a callee, for
// transitive reporting at the under-lock call site.
type ioViolation struct {
	what string
	pos  token.Pos
}

type ioSums struct {
	memo     map[*CGNode]*ioViolation // nil value = callee does no blocking I/O
	visiting map[*CGNode]bool
}

// violationIn returns the first unsuppressed blocking-I/O call in a
// declared function or its static callees. Memoized; recursion treats
// the callee under scan as clean, terminating cycles fail-safe.
func (s *ioSums) violationIn(m *Module, n *CGNode) *ioViolation {
	if v, ok := s.memo[n]; ok {
		return v
	}
	if s.visiting[n] {
		return nil
	}
	s.visiting[n] = true
	defer delete(s.visiting, n)
	var found *ioViolation
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if found != nil {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // runs on another goroutine or at return
		case *ast.CallExpr:
			if m.posSuppressed(node.Pos(), "lockio") {
				return true
			}
			if what := blockingIO(n.Pkg.Info, node); what != "" {
				found = &ioViolation{what: what, pos: node.Pos()}
				return false
			}
			if callee, ok := m.CallGraph().StaticCallee(node); ok {
				found = s.violationIn(m, callee)
			}
		}
		return true
	})
	s.memo[n] = found
	return found
}

// scanLockedIO walks stmts in order, tracking the stack of held lock
// names, and reports I/O calls made while the stack is non-empty.
// It returns the stack as of the end of the list.
func scanLockedIO(p *Pass, sums *ioSums, stmts []ast.Stmt, held []string) []string {
	for _, st := range stmts {
		held = scanStmt(p, sums, st, held)
	}
	return held
}

func scanStmt(p *Pass, sums *ioSums, st ast.Stmt, held []string) []string {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := unparen(st.X).(*ast.CallExpr); ok {
			if name, delta := lockDelta(p, call); delta != 0 {
				if delta > 0 {
					return append(held, name)
				}
				return releaseLock(held, name)
			}
		}
		checkIOExpr(p, sums, st.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() releases only at return: the lock stays held
		// for everything after this statement. Other deferred calls run
		// outside the scanned order; skip them.
	case *ast.GoStmt:
		// A spawned goroutine does not hold this function's locks.
	case *ast.BlockStmt:
		held = scanLockedIO(p, sums, st.List, held)
	case *ast.LabeledStmt:
		held = scanStmt(p, sums, st.Stmt, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held = scanStmt(p, sums, st.Init, held)
		}
		checkIOExpr(p, sums, st.Cond, held)
		scanLockedIO(p, sums, st.Body.List, held)
		if st.Else != nil {
			scanStmt(p, sums, st.Else, held)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held = scanStmt(p, sums, st.Init, held)
		}
		if st.Cond != nil {
			checkIOExpr(p, sums, st.Cond, held)
		}
		scanLockedIO(p, sums, st.Body.List, held)
	case *ast.RangeStmt:
		checkIOExpr(p, sums, st.X, held)
		scanLockedIO(p, sums, st.Body.List, held)
	case *ast.SwitchStmt:
		if st.Init != nil {
			held = scanStmt(p, sums, st.Init, held)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLockedIO(p, sums, cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				scanLockedIO(p, sums, cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				scanLockedIO(p, sums, cc.Body, held)
			}
		}
	default:
		// Assignments, returns, sends, incdec: no lock transitions, but
		// their expressions may perform I/O.
		if len(held) > 0 {
			ast.Inspect(st, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					reportIfBlockingIO(p, sums, call, held)
				}
				return true
			})
		}
	}
	return held
}

// checkIOExpr reports blocking I/O calls inside e while locks are held.
func checkIOExpr(p *Pass, sums *ioSums, e ast.Expr, held []string) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			reportIfBlockingIO(p, sums, call, held)
		}
		return true
	})
}

func reportIfBlockingIO(p *Pass, sums *ioSums, call *ast.CallExpr, held []string) {
	if what := blockingIO(p.Pkg.Info, call); what != "" {
		p.Reportf(call.Pos(), "blocking I/O (%s) while %s is held: device latency becomes lock hold time", what, held[len(held)-1])
		return
	}
	callee, ok := p.Module.CallGraph().StaticCallee(call)
	if !ok {
		return
	}
	if v := sums.violationIn(p.Module, callee); v != nil {
		p.Reportf(call.Pos(), "call to %s while %s is held transitively performs blocking I/O (%s at %s): device latency becomes lock hold time",
			callee.Fn.Name(), held[len(held)-1], v.what, p.Module.Fset.Position(v.pos))
	}
}

// lockDelta classifies call as a mutex acquire (+1) or release (-1) on
// a sync.Mutex/RWMutex-typed expression, returning the lock's printed
// name; ("", 0) otherwise.
func lockDelta(p *Pass, call *ast.CallExpr) (string, int) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	delta := 0
	switch sel.Sel.Name {
	case "Lock", "RLock":
		delta = 1
	case "Unlock", "RUnlock":
		delta = -1
	default:
		return "", 0
	}
	tv, ok := p.Pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", 0
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", 0
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return types.ExprString(sel.X), delta
	}
	return "", 0
}

func releaseLock(held []string, name string) []string {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i] == name {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	if len(held) > 0 {
		return held[:len(held)-1]
	}
	return held
}

// blockingIO classifies call as blocking I/O, returning a short
// description ("" when it is not).
func blockingIO(info *types.Info, call *ast.CallExpr) string {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		// Field-valued callee whose name smells like the journal hook.
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
			if strings.Contains(strings.ToLower(name), "journal") {
				return "journal hook " + types.ExprString(call.Fun)
			}
			return ""
		}
		// Method on *os.File.
		if recvNamed(info, sel) == "os.File" {
			switch name {
			case "Write", "WriteString", "WriteAt", "ReadFrom", "Sync", "Truncate", "Close", "Read", "ReadAt", "Seek":
				return "os.File." + name
			}
		}
		// fsync/flush-shaped methods on wrapper types (WAL files,
		// buffered writers): the name is the contract.
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok && obj.Type().(*types.Signature).Recv() != nil {
			if name == "Sync" || name == "Flush" {
				return types.ExprString(call.Fun)
			}
		}
	}
	if obj, ok := calleeObj(info, call).(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
		obj.Type().(*types.Signature).Recv() == nil {
		switch obj.Name() {
		case "Create", "CreateTemp", "Open", "OpenFile", "Rename", "Remove", "RemoveAll",
			"WriteFile", "ReadFile", "Mkdir", "MkdirAll", "MkdirTemp", "ReadDir",
			"Stat", "Lstat", "Truncate", "Link", "Symlink", "Chmod", "Chtimes":
			return "os." + obj.Name()
		}
	}
	return ""
}

// recvNamed returns "pkg.Type" for a method selector's receiver type
// (dereferenced), or "".
func recvNamed(info *types.Info, sel *ast.SelectorExpr) string {
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}
