package analysis

import (
	"go/ast"
	"go/token"
)

// newGoroLeak builds the goroleak analyzer: every `go` statement must
// spawn work with a reachable termination path. The stack's goroutines
// — lane workers, replication tailers, round drivers — all follow the
// same contract: their loops end via a closed work channel (`for range
// ch`), a ctx/`Options.Interrupt` check that returns, or a bounded
// iteration. A goroutine whose body reaches an infinite loop
// (`for {}` / `for ;; {}`) with no return, no break out of that loop,
// and no Goexit can outlive its owner forever: it pins its captures,
// its ticker, and — after PR 9 — a passivated session's rehydration
// hook.
//
// The check is interprocedural over static call-graph edges: `go
// w.loop()` is analyzed by walking loop's body, and calls inside it.
// Dynamic calls (interface or function-value) resolve to nothing and
// fail safe. The exit scan is deliberately generous — any return,
// labeled break, goto, panic, runtime.Goexit, os.Exit, or log.Fatal
// inside the loop counts as a termination path, so only loops with no
// way out at all are reported. Findings point at the `go` statement
// (where //distec:nolint goroleak belongs) and name the offending loop.
func newGoroLeak() *Analyzer {
	a := &Analyzer{
		Name: "goroleak",
		Doc:  "flags go statements whose goroutine reaches an infinite loop with no return, break, or Goexit on any path",
	}
	a.Run = func(p *Pass) {
		g := p.Module.CallGraph()
		scan := &leakScan{m: p.Module, memo: map[*CGNode]token.Pos{}, visiting: map[*CGNode]bool{}}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				var loop token.Pos
				if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
					loop = scan.leakyLoopIn(lit.Body)
				} else if callee, ok := g.StaticCallee(gs.Call); ok {
					loop = scan.leakyLoopInNode(callee)
				}
				if loop.IsValid() {
					p.Reportf(gs.Pos(), "goroutine has no termination path: infinite loop at %s never returns or breaks — gate it on ctx.Done, Options.Interrupt, or a closed channel", p.Module.Fset.Position(loop))
				}
				return true
			})
		}
	}
	return a
}

type leakScan struct {
	m        *Module
	memo     map[*CGNode]token.Pos // token.NoPos = no leaky loop reachable
	visiting map[*CGNode]bool
}

// leakyLoopInNode is leakyLoopIn over a declared function, memoized and
// cycle-safe: mutual recursion terminates because a node currently being
// scanned reports no loop (fail safe — the loop, if any, is found when
// its own frame finishes).
func (s *leakScan) leakyLoopInNode(n *CGNode) token.Pos {
	if pos, ok := s.memo[n]; ok {
		return pos
	}
	if s.visiting[n] {
		return token.NoPos
	}
	s.visiting[n] = true
	defer delete(s.visiting, n)
	pos := s.leakyLoopIn(n.Decl.Body)
	s.memo[n] = pos
	return pos
}

// leakyLoopIn returns the position of the first infinite loop without a
// termination path reachable from body — directly, or through static
// callees. Nested function literals and nested go statements belong to
// other goroutines and are skipped (each `go` site gets its own check).
func (s *leakScan) leakyLoopIn(body *ast.BlockStmt) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !forHasExit(n) {
				found = n.Pos()
				return false
			}
		case *ast.CallExpr:
			if callee, ok := s.m.CallGraph().StaticCallee(n); ok {
				if pos := s.leakyLoopInNode(callee); pos.IsValid() {
					found = pos
					return false
				}
			}
		}
		return true
	})
	return found
}

// forHasExit reports whether an infinite for loop's body contains any
// statement that leaves the loop (or the goroutine).
func forHasExit(loop *ast.ForStmt) bool {
	return stmtsHaveExit(loop.Body.List, true)
}

// stmtsHaveExit scans a statement list for a loop/goroutine exit.
// breakBinds tracks whether an unlabeled break here would terminate the
// loop under test (false once inside a nested for/range/switch/select,
// whose breaks bind locally).
func stmtsHaveExit(stmts []ast.Stmt, breakBinds bool) bool {
	for _, st := range stmts {
		if stmtHasExit(st, breakBinds) {
			return true
		}
	}
	return false
}

func stmtHasExit(st ast.Stmt, breakBinds bool) bool {
	switch st := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			// A labeled break targets some enclosing construct — assume it
			// can leave the loop (fail safe).
			return st.Label != nil || breakBinds
		case token.GOTO:
			return true // could jump past the loop; fail safe
		}
	case *ast.ExprStmt:
		if call, ok := unparen(st.X).(*ast.CallExpr); ok && isTerminator(call) {
			return true
		}
	case *ast.BlockStmt:
		return stmtsHaveExit(st.List, breakBinds)
	case *ast.LabeledStmt:
		return stmtHasExit(st.Stmt, breakBinds)
	case *ast.IfStmt:
		if stmtsHaveExit(st.Body.List, breakBinds) {
			return true
		}
		if st.Else != nil {
			return stmtHasExit(st.Else, breakBinds)
		}
	case *ast.ForStmt:
		return stmtsHaveExit(st.Body.List, false)
	case *ast.RangeStmt:
		return stmtsHaveExit(st.Body.List, false)
	case *ast.SwitchStmt:
		return clausesHaveExit(st.Body.List)
	case *ast.TypeSwitchStmt:
		return clausesHaveExit(st.Body.List)
	case *ast.SelectStmt:
		return clausesHaveExit(st.Body.List)
	}
	return false
}

func clausesHaveExit(clauses []ast.Stmt) bool {
	for _, c := range clauses {
		switch c := c.(type) {
		case *ast.CaseClause:
			if stmtsHaveExit(c.Body, false) {
				return true
			}
		case *ast.CommClause:
			if stmtsHaveExit(c.Body, false) {
				return true
			}
		}
	}
	return false
}

// isTerminator recognizes calls that end the goroutine outright.
func isTerminator(call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := unparen(fun.X).(*ast.Ident); ok {
			switch pkg.Name + "." + fun.Sel.Name {
			case "runtime.Goexit", "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln":
				return true
			}
		}
	}
	return false
}
