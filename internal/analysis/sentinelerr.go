package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// newSentinelErr builds the sentinelerr analyzer. The repo's sentinel
// errors (ErrSessionClosed, ErrPaletteExhausted, ErrJournal, ...) cross
// wrapping layers — persistence, serving, session management — so the
// only comparison that stays correct is errors.Is. The analyzer flags
// the two ways that contract decays:
//
//   - err == ErrX / err != ErrX: breaks the moment anyone wraps err.
//   - fmt.Errorf("...", ErrX) without %w: strips the sentinel from the
//     chain, so downstream errors.Is silently stops matching.
//
// Only this module's package-level Err* variables count as sentinels;
// stdlib comparisons like err == io.EOF follow the stdlib's own
// documented contracts and are out of scope.
func newSentinelErr() *Analyzer {
	a := &Analyzer{
		Name: "sentinelerr",
		Doc:  "flags ==/!= comparisons against module sentinel errors and fmt.Errorf wrapping a sentinel without %w",
	}
	a.Run = func(p *Pass) {
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					for _, side := range []ast.Expr{n.X, n.Y} {
						if s := sentinelOf(p, side); s != nil {
							p.Reportf(n.Pos(), "comparison %s sentinel %s: use errors.Is so wrapped errors still match", n.Op, s.Name())
							break
						}
					}
				case *ast.CallExpr:
					checkErrorfWrap(p, n)
				}
				return true
			})
		}
	}
	return a
}

// sentinelOf reports the sentinel-error object e refers to, if any: a
// package-level error-typed variable named Err* declared in this module.
func sentinelOf(p *Pass, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj, ok := identObj(p.Pkg.Info, id).(*types.Var)
	if !ok || obj.Pkg() == nil {
		return nil
	}
	if !strings.HasPrefix(obj.Name(), "Err") {
		return nil
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return nil // not package-level
	}
	if _, inModule := p.Module.byPath[obj.Pkg().Path()]; !inModule {
		return nil
	}
	if !types.Implements(obj.Type(), errorIface) {
		return nil
	}
	return obj
}

// checkErrorfWrap flags fmt.Errorf calls that pass a sentinel without a
// %w verb in a constant format string.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	if !isPkgCall(p.Pkg.Info, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := p.Pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if strings.Contains(constant.StringVal(tv.Value), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if s := sentinelOf(p, arg); s != nil {
			p.Reportf(call.Pos(), "fmt.Errorf formats sentinel %s without %%w: errors.Is will not match the result", s.Name())
			return
		}
	}
}
