package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// newHotPath builds the hotpath analyzer. Functions marked
// //distec:hotpath are the per-round engine loops, mailbox delivery,
// and the WAL append path — code the benchmarks hold to near-zero
// allocation and the ≤2% disabled-tracer overhead gate. Inside a marked
// function the analyzer flags:
//
//   - fmt.* calls, unless the innermost enclosing block is a nested
//     early-exit ending in return (the cold error-path shape);
//   - closures that capture variables (each allocates per execution);
//   - map allocations (literals or make), same cold-path exemption;
//   - append whose result is not assigned back to its own source
//     (a fresh backing array per call instead of amortized reuse);
//   - calls into the trace package not dominated by a nil check — the
//     disabled-tracer cost model is one pointer test per round, which
//     only holds when every emission sits behind a guard;
//   - calls whose static callee (transitively, through the module call
//     graph) formats with fmt or allocates a map on its own steady-state
//     path — an allocation two calls below the marked function is the
//     same bug as one inside it. Callees marked //distec:hotpath are
//     exempt here (they are checked directly), as are callee sites
//     carrying an in-place //distec:nolint hotpath.
func newHotPath() *Analyzer {
	a := &Analyzer{
		Name: "hotpath",
		Doc:  "flags fmt, capturing closures, map allocation, fresh-slice append, and unguarded trace calls inside (or statically reachable from) //distec:hotpath functions",
	}
	sums := &hotSums{memo: map[*CGNode]*hotViolation{}, visiting: map[*CGNode]bool{}}
	a.Run = func(p *Pass) {
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Body != nil && isHotPath(fd) {
					checkHotFunc(p, fd, sums)
				}
			}
		}
	}
	return a
}

// hotViolation is one steady-state allocation found in a callee, for
// transitive reporting at the hot-path call site.
type hotViolation struct {
	what string
	pos  token.Pos
}

type hotSums struct {
	memo     map[*CGNode]*hotViolation // nil value = callee is clean
	visiting map[*CGNode]bool
}

// violationIn returns the first fmt call or map allocation on the
// steady-state (non-cold) path of a declared function, searching its
// static callees transitively. Memoized; recursion reports the callee
// under scan as clean, which terminates cycles fail-safe.
func (s *hotSums) violationIn(m *Module, n *CGNode) *hotViolation {
	if v, ok := s.memo[n]; ok {
		return v
	}
	if s.visiting[n] {
		return nil
	}
	s.visiting[n] = true
	defer delete(s.visiting, n)
	info := n.Pkg.Info
	cold := func(pos token.Pos) bool {
		list, top := enclosingStmtList(n.Decl, pos)
		return !top && endsInReturn(list)
	}
	var found *hotViolation
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if found != nil {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // other goroutines / deferred closures: separate cost
		case *ast.CallExpr:
			if cold(node.Pos()) || m.posSuppressed(node.Pos(), "hotpath") {
				return true
			}
			if callPkgPath(info, node) == "fmt" {
				found = &hotViolation{what: types.ExprString(node.Fun), pos: node.Pos()}
				return false
			}
			if id, ok := unparen(node.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if tv, ok := info.Types[node]; ok && tv.Type != nil {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							found = &hotViolation{what: "map allocation", pos: node.Pos()}
							return false
						}
					}
				}
			}
			if callee, ok := m.CallGraph().StaticCallee(node); ok && !isHotPath(callee.Decl) {
				found = s.violationIn(m, callee)
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[node]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap &&
					!cold(node.Pos()) && !m.posSuppressed(node.Pos(), "hotpath") {
					found = &hotViolation{what: "map literal", pos: node.Pos()}
					return false
				}
			}
		}
		return true
	})
	s.memo[n] = found
	return found
}

func checkHotFunc(p *Pass, fd *ast.FuncDecl, sums *hotSums) {
	info := p.Pkg.Info
	// cold: the statement sits in a nested block that terminates in
	// return — an early-exit error path, not steady-state round work.
	cold := func(pos token.Pos) bool {
		list, top := enclosingStmtList(fd, pos)
		return !top && endsInReturn(list)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callPkgPath(info, n) == "fmt" && !cold(n.Pos()) {
				p.Reportf(n.Pos(), "%s in hot path: fmt formats through interfaces and allocates", types.ExprString(n.Fun))
			}
			if tracerCall(p, n) && !nilGuarded(fd, n.Pos()) {
				p.Reportf(n.Pos(), "unguarded tracer call %s in hot path: wrap in an `if x != nil` so the disabled cost stays one pointer test", types.ExprString(n.Fun))
			}
			if callee, ok := p.Module.CallGraph().StaticCallee(n); ok && !isHotPath(callee.Decl) && !cold(n.Pos()) {
				if v := sums.violationIn(p.Module, callee); v != nil {
					p.Reportf(n.Pos(), "call to %s in hot path transitively reaches %s at %s on its steady-state path", callee.Fn.Name(), v.what, p.Module.Fset.Position(v.pos))
				}
			}
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if tv, ok := info.Types[n]; ok && tv.Type != nil {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !cold(n.Pos()) {
							p.Reportf(n.Pos(), "map allocated in hot path: hoist it out of the per-round loop and reuse")
						}
					}
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !cold(n.Pos()) {
					p.Reportf(n.Pos(), "map literal in hot path: hoist it out of the per-round loop and reuse")
				}
			}
		case *ast.FuncLit:
			if captured := closureCaptures(info, fd, n); captured != "" {
				p.Reportf(n.Pos(), "closure capturing %s in hot path: allocates per execution; hoist it to a method or prebound field", captured)
			}
			return false // its body is the closure's cost, already priced in
		case *ast.AssignStmt:
			checkFreshAppend(p, n, cold)
		}
		return true
	})
}

// checkFreshAppend flags append results not assigned back to the
// expression they grew from — each such call builds a fresh backing
// array instead of amortizing one.
func checkFreshAppend(p *Pass, n *ast.AssignStmt, cold func(token.Pos) bool) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || !isAppendCall(p.Pkg.Info, call) || len(call.Args) == 0 {
			continue
		}
		lhs, src := types.ExprString(n.Lhs[i]), types.ExprString(call.Args[0])
		if lhs != src && !cold(n.Pos()) {
			p.Reportf(n.Pos(), "append to fresh slice in hot path: result goes to %s, not back to %s, so every call reallocates", lhs, src)
		}
	}
}

// tracerCall reports whether call invokes a method or function of the
// configured trace package.
func tracerCall(p *Pass, call *ast.CallExpr) bool {
	obj := calleeObj(p.Pkg.Info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return hasPathSuffix(obj.Pkg().Path(), p.Config.TracePkgSuffix)
}

// nilGuarded reports whether pos sits inside the body of an if whose
// condition contains a `!= nil` test — the dominating guard shape the
// engines use (`if x.span != nil { x.span.Round(ev) }`), including as a
// conjunct of &&.
func nilGuarded(fd *ast.FuncDecl, pos token.Pos) bool {
	guarded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if guarded || n == nil || !within(n, pos) {
			return false
		}
		if ifs, ok := n.(*ast.IfStmt); ok && within(ifs.Body, pos) && condHasNilCheck(ifs.Cond) {
			guarded = true
		}
		return true
	})
	return guarded
}

func condHasNilCheck(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.NEQ {
			if isNilIdent(b.X) || isNilIdent(b.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// closureCaptures returns a printable name of one variable the closure
// captures from fd's scope ("" when it captures nothing — a
// non-capturing func literal compiles to a static function and is free).
func closureCaptures(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level, not captured
		}
		// Declared outside the literal but inside the enclosing function:
		// that is a capture.
		if !within(lit, v.Pos()) && within(fd, v.Pos()) {
			captured = v.Name()
		}
		return true
	})
	return captured
}
