package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The module-wide call graph: a CHA-style (class-hierarchy analysis)
// over-approximation of "who can call whom" built from the same
// go/ast + go/types load the rest of the suite uses — zero dependencies,
// no SSA. Nodes are the module's declared functions and methods; edges
// come in three precisions:
//
//   - static: a direct call to a declared module function or to a method
//     on a concrete receiver. These are exact, and they are the only
//     edges the transitive analyzers (hotpath, lockio, lockorder,
//     goroleak) walk — following dynamic edges would drown real findings
//     in may-alias noise.
//   - interface: a call through a module-declared interface method,
//     edged to every module type implementing that interface (the CHA
//     step — e.g. a call on local.Engine reaches every engine).
//   - value: a function or method used as a value (assigned, passed,
//     stored in a function-typed field) — the reference itself, plus
//     calls through function-typed fields/variables resolved against
//     every declared function ever directly assigned to that exact
//     field/variable object.
//
// Known imprecision, on purpose: function values that flow through
// parameters or channels are not tracked (no dataflow), and calls
// through such values resolve to nothing. The analyzers that consume
// the graph are written so unresolved calls fail safe (no finding).

// EdgeKind classifies a call edge's resolution precision.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call to a declared function or concrete
	// method — exact.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a CHA edge: a call through a module interface
	// method, fanned to each implementing module type.
	EdgeInterface
	// EdgeValue is a function/method used as a value, or a call through a
	// function-typed field/variable resolved by its direct assignments.
	EdgeValue
)

// String renders the kind for goldens and diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	default:
		return "value"
	}
}

// CGNode is one declared function or method of the module.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
}

// String is the node's fully qualified name, e.g.
// "(*example.com/m/pkg.T).M" or "example.com/m/pkg.F".
func (n *CGNode) String() string { return n.Fn.FullName() }

// CGEdge is one possible call, positioned at the site that induces it.
type CGEdge struct {
	Caller *CGNode
	Callee *CGNode
	Kind   EdgeKind
	Pos    token.Pos
}

// String renders "caller -> callee [kind]" for goldens.
func (e CGEdge) String() string {
	return fmt.Sprintf("%s -> %s [%s]", e.Caller, e.Callee, e.Kind)
}

// CallGraph is the module-wide call graph; build via Module.CallGraph.
type CallGraph struct {
	nodes  map[*types.Func]*CGNode
	out    map[*CGNode][]CGEdge
	static map[*ast.CallExpr]*CGNode
	edges  []CGEdge
}

// CallGraph returns the module's call graph, building it on first use.
// The graph always spans the whole module (every package, regardless of
// any package selection), so cross-package transitive analyses see the
// full picture.
func (m *Module) CallGraph() *CallGraph {
	if m.cg == nil {
		m.cg = buildCallGraph(m)
	}
	return m.cg
}

// Edges returns every edge, deterministically ordered (caller, callee,
// kind).
func (g *CallGraph) Edges() []CGEdge { return g.edges }

// NodeOf returns the graph node for a declared module function, nil for
// functions outside the module (or without a body).
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode { return g.nodes[fn] }

// StaticCallee resolves a call expression to the module function it
// directly invokes — the exact edges. Interface and value calls return
// (nil, false): transitive analyzers must fail safe on them.
func (g *CallGraph) StaticCallee(call *ast.CallExpr) (*CGNode, bool) {
	n, ok := g.static[call]
	return n, ok
}

// StaticCallees returns the static out-edges of a node, for transitive
// walks (deterministic order).
func (g *CallGraph) StaticCallees(n *CGNode) []CGEdge {
	var out []CGEdge
	for _, e := range g.out[n] {
		if e.Kind == EdgeStatic {
			out = append(out, e)
		}
	}
	return out
}

// edgeKey dedupes edges: one (caller, callee, kind) triple is recorded
// once, at its first site in declaration order.
type edgeKey struct {
	caller, callee *CGNode
	kind           EdgeKind
}

type cgBuilder struct {
	m     *Module
	g     *CallGraph
	seen  map[edgeKey]bool
	iface map[*types.Func][]*CGNode // interface method -> implementing methods
	assig map[*types.Var][]*CGNode  // func-typed field/var -> assigned functions
}

func buildCallGraph(m *Module) *CallGraph {
	b := &cgBuilder{
		m: m,
		g: &CallGraph{
			nodes:  map[*types.Func]*CGNode{},
			out:    map[*CGNode][]CGEdge{},
			static: map[*ast.CallExpr]*CGNode{},
		},
		seen:  map[edgeKey]bool{},
		iface: map[*types.Func][]*CGNode{},
		assig: map[*types.Var][]*CGNode{},
	}
	b.collectNodes()
	b.indexInterfaces()
	b.indexAssignments()
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					b.walkBody(b.g.nodes[fn], pkg)
				}
			}
		}
	}
	sort.SliceStable(b.g.edges, func(i, j int) bool {
		a, c := b.g.edges[i], b.g.edges[j]
		if a.Caller.String() != c.Caller.String() {
			return a.Caller.String() < c.Caller.String()
		}
		if a.Callee.String() != c.Callee.String() {
			return a.Callee.String() < c.Callee.String()
		}
		return a.Kind < c.Kind
	})
	for _, e := range b.g.edges {
		b.g.out[e.Caller] = append(b.g.out[e.Caller], e)
	}
	return b.g
}

// collectNodes indexes every declared function/method with a body.
func (b *cgBuilder) collectNodes() {
	for _, pkg := range b.m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					b.g.nodes[fn] = &CGNode{Fn: fn, Decl: fd, Pkg: pkg}
				}
			}
		}
	}
}

// indexInterfaces is the CHA step: for every interface declared in the
// module, map each of its methods to the concrete module methods that
// implement it.
func (b *cgBuilder) indexInterfaces() {
	var ifaces, concretes []*types.Named
	for _, pkg := range b.m.Pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if types.IsInterface(named) {
				ifaces = append(ifaces, named)
			} else {
				concretes = append(concretes, named)
			}
		}
	}
	for _, in := range ifaces {
		iface := in.Underlying().(*types.Interface)
		for _, cn := range concretes {
			ptr := types.NewPointer(cn)
			if !types.Implements(cn, iface) && !types.Implements(ptr, iface) {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				im := iface.Method(i)
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, im.Pkg(), im.Name())
				impl, ok := obj.(*types.Func)
				if !ok {
					continue
				}
				if node := b.g.nodes[impl]; node != nil {
					b.iface[im] = append(b.iface[im], node)
				}
			}
		}
	}
}

// indexAssignments records, for every function-typed field or variable,
// the declared functions directly assigned to it — `x.fn = f`,
// `var h = f`, `T{fn: f}`. Values flowing through parameters, returns,
// or channels are not tracked; calls through such variables stay
// unresolved.
func (b *cgBuilder) indexAssignments() {
	record := func(pkg *Package, lhsObj types.Object, rhs ast.Expr) {
		v, ok := lhsObj.(*types.Var)
		if !ok {
			return
		}
		fn := funcRef(pkg.Info, rhs)
		if fn == nil {
			return
		}
		if node := b.g.nodes[fn]; node != nil {
			b.assig[v] = append(b.assig[v], node)
		}
	}
	for _, pkg := range b.m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, lhs := range n.Lhs {
						if id := rootFieldOrVar(pkg.Info, lhs); id != nil {
							record(pkg, id, n.Rhs[i])
						}
					}
				case *ast.ValueSpec:
					for i, name := range n.Names {
						if i < len(n.Values) {
							record(pkg, identObj(pkg.Info, name), n.Values[i])
						}
					}
				case *ast.CompositeLit:
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok {
							record(pkg, identObj(pkg.Info, key), kv.Value)
						}
					}
				}
				return true
			})
		}
	}
}

// rootFieldOrVar resolves an assignment target to the field or variable
// object it stores into: x -> x's object, x.f (any depth of prefix) ->
// f's object.
func rootFieldOrVar(info *types.Info, lhs ast.Expr) types.Object {
	switch e := unparen(lhs).(type) {
	case *ast.Ident:
		return identObj(info, e)
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// funcRef resolves an expression to the declared function it references
// as a value (identifier or method/package selector), nil otherwise.
func funcRef(info *types.Info, e ast.Expr) *types.Func {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// walkBody records every out-edge of one declared function. Calls and
// references inside nested function literals are attributed to the
// declaring function — the literal runs with its lexical environment,
// and the graph's consumers do their own literal-aware AST walks where
// synchronous-only semantics matter.
func (b *cgBuilder) walkBody(caller *CGNode, pkg *Package) {
	if caller == nil {
		return
	}
	info := pkg.Info
	// First pass: resolve calls, remember which idents/selectors are call
	// operands so the value pass does not double-count them.
	asCallFun := map[ast.Node]bool{}
	ast.Inspect(caller.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := unparen(call.Fun)
		asCallFun[fun] = true
		switch obj := calleeObj(info, call).(type) {
		case *types.Func:
			sig, ok := obj.Type().(*types.Signature)
			if !ok {
				return true
			}
			if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
				for _, impl := range b.iface[obj] {
					b.addEdge(caller, impl, EdgeInterface, call.Pos())
				}
				return true
			}
			if callee := b.g.nodes[obj]; callee != nil {
				b.addEdge(caller, callee, EdgeStatic, call.Pos())
				b.g.static[call] = callee
			}
		case *types.Var:
			// Call through a function-typed field/variable: resolve against
			// its recorded direct assignments.
			for _, callee := range b.assig[obj] {
				b.addEdge(caller, callee, EdgeValue, call.Pos())
			}
		}
		return true
	})
	// Second pass: function and method values (references that are not the
	// operand of a call) — each is a potential call by whoever receives it.
	ast.Inspect(caller.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if asCallFun[n] {
				return true
			}
			if fn, ok := info.Uses[n.Sel].(*types.Func); ok {
				if callee := b.g.nodes[fn]; callee != nil {
					b.addEdge(caller, callee, EdgeValue, n.Pos())
				}
				return false // n.Sel would re-trigger the Ident case below
			}
		case *ast.Ident:
			if asCallFun[n] {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				if callee := b.g.nodes[fn]; callee != nil {
					b.addEdge(caller, callee, EdgeValue, n.Pos())
				}
			}
		}
		return true
	})
}

func (b *cgBuilder) addEdge(caller, callee *CGNode, kind EdgeKind, pos token.Pos) {
	key := edgeKey{caller, callee, kind}
	if b.seen[key] {
		return
	}
	b.seen[key] = true
	b.g.edges = append(b.g.edges, CGEdge{Caller: caller, Callee: callee, Kind: kind, Pos: pos})
}
