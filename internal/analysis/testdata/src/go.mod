module distecvet.example

go 1.22
