// Package metrics is a registration-shaped stub of the real registry,
// mirroring the method set the metricnames analyzer recognizes.
package metrics

// Registry mirrors the registration surface of internal/metrics.
type Registry struct{}

// Counter registers a counter; labels alternate name,value.
func (r *Registry) Counter(name, help string, labels ...string) {}

// CounterFunc registers a callback-backed counter.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {}

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) {}

// GaugeFunc registers a callback-backed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {}

// Histogram registers a histogram over buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) {}
