// Package trace is a tracer-shaped stub for the hotpath fixtures. All
// methods on the real Span are nil-safe; the analyzer checks callers
// guard anyway, because the guard is what keeps the disabled cost at
// one pointer test.
package trace

// Span records rounds.
type Span struct{}

// Round records one round event.
func (s *Span) Round(r int) {}
