package metricuse

import "distecvet.example/stubs/metrics"

// RegisterLegacy keeps a grandfathered name a dashboard still scrapes.
func RegisterLegacy(reg *metrics.Registry) {
	reg.Counter("app_legacy_count", "Legacy counter.") //distec:nolint metricnames
}
