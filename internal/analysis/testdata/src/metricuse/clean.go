package metricuse

import "distecvet.example/stubs/metrics"

// RegisterClean registers documented, well-formed metrics, including
// distinct series of one family.
func RegisterClean(reg *metrics.Registry) {
	reg.CounterFunc("app_ticks_total", "Ticks.", func() uint64 { return 0 })
	reg.Gauge("app_queue_depth", "Queue depth.", "lane", "fast")
	reg.Gauge("app_queue_depth", "Queue depth.", "lane", "slow")
	reg.Histogram("app_latency_seconds", "Latency.", []float64{0.1, 1}, "outcome", "ok")
}
