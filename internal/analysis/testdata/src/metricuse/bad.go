package metricuse

import "distecvet.example/stubs/metrics"

// Register wires this package's metrics, misnaming most of them.
func Register(reg *metrics.Registry, name string) {
	reg.Counter("app_requests", "Requests.")                          // want "counter \"app_requests\" must end in _total"
	reg.Counter("App-Total", "Bad name.")                             // want "not lowercase snake_case"
	reg.Counter(name, "Dynamic.")                                     // want "compile-time string constant"
	reg.Gauge("app_depth_now", "Depth.", "queue")                     // want "odd number of label arguments"
	reg.Counter("app_undocumented_total", "Missing from the README.") // want "not documented in the README metric catalog"
	reg.Counter("app_jobs_total", "Jobs.")
}

// RegisterAgain duplicates a series registered above.
func RegisterAgain(reg *metrics.Registry) {
	reg.Counter("app_jobs_total", "Jobs.") // want "already registered"
}
