package goroleak

// Ticker owns a work queue drained by spawned goroutines.
type Ticker struct {
	q chan int
}

func (t *Ticker) spin() {}

// Start spawns a literal whose loop has no way out.
func (t *Ticker) Start() {
	go func() { // want "goroutine has no termination path"
		for {
			t.spin()
		}
	}()
}

// StartWorker leaks through a call: the loop lives two frames down.
func (t *Ticker) StartWorker() {
	go t.run() // want "goroutine has no termination path"
}

func (t *Ticker) run() {
	t.loop()
}

func (t *Ticker) loop() {
	for {
		t.spin()
	}
}
