package goroleak

// Pump drains until the channel closes — the range terminates it.
func (t *Ticker) Pump() {
	go func() {
		for v := range t.q {
			_ = v
		}
	}()
}

// Run loops forever but returns when stop closes.
func (t *Ticker) Run(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-t.q:
				_ = v
			}
		}
	}()
}

// Burst does a bounded amount of work and exits.
func (t *Ticker) Burst(n int) {
	go func() {
		for i := 0; i < n; i++ {
			t.spin()
		}
	}()
}
