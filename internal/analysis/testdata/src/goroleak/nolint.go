package goroleak

// StartForever is the process-lifetime pump: it is meant to die with
// the process and never before, so the missing exit is the design.
func (t *Ticker) StartForever() {
	//distec:nolint goroleak
	go func() {
		for {
			t.spin()
		}
	}()
}
