package lockio

// Append fsyncs under the lock by design: the lock is the journal's
// serialization point, and durability-before-return is the contract.
func (s *Store) Append(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//distec:nolint lockio
	if _, err := s.f.Write(data); err != nil {
		return err
	}
	//distec:nolint
	return s.f.Sync()
}
