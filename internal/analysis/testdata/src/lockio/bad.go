package lockio

import (
	"os"
	"sync"
)

// Store pairs a mutex with a file, the shape the analyzer audits.
type Store struct {
	mu sync.Mutex
	f  *os.File
}

// Flush writes and fsyncs while holding the lock.
func (s *Store) Flush(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(data); err != nil { // want "blocking I/O \\(os.File.Write\\) while s.mu is held"
		return err
	}
	return s.f.Sync() // want "blocking I/O \\(os.File.Sync\\) while s.mu is held"
}

// Rotate renames under the lock.
func (s *Store) Rotate(from, to string) error {
	s.mu.Lock()
	err := os.Rename(from, to) // want "blocking I/O \\(os.Rename\\) while s.mu is held"
	s.mu.Unlock()
	return err
}
