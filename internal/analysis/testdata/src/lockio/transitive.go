package lockio

// FlushAll holds the lock across a helper chain that fsyncs two frames
// down — only the call graph connects the latency to the lock.
func (s *Store) FlushAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistAll() // want "call to persistAll while s.mu is held transitively performs blocking I/O \\(os.File.Sync at .*\\)"
}

func (s *Store) persistAll() error {
	return s.syncFile()
}

func (s *Store) syncFile() error {
	return s.f.Sync()
}

// journalSync is the documented serialization point; its fsync is
// justified in place, so locked callers do not re-report it.
func (s *Store) journalSync() error {
	//distec:nolint lockio
	return s.f.Sync()
}

// AppendAll holds the lock over the justified helper — clean.
func (s *Store) AppendAll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalSync()
}

// retry recurses; the callee summary must terminate on the cycle.
func (s *Store) retry(n int) error {
	if n == 0 {
		return nil
	}
	return s.retry(n - 1)
}

// Poll holds the lock over the recursive, I/O-free helper — clean.
func (s *Store) Poll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retry(3)
}
