package lockio

import "os"

// Write snapshots under the lock and performs the I/O after releasing
// it — the pattern the metrics exporter uses.
func (s *Store) Write(data []byte) error {
	s.mu.Lock()
	buf := append([]byte(nil), data...)
	s.mu.Unlock()
	_, err := s.f.Write(buf)
	return err
}

// Save takes no lock at all.
func Save(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
