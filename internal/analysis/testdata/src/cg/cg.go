// Package cg is the call-graph builder's golden fixture: one example of
// each edge kind (static, interface dispatch, function-typed field,
// method value) plus a static cycle proving traversal terminates.
package cg

// Runner is the dispatch seam the CHA step resolves.
type Runner interface {
	Run() int
}

// Fast implements Runner with a value receiver.
type Fast struct{}

// Run implements Runner.
func (Fast) Run() int { return 1 }

// Slow implements Runner with a pointer receiver.
type Slow struct{ n int }

// Run implements Runner.
func (s *Slow) Run() int { return s.n }

// Dispatch calls through the interface: CHA fans to both implementations.
func Dispatch(r Runner) int {
	return r.Run()
}

// Box holds a function-typed field.
type Box struct {
	fn func() int
}

// leaf is the function assigned into the field.
func leaf() int { return 42 }

// NewBox wires the field — a value edge from NewBox to leaf.
func NewBox() *Box {
	return &Box{fn: leaf}
}

// Call invokes through the field, resolved against its assignments.
func (b *Box) Call() int {
	return b.fn()
}

// MethodValue returns a bound method value — a value edge to Fast.Run.
func MethodValue(f Fast) func() int {
	return f.Run
}

// Ping and Pong form a static cycle; Edges() must terminate on it.
func Ping(n int) int {
	if n == 0 {
		return 0
	}
	return Pong(n - 1)
}

// Pong closes the cycle.
func Pong(n int) int {
	return Ping(n)
}
