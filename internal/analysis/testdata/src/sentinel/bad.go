package sentinel

import (
	"errors"
	"fmt"
)

// ErrClosed is the package sentinel.
var ErrClosed = errors.New("closed")

// IsClosed compares identity instead of using errors.Is.
func IsClosed(err error) bool {
	return err == ErrClosed // want "comparison == sentinel ErrClosed"
}

// Wrap tests with != and then strips the sentinel from the chain.
func Wrap(err error) error {
	if err != ErrClosed { // want "comparison != sentinel ErrClosed"
		return err
	}
	return fmt.Errorf("session: %v", ErrClosed) // want "fmt.Errorf formats sentinel ErrClosed without %w"
}
