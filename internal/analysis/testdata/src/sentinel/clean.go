package sentinel

import (
	"errors"
	"fmt"
)

// ErrGone is a sentinel handled correctly everywhere.
var ErrGone = errors.New("gone")

// Check matches with errors.Is and wraps with %w.
func Check(err error) error {
	if errors.Is(err, ErrGone) {
		return fmt.Errorf("still gone: %w", ErrGone)
	}
	if err == nil {
		return nil
	}
	return err
}
