package sentinel

// Fast compares identity on purpose: this error value never crosses a
// wrapping boundary.
func Fast(err error) bool {
	return err == ErrClosed //distec:nolint sentinelerr
}
