package lockorder

import "sync"

// A and B are two lock classes acquired in opposite orders below.
type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// Pair owns one of each.
type Pair struct {
	a *A
	b *B
}

// LockAB nests b under a.
func (p *Pair) LockAB() {
	p.a.mu.Lock()
	p.b.mu.Lock() // want "lock-order cycle: \\(lockorder.B\\).mu is acquired while \\(lockorder.A\\).mu is held"
	p.b.mu.Unlock()
	p.a.mu.Unlock()
}

// LockBA nests a under b — through a call, so only the call graph sees it.
func (p *Pair) LockBA() {
	p.b.mu.Lock()
	p.lockA() // want "lock-order cycle: call to lockA acquires \\(lockorder.A\\).mu while \\(lockorder.B\\).mu is held"
	p.a.mu.Unlock()
	p.b.mu.Unlock()
}

func (p *Pair) lockA() {
	p.a.mu.Lock()
}
