package lockorder

import "sync"

// Node is a list node; merging locks two nodes of the same class.
type Node struct{ mu sync.Mutex }

// MergeNodes double-acquires the Node class. The callers uphold an
// address-order invariant (x < y) the analyzer cannot see, so the
// self-edge is justified at the acquire site.
func MergeNodes(x, y *Node) {
	x.mu.Lock()
	//distec:nolint lockorder
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}
