package lockorder

import "sync"

// C and D are always taken in the same order: C before D.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

// Group owns one of each.
type Group struct {
	c *C
	d *D
}

// Both nests directly, in hierarchy order.
func (g *Group) Both() {
	g.c.mu.Lock()
	g.d.mu.Lock()
	g.d.mu.Unlock()
	g.c.mu.Unlock()
}

// BothViaCall nests through a call — same order, still no cycle.
func (g *Group) BothViaCall() {
	g.c.mu.Lock()
	g.lockD()
	g.d.mu.Unlock()
	g.c.mu.Unlock()
}

func (g *Group) lockD() {
	g.d.mu.Lock()
}
