package hot

import "fmt"

// Debug is hot but deliberately logs while a regression is being
// chased.
//
//distec:hotpath
func (s *State) Debug(r int) {
	fmt.Println("round", r) //distec:nolint hotpath
}
