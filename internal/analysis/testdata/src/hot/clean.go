package hot

import "fmt"

// Step is the reuse-and-guard shape the engines use: cold error exits
// may format, appends reuse their slice, tracer calls sit behind a nil
// check.
//
//distec:hotpath
func (s *State) Step(r int) error {
	if r < 0 {
		return fmt.Errorf("hot: negative round %d", r)
	}
	s.buf = append(s.buf, r)
	if s.span != nil {
		s.span.Round(r)
	}
	return nil
}

// Helper is unmarked, so the analyzer leaves it alone.
func Helper(r int) string {
	return fmt.Sprintf("round %d", r)
}
