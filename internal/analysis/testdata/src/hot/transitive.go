package hot

// Tick is marked; the allocation it pays for hides two calls down.
//
//distec:hotpath
func (s *State) Tick(r int) {
	s.note(r) // want "call to note in hot path transitively reaches fmt.Sprintf"
}

// note relays into the formatting helper — unmarked, so only the
// transitive walk connects it to Tick.
func (s *State) note(r int) {
	_ = Helper(r)
}

// cycleA and cycleB recurse mutually: the callee summary must terminate.
func cycleA(n int) int {
	if n <= 0 {
		return 0
	}
	return cycleB(n - 1)
}

func cycleB(n int) int {
	return cycleA(n)
}

// Spin is marked and only reaches arithmetic through the cycle — clean.
//
//distec:hotpath
func Spin(n int) int {
	return cycleA(n)
}

// warm allocates its map once behind a sync.Once in the real pattern;
// the hot caller justifies the edge at the call site.
func warm() map[int]bool {
	m := map[int]bool{}
	return m
}

// Prime is marked and calls the allocating helper with justification.
//
//distec:hotpath
func Prime() {
	//distec:nolint hotpath
	_ = warm()
}
