package hot

import (
	"fmt"

	"distecvet.example/stubs/trace"
)

// State is a per-round accumulator.
type State struct {
	span *trace.Span
	buf  []int
}

// Round is the per-round body, with one of everything the analyzer
// rejects.
//
//distec:hotpath
func (s *State) Round(r int) {
	fmt.Println("round", r) // want "fmt.Println in hot path"
	s.span.Round(r)         // want "unguarded tracer call s.span.Round"
	seen := map[int]bool{}  // want "map literal in hot path"
	_ = seen
	fresh := append(s.buf, r) // want "append to fresh slice in hot path"
	_ = fresh
	f := func() int { return r } // want "closure capturing r in hot path"
	_ = f()
}
