package ctxflow

import (
	"context"
	"time"
)

// Fetch follows the discipline: ctx first, cancel deferred immediately.
func Fetch(ctx context.Context, name string) error {
	_ = name
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return ctx.Err()
}

// NewTimeout derives and hands ownership of cancel to the caller.
func NewTimeout(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	return ctx, cancel
}

// Register passes cancel to a collector that owns the shutdown.
func Register(parent context.Context, own func(context.CancelFunc)) context.Context {
	ctx, cancel := context.WithCancel(parent)
	own(cancel)
	return ctx
}
