package ctxflow

import (
	"context"
	"time"
)

// Holder stores a context — later uses observe a stale deadline.
type Holder struct {
	ctx context.Context // want "context.Context stored in struct field \"ctx\""
}

// Lookup buries ctx behind another parameter.
func Lookup(name string, ctx context.Context) error { // want "context.Context parameter \"ctx\" is not first"
	_ = name
	return ctx.Err()
}

// Detach mints a fresh root in request-scoped code.
func Detach() error {
	ctx := context.Background() // want "context.Background\\(\\) in request-scoped package"
	return ctx.Err()
}

// Discard throws the cancel function away.
func Discard(parent context.Context) error {
	ctx, _ := context.WithCancel(parent) // want "cancel function of context.WithCancel discarded"
	return ctx.Err()
}

// Forget keeps cancel but never calls it.
func Forget(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent) // want "cancel function \"cancel\" of context.WithCancel is never called"
	_ = cancel
	return ctx.Err()
}

// Race cancels only on the fall-through path.
func Race(parent context.Context, fail bool) error {
	ctx, cancel := context.WithTimeout(parent, time.Second) // want "called but not deferred, and a return path precedes the call"
	if fail {
		return ctx.Err()
	}
	cancel()
	return nil
}
