package ctxflow

import "context"

// Boot runs before any request exists; the fresh root is the design.
func Boot() error {
	//distec:nolint ctxflow
	ctx := context.Background()
	return ctx.Err()
}

// Pinned is a daemon-lifetime component whose own lifecycle root lives
// in the struct on purpose (it is created and cancelled by the struct,
// never stored from a caller).
type Pinned struct {
	//distec:nolint ctxflow
	ctx context.Context
}

// Ctx exposes the lifecycle root.
func (p *Pinned) Ctx() context.Context { return p.ctx }
