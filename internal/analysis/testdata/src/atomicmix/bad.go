package atomicmix

import "sync/atomic"

// Counter mixes atomic and plain access to n.
type Counter struct {
	n int64
}

// Inc is the atomic side.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.n, 1)
}

// Read is the racy plain side.
func (c *Counter) Read() int64 {
	return c.n // want "n is accessed atomically at .* but with a plain read/write here"
}
