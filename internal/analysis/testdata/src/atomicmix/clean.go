package atomicmix

import "sync/atomic"

// Gauge is consistently atomic on every access.
type Gauge struct {
	v int64
}

// Set stores atomically.
func (g *Gauge) Set(x int64) { atomic.StoreInt64(&g.v, x) }

// Get loads atomically.
func (g *Gauge) Get() int64 { return atomic.LoadInt64(&g.v) }
