package atomicmix

import "sync/atomic"

// Stat is written plainly only inside its constructor, before any other
// goroutine can hold the pointer — a justified single-owner phase.
type Stat struct {
	hits int64
}

// NewStat seeds the counter pre-publication.
func NewStat(seed int64) *Stat {
	s := &Stat{}
	//distec:nolint atomicmix
	s.hits = seed
	return s
}

// Hit is the concurrent, atomic side.
func (s *Stat) Hit() { atomic.AddInt64(&s.hits, 1) }
