package determ

import "sort"

// Collect is the canonical deterministic shape: collect under the map
// range, sort, then apply in sorted order.
func Collect(in map[string]int, out []int) {
	keys := make([]string, 0, len(in))
	for k := range in {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		out[i] = in[k]
	}
}

// Locals may be written freely under a map range.
func MaxValue(in map[string]int) int {
	best := 0
	for _, v := range in {
		if w := v * v; w > best*best {
			_ = w
		}
	}
	return best
}
