package determ

import (
	"math/rand"
	"time"
)

// Frequencies copies values out in map order.
func Frequencies(in map[string]int, out []int) {
	i := 0
	for _, v := range in {
		out[i] = v // want "write to out\\[i\\] inside range over map in"
		i++
	}
}

// Keys collects keys and never sorts them.
func Keys(in map[string]int) []string {
	var out []string
	for k := range in {
		out = append(out, k) // want "append to out inside range over map in is never sorted"
	}
	return out
}

// Jitter mixes wall time and the global source into a result.
func Jitter() time.Duration {
	d := time.Duration(rand.Intn(10)) // want "global math/rand.Intn in solver code"
	if time.Now().IsZero() {          // want "wall-clock call time.Now in solver code"
		return 0
	}
	return d
}

// Merge returns whichever arrives first.
func Merge(a, b chan int) int {
	select { // want "select over 2 channels"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
