package determ

// Sum folds commutatively; iteration order cannot reach the result.
func Sum(in map[string]int) int {
	total := 0
	for _, v := range in {
		total += v //distec:nolint determinism
	}
	return total
}
