package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestNilSafety pins the disabled-tracer contract: every method on a nil
// *Trace and nil *Span must be a no-op, because the engines call through
// unconditionally.
func TestNilSafety(t *testing.T) {
	var tr *Trace
	tr.SetLabel("phase")
	tr.SetRequestID("id")
	if got := tr.RequestID(); got != "" {
		t.Errorf("nil RequestID = %q, want empty", got)
	}
	span := tr.StartSpan("sequential", 10)
	if span != nil {
		t.Fatal("nil trace must start nil spans")
	}
	span.Round(RoundEvent{Round: 1})
	span.End(errors.New("ignored"))
	if spans := tr.Spans(); spans != nil {
		t.Errorf("nil Spans = %v, want nil", spans)
	}
	tr.VisitRounds(func(RoundEvent) { t.Error("nil trace visited a round") })
	if sum := tr.Summary(); sum != nil {
		t.Errorf("nil Summary = %v, want nil", sum)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil WriteChrome emitted invalid JSON: %v", err)
	}
	buf.Reset()
	var sum *Summary
	sum.Format(&buf)
	if !strings.Contains(buf.String(), "disabled") {
		t.Errorf("nil Summary.Format = %q, want a disabled marker", buf.String())
	}
}

// buildTrace assembles a deterministic two-phase trace by hand.
func buildTrace() *Trace {
	tr := New()
	tr.SetLabel("defective")
	s1 := tr.StartSpan("sequential", 100)
	s1.Round(RoundEvent{Round: 1, Duration: 4 * time.Millisecond, Messages: 50, Received: 40, Halted: 0, Active: 100})
	s1.Round(RoundEvent{Round: 2, Duration: 2 * time.Millisecond, Messages: 0, Received: 10, Halted: 0, Active: 100})
	s1.Round(RoundEvent{Round: 3, Duration: 1 * time.Millisecond, Messages: 30, Received: 30, Halted: 100, Active: 0})
	s1.End(nil)
	tr.SetLabel("base")
	s2 := tr.StartSpan("sharded-2", 60)
	s2.Round(RoundEvent{Round: 1, Duration: 8 * time.Millisecond, Messages: 20, Received: 20, Halted: 60, Active: 0,
		ShardBusy: []time.Duration{3 * time.Millisecond, 5 * time.Millisecond}})
	s2.End(nil)
	return tr
}

func TestSummaryRollup(t *testing.T) {
	tr := buildTrace()
	tr.SetRequestID("req-1")
	sum := tr.Summary()
	if sum.RequestID != "req-1" {
		t.Errorf("RequestID = %q", sum.RequestID)
	}
	if sum.Spans != 2 || sum.Rounds != 4 || sum.Messages != 100 {
		t.Errorf("totals = %d spans / %d rounds / %d msgs, want 2/4/100", sum.Spans, sum.Rounds, sum.Messages)
	}
	// Round 2 of span 1 sent nothing and halted nobody: quiescent.
	if sum.QuiescentRounds != 1 {
		t.Errorf("QuiescentRounds = %d, want 1", sum.QuiescentRounds)
	}
	if len(sum.Phases) != 2 || sum.Phases[0].Label != "defective" || sum.Phases[1].Label != "base" {
		t.Fatalf("phases = %+v, want defective then base (first-seen order)", sum.Phases)
	}
	if ph := sum.Phases[0]; ph.Spans != 1 || ph.Rounds != 3 || ph.Messages != 80 || ph.QuiescentRounds != 1 {
		t.Errorf("defective phase = %+v", ph)
	}
	if ph := sum.Phases[1]; ph.Spans != 1 || ph.Rounds != 1 || ph.Messages != 20 || ph.QuiescentRounds != 0 {
		t.Errorf("base phase = %+v", ph)
	}
	// Top rounds: sorted by duration descending, clipped at three.
	if len(sum.TopRounds) != 3 {
		t.Fatalf("TopRounds = %d entries, want 3", len(sum.TopRounds))
	}
	wantTop := []struct {
		label string
		round int
		durMS float64
	}{{"base", 1, 8}, {"defective", 1, 4}, {"defective", 2, 2}}
	for i, want := range wantTop {
		got := sum.TopRounds[i]
		if got.Label != want.label || got.Round != want.round || got.DurationMS != want.durMS {
			t.Errorf("TopRounds[%d] = %+v, want %+v", i, got, want)
		}
	}
}

// TestSummaryTopRoundsClip drives the candidate list far past the 2×3
// clip threshold and checks the global maxima still win.
func TestSummaryTopRoundsClip(t *testing.T) {
	tr := New()
	s := tr.StartSpan("sequential", 1)
	for i := 1; i <= 50; i++ {
		// Durations rise, so the last three rounds are the top three.
		s.Round(RoundEvent{Round: i, Duration: time.Duration(i) * time.Millisecond, Messages: 1})
	}
	s.End(nil)
	sum := tr.Summary()
	if len(sum.TopRounds) != 3 {
		t.Fatalf("TopRounds = %d entries, want 3", len(sum.TopRounds))
	}
	for i, want := range []int{50, 49, 48} {
		if got := sum.TopRounds[i].Round; got != want {
			t.Errorf("TopRounds[%d].Round = %d, want %d", i, got, want)
		}
	}
}

func TestSummaryFormat(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	tr.Summary().Format(&buf)
	out := buf.String()
	for _, want := range []string{
		"trace: 2 spans, 4 rounds (1 quiescent), 100 messages",
		"defective",
		"base",
		"top round 1: base round 1 (sharded-2)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteChrome checks the exported document is well-formed JSON whose
// round events agree with the embedded summary — the same consistency
// property the CI trace smoke enforces on a real solve.
func TestWriteChrome(t *testing.T) {
	tr := buildTrace()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string   `json:"displayTimeUnit"`
		Summary         *Summary `json:"summary"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if doc.Summary == nil {
		t.Fatal("document carries no summary")
	}
	rounds, quiescent, metadata, shardBusy := 0, 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M":
			metadata++
		case ev.Ph == "X" && strings.HasPrefix(ev.Name, "round "):
			rounds++
			if q, _ := ev.Args["quiescent"].(bool); q {
				quiescent++
			}
			if _, ok := ev.Args["shard_busy_us"]; ok {
				shardBusy++
			}
		}
	}
	// One process_name plus one thread_name per span.
	if metadata != 3 {
		t.Errorf("metadata events = %d, want 3", metadata)
	}
	if rounds != doc.Summary.Rounds || quiescent != doc.Summary.QuiescentRounds {
		t.Errorf("events report %d rounds (%d quiescent), summary says %d (%d)",
			rounds, quiescent, doc.Summary.Rounds, doc.Summary.QuiescentRounds)
	}
	if shardBusy != 1 {
		t.Errorf("shard_busy_us on %d rounds, want 1", shardBusy)
	}
}

func TestSpanError(t *testing.T) {
	tr := New()
	s := tr.StartSpan("sequential", 5)
	s.End(errors.New("boom"))
	if got := tr.Spans()[0].Err; got != "boom" {
		t.Errorf("span error = %q, want boom", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"error":"boom"`) {
		t.Error("chrome export dropped the span error")
	}
}

func TestVisitRoundsAndSpans(t *testing.T) {
	tr := buildTrace()
	var visited []int
	tr.VisitRounds(func(ev RoundEvent) { visited = append(visited, ev.Round) })
	want := []int{1, 2, 3, 1}
	if len(visited) != len(want) {
		t.Fatalf("visited %v, want %v", visited, want)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited %v, want %v", visited, want)
		}
	}
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Engine != "sequential" || spans[1].Engine != "sharded-2" {
		t.Errorf("Spans = %+v", spans)
	}
}

func TestContext(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Errorf("empty context carries a trace: %v", got)
	}
	tr := New()
	if got := FromContext(NewContext(ctx, tr)); got != tr {
		t.Error("context round trip lost the trace")
	}
	// Planting a nil trace must leave the context untouched, so a traced
	// parent context is not masked by an untraced child call.
	if got := NewContext(ctx, nil); got != ctx {
		t.Error("NewContext(nil) built a new context")
	}
}

func TestNewRequestID(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	a, b := NewRequestID(), NewRequestID()
	if !hex16.MatchString(a) || !hex16.MatchString(b) {
		t.Fatalf("malformed request IDs %q, %q", a, b)
	}
	if a == b {
		t.Errorf("consecutive request IDs collided: %q", a)
	}
}

func TestQuiescent(t *testing.T) {
	if !(RoundEvent{}).Quiescent() {
		t.Error("empty round must be quiescent")
	}
	if (RoundEvent{Messages: 1}).Quiescent() || (RoundEvent{Halted: 1}).Quiescent() {
		t.Error("rounds with traffic or halts must not be quiescent")
	}
}
