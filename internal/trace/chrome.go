// Chrome trace-event export: the JSON Object Format of the trace-event
// spec, loadable by Perfetto (ui.perfetto.dev) and chrome://tracing.
// One process, one thread lane per span; each round is a complete ("X")
// slice inside its span's slice, carrying the round counters as args.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one trace-event record. Timestamps and durations are
// microseconds from the trace epoch, per the spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the exported document. The trace-event spec allows extra
// top-level keys (viewers ignore them), so the solve summary rides
// along — one file answers both "load it in Perfetto" and "what were
// the headline numbers", and CI cross-checks the two against each
// other.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Summary         *Summary      `json:"summary"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// WriteChrome writes the trace as Chrome trace-event JSON. Safe to call
// on a nil trace (writes an empty, still-loadable document).
func (t *Trace) WriteChrome(w io.Writer) error {
	doc := chromeDoc{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
		Summary:         t.Summary(),
	}
	var spans []*Span
	if t != nil {
		spans = t.snapshot()
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": "distec solve"},
	})
	for i, s := range spans {
		tid := i + 1
		label := s.Label
		if label == "" {
			label = s.Engine
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": fmt.Sprintf("%02d %s [%s]", tid, label, s.Engine)},
		})
		spanArgs := map[string]any{
			"engine":   s.Engine,
			"label":    s.Label,
			"entities": s.Entities,
			"rounds":   len(s.Rounds),
		}
		if s.Err != "" {
			spanArgs["error"] = s.Err
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: label, Ph: "X", Pid: 1, Tid: tid,
			Ts: micros(s.Start), Dur: micros(s.Wall), Args: spanArgs,
		})
		// Rounds are placed back to back from the span start; inter-round
		// scheduling gaps are absorbed into the parent slice, not modeled.
		ts := s.Start
		for _, ev := range s.Rounds {
			args := map[string]any{
				"messages":  ev.Messages,
				"received":  ev.Received,
				"halted":    ev.Halted,
				"active":    ev.Active,
				"quiescent": ev.Quiescent(),
			}
			if len(ev.ShardBusy) > 0 {
				busy := make([]float64, len(ev.ShardBusy))
				for j, d := range ev.ShardBusy {
					busy[j] = micros(d)
				}
				args["shard_busy_us"] = busy
			}
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("round %d", ev.Round), Ph: "X", Pid: 1, Tid: tid,
				Ts: micros(ts), Dur: micros(ev.Duration), Args: args,
			})
			ts += ev.Duration
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
