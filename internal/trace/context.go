package trace

import "context"

type ctxKey struct{}

// NewContext returns ctx carrying tr. Attaching a nil trace returns ctx
// unchanged, so callers can thread an optional tracer without testing
// it first.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace carried by ctx, or nil. The dynamic
// layer uses this: session updates can't take per-call options, so the
// request handler parks the tracer on the context and the batch engine
// picks it up at apply time.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}
