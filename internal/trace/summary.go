package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Summary is the solve-level rollup of a trace: totals, the per-phase
// breakdown in first-execution order, and the most expensive rounds.
// It is what -trace-summary prints, what ?trace=1 returns inline, and
// what rides inside the exported Chrome document.
type Summary struct {
	RequestID       string  `json:"request_id,omitempty"`
	WallMS          float64 `json:"wall_ms"`
	Spans           int     `json:"spans"`
	Rounds          int     `json:"rounds"`
	QuiescentRounds int     `json:"quiescent_rounds"`
	Messages        int64   `json:"msgs_total"`

	Phases    []PhaseSummary `json:"phases,omitempty"`
	TopRounds []TopRound     `json:"top_rounds,omitempty"`
}

// PhaseSummary aggregates every span sharing one phase label.
type PhaseSummary struct {
	Label           string  `json:"label"`
	Spans           int     `json:"spans"`
	Rounds          int     `json:"rounds"`
	QuiescentRounds int     `json:"quiescent_rounds"`
	Messages        int64   `json:"messages"`
	WallMS          float64 `json:"wall_ms"`
}

// TopRound identifies one expensive round: where it ran and what it
// moved.
type TopRound struct {
	Span       int     `json:"span"`
	Label      string  `json:"label"`
	Engine     string  `json:"engine"`
	Round      int     `json:"round"`
	DurationMS float64 `json:"duration_ms"`
	Messages   int64   `json:"messages"`
	Received   int     `json:"received"`
}

// topRoundCount bounds the TopRounds list; 3 is the acceptance
// criterion's "top-3 most expensive rounds".
const topRoundCount = 3

// Summary rolls the trace up. Nil-safe: a nil trace summarizes to nil.
func (t *Trace) Summary() *Summary {
	if t == nil {
		return nil
	}
	spans := t.snapshot()
	t.mu.Lock()
	sum := &Summary{
		RequestID: t.reqID,
		WallMS:    float64(time.Since(t.epoch)) / float64(time.Millisecond),
		Spans:     len(spans),
	}
	t.mu.Unlock()

	byLabel := map[string]*PhaseSummary{}
	var order []string
	var top []TopRound
	for i, s := range spans {
		label := s.Label
		if label == "" {
			label = s.Engine
		}
		ph := byLabel[label]
		if ph == nil {
			ph = &PhaseSummary{Label: label}
			byLabel[label] = ph
			order = append(order, label)
		}
		ph.Spans++
		ph.WallMS += float64(s.Wall) / float64(time.Millisecond)
		for _, ev := range s.Rounds {
			sum.Rounds++
			sum.Messages += ev.Messages
			ph.Rounds++
			ph.Messages += ev.Messages
			if ev.Quiescent() {
				sum.QuiescentRounds++
				ph.QuiescentRounds++
			}
			top = append(top, TopRound{
				Span: i, Label: label, Engine: s.Engine, Round: ev.Round,
				DurationMS: float64(ev.Duration) / float64(time.Millisecond),
				Messages:   ev.Messages, Received: ev.Received,
			})
			// Keep the candidate list small: sort and clip once it doubles.
			if len(top) >= 2*topRoundCount {
				sortTop(top)
				top = top[:topRoundCount]
			}
		}
	}
	sortTop(top)
	if len(top) > topRoundCount {
		top = top[:topRoundCount]
	}
	sum.TopRounds = top
	for _, label := range order {
		sum.Phases = append(sum.Phases, *byLabel[label])
	}
	return sum
}

func sortTop(top []TopRound) {
	sort.SliceStable(top, func(i, j int) bool { return top[i].DurationMS > top[j].DurationMS })
}

// Format writes the human-readable summary (-trace-summary output).
func (s *Summary) Format(w io.Writer) {
	if s == nil {
		fmt.Fprintln(w, "trace: (disabled)")
		return
	}
	fmt.Fprintf(w, "trace: %d spans, %d rounds (%d quiescent), %d messages, wall %.1fms",
		s.Spans, s.Rounds, s.QuiescentRounds, s.Messages, s.WallMS)
	if s.RequestID != "" {
		fmt.Fprintf(w, ", request %s", s.RequestID)
	}
	fmt.Fprintln(w)
	if len(s.Phases) > 0 {
		fmt.Fprintf(w, "%-12s %6s %8s %10s %12s %10s\n", "phase", "spans", "rounds", "quiescent", "messages", "wall")
		for _, ph := range s.Phases {
			fmt.Fprintf(w, "%-12s %6d %8d %10d %12d %8.1fms\n",
				ph.Label, ph.Spans, ph.Rounds, ph.QuiescentRounds, ph.Messages, ph.WallMS)
		}
	}
	for i, tr := range s.TopRounds {
		fmt.Fprintf(w, "top round %d: %s round %d (%s) — %.3fms, %d messages, %d received\n",
			i+1, tr.Label, tr.Round, tr.Engine, tr.DurationMS, tr.Messages, tr.Received)
	}
}
