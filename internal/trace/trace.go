// Package trace is a zero-dependency, round-resolved execution tracer
// for the LOCAL engines. A *Trace collects one Span per protocol
// execution (one local.Engine.Run, or one step-driven Exec/SeqExec
// drive) and one RoundEvent per synchronous round inside it: duration,
// messages sent, entities that received state, entities that halted,
// and — for the sharded engine — per-shard busy time.
//
// Every method on *Trace and *Span is nil-safe: a nil tracer is the
// disabled state, engines call through it unconditionally, and the
// whole feature costs one pointer test per round when off. That is the
// contract the ≤2% disabled-overhead gate in BENCH_trace.json holds
// the engines to.
//
// Counter semantics are engine-invariant by construction, so the
// cross-engine equivalence matrix can assert on them bit-for-bit:
//
//   - Messages: non-nil messages sent this round (same count every
//     engine reports in its Stats).
//   - Received: entities, not yet halted, that had at least one message
//     delivered this round. "Entities processed" would NOT be invariant
//     (the goroutines engine ticks every entity each round; sequential
//     and sharded skip sleepers), but deliveries are bit-identical.
//   - Halted: entities whose Receive returned done this round.
//   - Active: entities still running after the round's halts.
//
// A round with Messages == 0 and Halted == 0 is quiescent: no entity
// could have observed anything new, so it is pure simulation overhead —
// the round-compression target the raw-speed pass optimizes against.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Trace accumulates spans for one solve (one CLI run, one daemon
// request, or one dynamic-session batch). Safe for concurrent use; the
// engines only take the lock when tracing is actually on.
type Trace struct {
	mu    sync.Mutex
	epoch time.Time
	reqID string
	label string
	spans []*Span
}

// New returns an empty trace whose epoch (the zero timestamp all span
// and round offsets are relative to) is now.
func New() *Trace {
	return &Trace{epoch: time.Now()}
}

// SetLabel sets the phase label attached to spans started from here on.
// The solver calls this at phase boundaries ("linial", "defective",
// "chain", "base"); a nil receiver is a no-op.
func (t *Trace) SetLabel(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.label = label
	t.mu.Unlock()
}

// SetRequestID attaches the serving-layer request ID (X-Request-Id) so
// exported traces and summaries are joinable with access logs.
func (t *Trace) SetRequestID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reqID = id
	t.mu.Unlock()
}

// RequestID returns the attached request ID ("" when unset or nil).
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reqID
}

// StartSpan opens a span for one protocol execution on the named engine
// over the given entity count, stamped with the current phase label.
// On a nil trace it returns a nil span, whose methods are all no-ops —
// the engines never test the tracer themselves beyond this call.
func (t *Trace) StartSpan(engine string, entities int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{
		tr:       t,
		Engine:   engine,
		Label:    t.label,
		Entities: entities,
		Start:    time.Since(t.epoch),
	}
	t.spans = append(t.spans, s)
	return s
}

// snapshot copies the span list under the lock so exporters can walk it
// without racing live engines (a traced solve may still be running when
// an aggregator reads partial state).
func (t *Trace) snapshot() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Spans returns a snapshot of the span list in execution order. The
// slice is a copy; the spans are shared — read them only after the
// traced solve has returned. A nil trace returns nil.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	return t.snapshot()
}

// VisitRounds calls f for every recorded round event, span by span in
// execution order. Aggregators (the daemon's round-duration histogram)
// use it instead of reaching into span internals; a nil trace visits
// nothing. The span list is snapshotted first, but events are read
// without the lock — call only after the traced solve has returned.
func (t *Trace) VisitRounds(f func(RoundEvent)) {
	if t == nil {
		return
	}
	for _, s := range t.snapshot() {
		for _, ev := range s.Rounds {
			f(ev)
		}
	}
}

// Span records one protocol execution: which engine ran it, under which
// phase label, over how many entities, and its per-round event stream.
type Span struct {
	tr *Trace

	Engine   string
	Label    string
	Entities int
	// Start is the offset from the trace epoch; Wall the span's total
	// duration (set by End).
	Start time.Duration
	Wall  time.Duration
	Err   string

	Rounds []RoundEvent
}

// Round appends one round's event. Engines emit from a single
// goroutine per span (the driver, or a barrier/phaser last-arrival
// hook), but the trace lock is taken anyway so exporters and the race
// detector see a consistent stream.
func (s *Span) Round(ev RoundEvent) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Rounds = append(s.Rounds, ev)
	s.tr.mu.Unlock()
}

// End closes the span, stamping its wall duration and any execution
// error.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Wall = time.Since(s.tr.epoch) - s.Start
	if err != nil {
		s.Err = err.Error()
	}
	s.tr.mu.Unlock()
}

// RoundEvent is one synchronous round as every engine reports it.
type RoundEvent struct {
	// Round is the 1-based round number within the span.
	Round    int
	Duration time.Duration
	// Messages counts non-nil messages sent this round; Received the
	// not-yet-halted entities that had at least one delivered; Halted
	// the entities whose Receive returned done; Active the entities
	// still running afterwards. All four are engine-invariant.
	Messages int64
	Received int
	Halted   int
	Active   int
	// ShardBusy is the per-shard busy time for this round (sharded
	// engine only; nil elsewhere). Skew between entries is the
	// partitioner's imbalance.
	ShardBusy []time.Duration
}

// Quiescent reports whether the round carried no information: nothing
// was sent and nothing halted, so no entity could have changed state
// observably. Quiescent rounds are the round-compression opportunity.
func (e RoundEvent) Quiescent() bool {
	return e.Messages == 0 && e.Halted == 0
}

// NewRequestID returns a fresh 16-hex-char request ID (crypto/rand),
// the ID minted when a client did not supply X-Request-Id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps
		// the serving path alive and is obvious in logs.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
