package listcolor

import (
	"fmt"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// SolveBase solves a list edge coloring instance with slack 1 — every active
// edge's list strictly larger than its active degree — in O(Δ̄² + log* X)
// rounds: Linial reduces the initial X-coloring of the active conflict graph
// to K = O(Δ̄²) classes, then one class per round picks greedily from its
// remaining list. This is the solver the paper's recursion invokes for the
// constant-degree base case and for the T(2p−1, 1, 2p) sub-instances, where
// Δ̄ is small and O(Δ̄²) rounds are affordable.
//
// initColors optionally provides a proper coloring of the active conflict
// graph with initX colors (used by the recursion to hand down the globally
// computed O(Δ̄²)-coloring so log* is paid once); pass nil to start from edge
// IDs (X = g.M()).
//
// The returned slice maps EdgeID to chosen color, −1 for inactive edges.
func SolveBase(in *Instance, initColors []int, initX int, run local.Engine) ([]int, local.Stats, error) {
	g := in.G
	pairs := make([][2]int64, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		pairs[e] = [2]int64{int64(u), int64(v)}
	}
	return SolvePairs(pairs, in.Active, in.Lists, initColors, initX, run)
}

// greedyByClass is the per-edge protocol of the greedy phase: the edge whose
// Linial class is c picks, in round c+1, the smallest color of its list not
// taken by an already-colored conflicting edge, and announces it.
type greedyByClass struct {
	v      local.View
	class  int
	k      int
	list   []int
	taken  map[int]bool
	color  int
	picked bool
	chosen []int
	errs   *local.ErrorSink
}

func (gb *greedyByClass) Send(r int) []local.Message {
	if r != gb.class+1 {
		return nil
	}
	gb.pick()
	msgs := make([]local.Message, gb.v.Degree)
	for p := range msgs {
		msgs[p] = gb.color
	}
	return msgs
}

func (gb *greedyByClass) pick() {
	gb.picked = true
	for _, c := range gb.list {
		if !gb.taken[c] {
			gb.color = c
			return
		}
	}
	gb.errs.Set(fmt.Errorf("listcolor: edge entity %d (class %d) has no free color: |L|=%d, %d taken",
		gb.v.Index, gb.class, len(gb.list), len(gb.taken)))
	gb.color = -1
}

func (gb *greedyByClass) Receive(r int, inbox []local.Message) bool {
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if c := m.(int); c >= 0 {
			if gb.taken == nil {
				gb.taken = make(map[int]bool)
			}
			gb.taken[c] = true
		}
	}
	return gb.endOfRound(r)
}

// ReceiveNone implements local.SparseReceiver: rounds in which no neighbor
// announced need no inbox scan — the long quiet stretches of the
// one-class-per-round schedule.
func (gb *greedyByClass) ReceiveNone(r int) bool {
	return gb.endOfRound(r)
}

// NextWake implements local.Sleeper: until its class's round, a quiet edge
// neither sends nor changes state, so the engine may skip it entirely.
func (gb *greedyByClass) NextWake(r int) int { return gb.class + 1 }

func (gb *greedyByClass) endOfRound(r int) bool {
	if r >= gb.class+1 {
		// This edge has announced; its color is final. Halting here (rather
		// than waiting out all k classes) is sound: halting is a per-entity
		// decision in the LOCAL model, and everything this edge will ever
		// send has been delivered.
		gb.chosen[gb.v.Index] = gb.color
		if !gb.picked {
			gb.errs.Set(fmt.Errorf("listcolor: edge entity %d class %d never picked (k=%d)", gb.v.Index, gb.class, gb.k))
		}
		return true
	}
	return false
}

// GreedySequential is the centralized greedy oracle: edges in EdgeID order
// pick the smallest list color unused among already-colored conflicting
// edges. It succeeds on every slack-1 instance and serves as the correctness
// reference for the distributed solvers. Not a distributed algorithm.
func GreedySequential(in *Instance) ([]int, error) {
	g := in.G
	out := make([]int, g.M())
	for e := range out {
		out[e] = -1
	}
	for e := 0; e < g.M(); e++ {
		if !in.Active[e] {
			continue
		}
		used := make(map[int]bool)
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if out[f] >= 0 {
				used[out[f]] = true
			}
		})
		picked := -1
		for _, c := range in.Lists[e] {
			if !used[c] {
				picked = c
				break
			}
		}
		if picked < 0 {
			return nil, fmt.Errorf("listcolor: greedy stuck at edge %d (|L|=%d)", e, len(in.Lists[e]))
		}
		out[e] = picked
	}
	return out, nil
}
