package listcolor

import (
	"fmt"

	"github.com/distec/distec/internal/linial"
	"github.com/distec/distec/internal/local"
)

// SolveOnTopology runs the base solver on an arbitrary conflict topology:
// Linial-reduce the initial coloring to O(Δ²) classes, then one greedy class
// per round. Every entity's list must strictly exceed its topology degree.
// This is the engine shared by SolvePairs (edge entities) and by the vertex
// coloring extension (node entities).
func SolveOnTopology(t *local.Topology, initial []int, x int, lists [][]int, run local.Engine) ([]int, local.Stats, error) {
	if run == nil {
		run = local.Sequential
	}
	if len(lists) != t.N() {
		return nil, local.Stats{}, fmt.Errorf("listcolor: %d lists for %d entities", len(lists), t.N())
	}
	for i := 0; i < t.N(); i++ {
		if len(lists[i]) <= t.Degree(i) {
			return nil, local.Stats{}, fmt.Errorf("listcolor: entity %d has |L|=%d ≤ degree %d", i, len(lists[i]), t.Degree(i))
		}
	}
	classes, stats, err := linial.Reduce(t, initial, x, run)
	if err != nil {
		return nil, stats, err
	}
	k := linial.Colors(x, t.MaxDeg)
	chosen := make([]int, t.N())
	errs := &local.ErrorSink{}
	factory := func(v local.View) local.Protocol {
		return &greedyByClass{
			v:      v,
			class:  classes[v.Index],
			k:      k,
			list:   lists[v.Index],
			chosen: chosen,
			errs:   errs,
		}
	}
	gs, err := run.Run(t, factory, nil)
	stats.Rounds += gs.Rounds
	stats.Messages += gs.Messages
	if err != nil {
		return nil, stats, err
	}
	if err := errs.Err(); err != nil {
		return nil, stats, err
	}
	return chosen, stats, nil
}
