package listcolor

import (
	"fmt"

	"github.com/distec/distec/internal/local"
)

// SolvePairs solves a slack-1 list coloring instance on a pair system: item
// i occupies side keys pairs[i], two items conflict iff they share a key,
// and each active item must pick a color from its list that no conflicting
// active item picks. Every active item's list must be strictly larger than
// its active conflict degree (the (deg(e)+1)-list condition).
//
// This is the engine behind SolveBase, exposed at the pair-system level so
// the paper's recursion can run it on virtual graphs (§4.2) and on subspace
// assignment instances, where the "nodes" are virtual copies rather than
// graph nodes.
//
// initColors optionally provides a proper coloring of the active conflict
// system with initX colors; nil falls back to item indices (X = len(pairs)).
// Returns a color per item (−1 for inactive ones).
func SolvePairs(pairs [][2]int64, active []bool, lists [][]int, initColors []int, initX int, run local.Engine) ([]int, local.Stats, error) {
	if run == nil {
		run = local.Sequential
	}
	m := len(pairs)
	if active == nil {
		active = make([]bool, m)
		for i := range active {
			active[i] = true
		}
	}
	if len(lists) != m {
		return nil, local.Stats{}, fmt.Errorf("listcolor: %d lists for %d items", len(lists), m)
	}
	// Compact to the active items before building the conflict topology:
	// callers hand in sparse masks over large item universes, and topology
	// construction must not pay for inactive items.
	orig := make([]int, 0, m)
	for i := 0; i < m; i++ {
		if active[i] {
			orig = append(orig, i)
		}
	}
	cPairs := make([][2]int64, len(orig))
	for i, oe := range orig {
		cPairs[i] = pairs[oe]
	}
	sub := local.PairConflict(cPairs)

	init := make([]int, sub.N())
	x := initX
	if initColors == nil {
		x = m
		for i, oe := range orig {
			init[i] = oe
		}
	} else {
		if len(initColors) != m {
			return nil, local.Stats{}, fmt.Errorf("listcolor: initColors has %d entries for %d items", len(initColors), m)
		}
		for i, oe := range orig {
			init[i] = initColors[oe]
		}
	}

	subLists := make([][]int, sub.N())
	for i, oe := range orig {
		subLists[i] = lists[oe]
	}
	chosen, stats, err := SolveOnTopology(sub, init, x, subLists, run)
	if err != nil {
		return nil, stats, err
	}
	out := make([]int, m)
	for e := range out {
		out[e] = -1
	}
	for i, oe := range orig {
		out[oe] = chosen[i]
	}
	return out, stats, nil
}
