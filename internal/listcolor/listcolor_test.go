package listcolor

import (
	"testing"
	"testing/quick"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// properList checks that colors is a proper, list-respecting coloring of the
// instance: every active edge colored from its list, conflicting active edges
// differing, inactive edges uncolored.
func properList(t *testing.T, in *Instance, colors []int) {
	t.Helper()
	g := in.G
	for e := 0; e < g.M(); e++ {
		if !in.Active[e] {
			if colors[e] != -1 {
				t.Fatalf("inactive edge %d got color %d", e, colors[e])
			}
			continue
		}
		c := colors[e]
		if c < 0 {
			t.Fatalf("active edge %d uncolored", e)
		}
		if !contains(in.Lists[e], c) {
			t.Fatalf("edge %d color %d not in its list %v", e, c, in.Lists[e])
		}
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if in.Active[f] && colors[f] == c {
				t.Fatalf("edges %d and %d conflict with color %d", e, f, c)
			}
		})
	}
}

func TestNewUniformSolvesFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(30)},
		{"complete", graph.Complete(8)},
		{"star", graph.Star(10)},
		{"regular", graph.RandomRegular(40, 4, 1)},
		{"bipartite", graph.CompleteBipartite(5, 6)},
		{"tree", graph.RandomTree(50, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := 2*tc.g.MaxDegree() - 1
			in := NewUniform(tc.g, c)
			if err := in.Validate(1); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			colors, stats, err := SolveBase(in, nil, 0, local.Sequential)
			if err != nil {
				t.Fatalf("SolveBase: %v", err)
			}
			properList(t, in, colors)
			if stats.Rounds <= 0 {
				t.Fatal("no rounds recorded")
			}
		})
	}
}

func TestDegreeListsSolve(t *testing.T) {
	g := graph.RandomRegular(36, 5, 3)
	in, err := NewDegreeLists(g, 3*g.MaxEdgeDegree(), 7)
	if err != nil {
		t.Fatalf("NewDegreeLists: %v", err)
	}
	if err := in.Validate(1); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	colors, _, err := SolveBase(in, nil, 0, local.Sequential)
	if err != nil {
		t.Fatalf("SolveBase: %v", err)
	}
	properList(t, in, colors)
}

func TestDegreeListsRejectsSmallPalette(t *testing.T) {
	g := graph.Complete(5)
	if _, err := NewDegreeLists(g, g.MaxEdgeDegree(), 1); err == nil {
		t.Fatal("accepted palette ≤ Δ̄")
	}
}

func TestPartialInstance(t *testing.T) {
	// Only even-ID edges active: lists must beat the ACTIVE degree only.
	g := graph.Complete(7)
	in := NewUniform(g, 2*g.MaxDegree()-1)
	for e := 0; e < g.M(); e++ {
		if e%2 == 1 {
			in.Active[e] = false
		}
	}
	colors, _, err := SolveBase(in, nil, 0, local.Sequential)
	if err != nil {
		t.Fatalf("SolveBase: %v", err)
	}
	properList(t, in, colors)
}

func TestSolveBaseWithInitialColoring(t *testing.T) {
	g := graph.RandomRegular(30, 4, 9)
	in := NewUniform(g, 2*g.MaxDegree()-1)
	// Hand down edge IDs as the "initial X-coloring".
	init := make([]int, g.M())
	for e := range init {
		init[e] = e
	}
	colors, _, err := SolveBase(in, init, g.M(), local.Sequential)
	if err != nil {
		t.Fatalf("SolveBase: %v", err)
	}
	properList(t, in, colors)
}

func TestSolveBaseEnginesAgree(t *testing.T) {
	g := graph.RandomRegular(28, 4, 5)
	in := NewUniform(g, 2*g.MaxDegree()-1)
	a, sa, err := SolveBase(in, nil, 0, local.Sequential)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	b, sb, err := SolveBase(in, nil, 0, local.Goroutines)
	if err != nil {
		t.Fatalf("goroutines: %v", err)
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	for e := range a {
		if a[e] != b[e] {
			t.Fatalf("edge %d: %d vs %d", e, a[e], b[e])
		}
	}
}

func TestGreedySequentialOracle(t *testing.T) {
	g := graph.GNP(40, 0.15, 13)
	in := NewUniform(g, 2*g.MaxDegree()-1)
	colors, err := GreedySequential(in)
	if err != nil {
		t.Fatalf("GreedySequential: %v", err)
	}
	properList(t, in, colors)
}

func TestGreedySequentialStuckDetection(t *testing.T) {
	// Two conflicting edges with identical singleton lists: unsolvable.
	g := graph.Path(3)
	in := &Instance{
		G:      g,
		Active: []bool{true, true},
		Lists:  [][]int{{0}, {0}},
		C:      1,
	}
	if _, err := GreedySequential(in); err == nil {
		t.Fatal("greedy succeeded on unsolvable instance")
	}
}

func TestValidateCatchesSlackViolation(t *testing.T) {
	g := graph.Path(3) // two edges conflicting
	in := &Instance{
		G:      g,
		Active: []bool{true, true},
		Lists:  [][]int{{0}, {1}}, // size 1 = deg, needs > deg
		C:      2,
	}
	if err := in.Validate(1); err == nil {
		t.Fatal("Validate accepted slack violation")
	}
	if err := in.Validate(0); err != nil {
		t.Fatalf("Validate(0) should skip slack: %v", err)
	}
}

func TestValidateCatchesBadLists(t *testing.T) {
	g := graph.Path(2)
	for _, tc := range []struct {
		name  string
		lists [][]int
		c     int
	}{
		{"empty", [][]int{{}}, 3},
		{"out of range", [][]int{{5}}, 3},
		{"descending", [][]int{{2, 1}}, 3},
		{"duplicate", [][]int{{1, 1}}, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := &Instance{G: g, Active: []bool{true}, Lists: tc.lists, C: tc.c}
			if err := in.Validate(0); err == nil {
				t.Fatal("Validate accepted malformed instance")
			}
		})
	}
}

func TestActiveDegree(t *testing.T) {
	g := graph.Star(5) // 4 edges, all pairwise conflicting
	in := NewUniform(g, 7)
	if got := in.ActiveDegree(0); got != 3 {
		t.Fatalf("ActiveDegree = %d, want 3", got)
	}
	in.Active[1] = false
	in.Active[2] = false
	if got := in.ActiveDegree(0); got != 1 {
		t.Fatalf("ActiveDegree after deactivation = %d, want 1", got)
	}
	if got := in.MaxActiveDegree(); got != 1 {
		t.Fatalf("MaxActiveDegree = %d, want 1", got)
	}
	if got := in.NumActive(); got != 2 {
		t.Fatalf("NumActive = %d, want 2", got)
	}
}

// Property: SolveBase and GreedySequential both succeed and agree with the
// instance contract on random graphs with random degree+1 lists.
func TestSolveBaseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(24, 0.15, seed)
		if g.M() < 2 {
			return true
		}
		in, err := NewDegreeLists(g, g.MaxEdgeDegree()+8, seed)
		if err != nil {
			return false
		}
		colors, _, err := SolveBase(in, nil, 0, local.Sequential)
		if err != nil {
			return false
		}
		for e := 0; e < g.M(); e++ {
			if colors[e] < 0 || !contains(in.Lists[e], colors[e]) {
				return false
			}
			bad := false
			g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
				if colors[f] == colors[e] {
					bad = true
				}
			})
			if bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// The round count of the base solver must be O(Δ̄² + log*): the greedy phase
// is bounded by the Linial fixpoint K = O(Δ̄²).
func TestSolveBaseRoundBound(t *testing.T) {
	g := graph.RandomRegular(60, 4, 21)
	in := NewUniform(g, 2*g.MaxDegree()-1)
	_, stats, err := SolveBase(in, nil, 0, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	dbar := g.MaxEdgeDegree()
	bound := 9*(dbar+1)*(dbar+1) + 30 // K + plan length envelope
	if stats.Rounds > bound {
		t.Fatalf("rounds %d > envelope %d", stats.Rounds, bound)
	}
}
