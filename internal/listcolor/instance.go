// Package listcolor defines list edge coloring instances — the problem
// family P(Δ̄, S, C) of the paper (§4) — and provides the two solvers the
// recursion bottoms out on:
//
//   - SolveBase: the distributed O(Δ̄² + log* X) solver (Linial classes plus
//     one greedy class per round). The paper uses it as both the
//     "T(O(1), S, C) = O(log* X)" base case and the T(2p−1, 1, 2p) oracle
//     inside the color space reduction.
//   - GreedySequential: the centralized greedy oracle, used by tests as a
//     correctness reference and by experiments as a color-count floor.
//
// An Instance is defined over a subset of the edges of a graph (Active);
// conflicts are edges sharing an endpoint, restricted to active edges. Lists
// are sets of colors from the palette {0, …, C−1}. The invariant required by
// the solvable case is |Le| > S · deg_active(e) for slack S ≥ 1, with the
// paper's "(deg(e)+1)-list edge coloring" corresponding to S = 1.
package listcolor

import (
	"fmt"
	"sort"

	"github.com/distec/distec/internal/graph"
)

// Instance is a list edge coloring instance over the active edges of G.
type Instance struct {
	// G is the underlying graph; conflict = sharing an endpoint.
	G *Graph
	// Active marks the edges participating in this instance, by EdgeID.
	Active []bool
	// Lists holds each active edge's allowed colors, ascending, by EdgeID.
	// Entries of inactive edges are ignored.
	Lists [][]int
	// C is the palette size: every list color lies in [0, C).
	C int
}

// Graph aliases graph.Graph so that callers of this package read naturally.
type Graph = graph.Graph

// NewUniform returns the instance where every edge of g is active with the
// full palette {0..c−1} as its list. With c = 2Δ−1 this is the classic
// (2Δ−1)-edge coloring problem; any c ≥ Δ̄+1 is (deg(e)+1)-solvable.
func NewUniform(g *Graph, c int) *Instance {
	m := g.M()
	lists := make([][]int, m)
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	active := make([]bool, m)
	for e := 0; e < m; e++ {
		active[e] = true
		lists[e] = palette // shared storage: lists are read-only by contract
	}
	return &Instance{G: g, Active: active, Lists: lists, C: c}
}

// NewDegreeLists returns the adversarial-style instance where each edge gets
// a pseudo-random list of exactly deg(e)+1 colors from the palette {0..c−1}.
// Requires c > Δ̄. Deterministic for a given seed.
func NewDegreeLists(g *Graph, c int, seed uint64) (*Instance, error) {
	if dbar := g.MaxEdgeDegree(); c <= dbar {
		return nil, fmt.Errorf("listcolor: palette %d too small for Δ̄=%d", c, dbar)
	}
	m := g.M()
	lists := make([][]int, m)
	active := make([]bool, m)
	s := seed
	nextRand := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for e := 0; e < m; e++ {
		active[e] = true
		want := g.EdgeDegree(graph.EdgeID(e)) + 1
		// Partial Fisher-Yates over the palette.
		perm := make([]int, c)
		for i := range perm {
			perm[i] = i
		}
		for i := 0; i < want; i++ {
			j := i + int(nextRand()%uint64(c-i))
			perm[i], perm[j] = perm[j], perm[i]
		}
		l := append([]int(nil), perm[:want]...)
		sort.Ints(l)
		lists[e] = l
	}
	return &Instance{G: g, Active: active, Lists: lists, C: c}, nil
}

// ActiveDegree returns the degree of edge e within the instance: the number
// of active edges conflicting with e.
func (in *Instance) ActiveDegree(e graph.EdgeID) int {
	d := 0
	in.G.ForEachEdgeNeighbor(e, func(f graph.EdgeID) {
		if in.Active[f] {
			d++
		}
	})
	return d
}

// MaxActiveDegree returns Δ̄ of the active conflict subgraph.
func (in *Instance) MaxActiveDegree() int {
	d := 0
	for e := range in.Active {
		if !in.Active[e] {
			continue
		}
		if de := in.ActiveDegree(graph.EdgeID(e)); de > d {
			d = de
		}
	}
	return d
}

// NumActive returns the number of active edges.
func (in *Instance) NumActive() int {
	k := 0
	for _, a := range in.Active {
		if a {
			k++
		}
	}
	return k
}

// Validate checks structural well-formedness and, when slack ≥ 1 is given,
// the slack invariant |Le| > slack·deg_active(e) for every active edge.
// Pass slack 0 to skip the slack check.
func (in *Instance) Validate(slack float64) error {
	if len(in.Active) != in.G.M() || len(in.Lists) != in.G.M() {
		return fmt.Errorf("listcolor: instance arrays sized %d/%d for %d edges", len(in.Active), len(in.Lists), in.G.M())
	}
	for e := range in.Active {
		if !in.Active[e] {
			continue
		}
		l := in.Lists[e]
		if len(l) == 0 {
			return fmt.Errorf("listcolor: active edge %d has empty list", e)
		}
		for i, c := range l {
			if c < 0 || c >= in.C {
				return fmt.Errorf("listcolor: edge %d lists color %d outside palette [0,%d)", e, c, in.C)
			}
			if i > 0 && l[i-1] >= c {
				return fmt.Errorf("listcolor: edge %d list not strictly ascending at %d", e, i)
			}
		}
		if slack > 0 {
			if float64(len(l)) <= slack*float64(in.ActiveDegree(graph.EdgeID(e))) {
				return fmt.Errorf("listcolor: edge %d violates slack %.2f: |L|=%d, deg=%d",
					e, slack, len(l), in.ActiveDegree(graph.EdgeID(e)))
			}
		}
	}
	return nil
}

// contains reports whether the ascending list l contains color c.
func contains(l []int, c int) bool {
	i := sort.SearchInts(l, c)
	return i < len(l) && l[i] == c
}
