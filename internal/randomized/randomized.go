// Package randomized implements the classic randomized (2Δ−1)-edge coloring
// baseline in the style of [ABI86, Lub86]: every uncolored edge repeatedly
// proposes a uniformly random free color from its list and keeps it if no
// conflicting edge proposed the same color in the same round. Each edge
// succeeds with constant probability per round, so all edges finish in
// O(log n) rounds with high probability.
//
// The paper is about deterministic algorithms; this baseline provides the
// randomized O(log n) context line in the related-work comparison (E12).
// Randomness is simulated with a per-edge deterministic PRG seeded from
// (seed, edge, round) so that experiment tables are reproducible.
package randomized

import (
	"fmt"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// mix is a splitmix64-style hash used as the per-(edge, round) randomness.
func mix(seed, a, b uint64) uint64 {
	z := seed ^ a*0x9e3779b97f4a7c15 ^ b*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

type msg struct {
	Fixed bool
	Color int
}

type trialProto struct {
	v     local.View
	seed  uint64
	list  []int // remaining free colors
	color int
	fixed bool
	sent  bool // fixed color has been announced
	out   []int
	errs  *local.ErrorSink
}

func (tp *trialProto) Send(r int) []local.Message {
	msgs := make([]local.Message, tp.v.Degree)
	var m msg
	if tp.fixed {
		m = msg{Fixed: true, Color: tp.color}
		tp.sent = true
	} else {
		if len(tp.list) == 0 {
			tp.errs.Set(fmt.Errorf("randomized: edge entity %d ran out of colors", tp.v.Index))
			return nil
		}
		pick := tp.list[mix(tp.seed, uint64(tp.v.Index), uint64(r))%uint64(len(tp.list))]
		m = msg{Fixed: false, Color: pick}
		tp.color = pick
	}
	for p := range msgs {
		msgs[p] = m
	}
	return msgs
}

func (tp *trialProto) Receive(r int, inbox []local.Message) bool {
	if tp.fixed {
		// The fixed color was announced this round; the edge is done.
		tp.out[tp.v.Index] = tp.color
		return tp.sent
	}
	conflict := false
	for _, im := range inbox {
		if im == nil {
			continue
		}
		mm := im.(msg)
		if mm.Fixed {
			tp.drop(mm.Color)
			if mm.Color == tp.color {
				conflict = true
			}
		} else if mm.Color == tp.color {
			conflict = true
		}
	}
	if !conflict {
		tp.fixed = true // announce next round, then halt
	}
	return false
}

func (tp *trialProto) drop(c int) {
	for i, x := range tp.list {
		if x == c {
			tp.list = append(tp.list[:i], tp.list[i+1:]...)
			return
		}
	}
}

// Solve colors the active edges of g from their lists using randomized
// trials. Lists must strictly exceed active degrees (slack 1). Rounds are
// O(log m) with high probability; a deterministic round cap of 40·log₂(m)+60
// turns pathological luck into an error instead of a hang.
func Solve(g *graph.Graph, active []bool, lists [][]int, seed uint64, run local.Engine) ([]int, local.Stats, error) {
	if run == nil {
		run = local.Sequential
	}
	m := g.M()
	if active == nil {
		active = make([]bool, m)
		for e := range active {
			active[e] = true
		}
	}
	full := local.EdgeConflict(g)
	sub, orig, _ := local.Induced(full, active, nil)
	out := make([]int, sub.N())
	errs := &local.ErrorSink{}
	factory := func(v local.View) local.Protocol {
		return &trialProto{
			v:    v,
			seed: seed,
			list: append([]int(nil), lists[orig[v.Index]]...),
			out:  out,
			errs: errs,
		}
	}
	roundCap := 60
	for x := m; x > 1; x >>= 1 {
		roundCap += 40
	}
	stats, err := run.Run(sub, factory, &local.Options{MaxRounds: roundCap})
	if err != nil {
		return nil, stats, err
	}
	if err := errs.Err(); err != nil {
		return nil, stats, err
	}
	colors := make([]int, m)
	for e := range colors {
		colors[e] = -1
	}
	for i, oe := range orig {
		colors[oe] = out[i]
	}
	return colors, stats, nil
}
