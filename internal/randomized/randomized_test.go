package randomized

import (
	"testing"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/verify"
)

func uniformLists(g *graph.Graph, c int) [][]int {
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = palette
	}
	return lists
}

func TestSolveFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(60)},
		{"complete", graph.Complete(10)},
		{"regular8", graph.RandomRegular(64, 8, 2)},
		{"star", graph.Star(20)},
		{"gnp", graph.GNP(60, 0.1, 7)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := 2*tc.g.MaxDegree() - 1
			lists := uniformLists(tc.g, c)
			colors, stats, err := Solve(tc.g, nil, lists, 42, local.Sequential)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if err := verify.EdgeColoring(tc.g, nil, colors); err != nil {
				t.Fatal(err)
			}
			if err := verify.ListRespecting(tc.g, nil, lists, colors); err != nil {
				t.Fatal(err)
			}
			if err := verify.PaletteRespected(colors, c); err != nil {
				t.Fatal(err)
			}
			if stats.Rounds <= 0 {
				t.Fatal("no rounds")
			}
		})
	}
}

func TestRoundsLogarithmic(t *testing.T) {
	// O(log n) behavior: quadrupling the graph should grow rounds slowly.
	g1 := graph.RandomRegular(128, 8, 3)
	g2 := graph.RandomRegular(512, 8, 3)
	l1 := uniformLists(g1, 15)
	l2 := uniformLists(g2, 15)
	_, s1, err := Solve(g1, nil, l1, 1, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := Solve(g2, nil, l2, 1, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Rounds > 3*s1.Rounds+20 {
		t.Fatalf("rounds grew too fast: %d (n=128) vs %d (n=512)", s1.Rounds, s2.Rounds)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	g := graph.RandomRegular(40, 6, 9)
	lists := uniformLists(g, 11)
	a, sa, err := Solve(g, nil, lists, 7, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Solve(g, nil, lists, 7, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatal("same seed, different stats")
	}
	for e := range a {
		if a[e] != b[e] {
			t.Fatal("same seed, different colors")
		}
	}
	c, _, err := Solve(g, nil, lists, 8, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for e := range a {
		if a[e] != c[e] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical colorings (suspicious)")
	}
}

func TestPartialActive(t *testing.T) {
	g := graph.Complete(9)
	active := make([]bool, g.M())
	for e := range active {
		active[e] = e%2 == 0
	}
	lists := uniformLists(g, 2*g.MaxDegree()-1)
	colors, _, err := Solve(g, active, lists, 3, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, active, colors); err != nil {
		t.Fatal(err)
	}
	for e := range colors {
		if !active[e] && colors[e] != -1 {
			t.Fatalf("inactive edge %d colored", e)
		}
	}
}

func TestEnginesAgree(t *testing.T) {
	g := graph.RandomRegular(32, 6, 5)
	lists := uniformLists(g, 11)
	a, sa, err := Solve(g, nil, lists, 11, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Solve(g, nil, lists, 11, local.Goroutines)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	for e := range a {
		if a[e] != b[e] {
			t.Fatalf("edge %d differs", e)
		}
	}
}
