package verify

import (
	"fmt"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// DistributedCheck verifies a coloring the way a deployed system would: as a
// one-round LOCAL protocol in which every entity announces its color and
// checks its inbox for duplicates. It returns the verdict and the (always 1)
// round count, and exercises the same runtime the algorithms use — so it
// doubles as an end-to-end test of the message path.
//
// This mirrors the local-checkability property that makes edge coloring an
// LCL problem (the class the paper's LOCAL-model program is about): a
// coloring is globally valid iff every radius-1 view is valid.
func DistributedCheck(t *local.Topology, colors []int, run local.Engine) (bool, local.Stats, error) {
	if run == nil {
		run = local.Sequential
	}
	if len(colors) != t.N() {
		return false, local.Stats{}, fmt.Errorf("verify: %d colors for %d entities", len(colors), t.N())
	}
	verdicts := make([]bool, t.N())
	factory := func(v local.View) local.Protocol {
		return &checkProto{v: v, color: colors[v.Index], verdicts: verdicts}
	}
	stats, err := run.Run(t, factory, nil)
	if err != nil {
		return false, stats, err
	}
	for _, ok := range verdicts {
		if !ok {
			return false, stats, nil
		}
	}
	return true, stats, nil
}

type checkProto struct {
	v        local.View
	color    int
	verdicts []bool
}

func (cp *checkProto) Send(r int) []local.Message {
	msgs := make([]local.Message, cp.v.Degree)
	for p := range msgs {
		msgs[p] = cp.color
	}
	return msgs
}

func (cp *checkProto) Receive(r int, inbox []local.Message) bool {
	ok := cp.color >= 0
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if m.(int) == cp.color {
			ok = false
		}
	}
	cp.verdicts[cp.v.Index] = ok
	return true
}

// DistributedCheckEdges runs DistributedCheck on the edge-conflict topology
// of a graph.
func DistributedCheckEdges(g *graph.Graph, colors []int, run local.Engine) (bool, local.Stats, error) {
	return DistributedCheck(local.EdgeConflict(g), colors, run)
}
