package verify

import (
	"testing"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/linial"
	"github.com/distec/distec/internal/local"
)

func TestDistributedCheckAcceptsValid(t *testing.T) {
	g := graph.RandomRegular(40, 4, 1)
	tp := local.EdgeConflict(g)
	init := make([]int, tp.N())
	for i := range init {
		init[i] = i
	}
	colors, _, err := linial.Reduce(tp, init, tp.N(), local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	ok, stats, err := DistributedCheckEdges(g, colors, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid coloring rejected")
	}
	if stats.Rounds != 1 {
		t.Fatalf("check used %d rounds, want 1 (local checkability)", stats.Rounds)
	}
}

func TestDistributedCheckRejectsConflict(t *testing.T) {
	g := graph.Path(4)
	// Middle two edges conflict.
	ok, _, err := DistributedCheckEdges(g, []int{0, 1, 1}, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("conflicting coloring accepted")
	}
}

func TestDistributedCheckRejectsUncolored(t *testing.T) {
	g := graph.Path(3)
	ok, _, err := DistributedCheckEdges(g, []int{0, -1}, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("uncolored edge accepted")
	}
}

func TestDistributedCheckBothEngines(t *testing.T) {
	g := graph.Complete(7)
	colors := make([]int, g.M())
	// A valid coloring via the sequential oracle: distinct colors.
	for e := range colors {
		colors[e] = e
	}
	for _, run := range []local.Engine{local.Sequential, local.Goroutines} {
		ok, _, err := DistributedCheckEdges(g, colors, run)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("rainbow coloring rejected")
		}
	}
}

func TestDistributedCheckLengthMismatch(t *testing.T) {
	g := graph.Path(3)
	if _, _, err := DistributedCheckEdges(g, []int{0}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
