package verify

import (
	"fmt"

	"github.com/distec/distec/internal/graph"
)

// Algorithm is a deterministic edge algorithm under locality test: it maps a
// graph to a per-edge output and reports the number of LOCAL rounds it used.
type Algorithm func(g *graph.Graph) (out []int, rounds int, err error)

// CheckLocality empirically falsifies overclaimed round counts: an algorithm
// that runs in r rounds on the edge-conflict topology can only depend, at
// edge e, on the ball of radius r around e in the line graph. The checker
// rewires pairs of edges far outside that ball — an operation that preserves
// n, m, every node degree (hence Δ and Δ̄) and all edge IDs, so the
// algorithm's global schedule is unchanged — and asserts that e's output is
// identical on the rewired graph.
//
// probe is the edge whose output is pinned; attempts bounds the number of
// far-pair rewirings tried. A nil error means no violation was found.
func CheckLocality(g *graph.Graph, alg Algorithm, probe graph.EdgeID, attempts int, seed uint64) error {
	base, rounds, err := alg(g)
	if err != nil {
		return fmt.Errorf("verify: baseline run: %w", err)
	}
	dist := edgeDistances(g, probe)
	// Candidate edges strictly outside radius rounds+1 (margin 1: rewired
	// edges must stay outside the ball even after reconnection).
	var far []graph.EdgeID
	for e := 0; e < g.M(); e++ {
		if dist[e] > rounds+1 {
			far = append(far, graph.EdgeID(e))
		}
	}
	if len(far) < 2 {
		return nil // ball covers the graph: locality is vacuous here
	}
	s := seed
	next := func(n int) int {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return int(z % uint64(n))
	}
	tried := 0
	for i := 0; i < attempts*8 && tried < attempts; i++ {
		e1 := far[next(len(far))]
		e2 := far[next(len(far))]
		h, ok := rewire(g, e1, e2)
		if !ok {
			continue
		}
		tried++
		got, _, err := alg(h)
		if err != nil {
			return fmt.Errorf("verify: rewired run: %w", err)
		}
		if got[probe] != base[probe] {
			return fmt.Errorf("verify: locality violated: edge %d output changed %d -> %d after rewiring edges %d,%d at distance > %d",
				probe, base[probe], got[probe], e1, e2, rounds+1)
		}
	}
	return nil
}

// edgeDistances returns line-graph hop distances from the source edge (BFS).
func edgeDistances(g *graph.Graph, src graph.EdgeID) []int {
	dist := make([]int, g.M())
	for i := range dist {
		dist[i] = 1 << 30
	}
	dist[src] = 0
	queue := []graph.EdgeID{src}
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		g.ForEachEdgeNeighbor(e, func(f graph.EdgeID) {
			if dist[f] > dist[e]+1 {
				dist[f] = dist[e] + 1
				queue = append(queue, f)
			}
		})
	}
	return dist
}

// rewire builds a copy of g in which edges e1={a,b} and e2={c,d} are
// replaced by {a,d} and {c,b}, preserving all node degrees and all edge
// positions (IDs). Returns ok=false when the swap would create a self-loop
// or duplicate edge, or when e1 and e2 share a node.
func rewire(g *graph.Graph, e1, e2 graph.EdgeID) (*graph.Graph, bool) {
	if e1 == e2 {
		return nil, false
	}
	a, b := g.Endpoints(e1)
	c, d := g.Endpoints(e2)
	if a == c || a == d || b == c || b == d {
		return nil, false
	}
	type pair struct{ u, v int }
	edges := make([]pair, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		edges[e] = pair{u, v}
	}
	edges[e1] = pair{a, d}
	edges[e2] = pair{c, b}
	seen := make(map[[2]int]bool, len(edges))
	h := graph.New(g.N())
	for _, pr := range edges {
		u, v := pr.u, pr.v
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			return nil, false
		}
		seen[[2]int{u, v}] = true
		if _, err := h.AddEdge(pr.u, pr.v); err != nil {
			return nil, false
		}
	}
	return h, true
}
