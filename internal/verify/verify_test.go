package verify

import (
	"strings"
	"testing"

	"github.com/distec/distec/internal/defective"
	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/linial"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/pseudoforest"
)

func TestEdgeColoring(t *testing.T) {
	g := graph.Path(4) // edges 0-1, 1-2, 2-3
	if err := EdgeColoring(g, nil, []int{0, 1, 0}); err != nil {
		t.Fatalf("valid coloring rejected: %v", err)
	}
	if err := EdgeColoring(g, nil, []int{0, 0, 1}); err == nil {
		t.Fatal("conflict not detected")
	}
	if err := EdgeColoring(g, nil, []int{0, -1, 1}); err == nil {
		t.Fatal("uncolored edge not detected")
	}
	active := []bool{true, false, true}
	if err := EdgeColoring(g, active, []int{0, -1, 0}); err != nil {
		t.Fatalf("inactive edges must be ignored: %v", err)
	}
}

func TestListRespecting(t *testing.T) {
	g := graph.Path(3)
	lists := [][]int{{1, 3}, {2, 4}}
	if err := ListRespecting(g, nil, lists, []int{3, 2}); err != nil {
		t.Fatalf("valid: %v", err)
	}
	if err := ListRespecting(g, nil, lists, []int{3, 5}); err == nil {
		t.Fatal("off-list color not detected")
	}
}

func TestDefective(t *testing.T) {
	g := graph.Star(4)
	colors := []int{1, 1, 2}
	if err := Defective(g, nil, colors, func(graph.EdgeID) int { return 1 }); err != nil {
		t.Fatalf("defect 1 within bound 1: %v", err)
	}
	if err := Defective(g, nil, colors, func(graph.EdgeID) int { return 0 }); err == nil {
		t.Fatal("defect 1 over bound 0 not detected")
	}
}

func TestCounting(t *testing.T) {
	colors := []int{3, 1, 3, -1, 0}
	if got := CountColors(colors); got != 3 {
		t.Fatalf("CountColors = %d, want 3", got)
	}
	if got := MaxColor(colors); got != 3 {
		t.Fatalf("MaxColor = %d, want 3", got)
	}
	if err := PaletteRespected(colors, 4); err != nil {
		t.Fatalf("palette 4 should pass: %v", err)
	}
	if err := PaletteRespected(colors, 3); err == nil {
		t.Fatal("palette 3 should fail")
	}
}

// linialAlg adapts the Linial reduction for the locality checker.
func linialAlg(g *graph.Graph) ([]int, int, error) {
	tp := local.EdgeConflict(g)
	init := make([]int, tp.N())
	for i := range init {
		init[i] = i
	}
	colors, stats, err := linial.Reduce(tp, init, tp.N(), local.Sequential)
	return colors, stats.Rounds, err
}

func TestLocalityOfLinial(t *testing.T) {
	// A long cycle: small balls, plenty of far edges to rewire.
	g := graph.Cycle(64)
	for _, probe := range []graph.EdgeID{0, 17, 40} {
		if err := CheckLocality(g, linialAlg, probe, 6, 99); err != nil {
			t.Fatalf("probe %d: %v", probe, err)
		}
	}
}

func TestLocalityOfDefective(t *testing.T) {
	g := graph.Cycle(80)
	alg := func(h *graph.Graph) ([]int, int, error) {
		res, err := defective.ColorGraph(h, nil, 1, local.Sequential)
		if err != nil {
			return nil, 0, err
		}
		return res.Colors, res.Stats.Rounds, nil
	}
	if err := CheckLocality(g, alg, 3, 6, 7); err != nil {
		t.Fatal(err)
	}
}

// cheatingAlg claims 1 round but reads global structure: the falsifier must
// catch it. The global read is Σ u·v over all edges, which any rewire
// {a,b},{c,d} → {a,d},{c,b} changes (the difference is (a−c)(b−d) ≠ 0).
func TestLocalityCatchesCheater(t *testing.T) {
	g := graph.Cycle(64)
	cheat := func(h *graph.Graph) ([]int, int, error) {
		sum := 0
		for e := 0; e < h.M(); e++ {
			u, v := h.Endpoints(graph.EdgeID(e))
			sum += u * v
		}
		out := make([]int, h.M())
		for e := range out {
			out[e] = sum
		}
		return out, 1, nil
	}
	err := CheckLocality(g, cheat, 0, 10, 5)
	if err == nil {
		t.Fatal("cheating algorithm passed the locality check")
	}
	if !strings.Contains(err.Error(), "locality violated") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRewirePreservesInvariants(t *testing.T) {
	g := graph.Cycle(20)
	h, ok := rewire(g, 2, 11)
	if !ok {
		t.Fatal("rewire refused a valid far pair")
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatal("rewire changed n or m")
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != h.Degree(v) {
			t.Fatalf("degree of node %d changed", v)
		}
	}
}

func TestRewireRejectsSharedNodes(t *testing.T) {
	g := graph.Cycle(10)
	if _, ok := rewire(g, 0, 1); ok {
		t.Fatal("rewire accepted adjacent edges")
	}
	if _, ok := rewire(g, 3, 3); ok {
		t.Fatal("rewire accepted identical edges")
	}
}

// Locality of the PR01 pseudoforest baseline: its round count on a long
// cycle is O(log* n + Δ) = small, so most of the cycle is rewirable.
func TestLocalityOfPseudoforest(t *testing.T) {
	g := graph.Cycle(400)
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = []int{0, 1, 2}
	}
	alg := func(h *graph.Graph) ([]int, int, error) {
		colors, stats, err := pseudoforest.Solve(h, nil, lists, local.Sequential)
		return colors, stats.Rounds, err
	}
	if err := CheckLocality(g, alg, 5, 4, 11); err != nil {
		t.Fatal(err)
	}
}
