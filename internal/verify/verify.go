// Package verify provides the independent validators used by tests,
// examples and the experiment harness: proper-coloring checks,
// list-respecting checks, defect measurement, palette accounting, and a
// locality falsifier that empirically refutes overclaimed round counts.
package verify

import (
	"fmt"

	"github.com/distec/distec/internal/graph"
)

// EdgeColoring checks that colors is a proper edge coloring of the active
// edges of g: every active edge colored with a non-negative color, no two
// conflicting active edges sharing one. active may be nil for all edges.
func EdgeColoring(g *graph.Graph, active []bool, colors []int) error {
	if len(colors) != g.M() {
		return fmt.Errorf("verify: %d colors for %d edges", len(colors), g.M())
	}
	for e := 0; e < g.M(); e++ {
		if active != nil && !active[e] {
			continue
		}
		if colors[e] < 0 {
			return fmt.Errorf("verify: edge %d uncolored", e)
		}
		var err error
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if err == nil && (active == nil || active[f]) && colors[f] == colors[e] {
				err = fmt.Errorf("verify: edges %d and %d conflict with color %d", e, f, colors[e])
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ListRespecting checks that every active edge's color belongs to its list.
func ListRespecting(g *graph.Graph, active []bool, lists [][]int, colors []int) error {
	for e := 0; e < g.M(); e++ {
		if active != nil && !active[e] {
			continue
		}
		ok := false
		for _, c := range lists[e] {
			if c == colors[e] {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("verify: edge %d color %d not in its list", e, colors[e])
		}
	}
	return nil
}

// Defective checks that no active edge has more same-colored conflicting
// active edges than bound(e) allows.
func Defective(g *graph.Graph, active []bool, colors []int, bound func(e graph.EdgeID) int) error {
	for e := 0; e < g.M(); e++ {
		if active != nil && !active[e] {
			continue
		}
		d := 0
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if (active == nil || active[f]) && colors[f] == colors[e] {
				d++
			}
		})
		if b := bound(graph.EdgeID(e)); d > b {
			return fmt.Errorf("verify: edge %d has defect %d > bound %d", e, d, b)
		}
	}
	return nil
}

// CountColors returns the number of distinct non-negative colors used.
func CountColors(colors []int) int {
	seen := make(map[int]bool)
	for _, c := range colors {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}

// MaxColor returns the largest color used (−1 if none).
func MaxColor(colors []int) int {
	maxC := -1
	for _, c := range colors {
		if c > maxC {
			maxC = c
		}
	}
	return maxC
}

// PaletteRespected checks that all used colors lie in [0, c).
func PaletteRespected(colors []int, c int) error {
	for e, col := range colors {
		if col >= c {
			return fmt.Errorf("verify: edge %d color %d outside palette [0,%d)", e, col, c)
		}
	}
	return nil
}
