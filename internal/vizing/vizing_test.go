package vizing

import (
	"errors"
	"strings"
	"testing"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/verify"
)

// allActive marks every edge of g active.
func allActive(g *graph.Graph) []bool {
	a := make([]bool, g.M())
	for i := range a {
		a[i] = true
	}
	return a
}

// fullLists gives every edge the full palette {0..c−1}.
func fullLists(g *graph.Graph, c int) [][]int {
	pal := make([]int, c)
	for i := range pal {
		pal[i] = i
	}
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = pal
	}
	return lists
}

// checkColoring fails the test unless colors is a proper coloring of g's
// active edges within [0, palette).
func checkColoring(t *testing.T, g *graph.Graph, active []bool, colors []int, palette int) {
	t.Helper()
	if err := verify.EdgeColoring(g, active, colors); err != nil {
		t.Fatalf("improper coloring: %v", err)
	}
	for e, c := range colors {
		if active[e] && (c < 0 || c >= palette) {
			t.Fatalf("edge %d colored %d outside palette [0,%d)", e, c, palette)
		}
	}
}

// TestSolveDeltaPlusOne is the core guarantee: every workload family gets a
// verified proper coloring from exactly Δ+1 colors — below the slack bound
// Δ̄+1 the LOCAL solvers need.
func TestSolveDeltaPlusOne(t *testing.T) {
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle-even", graph.Cycle(64)},
		{"cycle-odd", graph.Cycle(63)},
		{"complete", graph.Complete(9)},
		{"complete-even", graph.Complete(8)},
		{"regular", graph.RandomRegular(48, 6, 17)},
		{"bipartite", graph.CompleteBipartite(9, 7)},
		{"gnp", graph.GNP(40, 0.12, 23)},
		{"tree", graph.RandomTree(50, 29)},
		{"powerlaw", graph.PowerLaw(60, 2.5, 6, 3)},
		{"star", graph.CompleteBipartite(1, 12)},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			palette := w.g.MaxDegree() + 1
			active := allActive(w.g)
			colors, stats, err := Solve(w.g, active, fullLists(w.g, palette), palette, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkColoring(t, w.g, active, colors, palette)
			if stats.Messages < int64(w.g.M()) {
				t.Fatalf("stats report %d assignments for %d edges", stats.Messages, w.g.M())
			}
			t.Logf("Δ+1=%d colors, %d augmentations", palette, stats.Rounds)
		})
	}
}

// TestSolveNeedsAugmentation pins that a tight palette actually exercises
// the fan/path machinery rather than being absorbed by the greedy pass.
func TestSolveNeedsAugmentation(t *testing.T) {
	g := graph.Complete(9) // Δ=8, class 1 would need 9 = Δ+1 colors
	palette := g.MaxDegree() + 1
	_, stats, err := Solve(g, allActive(g), fullLists(g, palette), palette, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 {
		t.Fatal("K9 at Δ+1 colored without a single augmentation; the greedy pass cannot do that")
	}
}

// TestSolveRespectsLists: on a slack-valid list instance the greedy pass
// completes alone and the output stays inside the lists.
func TestSolveRespectsLists(t *testing.T) {
	g := graph.RandomRegular(36, 5, 41)
	dbar := g.MaxEdgeDegree()
	c := dbar + 3
	lists := make([][]int, g.M())
	for e := range lists {
		// dbar+1 distinct colors at a per-edge offset, ascending.
		in := make([]bool, c)
		for k := 0; k <= dbar; k++ {
			in[(e*3+k)%c] = true
		}
		l := make([]int, 0, dbar+1)
		for col := 0; col < c; col++ {
			if in[col] {
				l = append(l, col)
			}
		}
		lists[e] = l
	}
	active := allActive(g)
	colors, stats, err := Solve(g, active, lists, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkColoring(t, g, active, colors, c)
	if err := verify.ListRespecting(g, active, lists, colors); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 {
		t.Fatalf("slack instance augmented %d times; greedy must complete alone", stats.Rounds)
	}
}

// TestSolvePaletteTooSmall: an odd cycle has chromatic index 3 = Δ+1; at
// palette Δ = 2 the augmentation must refuse with the typed error and
// cannot invent a coloring that does not exist.
func TestSolvePaletteTooSmall(t *testing.T) {
	g := graph.Cycle(9)
	_, _, err := Solve(g, allActive(g), fullLists(g, 2), 2, nil)
	if !errors.Is(err, ErrPaletteTooSmall) {
		t.Fatalf("want ErrPaletteTooSmall, got %v", err)
	}
}

// TestSolveInterrupt: a failing liveness check aborts Solve between edges
// — the seam the serving pool binds to the job context.
func TestSolveInterrupt(t *testing.T) {
	g := graph.RandomRegular(64, 6, 3)
	wantErr := errors.New("job deadline")
	_, _, err := Solve(g, allActive(g), fullLists(g, 7), 7, func() error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("want the interrupt error, got %v", err)
	}
}

// TestSolveRejectsPartialListsNeedingAugmentation: when the greedy pass
// leaves an edge uncolored but some active list is not the full palette,
// augmentation may not run (it recolors neighbors with arbitrary palette
// colors) — Solve must refuse instead of breaking a list constraint.
func TestSolveRejectsPartialListsNeedingAugmentation(t *testing.T) {
	g := graph.Cycle(5)
	lists := fullLists(g, 2)
	lists[1] = []int{1} // valid for e1 itself, but bars augmentation
	_, _, err := Solve(g, allActive(g), lists, 2, nil)
	if err == nil || !strings.Contains(err.Error(), "uniform full-palette") {
		t.Fatalf("want the non-uniform-instance refusal, got %v", err)
	}
}

// TestSolveSubsetActive colors only a subset of edges: inactive edges are
// invisible (no color, no conflict).
func TestSolveSubsetActive(t *testing.T) {
	g := graph.Complete(7)
	active := allActive(g)
	for e := 0; e < g.M(); e += 3 {
		active[e] = false
	}
	palette := g.MaxDegree() + 1
	colors, _, err := Solve(g, active, fullLists(g, palette), palette, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkColoring(t, g, active, colors, palette)
	for e, a := range active {
		if !a && colors[e] != -1 {
			t.Fatalf("inactive edge %d colored %d", e, colors[e])
		}
	}
}

// TestAugmentUncolorRecolor is the torture loop behind the dynamic fallback:
// starting from a full Δ+1 coloring, repeatedly uncolor a pseudo-random edge
// and re-augment it, verifying properness after every single augmentation.
// The churn drives the augmenter through all three fan cases.
func TestAugmentUncolorRecolor(t *testing.T) {
	for _, w := range []struct {
		name string
		g    *graph.Graph
	}{
		{"complete", graph.Complete(10)},
		{"regular", graph.RandomRegular(40, 7, 5)},
		{"gnp", graph.GNP(36, 0.2, 11)},
	} {
		t.Run(w.name, func(t *testing.T) {
			g := w.g
			palette := g.MaxDegree() + 1
			active := allActive(g)
			colors, _, err := Solve(g, active, fullLists(g, palette), palette, nil)
			if err != nil {
				t.Fatal(err)
			}
			aug := NewAugmenter()
			s := uint64(99)
			rand := func() uint64 {
				s += 0x9e3779b97f4a7c15
				z := s
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				return z ^ (z >> 31)
			}
			fans, paths := 0, 0
			for i := 0; i < 400; i++ {
				e := graph.EdgeID(rand() % uint64(g.M()))
				old := colors[e]
				colors[e] = -1
				rep, err := aug.Augment(g, active, colors, palette, e)
				if err != nil {
					t.Fatalf("iteration %d, edge %d (was %d): %v", i, e, old, err)
				}
				if colors[e] != rep.Color {
					t.Fatalf("report color %d but edge holds %d", rep.Color, colors[e])
				}
				checkColoring(t, g, active, colors, palette)
				if rep.Fan > 1 {
					fans++
				}
				if rep.Path > 0 {
					paths++
				}
			}
			if fans == 0 || paths == 0 {
				t.Fatalf("churn too tame: %d multi-vertex fans, %d path flips — the interesting cases went untested", fans, paths)
			}
		})
	}
}

// TestAugmentRejectsBadTarget pins the input contract errors.
func TestAugmentRejectsBadTarget(t *testing.T) {
	g := graph.Cycle(8)
	active := allActive(g)
	colors, _, err := Solve(g, active, fullLists(g, 3), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	aug := NewAugmenter()
	if _, err := aug.Augment(g, active, colors, 3, 0); err == nil {
		t.Fatal("augmented an already-colored edge")
	}
	if _, err := aug.Augment(g, active, colors, 3, graph.EdgeID(g.M())); err == nil {
		t.Fatal("augmented an out-of-range edge")
	}
	active[2] = false
	colors[2] = -1
	if _, err := aug.Augment(g, active, colors, 3, 2); err == nil {
		t.Fatal("augmented an inactive edge")
	}
}

// TestAugmentLeavesColoringIntactOnFailure: a failing augmentation must not
// write anything.
func TestAugmentLeavesColoringIntactOnFailure(t *testing.T) {
	g := graph.Cycle(9)
	active := allActive(g)
	// Proper partial 2-coloring of the even prefix, last edge uncolored.
	colors := make([]int, g.M())
	for e := 0; e < g.M()-1; e++ {
		colors[e] = e % 2
	}
	colors[g.M()-1] = -1
	before := append([]int(nil), colors...)
	aug := NewAugmenter()
	if _, err := aug.Augment(g, active, colors, 2, graph.EdgeID(g.M()-1)); !errors.Is(err, ErrPaletteTooSmall) {
		t.Fatalf("want ErrPaletteTooSmall, got %v", err)
	}
	for e := range colors {
		if colors[e] != before[e] {
			t.Fatalf("failed augmentation mutated edge %d: %d -> %d", e, before[e], colors[e])
		}
	}
}
