// Package vizing implements the constructive core of Vizing's theorem: a
// fan-recoloring plus alternating-path augmentation routine that colors one
// uncolored edge of a properly edge-colored graph, under any palette of at
// least Δ+1 colors — and, iterated over all edges, a sequential (Δ+1)-edge
// coloring algorithm.
//
// This is the regime the repository's LOCAL algorithms cannot reach: their
// feasibility bound is the slack condition |palette| > deg(e) per edge
// (palette > Δ̄ ≈ 2Δ uniformly), while Vizing's theorem guarantees Δ+1
// colors always suffice. The price is sequentiality: an augmentation is an
// inherently global operation (its alternating path may cross the whole
// graph), which is exactly why the paper's distributed setting stops at
// 2Δ−1. Here the routine serves two roles:
//
//   - the static "vizing" algorithm of distec.ColorEdges, the only solver
//     accepting palettes in [Δ+1, Δ̄];
//   - the fallback tier of the dynamic layer (internal/dynamic): an insert
//     whose target-color conflict-region repair fails is colored by one
//     augmentation, so palettes ≥ Δ+1 never reject an insert.
//
// One augmentation of edge e = {u, v}:
//
//  1. Build the maximal fan v = v₀, v₁, …, v_k around u: v_{i+1} is the
//     u-neighbor whose edge {u, v_{i+1}} holds α_i, a chosen free color of
//     v_i. The α_0 … α_{k-1} are pairwise distinct (each selects the next,
//     distinct fan vertex).
//  2. If α_k is also free at u, rotate the fan — shift color α_i onto
//     {u, v_i} for i < k — and give {u, v_k} the color α_k.
//  3. Otherwise the u-edge holding d := α_k is {u, v_j} for some j ≤ k
//     already in the fan (maximality), with α_{j-1} = d. Let c be a free
//     color of u and flip a maximal cd-alternating (Kempe) path:
//     – If the cd-path from u does not end at v_{j-1}, flip it (d becomes
//     free at u; v_{j-1} is untouched), rotate the prefix v₀ … v_{j-1},
//     and give {u, v_{j-1}} the color d.
//     – If it does end at v_{j-1}, then v_k lies on a different cd-component;
//     flip the cd-path from v_k (c becomes free at v_k; u and v_{j-1} are
//     untouched), rotate the whole fan, and give {u, v_k} the color c.
//
// Every free-color requirement is met when palette ≥ Δ+1 (a vertex of
// degree ≤ Δ with an uncolored incident edge misses at least one of Δ+1
// colors); a failing requirement surfaces as ErrPaletteTooSmall and nothing
// is written. The cost is O(fan·(Δ+palette) + path·palette): local except
// for the flipped path.
package vizing

import (
	"errors"
	"fmt"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// ErrPaletteTooSmall marks augmentations rejected because some vertex the
// fan or path construction needs has no free color — possible only when the
// palette is smaller than Δ+1 on the touched region. The coloring is
// unchanged.
var ErrPaletteTooSmall = errors.New("vizing: no free color (palette below Δ+1 on the augmentation region)")

// Report describes one successful augmentation.
type Report struct {
	// Color is the color the target edge received.
	Color int
	// Recolored counts the previously colored edges whose colors changed
	// (fan rotation plus path flip) — the locality bill of the augmentation.
	Recolored int
	// Fan is the fan length (≥ 1); Path the flipped alternating path length.
	Fan, Path int
}

// Augmenter performs single-edge Vizing augmentations over a caller-owned
// coloring view. It holds only reusable scratch (per-vertex color tables,
// fan and path buffers), so one Augmenter amortizes allocations across many
// calls; the graph, overlay, and colors are re-read on every call, which
// keeps it correct under callers (like the dynamic layer) that mutate the
// coloring between calls by other means. Not safe for concurrent use.
type Augmenter struct {
	// Per-call view of the caller's coloring (set by bind).
	g       *graph.Graph
	active  []bool
	colors  []int
	palette int

	// at[v][col] = EdgeID+1 of the active edge holding col at v (0 = none);
	// valid while atEpoch[v] == epoch, rebuilt lazily per call — the stamped
	// idiom of the repository's other color scratches.
	at      [][]int32
	atEpoch []int
	epoch   int

	// Fan scratch: vertices v_0…v_k, their u-edges, and the chosen free
	// colors α_0…α_k; fanIdx maps a fan vertex to its index.
	fanVert []int
	fanEdge []graph.EdgeID
	fanFree []int
	fanIdx  map[int]int

	path []graph.EdgeID
	undo []undoRec
}

type undoRec struct {
	e   graph.EdgeID
	old int
}

// NewAugmenter returns an empty Augmenter; scratch grows on first use.
func NewAugmenter() *Augmenter {
	return &Augmenter{fanIdx: make(map[int]int)}
}

// bind points the scratch at the caller's coloring and invalidates every
// color table (epoch bump).
func (a *Augmenter) bind(g *graph.Graph, active []bool, colors []int, palette int) {
	a.g, a.active, a.colors, a.palette = g, active, colors, palette
	for len(a.atEpoch) < g.N() {
		a.atEpoch = append(a.atEpoch, 0)
		a.at = append(a.at, nil)
	}
	a.epoch++
}

// table returns v's color table for the current call, building it on first
// touch: O(palette + deg(v)).
func (a *Augmenter) table(v int) []int32 {
	t := a.at[v]
	if len(t) < a.palette {
		t = make([]int32, a.palette)
		a.at[v] = t
	}
	t = t[:a.palette]
	if a.atEpoch[v] != a.epoch {
		a.atEpoch[v] = a.epoch
		for i := range t {
			t[i] = 0
		}
		for _, f := range a.g.Incident(v) {
			if a.active[f] {
				if c := a.colors[f]; c >= 0 && c < a.palette {
					t[c] = int32(f) + 1
				}
			}
		}
	}
	return t
}

// free returns a free color of v (the smallest), or −1 if v holds all of
// them.
func (a *Augmenter) free(v int) int {
	for c, id := range a.table(v) {
		if id == 0 {
			return c
		}
	}
	return -1
}

// walk follows the maximal alternating path from start whose first edge
// holds c1, then c2, c1, … It fills a.path with the traversed edges and
// returns the terminal vertex. Callers guarantee c2 (the "other" color) is
// free at start, so the walk cannot close a cycle in a proper coloring; the
// iteration bound turns an improper input into an error instead of a hang.
func (a *Augmenter) walk(start, c1, c2 int) (int, error) {
	a.path = a.path[:0]
	cur, want, other := start, c1, c2
	for steps := 0; ; steps++ {
		if steps > a.g.M() {
			return -1, fmt.Errorf("vizing: %d/%d-alternating walk from %d exceeds m=%d edges (improper input coloring?)", c1, c2, start, a.g.M())
		}
		fe := a.table(cur)[want]
		if fe == 0 {
			return cur, nil
		}
		f := graph.EdgeID(fe - 1)
		a.path = append(a.path, f)
		cur = a.g.OtherEnd(f, cur)
		want, other = other, want
	}
}

// Augment colors the active, uncolored edge e from the palette {0, …,
// palette−1} by one fan/path augmentation, mutating colors in place. The
// rest of the active coloring must be proper; on any error the coloring is
// unchanged. Augmentations are deterministic: the fan, the chosen free
// colors, and the flipped path depend only on the input coloring.
func (a *Augmenter) Augment(g *graph.Graph, active []bool, colors []int, palette int, e graph.EdgeID) (Report, error) {
	if int(e) < 0 || int(e) >= g.M() {
		return Report{}, fmt.Errorf("vizing: edge %d out of range [0,%d)", e, g.M())
	}
	if !active[e] {
		return Report{}, fmt.Errorf("vizing: edge %d is not active", e)
	}
	if colors[e] >= 0 {
		return Report{}, fmt.Errorf("vizing: edge %d already colored %d", e, colors[e])
	}
	if palette < 1 {
		return Report{}, fmt.Errorf("vizing: empty palette")
	}
	a.bind(g, active, colors, palette)
	u, v0 := g.Endpoints(e)

	// Build the maximal fan around u, starting at v0.
	a.fanVert = append(a.fanVert[:0], v0)
	a.fanEdge = append(a.fanEdge[:0], e)
	a.fanFree = a.fanFree[:0]
	clear(a.fanIdx)
	a.fanIdx[v0] = 0
	alpha := a.free(v0)
	if alpha < 0 {
		return Report{}, fmt.Errorf("%w: vertex %d", ErrPaletteTooSmall, v0)
	}
	a.fanFree = append(a.fanFree, alpha)

	var (
		rot    int            // rotate fan prefix 0…rot
		final  int            // color assigned to fanEdge[rot]
		flip   []graph.EdgeID // alternating path to flip (nil: none)
		fc, fd int            // the flip's color pair
	)
	ut := a.table(u)
fan:
	for {
		d := a.fanFree[len(a.fanFree)-1]
		fe := ut[d]
		if fe == 0 {
			// Case 2: α_k free at u too — rotate the whole fan.
			rot, final = len(a.fanVert)-1, d
			break fan
		}
		w := g.OtherEnd(graph.EdgeID(fe-1), u)
		j, seen := a.fanIdx[w]
		if !seen {
			// Extend the fan through the α-colored edge.
			a.fanIdx[w] = len(a.fanVert)
			a.fanVert = append(a.fanVert, w)
			a.fanEdge = append(a.fanEdge, graph.EdgeID(fe-1))
			if alpha = a.free(w); alpha < 0 {
				return Report{}, fmt.Errorf("%w: vertex %d", ErrPaletteTooSmall, w)
			}
			a.fanFree = append(a.fanFree, alpha)
			continue
		}
		// Case 3: the d-edge of u leads back into the fan (w = v_j, so
		// α_{j-1} = d). Flip a maximal cd-alternating path.
		c := a.free(u)
		if c < 0 {
			return Report{}, fmt.Errorf("%w: vertex %d", ErrPaletteTooSmall, u)
		}
		term, err := a.walk(u, d, c)
		if err != nil {
			return Report{}, err
		}
		if term != a.fanVert[j-1] {
			// The cd-path from u misses v_{j-1}: flipping it frees d at u
			// while v_{j-1} keeps d free. Rotate the prefix up to v_{j-1}.
			flip, fc, fd = a.path, c, d
			rot, final = j-1, d
			break fan
		}
		// The cd-path from u ends at v_{j-1}; v_k then lies on a different
		// cd-component. Flipping the path from v_k frees c there while u
		// (with c free) and v_{j-1} are untouched: rotate the whole fan and
		// use c.
		k := len(a.fanVert) - 1
		if _, err := a.walk(a.fanVert[k], c, d); err != nil {
			return Report{}, err
		}
		flip, fc, fd = a.path, c, d
		rot, final = k, c
		break fan
	}

	// Apply: flip the path, then rotate the fan prefix. The two edge sets
	// are disjoint (rotated fan edges hold colors outside {c, d}), so order
	// within each step does not matter; all decisions were made above, so a
	// failed post-check can undo cleanly.
	a.undo = a.undo[:0]
	set := func(f graph.EdgeID, col int) {
		a.undo = append(a.undo, undoRec{f, a.colors[f]})
		a.colors[f] = col
	}
	for _, f := range flip {
		set(f, fc+fd-a.colors[f])
	}
	for i := 0; i < rot; i++ {
		set(a.fanEdge[i], a.fanFree[i])
	}
	set(a.fanEdge[rot], final)

	if err := a.checkTouched(); err != nil {
		for i := len(a.undo) - 1; i >= 0; i-- {
			a.colors[a.undo[i].e] = a.undo[i].old
		}
		return Report{}, err
	}
	return Report{
		Color:     a.colors[e],     // α_0 after a rotation, final for the trivial fan
		Recolored: len(a.undo) - 1, // every write but e itself recolored a colored edge
		Fan:       len(a.fanVert),
		Path:      len(flip),
	}, nil
}

// checkTouched verifies every edge the augmentation wrote: in palette, and
// proper against all active neighbors (which reads the committed colors, so
// touched-touched pairs are covered too). It is the same defensive posture
// as the dynamic layer's repair commit: a bug here must be a loud error,
// never silent corruption. O(touched·Δ).
func (a *Augmenter) checkTouched() error {
	for _, rec := range a.undo {
		f := rec.e
		col := a.colors[f]
		if col < 0 || col >= a.palette {
			return fmt.Errorf("vizing: internal error: edge %d left with color %d outside palette [0,%d)", f, col, a.palette)
		}
		var conflict error
		a.g.ForEachEdgeNeighbor(f, func(nb graph.EdgeID) {
			if conflict == nil && a.active[nb] && a.colors[nb] == col {
				conflict = fmt.Errorf("vizing: internal error: edges %d and %d both colored %d", f, nb, col)
			}
		})
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// Solve colors the active edges of a list instance sequentially: a greedy
// pass over the lists in EdgeID order, then one Augment per edge the greedy
// pass could not serve. On instances satisfying the (deg(e)+1) slack
// invariant — every validated ColorEdgesList / ExtendColoring instance —
// the greedy pass alone completes (each edge's list exceeds its conflict
// degree), and the output respects the lists. Augmentation recolors
// neighbors with arbitrary palette colors, so it requires the full-palette
// uniform instance; with palette ≥ Δ+1 it always succeeds (Vizing's
// theorem), which is the one regime below the slack bound.
//
// Solve is not a LOCAL protocol and takes no engine: it reports
// Stats.Rounds as the number of augmentations performed and Stats.Messages
// as the number of color assignments written (greedy picks, rotations, and
// path flips) — the sequential work actually done. interrupt (nil to
// disable) is polled periodically so callers with deadlines — the serving
// pool binds it to the job context — can abort a large run between edges;
// it never fires mid-augmentation, so an aborted run has written only
// complete, proper augmentations.
func Solve(g *graph.Graph, active []bool, lists [][]int, palette int, interrupt func() error) ([]int, local.Stats, error) {
	m := g.M()
	colors := make([]int, m)
	for i := range colors {
		colors[i] = -1
	}
	used := make([]int, palette)
	stamp := 0
	var deferred []graph.EdgeID
	var writes int64
	// interruptEvery trades poll overhead against abort latency; the greedy
	// pass touches ~deg(e) edges per step, so this is a few thousand edge
	// visits between polls.
	const interruptEvery = 1024
	poll := func(step int) error {
		if interrupt != nil && step%interruptEvery == 0 {
			return interrupt()
		}
		return nil
	}
	for e := 0; e < m; e++ {
		if !active[e] {
			continue
		}
		if err := poll(e); err != nil {
			return nil, local.Stats{}, err
		}
		stamp++
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if active[f] {
				if c := colors[f]; c >= 0 && c < palette {
					used[c] = stamp
				}
			}
		})
		pick := -1
		for _, c := range lists[e] {
			if c >= 0 && c < palette && used[c] != stamp {
				pick = c
				break
			}
		}
		if pick < 0 {
			deferred = append(deferred, graph.EdgeID(e))
			continue
		}
		colors[e] = pick
		writes++
	}
	stats := local.Stats{}
	if len(deferred) == 0 {
		stats.Messages = writes
		return colors, stats, nil
	}
	// Augmentation may recolor any edge it reaches, so every active edge
	// must allow the full palette.
	for e := 0; e < m; e++ {
		if active[e] && len(lists[e]) != palette {
			return nil, stats, fmt.Errorf("vizing: greedy left edge %d uncolored but edge %d allows only %d/%d colors: augmentation needs the uniform full-palette instance", deferred[0], e, len(lists[e]), palette)
		}
	}
	aug := NewAugmenter()
	for _, e := range deferred {
		// One augmentation is orders of magnitude heavier than a greedy
		// step (O(fan·Δ + path), path up to m), so here the seam is polled
		// every iteration — the poll is noise next to the work it bounds.
		if interrupt != nil {
			if err := interrupt(); err != nil {
				return nil, stats, err
			}
		}
		rep, err := aug.Augment(g, active, colors, palette, e)
		if err != nil {
			return nil, stats, fmt.Errorf("vizing: augmenting edge %d: %w", e, err)
		}
		stats.Rounds++
		writes += int64(1 + rep.Recolored)
	}
	stats.Messages = writes
	return colors, stats, nil
}
