// Package metrics is a small, dependency-free instrumentation registry:
// counters, gauges, and fixed-bucket histograms that render themselves in
// the Prometheus text exposition format (version 0.0.4).
//
// The hot paths are lock-free: a Counter increment is one atomic add, a
// Histogram observation is two atomic adds plus a CAS loop for the sum.
// The registry lock is taken only at registration and render time, so
// instrumented code never contends with a scrape.
//
// Metrics are identified by a family name plus an ordered list of label
// pairs; several series of one family share its HELP and TYPE line. Two
// styles coexist:
//
//   - owned metrics (Counter, Gauge, Histogram) the caller updates on its
//     hot path, and
//   - callback metrics (CounterFunc, GaugeFunc) read at scrape time —
//     zero-cost views over counters a subsystem already maintains.
//
// Registration panics on misuse (duplicate series, kind mismatch, bad
// label pairs): these are programming errors, not runtime conditions.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets is the default histogram bucket ladder for request and
// batch latencies, in seconds: 5 µs up to 10 s, roughly logarithmic. The
// serving stack spans ~1 µs dynamic updates to multi-second colorings, so
// the ladder is wider than Prometheus's DefBuckets.
var LatencyBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Registry holds a set of metric families and renders them as Prometheus
// text. Create with New; safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric name: its HELP/TYPE metadata plus every labeled
// series registered under it.
type family struct {
	name, help, kind string
	series           map[string]*series // keyed by rendered label signature
}

// series is one (family, labels) sample source: exactly one of the value
// fields is set, matching the family kind.
type series struct {
	labels string // rendered `{k="v",...}` signature, "" for none
	c      *Counter
	cf     func() uint64
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter registers and returns an owned counter. labels are alternating
// key, value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels).c = c
	return c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — a view over a monotone counter the caller already maintains.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...string) {
	r.register(name, help, "counter", labels).cf = fn
}

// Gauge registers and returns an owned gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels).g = g
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, "gauge", labels).gf = fn
}

// Histogram registers and returns a fixed-bucket histogram. buckets are
// strictly increasing upper bounds (`le`); the +Inf bucket is implicit.
// The slice is not retained beyond registration checks — it is copied.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if len(buckets) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not strictly increasing at %v", buckets[i]))
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.register(name, help, "histogram", labels).h = h
	return h
}

// register validates and inserts one series, returning it for the caller
// to attach a value source.
func (r *Registry) register(name, help, kind string, labels []string) *series {
	if name == "" {
		panic("metrics: empty metric name")
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label list (want key, value pairs)", name))
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.kind, kind))
	}
	if _, dup := f.series[sig]; dup {
		panic(fmt.Sprintf("metrics: duplicate series %s%s", name, sig))
	}
	s := &series{labels: sig}
	f.series[sig] = s
	return s
}

// labelSignature renders alternating key, value pairs as the series'
// `{k="v",...}` suffix with label values escaped per the exposition
// format (backslash, double quote, newline).
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WritePrometheus renders every family in the text exposition format,
// families and series in sorted order so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	ordered := make([]*family, len(names))
	for i, name := range names {
		ordered[i] = r.families[name]
	}
	r.mu.Unlock()
	for _, f := range ordered {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	sigs := make([]string, 0, len(f.series))
	for sig := range f.series {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		if err := f.series[sig].write(w, f.name); err != nil {
			return err
		}
	}
	return nil
}

func (s *series) write(w io.Writer, name string) error {
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.c.Load())
		return err
	case s.cf != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.cf())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(s.g.Value()))
		return err
	case s.gf != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(s.gf()))
		return err
	case s.h != nil:
		return s.h.write(w, name, s.labels)
	}
	return nil // unreachable: register attaches exactly one source
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing counter. The zero value is ready
// to use; increments are single atomic adds.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable value. The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Value returns the current value as a float for rendering.
func (g *Gauge) Value() float64 { return float64(g.v.Load()) }

// Histogram counts observations into fixed buckets. Observations are
// lock-free: one atomic add into the bucket plus a CAS loop on the sum.
// The rendered count is derived from the buckets, so the `+Inf` bucket
// always equals `_count` even under concurrent observation.
type Histogram struct {
	bounds  []float64       // upper bounds (le), strictly increasing
	counts  []atomic.Uint64 // one per bound, plus the +Inf overflow
	sumBits atomic.Uint64   // float64 bits of the observation sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, i.e. v ≤ le
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) write(w io.Writer, name, labels string) error {
	// The bucket lines carry the series labels plus le; splice le into an
	// existing label set rather than appending a second brace group.
	bucketLabels := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return labels[:len(labels)-1] + `,le="` + le + `"}`
	}
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, cum)
	return err
}
