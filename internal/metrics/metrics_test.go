package metrics

import (
	"bufio"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden exposition file")

// goldenRegistry builds a registry with one deterministic sample of every
// metric style the package offers, including label values that need
// escaping and a HELP string with a backslash.
func goldenRegistry() *Registry {
	r := New()
	jobs := r.Counter("test_jobs_total", "Jobs by outcome.", "outcome", "completed")
	jobs.Add(12)
	r.Counter("test_jobs_total", "Jobs by outcome.", "outcome", "failed").Add(3)
	r.CounterFunc("test_requests_total", `Requests seen (help with a \ backslash).`, func() uint64 { return 40 })
	r.Gauge("test_queue_depth", "Jobs currently queued.").Set(7)
	r.GaugeFunc("test_temperature", "A float-valued gauge.", func() float64 { return 36.6 })
	r.Counter("test_weird_labels_total", "Label escaping.",
		"path", `C:\tmp`, "quote", `say "hi"`, "line", "a\nb").Inc()
	h := r.Histogram("test_latency_seconds", "Latency by class.",
		[]float64{0.001, 0.01, 0.1, 1}, "class", "small")
	for _, v := range []float64{0.0005, 0.004, 0.004, 0.05, 2.5} {
		h.Observe(v)
	}
	return r
}

func TestGoldenExposition(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	golden := filepath.Join("testdata", "golden.prom")
	if *update {
		os.MkdirAll("testdata", 0o755)
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden file (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from %s (run with -update to regenerate)\n got:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestExpositionWellFormed re-checks the properties the golden file pins,
// independent of exact bytes: every family has HELP and TYPE lines before
// its samples, histogram buckets are cumulative, and +Inf equals _count.
func TestExpositionWellFormed(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	seenType := map[string]bool{}
	var prevBucket uint64
	var lastInf, count uint64
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			seenType[parts[2]] = true
			prevBucket = 0
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !seenType[base] && !seenType[name] {
			t.Errorf("sample %q appears before its TYPE line", line)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		switch {
		case strings.Contains(line, "_bucket{"):
			n, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket value %q: %v", val, err)
			}
			if n < prevBucket {
				t.Errorf("bucket counts not cumulative: %d after %d in %q", n, prevBucket, line)
			}
			prevBucket = n
			if strings.Contains(line, `le="+Inf"`) {
				lastInf = n
			}
		case strings.HasSuffix(name, "_count"):
			count, _ = strconv.ParseUint(val, 10, 64)
		}
	}
	if lastInf == 0 || lastInf != count {
		t.Errorf("+Inf bucket %d != _count %d", lastInf, count)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	// le is inclusive: 1 lands in the first bucket, 2 in the second.
	wants := []uint64{2, 2, 2, 1}
	for i, want := range wants {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d: got %d, want %d", i, got, want)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+4+100; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := map[string]func(r *Registry){
		"duplicate series": func(r *Registry) {
			r.Counter("a_total", "a")
			r.Counter("a_total", "a")
		},
		"kind mismatch": func(r *Registry) {
			r.Counter("a_total", "a")
			r.Gauge("a_total", "a", "x", "1")
		},
		"odd labels":    func(r *Registry) { r.Counter("a_total", "a", "key-without-value") },
		"empty name":    func(r *Registry) { r.Counter("", "a") },
		"empty buckets": func(r *Registry) { r.Histogram("h", "h", nil) },
		"unsorted bucket": func(r *Registry) {
			r.Histogram("h", "h", []float64{1, 1})
		},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn(New())
		})
	}
}

// TestConcurrentScrapeStress hammers the registry from 32 writer
// goroutines while a scraper renders it continuously — the -race stress
// the observability layer is gated on. Beyond not racing, the final
// render must account for every write.
func TestConcurrentScrapeStress(t *testing.T) {
	const (
		writers = 32
		perG    = 2000
	)
	r := New()
	c := r.Counter("stress_total", "s")
	g := r.Gauge("stress_gauge", "s")
	h := r.Histogram("stress_seconds", "s", []float64{0.001, 0.01, 0.1})
	var extra [writers]*Counter
	for i := range extra {
		extra[i] = r.Counter("stress_labeled_total", "s", "writer", strconv.Itoa(i))
	}
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%100) / 1000)
				extra[i].Inc()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()
	if got := c.Load(); got != writers*perG {
		t.Errorf("counter = %d, want %d", got, writers*perG)
	}
	if got := h.Count(); got != writers*perG {
		t.Errorf("histogram count = %d, want %d", got, writers*perG)
	}
	total := uint64(0)
	for i := range extra {
		total += extra[i].Load()
	}
	if total != writers*perG {
		t.Errorf("labeled counters = %d, want %d", total, writers*perG)
	}
}
