package metrics

import "testing"

// The hot-path primitives, measured directly: these bound what
// instrumentation can cost a pool job (a handful of Incs and Observes per
// job, against jobs measured in microseconds to milliseconds).

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("bench_total", "bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_seconds", "bench", LatencyBuckets)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.00042)
		}
	})
}

func BenchmarkWritePrometheus(b *testing.B) {
	reg := New()
	for i := 0; i < 20; i++ {
		reg.Counter("bench_total", "bench", "i", string(rune('a'+i))).Add(uint64(i))
		reg.Histogram("bench_seconds", "bench", LatencyBuckets, "i", string(rune('a'+i))).Observe(float64(i))
	}
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discard
		reg.WritePrometheus(&buf)
		sink = buf.n
	}
	_ = sink
}

type discard struct{ n int }

func (d *discard) Write(p []byte) (int, error) { d.n += len(p); return len(p), nil }
