// Package core implements the paper's contribution: the deterministic
// (deg(e)+1)-list edge coloring algorithm running in
// log^O(log log Δ) Δ + O(log* n) rounds of the LOCAL model
// (Balliu, Kuhn, Olivetti, PODC 2020).
//
// Structure, mirroring §4 of the paper:
//
//   - solveSlack1 (Lemma 4.2): reduces a slack-1 instance to O(β²·log Δ̄)
//     slack-β instances via defective edge coloring, recursing on the
//     uncolored remainder whose conflict degree halves per sweep.
//   - assignSubspaces (Lemma 4.3 + Lemma 4.4): one list color space
//     reduction — partitions the palette into q ≤ 2p subspaces, computes
//     each edge's level, assigns subspaces directly (levels ≤ 3), through
//     the phased virtual-graph machinery (E(1)), or by a small list
//     coloring (E(2)), guaranteeing Eq. (2):
//     deg′(e) ≤ 24·H_q·log p · |L′e|/|Le| · deg(e).
//   - solveSlackS (Lemma 4.5): chains color space reductions until the
//     palette is constant, then solves with the base solver.
//   - Solve (Theorem 4.1): computes the initial O(Δ̄²) coloring once
//     (O(log* n), package linial) and enters the recursion; the
//     T(2p−1, 1, 2p) sub-instances inside the space reduction are solved by
//     recursing into solveSlack1 on the virtual graph, which with p = √Δ̄
//     realizes the outer "Δ̄ → 2√Δ̄, O(log log Δ̄) iterations" argument of
//     §4.3.
//
// All communication passes through the pair-conflict abstraction of package
// local; virtual graphs (§4.2, Figure 6) are pair systems whose side keys
// are virtual node copies, so every subroutine — including the defective
// coloring — runs on them unchanged.
package core

import (
	"fmt"
	"math"

	"github.com/distec/distec/internal/local"
)

// Params tunes the algorithm. The zero value is not valid; use Theory,
// Practical, or fill every field.
type Params struct {
	// Beta returns the slack parameter β used by the Lemma 4.2 reduction
	// for a given conflict-degree bound and palette size. The paper uses
	// β = α·log^{4c} Δ̄ with C = Δ̄^c.
	Beta func(dbar, c int) int

	// P returns the color space reduction parameter p ∈ [2, C] for a given
	// conflict-degree bound and palette size. The paper uses p = √Δ̄.
	P func(dbar, c int) int

	// BaseDegree is the conflict-degree threshold at or below which
	// instances are handed to the base solver (listcolor.SolvePairs,
	// O(Δ̄²+log*)). This is the paper's "Δ̄ = O(1)" base case.
	BaseDegree int

	// StopPalette ends the Lemma 4.5 chain: when an instance's palette is
	// at most this, it is solved directly. This is the paper's "palette
	// size becomes constant" base case.
	StopPalette int

	// Strict selects theory mode: every precondition of Lemmas 4.2–4.5 is
	// asserted and a violation is an error. With Strict false (practical
	// mode), an edge whose slack budget runs out is deferred back to the
	// enclosing Lemma 4.2 sweep, which retries it with halved degree — the
	// global invariant |Le| > deg_uncolored(e) makes deferral always safe.
	Strict bool

	// DirectAssignment disables the phased E(1)/E(2) machinery of
	// Lemma 4.3 and lets every edge pick the subspace with the largest
	// list intersection. This is the ablation of experiment E13: it voids
	// the Eq. (2) guarantee and is never used by the presets.
	DirectAssignment bool

	// MaxDepth caps the recursion depth (virtual-graph recursions) as a
	// safety net; the theory guarantees O(log log Δ̄) depth.
	MaxDepth int
}

// Theory returns the paper's parameterization for palette size C = Δ̄^c:
// β = α·log^{4c} Δ̄ and p = ⌈√Δ̄⌉, with all lemma preconditions asserted.
// For every feasible Δ̄ the resulting β exceeds Δ̄, so the algorithm
// provably bottoms out in its base cases immediately — this is the honest
// behavior of the theoretical constants and is itself measured by
// experiment E9.
func Theory(c int, alpha float64) Params {
	if c < 1 {
		c = 1
	}
	if alpha <= 0 {
		alpha = 1
	}
	return Params{
		Beta: func(dbar, _ int) int {
			lg := math.Log2(float64(max(dbar, 2)))
			b := int(math.Ceil(alpha * math.Pow(lg, float64(4*c))))
			return max(b, 1)
		},
		P: func(dbar, _ int) int {
			return max(2, int(math.Ceil(math.Sqrt(float64(dbar)))))
		},
		BaseDegree:  8,
		StopPalette: 8,
		Strict:      true,
		MaxDepth:    64,
	}
}

// Practical returns small constants that drive every code path of the
// algorithm on feasible graphs: β = 2, p = min(⌈√Δ̄⌉, 16), low thresholds,
// deferral instead of assertion. The asymptotic structure is the paper's;
// only the constants differ (see DESIGN.md, "Parameterization honesty").
func Practical() Params {
	return Params{
		Beta: func(dbar, _ int) int { return 2 },
		P: func(dbar, _ int) int {
			p := int(math.Ceil(math.Sqrt(float64(dbar))))
			return max(2, min(p, 16))
		},
		BaseDegree:  6,
		StopPalette: 8,
		Strict:      false,
		MaxDepth:    64,
	}
}

func (p Params) validate() error {
	if p.Beta == nil || p.P == nil {
		return fmt.Errorf("core: Params.Beta and Params.P must be set")
	}
	if p.BaseDegree < 1 {
		return fmt.Errorf("core: Params.BaseDegree must be ≥ 1, got %d", p.BaseDegree)
	}
	if p.StopPalette < 2 {
		return fmt.Errorf("core: Params.StopPalette must be ≥ 2, got %d", p.StopPalette)
	}
	if p.MaxDepth < 1 {
		return fmt.Errorf("core: Params.MaxDepth must be ≥ 1, got %d", p.MaxDepth)
	}
	return nil
}

// Trace accumulates instrumentation counters over one Solve call. All
// fields are best-effort diagnostics; they do not influence the algorithm.
type Trace struct {
	OuterSweeps      int     // Lemma 4.2 sweeps executed
	DefectiveCalls   int     // defective colorings computed
	ClassInstances   int     // slack-β sub-instances solved (non-empty classes)
	ChainLevels      int     // Lemma 4.3 applications (Lemma 4.5 chain steps)
	PhaseInstances   int     // E(1) phase sub-colorings solved
	E2Instances      int     // E(2) sub-colorings solved
	DirectAssigns    int     // edges assigned a subspace at level ≤ 3
	VirtualRecursion int     // virtual-graph instances solved by recursion
	Deferred         int     // edge deferrals (practical mode only)
	BetaBailouts     int     // sweeps abandoned because 2β ≥ Δ̄ (theory preset at feasible Δ̄)
	DeepestRecursion int     // maximum recursion depth reached
	Eq2Worst         float64 // worst measured Eq. (2) degradation factor
	LevelHistogram   [64]int // distribution of Lemma 4.4 levels
	// SweepDegrees records the maximum uncolored conflict degree at the
	// start of each Lemma 4.2 sweep of the top-level instance — the paper's
	// halving argument made observable (experiment E3).
	SweepDegrees []int
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// seq accumulates sequentially composed costs: rounds and messages add.
func seq(a *local.Stats, b local.Stats) {
	a.Rounds += b.Rounds
	a.Messages += b.Messages
}
