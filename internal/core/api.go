package core

import (
	"fmt"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/linial"
	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
)

// SolveGraph runs the full algorithm on a list edge coloring instance over a
// graph (package listcolor). It is the main entry point for the public API
// and the experiments.
func SolveGraph(in *listcolor.Instance, params Params, run local.Engine) (*Result, error) {
	if err := in.Validate(1); err != nil {
		return nil, fmt.Errorf("core: invalid instance: %w", err)
	}
	pairs := graphPairs(in.G)
	return Solve(pairs, in.Active, in.Lists, in.C, params, run)
}

func graphPairs(g *graph.Graph) [][2]int64 {
	pairs := make([][2]int64, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		pairs[e] = [2]int64{int64(u), int64(v)}
	}
	return pairs
}

// SpaceReduceResult is the outcome of a single color space reduction,
// exposed for the Lemma 4.3 experiments (E6, E13).
type SpaceReduceResult struct {
	// Assign maps item index to its subspace in [0, Partition.Q); −1 for
	// inactive or deferred items.
	Assign []int
	// Partition is the palette split that was applied.
	Partition Partition
	// Stats is the LOCAL cost of the assignment (excluding the preparatory
	// Linial pass, reported separately in PrepStats).
	Stats local.Stats
	// PrepStats is the cost of the initial O(Δ̄²) coloring.
	PrepStats local.Stats
	// Trace holds the instrumentation of the reduction, including the
	// worst measured Eq. (2) factor (Eq2Worst) and the level histogram.
	Trace Trace
}

// SpaceReduceOnce applies one list color space reduction (Lemma 4.3) with
// parameter p to an instance whose lists draw from the palette [0, C). It
// is the experiment hook behind E6 (Eq. (2) quality), E11 (virtual split)
// and E13 (phased vs direct ablation).
func SpaceReduceOnce(pairs [][2]int64, active []bool, lists [][]int, c, p int, params Params, run local.Engine) (*SpaceReduceResult, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if run == nil {
		run = local.Sequential
	}
	m := len(pairs)
	if active == nil {
		active = make([]bool, m)
		for i := range active {
			active[i] = true
		}
	}
	s := &Solver{params: params, run: run, trace: &Trace{}}
	prep, err := s.prepare(pairs, active)
	if err != nil {
		return nil, err
	}
	res, err := s.assignSubspaces(assignInput{
		pairs: pairs, active: active, lists: lists, lo: make([]int, m),
		size: c, p: p, depth: 0,
	})
	if err != nil {
		return nil, err
	}
	return &SpaceReduceResult{
		Assign:    res.assign,
		Partition: res.pt,
		Stats:     res.stats,
		PrepStats: prep,
		Trace:     *s.trace,
	}, nil
}

// prepare computes the global O(Δ̄²) initial coloring (Theorem 4.1's
// O(log* n) preamble) and installs it on the solver.
func (s *Solver) prepare(pairs [][2]int64, active []bool) (local.Stats, error) {
	m := len(pairs)
	full := local.PairConflict(pairs)
	sub, orig, _ := local.Induced(full, active, nil)
	init := make([]int, sub.N())
	for i, oe := range orig {
		init[i] = oe
	}
	local.SetSpanLabel(s.run, "linial")
	cols, st, err := linial.Reduce(sub, init, m, s.run)
	if err != nil {
		return st, fmt.Errorf("core: initial Linial coloring: %w", err)
	}
	s.baseCols = make([]int, m)
	for i, oe := range orig {
		s.baseCols[oe] = cols[i]
	}
	s.baseX = linial.Colors(m, sub.MaxDeg)
	return st, nil
}
