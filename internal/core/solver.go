package core

import (
	"fmt"
	"sort"

	"github.com/distec/distec/internal/defective"
	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
)

// instance is a working list coloring instance over a pair system. The item
// universe is shared across the whole recursion; active masks select
// participants.
type instance struct {
	pairs  [][2]int64
	active []bool
	lists  [][]int
	c      int // palette size: list colors lie in [0, c)
}

// Solver executes the paper's algorithm with fixed parameters over one item
// universe. It is created per Solve call and is not safe for concurrent use.
type Solver struct {
	params   Params
	run      local.Engine
	baseCols []int // proper O(Δ̄²)-coloring of the full active conflict system
	baseX    int
	trace    *Trace
}

// Result is the outcome of Solve.
type Result struct {
	// Colors maps item index to its chosen color (−1 for inactive items).
	Colors []int
	// Stats is the total LOCAL cost, sequentially composed across the whole
	// recursion (independent same-level sub-instances execute simultaneously
	// and are charged once by construction: they are solved in a single
	// combined system).
	Stats local.Stats
	// Trace holds instrumentation counters.
	Trace Trace
}

// Solve runs the full algorithm of Theorem 4.1 on a pair system: item i
// occupies side keys pairs[i], conflicting items must receive different
// colors, and each active item must be colored from its list. Every active
// item's list must be strictly larger than its active conflict degree (the
// (deg(e)+1)-list edge coloring condition); C is the palette size.
//
// The returned coloring always covers every active item: in practical mode
// deferrals are retried by the enclosing sweeps and the final base solve is
// guaranteed by the invariant that coloring a neighbor removes at most one
// list color while reducing the uncolored degree by exactly one.
func Solve(pairs [][2]int64, active []bool, lists [][]int, c int, params Params, run local.Engine) (*Result, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if run == nil {
		run = local.Sequential
	}
	m := len(pairs)
	if active == nil {
		active = make([]bool, m)
		for i := range active {
			active[i] = true
		}
	}
	if len(lists) != m || len(active) != m {
		return nil, fmt.Errorf("core: lists/active sized %d/%d for %d items", len(lists), len(active), m)
	}
	deg := activeDegrees(pairs, active, nil)
	for e := 0; e < m; e++ {
		if !active[e] {
			continue
		}
		l := lists[e]
		if len(l) <= deg[e] {
			return nil, fmt.Errorf("core: item %d violates (deg+1)-list condition: |L|=%d, deg=%d", e, len(l), deg[e])
		}
		for i, col := range l {
			if col < 0 || col >= c {
				return nil, fmt.Errorf("core: item %d color %d outside palette [0,%d)", e, col, c)
			}
			if i > 0 && l[i-1] >= col {
				return nil, fmt.Errorf("core: item %d list not strictly ascending", e)
			}
		}
	}

	s := &Solver{params: params, run: run, trace: &Trace{}}
	var stats local.Stats

	// Theorem 4.1 preamble: one O(log* n) Linial pass computes the global
	// O(Δ̄²)-coloring handed to every subsequent subroutine as its initial
	// coloring, so log* is paid exactly once.
	st, err := s.prepare(pairs, active)
	seq(&stats, st)
	if err != nil {
		return nil, err
	}

	inst := instance{pairs: pairs, active: active, lists: lists, c: c}
	colors, st, err := s.solveSlack1(inst, 0)
	seq(&stats, st)
	if err != nil {
		return nil, err
	}
	// Output contract: every active item colored from its list, no two
	// conflicting items sharing a color. O(Σdeg) — negligible next to the
	// solve itself, and it turns any internal bug into an error rather than
	// a silently wrong coloring.
	sideIdx := buildSideIndex(pairs, active)
	for e := 0; e < m; e++ {
		if !active[e] {
			continue
		}
		if colors[e] < 0 {
			return nil, fmt.Errorf("core: item %d left uncolored (bug)", e)
		}
		if !containsSorted(lists[e], colors[e]) {
			return nil, fmt.Errorf("core: item %d color %d not in its list (bug)", e, colors[e])
		}
		var clash error
		forEachNeighbor(pairs, sideIdx, e, func(f int) {
			if clash == nil && colors[f] == colors[e] {
				clash = fmt.Errorf("core: items %d and %d share color %d (bug)", e, f, colors[e])
			}
		})
		if clash != nil {
			return nil, clash
		}
	}
	return &Result{Colors: colors, Stats: stats, Trace: *s.trace}, nil
}

// containsSorted reports whether ascending list l contains x.
func containsSorted(l []int, x int) bool {
	i := sort.SearchInts(l, x)
	return i < len(l) && l[i] == x
}

// solveSlack1 implements Lemma 4.2, T(Δ̄, 1, C): sweeps of defective
// coloring with parameter β, iterating over the O(β²) defect classes,
// marking edges whose pruned list exceeds half their degree, solving each
// marked class as a slack-β instance, and recursing on the uncolored
// remainder (whose conflict degree provably halves per sweep).
func (s *Solver) solveSlack1(inst instance, depth int) ([]int, local.Stats, error) {
	if depth > s.trace.DeepestRecursion {
		s.trace.DeepestRecursion = depth
	}
	m := len(inst.pairs)
	colors := make([]int, m)
	for e := range colors {
		colors[e] = -1
	}
	cur := append([]bool(nil), inst.active...)
	sideIdxAll := buildSideIndex(inst.pairs, inst.active)
	var stats local.Stats

	for sweep := 0; anyActive(cur); sweep++ {
		dbar := maxActiveDegree(inst.pairs, cur)
		if depth == 0 {
			s.trace.SweepDegrees = append(s.trace.SweepDegrees, dbar)
		}
		beta := max(1, s.params.Beta(dbar, inst.c))
		if dbar <= s.params.BaseDegree || 2*beta >= dbar || sweep >= 64 {
			// Base cases: constant degree (the paper's T(O(1),·,·)), or a β
			// so large that the slack machinery cannot gain (for feasible Δ̄
			// the theory parameterization always lands here — experiment E9),
			// or the sweep guard (practical-mode stall safety).
			if 2*beta >= dbar && dbar > s.params.BaseDegree {
				s.trace.BetaBailouts++
			}
			st, err := s.finishBase(inst, cur, colors, sideIdxAll)
			seq(&stats, st)
			if err != nil {
				return nil, stats, err
			}
			break
		}
		s.trace.OuterSweeps++

		local.SetSpanLabel(s.run, "defective")
		def, err := defective.Color(inst.pairs, cur, beta, s.baseCols, s.baseX, s.run)
		if err != nil {
			return nil, stats, err
		}
		seq(&stats, def.Stats)
		s.trace.DefectiveCalls++

		degSnap := activeDegrees(inst.pairs, cur, nil)
		colored := 0
		for class := 0; class < def.Palette; class++ {
			var members []int
			for e := 0; e < m; e++ {
				if cur[e] && def.Colors[e] == class {
					members = append(members, e)
				}
			}
			if len(members) == 0 {
				continue
			}
			// One round: members learn colors already used next to them,
			// prune their lists, and mark themselves active if more than
			// half their (sweep-start) degree remains available.
			stats.Rounds++
			subActive := make([]bool, m)
			subLists := make([][]int, m)
			marked := 0
			for _, e := range members {
				pruned := s.prunedList(inst, colors, sideIdxAll, e)
				if 2*len(pruned) > degSnap[e] {
					subActive[e] = true
					subLists[e] = pruned
					marked++
				}
			}
			if marked == 0 {
				continue
			}
			if s.params.Strict {
				// Lemma 4.2's slack guarantee for the class instance:
				// |Le| > β · deg_sub(e).
				subDeg := activeDegrees(inst.pairs, subActive, nil)
				for _, e := range members {
					if subActive[e] && len(subLists[e]) <= beta*subDeg[e] {
						return nil, stats, fmt.Errorf("core: class %d item %d has |L|=%d ≤ β·deg'=%d·%d (Lemma 4.2 violated)",
							class, e, len(subLists[e]), beta, subDeg[e])
					}
				}
			}
			subInst := instance{pairs: inst.pairs, active: subActive, lists: subLists, c: inst.c}
			subColors, st, err := s.solveSlackS(subInst, depth)
			seq(&stats, st)
			if err != nil {
				return nil, stats, err
			}
			s.trace.ClassInstances++
			for _, e := range members {
				if subActive[e] && subColors[e] >= 0 {
					colors[e] = subColors[e]
					cur[e] = false
					colored++
				}
			}
		}
		if colored == 0 {
			// Practical-mode stall: every marked edge was deferred. The
			// global invariant keeps the remainder base-solvable.
			st, err := s.finishBase(inst, cur, colors, sideIdxAll)
			seq(&stats, st)
			if err != nil {
				return nil, stats, err
			}
			break
		}
	}
	return colors, stats, nil
}

// finishBase colors every remaining edge with the base solver after pruning
// lists against the colors already assigned in this scope.
func (s *Solver) finishBase(inst instance, cur []bool, colors []int, sideIdxAll map[int64][]int32) (local.Stats, error) {
	var stats local.Stats
	if !anyActive(cur) {
		return stats, nil
	}
	m := len(inst.pairs)
	lists := make([][]int, m)
	for e := 0; e < m; e++ {
		if cur[e] {
			lists[e] = s.prunedList(inst, colors, sideIdxAll, e)
		}
	}
	stats.Rounds++ // learning the neighbors' colors for the pruning
	local.SetSpanLabel(s.run, "base")
	got, st, err := listcolor.SolvePairs(inst.pairs, cur, lists, s.baseCols, s.baseX, s.run)
	seq(&stats, st)
	if err != nil {
		return stats, fmt.Errorf("core: base solve of remainder: %w", err)
	}
	for e := 0; e < m; e++ {
		if cur[e] {
			colors[e] = got[e]
			cur[e] = false
		}
	}
	return stats, nil
}

// prunedList returns item e's list minus the colors of its already-colored
// neighbors in the instance (information one announcement round away).
func (s *Solver) prunedList(inst instance, colors []int, sideIdxAll map[int64][]int32, e int) []int {
	var used map[int]bool
	forEachNeighbor(inst.pairs, sideIdxAll, e, func(f int) {
		if colors[f] >= 0 {
			if used == nil {
				used = make(map[int]bool)
			}
			used[colors[f]] = true
		}
	})
	if used == nil {
		return inst.lists[e]
	}
	out := make([]int, 0, len(inst.lists[e]))
	for _, c := range inst.lists[e] {
		if !used[c] {
			out = append(out, c)
		}
	}
	return out
}

// solveSlackS implements Lemma 4.5, T(Δ̄, S, C): chain color space
// reductions (Lemma 4.3) until the palette is at most StopPalette, then
// solve all surviving sub-instances — they live on disjoint palettes and
// disjoint derived key spaces, so one combined base solve covers them all
// simultaneously.
func (s *Solver) solveSlackS(inst instance, depth int) ([]int, local.Stats, error) {
	m := len(inst.pairs)
	var stats local.Stats
	pairsCur := append([][2]int64(nil), inst.pairs...)
	active := append([]bool(nil), inst.active...)
	lists := append([][]int(nil), inst.lists...)
	lo := make([]int, m)
	size := inst.c

	for size > s.params.StopPalette && anyActive(active) {
		dbar := maxActiveDegree(pairsCur, active)
		p := s.params.P(dbar, inst.c)
		p = max(2, min(p, size))
		res, err := s.assignSubspaces(assignInput{
			pairs: pairsCur, active: active, lists: lists, lo: lo,
			size: size, p: p, depth: depth,
		})
		seq(&stats, res.stats)
		if err != nil {
			return nil, stats, err
		}
		s.trace.ChainLevels++

		// Refine: keys, intervals and lists follow the chosen subspace.
		intern := make(map[[2]int64]int64)
		derive := func(key int64, j int) int64 {
			k := [2]int64{key, int64(j)}
			id, ok := intern[k]
			if !ok {
				id = int64(len(intern))
				intern[k] = id
			}
			return id
		}
		for e := 0; e < m; e++ {
			if !active[e] {
				continue
			}
			j := res.assign[e]
			if j < 0 {
				if s.params.Strict {
					return nil, stats, fmt.Errorf("core: item %d unassigned in strict mode (bug)", e)
				}
				active[e] = false // deferred to the enclosing sweep
				continue
			}
			partLo := lo[e] + j*res.pt.PartSize
			partHi := partLo + res.pt.PartSize
			iLo := sort.SearchInts(lists[e], partLo)
			iHi := sort.SearchInts(lists[e], partHi)
			lists[e] = lists[e][iLo:iHi]
			lo[e] = partLo
			pairsCur[e] = [2]int64{derive(pairsCur[e][0], j), derive(pairsCur[e][1], j)}
		}
		size = res.pt.PartSize
	}

	// Drop items whose slack budget ran out (never in strict mode), then
	// run the combined base solve.
	for {
		deg := activeDegrees(pairsCur, active, nil)
		changed := false
		for e := 0; e < m; e++ {
			if active[e] && len(lists[e]) <= deg[e] {
				if s.params.Strict {
					return nil, stats, fmt.Errorf("core: chain end item %d has |L|=%d ≤ deg=%d (slack budget exhausted in strict mode)",
						e, len(lists[e]), deg[e])
				}
				active[e] = false
				s.trace.Deferred++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	if !anyActive(active) {
		out := make([]int, m)
		for e := range out {
			out[e] = -1
		}
		return out, stats, nil
	}
	local.SetSpanLabel(s.run, "base")
	out, st, err := listcolor.SolvePairs(pairsCur, active, lists, s.baseCols, s.baseX, s.run)
	seq(&stats, st)
	if err != nil {
		return nil, stats, fmt.Errorf("core: chain-end base solve: %w", err)
	}
	return out, stats, nil
}
