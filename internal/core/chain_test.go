package core

import (
	"testing"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// newTestSolver builds a Solver with the global initial coloring prepared,
// for white-box tests of the internal lemma implementations.
func newTestSolver(t *testing.T, pairs [][2]int64, params Params) *Solver {
	t.Helper()
	s := &Solver{params: params, run: local.Sequential, trace: &Trace{}}
	active := make([]bool, len(pairs))
	for i := range active {
		active[i] = true
	}
	if _, err := s.prepare(pairs, active); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return s
}

func graphPairsOf(g *graph.Graph) [][2]int64 {
	pairs := make([][2]int64, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		pairs[e] = [2]int64{int64(u), int64(v)}
	}
	return pairs
}

// TestSolveSlackSStrictHighSlack drives the Lemma 4.5 chain directly in
// strict mode on an instance with ample slack: with full palette lists and
// tiny degrees the whole chain must run without a single deferral or
// assertion failure, and the result must be a proper list coloring.
func TestSolveSlackSStrictHighSlack(t *testing.T) {
	g := graph.RandomRegular(32, 4, 5) // deg(e)=6, lists of 64 ≫ slack bound
	pairs := graphPairsOf(g)
	c := 64
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.M())
	active := make([]bool, g.M())
	for e := range lists {
		lists[e] = palette
		active[e] = true
	}
	params := Practical()
	params.Strict = true
	s := newTestSolver(t, pairs, params)
	colors, stats, err := s.solveSlackS(instance{pairs: pairs, active: active, lists: lists, c: c}, 0)
	if err != nil {
		t.Fatalf("solveSlackS strict: %v", err)
	}
	if stats.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
	for e := 0; e < g.M(); e++ {
		if colors[e] < 0 {
			t.Fatalf("edge %d deferred in strict mode", e)
		}
		if colors[e] >= c {
			t.Fatalf("edge %d color %d outside palette", e, colors[e])
		}
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if colors[f] == colors[e] {
				t.Fatalf("edges %d and %d conflict", e, f)
			}
		})
	}
	if s.trace.ChainLevels == 0 {
		t.Fatal("chain never ran")
	}
}

// TestSolveSlackSDefersPracticalTightSlack hands the chain an instance with
// barely any slack; practical mode must defer rather than fail, and every
// colored edge must still be consistent.
func TestSolveSlackSDefersPracticalTightSlack(t *testing.T) {
	g := graph.Complete(12) // deg(e)=20
	pairs := graphPairsOf(g)
	c := 24 // lists of 21..24 colors: almost no slack for a chain
	lists := make([][]int, g.M())
	active := make([]bool, g.M())
	for e := range lists {
		deg := g.EdgeDegree(graph.EdgeID(e))
		l := make([]int, deg+2)
		for i := range l {
			l[i] = i
		}
		lists[e] = l
		active[e] = true
	}
	s := newTestSolver(t, pairs, Practical())
	colors, _, err := s.solveSlackS(instance{pairs: pairs, active: active, lists: lists, c: c}, 0)
	if err != nil {
		t.Fatalf("practical chain must not error: %v", err)
	}
	colored := 0
	for e := 0; e < g.M(); e++ {
		if colors[e] < 0 {
			continue
		}
		colored++
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if colors[f] == colors[e] {
				t.Fatalf("edges %d and %d conflict", e, f)
			}
		})
	}
	// Tight slack: deferrals are expected, but they must be recorded.
	if colored < g.M() && s.trace.Deferred == 0 {
		t.Fatal("uncolored edges but no deferral recorded")
	}
}

// TestSolveSlack1OnVirtualStylePairs runs the full Lemma 4.2 machinery on a
// pair system that is NOT a simple graph (multi-links), as the virtual
// recursion produces.
func TestSolveSlack1OnVirtualStylePairs(t *testing.T) {
	// Items: a 4-cycle of keys with one doubled link.
	pairs := [][2]int64{{0, 1}, {0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 2}}
	m := len(pairs)
	c := 8
	lists := make([][]int, m)
	active := make([]bool, m)
	for i := range lists {
		lists[i] = []int{0, 1, 2, 3, 4, 5, 6, 7}
		active[i] = true
	}
	s := newTestSolver(t, pairs, Practical())
	colors, _, err := s.solveSlack1(instance{pairs: pairs, active: active, lists: lists, c: c}, 0)
	if err != nil {
		t.Fatalf("solveSlack1: %v", err)
	}
	for i := 0; i < m; i++ {
		if colors[i] < 0 {
			t.Fatalf("item %d uncolored", i)
		}
		for j := i + 1; j < m; j++ {
			shares := pairs[i][0] == pairs[j][0] || pairs[i][0] == pairs[j][1] ||
				pairs[i][1] == pairs[j][0] || pairs[i][1] == pairs[j][1]
			if shares && colors[i] == colors[j] {
				t.Fatalf("items %d and %d share a key and color %d", i, j, colors[i])
			}
		}
	}
}

// TestDeferralsAlwaysRecover: on a battery of dense graphs the practical
// preset may defer edges mid-recursion, but Solve must still color
// everything (the invariant argument of DESIGN.md).
func TestDeferralsAlwaysRecover(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"complete16", graph.Complete(16)},
		{"dense-gnp", graph.GNP(48, 0.4, 9)},
		{"regular-high", graph.RandomRegular(64, 24, 4)},
		{"bipartite", graph.CompleteBipartite(12, 12)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pairs := graphPairsOf(tc.g)
			c := 2*tc.g.MaxDegree() - 1
			palette := make([]int, c)
			for i := range palette {
				palette[i] = i
			}
			lists := make([][]int, tc.g.M())
			for e := range lists {
				lists[e] = palette
			}
			res, err := Solve(pairs, nil, lists, c, Practical(), nil)
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < tc.g.M(); e++ {
				if res.Colors[e] < 0 {
					t.Fatalf("edge %d uncolored despite %d deferrals", e, res.Trace.Deferred)
				}
			}
		})
	}
}

func TestPresetValidation(t *testing.T) {
	if err := (Params{}).validate(); err == nil {
		t.Fatal("zero params accepted")
	}
	p := Practical()
	p.BaseDegree = 0
	if err := p.validate(); err == nil {
		t.Fatal("BaseDegree 0 accepted")
	}
	p = Practical()
	p.StopPalette = 1
	if err := p.validate(); err == nil {
		t.Fatal("StopPalette 1 accepted")
	}
	p = Practical()
	p.MaxDepth = 0
	if err := p.validate(); err == nil {
		t.Fatal("MaxDepth 0 accepted")
	}
	if err := Practical().validate(); err != nil {
		t.Fatalf("Practical invalid: %v", err)
	}
	if err := Theory(1, 1).validate(); err != nil {
		t.Fatalf("Theory invalid: %v", err)
	}
}

func TestTheoryBetaGrowth(t *testing.T) {
	p := Theory(1, 1)
	// β = ⌈log₂⁴ Δ̄⌉: spot values.
	if got := p.Beta(16, 0); got != 256 {
		t.Fatalf("Beta(16) = %d, want 256 (= 4^4)", got)
	}
	if got := p.Beta(2, 0); got != 1 {
		t.Fatalf("Beta(2) = %d, want 1", got)
	}
	// p = ⌈√Δ̄⌉.
	if got := p.P(100, 0); got != 10 {
		t.Fatalf("P(100) = %d, want 10", got)
	}
}
