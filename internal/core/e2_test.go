package core

import (
	"testing"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// TestE2PathEngages crafts an instance where the E(2) case of Lemma 4.3
// fires: high levels (many rich subspaces) but degrees below 2^ℓ. A sparse
// regular graph with full lists over many subspaces does it: every edge has
// level = ⌊log₂ q⌋ while deg(e) is small.
func TestE2PathEngages(t *testing.T) {
	g := graph.RandomRegular(64, 4, 3) // deg(e) = 6 < 2^4
	pairs := graphPairsOf(g)
	c := 512
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = palette
	}
	params := Practical()
	params.Strict = true
	res, err := SpaceReduceOnce(pairs, nil, lists, c, 32, params, local.Sequential)
	if err != nil {
		t.Fatalf("SpaceReduceOnce: %v", err)
	}
	if res.Trace.E2Instances == 0 {
		t.Fatalf("E(2) never engaged: trace %+v", res.Trace)
	}
	// E(2) edges end with deg' = 0: no conflicting edge shares their
	// subspace (paper: "we get deg′(e) = 0").
	sideCnt := make(map[[2]int64]int)
	for e, pr := range pairs {
		j := res.Assign[e]
		if j < 0 {
			t.Fatalf("edge %d unassigned in strict mode", e)
		}
		sideCnt[[2]int64{pr[0], int64(j)}]++
		sideCnt[[2]int64{pr[1], int64(j)}]++
	}
	for e, pr := range pairs {
		j := int64(res.Assign[e])
		degPrime := sideCnt[[2]int64{pr[0], j}] + sideCnt[[2]int64{pr[1], j}] - 2
		if degPrime != 0 {
			t.Fatalf("edge %d has deg'=%d, want 0 (E2 guarantee)", e, degPrime)
		}
	}
}

// TestPhasesEngageWithRecursion forces both the E(1) phase machinery and
// the virtual-graph recursion: degrees above 2^ℓ with large p, where the
// virtual conflict degree 2^(ℓ−1)−2 exceeds BaseDegree.
func TestPhasesEngageWithRecursion(t *testing.T) {
	g := graph.RandomRegular(96, 40, 7) // deg(e) = 78 ≥ 2^ℓ for ℓ ≤ 6
	pairs := graphPairsOf(g)
	c := 512
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = palette
	}
	params := Practical()
	params.Strict = true
	res, err := SpaceReduceOnce(pairs, nil, lists, c, 32, params, local.Sequential)
	if err != nil {
		t.Fatalf("SpaceReduceOnce: %v", err)
	}
	if res.Trace.PhaseInstances == 0 {
		t.Fatalf("phases never engaged: %+v", res.Trace)
	}
	if res.Trace.VirtualRecursion == 0 {
		t.Fatalf("virtual recursion never engaged: %+v", res.Trace)
	}
	for e := range pairs {
		if res.Assign[e] < 0 {
			t.Fatalf("edge %d unassigned in strict mode", e)
		}
	}
}

// The level histogram of a reduction must match what Level() computes
// per-edge (cross-check between the solver path and the public helper).
func TestLevelHistogramMatchesHelper(t *testing.T) {
	g := graph.RandomRegular(32, 6, 9)
	pairs := graphPairsOf(g)
	c := 128
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = palette
	}
	p := 8
	res, err := SpaceReduceOnce(pairs, nil, lists, c, p, Practical(), local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	pt := MakePartition(c, p)
	want := make(map[int]int)
	counts := pt.Counts(palette) // all edges share the full list
	l, ok := Level(counts, c)
	if !ok {
		t.Fatal("no level for full list")
	}
	want[l] = g.M()
	for lv, cnt := range res.Trace.LevelHistogram {
		if cnt != want[lv] {
			t.Fatalf("level %d: histogram %d, want %d", lv, cnt, want[lv])
		}
	}
}
