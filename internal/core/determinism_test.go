package core

import (
	"math/rand"
	"testing"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// TestBuildVirtualPairsDeterministic pins the fix for the map-order bug
// in buildVirtualPairs: virtual side-key IDs are interned in first-seen
// order, so iterating sideIdx directly minted IDs in map-iteration
// order and two runs over the same input could disagree. Every run must
// now produce the identical virtual pair system.
func TestBuildVirtualPairsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const m, keys = 400, 60
	pairs := make([][2]int64, m)
	isMember := make(map[int]bool, m)
	for e := range pairs {
		a := rng.Int63n(keys)
		b := rng.Int63n(keys)
		for b == a {
			b = rng.Int63n(keys)
		}
		pairs[e] = [2]int64{a, b}
		if e%3 != 0 {
			isMember[e] = true
		}
	}
	active := make([]bool, m)
	for e := range active {
		active[e] = true
	}

	var refPairs [][2]int64
	var refActive []bool
	// Rebuild sideIdx fresh each iteration: distinct map instances
	// iterate in distinct orders, which is exactly what leaked before.
	for trial := 0; trial < 25; trial++ {
		sideIdx := buildSideIndex(pairs, active)
		vp, va := buildVirtualPairs(pairs, sideIdx, isMember, 4, m)
		if trial == 0 {
			refPairs, refActive = vp, va
			continue
		}
		for e := range vp {
			if vp[e] != refPairs[e] || va[e] != refActive[e] {
				t.Fatalf("trial %d: item %d got pair %v active %v, first run had %v %v",
					trial, e, vp[e], va[e], refPairs[e], refActive[e])
			}
		}
	}
}

// TestSpaceReduceOnceDeterministic runs the whole reduction twice on one
// instance and demands byte-identical assignments — the end-to-end
// consequence of the interning fix (cross-engine equivalence and WAL
// replay both assume repeated solves agree).
func TestSpaceReduceOnceDeterministic(t *testing.T) {
	g := graph.RandomRegular(64, 24, 3)
	pairs := graphPairs(g)
	c := 256
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = palette
	}
	params := Practical()
	first, err := SpaceReduceOnce(pairs, nil, lists, c, 16, params, local.Sequential)
	if err != nil {
		t.Fatalf("first SpaceReduceOnce: %v", err)
	}
	for trial := 0; trial < 5; trial++ {
		again, err := SpaceReduceOnce(pairs, nil, lists, c, 16, params, local.Sequential)
		if err != nil {
			t.Fatalf("repeat SpaceReduceOnce: %v", err)
		}
		for e := range first.Assign {
			if again.Assign[e] != first.Assign[e] {
				t.Fatalf("trial %d: item %d assigned %d, first run assigned %d",
					trial, e, again.Assign[e], first.Assign[e])
			}
		}
	}
}
