package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
)

// verifySolution checks that res is a proper, list-respecting coloring of
// the instance with every active edge colored.
func verifySolution(t *testing.T, in *listcolor.Instance, res *Result) {
	t.Helper()
	g := in.G
	for e := 0; e < g.M(); e++ {
		if !in.Active[e] {
			if res.Colors[e] != -1 {
				t.Fatalf("inactive edge %d colored %d", e, res.Colors[e])
			}
			continue
		}
		c := res.Colors[e]
		if c < 0 {
			t.Fatalf("active edge %d uncolored", e)
		}
		found := false
		for _, lc := range in.Lists[e] {
			if lc == c {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("edge %d color %d not in list %v", e, c, in.Lists[e])
		}
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if in.Active[f] && res.Colors[f] == c {
				t.Fatalf("edges %d and %d conflict on color %d", e, f, c)
			}
		})
	}
}

func TestSolvePracticalOnFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(40)},
		{"complete", graph.Complete(10)},
		{"star", graph.Star(20)},
		{"regular6", graph.RandomRegular(48, 6, 1)},
		{"regular12", graph.RandomRegular(60, 12, 2)},
		{"bipartite", graph.CompleteBipartite(7, 8)},
		{"caterpillar", graph.Caterpillar(10, 5)},
		{"gnp", graph.GNP(60, 0.15, 3)},
		{"powerlaw", graph.PowerLaw(70, 2.5, 20, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := 2*tc.g.MaxDegree() - 1
			if c < 1 {
				t.Skip("degenerate")
			}
			in := listcolor.NewUniform(tc.g, c)
			res, err := SolveGraph(in, Practical(), local.Sequential)
			if err != nil {
				t.Fatalf("SolveGraph: %v", err)
			}
			verifySolution(t, in, res)
			if res.Stats.Rounds <= 0 {
				t.Fatal("no rounds recorded")
			}
		})
	}
}

func TestSolveTheoryPresetCorrect(t *testing.T) {
	// At feasible Δ̄ the theory parameters bail to the base solver — the
	// honest behavior of the paper's constants (E9) — and the result must
	// still be a valid coloring, with the bailout recorded.
	g := graph.RandomRegular(50, 8, 7)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	res, err := SolveGraph(in, Theory(1, 1), local.Sequential)
	if err != nil {
		t.Fatalf("SolveGraph: %v", err)
	}
	verifySolution(t, in, res)
	if res.Trace.BetaBailouts == 0 {
		t.Fatal("theory preset at Δ̄=14 did not record a β bailout")
	}
}

func TestSolveDegreeLists(t *testing.T) {
	// Adversarial-style (deg(e)+1)-size random lists.
	g := graph.RandomRegular(40, 8, 9)
	in, err := listcolor.NewDegreeLists(g, 2*g.MaxEdgeDegree(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveGraph(in, Practical(), local.Sequential)
	if err != nil {
		t.Fatalf("SolveGraph: %v", err)
	}
	verifySolution(t, in, res)
}

func TestSolvePartialInstance(t *testing.T) {
	g := graph.Complete(12)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	for e := 0; e < g.M(); e += 3 {
		in.Active[e] = false
	}
	res, err := SolveGraph(in, Practical(), local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	verifySolution(t, in, res)
}

func TestSolveExercisesMachinery(t *testing.T) {
	// A graph big enough that practical parameters run sweeps, defective
	// colorings and chain levels rather than bailing straight to base.
	g := graph.RandomRegular(64, 16, 5)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	res, err := SolveGraph(in, Practical(), local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	verifySolution(t, in, res)
	tr := res.Trace
	if tr.OuterSweeps == 0 || tr.DefectiveCalls == 0 {
		t.Fatalf("machinery not exercised: %+v", tr)
	}
	if tr.ClassInstances == 0 || tr.ChainLevels == 0 {
		t.Fatalf("no class instances or chain levels: %+v", tr)
	}
}

func TestFigure5Exact(t *testing.T) {
	// Figure 5 of the paper: C = 20, p = 4, list {1,2,5,6,7,12,17}
	// (1-based) → counts (3,2,1,1), Lemma 4.4 gives k = 2 with I = {C1, C2}.
	pt := MakePartition(20, 4)
	if pt.PartSize != 5 || pt.Q != 4 {
		t.Fatalf("partition = %+v, want PartSize=5 Q=4", pt)
	}
	// 1-based colors {1,2,5,6,7,12,17} are 0-based offsets {0,1,4,5,6,11,16}.
	offsets := []int{0, 1, 4, 5, 6, 11, 16}
	counts := pt.Counts(offsets)
	wantCounts := []int{3, 2, 1, 1}
	for i := range wantCounts {
		if counts[i] != wantCounts[i] {
			t.Fatalf("counts = %v, want %v", counts, wantCounts)
		}
	}
	k, indices, ok := BestK(counts, len(offsets))
	if !ok || k != 2 {
		t.Fatalf("BestK = %d (ok=%v), want 2 — paper's I={1,2}", k, ok)
	}
	if len(indices) != 2 || indices[0] != 0 || indices[1] != 1 {
		t.Fatalf("indices = %v, want [0 1] (the paper's C1, C2)", indices)
	}
	// The figure's threshold: |Le|/(k·H4) = 7/(2·2.0833…) ≈ 1.68, so parts
	// of size ≥ 2 qualify.
	h4 := Harmonic(4)
	threshold := 7 / (2 * h4)
	if threshold < 1.67 || threshold > 1.69 {
		t.Fatalf("threshold = %f, want ≈1.68", threshold)
	}
}

// Lemma 4.4 as a property: for any list over any partition, BestK finds a
// valid k whose indices all meet the bound |L∩Ci| ≥ |L|/(k·Hq).
func TestLemma44Property(t *testing.T) {
	f := func(seed uint64, pRaw, sizeRaw uint8) bool {
		size := int(sizeRaw%200) + 2
		p := int(pRaw)%(size-1) + 2
		pt := MakePartition(size, p)
		// Pseudo-random list of offsets.
		s := seed
		var offsets []int
		for o := 0; o < size; o++ {
			s = s*6364136223846793005 + 1442695040888963407
			if s%3 == 0 {
				offsets = append(offsets, o)
			}
		}
		if len(offsets) == 0 {
			offsets = []int{int(seed) % size}
			if offsets[0] < 0 {
				offsets[0] = 0
			}
		}
		counts := pt.Counts(offsets)
		k, indices, ok := BestK(counts, len(offsets))
		if !ok || k < 1 || len(indices) != k {
			return false
		}
		hq := Harmonic(pt.Q)
		for _, j := range indices {
			if float64(counts[j])*float64(k)*hq+1e-6 < float64(len(offsets)) {
				return false
			}
		}
		// Level existence follows from Lemma 4.4.
		if _, ok := Level(counts, len(offsets)); !ok {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBounds(t *testing.T) {
	pt := MakePartition(20, 6) // ps=4, q=5
	if pt.PartSize != 4 || pt.Q != 5 {
		t.Fatalf("partition %+v", pt)
	}
	lo, hi := pt.PartBounds(4)
	if lo != 16 || hi != 20 {
		t.Fatalf("PartBounds(4) = [%d,%d), want [16,20)", lo, hi)
	}
	// Ragged last part.
	pt = MakePartition(10, 4) // ps=3, q=4: parts 3,3,3,1
	lo, hi = pt.PartBounds(3)
	if lo != 9 || hi != 10 {
		t.Fatalf("ragged PartBounds(3) = [%d,%d), want [9,10)", lo, hi)
	}
}

func TestSpaceReduceOnceEq2(t *testing.T) {
	// E6's core assertion: one space reduction respects Eq. (2) on a
	// uniform instance with ample slack. Degree must exceed q so that
	// perfect subspace spreading is impossible and the E(1) phases engage.
	g := graph.RandomRegular(64, 24, 3)
	pairs := graphPairs(g)
	c := 256
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = palette
	}
	params := Practical()
	params.Strict = true // assert Eq. (2) per edge
	res, err := SpaceReduceOnce(pairs, nil, lists, c, 16, params, local.Sequential)
	if err != nil {
		t.Fatalf("SpaceReduceOnce: %v", err)
	}
	for e, j := range res.Assign {
		if j < 0 {
			t.Fatalf("edge %d not assigned", e)
		}
	}
	bound := 24 * Harmonic(res.Partition.Q) * math.Max(1, math.Log2(16))
	if res.Trace.Eq2Worst > bound {
		t.Fatalf("worst Eq2 factor %.3f exceeds bound %.3f", res.Trace.Eq2Worst, bound)
	}
	if res.Trace.Eq2Worst <= 0 {
		t.Fatal("no Eq2 factor measured")
	}
}

func TestSpaceReduceAblationWorse(t *testing.T) {
	// E13: the direct (no phases) ablation must degrade Eq. (2) at least as
	// much as the phased assignment on an adversarial instance where many
	// conflicting edges share the same best subspace.
	g := graph.CompleteBipartite(24, 24)
	pairs := graphPairs(g)
	c := 256
	lists := make([][]int, g.M())
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	for e := range lists {
		lists[e] = palette
	}
	phased := Practical()
	direct := Practical()
	direct.DirectAssignment = true
	rp, err := SpaceReduceOnce(pairs, nil, lists, c, 16, phased, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := SpaceReduceOnce(pairs, nil, lists, c, 16, direct, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	// With identical full lists every edge's best subspace is part 0, so
	// the direct variant assigns everyone the same subspace: deg' = deg.
	if rd.Trace.Eq2Worst < rp.Trace.Eq2Worst {
		t.Fatalf("ablation (%.3f) unexpectedly better than phased (%.3f)", rd.Trace.Eq2Worst, rp.Trace.Eq2Worst)
	}
}

func TestEnginesAgreeOnSolve(t *testing.T) {
	g := graph.RandomRegular(36, 8, 13)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	a, err := SolveGraph(in, Practical(), local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveGraph(in, Practical(), local.Goroutines)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	for e := range a.Colors {
		if a.Colors[e] != b.Colors[e] {
			t.Fatalf("edge %d: %d vs %d", e, a.Colors[e], b.Colors[e])
		}
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	g := graph.Star(4)
	pairs := graphPairs(g)
	lists := [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}
	if _, err := Solve(pairs, nil, [][]int{{0}}, 3, Practical(), nil); err == nil {
		t.Fatal("accepted wrong-length lists")
	}
	if _, err := Solve(pairs, nil, [][]int{{0}, {1}, {2}}, 3, Practical(), nil); err == nil {
		t.Fatal("accepted slack violation (|L|=1 ≤ deg=2)")
	}
	bad := [][]int{{0, 5, 2}, {0, 1, 2}, {0, 1, 2}}
	if _, err := Solve(pairs, nil, bad, 3, Practical(), nil); err == nil {
		t.Fatal("accepted non-ascending list")
	}
	if _, err := Solve(pairs, nil, lists, 2, Practical(), nil); err == nil {
		t.Fatal("accepted out-of-palette color")
	}
	var empty Params
	if _, err := Solve(pairs, nil, lists, 3, empty, nil); err == nil {
		t.Fatal("accepted zero-value Params")
	}
}

// Property: Solve produces valid colorings on random graphs and random
// (deg+1)-lists.
func TestSolveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(30, 0.2, seed)
		if g.M() < 2 {
			return true
		}
		in, err := listcolor.NewDegreeLists(g, g.MaxEdgeDegree()+10, seed^0xabcdef)
		if err != nil {
			return false
		}
		res, err := SolveGraph(in, Practical(), local.Sequential)
		if err != nil {
			return false
		}
		for e := 0; e < g.M(); e++ {
			if res.Colors[e] < 0 {
				return false
			}
			ok := false
			for _, c := range in.Lists[e] {
				if c == res.Colors[e] {
					ok = true
				}
			}
			if !ok {
				return false
			}
			conflict := false
			g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
				if res.Colors[f] == res.Colors[e] {
					conflict = true
				}
			})
			if conflict {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// The uncolored remainder of each Lemma 4.2 sweep must shrink; the trace's
// sweep count is the observable: it must stay well below the 64 guard on a
// graph where several sweeps run.
func TestSweepsBounded(t *testing.T) {
	g := graph.RandomRegular(80, 20, 17)
	in := listcolor.NewUniform(g, 2*g.MaxDegree()-1)
	res, err := SolveGraph(in, Practical(), local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	verifySolution(t, in, res)
	if res.Trace.OuterSweeps >= 30 {
		t.Fatalf("outer sweeps %d suspiciously high (degree halving broken?)", res.Trace.OuterSweeps)
	}
}
