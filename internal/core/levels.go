package core

import "math"

// Partition describes the split of a palette interval of Size colors into Q
// consecutive parts of PartSize colors each (the last part may be smaller),
// as used by the list color space reduction (§4.2): "split the color palette
// roughly into p parts C1, …, Cp, each of size at most C/p".
type Partition struct {
	Size     int // colors in the interval being split
	PartSize int // ⌈Size/p⌉
	Q        int // number of parts, ⌈Size/PartSize⌉ ≤ p
}

// MakePartition splits an interval of the given size by parameter p ≥ 2.
func MakePartition(size, p int) Partition {
	if size < 1 || p < 2 {
		panic("core: MakePartition needs size ≥ 1 and p ≥ 2")
	}
	ps := (size + p - 1) / p
	q := (size + ps - 1) / ps
	return Partition{Size: size, PartSize: ps, Q: q}
}

// PartOf returns the part index of a color offset within the interval.
func (pt Partition) PartOf(offset int) int { return offset / pt.PartSize }

// PartBounds returns the half-open offset range [lo, hi) of part j.
func (pt Partition) PartBounds(j int) (lo, hi int) {
	lo = j * pt.PartSize
	hi = lo + pt.PartSize
	if hi > pt.Size {
		hi = pt.Size
	}
	return lo, hi
}

// Counts returns, for a list of color offsets within the interval, the
// intersection size with each part: counts[j] = |L ∩ Cj|.
func (pt Partition) Counts(offsets []int) []int {
	counts := make([]int, pt.Q)
	for _, off := range offsets {
		counts[pt.PartOf(off)]++
	}
	return counts
}

// Harmonic returns the q-th harmonic number H_q = Σ_{i=1..q} 1/i.
func Harmonic(q int) float64 {
	h := 0.0
	for i := 1; i <= q; i++ {
		h += 1 / float64(i)
	}
	return h
}

// thresholdMet reports cnt ≥ listLen/(k·Hq), evaluated with a small relative
// tolerance so borderline floating point cases err on the permissive side
// (the guarantee consumers re-check sizes directly).
func thresholdMet(cnt, listLen int, k float64, hq float64) bool {
	return float64(cnt)*k*hq+1e-9 >= float64(listLen)
}

// BestK implements Lemma 4.4: it returns the smallest k ∈ {1, …, q} such
// that at least k parts satisfy |L ∩ Cj| ≥ |L|/(k·H_q), together with the
// part indices (the k largest intersections). The lemma guarantees such a k
// exists for every non-empty list; ok is false only for empty lists.
func BestK(counts []int, listLen int) (k int, indices []int, ok bool) {
	if listLen <= 0 {
		return 0, nil, false
	}
	q := len(counts)
	hq := Harmonic(q)
	// Order part indices by decreasing count (stable by index for
	// determinism across engines).
	order := sortedByCountDesc(counts)
	for k = 1; k <= q; k++ {
		// The k-th largest count must meet the level-k threshold; then all
		// larger ones do too.
		if thresholdMet(counts[order[k-1]], listLen, float64(k), hq) {
			idx := append([]int(nil), order[:k]...)
			return k, idx, true
		}
	}
	return 0, nil, false
}

// Level returns the paper's level ℓ(e) ∈ {0, …, ⌊log₂ q⌋}: the largest ℓ for
// which at least 2^ℓ parts j satisfy |L ∩ Cj| ≥ |L|/(2^{ℓ+1}·H_q). Existence
// for ℓ = derived-from-Lemma-4.4 is guaranteed; ok is false only for empty
// lists.
func Level(counts []int, listLen int) (level int, ok bool) {
	if listLen <= 0 {
		return 0, false
	}
	q := len(counts)
	hq := Harmonic(q)
	maxL := int(math.Log2(float64(q)))
	best, found := -1, false
	for l := 0; l <= maxL; l++ {
		need := 1 << l
		have := 0
		for _, c := range counts {
			if thresholdMet(c, listLen, float64(int(1)<<(l+1)), hq) {
				have++
			}
		}
		if have >= need {
			best, found = l, true
		}
	}
	if !found {
		// Lemma 4.4 rules this out: with k from BestK, ℓ = ⌊log₂ k⌋ always
		// qualifies. Treated as an internal error by callers.
		return 0, false
	}
	return best, true
}

// LevelCandidates returns the part indices meeting the level-ℓ threshold
// |L ∩ Cj| ≥ |L|/(2^{ℓ+1}·H_q), in decreasing-count order.
func LevelCandidates(counts []int, listLen, level int) []int {
	hq := Harmonic(len(counts))
	order := sortedByCountDesc(counts)
	var out []int
	for _, j := range order {
		if thresholdMet(counts[j], listLen, float64(int(1)<<(level+1)), hq) {
			out = append(out, j)
		}
	}
	return out
}

// sortedByCountDesc returns part indices ordered by decreasing count,
// breaking ties by ascending index (deterministic).
func sortedByCountDesc(counts []int) []int {
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	// Insertion sort: q is small (≤ 2p) and this avoids allocation churn.
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && (counts[order[j]] > counts[order[j-1]] ||
			(counts[order[j]] == counts[order[j-1]] && order[j] < order[j-1])) {
			order[j], order[j-1] = order[j-1], order[j]
			j--
		}
	}
	return order
}
