package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
)

// assignInput is one invocation of the list color space reduction
// (Lemma 4.3) over the current conflict system. Each active item owns a
// palette interval [lo[i], lo[i]+size) — items sharing a side key always
// share an interval, because the Lemma 4.5 chain refines side keys and
// intervals together — and a list of absolute colors inside its interval.
type assignInput struct {
	pairs  [][2]int64
	active []bool
	lists  [][]int
	lo     []int
	size   int
	p      int
	depth  int
}

// assignResult carries the chosen subspace index per item (−1 for inactive
// or deferred items), the partition used, and the LOCAL cost.
type assignResult struct {
	assign []int
	pt     Partition
	stats  local.Stats
}

// assignSubspaces implements Lemma 4.3: assign one of the q ≤ 2p palette
// subspaces to every active item so that Eq. (2) holds —
// deg′(e) ≤ 24·H_q·log p · |L′e|/|Le| · deg(e) — in
// (log p)·(1 + T(2p−1, 1, 2p)) rounds.
func (s *Solver) assignSubspaces(in assignInput) (assignResult, error) {
	local.SetSpanLabel(s.run, "chain")
	m := len(in.pairs)
	pt := MakePartition(in.size, in.p)
	q := pt.Q
	res := assignResult{assign: make([]int, m), pt: pt}
	for i := range res.assign {
		res.assign[i] = -1
	}

	// Side index and active degrees of the current system.
	sideIdx := buildSideIndex(in.pairs, in.active)
	deg := activeDegrees(in.pairs, in.active, sideIdx)

	// Per-item partition counts and levels (all local computation).
	counts := make([][]int, m)
	level := make([]int, m)
	maxLevel := int(math.Log2(float64(q)))
	for e := 0; e < m; e++ {
		if !in.active[e] {
			continue
		}
		offsets := make([]int, len(in.lists[e]))
		for i, c := range in.lists[e] {
			offsets[i] = c - in.lo[e]
			if offsets[i] < 0 || offsets[i] >= in.size {
				return res, fmt.Errorf("core: item %d color %d outside its interval [%d,%d)", e, c, in.lo[e], in.lo[e]+in.size)
			}
		}
		counts[e] = pt.Counts(offsets)
		l, ok := Level(counts[e], len(in.lists[e]))
		if !ok {
			return res, fmt.Errorf("core: item %d has no level (Lemma 4.4 violated — bug)", e)
		}
		level[e] = l
		if l < len(s.trace.LevelHistogram) {
			s.trace.LevelHistogram[l]++
		}
	}

	// Ablation mode (experiment E13): every item takes the subspace with
	// the largest intersection; no phases, no Eq. (2) guarantee (the audit
	// below still measures the damage, but never asserts).
	if s.params.DirectAssignment {
		for e := 0; e < m; e++ {
			if in.active[e] {
				res.assign[e] = sortedByCountDesc(counts[e])[0]
				s.trace.DirectAssigns++
			}
		}
		res.stats.Rounds++ // announcing the choice
		return res, s.auditEq2(in, res, counts, deg, sideIdx, false)
	}

	// Levels ≤ 3: pick the largest intersection directly. Even if every
	// neighbor chose the same subspace, |L′| ≥ |L|/(16·H_q) satisfies
	// Eq. (2). One announcement round, charged at the end alongside the
	// phase schedule.
	for e := 0; e < m; e++ {
		if in.active[e] && level[e] <= 3 {
			res.assign[e] = sortedByCountDesc(counts[e])[0]
			s.trace.DirectAssigns++
		}
	}
	res.stats.Rounds++ // announce direct assignments

	// E(1): level > 3 and deg ≥ 2^level, processed in phases ℓ = 4..⌊log q⌋.
	// E(2): level > 3 and deg < 2^level, processed after all phases.
	for l := 4; l <= maxLevel; l++ {
		var members []int
		for e := 0; e < m; e++ {
			if in.active[e] && level[e] == l && deg[e] >= 1<<l {
				members = append(members, e)
			}
		}
		if len(members) == 0 {
			continue
		}
		st, err := s.runPhase(in, res.assign, counts, deg, sideIdx, members, l)
		seq(&res.stats, st)
		if err != nil {
			return res, err
		}
	}

	// E(2).
	var e2 []int
	for e := 0; e < m; e++ {
		if in.active[e] && level[e] > 3 && deg[e] < 1<<level[e] {
			e2 = append(e2, e)
		}
	}
	if len(e2) > 0 {
		st, err := s.runE2(in, res.assign, counts, level, sideIdx, e2)
		seq(&res.stats, st)
		if err != nil {
			return res, err
		}
	}

	// Eq. (2) audit: measure the worst degradation factor and, in strict
	// mode, assert the paper's bound.
	return res, s.auditEq2(in, res, counts, deg, sideIdx, s.params.Strict)
}

// auditEq2 measures the Eq. (2) degradation factor of every assigned item
// and, when assert is set, errors if the paper's bound
// 24·H_q·log p · |L′e|/|Le| is exceeded.
func (s *Solver) auditEq2(in assignInput, res assignResult, counts [][]int, deg []int, sideIdx map[int64][]int32, assert bool) error {
	bound := 24 * Harmonic(res.pt.Q) * math.Max(1, math.Log2(float64(in.p)))
	for e := range in.pairs {
		if !in.active[e] || res.assign[e] < 0 || deg[e] == 0 {
			continue
		}
		degPrime := 0
		forEachNeighbor(in.pairs, sideIdx, e, func(f int) {
			if res.assign[f] == res.assign[e] {
				degPrime++
			}
		})
		newLen := counts[e][res.assign[e]]
		if newLen == 0 {
			return fmt.Errorf("core: item %d assigned empty subspace %d (bug)", e, res.assign[e])
		}
		factor := float64(degPrime) * float64(len(in.lists[e])) / (float64(newLen) * float64(deg[e]))
		if factor > s.trace.Eq2Worst {
			s.trace.Eq2Worst = factor
		}
		if assert && factor > bound+1e-9 {
			return fmt.Errorf("core: Eq.(2) violated at item %d: factor %.3f > bound %.3f (deg=%d deg'=%d |L|=%d |L'|=%d q=%d p=%d)",
				e, factor, bound, deg[e], degPrime, len(in.lists[e]), newLen, res.pt.Q, in.p)
		}
	}
	return nil
}

// runPhase executes phase ℓ of the E(1) machinery: compute Je for every
// member, split nodes into virtual copies of ≤ 2^(ℓ−2) phase edges, and
// solve the (deg(e)+1)-list coloring on the virtual graph with palette q.
func (s *Solver) runPhase(in assignInput, assign []int, counts [][]int, deg []int, sideIdx map[int64][]int32, members []int, l int) (local.Stats, error) {
	var stats local.Stats
	stats.Rounds++ // learn neighbors' prior assignments (Je determination)
	s.trace.PhaseInstances++

	isMember := make(map[int]bool, len(members))
	for _, e := range members {
		isMember[e] = true
	}

	// Je: candidate subspaces with large intersection and few prior takers.
	je := make(map[int][]int, len(members))
	for _, e := range members {
		takers := make([]int, len(counts[e]))
		forEachNeighbor(in.pairs, sideIdx, e, func(f int) {
			if assign[f] >= 0 {
				takers[assign[f]]++
			}
		})
		cands := LevelCandidates(counts[e], len(in.lists[e]), l)
		budget := deg[e] / (1 << (l - 1))
		var keep []int
		for _, j := range cands {
			if takers[j] <= budget {
				keep = append(keep, j)
			}
		}
		sort.Ints(keep)
		if s.params.Strict && len(keep) < 1<<(l-1) {
			return stats, fmt.Errorf("core: phase %d item %d has |Je|=%d < 2^(ℓ−1)=%d (Lemma 4.3 bookkeeping violated)",
				l, e, len(keep), 1<<(l-1))
		}
		je[e] = keep
	}

	// Virtual graph: each side key splits its phase members into groups of
	// at most 2^(ℓ−2); the virtual line-graph degree is ≤ 2^(ℓ−1)−2.
	groupSize := 1 << (l - 2)
	virtualPairs, active := buildVirtualPairs(in.pairs, sideIdx, isMember, groupSize, len(in.pairs))

	// The assignment instance: lists are the Je sets over palette {0..q−1}.
	lists := make([][]int, len(in.pairs))
	for _, e := range members {
		lists[e] = je[e]
	}
	vdeg := activeDegrees(virtualPairs, active, nil)
	for _, e := range members {
		if vdeg[e] > (1<<(l-1))-2 {
			return stats, fmt.Errorf("core: phase %d virtual degree %d exceeds 2^(ℓ−1)−2=%d (bug)", l, vdeg[e], (1<<(l-1))-2)
		}
		if len(je[e]) <= vdeg[e] {
			if s.params.Strict {
				return stats, fmt.Errorf("core: phase %d item %d: |Je|=%d ≤ virtual degree %d", l, e, len(je[e]), vdeg[e])
			}
			// Practical mode: defer this item; shrink its footprint.
			s.trace.Deferred++
			active[e] = false
			isMember[e] = false
		}
	}

	choice, st, err := s.solveVirtual(instance{pairs: virtualPairs, active: active, lists: lists, c: MakePartition(in.size, in.p).Q}, in.depth)
	seq(&stats, st)
	if err != nil {
		return stats, err
	}
	for _, e := range members {
		if isMember[e] && choice[e] >= 0 {
			assign[e] = choice[e]
		} else if isMember[e] {
			s.trace.Deferred++
		}
	}
	return stats, nil
}

// runE2 assigns subspaces to the low-degree, high-level items after all
// phases: each picks among its > deg(e) non-empty candidate subspaces one
// that no already-assigned neighbor took, via a (deg+1)-list coloring over
// the E(2) subsystem with palette q.
func (s *Solver) runE2(in assignInput, assign []int, counts [][]int, level []int, sideIdx map[int64][]int32, e2 []int) (local.Stats, error) {
	var stats local.Stats
	stats.Rounds++ // learn the subspaces taken by assigned neighbors
	s.trace.E2Instances++

	m := len(in.pairs)
	active := make([]bool, m)
	lists := make([][]int, m)
	inE2 := make(map[int]bool, len(e2))
	for _, e := range e2 {
		inE2[e] = true
	}
	for {
		changed := false
		for _, e := range e2 {
			if !inE2[e] {
				continue
			}
			taken := make([]bool, len(counts[e]))
			degE2 := 0
			forEachNeighbor(in.pairs, sideIdx, e, func(f int) {
				if assign[f] >= 0 {
					taken[assign[f]] = true
				} else if inE2[f] {
					degE2++
				}
			})
			var free []int
			for _, j := range LevelCandidates(counts[e], len(in.lists[e]), level[e]) {
				if !taken[j] {
					free = append(free, j)
				}
			}
			sort.Ints(free)
			if len(free) <= degE2 {
				if s.params.Strict {
					return stats, fmt.Errorf("core: E(2) item %d has %d free subspaces for E2-degree %d", e, len(free), degE2)
				}
				s.trace.Deferred++
				inE2[e] = false // defer: removing it can only help others
				changed = true
				continue
			}
			active[e] = true
			lists[e] = free
		}
		if !changed {
			break
		}
		for e := range active {
			active[e] = false
		}
	}
	for _, e := range e2 {
		if inE2[e] {
			active[e] = true
		}
	}
	if !anyActive(active) {
		return stats, nil
	}
	local.SetSpanLabel(s.run, "chain")
	choice, st, err := listcolor.SolvePairs(in.pairs, active, lists, s.baseCols, s.baseX, s.run)
	seq(&stats, st)
	if err != nil {
		return stats, fmt.Errorf("core: E(2) assignment: %w", err)
	}
	for _, e := range e2 {
		if active[e] && choice[e] >= 0 {
			assign[e] = choice[e]
		}
	}
	return stats, nil
}

// solveVirtual solves the T(2p−1, 1, 2p)-style sub-instance arising inside
// the space reduction. Large instances recurse into the full algorithm
// (realizing the Δ̄ → 2√Δ̄ outer recursion of §4.3); small ones go to the
// base solver.
func (s *Solver) solveVirtual(inst instance, depth int) ([]int, local.Stats, error) {
	dbar := maxActiveDegree(inst.pairs, inst.active)
	if dbar > s.params.BaseDegree && depth+1 < s.params.MaxDepth {
		s.trace.VirtualRecursion++
		return s.solveSlack1(inst, depth+1)
	}
	local.SetSpanLabel(s.run, "base")
	return listcolor.SolvePairs(inst.pairs, inst.active, inst.lists, s.baseCols, s.baseX, s.run)
}

// buildVirtualPairs splits every side key into virtual copies holding at
// most groupSize phase members each (Figure 6), returning the virtual pair
// system over the same item universe and the membership mask.
func buildVirtualPairs(pairs [][2]int64, sideIdx map[int64][]int32, isMember map[int]bool, groupSize, m int) ([][2]int64, []bool) {
	virtual := make([][2]int64, m)
	active := make([]bool, m)
	intern := make(map[[2]int64]int64)
	derive := func(key int64, group int) int64 {
		k := [2]int64{key, int64(group)}
		id, ok := intern[k]
		if !ok {
			id = int64(len(intern))
			intern[k] = id
		}
		return id
	}
	// Iterate side keys in sorted order: derive hands out intern IDs in
	// first-seen order, so walking the map directly would mint virtual
	// pair IDs in map-iteration order — nondeterministic across runs,
	// which breaks cross-engine equivalence and WAL replay of any solve
	// that recurses through here.
	keys := make([]int64, 0, len(sideIdx))
	for key := range sideIdx {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, key := range keys {
		rank := 0
		for _, it := range sideIdx[key] {
			e := int(it)
			if !isMember[e] {
				continue
			}
			vk := derive(key, rank/groupSize)
			if pairs[e][0] == key {
				virtual[e][0] = vk
			} else {
				virtual[e][1] = vk
			}
			rank++
		}
	}
	for e := range virtual {
		if isMember[e] {
			active[e] = true
		}
	}
	return virtual, active
}

// buildSideIndex returns the side-key incidence lists of the active items.
func buildSideIndex(pairs [][2]int64, active []bool) map[int64][]int32 {
	idx := make(map[int64][]int32)
	for e, pr := range pairs {
		if active == nil || active[e] {
			idx[pr[0]] = append(idx[pr[0]], int32(e))
			idx[pr[1]] = append(idx[pr[1]], int32(e))
		}
	}
	return idx
}

// activeDegrees returns each active item's conflict degree within the
// active subsystem. sideIdx may be nil to compute it internally.
func activeDegrees(pairs [][2]int64, active []bool, sideIdx map[int64][]int32) []int {
	if sideIdx == nil {
		sideIdx = buildSideIndex(pairs, active)
	}
	deg := make([]int, len(pairs))
	for e, pr := range pairs {
		if active == nil || active[e] {
			deg[e] = len(sideIdx[pr[0]]) + len(sideIdx[pr[1]]) - 2
		}
	}
	return deg
}

// forEachNeighbor calls fn for every active item sharing a side key with e
// (an item adjacent via both keys is visited twice, matching multi-links).
func forEachNeighbor(pairs [][2]int64, sideIdx map[int64][]int32, e int, fn func(f int)) {
	for _, key := range pairs[e] {
		for _, it := range sideIdx[key] {
			if int(it) != e {
				fn(int(it))
			}
		}
	}
}

func maxActiveDegree(pairs [][2]int64, active []bool) int {
	d := 0
	for _, x := range activeDegrees(pairs, active, nil) {
		if x > d {
			d = x
		}
	}
	return d
}

func anyActive(active []bool) bool {
	for _, a := range active {
		if a {
			return true
		}
	}
	return false
}
