package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/metrics"
)

// TestRegistryExposition wires a pool to a registry, pushes one job down
// each outcome lane, and checks the scrape and the Stats snapshot agree.
func TestRegistryExposition(t *testing.T) {
	reg := metrics.New()
	p := New(Options{Workers: 2, Metrics: reg})
	defer p.Close()
	if p.Workers() != 2 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
	if p.Closed() {
		t.Fatal("Closed() on a live pool")
	}

	tp := local.EdgeConflict(graph.Cycle(64))
	out := make([]int, tp.N())
	if err := p.Do(context.Background(), func(eng local.Engine) error {
		_, err := eng.Run(tp, floodFactory(3, out), nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("job failed on purpose")
	if err := p.Do(context.Background(), func(local.Engine) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("failed job: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := p.Do(ctx, func(eng local.Engine) error {
		_, err := eng.Run(tp, func(v local.View) local.Protocol { return &neverHalt{v: v} }, nil)
		return err
	}); err == nil {
		t.Fatal("cancelled job returned nil")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	scrape := sb.String()
	for _, want := range []string{
		"distec_serve_jobs_submitted_total 3",
		`distec_serve_jobs_total{outcome="completed"} 1`,
		`distec_serve_jobs_total{outcome="failed"} 1`,
		`distec_serve_jobs_total{outcome="cancelled"} 1`,
		`distec_serve_runs_total{route="sequential"}`,
		"distec_serve_workers 2",
		"distec_serve_queue_depth 8",
		`distec_serve_job_seconds_count{outcome="completed"} 1`,
		`distec_serve_job_seconds_count{outcome="cancelled"} 1`,
	} {
		if !strings.Contains(scrape, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", scrape)
	}

	s := p.Stats()
	if s.Submitted != 3 || s.Completed != 1 || s.Failed != 1 || s.Cancelled != 1 {
		t.Fatalf("stats %+v", s)
	}

	// Rejection: a context already done never gets an admission slot once
	// the queue is full. Fill all 8 slots (queue depth 4×workers) with
	// jobs parked in their fn, which runs on the submitter's goroutine.
	done, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	block := make(chan struct{})
	release := make(chan struct{})
	for i := 0; i < 8; i++ {
		go p.Do(context.Background(), func(local.Engine) error { block <- struct{}{}; <-release; return nil })
	}
	for i := 0; i < 8; i++ {
		<-block // every admission slot is now held
	}
	if err := p.Do(done, func(local.Engine) error { return nil }); err == nil {
		t.Fatal("expected rejection")
	}
	close(release)
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Running != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := p.Stats().AdmissionRejected; got != 1 {
		t.Fatalf("AdmissionRejected = %d, want 1", got)
	}
	sb.Reset()
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "distec_serve_admission_rejected_total 1") {
		t.Error("scrape missing rejection counter")
	}
}
