package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is the number of most recent job latencies the quantile window
// keeps (a ring buffer; quantiles are over this window, not all time).
const latWindow = 1024

// metrics is the pool's running instrumentation. Counters are atomics so
// the hot paths never share a lock; only the latency ring takes one, once
// per completed job.
type metrics struct {
	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64

	seqRuns    atomic.Uint64
	slicedRuns atomic.Uint64
	fanoutRuns atomic.Uint64

	rounds   atomic.Int64
	messages atomic.Int64

	waiting atomic.Int64
	running atomic.Int64

	latMu sync.Mutex
	lat   [latWindow]time.Duration
	latN  int
}

func (m *metrics) recordLatency(d time.Duration) {
	m.latMu.Lock()
	m.lat[m.latN%latWindow] = d
	m.latN++
	m.latMu.Unlock()
}

// quantiles returns the p50 and p99 job latency over the window (zeros
// before the first completion).
func (m *metrics) quantiles() (p50, p99 time.Duration) {
	m.latMu.Lock()
	n := m.latN
	if n > latWindow {
		n = latWindow
	}
	window := make([]time.Duration, n)
	copy(window, m.lat[:n])
	m.latMu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	return window[n/2], window[(n*99)/100]
}

// Stats is a point-in-time snapshot of the pool's metrics.
type Stats struct {
	// Workers is the number of worker lanes; QueueDepth the admission bound.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Waiting counts jobs blocked on admission; Running counts admitted
	// jobs currently executing.
	Waiting int64 `json:"waiting"`
	Running int64 `json:"running"`
	// Job counts by outcome. Submitted = Completed + Failed + Cancelled +
	// still in flight.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// Protocol executions by route: whole-on-one-lane sequential, sliced
	// single-lane, fanned-out multi-lane.
	SequentialRuns uint64 `json:"sequential_runs"`
	SlicedRuns     uint64 `json:"sliced_runs"`
	FanoutRuns     uint64 `json:"fanout_runs"`
	// Rounds and Messages total the LOCAL cost served.
	Rounds   int64 `json:"rounds"`
	Messages int64 `json:"messages"`
	// LatencyP50/P99 are job-latency quantiles over the last latWindow
	// completed jobs.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
}

// Stats returns a snapshot of the pool's metrics.
func (p *Pool) Stats() Stats {
	p50, p99 := p.m.quantiles()
	return Stats{
		Workers:        p.workers,
		QueueDepth:     p.queueDepth,
		Waiting:        p.m.waiting.Load(),
		Running:        p.m.running.Load(),
		Submitted:      p.m.submitted.Load(),
		Completed:      p.m.completed.Load(),
		Failed:         p.m.failed.Load(),
		Cancelled:      p.m.cancelled.Load(),
		SequentialRuns: p.m.seqRuns.Load(),
		SlicedRuns:     p.m.slicedRuns.Load(),
		FanoutRuns:     p.m.fanoutRuns.Load(),
		Rounds:         p.m.rounds.Load(),
		Messages:       p.m.messages.Load(),
		LatencyP50:     p50,
		LatencyP99:     p99,
	}
}
