package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/distec/distec/internal/metrics"
)

// latWindow is the number of most recent job latencies the quantile window
// keeps (a ring buffer; quantiles are over this window, not all time).
const latWindow = 1024

// metrics is the pool's running instrumentation. Counters are atomics so
// the hot paths never share a lock; only the latency ring takes one, once
// per completed job.
type poolMetrics struct {
	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	cancelled atomic.Uint64
	// rejected counts jobs that never got an admission slot (context done
	// while waiting, or the pool closed): the queueing-collapse signal an
	// open-loop load harness watches, split out from cancelled which also
	// covers mid-job cancellation.
	rejected atomic.Uint64

	seqRuns    atomic.Uint64
	slicedRuns atomic.Uint64
	fanoutRuns atomic.Uint64

	rounds   atomic.Int64
	messages atomic.Int64

	waiting atomic.Int64
	running atomic.Int64

	// hist, when non-nil, receives every job latency by outcome on top of
	// the quantile window (Prometheus histograms for scraping; the window
	// serves /v1/stats' exact p50/p99). Nil outside registry mode keeps
	// the un-instrumented hot path identical to before.
	hist *outcomeHistograms

	latMu sync.Mutex
	lat   [latWindow]time.Duration
	latN  int
}

// outcomeHistograms is the job-latency histogram family, one series per
// outcome lane so a failing or cancel-heavy lane cannot hide inside the
// completed lane's distribution.
type outcomeHistograms struct {
	completed *metrics.Histogram
	failed    *metrics.Histogram
	cancelled *metrics.Histogram
}

// register exposes the pool's counters on reg as scrape-time views (the
// hot path keeps its plain atomics) and switches on latency histograms.
func (m *poolMetrics) register(reg *metrics.Registry, workers, queueDepth int) {
	u := func(a *atomic.Uint64) func() uint64 { return a.Load }
	i := func(a *atomic.Int64) func() float64 { return func() float64 { return float64(a.Load()) } }
	reg.CounterFunc("distec_serve_jobs_submitted_total", "Jobs submitted to the pool (admitted or not).", u(&m.submitted))
	reg.CounterFunc("distec_serve_jobs_total", "Jobs finished, by outcome.", u(&m.completed), "outcome", "completed")
	reg.CounterFunc("distec_serve_jobs_total", "Jobs finished, by outcome.", u(&m.failed), "outcome", "failed")
	reg.CounterFunc("distec_serve_jobs_total", "Jobs finished, by outcome.", u(&m.cancelled), "outcome", "cancelled")
	reg.CounterFunc("distec_serve_admission_rejected_total", "Jobs that never got an admission slot (context done while queued, or pool closed).", u(&m.rejected))
	reg.CounterFunc("distec_serve_runs_total", "Protocol executions, by route.", u(&m.seqRuns), "route", "sequential")
	reg.CounterFunc("distec_serve_runs_total", "Protocol executions, by route.", u(&m.slicedRuns), "route", "sliced")
	reg.CounterFunc("distec_serve_runs_total", "Protocol executions, by route.", u(&m.fanoutRuns), "route", "fanout")
	reg.CounterFunc("distec_serve_rounds_total", "LOCAL rounds served.", func() uint64 { return uint64(m.rounds.Load()) })
	reg.CounterFunc("distec_serve_messages_total", "LOCAL messages served.", func() uint64 { return uint64(m.messages.Load()) })
	reg.GaugeFunc("distec_serve_queue_waiting", "Jobs blocked on admission.", i(&m.waiting))
	reg.GaugeFunc("distec_serve_queue_running", "Admitted jobs currently executing.", i(&m.running))
	reg.GaugeFunc("distec_serve_workers", "Worker lanes.", func() float64 { return float64(workers) })
	reg.GaugeFunc("distec_serve_queue_depth", "Admission bound (jobs in flight).", func() float64 { return float64(queueDepth) })
	const help = "Job latency from admission to completion, by outcome."
	m.hist = &outcomeHistograms{
		completed: reg.Histogram("distec_serve_job_seconds", help, metrics.LatencyBuckets, "outcome", "completed"),
		failed:    reg.Histogram("distec_serve_job_seconds", help, metrics.LatencyBuckets, "outcome", "failed"),
		cancelled: reg.Histogram("distec_serve_job_seconds", help, metrics.LatencyBuckets, "outcome", "cancelled"),
	}
}

func (m *poolMetrics) recordLatency(d time.Duration) {
	m.latMu.Lock()
	m.lat[m.latN%latWindow] = d
	m.latN++
	m.latMu.Unlock()
}

// quantiles returns the p50 and p99 job latency over the window (zeros
// before the first completion).
func (m *poolMetrics) quantiles() (p50, p99 time.Duration) {
	m.latMu.Lock()
	n := m.latN
	if n > latWindow {
		n = latWindow
	}
	window := make([]time.Duration, n)
	copy(window, m.lat[:n])
	m.latMu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	return window[n/2], window[(n*99)/100]
}

// Stats is a point-in-time snapshot of the pool's metrics.
type Stats struct {
	// Workers is the number of worker lanes; QueueDepth the admission bound.
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Waiting counts jobs blocked on admission; Running counts admitted
	// jobs currently executing.
	Waiting int64 `json:"waiting"`
	Running int64 `json:"running"`
	// Job counts by outcome. Submitted = Completed + Failed + Cancelled +
	// still in flight.
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// AdmissionRejected counts jobs that never got an admission slot
	// (context done while queued, or pool closed) — a subset of Cancelled
	// and Failed that signals queueing collapse under open-loop load.
	AdmissionRejected uint64 `json:"admission_rejected"`
	// Protocol executions by route: whole-on-one-lane sequential, sliced
	// single-lane, fanned-out multi-lane.
	SequentialRuns uint64 `json:"sequential_runs"`
	SlicedRuns     uint64 `json:"sliced_runs"`
	FanoutRuns     uint64 `json:"fanout_runs"`
	// Rounds and Messages total the LOCAL cost served.
	Rounds   int64 `json:"rounds"`
	Messages int64 `json:"messages"`
	// LatencyP50/P99 are job-latency quantiles over the last latWindow
	// completed jobs.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
}

// Stats returns a snapshot of the pool's metrics, built in one place so
// every surface (JSON stats, Prometheus scrape) reads the same counters.
// The counters are independent atomics, so a truly instantaneous snapshot
// is impossible without stalling the hot path; instead the reads are
// ordered so the snapshot's invariants hold: every outcome counter
// (completed, failed, cancelled) is read BEFORE submitted, so the
// snapshot can never report more finished jobs than submissions — jobs
// finishing between the reads inflate submitted, never the outcomes.
func (p *Pool) Stats() Stats {
	p50, p99 := p.m.quantiles()
	s := Stats{
		Workers:           p.workers,
		QueueDepth:        p.queueDepth,
		Waiting:           p.m.waiting.Load(),
		Running:           p.m.running.Load(),
		AdmissionRejected: p.m.rejected.Load(),
		Completed:         p.m.completed.Load(),
		Failed:            p.m.failed.Load(),
		Cancelled:         p.m.cancelled.Load(),
		SequentialRuns:    p.m.seqRuns.Load(),
		SlicedRuns:        p.m.slicedRuns.Load(),
		FanoutRuns:        p.m.fanoutRuns.Load(),
		Rounds:            p.m.rounds.Load(),
		Messages:          p.m.messages.Load(),
		LatencyP50:        p50,
		LatencyP99:        p99,
	}
	s.Submitted = p.m.submitted.Load()
	return s
}
