package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// floodMax broadcasts the largest index seen for a fixed number of rounds.
type floodMax struct {
	v      local.View
	rounds int
	best   int
	out    []int
}

func (f *floodMax) Send(r int) []local.Message {
	msgs := make([]local.Message, f.v.Degree)
	for p := range msgs {
		msgs[p] = f.best
	}
	return msgs
}

func (f *floodMax) Receive(r int, inbox []local.Message) bool {
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if x := m.(int); x > f.best {
			f.best = x
		}
	}
	if r >= f.rounds {
		f.out[f.v.Index] = f.best
		return true
	}
	return false
}

func floodFactory(rounds int, out []int) local.Factory {
	return func(v local.View) local.Protocol {
		return &floodMax{v: v, rounds: rounds, best: v.Index, out: out}
	}
}

type neverHalt struct{ v local.View }

func (p *neverHalt) Send(r int) []local.Message {
	msgs := make([]local.Message, p.v.Degree)
	for i := range msgs {
		msgs[i] = r
	}
	return msgs
}
func (p *neverHalt) Receive(int, []local.Message) bool { return false }

// runOnPool executes one flood job through the pool and returns its output
// and stats.
func runOnPool(t *testing.T, p *Pool, tp *local.Topology, rounds int) ([]int, local.Stats) {
	t.Helper()
	out := make([]int, tp.N())
	var stats local.Stats
	err := p.Do(context.Background(), func(eng local.Engine) error {
		var err error
		stats, err = eng.Run(tp, floodFactory(rounds, out), nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

// TestPoolRoutesMatchSequential pins every routing path — sequential fast
// path, sliced single lane, fanned-out lanes — to bit-identical results.
func TestPoolRoutesMatchSequential(t *testing.T) {
	topologies := []*local.Topology{
		local.FromGraph(graph.Complete(12)),
		local.EdgeConflict(graph.Cycle(40)),
		local.EdgeConflict(graph.RandomRegular(48, 4, 3)),
	}
	configs := []Options{
		{Workers: 1},                           // everything sequential (small topologies)
		{Workers: 1, SmallJob: -1},             // force the sliced route
		{Workers: 3, SmallJob: -1},             // force the fanout route
		{Workers: 3, SmallJob: -1, Slice: 100}, // absurdly small slice still correct
	}
	for _, tp := range topologies {
		want := make([]int, tp.N())
		wantStats, err := local.RunSequential(tp, floodFactory(24, want), nil)
		if err != nil {
			t.Fatal(err)
		}
		for ci, o := range configs {
			p := New(o)
			got, gotStats := runOnPool(t, p, tp, 24)
			p.Close()
			if gotStats != wantStats {
				t.Fatalf("config %d: stats %+v, want %+v", ci, gotStats, wantStats)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("config %d entity %d: got %d, want %d", ci, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPoolRoutingCounters checks the route decision itself: small runs hit
// the sequential lane, large runs the sliced or fanned path.
func TestPoolRoutingCounters(t *testing.T) {
	tp := local.EdgeConflict(graph.Cycle(50))

	p := New(Options{Workers: 1, SmallJob: 10})
	runOnPool(t, p, tp, 4)
	if s := p.Stats(); s.SlicedRuns != 1 || s.SequentialRuns != 0 {
		t.Fatalf("1 worker, large run: %+v", s)
	}
	p.Close()

	p = New(Options{Workers: 2, SmallJob: 10})
	runOnPool(t, p, tp, 4)
	if s := p.Stats(); s.FanoutRuns != 1 || s.SequentialRuns != 0 {
		t.Fatalf("2 workers, large run: %+v", s)
	}
	p.Close()

	p = New(Options{Workers: 2, SmallJob: 1 << 20})
	runOnPool(t, p, tp, 4)
	if s := p.Stats(); s.SequentialRuns != 1 || s.FanoutRuns != 0 || s.SlicedRuns != 0 {
		t.Fatalf("small run: %+v", s)
	}
	p.Close()
}

// TestPoolConcurrentJobs pushes 48 simultaneous flood jobs of mixed sizes
// through one pool and checks every result (the -race companion to the
// public stress test at the repository root).
func TestPoolConcurrentJobs(t *testing.T) {
	p := New(Options{Workers: 3, QueueDepth: 16, SmallJob: 60})
	defer p.Close()
	graphs := []*graph.Graph{
		graph.Cycle(20), graph.Complete(9), graph.RandomRegular(36, 4, 1),
		graph.Cycle(120), graph.RandomRegular(80, 6, 2),
	}
	const jobs = 48
	var wg sync.WaitGroup
	errs := make([]error, jobs)
	outs := make([][]int, jobs)
	tps := make([]*local.Topology, jobs)
	for j := 0; j < jobs; j++ {
		tps[j] = local.EdgeConflict(graphs[j%len(graphs)])
		outs[j] = make([]int, tps[j].N())
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			errs[j] = p.Do(context.Background(), func(eng local.Engine) error {
				_, err := eng.Run(tps[j], floodFactory(16, outs[j]), nil)
				return err
			})
		}(j)
	}
	wg.Wait()
	for j := 0; j < jobs; j++ {
		if errs[j] != nil {
			t.Fatalf("job %d: %v", j, errs[j])
		}
		want := make([]int, tps[j].N())
		if _, err := local.RunSequential(tps[j], floodFactory(16, want), nil); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if outs[j][i] != want[i] {
				t.Fatalf("job %d entity %d: got %d, want %d", j, i, outs[j][i], want[i])
			}
		}
	}
	s := p.Stats()
	if s.Completed != jobs || s.Submitted != jobs {
		t.Fatalf("stats: %+v", s)
	}
	if s.LatencyP50 <= 0 || s.LatencyP99 < s.LatencyP50 {
		t.Fatalf("latency quantiles: p50=%v p99=%v", s.LatencyP50, s.LatencyP99)
	}
	if s.Rounds <= 0 || s.Messages <= 0 {
		t.Fatalf("cost totals: %+v", s)
	}
}

// TestPoolCancellation covers all three abort points: mid-run cancel on
// every route, deadline expiry, and cancellation while queued.
func TestPoolCancellation(t *testing.T) {
	never := func(v local.View) local.Protocol { return &neverHalt{v: v} }
	for _, o := range []Options{
		{Workers: 1, SmallJob: 1 << 20}, // sequential route
		{Workers: 1, SmallJob: -1},      // sliced route
		{Workers: 2, SmallJob: -1},      // fanout route
	} {
		p := New(o)
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		err := p.Do(ctx, func(eng local.Engine) error {
			_, err := eng.Run(local.EdgeConflict(graph.Cycle(64)), never, nil)
			return err
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%+v: err = %v, want context.Canceled", o, err)
		}
		if s := p.Stats(); s.Cancelled != 1 {
			t.Fatalf("%+v: stats %+v, want 1 cancelled", o, s)
		}
		p.Close()
	}

	p := New(Options{Workers: 1})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := p.Do(ctx, func(eng local.Engine) error {
		_, err := eng.Run(local.EdgeConflict(graph.Cycle(64)), never, nil)
		return err
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: err = %v", err)
	}
}

// TestPoolAdmissionBackpressure checks that QueueDepth bounds in-flight
// jobs and that a queued job honors its context.
func TestPoolAdmissionBackpressure(t *testing.T) {
	p := New(Options{Workers: 1, QueueDepth: 1})
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Do(context.Background(), func(local.Engine) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Do(ctx, func(local.Engine) error { return nil }); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued job: err = %v, want deadline exceeded while waiting", err)
	}
	close(release)
	wg.Wait()
	s := p.Stats()
	if s.Completed != 1 || s.Cancelled != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestPoolQueuedJobHonorsDeadline checks that a job whose task is stuck
// behind a long-running lane task returns at its deadline instead of
// waiting for the lane to free up.
func TestPoolQueuedJobHonorsDeadline(t *testing.T) {
	p := New(Options{Workers: 1, QueueDepth: 4})
	defer p.Close()
	never := func(v local.View) local.Protocol { return &neverHalt{v: v} }

	hogCtx, stopHog := context.WithCancel(context.Background())
	hogDone := make(chan error, 1)
	go func() {
		hogDone <- p.Do(hogCtx, func(eng local.Engine) error {
			_, err := eng.Run(local.EdgeConflict(graph.Cycle(32)), never, nil)
			return err
		})
	}()
	time.Sleep(20 * time.Millisecond) // the hog now owns the single lane

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := p.Do(ctx, func(eng local.Engine) error {
		_, err := eng.Run(local.FromGraph(graph.Cycle(8)), never, nil)
		return err
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued job: err = %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("queued job overstayed its 30ms deadline by %v", waited)
	}
	stopHog()
	if err := <-hogDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("hog: err = %v", err)
	}
}

func TestPoolClose(t *testing.T) {
	p := New(Options{Workers: 2})
	if err := p.Do(context.Background(), func(eng local.Engine) error {
		if eng.Name() != "serve" {
			return fmt.Errorf("engine name %q", eng.Name())
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if err := p.Do(context.Background(), func(local.Engine) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Do after Close: %v", err)
	}
}

// panicky violates an invariant mid-protocol: the pool must convert that
// into a job error, not crash the shared process.
type panicky struct{ v local.View }

func (p *panicky) Send(r int) []local.Message        { panic("protocol invariant violated") }
func (p *panicky) Receive(int, []local.Message) bool { return true }

// TestPoolPanicIsolation checks that a panicking protocol fails only its
// own job on every route, and that a panicking job fn cannot leak
// admission slots or deadlock Close.
func TestPoolPanicIsolation(t *testing.T) {
	for _, o := range []Options{
		{Workers: 1, SmallJob: 1 << 20}, // sequential lane
		{Workers: 1, SmallJob: -1},      // sliced
		{Workers: 2, SmallJob: -1},      // fanout
	} {
		p := New(o)
		err := p.Do(context.Background(), func(eng local.Engine) error {
			_, err := eng.Run(local.FromGraph(graph.Cycle(16)), func(v local.View) local.Protocol { return &panicky{v: v} }, nil)
			return err
		})
		if err == nil {
			t.Fatalf("%+v: protocol panic did not surface as an error", o)
		}
		// The pool must still serve after one tenant's panic.
		runOnPool(t, p, local.FromGraph(graph.Complete(6)), 4)
		if s := p.Stats(); s.Failed != 1 || s.Completed != 1 {
			t.Fatalf("%+v: stats %+v", o, s)
		}
		p.Close()
	}

	// A panic in fn itself unwinds through Do; the accounting must survive
	// so the slot is released and Close does not deadlock.
	p := New(Options{Workers: 1, QueueDepth: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Do swallowed the fn panic")
			}
		}()
		p.Do(context.Background(), func(local.Engine) error { panic("job body panic") })
	}()
	if err := p.Do(context.Background(), func(local.Engine) error { return nil }); err != nil {
		t.Fatalf("pool unusable after fn panic: %v", err)
	}
	if s := p.Stats(); s.Failed != 1 || s.Completed != 1 || s.Running != 0 {
		t.Fatalf("stats after fn panic: %+v", s)
	}
	p.Close() // must not deadlock
}

// TestPoolJobError checks that a protocol error surfaces to the caller and
// counts as failed.
func TestPoolJobError(t *testing.T) {
	p := New(Options{Workers: 1})
	defer p.Close()
	err := p.Do(context.Background(), func(eng local.Engine) error {
		_, err := eng.Run(local.FromGraph(graph.Cycle(8)), func(v local.View) local.Protocol { return &neverHalt{v: v} }, &local.Options{MaxRounds: 5})
		return err
	})
	if !errors.Is(err, local.ErrRoundLimit) {
		t.Fatalf("err = %v, want round limit", err)
	}
	if s := p.Stats(); s.Failed != 1 {
		t.Fatalf("stats: %+v", s)
	}
}
