package serve

import (
	"context"
	"fmt"

	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/sharded"
)

// jobEngine is the local.Engine handed to a job's fn: it routes every
// protocol execution of the job onto the pool's shared lanes and plumbs the
// job context into the engines through the Interrupt seam. One algorithm
// invocation makes many Run calls (sub-instances of the recursion), so the
// routing decision is per execution, not per job: a large job's small
// sub-instances still take the sequential fast path.
type jobEngine struct {
	p *Pool
	// ctx is the job's context, carried so the fixed local.Engine interface
	// (Name/Interrupt/Run take no ctx — six engines share it) can observe
	// the job's deadline. The adapter lives exactly one job execution, so
	// the stored ctx cannot outlive its call.
	//distec:nolint ctxflow
	ctx context.Context
}

// Name implements local.Engine.
func (e *jobEngine) Name() string { return "serve" }

// Interrupt exposes the job context's liveness to non-protocol solvers
// (distec's sequential vizing algorithm): they never execute a Run this
// engine could thread its per-round Interrupt hook into, so they poll this
// directly and a job's cancellation or deadline still aborts them.
func (e *jobEngine) Interrupt() error { return e.ctx.Err() }

// Run implements local.Engine.
func (e *jobEngine) Run(t *local.Topology, f local.Factory, opts *local.Options) (local.Stats, error) {
	p := e.p
	if err := e.ctx.Err(); err != nil {
		return local.Stats{}, err
	}
	opts = withInterrupt(e.ctx, opts)
	var (
		stats local.Stats
		err   error
	)
	switch {
	case t.N() <= p.smallJob:
		p.m.seqRuns.Add(1)
		stats, err = p.runOnLane(e.ctx, t, f, opts)
	case p.workers == 1:
		p.m.slicedRuns.Add(1)
		stats, err = p.runSliced(e.ctx, t, f, opts)
	default:
		p.m.fanoutRuns.Add(1)
		stats, err = p.runFanout(e.ctx, t, f, opts)
	}
	p.m.rounds.Add(int64(stats.Rounds))
	p.m.messages.Add(stats.Messages)
	return stats, err
}

// withInterrupt returns a copy of opts whose Interrupt hook also polls ctx,
// so engines abort promptly when the job is cancelled or its deadline
// passes.
func withInterrupt(ctx context.Context, opts *local.Options) *local.Options {
	var o local.Options
	if opts != nil {
		o = *opts
	}
	prev := o.Interrupt
	o.Interrupt = func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if prev != nil {
			return prev()
		}
		return nil
	}
	return &o
}

// runOnLane is the small-execution fast path: the whole run is one task on
// one lane, on the sequential engine — for small topologies the fastest
// engine there is, and exactly the reference semantics.
func (p *Pool) runOnLane(ctx context.Context, t *local.Topology, f local.Factory, opts *local.Options) (local.Stats, error) {
	var (
		stats local.Stats
		err   error
	)
	if lerr := p.onLane(ctx, func() {
		stats, err = local.RunSequential(t, f, opts)
	}); lerr != nil {
		return local.Stats{}, lerr
	}
	return stats, err
}

// runSliced drives a large execution through one lane in bounded time
// slices, so with a single worker a huge graph still cannot hold the lane
// hostage between slices. The slices run the step form of the sequential
// engine — full sequential speed, none of the sharded structure's
// per-message overhead, which a single lane could never amortize.
func (p *Pool) runSliced(ctx context.Context, t *local.Topology, f local.Factory, opts *local.Options) (local.Stats, error) {
	var x *local.SeqExec
	if err := p.onLane(ctx, func() { x = local.NewSeqExec(t, f, opts) }); err != nil {
		return local.Stats{}, err
	}
	for !x.Done() {
		if err := p.onLane(ctx, func() { x.Rounds(p.slice) }); err != nil {
			// The abandoned slice may still be running (or queued): x must
			// not be touched again. Partial stats on the error path are
			// engine-specific anyway.
			return local.Stats{}, err
		}
	}
	return x.Stats()
}

// runFanout drives a large execution by fanning each round's per-shard
// phase work across the lanes: pure coordination on a driver goroutine, the
// shard work on the lanes, interleaved FIFO with every other job's tasks.
//
// The job waits on the driver OR its ctx: if the deadline expires while the
// driver's phase tasks are still queued behind busy lanes, the job returns
// promptly and the driver is abandoned — it halts by itself at its next
// round through the Interrupt hook, draining whatever tasks it already
// enqueued. Abandoned drivers are tracked (p.drivers) so Close never closes
// the task channel under a late Execute.
func (p *Pool) runFanout(ctx context.Context, t *local.Topology, f local.Factory, opts *local.Options) (local.Stats, error) {
	type result struct {
		stats local.Stats
		err   error
	}
	done := make(chan result, 1)
	p.drivers.Add(1)
	go func() {
		defer p.drivers.Done()
		defer func() {
			if r := recover(); r != nil {
				done <- result{err: fmt.Errorf("%w: %v", local.ErrPanic, r)}
			}
		}()
		x := sharded.Prepare(t, f, opts, p.workers, p)
		for !x.Round(p) {
		}
		stats, err := x.Stats()
		done <- result{stats, err}
	}()
	select {
	case r := <-done:
		return r.stats, r.err
	case <-ctx.Done():
		return local.Stats{}, ctx.Err()
	}
}

// onLane runs fn as one task on a lane and waits for it — or for ctx, so a
// job whose deadline expires while its task is still queued behind other
// work returns promptly instead of overstaying by the queue's depth. An
// abandoned task still runs when its turn comes (its caller is gone, so
// nobody reads what it writes — callers must not touch closure state after
// a ctx error); it aborts within about one round through the Interrupt
// seam threaded into its opts.
//
// A panic in fn is converted into the job's error instead of unwinding the
// lane goroutine: one tenant's invariant violation must not crash the
// process every other tenant shares.
func (p *Pool) onLane(ctx context.Context, fn func()) error {
	done := make(chan struct{})
	var panicked error
	select {
	case p.tasks <- func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				panicked = fmt.Errorf("%w: %v", local.ErrPanic, r)
			}
		}()
		fn()
	}:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-done:
		return panicked
	case <-ctx.Done():
		return ctx.Err()
	}
}
