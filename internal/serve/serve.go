// Package serve is the multi-tenant serving layer: one long-lived pool of
// worker lanes (one per core by default) multiplexing many concurrent
// coloring jobs, where each one-shot distec call would otherwise spin up —
// and tear down — an engine of its own.
//
// A job enters through Do with its own context (cancellation + deadline)
// and runs its protocol executions through a job-bound local.Engine that
// routes every execution onto the shared lanes:
//
//   - Small topologies take the fast path: the whole execution runs as one
//     task on one lane via local.RunSequential, the fastest engine for
//     small instances — no barriers, no cross-goroutine handoff.
//   - Large topologies run step-driven: with several lanes the per-shard
//     phase work of each round fans out across them (sharded.Exec); with
//     one lane the rounds run in bounded time slices of the sequential
//     step form (local.SeqExec), at full sequential speed. Either way a
//     huge graph occupies the lanes only round by round (or slice by
//     slice), so it cannot starve the queue — FIFO task order interleaves
//     every in-flight job at round granularity.
//
// Admission is bounded (Options.QueueDepth): at most that many jobs are in
// flight, further submissions block — backpressure — until a slot frees or
// their context is done. The pool keeps running metrics (job counts, queue
// depth, p50/p99 latency, LOCAL rounds and messages served); see Stats.
//
// Results are bit-identical to local.RunSequential for every protocol in
// the repository: both routes reuse engines with exactly that guarantee.
package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/metrics"
)

// Defaults for Options fields left zero.
const (
	// DefaultSmallJob is the entity-count threshold at or below which an
	// execution takes the sequential fast path.
	DefaultSmallJob = 4096
	// DefaultSlice bounds how long a single-lane slice of a large execution
	// may hold its lane.
	DefaultSlice = 2 * time.Millisecond
)

// ErrClosed is returned by Do after Close.
var ErrClosed = errors.New("serve: pool is closed")

// Options configures a Pool. The zero value selects one worker lane per
// core, a queue depth of four jobs per lane, and the default small-job
// threshold and time slice.
type Options struct {
	// Workers is the number of worker lanes (default: runtime.GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of jobs in flight at once (admitted, not
	// merely submitted); further Do calls block until a slot frees or their
	// context is done. Default: 4×Workers.
	QueueDepth int
	// SmallJob is the entity-count threshold at or below which a protocol
	// execution runs whole on one lane via the sequential engine instead of
	// being sharded. Negative disables the fast path. Default:
	// DefaultSmallJob.
	SmallJob int
	// Slice bounds how long one task of a single-lane (non-fanned) large
	// execution holds its lane before other jobs get a turn. Default:
	// DefaultSlice.
	Slice time.Duration
	// Metrics, when set, exposes the pool's counters and gauges on the
	// registry (distec_serve_* families) and records per-job latency
	// histograms by outcome. The counters exist either way; the registry
	// only adds scrape-time views plus the histogram observations.
	Metrics *metrics.Registry
}

// Pool is the shared-lane batch scheduler. Create with New, submit jobs
// with Do, shut down with Close. All methods are safe for concurrent use.
type Pool struct {
	workers    int
	queueDepth int
	smallJob   int
	slice      time.Duration

	tasks chan func()   // the worker lanes' shared task queue
	sem   chan struct{} // admission slots (QueueDepth)

	mu      sync.Mutex
	closed  bool
	jobs    sync.WaitGroup // in-flight jobs (admitted, not yet returned)
	drivers sync.WaitGroup // fanout driver goroutines (may outlive their job)
	lanes   sync.WaitGroup // worker lane goroutines

	m poolMetrics
}

// New starts a pool: Workers lane goroutines ready to execute job tasks.
func New(o Options) *Pool {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	q := o.QueueDepth
	if q <= 0 {
		q = 4 * w
	}
	small := o.SmallJob
	if small == 0 {
		small = DefaultSmallJob
	}
	slice := o.Slice
	if slice <= 0 {
		slice = DefaultSlice
	}
	p := &Pool{
		workers:    w,
		queueDepth: q,
		smallJob:   small,
		slice:      slice,
		tasks:      make(chan func(), 4*w+16),
		sem:        make(chan struct{}, q),
	}
	if o.Metrics != nil {
		p.m.register(o.Metrics, w, q)
	}
	p.lanes.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer p.lanes.Done()
			for task := range p.tasks {
				task()
			}
		}()
	}
	return p
}

// Workers returns the number of worker lanes.
func (p *Pool) Workers() int { return p.workers }

// Closed reports whether Close has begun. Layers above the pool (e.g. a
// result cache) use it to honor the after-Close contract on paths that
// would not otherwise reach Do.
func (p *Pool) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Do runs one job on the pool: fn receives a local.Engine bound to ctx that
// executes every protocol run on the shared lanes (see the package comment
// for routing). Do blocks until the job finishes or ctx is done — first
// while waiting for an admission slot, then because the engine aborts
// in-flight executions via the Interrupt seam. The engine must not be used
// after fn returns, and fn must not call Do itself (a job scheduling jobs
// could deadlock admission).
func (p *Pool) Do(ctx context.Context, fn func(local.Engine) error) error {
	p.m.submitted.Add(1)
	p.m.waiting.Add(1)
	select {
	case p.sem <- struct{}{}:
		p.m.waiting.Add(-1)
	case <-ctx.Done():
		p.m.waiting.Add(-1)
		p.m.rejected.Add(1)
		p.m.cancelled.Add(1)
		return ctx.Err()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.sem
		p.m.rejected.Add(1)
		p.m.failed.Add(1)
		return ErrClosed
	}
	p.jobs.Add(1)
	p.mu.Unlock()
	p.m.running.Add(1)
	start := time.Now()
	var (
		err      error
		finished bool
	)
	// The accounting runs in a defer so it survives a panic in fn (an HTTP
	// server recovers handler panics on the far side of this frame): a
	// leaked admission slot would shrink the pool forever, and a leaked
	// jobs.Add would deadlock Close. The panic itself keeps unwinding.
	defer func() {
		elapsed := time.Since(start)
		p.m.recordLatency(elapsed)
		p.m.running.Add(-1)
		switch {
		case !finished:
			p.m.failed.Add(1) // fn panicked
			if p.m.hist != nil {
				p.m.hist.failed.Observe(elapsed.Seconds())
			}
		case err == nil:
			p.m.completed.Add(1)
			if p.m.hist != nil {
				p.m.hist.completed.Observe(elapsed.Seconds())
			}
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			p.m.cancelled.Add(1)
			if p.m.hist != nil {
				p.m.hist.cancelled.Observe(elapsed.Seconds())
			}
		default:
			p.m.failed.Add(1)
			if p.m.hist != nil {
				p.m.hist.failed.Observe(elapsed.Seconds())
			}
		}
		p.jobs.Done()
		<-p.sem
	}()
	err = fn(&jobEngine{p: p, ctx: ctx})
	finished = true
	return err
}

// Close stops admission, waits for in-flight jobs to drain, and stops the
// worker lanes. Jobs submitted after (or during) Close fail with ErrClosed;
// Close never abandons a running job. Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.lanes.Wait() // lose the race to the first Close, but return drained
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.jobs.Wait()
	// Fanout drivers abandoned by a cancelled job may still be fanning
	// their final round onto the lanes; they halt on their own (Interrupt)
	// and must finish before the task channel closes.
	p.drivers.Wait()
	close(p.tasks)
	p.lanes.Wait()
}

// Execute implements sharded.Executor: phase tasks of fanned-out large
// executions share the same lanes (and FIFO order) as whole small jobs.
func (p *Pool) Execute(task func()) { p.tasks <- task }
