package graph

import "testing"

func TestBipartiteDense(t *testing.T) {
	g := RandomBipartiteRegular(256, 24, 13)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 24 {
			t.Fatalf("node %d degree %d", v, g.Degree(v))
		}
	}
}
