package graph

import (
	"bytes"
	"strings"
	"testing"
)

// TestReadMalformed pins the strict-parser contract of Read: every malformed
// input yields an error (never a panic, never a silently wrong graph), and
// the error names what went wrong. The negative-n, negative-m, and
// trailing-token cases are regression tests for real bugs: Read used to
// panic on "-1 0" (graph.New panics on negative n), return an empty graph
// for a negative m while ignoring the edge lines that followed, and parse
// "0 1 999" as the edge {0,1}.
func TestReadMalformed(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "missing header"},
		{"comments only", "# nothing\n\n# else\n", "missing header"},
		{"header one field", "5\n", "want 2 fields"},
		{"header non-numeric", "five 3\n", "bad header"},
		{"header trailing token", "3 1 junk\n0 1\n", "want 2 fields"},
		{"negative n", "-1 0\n", "negative node count"},
		{"negative n with edges", "-5 2\n0 1\n1 2\n", "negative node count"},
		{"negative m", "3 -2\n0 1\n1 2\n", "negative edge count"},
		{"huge n", "300000000 0\n", "exceeds limit"},
		{"huge m", "4 300000000\n0 1\n", "exceeds limit"},
		{"truncated edge list", "4 3\n0 1\n1 2\n", "edge 2"},
		{"edge one field", "3 1\n0\n", "want 2 fields"},
		{"edge non-numeric", "3 1\n0 x\n", "bad line"},
		{"edge trailing token", "3 2\n0 1 999\n1 2\n", "want 2 fields"},
		{"edge out of range", "3 1\n0 7\n", "out of range"},
		{"edge negative endpoint", "3 1\n-1 2\n", "out of range"},
		{"self loop", "3 1\n1 1\n", "self-loop"},
		{"duplicate edge", "3 2\n0 1\n1 0\n", "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := Read(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Read(%q) = %v, want error containing %q", tc.in, g, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Read(%q) error = %q, want it to contain %q", tc.in, err, tc.want)
			}
		})
	}
}

// TestReadStrictStillAcceptsValid guards against the strict parser rejecting
// well-formed input: comments, blank lines, and arbitrary inter-token spacing
// remain legal.
func TestReadStrictStillAcceptsValid(t *testing.T) {
	in := "# comment\n  3   2  \n\n0 1\n# interior\n\t1\t2\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got (n=%d,m=%d), want (3,2)", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// FuzzRead asserts Read never panics and that every accepted graph is
// internally consistent and round-trips through WriteTo.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"3 2\n0 1\n1 2\n",
		"-1 0\n",
		"3 -2\n0 1\n",
		"0 0\n",
		"3 1 junk\n0 1\n",
		"3 2\n0 1 999\n1 2\n",
		"300000000 1\n0 1\n",
		"4 300000000\n0 1\n",
		"# comment\n2 1\n0 1\n",
		"5\n",
		"a b\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails Validate: %v", err)
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip Read: %v", err)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round trip mismatch: (%d,%d) != (%d,%d)", h.N(), h.M(), g.N(), g.M())
		}
	})
}
