package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	id, err := g.AddEdge(2, 0)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if id != 0 {
		t.Fatalf("first edge id = %d, want 0", id)
	}
	u, v := g.Endpoints(id)
	if u != 0 || v != 2 {
		t.Fatalf("Endpoints = (%d,%d), want normalized (0,2)", u, v)
	}
	if got := g.OtherEnd(id, 0); got != 2 {
		t.Fatalf("OtherEnd(0) = %d, want 2", got)
	}
	if got := g.OtherEnd(id, 2); got != 0 {
		t.Fatalf("OtherEnd(2) = %d, want 0", got)
	}
	if _, ok := g.HasEdge(0, 2); !ok {
		t.Fatal("HasEdge(0,2) = false, want true")
	}
	if _, ok := g.HasEdge(2, 0); !ok {
		t.Fatal("HasEdge(2,0) = false, want true")
	}
	if _, ok := g.HasEdge(1, 3); ok {
		t.Fatal("HasEdge(1,3) = true, want false")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	cases := []struct {
		name string
		u, v int
	}{
		{"self-loop", 1, 1},
		{"u out of range", -1, 0},
		{"v out of range", 0, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := g.AddEdge(tc.u, tc.v); err == nil {
				t.Fatalf("AddEdge(%d,%d) succeeded, want error", tc.u, tc.v)
			}
		})
	}
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if _, err := g.AddEdge(1, 0); err == nil {
		t.Fatal("duplicate AddEdge(1,0) succeeded, want error")
	}
}

func TestDegreesAndEdgeDegrees(t *testing.T) {
	// Star K_{1,4}: center degree 4, leaves 1; each edge degree = 4+1-2 = 3.
	g := Star(5)
	if got := g.Degree(0); got != 4 {
		t.Fatalf("center degree = %d, want 4", got)
	}
	if got := g.MaxDegree(); got != 4 {
		t.Fatalf("MaxDegree = %d, want 4", got)
	}
	for e := 0; e < g.M(); e++ {
		if got := g.EdgeDegree(EdgeID(e)); got != 3 {
			t.Fatalf("EdgeDegree(%d) = %d, want 3", e, got)
		}
	}
	if got := g.MaxEdgeDegree(); got != 3 {
		t.Fatalf("MaxEdgeDegree = %d, want 3", got)
	}
}

func TestEdgeNeighbors(t *testing.T) {
	// Path 0-1-2-3: middle edge {1,2} conflicts with both outer edges.
	g := Path(4)
	var mid EdgeID = -1
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(EdgeID(e))
		if u == 1 && v == 2 {
			mid = EdgeID(e)
		}
	}
	if mid < 0 {
		t.Fatal("middle edge not found")
	}
	nbrs := g.EdgeNeighbors(mid)
	if len(nbrs) != 2 {
		t.Fatalf("middle edge has %d conflicts, want 2", len(nbrs))
	}
	seen := map[EdgeID]int{}
	g.ForEachEdgeNeighbor(mid, func(f EdgeID) { seen[f]++ })
	for f, c := range seen {
		if c != 1 {
			t.Fatalf("edge %d visited %d times, want exactly once", f, c)
		}
	}
}

func TestGeneratorsShape(t *testing.T) {
	cases := []struct {
		name       string
		g          *Graph
		n, m       int
		maxDeg     int
		wantEdgeDg int // -1 to skip
	}{
		{"cycle", Cycle(10), 10, 10, 2, 2},
		{"path", Path(6), 6, 5, 2, -1},
		{"star", Star(7), 7, 6, 6, 5},
		{"complete", Complete(5), 5, 10, 4, 6},
		{"bipartite", CompleteBipartite(3, 4), 7, 12, 4, 5},
		{"grid", Grid(3, 4), 12, 17, 4, -1},
		{"torus", Torus(3, 3), 9, 18, 4, 6},
		{"hypercube", Hypercube(4), 16, 32, 4, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if tc.g.N() != tc.n {
				t.Errorf("N = %d, want %d", tc.g.N(), tc.n)
			}
			if tc.g.M() != tc.m {
				t.Errorf("M = %d, want %d", tc.g.M(), tc.m)
			}
			if tc.g.MaxDegree() != tc.maxDeg {
				t.Errorf("MaxDegree = %d, want %d", tc.g.MaxDegree(), tc.maxDeg)
			}
			if tc.wantEdgeDg >= 0 && tc.g.MaxEdgeDegree() != tc.wantEdgeDg {
				t.Errorf("MaxEdgeDegree = %d, want %d", tc.g.MaxEdgeDegree(), tc.wantEdgeDg)
			}
		})
	}
}

func TestRandomRegular(t *testing.T) {
	for _, d := range []int{2, 3, 4, 8} {
		g := RandomRegular(64, d, 42)
		if err := g.Validate(); err != nil {
			t.Fatalf("d=%d Validate: %v", d, err)
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != d {
				t.Fatalf("d=%d: node %d has degree %d", d, v, g.Degree(v))
			}
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a := RandomRegular(50, 4, 7)
	b := RandomRegular(50, 4, 7)
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts %d vs %d", a.M(), b.M())
	}
	for i := range a.Edges() {
		if a.Edges()[i] != b.Edges()[i] {
			t.Fatalf("same seed, edge %d differs", i)
		}
	}
	c := RandomRegular(50, 4, 8)
	same := a.M() == c.M()
	if same {
		for i := range a.Edges() {
			if a.Edges()[i] != c.Edges()[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRandomBipartiteRegular(t *testing.T) {
	g := RandomBipartiteRegular(16, 5, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 5 {
			t.Fatalf("node %d degree %d, want 5", v, g.Degree(v))
		}
	}
	// Bipartiteness: every edge crosses the parts.
	for _, e := range g.Edges() {
		if (int(e.U) < 16) == (int(e.V) < 16) {
			t.Fatalf("edge {%d,%d} does not cross parts", e.U, e.V)
		}
	}
}

func TestGNPAndFamilies(t *testing.T) {
	g := GNP(100, 0.05, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("GNP Validate: %v", err)
	}
	if g.M() == 0 {
		t.Fatal("GNP produced empty graph at p=0.05, n=100")
	}
	pl := PowerLaw(120, 2.5, 30, 2)
	if err := pl.Validate(); err != nil {
		t.Fatalf("PowerLaw Validate: %v", err)
	}
	geo := RandomGeometric(80, 0.2, 3)
	if err := geo.Validate(); err != nil {
		t.Fatalf("RandomGeometric Validate: %v", err)
	}
	tr := RandomTree(64, 4)
	if err := tr.Validate(); err != nil {
		t.Fatalf("RandomTree Validate: %v", err)
	}
	if tr.M() != 63 {
		t.Fatalf("tree edges = %d, want 63", tr.M())
	}
	cat := Caterpillar(10, 5)
	if err := cat.Validate(); err != nil {
		t.Fatalf("Caterpillar Validate: %v", err)
	}
	if cat.MaxDegree() != 7 {
		t.Fatalf("caterpillar MaxDegree = %d, want 7 (2 spine + 5 legs)", cat.MaxDegree())
	}
	cc := CliqueChain(4, 5)
	if err := cc.Validate(); err != nil {
		t.Fatalf("CliqueChain Validate: %v", err)
	}
	if cc.N() != 17 {
		t.Fatalf("CliqueChain nodes = %d, want 17", cc.N())
	}
}

func TestRoundTripIO(t *testing.T) {
	g := RandomRegular(40, 3, 11)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	h, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip n/m mismatch: got (%d,%d), want (%d,%d)", h.N(), h.M(), g.N(), g.M())
	}
	for i := range g.Edges() {
		if g.Edges()[i] != h.Edges()[i] {
			t.Fatalf("edge %d mismatch after round trip", i)
		}
	}
}

func TestReadComments(t *testing.T) {
	in := "# header comment\n3 2\n\n0 1\n# interior\n1 2\n"
	g, err := Read(bytes.NewBufferString(in))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got (n=%d,m=%d), want (3,2)", g.N(), g.M())
	}
}

func TestClone(t *testing.T) {
	g := Cycle(6)
	c := g.Clone()
	c.MustAddEdge(0, 3)
	if g.M() == c.M() {
		t.Fatal("mutating clone affected original")
	}
	if _, ok := g.HasEdge(0, 3); ok {
		t.Fatal("original gained edge added to clone")
	}
}

// Property: in any generated graph, edge degree equals the number of
// distinct conflicting edges enumerated by ForEachEdgeNeighbor.
func TestEdgeDegreeMatchesEnumeration(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNP(40, 0.1, seed)
		for e := 0; e < g.M(); e++ {
			count := 0
			g.ForEachEdgeNeighbor(EdgeID(e), func(EdgeID) { count++ })
			if count != g.EdgeDegree(EdgeID(e)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of node degrees is 2m and Δ̄ ≤ 2Δ−2 (paper §2.1).
func TestHandshakeAndLineDegreeBound(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNP(60, 0.08, seed)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.M() {
			return false
		}
		if g.M() > 0 && g.MaxEdgeDegree() > 2*g.MaxDegree()-2 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := Star(5)
	h := g.DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Fatalf("histogram = %v, want {4:1, 1:4}", h)
	}
}

func TestSortedNeighbors(t *testing.T) {
	g := New(5)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	got := g.SortedNeighbors(2)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("SortedNeighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedNeighbors = %v, want %v", got, want)
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(200, 3, 5)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every arriving node contributes exactly k edges; seed clique adds
	// k(k+1)/2.
	want := 3*4/2 + (200-4)*3
	if g.M() != want {
		t.Fatalf("edges = %d, want %d", g.M(), want)
	}
	// Heavy tail: the max degree should exceed the attachment parameter by
	// a fat margin on 200 nodes.
	if g.MaxDegree() < 10 {
		t.Fatalf("max degree %d suspiciously small for preferential attachment", g.MaxDegree())
	}
	// Determinism.
	h := BarabasiAlbert(200, 3, 5)
	for i := range g.Edges() {
		if g.Edges()[i] != h.Edges()[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}

func TestBarabasiAlbertValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BarabasiAlbert(3,3) did not panic")
		}
	}()
	BarabasiAlbert(3, 3, 1)
}
