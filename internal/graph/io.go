package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteTo emits g in the plain edge-list interchange format:
//
//	n m
//	u v        (one line per edge, in EdgeID order)
//
// Lines beginning with '#' are comments on input and are never emitted.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "%d %d\n", g.n, len(g.edges))
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, e := range g.edges {
		n, err = fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Read parses the edge-list format emitted by WriteTo.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: missing header: %w", err)
	}
	var n, m int
	if _, err := fmt.Sscanf(line, "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", line, err)
	}
	g := New(n)
	for i := 0; i < m; i++ {
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		var u, v int
		if _, err := fmt.Sscanf(line, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %q: %w", line, err)
		}
		if _, err := g.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// String renders a short human-readable summary, e.g. "graph(n=16 m=24 Δ=3 Δ̄=4)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d m=%d Δ=%d Δ̄=%d)", g.n, len(g.edges), g.MaxDegree(), g.MaxEdgeDegree())
}
