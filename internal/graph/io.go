package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Read input bounds: parsers of untrusted input must not let a 40-byte
// header drive an O(n) allocation of arbitrary size. A graph within these
// bounds is far larger than anything the experiments or the daemon handle.
const (
	// MaxReadNodes bounds the node count a Read header may declare (the
	// node count alone drives an O(n) allocation in New).
	MaxReadNodes = 1 << 24
	// MaxReadEdges bounds the edge count a Read header may declare.
	MaxReadEdges = 1 << 28
)

// WriteTo emits g in the plain edge-list interchange format:
//
//	n m
//	u v        (one line per edge, in EdgeID order)
//
// Lines beginning with '#' are comments on input and are never emitted.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "%d %d\n", g.n, len(g.edges))
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, e := range g.edges {
		n, err = fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, bw.Flush()
}

// Read parses the edge-list format emitted by WriteTo. It is a strict
// parser of untrusted input: it never panics, rejects negative or oversized
// counts (see MaxReadNodes, MaxReadEdges), and rejects trailing tokens on
// header and edge lines — every malformed input yields an error naming the
// offending line.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: missing header: %w", err)
	}
	n, m, err := parsePair(line)
	if err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", line, err)
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: bad header %q: negative node count %d", line, n)
	}
	if m < 0 {
		return nil, fmt.Errorf("graph: bad header %q: negative edge count %d", line, m)
	}
	if n > MaxReadNodes {
		return nil, fmt.Errorf("graph: bad header %q: node count %d exceeds limit %d", line, n, MaxReadNodes)
	}
	if m > MaxReadEdges {
		return nil, fmt.Errorf("graph: bad header %q: edge count %d exceeds limit %d", line, m, MaxReadEdges)
	}
	g := New(n)
	for i := 0; i < m; i++ {
		line, err := nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
		u, v, err := parsePair(line)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: bad line %q: %w", i, line, err)
		}
		if _, err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
	}
	return g, nil
}

// parsePair parses a line of exactly two decimal integers, rejecting
// missing fields and trailing tokens ("0 1 999" is an error, not {0,1}).
func parsePair(line string) (int, int, error) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return 0, 0, fmt.Errorf("want 2 fields, got %d", len(fields))
	}
	a, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(fields[1])
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func nextLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// String renders a short human-readable summary, e.g. "graph(n=16 m=24 Δ=3 Δ̄=4)".
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d m=%d Δ=%d Δ̄=%d)", g.n, len(g.edges), g.MaxDegree(), g.MaxEdgeDegree())
}
