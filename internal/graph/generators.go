package graph

import (
	"fmt"
	"math"
)

// rng is a small deterministic PRNG (splitmix64) so that every generator is
// reproducible across Go releases; math/rand's stream is not guaranteed
// stable, and the experiment tables must be.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed + 0x9e3779b97f4a7c15} }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n).
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("rng: intn with non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// perm returns a random permutation of {0..n-1}.
func (r *rng) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Cycle returns the n-node cycle C_n (n ≥ 3).
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle needs n >= 3")
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	return g
}

// Path returns the n-node path P_n.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			g.MustAddEdge(u, a+v)
		}
	}
	return g
}

// Grid returns the r×c grid graph.
func Grid(r, c int) *Graph {
	g := New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.MustAddEdge(id(i, j), id(i, j+1))
			}
			if i+1 < r {
				g.MustAddEdge(id(i, j), id(i+1, j))
			}
		}
	}
	return g
}

// Torus returns the r×c torus (wrap-around grid); r, c ≥ 3 to stay simple.
func Torus(r, c int) *Graph {
	if r < 3 || c < 3 {
		panic("graph: Torus needs r, c >= 3")
	}
	g := New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			g.MustAddEdge(id(i, j), id(i, (j+1)%c))
			g.MustAddEdge(id(i, j), id((i+1)%r, j))
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes.
func Hypercube(d int) *Graph {
	n := 1 << d
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if v < u {
				g.MustAddEdge(v, u)
			}
		}
	}
	return g
}

// GNP returns an Erdős–Rényi G(n, p) sample (deterministic for a given seed).
func GNP(n int, p float64, seed uint64) *Graph {
	r := newRNG(seed)
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// RandomRegular returns an exactly d-regular simple graph on n nodes via the
// configuration model with edge-swap repair: half-edges are paired at random
// and self-loops/multi-edges are eliminated by swapping partner endpoints
// with random other pairs, which preserves the degree sequence exactly.
// n·d must be even and d < n. Deterministic for a given seed.
func RandomRegular(n, d int, seed uint64) *Graph {
	if n*d%2 != 0 {
		panic(fmt.Sprintf("graph: RandomRegular(%d,%d): n*d must be even", n, d))
	}
	if d >= n {
		panic(fmt.Sprintf("graph: RandomRegular(%d,%d): need d < n", n, d))
	}
	r := newRNG(seed)
	for attempt := 0; attempt < 100; attempt++ {
		if g, ok := tryRegularPairing(n, d, r); ok {
			return g
		}
	}
	panic(fmt.Sprintf("graph: RandomRegular(%d,%d): repair failed repeatedly (density too extreme?)", n, d))
}

// tryRegularPairing builds one configuration-model pairing and repairs it by
// random swaps. Returns ok=false if the repair budget is exhausted.
func tryRegularPairing(n, d int, r *rng) (*Graph, bool) {
	stubs := make([]int32, 0, n*d)
	for v := 0; v < n; v++ {
		for k := 0; k < d; k++ {
			stubs = append(stubs, int32(v))
		}
	}
	for i := len(stubs) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		stubs[i], stubs[j] = stubs[j], stubs[i]
	}
	np := len(stubs) / 2
	a := make([]int32, np)
	b := make([]int32, np)
	count := make(map[uint64]int, np)
	for i := 0; i < np; i++ {
		a[i], b[i] = stubs[2*i], stubs[2*i+1]
		if a[i] != b[i] {
			count[pack(a[i], b[i])]++
		}
	}
	isBad := func(i int) bool {
		return a[i] == b[i] || count[pack(a[i], b[i])] > 1
	}
	unlink := func(i int) {
		if a[i] != b[i] {
			count[pack(a[i], b[i])]--
		}
	}
	link := func(i int) {
		if a[i] != b[i] {
			count[pack(a[i], b[i])]++
		}
	}
	var bad []int
	for i := 0; i < np; i++ {
		if isBad(i) {
			bad = append(bad, i)
		}
	}
	budget := 200 * (np + 10)
	for len(bad) > 0 && budget > 0 {
		budget--
		i := bad[len(bad)-1]
		if !isBad(i) {
			bad = bad[:len(bad)-1]
			continue
		}
		j := r.intn(np)
		if j == i {
			continue
		}
		// Swap the second endpoints of pairs i and j.
		unlink(i)
		unlink(j)
		b[i], b[j] = b[j], b[i]
		link(i)
		link(j)
		if isBad(j) {
			bad = append(bad, j)
		}
	}
	if len(bad) > 0 {
		stillBad := false
		for i := 0; i < np; i++ {
			if isBad(i) {
				stillBad = true
				break
			}
		}
		if stillBad {
			return nil, false
		}
	}
	g := New(n)
	for i := 0; i < np; i++ {
		g.MustAddEdge(int(a[i]), int(b[i]))
	}
	return g, true
}

// RandomBipartiteRegular returns a bipartite d-regular graph on 2n nodes
// (parts {0..n-1}, {n..2n-1}) as a union of d random disjoint perfect
// matchings. Collisions with earlier matchings are repaired by target swaps
// (which preserve the matching property), so construction stays fast at any
// density. Deterministic for a given seed. Requires d ≤ n.
func RandomBipartiteRegular(n, d int, seed uint64) *Graph {
	if d > n {
		panic(fmt.Sprintf("graph: RandomBipartiteRegular(%d,%d): need d <= n", n, d))
	}
	r := newRNG(seed)
	g := New(2 * n)
	for k := 0; k < d; k++ {
		p := r.perm(n)
		conflict := func(i int) bool {
			_, dup := g.HasEdge(i, n+p[i])
			return dup
		}
		budget := 200 * (n + 10)
		progress := true
		for progress {
			progress = false
			for i := 0; i < n && budget > 0; i++ {
				for conflict(i) && budget > 0 {
					budget--
					j := r.intn(n)
					if j == i {
						continue
					}
					p[i], p[j] = p[j], p[i]
					progress = true
				}
			}
			clean := true
			for i := 0; i < n; i++ {
				if conflict(i) {
					clean = false
					break
				}
			}
			if clean {
				break
			}
			if budget <= 0 {
				panic(fmt.Sprintf("graph: RandomBipartiteRegular(%d,%d): matching repair failed", n, d))
			}
		}
		for i := 0; i < n; i++ {
			g.MustAddEdge(i, n+p[i])
		}
	}
	return g
}

// PowerLaw returns a Chung–Lu style graph whose expected degree sequence
// follows w_i ∝ (i+1)^(−1/(γ−1)), scaled so the maximum expected degree is
// maxDeg. Deterministic for a given seed.
func PowerLaw(n int, gamma float64, maxDeg int, seed uint64) *Graph {
	if gamma <= 1 {
		panic("graph: PowerLaw needs gamma > 1")
	}
	r := newRNG(seed)
	w := make([]float64, n)
	alpha := 1.0 / (gamma - 1)
	for i := 0; i < n; i++ {
		w[i] = float64(maxDeg) * math.Pow(float64(i+1), -alpha)
	}
	total := 0.0
	for _, x := range w {
		total += x
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := w[u] * w[v] / total
			if p > 1 {
				p = 1
			}
			if r.float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// RandomGeometric returns a random geometric graph: n points uniform in the
// unit square, edges between pairs at distance ≤ radius. This is the standard
// abstraction of a wireless network and feeds the TDMA example.
// Deterministic for a given seed.
func RandomGeometric(n int, radius float64, seed uint64) *Graph {
	r := newRNG(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.float64()
		ys[i] = r.float64()
	}
	g := New(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// RandomTree returns a uniform random recursive tree on n nodes: node i
// attaches to a uniformly random earlier node. Deterministic for a given seed.
func RandomTree(n int, seed uint64) *Graph {
	r := newRNG(seed)
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(r.intn(i), i)
	}
	return g
}

// Caterpillar returns a caterpillar: a spine path of length spine with legs
// pendant nodes attached to every spine node. A classic high-degree/low-width
// stress case for edge coloring.
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	g := New(n)
	for i := 0; i+1 < spine; i++ {
		g.MustAddEdge(i, i+1)
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			g.MustAddEdge(i, next)
			next++
		}
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: nodes arrive one
// at a time and attach to k distinct existing nodes chosen proportionally
// to degree. The standard heavy-tailed "scale-free" workload.
// Deterministic for a given seed; requires 1 ≤ k < n.
func BarabasiAlbert(n, k int, seed uint64) *Graph {
	if k < 1 || k >= n {
		panic(fmt.Sprintf("graph: BarabasiAlbert(%d,%d): need 1 ≤ k < n", n, k))
	}
	r := newRNG(seed)
	g := New(n)
	// Seed clique of k+1 nodes.
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			g.MustAddEdge(u, v)
		}
	}
	// Degree-proportional sampling via the repeated-endpoints trick.
	endpoints := make([]int32, 0, 2*n*k)
	for _, e := range g.Edges() {
		endpoints = append(endpoints, e.U, e.V)
	}
	for v := k + 1; v < n; v++ {
		chosen := make(map[int]bool, k)
		ordered := make([]int, 0, k) // insertion order keeps edge IDs deterministic
		for len(chosen) < k {
			t := int(endpoints[r.intn(len(endpoints))])
			if t != v && !chosen[t] {
				chosen[t] = true
				ordered = append(ordered, t)
			}
		}
		for _, t := range ordered {
			g.MustAddEdge(v, t)
			endpoints = append(endpoints, int32(v), int32(t))
		}
	}
	return g
}

// CliqueChain returns a chain of k cliques of size s, consecutive cliques
// sharing one node: a workload with both high degree and long diameter.
func CliqueChain(k, s int) *Graph {
	if s < 2 || k < 1 {
		panic("graph: CliqueChain needs s >= 2, k >= 1")
	}
	n := k*(s-1) + 1
	g := New(n)
	for c := 0; c < k; c++ {
		base := c * (s - 1)
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				g.MustAddEdge(base+i, base+j)
			}
		}
	}
	return g
}
