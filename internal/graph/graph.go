// Package graph provides the undirected-graph substrate used throughout the
// repository: a compact incidence structure over a fixed node set, dense edge
// identifiers, edge-degree queries (the degree of an edge in the line graph),
// deterministic generators for every workload family used by the experiments,
// and a plain-text interchange format.
//
// The package deliberately never materializes the line graph: an edge's
// conflict neighborhood (all edges sharing an endpoint) is enumerated on the
// fly from the two incidence lists, which keeps memory linear in |V|+|E| even
// for dense graphs.
package graph

import (
	"fmt"
	"sort"
)

// EdgeID densely identifies an edge of a Graph in insertion order.
type EdgeID int32

// Edge is an undirected edge between nodes U and V with U < V.
type Edge struct {
	U, V int32
}

// Graph is an undirected simple graph over nodes {0, …, n−1}.
//
// The zero value is not usable; construct with New. Graphs are append-only:
// edges can be added but never removed (sub-instances are represented by edge
// subsets elsewhere, never by mutation).
type Graph struct {
	n     int
	edges []Edge
	inc   [][]EdgeID        // inc[v] = IDs of edges incident to v, insertion order
	index map[uint64]EdgeID // packed (u,v) -> id, for duplicate detection and lookup
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{
		n:     n,
		inc:   make([][]EdgeID, n),
		index: make(map[uint64]EdgeID),
	}
}

func pack(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// AddEdge inserts the undirected edge {u, v} and returns its EdgeID.
// It reports an error for self-loops, out-of-range endpoints, and duplicates.
func (g *Graph) AddEdge(u, v int) (EdgeID, error) {
	if u == v {
		return -1, fmt.Errorf("graph: self-loop at node %d", u)
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1, fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if u > v {
		u, v = v, u
	}
	key := pack(int32(u), int32(v))
	if _, dup := g.index[key]; dup {
		return -1, fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	id := EdgeID(len(g.edges))
	g.edges = append(g.edges, Edge{U: int32(u), V: int32(v)})
	g.inc[u] = append(g.inc[u], id)
	g.inc[v] = append(g.inc[v], id)
	g.index[key] = id
	return id, nil
}

// MustAddEdge is AddEdge for construction code with statically valid inputs;
// it panics on error. Generators use it after de-duplication.
func (g *Graph) MustAddEdge(u, v int) EdgeID {
	id, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Endpoints returns the two endpoints of edge e, with U < V.
func (g *Graph) Endpoints(e EdgeID) (u, v int) {
	ed := g.edges[e]
	return int(ed.U), int(ed.V)
}

// OtherEnd returns the endpoint of e that is not v.
func (g *Graph) OtherEnd(e EdgeID, v int) int {
	ed := g.edges[e]
	if int(ed.U) == v {
		return int(ed.V)
	}
	if int(ed.V) == v {
		return int(ed.U)
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d={%d,%d}", v, e, ed.U, ed.V))
}

// HasEdge reports whether {u,v} is an edge, returning its ID if so.
func (g *Graph) HasEdge(u, v int) (EdgeID, bool) {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return -1, false
	}
	id, ok := g.index[pack(int32(u), int32(v))]
	return id, ok
}

// Degree returns deg(v), the number of edges incident to node v.
func (g *Graph) Degree(v int) int { return len(g.inc[v]) }

// Incident returns the edge IDs incident to node v. The returned slice is the
// graph's internal storage and must not be modified.
func (g *Graph) Incident(v int) []EdgeID { return g.inc[v] }

// MaxDegree returns Δ, the maximum node degree (0 for edgeless graphs).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.inc[v]) > d {
			d = len(g.inc[v])
		}
	}
	return d
}

// EdgeDegree returns deg(e) = deg(u)+deg(v)−2, the degree of e in the line
// graph of g (the number of edges that conflict with e).
func (g *Graph) EdgeDegree(e EdgeID) int {
	ed := g.edges[e]
	return len(g.inc[ed.U]) + len(g.inc[ed.V]) - 2
}

// MaxEdgeDegree returns Δ̄, the maximum degree of the line graph
// (0 for graphs with fewer than two adjacent edges).
func (g *Graph) MaxEdgeDegree() int {
	d := 0
	for e := range g.edges {
		if de := g.EdgeDegree(EdgeID(e)); de > d {
			d = de
		}
	}
	return d
}

// ForEachEdgeNeighbor calls fn for every edge f ≠ e sharing an endpoint with
// e. Each conflicting edge is visited exactly once: edges incident to both
// endpoints of e cannot exist in a simple graph other than e itself.
func (g *Graph) ForEachEdgeNeighbor(e EdgeID, fn func(f EdgeID)) {
	ed := g.edges[e]
	for _, f := range g.inc[ed.U] {
		if f != e {
			fn(f)
		}
	}
	for _, f := range g.inc[ed.V] {
		if f != e {
			fn(f)
		}
	}
}

// EdgeNeighbors returns a fresh slice of all edges conflicting with e.
func (g *Graph) EdgeNeighbors(e EdgeID) []EdgeID {
	out := make([]EdgeID, 0, g.EdgeDegree(e))
	g.ForEachEdgeNeighbor(e, func(f EdgeID) { out = append(out, f) })
	return out
}

// Edges returns all edges by value, indexed by EdgeID. The returned slice is
// the graph's internal storage and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// DegreeHistogram returns a map degree -> node count, useful for workload
// characterization in the experiment tables.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := 0; v < g.n; v++ {
		h[len(g.inc[v])]++
	}
	return h
}

// Validate performs an internal consistency check (incidence lists match the
// edge array, no duplicates). It is O(n + m log m) and intended for tests.
func (g *Graph) Validate() error {
	seen := make(map[uint64]bool, len(g.edges))
	for i, ed := range g.edges {
		if ed.U == ed.V {
			return fmt.Errorf("graph: edge %d is a self-loop", i)
		}
		if ed.U > ed.V {
			return fmt.Errorf("graph: edge %d endpoints not normalized", i)
		}
		k := pack(ed.U, ed.V)
		if seen[k] {
			return fmt.Errorf("graph: duplicate edge %d={%d,%d}", i, ed.U, ed.V)
		}
		seen[k] = true
	}
	count := 0
	for v := 0; v < g.n; v++ {
		for _, id := range g.inc[v] {
			if int(id) >= len(g.edges) {
				return fmt.Errorf("graph: node %d lists unknown edge %d", v, id)
			}
			ed := g.edges[id]
			if int(ed.U) != v && int(ed.V) != v {
				return fmt.Errorf("graph: node %d lists non-incident edge %d", v, id)
			}
			count++
		}
	}
	if count != 2*len(g.edges) {
		return fmt.Errorf("graph: incidence count %d != 2m=%d", count, 2*len(g.edges))
	}
	return nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = append([]Edge(nil), g.edges...)
	for v := range g.inc {
		c.inc[v] = append([]EdgeID(nil), g.inc[v]...)
	}
	for k, v := range g.index {
		c.index[k] = v
	}
	return c
}

// SortedNeighbors returns the neighbor node IDs of v in ascending order
// (fresh slice).
func (g *Graph) SortedNeighbors(v int) []int {
	out := make([]int, 0, len(g.inc[v]))
	for _, e := range g.inc[v] {
		out = append(out, g.OtherEnd(e, v))
	}
	sort.Ints(out)
	return out
}
