package defective

import (
	"testing"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// The final color is the triple (lo, hi, pathColor) packed via triangular
// indexing; distinct triples must map to distinct colors within the palette.
func TestTriangularEncodingBijective(t *testing.T) {
	for _, beta := range []int{1, 2, 3} {
		b4 := 4 * beta
		seen := make(map[int][3]int)
		for lo := 0; lo < b4; lo++ {
			for hi := lo; hi < b4; hi++ {
				for c3 := 0; c3 < 3; c3++ {
					pair := lo*b4 - lo*(lo-1)/2 + (hi - lo)
					color := pair*3 + c3
					if color < 0 || color >= Palette(beta) {
						t.Fatalf("β=%d: triple (%d,%d,%d) -> color %d outside palette %d",
							beta, lo, hi, c3, color, Palette(beta))
					}
					if prev, dup := seen[color]; dup {
						t.Fatalf("β=%d: color %d encodes both %v and (%d,%d,%d)",
							beta, color, prev, lo, hi, c3)
					}
					seen[color] = [3]int{lo, hi, c3}
				}
			}
		}
		if len(seen) != Palette(beta) {
			t.Fatalf("β=%d: %d encodings for palette %d", beta, len(seen), Palette(beta))
		}
	}
}

// Defective coloring on a pure pair system (virtual-graph shape) with
// multi-links: the machinery the paper's recursion depends on.
func TestColorOnPairSystem(t *testing.T) {
	// A "barbell" of keys with a parallel link.
	pairs := [][2]int64{
		{100, 200}, {100, 200}, {200, 300}, {300, 400}, {400, 100},
		{100, 300}, {200, 400}, {300, 100},
	}
	// pairs[7] duplicates {100,300} of pairs[5] with swapped order.
	pairs[7] = [2]int64{300, 100}
	res, err := Color(pairs, nil, 1, nil, 0, local.Sequential)
	if err != nil {
		t.Fatalf("Color: %v", err)
	}
	for i := range pairs {
		if res.Colors[i] < 0 || res.Colors[i] >= res.Palette {
			t.Fatalf("item %d color %d outside palette", i, res.Colors[i])
		}
	}
}

// initColors seeding: handing a proper small coloring down must not break
// correctness and must keep rounds small.
func TestColorWithInitialColoring(t *testing.T) {
	g := graph.RandomRegular(48, 6, 2)
	pairs := GraphPairs(g)
	// A proper coloring of the conflict system: edge IDs (X = m).
	init := make([]int, g.M())
	for i := range init {
		init[i] = i
	}
	res, err := Color(pairs, nil, 2, init, g.M(), local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	checkDefectBound(t, g, nil, res.Colors, 2)
	if res.Stats.Rounds > 40 {
		t.Fatalf("rounds %d too high with seeded coloring", res.Stats.Rounds)
	}
}

func TestColorRejectsBadInitLength(t *testing.T) {
	g := graph.Cycle(6)
	if _, err := Color(GraphPairs(g), nil, 1, []int{1, 2}, 10, nil); err == nil {
		t.Fatal("accepted wrong-length initColors")
	}
}
