package defective

import (
	"testing"

	"github.com/distec/distec/internal/graph"
)

// TestColorDeterministic pins the rank computation restructure: activity
// ranks are now computed by a single ordered pass with per-key counters
// instead of building per-key item lists in a map, so repeated runs on
// the same instance must agree color-for-color.
func TestColorDeterministic(t *testing.T) {
	g := graph.RandomRegular(48, 12, 11)
	pairs := GraphPairs(g)
	active := make([]bool, g.M())
	for e := range active {
		active[e] = e%5 != 0
	}
	first, err := Color(pairs, active, 2, nil, 0, nil)
	if err != nil {
		t.Fatalf("first Color: %v", err)
	}
	for trial := 0; trial < 10; trial++ {
		again, err := Color(pairs, active, 2, nil, 0, nil)
		if err != nil {
			t.Fatalf("repeat Color: %v", err)
		}
		for e := range first.Colors {
			if again.Colors[e] != first.Colors[e] {
				t.Fatalf("trial %d: edge %d colored %d, first run had %d",
					trial, e, again.Colors[e], first.Colors[e])
			}
		}
	}
}

// TestColorRanksMatchListOrder cross-checks the counter-based ranks
// against the definition they replaced: an item's rank at a side key is
// its position among the active items incident to that key, in item
// order. The palette-respecting consequence is that two active items
// sharing a side never share both a group and a number there.
func TestColorRanksMatchListOrder(t *testing.T) {
	g := graph.RandomRegular(30, 8, 3)
	pairs := GraphPairs(g)
	res, err := Color(pairs, nil, 1, nil, 0, nil)
	if err != nil {
		t.Fatalf("Color: %v", err)
	}
	// Recompute ranks from explicit per-key lists and check the derived
	// invariant on the result: same side + same group + same number is
	// impossible, so same-colored incident edges differ in group, which
	// is what the defect bound counts.
	byKey := map[int64][]int{}
	for e, pr := range pairs {
		byKey[pr[0]] = append(byKey[pr[0]], e)
		byKey[pr[1]] = append(byKey[pr[1]], e)
	}
	b4 := 4
	for _, items := range byKey {
		type slot struct{ group, num int }
		seen := map[slot]int{}
		for rank, e := range items {
			s := slot{group: rank / b4, num: rank % b4}
			if prev, dup := seen[s]; dup {
				t.Fatalf("items %d and %d share group %d and number %d at one side",
					prev, e, s.group, s.num)
			}
			seen[s] = e
		}
	}
	if res.Palette != Palette(1) {
		t.Fatalf("palette = %d, want %d", res.Palette, Palette(1))
	}
}
