// Package defective implements the paper's defective edge coloring (§4.1):
// for any β ≥ 1, a deg(e)/(2β)-defective edge coloring with O(β²) colors in
// O(log* X) rounds.
//
// Construction, exactly as in the paper:
//
//  1. Every node v partitions its incident (active) edges into ⌈deg(v)/4β⌉
//     groups of at most 4β edges, numbering the edges of each group with
//     distinct values in {0, …, 4β−1}.
//  2. Each edge learns the two numbers assigned by its endpoints and adopts
//     the ordered pair (i, j), i ≤ j, as its temporary color.
//  3. Within one group, at most two edges share a temporary color, so edges
//     sharing both a group and a temporary color form disjoint paths and
//     cycles; these are 3-colored in O(log* X) rounds (package linial).
//  4. The final color is the triple (i, j, pathColor) — at most
//     3·4β(4β+1)/2 = O(β²) colors.
//
// Defect: at an endpoint u, two same-colored edges must lie in different
// groups of u (same group ⇒ conflict-path neighbors ⇒ different third
// component), so each endpoint contributes at most ⌈deg(u)/4β⌉−1 defects:
// defect(e) ≤ ⌈deg(u)/4β⌉+⌈deg(v)/4β⌉−2 ≤ deg(e)/2β.
//
// The implementation operates on pair systems (items occupying two side
// keys, conflicting when they share a key) so that the paper's recursion can
// apply it to ordinary graphs, to subgraphs of uncolored edges, and to the
// virtual graphs of §4.2 alike. ColorGraph adapts a graph.Graph.
package defective

import (
	"fmt"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/linial"
	"github.com/distec/distec/internal/local"
)

// Result carries a defective edge coloring of the active items.
type Result struct {
	// Colors maps item index to the defective color in [0, Palette);
	// −1 for inactive items.
	Colors []int
	// Palette is the number of possible colors: 3·4β(4β+1)/2.
	Palette int
	// Stats is the LOCAL cost: two rounds of constant-size exchange
	// (activity ranks and temporary colors) plus the O(log* X) 3-coloring.
	Stats local.Stats
}

// Palette returns the palette size used by Color for a given β.
func Palette(beta int) int {
	b4 := 4 * beta
	return 3 * b4 * (b4 + 1) / 2
}

// DefectBound returns the paper's defect guarantee for an item whose sides
// hold du and dv active items: ⌈du/4β⌉+⌈dv/4β⌉−2.
func DefectBound(du, dv, beta int) int {
	b4 := 4 * beta
	return ceilDiv(du, b4) + ceilDiv(dv, b4) - 2
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Color computes the defective edge coloring of the active items of the pair
// system. active may be nil, meaning all items. Degrees, groups and the
// defect guarantee all refer to the subsystem induced by the active items.
//
// initColors optionally provides a proper coloring of the conflict system
// with initX colors, seeding the internal 3-coloring so its log* term is
// paid on initX rather than on len(pairs); the paper's recursion hands down
// the global O(Δ̄²)-coloring here. Pass nil to fall back to item indices
// (X = len(pairs)).
func Color(pairs [][2]int64, active []bool, beta int, initColors []int, initX int, run local.Engine) (*Result, error) {
	if beta < 1 {
		return nil, fmt.Errorf("defective: beta %d < 1", beta)
	}
	if run == nil {
		run = local.Sequential
	}
	m := len(pairs)
	if active != nil {
		// Compact to the active items so topology construction never pays
		// for inactive ones; results are scattered back at the end.
		orig := make([]int, 0, m)
		for e := 0; e < m; e++ {
			if active[e] {
				orig = append(orig, e)
			}
		}
		if len(orig) < m {
			cPairs := make([][2]int64, len(orig))
			var cInit []int
			if initColors != nil {
				cInit = make([]int, len(orig))
			}
			for i, oe := range orig {
				cPairs[i] = pairs[oe]
				if cInit != nil {
					cInit[i] = initColors[oe]
				}
			}
			sub, err := Color(cPairs, nil, beta, cInit, initX, run)
			if err != nil {
				return nil, err
			}
			colors := make([]int, m)
			for e := range colors {
				colors[e] = -1
			}
			for i, oe := range orig {
				colors[oe] = sub.Colors[i]
			}
			return &Result{Colors: colors, Palette: sub.Palette, Stats: sub.Stats}, nil
		}
	}
	if active == nil {
		active = make([]bool, m)
		for e := range active {
			active[e] = true
		}
	}
	b4 := 4 * beta

	// Step 1 (one exchange round in the node model): every side key ranks
	// its active items; each active item learns its rank at both sides.
	// This is purely side-local information.
	// An item's rank at a side key is the number of earlier active items
	// incident to that key, so one ordered pass over pairs with per-key
	// counters computes it directly — no intermediate per-key lists, and
	// no map iteration for ordering to leak through.
	rankAt := make([][2]int, m) // rank among active items at side A / side B
	sideCount := make(map[int64]int)
	for e, pr := range pairs {
		if active[e] {
			rankAt[e][0] = sideCount[pr[0]]
			sideCount[pr[0]]++
			rankAt[e][1] = sideCount[pr[1]]
			sideCount[pr[1]]++
		}
	}

	// Step 2 (local): numbers, groups and temporary colors.
	type tmp struct {
		lo, hi int // temporary color pair, lo ≤ hi
		gA, gB int // group index at side A and side B
	}
	tmps := make([]tmp, m)
	for e := 0; e < m; e++ {
		if !active[e] {
			continue
		}
		nA, nB := rankAt[e][0]%b4, rankAt[e][1]%b4
		lo, hi := nA, nB
		if lo > hi {
			lo, hi = hi, lo
		}
		tmps[e] = tmp{lo: lo, hi: hi, gA: rankAt[e][0] / b4, gB: rankAt[e][1] / b4}
	}

	// Step 3: 3-color the conflict paths/cycles. Two active items conflict
	// here iff they share a temporary color and a group at their shared
	// side. Each item can evaluate this after one round in which all items
	// announce (tmp color, group at each side) — charged below.
	full := local.PairConflict(pairs)
	keepLink := func(i, p int) bool {
		me := full.Meta[i].(*local.EdgeMeta)
		j := int(full.Ports[i][p])
		if tmps[i].lo != tmps[j].lo || tmps[i].hi != tmps[j].hi {
			return false
		}
		s := me.SharedKey(p)
		myGroup := tmps[i].gB
		if s == me.A {
			myGroup = tmps[i].gA
		}
		theirGroup := tmps[j].gB
		if s == pairs[j][0] {
			theirGroup = tmps[j].gA
		}
		return myGroup == theirGroup
	}
	sub, orig, _ := local.Induced(full, active, keepLink)
	if sub.MaxDeg > 2 {
		// The paper's §4.1 argument guarantees ≤ 2; anything else is a bug.
		return nil, fmt.Errorf("defective: conflict structure has degree %d > 2", sub.MaxDeg)
	}
	init := make([]int, sub.N())
	x := initX
	if initColors == nil {
		x = m
		for i, oe := range orig {
			init[i] = oe
		}
	} else {
		if len(initColors) != m {
			return nil, fmt.Errorf("defective: initColors has %d entries for %d items", len(initColors), m)
		}
		for i, oe := range orig {
			init[i] = initColors[oe]
		}
	}
	three, stats, err := linial.ThreeColorPaths(sub, init, x, run)
	if err != nil {
		return nil, fmt.Errorf("defective: 3-coloring conflict paths: %w", err)
	}

	// Step 4 (local): assemble the triple (lo, hi, pathColor) into a color.
	colors := make([]int, m)
	for e := range colors {
		colors[e] = -1
	}
	for i, oe := range orig {
		t := tmps[oe]
		// Triangular index of the pair (lo, hi) with 0 ≤ lo ≤ hi < 4β.
		pair := t.lo*b4 - t.lo*(t.lo-1)/2 + (t.hi - t.lo)
		colors[oe] = pair*3 + three[i]
	}
	// Cost: one round for activity ranks, one round announcing temporary
	// colors/groups, plus the distributed 3-coloring.
	stats.Rounds += 2
	return &Result{Colors: colors, Palette: Palette(beta), Stats: stats}, nil
}

// ColorGraph applies Color to the edges of a graph: side keys are the
// endpoint node IDs, so groups and degrees are exactly the paper's.
func ColorGraph(g *graph.Graph, active []bool, beta int, run local.Engine) (*Result, error) {
	return Color(GraphPairs(g), active, beta, nil, 0, run)
}

// GraphPairs returns the pair system of a graph's edges: item e occupies its
// two endpoint node IDs.
func GraphPairs(g *graph.Graph) [][2]int64 {
	pairs := make([][2]int64, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		pairs[e] = [2]int64{int64(u), int64(v)}
	}
	return pairs
}

// MaxDefect computes the maximum defect of the given coloring over the
// active edges: the largest number of same-colored conflicting active edges
// of any edge. Intended for verification and experiments.
func MaxDefect(g *graph.Graph, active []bool, colors []int) int {
	worst := 0
	for e := 0; e < g.M(); e++ {
		if active != nil && !active[e] {
			continue
		}
		if colors[e] < 0 {
			continue
		}
		d := 0
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if (active == nil || active[f]) && colors[f] == colors[e] {
				d++
			}
		})
		if d > worst {
			worst = d
		}
	}
	return worst
}
