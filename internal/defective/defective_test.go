package defective

import (
	"testing"
	"testing/quick"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// checkDefectBound asserts the paper's guarantee on every active edge: the
// number of same-colored conflicting edges is at most
// ⌈du/4β⌉+⌈dv/4β⌉−2 ≤ deg(e)/2β, where degrees are active degrees.
func checkDefectBound(t *testing.T, g *graph.Graph, active []bool, colors []int, beta int) {
	t.Helper()
	adeg := make([]int, g.N())
	for e := 0; e < g.M(); e++ {
		if active == nil || active[e] {
			u, v := g.Endpoints(graph.EdgeID(e))
			adeg[u]++
			adeg[v]++
		}
	}
	for e := 0; e < g.M(); e++ {
		if active != nil && !active[e] {
			if colors[e] != -1 {
				t.Fatalf("inactive edge %d colored %d", e, colors[e])
			}
			continue
		}
		u, v := g.Endpoints(graph.EdgeID(e))
		bound := DefectBound(adeg[u], adeg[v], beta)
		d := 0
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if (active == nil || active[f]) && colors[f] == colors[e] {
				d++
			}
		})
		if d > bound {
			t.Fatalf("edge %d defect %d exceeds bound %d (du=%d dv=%d β=%d)", e, d, bound, adeg[u], adeg[v], beta)
		}
		// The coarser paper form: defect ≤ deg(e)/2β.
		dege := adeg[u] + adeg[v] - 2
		if 2*beta*d > dege {
			t.Fatalf("edge %d defect %d exceeds deg(e)/2β = %d/%d", e, d, dege, 2*beta)
		}
	}
}

func TestColorFamiliesAndBetas(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"complete", graph.Complete(12)},
		{"star", graph.Star(30)},
		{"regular8", graph.RandomRegular(50, 8, 3)},
		{"bipartite", graph.CompleteBipartite(8, 9)},
		{"caterpillar", graph.Caterpillar(8, 6)},
		{"gnp", graph.GNP(60, 0.12, 4)},
	}
	for _, tg := range graphs {
		for _, beta := range []int{1, 2, 4} {
			res, err := ColorGraph(tg.g, nil, beta, local.Sequential)
			if err != nil {
				t.Fatalf("%s β=%d: %v", tg.name, beta, err)
			}
			checkDefectBound(t, tg.g, nil, res.Colors, beta)
			for e, c := range res.Colors {
				if c < 0 || c >= res.Palette {
					t.Fatalf("%s β=%d: edge %d color %d outside palette %d", tg.name, beta, e, c, res.Palette)
				}
			}
			if res.Palette != Palette(beta) {
				t.Fatalf("%s β=%d: palette %d != %d", tg.name, beta, res.Palette, Palette(beta))
			}
		}
	}
}

func TestLargeBetaGivesProperColoring(t *testing.T) {
	// With 4β ≥ max degree every node forms a single group, the defect bound
	// is 0, and the result must be a proper edge coloring.
	g := graph.RandomRegular(40, 6, 9)
	beta := 2 // 4β = 8 ≥ 6
	res, err := ColorGraph(g, nil, beta, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDefect(g, nil, res.Colors); d != 0 {
		t.Fatalf("defect %d, want proper (0)", d)
	}
}

func TestSubgraphActivity(t *testing.T) {
	g := graph.Complete(14)
	active := make([]bool, g.M())
	for e := range active {
		active[e] = e%3 != 0
	}
	res, err := ColorGraph(g, active, 1, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	checkDefectBound(t, g, active, res.Colors, 1)
}

func TestRoundsAreLogStar(t *testing.T) {
	// Rounds must not grow with Δ: defective coloring is O(log* n) only.
	prev := 0
	for _, d := range []int{4, 8, 16} {
		g := graph.RandomRegular(24*d, d, 5)
		res, err := ColorGraph(g, nil, 2, local.Sequential)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Rounds > 40 {
			t.Fatalf("Δ=%d: %d rounds, want O(log* n)", d, res.Stats.Rounds)
		}
		prev = res.Stats.Rounds
	}
	_ = prev
}

func TestBetaValidation(t *testing.T) {
	g := graph.Cycle(5)
	if _, err := ColorGraph(g, nil, 0, nil); err == nil {
		t.Fatal("accepted β=0")
	}
}

func TestPaletteFormula(t *testing.T) {
	cases := []struct{ beta, want int }{
		{1, 30},  // 3·4·5/2
		{2, 108}, // 3·8·9/2
		{3, 234}, // 3·12·13/2
	}
	for _, tc := range cases {
		if got := Palette(tc.beta); got != tc.want {
			t.Errorf("Palette(%d) = %d, want %d", tc.beta, got, tc.want)
		}
	}
}

func TestDefectBoundFormula(t *testing.T) {
	// du=dv=8, β=1: ⌈8/4⌉+⌈8/4⌉−2 = 2.
	if got := DefectBound(8, 8, 1); got != 2 {
		t.Fatalf("DefectBound(8,8,1) = %d, want 2", got)
	}
	// Degrees below 4β: single groups, bound 0.
	if got := DefectBound(3, 4, 1); got != 0 {
		t.Fatalf("DefectBound(3,4,1) = %d, want 0", got)
	}
}

func TestMaxDefect(t *testing.T) {
	g := graph.Star(4) // 3 mutually conflicting edges
	colors := []int{5, 5, 7}
	if got := MaxDefect(g, nil, colors); got != 1 {
		t.Fatalf("MaxDefect = %d, want 1", got)
	}
}

func TestEnginesAgree(t *testing.T) {
	g := graph.RandomRegular(30, 6, 8)
	a, err := ColorGraph(g, nil, 1, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColorGraph(g, nil, 1, local.Goroutines)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
	for e := range a.Colors {
		if a.Colors[e] != b.Colors[e] {
			t.Fatalf("edge %d: %d vs %d", e, a.Colors[e], b.Colors[e])
		}
	}
}

// Property: the defect bound holds on random graphs for random β.
func TestDefectProperty(t *testing.T) {
	f := func(seed uint64, betaRaw uint8) bool {
		beta := int(betaRaw%4) + 1
		g := graph.GNP(36, 0.18, seed)
		if g.M() == 0 {
			return true
		}
		res, err := ColorGraph(g, nil, beta, local.Sequential)
		if err != nil {
			return false
		}
		adeg := make([]int, g.N())
		for e := 0; e < g.M(); e++ {
			u, v := g.Endpoints(graph.EdgeID(e))
			adeg[u]++
			adeg[v]++
		}
		for e := 0; e < g.M(); e++ {
			u, v := g.Endpoints(graph.EdgeID(e))
			d := 0
			g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
				if res.Colors[f] == res.Colors[e] {
					d++
				}
			})
			if d > DefectBound(adeg[u], adeg[v], beta) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
