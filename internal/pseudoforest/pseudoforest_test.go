package pseudoforest

import (
	"testing"
	"testing/quick"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
)

func uniformLists(g *graph.Graph, c int) [][]int {
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = palette
	}
	return lists
}

func checkProperList(t *testing.T, g *graph.Graph, active []bool, lists [][]int, colors []int) {
	t.Helper()
	for e := 0; e < g.M(); e++ {
		if active != nil && !active[e] {
			if colors[e] != -1 {
				t.Fatalf("inactive edge %d colored", e)
			}
			continue
		}
		if colors[e] < 0 {
			t.Fatalf("edge %d uncolored", e)
		}
		inList := false
		for _, c := range lists[e] {
			if c == colors[e] {
				inList = true
			}
		}
		if !inList {
			t.Fatalf("edge %d color %d not in list", e, colors[e])
		}
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if (active == nil || active[f]) && colors[f] == colors[e] {
				t.Fatalf("edges %d and %d share color %d", e, f, colors[e])
			}
		})
	}
}

func TestSolveFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(50)},
		{"path", graph.Path(20)},
		{"complete", graph.Complete(9)},
		{"star", graph.Star(15)},
		{"regular6", graph.RandomRegular(40, 6, 3)},
		{"bipartite", graph.CompleteBipartite(6, 7)},
		{"gnp", graph.GNP(50, 0.12, 5)},
		{"tree", graph.RandomTree(60, 6)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := 2*tc.g.MaxDegree() - 1
			lists := uniformLists(tc.g, c)
			colors, stats, err := Solve(tc.g, nil, lists, local.Sequential)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			checkProperList(t, tc.g, nil, lists, colors)
			if stats.Rounds <= 0 {
				t.Fatal("no rounds")
			}
		})
	}
}

func TestSolveDegreeLists(t *testing.T) {
	g := graph.RandomRegular(36, 6, 8)
	in, err := listcolor.NewDegreeLists(g, 2*g.MaxEdgeDegree(), 4)
	if err != nil {
		t.Fatal(err)
	}
	colors, _, err := Solve(g, nil, in.Lists, local.Sequential)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	checkProperList(t, g, nil, in.Lists, colors)
}

func TestSolvePartial(t *testing.T) {
	g := graph.Complete(10)
	active := make([]bool, g.M())
	for e := range active {
		active[e] = e%4 != 0
	}
	lists := uniformLists(g, 2*g.MaxDegree()-1)
	colors, _, err := Solve(g, active, lists, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	checkProperList(t, g, active, lists, colors)
}

func TestRoundsLinearInDelta(t *testing.T) {
	// The defining property of the baseline: rounds grow linearly in Δ and
	// only like log* in n.
	r8 := mustRounds(t, graph.RandomRegular(64, 8, 1))
	r16 := mustRounds(t, graph.RandomRegular(64, 16, 1))
	r32 := mustRounds(t, graph.RandomRegular(64, 32, 1))
	if r16 <= r8 || r32 <= r16 {
		t.Fatalf("rounds not increasing in Δ: %d, %d, %d", r8, r16, r32)
	}
	// Roughly linear: r32−r16 should be around 2× of r16−r8 (CV part constant).
	g1 := r16 - r8
	g2 := r32 - r16
	if g2 < g1 || g2 > 4*g1 {
		t.Fatalf("growth not ~linear: increments %d then %d", g1, g2)
	}
	// n-dependence is log*: doubling n adds at most a couple of rounds.
	rBig := mustRounds(t, graph.RandomRegular(256, 8, 1))
	if rBig > r8+6 {
		t.Fatalf("rounds grew with n: %d (n=64) vs %d (n=256)", r8, rBig)
	}
}

func mustRounds(t *testing.T, g *graph.Graph) int {
	t.Helper()
	lists := uniformLists(g, 2*g.MaxDegree()-1)
	colors, stats, err := Solve(g, nil, lists, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	checkProperList(t, g, nil, lists, colors)
	return stats.Rounds
}

func TestEnginesAgree(t *testing.T) {
	g := graph.RandomRegular(30, 5, 2)
	lists := uniformLists(g, 2*g.MaxDegree()-1)
	a, sa, err := Solve(g, nil, lists, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Solve(g, nil, lists, local.Goroutines)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	for e := range a {
		if a[e] != b[e] {
			t.Fatalf("edge %d: %d vs %d", e, a[e], b[e])
		}
	}
}

func TestRejectsSlackViolation(t *testing.T) {
	g := graph.Star(4)
	lists := [][]int{{0}, {1}, {2}} // size 1 ≤ deg 2
	if _, _, err := Solve(g, nil, lists, nil); err == nil {
		t.Fatal("accepted slack violation")
	}
}

func TestCVSchedule(t *testing.T) {
	seq := cvSchedule(1 << 20)
	if len(seq) == 0 || len(seq) > 8 {
		t.Fatalf("schedule length %d, want small log*", len(seq))
	}
	if seq[len(seq)-1] != 6 {
		t.Fatalf("schedule ends at %d, want 6", seq[len(seq)-1])
	}
	prev := 1 << 20
	for _, k := range seq {
		if k >= prev {
			t.Fatalf("schedule not decreasing: %v", seq)
		}
		prev = k
	}
	if got := cvSchedule(5); len(got) != 0 {
		t.Fatalf("cvSchedule(5) = %v, want empty", got)
	}
}

func TestBits(t *testing.T) {
	cases := []struct{ in, want int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, tc := range cases {
		if got := bits(tc.in); got != tc.want {
			t.Errorf("bits(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// Property: random sparse graphs with (deg+1)-lists are always solved.
func TestSolveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(28, 0.18, seed)
		if g.M() < 2 {
			return true
		}
		in, err := listcolor.NewDegreeLists(g, g.MaxEdgeDegree()+6, seed^0x9e37)
		if err != nil {
			return false
		}
		colors, _, err := Solve(g, nil, in.Lists, local.Sequential)
		if err != nil {
			return false
		}
		for e := 0; e < g.M(); e++ {
			if colors[e] < 0 {
				return false
			}
			conflict := false
			g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
				if colors[f] == colors[e] {
					conflict = true
				}
			})
			if conflict {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
