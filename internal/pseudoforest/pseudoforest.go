// Package pseudoforest implements the O(Δ + log* n) deterministic
// (deg(e)+1)-list edge coloring baseline in the style of Panconesi and Rizzi
// [PR01], which the paper cites as the long-standing linear-in-Δ bound that
// Theorem 4.1 improves upon.
//
// Algorithm:
//
//  1. Orient every edge toward its higher-ID endpoint and let the k-th
//     out-edge of each node form pseudoforest F_k: each node has out-degree
//     at most one within F_k, so F_k is a union of in-trees and cycles.
//  2. 3-color the nodes of ALL pseudoforests simultaneously in O(log* n)
//     rounds with Cole–Vishkin bit reduction along out-edges, followed by
//     shift-down + class removal from 6 to 3 colors.
//  3. Process the pseudoforests sequentially; within F_k, process tail
//     colors c ∈ {0,1,2} in sub-rounds. A tail u with color c proposes its
//     out-edge {u,v} to the head v together with the colors already used
//     around u; v assigns every proposing in-edge the smallest list color
//     free at both endpoints, distinct among its simultaneous assignments.
//     Same-colored tails never collide except at a common head, and the
//     head serializes those — so every assignment is safe, and the number
//     of constraints on edge e is at most deg(e) < |Le|.
//
// Total: O(log* n) + 6Δ rounds, implemented as a genuine message-passing
// protocol on the node topology (one goroutine per *node* under
// local.Goroutines, unlike the edge-entity algorithms elsewhere).
package pseudoforest

import (
	"fmt"
	"sort"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// cvSchedule returns the Cole–Vishkin color-count sequence from x down to
// its ≤6 fixpoint: K → 2·⌈log₂ K⌉.
func cvSchedule(x int) []int {
	var seq []int
	k := x
	for k > 6 {
		b := bits(k)
		next := 2 * b
		if next >= k {
			break
		}
		seq = append(seq, next)
		k = next
	}
	return seq
}

// bits returns the number of bits needed to represent values in [0, k),
// i.e. ⌈log₂ k⌉ for k ≥ 2.
func bits(k int) int {
	b := 0
	for v := k - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// Solve colors the active edges of g from their lists. All lists must be
// strictly larger than the edge's active degree. active and lists are
// indexed by EdgeID; active may be nil for all edges. Returns a color per
// edge (−1 inactive) and the protocol stats.
func Solve(g *graph.Graph, active []bool, lists [][]int, run local.Engine) ([]int, local.Stats, error) {
	if run == nil {
		run = local.Sequential
	}
	m := g.M()
	if active == nil {
		active = make([]bool, m)
		for e := range active {
			active[e] = true
		}
	}
	if len(lists) != m {
		return nil, local.Stats{}, fmt.Errorf("pseudoforest: %d lists for %d edges", len(lists), m)
	}
	// Input validation: the slack-1 condition against active degrees.
	adeg := make([]int, g.N())
	for e := 0; e < m; e++ {
		if active[e] {
			u, v := g.Endpoints(graph.EdgeID(e))
			adeg[u]++
			adeg[v]++
		}
	}
	for e := 0; e < m; e++ {
		if !active[e] {
			continue
		}
		u, v := g.Endpoints(graph.EdgeID(e))
		if len(lists[e]) <= adeg[u]+adeg[v]-2 {
			return nil, local.Stats{}, fmt.Errorf("pseudoforest: edge %d has |L|=%d ≤ deg=%d", e, len(lists[e]), adeg[u]+adeg[v]-2)
		}
	}

	tp := local.FromGraph(g)
	out := make([]int, m)
	for e := range out {
		out[e] = -1
	}
	errs := &local.ErrorSink{}
	maxOut := 0
	for v := 0; v < g.N(); v++ {
		k := 0
		for _, e := range g.Incident(v) {
			if active[e] && g.OtherEnd(e, v) > v {
				k++
			}
		}
		if k > maxOut {
			maxOut = k
		}
	}
	cv := cvSchedule(g.N())
	factory := func(view local.View) local.Protocol {
		return newNodeProto(view, g, active, lists, cv, maxOut, out, errs)
	}
	stats, err := run.Run(tp, factory, nil)
	if err != nil {
		return nil, stats, err
	}
	if err := errs.Err(); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// edgeSlot is a node's local record of one incident active edge.
type edgeSlot struct {
	port   int          // port to the other endpoint
	id     graph.EdgeID // global edge ID (known to both endpoints)
	list   []int        // the edge's color list (known to both endpoints)
	tail   bool         // true if this node is the tail (lower index)
	forest int          // pseudoforest index (valid when tail)
	color  int          // assigned color, −1 until decided
}

// nodeProto is the per-node protocol state machine.
type nodeProto struct {
	v      local.View
	slots  []edgeSlot // active incident edges, in port order
	bySlot []int      // port -> slot index (−1 if inactive)

	cv      []int // CV schedule (color counts per step)
	maxOut  int   // global bound on out-degrees (phases to run)
	colors  []int // my CV color per forest (index = forest)
	parents []int // slot index of my out-edge per forest (−1 none)

	out     []int
	errs    *local.ErrorSink
	pending []pendingAssign // head-side assignments awaiting the reply round

	nRounds int // total scheduled rounds
}

// message types exchanged between nodes.
type cvMsg struct {
	Colors []int // sender's per-forest colors
}

type proposeMsg struct {
	Forest int
	Used   []int // colors already used on edges around the tail
}

type assignMsg struct {
	Color int
}

func newNodeProto(view local.View, g *graph.Graph, active []bool, lists [][]int, cv []int, maxOut int, out []int, errs *local.ErrorSink) *nodeProto {
	me := view.Index
	np := &nodeProto{
		v:      view,
		cv:     cv,
		maxOut: maxOut,
		out:    out,
		errs:   errs,
		bySlot: make([]int, view.Degree),
	}
	inc := g.Incident(me)
	forest := 0
	for p, e := range inc {
		np.bySlot[p] = -1
		if !active[e] {
			continue
		}
		other := g.OtherEnd(e, me)
		slot := edgeSlot{port: p, id: e, list: lists[e], tail: other > me, color: -1, forest: -1}
		if slot.tail {
			slot.forest = forest
			forest++
		}
		np.bySlot[p] = len(np.slots)
		np.slots = append(np.slots, slot)
	}
	np.colors = make([]int, maxOut)
	np.parents = make([]int, maxOut)
	for f := range np.parents {
		np.parents[f] = -1
	}
	for si, s := range np.slots {
		if s.tail {
			np.parents[s.forest] = si
		}
	}
	for f := range np.colors {
		np.colors[f] = me
	}
	// Schedule: 1 setup round (tails announce forest indices), len(cv) CV
	// rounds, 6 shift/remove rounds, then 6·maxOut proposal/assignment
	// rounds.
	np.nRounds = 1 + len(cv) + 6 + 6*maxOut
	return np
}

// forestMsg is the setup announcement: the tail tells the head which
// pseudoforest their shared edge belongs to.
type forestMsg struct {
	Forest int
}

func (np *nodeProto) broadcastColors() []local.Message {
	msgs := make([]local.Message, np.v.Degree)
	c := append([]int(nil), np.colors...)
	for p := range msgs {
		msgs[p] = cvMsg{Colors: c}
	}
	return msgs
}

func (np *nodeProto) Send(r int) []local.Message {
	switch {
	case r == 1:
		// Setup: tails announce each out-edge's forest index to its head.
		var msgs []local.Message
		for _, s := range np.slots {
			if s.tail {
				if msgs == nil {
					msgs = make([]local.Message, np.v.Degree)
				}
				msgs[s.port] = forestMsg{Forest: s.forest}
			}
		}
		return msgs
	case r <= 1+len(np.cv)+6:
		// CV and shift/remove rounds: everyone broadcasts its color vector.
		return np.broadcastColors()
	default:
		t := r - 1 - len(np.cv) - 6 - 1 // 0-based index into the 6·maxOut phase rounds
		forest := t / 6
		step := t % 6 // 0,2,4: propose (tail color 0,1,2); 1,3,5: assign replies
		if step%2 == 0 {
			tailColor := step / 2
			return np.sendProposal(forest, tailColor)
		}
		return np.sendAssignments()
	}
}

func (np *nodeProto) sendProposal(forest, tailColor int) []local.Message {
	si := -1
	if forest < len(np.parents) {
		si = np.parents[forest]
	}
	if si < 0 || np.slots[si].color >= 0 || np.colors[forest] != tailColor {
		return nil
	}
	used := np.usedColors()
	msgs := make([]local.Message, np.v.Degree)
	msgs[np.slots[si].port] = proposeMsg{Forest: forest, Used: used}
	return msgs
}

// pendingAssign is a head-side decision recorded in Receive and flushed by
// the next Send.
type pendingAssign struct {
	port  int
	color int
}

func (np *nodeProto) sendAssignments() []local.Message {
	if len(np.pending) == 0 {
		return nil
	}
	msgs := make([]local.Message, np.v.Degree)
	for _, pa := range np.pending {
		msgs[pa.port] = assignMsg{Color: pa.color}
	}
	np.pending = np.pending[:0]
	return msgs
}

func (np *nodeProto) usedColors() []int {
	var used []int
	for _, s := range np.slots {
		if s.color >= 0 {
			used = append(used, s.color)
		}
	}
	sort.Ints(used)
	return used
}

func (np *nodeProto) Receive(r int, inbox []local.Message) bool {
	switch {
	case r == 1:
		for p, msg := range inbox {
			fm, ok := msg.(forestMsg)
			if !ok {
				continue
			}
			if si := np.bySlot[p]; si >= 0 {
				np.slots[si].forest = fm.Forest
			}
		}
	case r <= 1+len(np.cv):
		np.cvStep(np.cv[r-2], inbox)
	case r <= 1+len(np.cv)+6:
		np.shiftRemoveStep(r-len(np.cv)-2, inbox)
	default:
		t := r - 1 - len(np.cv) - 6 - 1
		step := t % 6
		if step%2 == 0 {
			np.collectProposals(inbox)
		} else {
			np.collectAssignments(inbox)
		}
	}
	return r >= np.nRounds
}

// cvStep applies one Cole–Vishkin bit reduction per forest: the new color
// encodes the lowest bit position where my color differs from my parent's,
// plus my bit there. Roots pretend their parent flipped their lowest bit.
func (np *nodeProto) cvStep(newK int, inbox []local.Message) {
	parentColors := np.parentColors(inbox)
	for f := range np.colors {
		mine := np.colors[f]
		pc, hasParent := parentColors[f]
		if !hasParent {
			pc = mine ^ 1
		}
		if pc == mine {
			np.errs.Set(fmt.Errorf("pseudoforest: node %d forest %d: parent shares CV color %d", np.v.Index, f, mine))
			return
		}
		i := 0
		for (mine>>i)&1 == (pc>>i)&1 {
			i++
		}
		np.colors[f] = 2*i + (mine>>i)&1
		if np.colors[f] >= newK {
			np.errs.Set(fmt.Errorf("pseudoforest: node %d forest %d: CV color %d ≥ %d", np.v.Index, f, np.colors[f], newK))
			return
		}
	}
}

// shiftRemoveStep runs the 6→3 reduction: rounds alternate shift-down
// (adopt parent's color; roots rotate) and removal of color class 3+step.
func (np *nodeProto) shiftRemoveStep(step int, inbox []local.Message) {
	parentColors := np.parentColors(inbox)
	childColors := np.childColors(inbox)
	if step%2 == 0 {
		// Shift down: adopt the parent's color; roots rotate within {0,1,2}
		// so that removed classes are never reintroduced ((c+1)%3 ≠ c for
		// every c < 6, which keeps the root proper toward its children, who
		// all adopt the root's previous color this round).
		for f := range np.colors {
			if pc, ok := parentColors[f]; ok {
				np.colors[f] = pc
			} else {
				np.colors[f] = (np.colors[f] + 1) % 3
			}
		}
		return
	}
	target := 5 - step/2 // classes 5, 4, 3
	for f := range np.colors {
		if np.colors[f] != target {
			continue
		}
		blocked := [3]bool{}
		if pc, ok := parentColors[f]; ok && pc < 3 {
			blocked[pc] = true
		}
		for _, cc := range childColors[f] {
			if cc < 3 {
				blocked[cc] = true
			}
		}
		picked := -1
		for c := 0; c < 3; c++ {
			if !blocked[c] {
				picked = c
				break
			}
		}
		if picked < 0 {
			np.errs.Set(fmt.Errorf("pseudoforest: node %d forest %d: no free color in {0,1,2}", np.v.Index, f))
			return
		}
		np.colors[f] = picked
	}
}

// parentColors extracts, per forest, the color of this node's parent from
// the broadcast color vectors.
func (np *nodeProto) parentColors(inbox []local.Message) map[int]int {
	out := make(map[int]int, len(np.parents))
	for f, si := range np.parents {
		if si < 0 {
			continue
		}
		msg := inbox[np.slots[si].port]
		if msg == nil {
			continue
		}
		cm := msg.(cvMsg)
		if f < len(cm.Colors) {
			out[f] = cm.Colors[f]
		}
	}
	return out
}

// childColors extracts, per forest, the colors of this node's children:
// the neighbors whose out-edge in that forest points at this node. The
// forest index of each in-edge was announced by its tail in the setup round.
func (np *nodeProto) childColors(inbox []local.Message) map[int][]int {
	out := make(map[int][]int)
	for _, s := range np.slots {
		if s.tail || s.forest < 0 {
			continue
		}
		msg := inbox[s.port]
		if msg == nil {
			continue
		}
		cm := msg.(cvMsg)
		if s.forest < len(cm.Colors) {
			out[s.forest] = append(out[s.forest], cm.Colors[s.forest])
		}
	}
	return out
}

func (np *nodeProto) collectProposals(inbox []local.Message) {
	type prop struct {
		slot int
		used []int
	}
	var props []prop
	for p, msg := range inbox {
		if msg == nil {
			continue
		}
		pm, ok := msg.(proposeMsg)
		if !ok {
			continue
		}
		si := np.bySlot[p]
		if si < 0 {
			np.errs.Set(fmt.Errorf("pseudoforest: node %d: proposal on inactive port %d", np.v.Index, p))
			return
		}
		props = append(props, prop{slot: si, used: pm.Used})
	}
	if len(props) == 0 {
		return
	}
	// Deterministic order: by port.
	sort.Slice(props, func(i, j int) bool { return np.slots[props[i].slot].port < np.slots[props[j].slot].port })
	myUsed := make(map[int]bool)
	for _, s := range np.slots {
		if s.color >= 0 {
			myUsed[s.color] = true
		}
	}
	for _, pr := range props {
		s := &np.slots[pr.slot]
		tailUsed := make(map[int]bool, len(pr.used))
		for _, c := range pr.used {
			tailUsed[c] = true
		}
		picked := -1
		for _, c := range s.list {
			if !myUsed[c] && !tailUsed[c] {
				picked = c
				break
			}
		}
		if picked < 0 {
			np.errs.Set(fmt.Errorf("pseudoforest: node %d: no free color for edge %d (|L|=%d)", np.v.Index, s.id, len(s.list)))
			return
		}
		s.color = picked
		myUsed[picked] = true
		np.out[s.id] = picked
		np.pending = append(np.pending, pendingAssign{port: s.port, color: picked})
	}
}

func (np *nodeProto) collectAssignments(inbox []local.Message) {
	for p, msg := range inbox {
		if msg == nil {
			continue
		}
		am, ok := msg.(assignMsg)
		if !ok {
			continue
		}
		si := np.bySlot[p]
		if si >= 0 {
			np.slots[si].color = am.Color
		}
	}
}
