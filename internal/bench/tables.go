// Package bench is the experiment harness: for every quantitative claim and
// figure of the paper it provides a runner that regenerates the
// corresponding table (see DESIGN.md §2 for the experiment index E1–E14).
// cmd/benchtables prints all tables; bench_test.go wraps each runner in a
// testing.B benchmark.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Smoke runs tiny instances: seconds in total, used by unit tests.
	Smoke Scale = iota
	// Standard runs the sizes recorded in EXPERIMENTS.md: a few minutes.
	Standard
	// Full runs the largest documented sizes: tens of minutes.
	Full
)

// ParseScale converts a flag value into a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "smoke":
		return Smoke, nil
	case "standard", "":
		return Standard, nil
	case "full":
		return Full, nil
	}
	return Smoke, fmt.Errorf("bench: unknown scale %q (want smoke, standard or full)", s)
}

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-text footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// WriteAll runs every experiment at the given scale and writes the tables.
func WriteAll(w io.Writer, scale Scale) error {
	runners := []func(Scale) (*Table, error){
		E1RoundsVsDelta,
		E2RoundsVsN,
		E3SlackReduction,
		E4Defective,
		E5Levels,
		E6SpaceReduction,
		E7Chain,
		E8Fig5,
		E9TheoryPreset,
		E11VirtualSplit,
		E12AlgorithmMatrix,
		E13AblationPhases,
		E14Engines,
	}
	for _, run := range runners {
		tbl, err := run(scale)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(w, tbl.Markdown()); err != nil {
			return err
		}
	}
	return nil
}

func itoa(x int) string { return fmt.Sprintf("%d", x) }

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }
