package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchJSON = `{
  "benchmark": "BenchmarkVizing",
  "date": "2026-07-26",
  "host": {"cpu": "TestCPU", "cores": 1},
  "results": {
    "static_delta_plus_1": {"ns_per_run": 37565130, "augmentations": 3967},
    "churn_tight": {"ns_per_update": 47503.5, "rejected": 0}
  },
  "workloads": [
    {"name": "ring", "edges": 100000},
    {"name": "regular", "edges": 250000}
  ],
  "tags": ["a", "b"],
  "notes": "a long free-text note that should render as a quoted paragraph rather than a table cell because it easily exceeds the eighty character threshold"
}`

func TestRenderBenchJSON(t *testing.T) {
	var b strings.Builder
	if err := RenderBenchJSON(&b, "BENCH_vizing.json", []byte(sampleBenchJSON)); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"### BENCH_vizing.json — BenchmarkVizing",
		"| date | 2026-07-26 |",
		"**results · static_delta_plus_1**",
		"| ns_per_run | 37565130 |",
		"| ns_per_update | 47503.5 |", // no float64 artifacts
		"| rejected | 0 |",
		"> **notes:**",
		"**workloads · #1**", // arrays of objects become sections
		"| name | ring |",
		"| tags | a, b |", // scalar arrays stay inline
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderBenchJSONDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := RenderBenchJSON(&a, "x.json", []byte(sampleBenchJSON)); err != nil {
		t.Fatal(err)
	}
	if err := RenderBenchJSON(&b, "x.json", []byte(sampleBenchJSON)); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("two renders of the same document differ")
	}
}

func TestRenderBenchJSONRejectsGarbage(t *testing.T) {
	var b strings.Builder
	if err := RenderBenchJSON(&b, "bad.json", []byte("{not json")); err == nil {
		t.Fatal("accepted malformed JSON")
	}
}

// TestRenderBenchFileCheckedIn renders the repository's own recorded
// documents, so a schema drift that breaks the renderer fails here and not
// in a user's terminal.
func TestRenderBenchFileCheckedIn(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		t.Skipf("no checked-in BENCH files found (err=%v)", err)
	}
	for _, path := range matches {
		var b strings.Builder
		if err := RenderBenchFile(&b, path); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out := b.String()
		if !strings.Contains(out, "### ") {
			t.Fatalf("%s rendered without a heading", path)
		}
		// Arrays of objects must become sections, never %v-formatted Go
		// map syntax inside a table cell.
		if strings.Contains(out, "map[") {
			t.Fatalf("%s rendered raw Go map syntax:\n%s", path, out)
		}
	}
}

func TestRenderBenchFileMissing(t *testing.T) {
	var b strings.Builder
	if err := RenderBenchFile(&b, filepath.Join(os.TempDir(), "definitely-not-here.json")); err == nil {
		t.Fatal("accepted a missing file")
	}
}
