package bench

import (
	"fmt"
	"math"
	"time"

	"github.com/distec/distec/internal/core"
	"github.com/distec/distec/internal/defective"
	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/linial"
	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/pseudoforest"
	"github.com/distec/distec/internal/randomized"
	"github.com/distec/distec/internal/sharded"
	"github.com/distec/distec/internal/verify"
)

// E1RoundsVsDelta reproduces the headline claim (Theorem 1.1/4.1): the
// algorithm's round count grows sub-linearly in Δ while the O(Δ̄²) baseline
// grows quadratically and the PR01-style baseline linearly. Absolute
// constants favor the baselines at feasible Δ (the paper's win is
// asymptotic); the reproduced shape is the per-doubling growth factor.
func E1RoundsVsDelta(scale Scale) (*Table, error) {
	n, ds := 1024, []int{4, 8, 16, 32, 64}
	switch scale {
	case Smoke:
		n, ds = 192, []int{4, 8}
	case Full:
		n, ds = 2048, []int{4, 8, 16, 32, 64, 128}
	}
	t := &Table{
		ID:     "E1",
		Title:  fmt.Sprintf("Rounds vs Δ, (2Δ−1)-edge coloring, d-regular n=%d", n),
		Header: []string{"Δ", "Δ̄", "BKO rounds", "BKO growth", "PR01 rounds", "PR01 growth", "O(Δ̄²) rounds", "random rounds"},
	}
	prevBKO, prevPR := 0, 0
	for _, d := range ds {
		g := graph.RandomRegular(n, d, 7)
		in := uniform(g)
		res, err := core.SolveGraph(in, core.Practical(), local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E1 d=%d BKO: %w", d, err)
		}
		if err := verify.EdgeColoring(g, nil, res.Colors); err != nil {
			return nil, fmt.Errorf("E1 d=%d BKO verify: %w", d, err)
		}
		prColors, prStats, err := pseudoforest.Solve(g, nil, in.Lists, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E1 d=%d PR01: %w", d, err)
		}
		if err := verify.EdgeColoring(g, nil, prColors); err != nil {
			return nil, fmt.Errorf("E1 d=%d PR01 verify: %w", d, err)
		}
		baseCell := "—"
		if g.MaxEdgeDegree() <= 130 {
			_, bStats, err := listcolor.SolveBase(in, nil, 0, local.Sequential)
			if err != nil {
				return nil, fmt.Errorf("E1 d=%d base: %w", d, err)
			}
			baseCell = itoa(bStats.Rounds)
		}
		_, rStats, err := randomized.Solve(g, nil, in.Lists, 5, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E1 d=%d randomized: %w", d, err)
		}
		growthBKO, growthPR := "—", "—"
		if prevBKO > 0 {
			growthBKO = f2(float64(res.Stats.Rounds) / float64(prevBKO))
			growthPR = f2(float64(prStats.Rounds) / float64(prevPR))
		}
		t.AddRow(itoa(d), itoa(g.MaxEdgeDegree()), itoa(res.Stats.Rounds), growthBKO,
			itoa(prStats.Rounds), growthPR, baseCell, itoa(rStats.Rounds))
		prevBKO, prevPR = res.Stats.Rounds, prStats.Rounds
	}
	t.Note("Paper claim: BKO grows quasi-polylogarithmically in Δ (growth factor per Δ-doubling → 1), " +
		"PR01 linearly (factor → 2), the trivial baseline quadratically (factor → 4). " +
		"The O(Δ̄²) column is omitted beyond Δ̄ > 130 (round count exceeds practical simulation budgets, which is itself the point).")
	return t, nil
}

// E2RoundsVsN isolates the O(log* n) additive term of Theorem 4.1: at fixed
// Δ the round count must be essentially flat in n.
func E2RoundsVsN(scale Scale) (*Table, error) {
	d := 16
	ns := []int{256, 512, 1024, 2048, 4096}
	switch scale {
	case Smoke:
		d, ns = 8, []int{128, 256}
	case Full:
		ns = append(ns, 8192)
	}
	t := &Table{
		ID:     "E2",
		Title:  fmt.Sprintf("Rounds vs n, (2Δ−1)-edge coloring, %d-regular", d),
		Header: []string{"n", "m", "BKO rounds", "PR01 rounds", "log*-part (Linial plan length)"},
	}
	for _, n := range ns {
		g := graph.RandomRegular(n, d, 11)
		in := uniform(g)
		res, err := core.SolveGraph(in, core.Practical(), local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E2 n=%d: %w", n, err)
		}
		_, prStats, err := pseudoforest.Solve(g, nil, in.Lists, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E2 n=%d PR01: %w", n, err)
		}
		plan := len(linial.Plan(g.M(), g.MaxEdgeDegree()))
		t.AddRow(itoa(n), itoa(g.M()), itoa(res.Stats.Rounds), itoa(prStats.Rounds), itoa(plan))
		_ = res
	}
	t.Note("Paper claim: the n-dependence is only the additive O(log* n) of the initial Linial coloring; " +
		"the machinery's round count is a function of Δ alone.")
	return t, nil
}

// E3SlackReduction observes Lemma 4.2 directly: the maximum uncolored
// conflict degree at the start of each sweep (must at least halve), and the
// number of slack-β class instances solved versus the O(β²·log Δ̄) bound.
func E3SlackReduction(scale Scale) (*Table, error) {
	n, d := 512, 32
	if scale == Smoke {
		n, d = 192, 16
	}
	if scale == Full {
		n, d = 1024, 64
	}
	g := graph.RandomRegular(n, d, 3)
	in := uniform(g)
	res, err := core.SolveGraph(in, core.Practical(), local.Sequential)
	if err != nil {
		return nil, fmt.Errorf("E3: %w", err)
	}
	t := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("Lemma 4.2 sweeps on %d-regular n=%d (β=2)", d, n),
		Header: []string{"sweep", "max uncolored Δ̄", "ratio to previous"},
	}
	prev := 0
	for i, dv := range res.Trace.SweepDegrees {
		ratio := "—"
		if prev > 0 {
			ratio = f2(float64(dv) / float64(prev))
		}
		t.AddRow(itoa(i), itoa(dv), ratio)
		prev = dv
	}
	beta := 2
	bound := 24 * beta * beta * int(math.Log2(float64(g.MaxEdgeDegree()))+1) // palette(β)-flavored envelope
	t.Note("Class instances solved: %d (paper bound O(β²·log Δ̄) ≈ %d with the %d-color defective palette); deferred edges: %d.",
		res.Trace.ClassInstances, bound*3, defective.Palette(beta), res.Trace.Deferred)
	t.Note("Paper claim (Lemma 4.2 proof): the uncolored subgraph's maximum degree at least halves per sweep (ratio ≤ 0.5 plus deferral noise).")
	return t, nil
}

// E4Defective reproduces §4.1: defect within deg(e)/2β, palette ≤ 3·4β(4β+1)/2,
// rounds O(log* n) — across families and β values.
func E4Defective(scale Scale) (*Table, error) {
	n, d := 512, 24
	if scale == Smoke {
		n, d = 160, 12
	}
	if scale == Full {
		n, d = 2048, 48
	}
	t := &Table{
		ID:     "E4",
		Title:  fmt.Sprintf("Defective edge coloring (§4.1), n=%d, degree parameter %d", n, d),
		Header: []string{"workload", "β", "Δ̄", "max defect", "bound max deg(e)/2β", "colors used", "palette bound", "rounds"},
	}
	add := func(name string, g *graph.Graph, beta int) error {
		res, err := defective.ColorGraph(g, nil, beta, local.Sequential)
		if err != nil {
			return fmt.Errorf("E4 %s β=%d: %w", name, beta, err)
		}
		worstBound := 0
		for e := 0; e < g.M(); e++ {
			u, v := g.Endpoints(graph.EdgeID(e))
			if b := defective.DefectBound(g.Degree(u), g.Degree(v), beta); b > worstBound {
				worstBound = b
			}
		}
		if err := verify.Defective(g, nil, res.Colors, func(e graph.EdgeID) int {
			u, v := g.Endpoints(e)
			return defective.DefectBound(g.Degree(u), g.Degree(v), beta)
		}); err != nil {
			return fmt.Errorf("E4 %s β=%d: %w", name, beta, err)
		}
		t.AddRow(name, itoa(beta), itoa(g.MaxEdgeDegree()), itoa(defective.MaxDefect(g, nil, res.Colors)),
			itoa(worstBound), itoa(verify.CountColors(res.Colors)), itoa(res.Palette), itoa(res.Stats.Rounds))
		return nil
	}
	for _, w := range Families(n, d, 13) {
		if err := add(w.Name, w.G, 2); err != nil {
			return nil, err
		}
	}
	for _, beta := range []int{1, 2, 4, 8} {
		if err := add("regular/βsweep", graph.RandomRegular(n, d, 13), beta); err != nil {
			return nil, err
		}
	}
	t.Note("Paper claims: defect(e) ≤ ⌈du/4β⌉+⌈dv/4β⌉−2 ≤ deg(e)/2β for every edge (verified per edge, not just max); " +
		"palette 3·4β(4β+1)/2 = O(β²); rounds O(log* n).")
	return t, nil
}

// E5Levels validates Lemma 4.4 statistically: over pseudo-random lists, the
// guaranteed (k, I) always exists, and the level distribution is reported.
func E5Levels(scale Scale) (*Table, error) {
	trials := 20000
	if scale == Smoke {
		trials = 2000
	}
	c, p := 256, 16
	pt := core.MakePartition(c, p)
	hist := make(map[int]int)
	worstK := 0
	minMargin := math.Inf(1)
	seed := uint64(12345)
	nextRand := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for trial := 0; trial < trials; trial++ {
		density := nextRand()%90 + 5 // 5%..95%
		var offsets []int
		for o := 0; o < c; o++ {
			if nextRand()%100 < density {
				offsets = append(offsets, o)
			}
		}
		if len(offsets) == 0 {
			offsets = []int{int(nextRand() % uint64(c))}
		}
		counts := pt.Counts(offsets)
		k, indices, ok := core.BestK(counts, len(offsets))
		if !ok {
			return nil, fmt.Errorf("E5: Lemma 4.4 failed on trial %d", trial)
		}
		if k > worstK {
			worstK = k
		}
		hq := core.Harmonic(pt.Q)
		for _, j := range indices {
			margin := float64(counts[j]) * float64(k) * hq / float64(len(offsets))
			if margin < minMargin {
				minMargin = margin
			}
		}
		l, ok := core.Level(counts, len(offsets))
		if !ok {
			return nil, fmt.Errorf("E5: no level on trial %d", trial)
		}
		hist[l]++
	}
	t := &Table{
		ID:     "E5",
		Title:  fmt.Sprintf("Lemma 4.4 levels over %d random lists (C=%d, q=%d)", trials, c, pt.Q),
		Header: []string{"level ℓ", "lists", "share"},
	}
	for l := 0; l <= 8; l++ {
		if hist[l] == 0 {
			continue
		}
		t.AddRow(itoa(l), itoa(hist[l]), f2(float64(hist[l])/float64(trials)))
	}
	t.Note("Lemma 4.4 held in all %d trials (worst k = %d, minimum guarantee margin |L∩Ci|·k·Hq/|L| = %.3f ≥ 1).",
		trials, worstK, minMargin)
	return t, nil
}

// E6SpaceReduction measures Eq. (2) of Lemma 4.3: the worst degradation
// factor deg′·|L|/(|L′|·deg) across a p sweep, against the 24·H_q·log p bound.
func E6SpaceReduction(scale Scale) (*Table, error) {
	n, d, c := 256, 32, 256
	if scale == Smoke {
		n, d = 96, 24
	}
	if scale == Full {
		n, d = 512, 64
	}
	t := &Table{
		ID:     "E6",
		Title:  fmt.Sprintf("Color space reduction quality (Lemma 4.3, Eq. 2), %d-regular n=%d, C=%d", d, n, c),
		Header: []string{"p", "q", "worst Eq.(2) factor", "bound 24·H_q·log p", "phases", "E2 inst.", "direct", "rounds"},
	}
	g := graph.RandomRegular(n, d, 5)
	pairs := defective.GraphPairs(g)
	lists := fullLists(g.M(), c)
	for _, p := range []int{4, 8, 16, 32} {
		params := core.Practical()
		params.Strict = true // assert Eq. (2) per edge, not just report
		res, err := core.SpaceReduceOnce(pairs, nil, lists, c, p, params, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E6 p=%d: %w", p, err)
		}
		bound := 24 * core.Harmonic(res.Partition.Q) * math.Max(1, math.Log2(float64(p)))
		t.AddRow(itoa(p), itoa(res.Partition.Q), f2(res.Trace.Eq2Worst), f2(bound),
			itoa(res.Trace.PhaseInstances), itoa(res.Trace.E2Instances), itoa(res.Trace.DirectAssigns), itoa(res.Stats.Rounds))
	}
	t.Note("Strict mode asserts Eq. (2) for every edge during the run; a row existing at all means the paper's bound held everywhere.")
	return t, nil
}

// E7Chain reproduces Lemma 4.5: chained space reductions shrink the palette
// from C to ≤ p in log_p C levels while consuming bounded slack per level.
func E7Chain(scale Scale) (*Table, error) {
	n, d, c, p := 256, 16, 4096, 8
	if scale == Smoke {
		n, d, c = 96, 8, 512
	}
	g := graph.RandomRegular(n, d, 9)
	pairs := defective.GraphPairs(g)
	lists := fullLists(g.M(), c)
	lo := make([]int, g.M())
	active := make([]bool, g.M())
	for i := range active {
		active[i] = true
	}
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("Lemma 4.5 chain: C=%d, p=%d, %d-regular n=%d", c, p, d, n),
		Header: []string{"level", "palette size", "min |L|/deg (slack)", "worst Eq.(2) factor", "per-level bound"},
	}
	size := c
	level := 0
	curPairs := append([][2]int64(nil), pairs...)
	for size > 8 {
		level++
		params := core.Practical()
		res, err := core.SpaceReduceOnce(curPairs, active, lists, size, p, params, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E7 level %d: %w", level, err)
		}
		// Refine lists, intervals and keys per assignment (the solver's own
		// chain logic, replayed here for observability).
		intern := make(map[[2]int64]int64)
		derive := func(key int64, j int) int64 {
			k := [2]int64{key, int64(j)}
			id, ok := intern[k]
			if !ok {
				id = int64(len(intern))
				intern[k] = id
			}
			return id
		}
		for e := range curPairs {
			if !active[e] {
				continue
			}
			j := res.Assign[e]
			if j < 0 {
				active[e] = false
				continue
			}
			partLo := lo[e] + j*res.Partition.PartSize
			var kept []int
			for _, col := range lists[e] {
				if col >= partLo && col < partLo+res.Partition.PartSize {
					kept = append(kept, col)
				}
			}
			lists[e] = kept
			lo[e] = partLo
			curPairs[e] = [2]int64{derive(curPairs[e][0], j), derive(curPairs[e][1], j)}
		}
		size = res.Partition.PartSize
		minSlack := math.Inf(1)
		degs := activeDegreesOf(curPairs, active)
		for e := range curPairs {
			if active[e] && degs[e] > 0 {
				if s := float64(len(lists[e])) / float64(degs[e]); s < minSlack {
					minSlack = s
				}
			}
		}
		bound := 24 * core.Harmonic(res.Partition.Q) * math.Max(1, math.Log2(float64(p)))
		t.AddRow(itoa(level), itoa(size), f2(minSlack), f2(res.Trace.Eq2Worst), f2(bound))
	}
	t.Note("Paper claim (Lemma 4.5): k = log_p C levels reach a constant palette while the slack shrinks by at most "+
		"24·H_2p·log p per level; with C=%d and p=%d, k = %d levels were needed.", c, p, level)
	return t, nil
}

// E8Fig5 reproduces Figure 5's exact numbers.
func E8Fig5(Scale) (*Table, error) {
	pt := core.MakePartition(20, 4)
	offsets := []int{0, 1, 4, 5, 6, 11, 16} // the figure's list {1,2,5,6,7,12,17}, 0-based
	counts := pt.Counts(offsets)
	k, indices, ok := core.BestK(counts, len(offsets))
	if !ok {
		return nil, fmt.Errorf("E8: BestK failed on the figure's instance")
	}
	t := &Table{
		ID:     "E8",
		Title:  "Figure 5: list partitioning with C=20, p=4, Le={1,2,5,6,7,12,17}",
		Header: []string{"part", "range", "|Le ∩ Ci|", "in I?"},
	}
	inI := make(map[int]bool)
	for _, j := range indices {
		inI[j] = true
	}
	for j := 0; j < pt.Q; j++ {
		lo, hi := pt.PartBounds(j)
		mark := ""
		if inI[j] {
			mark = "yes"
		}
		t.AddRow(fmt.Sprintf("C%d", j+1), fmt.Sprintf("{%d..%d}", lo+1, hi), itoa(counts[j]), mark)
	}
	t.Note("Paper: I = {1,2} with k = %d, since |C1∩Le|, |C2∩Le| ≥ 2 ≥ 7/(2·H4) = %.2f. Reproduced exactly.",
		k, 7/(2*core.Harmonic(4)))
	return t, nil
}

// E9TheoryPreset documents the honest behavior of the paper's constants:
// β = log⁴ Δ̄ exceeds Δ̄/2 for every feasible Δ̄, so the machinery bails to
// its base case — quantified here.
func E9TheoryPreset(scale Scale) (*Table, error) {
	params := core.Theory(1, 1)
	t := &Table{
		ID:     "E9",
		Title:  "Theory parameterization at feasible scales (β = log⁴ Δ̄, p = √Δ̄)",
		Header: []string{"Δ̄", "β", "machinery engages (2β < Δ̄)?"},
	}
	firstEngage := 0
	for exp := 3; exp <= 30; exp++ {
		dbar := 1 << exp
		beta := params.Beta(dbar, 0)
		engages := 2*beta < dbar
		if engages && firstEngage == 0 {
			firstEngage = dbar
		}
		if exp <= 10 || engages != (2*params.Beta(dbar/2, 0) < dbar/2) || exp%5 == 0 {
			t.AddRow(itoa(dbar), itoa(beta), fmt.Sprintf("%v", engages))
		}
	}
	ds := []int{8, 16, 32}
	if scale == Smoke {
		ds = []int{8}
	}
	for _, d := range ds {
		g := graph.RandomRegular(256, d, 21)
		in := uniform(g)
		res, err := core.SolveGraph(in, params, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E9 d=%d: %w", d, err)
		}
		if err := verify.EdgeColoring(g, nil, res.Colors); err != nil {
			return nil, err
		}
		t.Note("Run at Δ̄=%d: %d rounds, β-bailouts=%d (all work done by the O(Δ̄²+log* n) base case, as the theory constants dictate).",
			g.MaxEdgeDegree(), res.Stats.Rounds, res.Trace.BetaBailouts)
	}
	t.Note("The recursion first engages at Δ̄ = %d: the asymptotic regime of Theorem 4.1 lies far beyond simulable graphs, "+
		"which is why the Practical preset (β=2) exists (see DESIGN.md).", firstEngage)
	return t, nil
}

// E11VirtualSplit exercises Figure 6's virtual-node machinery: a dense
// bipartite instance where high-level edges outnumber subspaces, forcing
// E(1) phases, virtual grouping and the T(2p−1,1,2p) recursion.
func E11VirtualSplit(scale Scale) (*Table, error) {
	side := 48
	if scale == Smoke {
		side = 24
	}
	if scale == Full {
		side = 96
	}
	g := graph.CompleteBipartite(side, side)
	pairs := defective.GraphPairs(g)
	c := 256
	lists := fullLists(g.M(), c)
	t := &Table{
		ID:     "E11",
		Title:  fmt.Sprintf("Virtual-node splitting (Figure 6) on K_{%d,%d}, C=%d", side, side, c),
		Header: []string{"p", "phase instances", "virtual recursions", "E2 instances", "direct assigns", "deferred", "worst Eq.(2)"},
	}
	for _, p := range []int{16, 32} {
		params := core.Practical()
		res, err := core.SpaceReduceOnce(pairs, nil, lists, c, p, params, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E11 p=%d: %w", p, err)
		}
		t.AddRow(itoa(p), itoa(res.Trace.PhaseInstances), itoa(res.Trace.VirtualRecursion),
			itoa(res.Trace.E2Instances), itoa(res.Trace.DirectAssigns), itoa(res.Trace.Deferred), f2(res.Trace.Eq2Worst))
	}
	t.Note("Paper §4.2: phase-ℓ edges are grouped into virtual copies of ≤ 2^(ℓ−2) edges per node, the virtual line graph has " +
		"degree ≤ 2^(ℓ−1)−2, and each |Je| ≥ 2^(ℓ−1) — these inequalities are asserted inside the solver on every phase.")
	return t, nil
}

// E12AlgorithmMatrix is the related-work comparison: rounds and colors of
// every implemented algorithm across the six workload families.
func E12AlgorithmMatrix(scale Scale) (*Table, error) {
	n, d := 512, 16
	if scale == Smoke {
		n, d = 128, 8
	}
	if scale == Full {
		n, d = 1024, 32
	}
	t := &Table{
		ID:     "E12",
		Title:  fmt.Sprintf("Algorithm comparison, (2Δ−1)-edge coloring, n=%d, degree parameter %d", n, d),
		Header: []string{"workload", "Δ̄", "BKO rounds", "PR01 rounds", "O(Δ̄²) rounds", "random rounds", "colors (BKO)", "palette 2Δ−1"},
	}
	for _, w := range Families(n, d, 17) {
		g := w.G
		if g.M() == 0 || g.MaxDegree() < 1 {
			continue
		}
		in := uniform(g)
		res, err := core.SolveGraph(in, core.Practical(), local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E12 %s BKO: %w", w.Name, err)
		}
		if err := verify.EdgeColoring(g, nil, res.Colors); err != nil {
			return nil, fmt.Errorf("E12 %s: %w", w.Name, err)
		}
		_, prStats, err := pseudoforest.Solve(g, nil, in.Lists, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E12 %s PR01: %w", w.Name, err)
		}
		baseCell := "—"
		if g.MaxEdgeDegree() <= 130 {
			_, bStats, err := listcolor.SolveBase(in, nil, 0, local.Sequential)
			if err != nil {
				return nil, fmt.Errorf("E12 %s base: %w", w.Name, err)
			}
			baseCell = itoa(bStats.Rounds)
		}
		_, rStats, err := randomized.Solve(g, nil, in.Lists, 23, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E12 %s randomized: %w", w.Name, err)
		}
		t.AddRow(w.Name, itoa(g.MaxEdgeDegree()), itoa(res.Stats.Rounds), itoa(prStats.Rounds),
			baseCell, itoa(rStats.Rounds), itoa(verify.CountColors(res.Colors)), itoa(in.C))
	}
	t.Note("All algorithms solve the same (2Δ−1) instances; every output is re-verified for properness and palette compliance.")
	return t, nil
}

// E13AblationPhases quantifies why the phased assignment of Lemma 4.3
// matters: the direct argmax-subspace ablation voids Eq. (2) and strands
// edges without solvable lists.
func E13AblationPhases(scale Scale) (*Table, error) {
	// The input has slack ≈ C/deg(e) ≈ 10.9: a reduction whose Eq. (2)
	// factor stays below that leaves every edge solvable, one that exceeds
	// it strands edges — which is exactly how Lemma 4.5 budgets slack.
	n, d, c := 256, 48, 1024
	if scale == Smoke {
		n, d = 96, 32
	}
	g := graph.RandomRegular(n, d, 29)
	pairs := defective.GraphPairs(g)
	lists := fullLists(g.M(), c)
	t := &Table{
		ID:     "E13",
		Title:  fmt.Sprintf("Ablation: phased (paper) vs direct subspace choice, %d-regular n=%d, C=%d", d, n, c),
		Header: []string{"variant", "worst Eq.(2) factor", "bound", "stranded edges (|L′| ≤ deg′)", "rounds"},
	}
	for _, variant := range []struct {
		name   string
		direct bool
	}{{"phased (Lemma 4.3)", false}, {"direct argmax (ablation)", true}} {
		params := core.Practical()
		params.DirectAssignment = variant.direct
		res, err := core.SpaceReduceOnce(pairs, nil, lists, c, 16, params, local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E13 %s: %w", variant.name, err)
		}
		stranded := countStranded(pairs, lists, res.Assign, res.Partition)
		bound := 24 * core.Harmonic(res.Partition.Q) * math.Max(1, math.Log2(16))
		t.AddRow(variant.name, f2(res.Trace.Eq2Worst), f2(bound), itoa(stranded), itoa(res.Stats.Rounds))
	}
	t.Note("A stranded edge has fewer remaining list colors than same-subspace conflicting edges left after the reduction. " +
		"The input slack here is ≈ C/deg ≈ 10.9, so any variant whose Eq. (2) factor stays below that strands nothing, " +
		"while a factor above it must strand — the phased machinery's bounded factor is the whole point of Lemma 4.3.")
	return t, nil
}

// E14Engines cross-checks the three execution engines: identical outputs
// and stats, with the wall-clock ratios against the sequential reference.
func E14Engines(scale Scale) (*Table, error) {
	n, d := 256, 8
	if scale == Smoke {
		n, d = 96, 6
	}
	g := graph.RandomRegular(n, d, 31)
	in := uniform(g)
	t := &Table{
		ID:     "E14",
		Title:  fmt.Sprintf("Engine cross-check on %d-regular n=%d", d, n),
		Header: []string{"protocol", "rounds", "identical output", "wall ratio (gor/seq)", "wall ratio (shard/seq)"},
	}
	type algo struct {
		name string
		run  func(run local.Engine) ([]int, local.Stats, error)
	}
	algos := []algo{
		{"linial O(Δ̄²)-coloring", func(r local.Engine) ([]int, local.Stats, error) {
			tp := local.EdgeConflict(g)
			init := make([]int, tp.N())
			for i := range init {
				init[i] = i
			}
			return linial.Reduce(tp, init, tp.N(), r)
		}},
		{"defective β=2", func(r local.Engine) ([]int, local.Stats, error) {
			res, err := defective.ColorGraph(g, nil, 2, r)
			if err != nil {
				return nil, local.Stats{}, err
			}
			return res.Colors, res.Stats, nil
		}},
		{"pseudoforest PR01", func(r local.Engine) ([]int, local.Stats, error) {
			return pseudoforest.Solve(g, nil, in.Lists, r)
		}},
		{"BKO full", func(r local.Engine) ([]int, local.Stats, error) {
			res, err := core.SolveGraph(in, core.Practical(), r)
			if err != nil {
				return nil, local.Stats{}, err
			}
			return res.Colors, res.Stats, nil
		}},
	}
	for _, a := range algos {
		t0 := time.Now()
		seqOut, seqStats, err := a.run(local.Sequential)
		if err != nil {
			return nil, fmt.Errorf("E14 %s seq: %w", a.name, err)
		}
		seqWall := time.Since(t0)
		walls := make([]time.Duration, 0, 2)
		for _, eng := range []local.Engine{local.Goroutines, sharded.Default} {
			t0 = time.Now()
			out, stats, err := a.run(eng)
			if err != nil {
				return nil, fmt.Errorf("E14 %s %s: %w", a.name, eng.Name(), err)
			}
			walls = append(walls, time.Since(t0))
			same := seqStats == stats
			for i := range seqOut {
				if seqOut[i] != out[i] {
					same = false
					break
				}
			}
			if !same {
				return nil, fmt.Errorf("E14 %s: %s disagrees with sequential", a.name, eng.Name())
			}
		}
		t.AddRow(a.name, itoa(seqStats.Rounds), "yes",
			f2(float64(walls[0])/float64(seqWall+1)), f2(float64(walls[1])/float64(seqWall+1)))
	}
	t.Note("The goroutine engine runs one goroutine per entity with per-link channels and barrier rounds; " +
		"the sharded engine batches messages between a fixed worker pool. " +
		"Identical results certify that every protocol is an honest message-passing program.")
	return t, nil
}

// fullLists returns m copies of the full palette {0..c−1} (shared storage).
func fullLists(m, c int) [][]int {
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, m)
	for e := range lists {
		lists[e] = palette
	}
	return lists
}

// activeDegreesOf computes conflict degrees of a pair system subset.
func activeDegreesOf(pairs [][2]int64, active []bool) []int {
	cnt := make(map[int64]int)
	for e, pr := range pairs {
		if active[e] {
			cnt[pr[0]]++
			cnt[pr[1]]++
		}
	}
	deg := make([]int, len(pairs))
	for e, pr := range pairs {
		if active[e] {
			deg[e] = cnt[pr[0]] + cnt[pr[1]] - 2
		}
	}
	return deg
}

// countStranded counts assigned edges whose post-reduction list is not
// strictly larger than their same-subspace conflict degree.
func countStranded(pairs [][2]int64, lists [][]int, assign []int, pt core.Partition) int {
	cnt := make(map[[2]int64]int) // (key, subspace) -> incident count
	for e, pr := range pairs {
		if assign[e] < 0 {
			continue
		}
		cnt[[2]int64{pr[0], int64(assign[e])}]++
		cnt[[2]int64{pr[1], int64(assign[e])}]++
	}
	stranded := 0
	for e, pr := range pairs {
		j := assign[e]
		if j < 0 {
			stranded++
			continue
		}
		degPrime := cnt[[2]int64{pr[0], int64(j)}] + cnt[[2]int64{pr[1], int64(j)}] - 2
		newLen := 0
		lo, hi := pt.PartBounds(j)
		for _, c := range lists[e] {
			if c >= lo && c < hi {
				newLen++
			}
		}
		if newLen <= degPrime {
			stranded++
		}
	}
	return stranded
}
