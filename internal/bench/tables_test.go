package bench

import (
	"strings"
	"testing"

	"github.com/distec/distec/internal/core"
)

func TestParseScale(t *testing.T) {
	cases := []struct {
		in   string
		want Scale
		ok   bool
	}{
		{"smoke", Smoke, true},
		{"standard", Standard, true},
		{"", Standard, true},
		{"FULL", Full, true},
		{"huge", Smoke, false},
	}
	for _, tc := range cases {
		got, err := ParseScale(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseScale(%q) err=%v, want ok=%v", tc.in, err, tc.ok)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseScale(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"a", "b"},
	}
	tbl.AddRow("1", "2")
	tbl.Note("note %d", 7)
	md := tbl.Markdown()
	for _, want := range []string{"### EX — demo", "| a | b |", "| 1 | 2 |", "> note 7"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestFamiliesShapes(t *testing.T) {
	ws := Families(128, 8, 3)
	if len(ws) != 6 {
		t.Fatalf("got %d families, want 6", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if w.G.N() == 0 {
			t.Fatalf("family %s empty", w.Name)
		}
		if err := w.G.Validate(); err != nil {
			t.Fatalf("family %s: %v", w.Name, err)
		}
		names[w.Name] = true
	}
	for _, want := range []string{"regular", "bipartite", "gnp", "powerlaw", "geometric", "tree"} {
		if !names[want] {
			t.Fatalf("missing family %s", want)
		}
	}
}

func TestCountStranded(t *testing.T) {
	// Two conflicting items assigned the same subspace with 1-color lists:
	// both stranded (|L'| = 1 ≤ deg' = 1).
	pairs := [][2]int64{{0, 1}, {1, 2}}
	lists := [][]int{{0}, {0}}
	pt := core.MakePartition(4, 2)
	assign := []int{0, 0}
	if got := countStranded(pairs, lists, assign, pt); got != 2 {
		t.Fatalf("stranded = %d, want 2", got)
	}
	// Different subspaces: no one stranded.
	assign = []int{0, 1}
	lists = [][]int{{0}, {2}}
	if got := countStranded(pairs, lists, assign, pt); got != 0 {
		t.Fatalf("stranded = %d, want 0", got)
	}
}
