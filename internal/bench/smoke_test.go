package bench

import (
	"strings"
	"testing"
)

func TestAllExperimentsSmoke(t *testing.T) {
	var sb strings.Builder
	if err := WriteAll(&sb, Smoke); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E11", "E12", "E13", "E14"} {
		if !strings.Contains(out, "### "+id+" ") {
			t.Fatalf("missing table %s", id)
		}
	}
}
