package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// RenderBenchFile renders one recorded benchmark JSON file (the BENCH_*.json
// documents checked in at the repository root: BENCH_engines, BENCH_pool,
// BENCH_dynamic, BENCH_vizing) as GitHub-flavored markdown — the
// benchtables -render mode.
func RenderBenchFile(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return RenderBenchJSON(w, filepath.Base(path), data)
}

// RenderBenchJSON renders one recorded benchmark document. The format is
// schema-free: scalar fields become a two-column table, nested objects
// become bold-titled subsections (recursively), long string fields
// ("headline", "notes", workload descriptions) become quoted paragraphs.
// Keys are emitted in sorted order so output is deterministic.
func RenderBenchJSON(w io.Writer, name string, data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("bench: %s: %w", name, err)
	}
	title := name
	if s, ok := doc["benchmark"].(string); ok {
		title = s
		delete(doc, "benchmark")
	}
	fmt.Fprintf(w, "### %s — %s\n\n", name, title)
	renderObject(w, doc, "")
	fmt.Fprintln(w)
	return nil
}

// renderObject writes one (sub)object: scalars first as a table, then the
// nested objects as subsections.
func renderObject(w io.Writer, obj map[string]any, prefix string) {
	keys := make([]string, 0, len(obj))
	for k := range obj {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var scalars, prose, nested []string
	for _, k := range keys {
		switch v := obj[k].(type) {
		case map[string]any:
			nested = append(nested, k)
		case []any:
			// Arrays of objects (BENCH_engines' workloads, BENCH_pool's
			// jobs) are sections, not cells; arrays of scalars stay inline.
			if containsObject(v) {
				nested = append(nested, k)
			} else {
				scalars = append(scalars, k)
			}
		case string:
			if len(v) > 80 {
				prose = append(prose, k)
			} else {
				scalars = append(scalars, k)
			}
		default:
			scalars = append(scalars, k)
		}
	}
	if len(scalars) > 0 {
		fmt.Fprintln(w, "| field | value |")
		fmt.Fprintln(w, "|---|---|")
		for _, k := range scalars {
			fmt.Fprintf(w, "| %s | %s |\n", k, renderValue(obj[k]))
		}
		fmt.Fprintln(w)
	}
	for _, k := range prose {
		fmt.Fprintf(w, "> **%s:** %s\n\n", k, obj[k])
	}
	for _, k := range nested {
		label := k
		if prefix != "" {
			label = prefix + " · " + k
		}
		switch v := obj[k].(type) {
		case map[string]any:
			fmt.Fprintf(w, "**%s**\n\n", label)
			renderObject(w, v, label)
		case []any:
			for i, elem := range v {
				item := fmt.Sprintf("%s · #%d", label, i+1)
				fmt.Fprintf(w, "**%s**\n\n", item)
				if m, ok := elem.(map[string]any); ok {
					renderObject(w, m, item)
				} else {
					fmt.Fprintf(w, "%s\n\n", renderValue(elem))
				}
			}
		}
	}
}

// containsObject reports whether the array holds any JSON object.
func containsObject(v []any) bool {
	for _, e := range v {
		if _, ok := e.(map[string]any); ok {
			return true
		}
	}
	return false
}

// renderValue formats a leaf: JSON numbers without the float64 artifacts,
// arrays inline.
func renderValue(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'f', -1, 64)
	case []any:
		parts := make([]string, len(x))
		for i, e := range x {
			parts[i] = renderValue(e)
		}
		return strings.Join(parts, ", ")
	case nil:
		return "—"
	default:
		return fmt.Sprintf("%v", x)
	}
}
