package bench

import (
	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/listcolor"
)

// Workload is a named graph family instantiation used across experiments.
type Workload struct {
	Name string
	G    *graph.Graph
}

// Families returns the standard six-family workload set at a given size
// budget (n nodes, degree parameter d).
func Families(n, d int, seed uint64) []Workload {
	if d >= n {
		d = n - 1
	}
	return []Workload{
		{Name: "regular", G: graph.RandomRegular(n, d, seed)},
		{Name: "bipartite", G: graph.RandomBipartiteRegular(n/2, min(d, n/2), seed)},
		{Name: "gnp", G: graph.GNP(n, float64(d)/float64(n), seed)},
		{Name: "powerlaw", G: graph.PowerLaw(n, 2.5, d, seed)},
		{Name: "geometric", G: geometricWithDegree(n, d, seed)},
		{Name: "tree", G: graph.RandomTree(n, seed)},
	}
}

// geometricWithDegree picks a radius so the expected average degree is ~d.
func geometricWithDegree(n, d int, seed uint64) *graph.Graph {
	// Expected degree ≈ n·π·r²; solve for r.
	r := 0.564 * sqrt(float64(d)/float64(n)) // sqrt(d/(nπ))
	return graph.RandomGeometric(n, r, seed)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// uniform builds the (2Δ−1) uniform instance of a graph.
func uniform(g *graph.Graph) *listcolor.Instance {
	c := 2*g.MaxDegree() - 1
	if c < 1 {
		c = 1
	}
	return listcolor.NewUniform(g, c)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
