package bench

import (
	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/listcolor"
)

// Workload is a named graph family instantiation used across experiments.
type Workload struct {
	Name string
	G    *graph.Graph
}

// Families returns the standard six-family workload set at a given size
// budget (n nodes, degree parameter d).
func Families(n, d int, seed uint64) []Workload {
	if d >= n {
		d = n - 1
	}
	return []Workload{
		{Name: "regular", G: graph.RandomRegular(n, d, seed)},
		{Name: "bipartite", G: graph.RandomBipartiteRegular(n/2, min(d, n/2), seed)},
		{Name: "gnp", G: graph.GNP(n, float64(d)/float64(n), seed)},
		{Name: "powerlaw", G: graph.PowerLaw(n, 2.5, d, seed)},
		{Name: "geometric", G: geometricWithDegree(n, d, seed)},
		{Name: "tree", G: graph.RandomTree(n, seed)},
	}
}

// EdgeOp is one update of a dynamic-graph churn stream.
type EdgeOp struct {
	// Delete selects deletion of the (present) edge {U, V}; otherwise the
	// (absent) pair is inserted.
	Delete bool
	U, V   int
}

// Churn returns a deterministic single-edge update stream over g: at each
// step a pseudo-random node pair is drawn and the present/absent state of
// that edge is flipped — delete if live, insert if not. The stream is
// internally consistent (it simulates the live-edge overlay it drives), so
// every delete names a live edge and every insert an absent one. This is
// the update-stream workload of BenchmarkDynamic and the dynamic-coloring
// experiments.
func Churn(g *graph.Graph, count int, seed uint64) []EdgeOp {
	return ChurnCapped(g, count, 0, seed)
}

// ChurnCapped is Churn with a degree cap: when maxDeg > 0, inserts that
// would push an endpoint beyond maxDeg are skipped, so the graph's maximum
// degree never exceeds max(initial Δ, maxDeg) over the whole stream. With
// maxDeg = the initial Δ, a fixed palette of Δ+1 stays valid — and tight —
// at every update, which is the workload of the vizing-augmentation
// benchmarks and property tests. maxDeg 0 disables the cap.
func ChurnCapped(g *graph.Graph, count, maxDeg int, seed uint64) []EdgeOp {
	live := make(map[[2]int]bool, g.M())
	deg := make([]int, g.N())
	for _, e := range g.Edges() {
		live[[2]int{int(e.U), int(e.V)}] = true
		deg[e.U]++
		deg[e.V]++
	}
	s := seed
	nextRand := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	n := g.N()
	ops := make([]EdgeOp, 0, count)
	for len(ops) < count {
		u := int(nextRand() % uint64(n))
		v := int(nextRand() % uint64(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if live[key] {
			ops = append(ops, EdgeOp{Delete: true, U: u, V: v})
			live[key] = false
			deg[u]--
			deg[v]--
		} else if maxDeg <= 0 || (deg[u] < maxDeg && deg[v] < maxDeg) {
			ops = append(ops, EdgeOp{U: u, V: v})
			live[key] = true
			deg[u]++
			deg[v]++
		}
	}
	return ops
}

// geometricWithDegree picks a radius so the expected average degree is ~d.
func geometricWithDegree(n, d int, seed uint64) *graph.Graph {
	// Expected degree ≈ n·π·r²; solve for r.
	r := 0.564 * sqrt(float64(d)/float64(n)) // sqrt(d/(nπ))
	return graph.RandomGeometric(n, r, seed)
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// uniform builds the (2Δ−1) uniform instance of a graph.
func uniform(g *graph.Graph) *listcolor.Instance {
	c := 2*g.MaxDegree() - 1
	if c < 1 {
		c = 1
	}
	return listcolor.NewUniform(g, c)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
