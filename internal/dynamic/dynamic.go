// Package dynamic maintains a proper edge coloring of a graph across edge
// insertions and deletions with locality-bounded repair — the paper's own
// framing of (deg(e)+1)-list edge coloring as the tool for extending a
// partial coloring (§1, citing [Bar15]), applied incrementally.
//
// The underlying graph.Graph is deliberately append-only, so a Coloring owns
// a mutable view over it: an insert appends an edge (or revives a
// tombstoned one), a delete tombstones an edge via the active-edge overlay.
// Colors are maintained so that the active edges always form a proper
// coloring from the palette {0, …, Palette−1}:
//
//   - Delete just frees the edge's color — removing an edge can never break
//     properness.
//
//   - Insert first tries the greedy step: if a palette color is free at both
//     endpoints, take the smallest one. With the default auto palette
//     (2Δ−1, grown as Δ grows) this always succeeds by pigeonhole, since
//     deg(e) ≤ 2Δ−2 < 2Δ−1.
//
//   - Under a tight fixed palette the greedy step can fail: every palette
//     color is held by some edge at u or at v. Then the coloring is repaired
//     inside the conflict region with a target-color recoloring: pick a
//     target color t for the new edge, uncolor the region — the edges at u
//     and v holding t (at most one per endpoint, t-colored edges being
//     pairwise non-conflicting) — and re-solve them as a list coloring
//     subinstance over the induced subgraph with lists from palette∖{t},
//     pruned of the colors of their fixed frontier neighbors (exactly the
//     pruning ExtendColoring performs). On success the region takes its new
//     colors and the new edge takes t.
//
//     Should every target fail, a final tier runs before the insert is
//     rejected: one Vizing fan/alternating-path augmentation
//     (internal/vizing) colors the new edge directly, recoloring the fan
//     around one endpoint and flipping one Kempe chain. The augmentation
//     succeeds whenever the palette has at least Δ+1 colors (Vizing's
//     theorem), so ErrPaletteExhausted is only reachable for palettes
//     strictly below Δ+1. Unlike the target-color repair, the augmentation
//     is a sequential in-place operation — it involves no solver, engine,
//     or pool job — and its cost is O(fan·Δ + path), path being the one
//     flipped alternating chain.
//
//     The region never includes the new edge itself, and that is what makes
//     repair strictly stronger than greedy: a slack-1 list instance that
//     contains the new edge e needs |palette| > deg(e), and by pigeonhole a
//     free color then already existed at the endpoints — such a "repair"
//     could never fire. Excluding e, the subinstance for target t is
//     feasible whenever each recolored neighbor f keeps a color: more than
//     deg_region(f) pruned colors survive whenever |palette| > deg(f) —
//     the Barenboim–Elkin locality argument, independent of deg(e). Targets
//     are tried in ascending order, first with the minimal region (the
//     t-colored neighbors), then with the full neighborhood of e (which
//     spreads the constraints when a minimal-region list prunes to empty);
//     only if every target fails is the insert rejected.
//
// The repair solver is injected (Repairer), so the same machinery runs on a
// one-shot engine or as jobs on a shared serving pool.
package dynamic

import (
	"context"
	"errors"
	"fmt"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/verify"
	"github.com/distec/distec/internal/vizing"
)

// Repairer completes a partial coloring of the repair subgraph: edges with
// partial[e] ≥ 0 keep their color, every other edge must receive a color
// from lists[e]; the returned slice maps the subgraph's EdgeIDs to colors.
// distec.ExtendColoring (one-shot or pool-backed) has exactly this shape.
type Repairer func(sub *graph.Graph, partial []int, lists [][]int, palette int) ([]int, error)

// Options configures New.
type Options struct {
	// Palette fixes the palette size. 0 selects the auto palette: it starts
	// at max(2Δ−1, 1) and grows as inserts raise Δ, so the greedy step always
	// succeeds and colors stay within the classic (2Δ−1)-coloring bound.
	// A fixed palette never grows; inserts whose conflict region cannot be
	// repaired for any target color fall back to one Vizing augmentation,
	// and only if that also fails — possible only for palettes below Δ+1 —
	// the insert fails with ErrPaletteExhausted, leaving the active
	// coloring unchanged.
	Palette int
	// AutoDeltaPlusOne switches the auto palette (Palette 0) from 2Δ−1 to
	// Δ+1: it starts at max(Δ+1, 1) and grows to Δ+1 as inserts raise Δ,
	// so the session always holds the tightest guaranteed palette instead
	// of the classic bound. A Δ+1 palette is tight — inserts regularly
	// fall through to the repair and augmentation tiers (never to a
	// rejection: the palette grows with Δ, so augmentation always
	// succeeds). distec selects this for Vizing-algorithm sessions.
	AutoDeltaPlusOne bool
	// Repair solves conflict-region subinstances. Required when Palette > 0
	// or AutoDeltaPlusOne is set; the 2Δ−1 auto palette never needs it
	// (may be nil then).
	Repair Repairer
}

// Stats counts a Coloring's update traffic.
type Stats struct {
	// Inserts and Deletes count successful updates.
	Inserts uint64 `json:"inserts"`
	Deletes uint64 `json:"deletes"`
	// GreedyInserts counts inserts colored by a free palette color at both
	// endpoints; Repairs counts inserts that recolored a conflict region;
	// Augmentations counts inserts served by the Vizing fan/path fallback
	// after every target-color repair failed.
	// Inserts = GreedyInserts + Repairs + Augmentations.
	GreedyInserts uint64 `json:"greedy_inserts"`
	Repairs       uint64 `json:"repairs"`
	Augmentations uint64 `json:"augmentations"`
	// RepairedEdges totals the edges recolored across all repairs, and
	// AugmentedEdges across all augmentations — the locality bill actually
	// paid, versus ActiveEdges per update for full recoloring.
	RepairedEdges  uint64 `json:"repaired_edges"`
	AugmentedEdges uint64 `json:"augmented_edges"`
	// Palette is the current palette size; ActiveEdges the live edge count.
	Palette     int `json:"palette"`
	ActiveEdges int `json:"active_edges"`
}

// ErrPaletteExhausted marks inserts rejected because the fixed palette
// cannot accommodate the new edge: no target-color repair of its conflict
// region succeeded and the Vizing augmentation fallback found a vertex with
// no free color. By Vizing's theorem this is only reachable for palettes
// strictly below Δ+1. The coloring is unchanged.
var ErrPaletteExhausted = errors.New("dynamic: fixed palette exhausted")

// ErrEdgeInactive marks deletes of an edge that is not active: already
// deleted (tombstoned) or never inserted. The overlay is unchanged — in
// particular a double delete can never free a color twice.
var ErrEdgeInactive = errors.New("dynamic: edge not active")

// Coloring is a proper edge coloring maintained under edge updates. Not
// safe for concurrent use; the public distec.Dynamic wrapper adds locking.
type Coloring struct {
	g       *graph.Graph
	active  []bool
	colors  []int
	deg     []int // active degree per node
	palette int
	fixed   bool
	autoD1  bool // auto palette tracks Δ+1 instead of 2Δ−1
	repair  Repairer
	// aug is the Vizing fallback's reusable scratch, created on first use;
	// it re-reads the live coloring on every call, so it stays correct
	// across the greedy and repair tiers' own writes.
	aug *vizing.Augmenter

	inserts, deletes, greedy, repairs, repairedEdges uint64
	augments, augmentedEdges                         uint64

	// usedColor is the color-indexed scratch of the greedy and region-list
	// steps (stamped, never cleared — same idiom as extendInstance's prune
	// scratch): usedColor[c] == stamp means color c is taken in the current
	// scan.
	usedColor []int
	stamp     int
	// nodeMark/edgeMark are node- and edge-indexed stamps for region
	// collection.
	nodeMark []int
	edgeMark []int
}

// New wraps an existing proper coloring of g for incremental maintenance.
// colors must assign a color ≥ 0 to every edge of g; it is validated once
// (O(m)) and copied. The graph is owned by the Coloring afterwards: it must
// not be mutated except through Insert/Delete.
func New(g *graph.Graph, colors []int, opts Options) (*Coloring, error) {
	if len(colors) != g.M() {
		return nil, fmt.Errorf("dynamic: %d colors for %d edges", len(colors), g.M())
	}
	maxColor := -1
	for _, c := range colors {
		if c > maxColor {
			maxColor = c
		}
	}
	palette := opts.Palette
	if palette <= 0 {
		if opts.AutoDeltaPlusOne {
			palette = g.MaxDegree() + 1
		} else {
			palette = 2*g.MaxDegree() - 1
		}
		if palette < maxColor+1 {
			palette = maxColor + 1
		}
		if palette < 1 {
			palette = 1
		}
	}
	active := make([]bool, g.M())
	for e := range active {
		active[e] = true
	}
	return build(g, active, colors, palette, opts)
}

// Restore wraps previously exported overlay state — the Active/Colors/
// Palette triple of a running Coloring, e.g. loaded from a snapshot — for
// continued incremental maintenance. active selects the live edges
// (tombstones keep their EdgeIDs, which later inserts may revive);
// colors[e] is ignored for tombstones; livePalette is the palette that was
// in force, which for auto-palette sessions (opts.Palette 0) may exceed the
// value New would derive, since auto palettes only ever grow. The state is
// validated like New validates a fresh coloring; the update counters start
// at zero.
func Restore(g *graph.Graph, active []bool, colors []int, livePalette int, opts Options) (*Coloring, error) {
	if len(colors) != g.M() || len(active) != g.M() {
		return nil, fmt.Errorf("dynamic: active/colors sized %d/%d for %d edges", len(active), len(colors), g.M())
	}
	if livePalette < 1 {
		return nil, fmt.Errorf("dynamic: live palette %d below 1", livePalette)
	}
	if opts.Palette > 0 && livePalette != opts.Palette {
		return nil, fmt.Errorf("dynamic: live palette %d disagrees with the fixed palette %d", livePalette, opts.Palette)
	}
	return build(g, append([]bool(nil), active...), colors, livePalette, opts)
}

// build is the shared constructor behind New and Restore: it validates the
// coloring over the active edges and against the palette, and assembles the
// Coloring (taking ownership of active, copying colors). Tombstones are
// normalized to color −1.
func build(g *graph.Graph, active []bool, colors []int, palette int, opts Options) (*Coloring, error) {
	if err := verify.EdgeColoring(g, active, colors); err != nil {
		return nil, fmt.Errorf("dynamic: initial coloring invalid: %w", err)
	}
	fixed := opts.Palette > 0
	if (fixed || opts.AutoDeltaPlusOne) && opts.Repair == nil {
		if fixed {
			return nil, fmt.Errorf("dynamic: fixed palette requires a Repairer")
		}
		return nil, fmt.Errorf("dynamic: the Δ+1 auto palette requires a Repairer")
	}
	c := &Coloring{
		g:        g,
		active:   active,
		colors:   append([]int(nil), colors...),
		deg:      make([]int, g.N()),
		palette:  palette,
		fixed:    fixed,
		autoD1:   !fixed && opts.AutoDeltaPlusOne,
		repair:   opts.Repair,
		nodeMark: make([]int, g.N()),
	}
	for e, a := range c.active {
		if !a {
			c.colors[e] = -1
			continue
		}
		if c.colors[e] >= palette {
			return nil, fmt.Errorf("dynamic: edge %d colored %d outside palette [0,%d)", e, c.colors[e], palette)
		}
		u, v := g.Endpoints(graph.EdgeID(e))
		c.deg[u]++
		c.deg[v]++
	}
	c.edgeMark = make([]int, g.M())
	return c, nil
}

// Graph returns the underlying graph (including tombstoned edges). Do not
// mutate it.
func (c *Coloring) Graph() *graph.Graph { return c.g }

// Palette returns the current palette size.
func (c *Coloring) Palette() int { return c.palette }

// Color returns edge e's color, −1 if e is tombstoned.
func (c *Coloring) Color(e graph.EdgeID) int {
	if !c.active[e] {
		return -1
	}
	return c.colors[e]
}

// Colors returns a fresh copy of the full coloring by EdgeID, −1 for
// tombstoned edges.
func (c *Coloring) Colors() []int {
	out := append([]int(nil), c.colors...)
	for e, a := range c.active {
		if !a {
			out[e] = -1
		}
	}
	return out
}

// Active returns a fresh copy of the active-edge overlay by EdgeID.
func (c *Coloring) Active() []bool { return append([]bool(nil), c.active...) }

// Repairs returns the number of inserts served by conflict-region repair so
// far — an O(1) accessor for callers attributing individual updates (Stats
// recounts the live edges, which is O(m)).
func (c *Coloring) Repairs() uint64 { return c.repairs }

// Augments returns the number of inserts served by the Vizing augmentation
// fallback so far; an O(1) accessor like Repairs.
func (c *Coloring) Augments() uint64 { return c.augments }

// Stats returns a snapshot of the update counters.
func (c *Coloring) Stats() Stats {
	live := 0
	for _, a := range c.active {
		if a {
			live++
		}
	}
	return Stats{
		Inserts:        c.inserts,
		Deletes:        c.deletes,
		GreedyInserts:  c.greedy,
		Repairs:        c.repairs,
		Augmentations:  c.augments,
		RepairedEdges:  c.repairedEdges,
		AugmentedEdges: c.augmentedEdges,
		Palette:        c.palette,
		ActiveEdges:    live,
	}
}

// Verify checks that the maintained coloring is proper over the active
// edges and stays inside the palette. O(m); intended for tests and the
// daemon's server-side checks.
func (c *Coloring) Verify() error {
	if err := verify.EdgeColoring(c.g, c.active, c.colors); err != nil {
		return err
	}
	for e, a := range c.active {
		if a && c.colors[e] >= c.palette {
			return fmt.Errorf("dynamic: edge %d colored %d outside palette [0,%d)", e, c.colors[e], c.palette)
		}
	}
	return nil
}

// nextStamp advances the scratch stamp shared by the stamped scans.
func (c *Coloring) nextStamp() int {
	c.stamp++
	return c.stamp
}

// freeColor returns the smallest palette color not held by an active edge
// at u or at v, or −1 if every palette color is taken.
func (c *Coloring) freeColor(u, v int) int {
	if len(c.usedColor) < c.palette {
		// Fresh zeroed scratch: zero never matches a stamp (stamps start at
		// 1 and only grow), so no reset is needed.
		c.usedColor = make([]int, c.palette)
	}
	stamp := c.nextStamp()
	mark := func(w int) {
		for _, f := range c.g.Incident(w) {
			if c.active[f] {
				c.usedColor[c.colors[f]] = stamp
			}
		}
	}
	mark(u)
	mark(v)
	for col := 0; col < c.palette; col++ {
		if c.usedColor[col] != stamp {
			return col
		}
	}
	return -1
}

// Insert adds the active edge {u, v} and colors it, returning its EdgeID
// and color. The coloring stays proper: either a greedily chosen free
// color, or a locality-bounded repair of the conflict region (see the
// package comment). On error the coloring is unchanged.
func (c *Coloring) Insert(u, v int) (graph.EdgeID, int, error) {
	if u == v {
		return -1, -1, fmt.Errorf("dynamic: self-loop at node %d", u)
	}
	if u < 0 || u >= c.g.N() || v < 0 || v >= c.g.N() {
		return -1, -1, fmt.Errorf("dynamic: edge {%d,%d} out of range [0,%d)", u, v, c.g.N())
	}
	id, exists := c.g.HasEdge(u, v)
	if exists && c.active[id] {
		return -1, -1, fmt.Errorf("dynamic: duplicate edge {%d,%d}", u, v)
	}
	// Auto palette: grow with the degrees — to 2Δ−1, under which the greedy
	// step below always finds a free color (deg(e) ≤ 2Δ−2), or in Δ+1 mode
	// just to Δ+1, under which the repair/augmentation ladder always
	// serves the insert (Vizing's theorem; the palette covers the
	// post-insert degree).
	if !c.fixed {
		for _, d := range []int{c.deg[u] + 1, c.deg[v] + 1} {
			p := 2*d - 1
			if c.autoD1 {
				p = d + 1
			}
			if p > c.palette {
				c.palette = p
			}
		}
	}
	if col := c.freeColor(u, v); col >= 0 {
		id = c.commitInsert(id, exists, u, v)
		c.colors[id] = col
		c.greedy++
		c.inserts++
		return id, col, nil
	}
	// Greedy failed (tight fixed palette): repair the conflict region.
	id = c.commitInsert(id, exists, u, v)
	col, err := c.repairRegion(id)
	if err != nil && errors.Is(err, ErrPaletteExhausted) {
		// Fallback tier: no target color worked, so run one Vizing fan/
		// alternating-path augmentation on the live coloring. It succeeds
		// whenever the palette is at least Δ+1 — strictly beyond the
		// target-color repair, whose subinstances need per-edge slack.
		rep, aerr := c.augmentFallback(id)
		switch {
		case aerr == nil:
			c.augments++
			c.augmentedEdges += uint64(rep.Recolored)
			c.inserts++
			return id, rep.Color, nil
		case !errors.Is(aerr, vizing.ErrPaletteTooSmall):
			// Anything but "no free color" is an internal defect (a
			// corrupted coloring, a solver bug): surface it loudly instead
			// of masking it as the documented — and at palettes ≥ Δ+1
			// provably impossible — palette rejection.
			err = fmt.Errorf("dynamic: augmentation fallback failed: %w", aerr)
		}
	}
	if err != nil {
		// Roll the insert back: tombstone the new edge and restore degrees;
		// region colors were not touched (repairRegion writes only on
		// success, and a failed augmentation undoes itself). The edge itself
		// stays in the append-only graph as a tombstone, exactly as after a
		// delete.
		c.active[id] = false
		c.deg[u]--
		c.deg[v]--
		return -1, -1, err
	}
	c.repairs++
	c.inserts++
	return id, col, nil
}

// augmentFallback colors the just-inserted, still uncolored edge e by one
// Vizing augmentation (see internal/vizing). On error nothing is written.
func (c *Coloring) augmentFallback(e graph.EdgeID) (vizing.Report, error) {
	if c.aug == nil {
		c.aug = vizing.NewAugmenter()
	}
	return c.aug.Augment(c.g, c.active, c.colors, c.palette, e)
}

// commitInsert materializes the edge in the overlay: revive a tombstone or
// append to the graph, growing the per-edge arrays.
func (c *Coloring) commitInsert(id graph.EdgeID, exists bool, u, v int) graph.EdgeID {
	if !exists {
		id = c.g.MustAddEdge(u, v)
		c.active = append(c.active, false)
		c.colors = append(c.colors, -1)
		c.edgeMark = append(c.edgeMark, 0)
	}
	c.active[id] = true
	c.deg[u]++
	c.deg[v]++
	return id
}

// Delete tombstones the active edge {u, v} and frees its color. Removing an
// edge never breaks properness, so no repair runs. Deleting an edge that is
// not active — already tombstoned (a double delete) or never inserted —
// fails with ErrEdgeInactive and changes nothing: the color a tombstone
// freed on its first delete is never freed again.
func (c *Coloring) Delete(u, v int) error {
	id, ok := c.g.HasEdge(u, v)
	if !ok || !c.active[id] {
		return fmt.Errorf("no active edge {%d,%d}: %w", u, v, ErrEdgeInactive)
	}
	c.active[id] = false
	c.colors[id] = -1
	c.deg[u]--
	c.deg[v]--
	c.deletes++
	return nil
}

// repairRegion repairs the conflict region of the just-inserted, still
// uncolored edge e by target-color recoloring (see the package comment):
// for each candidate target t — first over the minimal region (the t-colored
// edges at e's endpoints), then over the full neighborhood of e — uncolor
// the region, re-solve it as a list subinstance over the induced subgraph
// with lists from palette∖{t}, and on success give e the color t. Only a
// successful attempt writes any color back; it returns e's color.
func (c *Coloring) repairRegion(e graph.EdgeID) (int, error) {
	var lastErr error
	for _, full := range []bool{false, true} {
		for t := 0; t < c.palette; t++ {
			col, err := c.tryRepair(e, t, full)
			if err == nil {
				return col, nil
			}
			// A cancelled or expired batch is an aborted insert, not an
			// infeasible one: stop trying targets and surface the context
			// error itself, so the caller neither reports palette
			// exhaustion nor falls through to the augmentation tier (which
			// would let a dead job keep "succeeding").
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return -1, err
			}
			lastErr = err
		}
	}
	eu, ev := c.g.Endpoints(e)
	return -1, fmt.Errorf("%w: no target color can repair the conflict region of {%d,%d} within palette %d (last attempt: %v)",
		ErrPaletteExhausted, eu, ev, c.palette, lastErr)
}

// tryRepair attempts one target-color repair of the uncolored edge e: the
// region — e's active neighbors holding color t, or all of them when
// full — is uncolored and re-solved over the induced subgraph from lists
// palette∖{t} (pruned of fixed frontier colors by the Repairer, which for
// distec.ExtendColoring reuses the color-indexed prune scratch of
// extendInstance). Infeasible targets surface as Repairer errors (the
// subinstance fails slack validation) and nothing is written back.
func (c *Coloring) tryRepair(e graph.EdgeID, t int, full bool) (int, error) {
	// Region = the neighbors of e to recolor; e itself never joins the
	// subinstance (a slack-1 instance containing e would need
	// palette > deg(e), and then greedy would have succeeded already).
	var region []graph.EdgeID
	estamp := c.nextStamp()
	c.edgeMark[e] = estamp // excluded from region and frontier scans
	c.g.ForEachEdgeNeighbor(e, func(f graph.EdgeID) {
		if c.active[f] && c.edgeMark[f] != estamp && (full || c.colors[f] == t) {
			c.edgeMark[f] = estamp
			region = append(region, f)
		}
	})
	if len(region) == 0 {
		// t is free at both endpoints; the greedy step handles this, so a
		// repair attempt reaching here means the color became free only for
		// this target — take it directly.
		c.colors[e] = t
		return t, nil
	}
	// Frontier = the active edges adjacent to the region (minus e), which
	// keep their colors and constrain the region's lists.
	subEdges := append([]graph.EdgeID(nil), region...)
	for _, f := range region {
		c.g.ForEachEdgeNeighbor(f, func(nb graph.EdgeID) {
			if c.active[nb] && c.edgeMark[nb] != estamp {
				c.edgeMark[nb] = estamp
				subEdges = append(subEdges, nb)
			}
		})
	}
	// Induce the subgraph over the region ∪ frontier edges: remap their
	// endpoints to a compact node set.
	nstamp := c.nextStamp()
	subOf := make(map[int]int)
	for _, f := range subEdges {
		u, v := c.g.Endpoints(f)
		for _, w := range []int{u, v} {
			if c.nodeMark[w] != nstamp {
				c.nodeMark[w] = nstamp
				subOf[w] = len(subOf)
			}
		}
	}
	sub := graph.New(len(subOf))
	partial := make([]int, len(subEdges))
	lists := make([][]int, len(subEdges))
	// The shared region list palette∖{t}; frontier lists are ignored by the
	// extension (their entries are fixed) and share the same slice.
	minusT := make([]int, 0, c.palette-1)
	for col := 0; col < c.palette; col++ {
		if col != t {
			minusT = append(minusT, col)
		}
	}
	regionLen := len(region)
	for i, f := range subEdges {
		u, v := c.g.Endpoints(f)
		sub.MustAddEdge(subOf[u], subOf[v]) // sub EdgeID == i: insertion order
		lists[i] = minusT
		if i < regionLen {
			partial[i] = -1 // region edges to recolor
		} else {
			partial[i] = c.colors[f] // frontier edges keep their colors
		}
	}
	subColors, err := c.repair(sub, partial, lists, c.palette)
	if err != nil {
		return -1, fmt.Errorf("dynamic: repair with target %d failed: %w", t, err)
	}
	if len(subColors) != len(subEdges) {
		return -1, fmt.Errorf("dynamic: repairer returned %d colors for %d edges", len(subColors), len(subEdges))
	}
	// Defensive re-check before committing: the repaired region must be
	// proper against the full graph (its neighbors all live inside the
	// subgraph, so this is a bounded scan, and it turns any solver
	// regression into a loud error instead of silent corruption), and t
	// must have become free for e.
	regionIdx := make(map[graph.EdgeID]int, regionLen)
	for i, f := range region {
		regionIdx[f] = i
	}
	for i, f := range region {
		col := subColors[i]
		if col < 0 || col >= c.palette || col == t {
			return -1, fmt.Errorf("dynamic: repair colored edge %d with %d outside palette∖{%d}", f, col, t)
		}
		var conflict error
		c.g.ForEachEdgeNeighbor(f, func(nb graph.EdgeID) {
			if conflict != nil || !c.active[nb] || nb == e {
				return
			}
			nbCol := c.colors[nb]
			if j, inRegion := regionIdx[nb]; inRegion {
				nbCol = subColors[j]
			}
			if nbCol == col {
				conflict = fmt.Errorf("dynamic: repair left edges %d and %d both colored %d", f, nb, col)
			}
		})
		if conflict != nil {
			return -1, conflict
		}
	}
	var clash error
	c.g.ForEachEdgeNeighbor(e, func(nb graph.EdgeID) {
		if clash != nil || !c.active[nb] {
			return
		}
		nbCol := c.colors[nb]
		if j, inRegion := regionIdx[nb]; inRegion {
			nbCol = subColors[j]
		}
		if nbCol == t {
			clash = fmt.Errorf("dynamic: target %d still taken by edge %d after repair", t, nb)
		}
	})
	if clash != nil {
		return -1, clash
	}
	for i, f := range region {
		c.colors[f] = subColors[i]
	}
	c.colors[e] = t
	c.repairedEdges += uint64(regionLen)
	return t, nil
}
