package dynamic

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/listcolor"
)

// greedyRepairer is a centralized reference Repairer: color the uncolored
// edges in EdgeID order, each taking the smallest list color free among its
// neighbors. Any order succeeds because every uncolored edge's list exceeds
// its degree (the subinstances Coloring builds are (deg(e)+1)-list
// instances).
func greedyRepairer(sub *graph.Graph, partial []int, lists [][]int, palette int) ([]int, error) {
	colors := append([]int(nil), partial...)
	for e := 0; e < sub.M(); e++ {
		if colors[e] >= 0 {
			continue
		}
		taken := make(map[int]bool)
		sub.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if colors[f] >= 0 {
				taken[colors[f]] = true
			}
		})
		chosen := -1
		for _, c := range lists[e] {
			if !taken[c] {
				chosen = c
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("greedyRepairer: edge %d has no free color", e)
		}
		colors[e] = chosen
	}
	return colors, nil
}

// seqColors colors g greedily for test setup.
func seqColors(t *testing.T, g *graph.Graph, palette int) []int {
	t.Helper()
	in := listcolor.NewUniform(g, palette)
	colors, err := listcolor.GreedySequential(in)
	if err != nil {
		t.Fatalf("GreedySequential: %v", err)
	}
	return colors
}

func TestAutoPaletteStream(t *testing.T) {
	g := graph.Cycle(12)
	c, err := New(g, seqColors(t, g, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Mixed inserts and deletes; auto palette must grow and stay greedy.
	ops := []struct {
		del  bool
		u, v int
	}{
		{false, 0, 2}, {false, 0, 3}, {false, 0, 4}, {false, 0, 5},
		{true, 0, 1}, {false, 1, 3}, {false, 5, 7}, {true, 2, 3},
		{false, 0, 1}, // revive the tombstoned edge
		{false, 2, 3}, // revive the other
	}
	for i, op := range ops {
		if op.del {
			if err := c.Delete(op.u, op.v); err != nil {
				t.Fatalf("op %d Delete(%d,%d): %v", i, op.u, op.v, err)
			}
		} else {
			if _, _, err := c.Insert(op.u, op.v); err != nil {
				t.Fatalf("op %d Insert(%d,%d): %v", i, op.u, op.v, err)
			}
		}
		if err := c.Verify(); err != nil {
			t.Fatalf("after op %d: %v", i, err)
		}
	}
	st := c.Stats()
	if st.Repairs != 0 {
		t.Fatalf("auto palette should never repair, got %d repairs", st.Repairs)
	}
	if st.Inserts != 8 || st.Deletes != 2 {
		t.Fatalf("stats = %+v, want 8 inserts / 2 deletes", st)
	}
	if got := c.Graph().MaxDegree(); c.Palette() < 2*got-1 {
		// Palette counts tombstones conservatively only through active
		// degrees, so compare against the active Δ implied by the stream.
		t.Fatalf("palette %d below 2Δ−1 for Δ=%d", c.Palette(), got)
	}
}

// TestFixedPaletteRepairs drives the deterministic scenario where greedy
// must fail but a target-color repair succeeds: both endpoints of the new
// edge together hold every palette color, yet recoloring the target-colored
// neighbors frees a color.
func TestFixedPaletteRepairs(t *testing.T) {
	// u=0 has edges {0,2}=0, {0,3}=1; v=1 has edges {1,4}=2, {1,5}=0.
	// Palette {0,1,2} is fully taken across the endpoints of {0,1}, so
	// greedy fails, but recoloring the 0-colored edges ({0,2}→2, {1,5}→1)
	// frees target 0.
	g := graph.New(6)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(1, 4)
	g.MustAddEdge(1, 5)
	colors := []int{0, 1, 2, 0}
	c, err := New(g, colors, Options{Palette: 3, Repair: greedyRepairer})
	if err != nil {
		t.Fatal(err)
	}
	id, col, err := c.Insert(0, 1)
	if err != nil {
		t.Fatalf("Insert(0,1): %v", err)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("after repair: %v", err)
	}
	if got := c.Color(id); got != col {
		t.Fatalf("Color(%d) = %d, want %d", id, got, col)
	}
	st := c.Stats()
	if st.Repairs != 1 || st.GreedyInserts != 0 {
		t.Fatalf("stats = %+v, want exactly one repair insert", st)
	}
	if st.RepairedEdges == 0 {
		t.Fatalf("stats = %+v, want repaired edges > 0", st)
	}
	if st.Palette != 3 {
		t.Fatalf("fixed palette changed: 3 -> %d", st.Palette)
	}
}

func TestInsertErrors(t *testing.T) {
	g := graph.Path(4)
	c, err := New(g, seqColors(t, g, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Insert(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, _, err := c.Insert(0, 9); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if _, _, err := c.Insert(0, 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := c.Delete(0, 3); err == nil {
		t.Fatal("delete of non-edge accepted")
	}
	if err := c.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(0, 1); err == nil {
		t.Fatal("double delete accepted")
	}
}

// TestPaletteExhausted pins the no-mutation contract of rejected inserts:
// closing a path of two edges into a triangle under palette 2 is genuinely
// uncolorable (a triangle needs 3 colors), so every repair target fails.
func TestPaletteExhausted(t *testing.T) {
	g := graph.Path(3) // edges {0,1}, {1,2}
	c, err := New(g, []int{0, 1}, Options{Palette: 2, Repair: greedyRepairer})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Colors()
	_, _, err = c.Insert(0, 2)
	if !errors.Is(err, ErrPaletteExhausted) {
		t.Fatalf("want ErrPaletteExhausted, got %v", err)
	}
	after := c.Colors()
	// The rejected insert must not have disturbed the active coloring (the
	// attempted edge stays as an inactive tombstone).
	for e := range before {
		if before[e] != after[e] {
			t.Fatalf("rejected insert changed edge %d: %d -> %d", e, before[e], after[e])
		}
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	// The tombstoned attempt must be insertable again once feasible: delete
	// a path edge and retry.
	if err := c.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Insert(0, 2); err != nil {
		t.Fatalf("retry after delete: %v", err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRepairFailureRollsBack pins that a failing Repairer leaves the
// coloring exactly as it was, with the attempted edge tombstoned out.
func TestRepairFailureRollsBack(t *testing.T) {
	g := graph.New(6)
	for _, ed := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}} {
		g.MustAddEdge(ed[0], ed[1])
	}
	palette := g.MaxEdgeDegree() + 2
	boom := errors.New("boom")
	failing := func(sub *graph.Graph, partial []int, lists [][]int, pal int) ([]int, error) {
		return nil, boom
	}
	c, err := New(g, seqColors(t, g, palette), Options{Palette: palette, Repair: failing})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Colors()
	// Find an insert that needs repair: try all non-edges until one fails
	// with boom.
	hitRepair := false
	for u := 0; u < g.N() && !hitRepair; u++ {
		for v := u + 1; v < g.N() && !hitRepair; v++ {
			if _, ok := g.HasEdge(u, v); ok {
				continue
			}
			_, _, err := c.Insert(u, v)
			if errors.Is(err, boom) {
				hitRepair = true
				break
			}
			if err == nil {
				if derr := c.Delete(u, v); derr != nil {
					t.Fatal(derr)
				}
			}
		}
	}
	if !hitRepair {
		t.Skip("no insert reached the repair path on this topology")
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("coloring corrupted by failed repair: %v", err)
	}
	after := c.Colors()
	for e := range before {
		if before[e] != after[e] {
			t.Fatalf("failed repair changed edge %d: %d -> %d", e, before[e], after[e])
		}
	}
}

// TestNewValidation pins constructor error cases.
func TestNewValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := New(g, []int{0}, Options{}); err == nil {
		t.Fatal("wrong-length colors accepted")
	}
	if _, err := New(g, []int{0, 0, 0}, Options{}); err == nil {
		t.Fatal("improper coloring accepted")
	}
	if _, err := New(g, []int{0, 1, 0}, Options{Palette: 2, Repair: greedyRepairer}); err != nil {
		t.Fatalf("valid fixed-palette construction rejected: %v", err)
	}
	if _, err := New(g, []int{0, 1, 0}, Options{Palette: 1, Repair: greedyRepairer}); err == nil {
		t.Fatal("colors outside fixed palette accepted")
	}
	if _, err := New(g, []int{0, 1, 0}, Options{Palette: 2}); err == nil {
		t.Fatal("fixed palette without Repairer accepted")
	}
}

// TestInsertPropagatesContextError: a Repairer failing with a context error
// means the batch was cancelled, not that the palette is infeasible — the
// insert must surface that error itself (not ErrPaletteExhausted), must not
// fall through to the augmentation tier, and must roll back cleanly.
func TestInsertPropagatesContextError(t *testing.T) {
	// Path 0-1-2 colored {0,1} under palette 2: inserting {0,2} finds no
	// free color (0 taken at node 0, 1 taken at node 2), so the repair
	// tier fires.
	g := graph.Path(3)
	calls := 0
	cancelled := func(sub *graph.Graph, partial []int, lists [][]int, palette int) ([]int, error) {
		calls++
		return nil, fmt.Errorf("repair job: %w", context.Canceled)
	}
	c, err := New(g, []int{0, 1}, Options{Palette: 2, Repair: cancelled})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.Insert(0, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if errors.Is(err, ErrPaletteExhausted) {
		t.Fatalf("context error misreported as palette exhaustion: %v", err)
	}
	if calls != 1 {
		t.Fatalf("cancelled repair retried %d times; must abort after the first target", calls)
	}
	if st := c.Stats(); st.Inserts != 0 || st.Augmentations != 0 {
		t.Fatalf("cancelled insert left traces: %+v", st)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreRoundTrip exports a live Coloring's state mid-stream, restores
// it into a fresh Coloring, and requires the restored session to behave
// identically under further updates — tombstones, revival, and palette
// growth included.
func TestRestoreRoundTrip(t *testing.T) {
	g := graph.Cycle(12)
	c, err := New(g, seqColors(t, g, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range [][2]int{{0, 2}, {0, 3}, {5, 7}} {
		if _, _, err := c.Insert(op[0], op[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete(0, 1); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(c.Graph().Clone(), c.Active(), c.Colors(), c.Palette(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Verify(); err != nil {
		t.Fatalf("restored state: %v", err)
	}
	if r.Palette() != c.Palette() {
		t.Fatalf("palette %d, want %d", r.Palette(), c.Palette())
	}
	// The same update applied to both must produce the same colors: degrees
	// and overlays agree, and the algorithms are deterministic.
	for i, op := range [][2]int{{0, 1}, {2, 6}, {3, 9}} {
		id1, col1, err1 := c.Insert(op[0], op[1])
		id2, col2, err2 := r.Insert(op[0], op[1])
		if err1 != nil || err2 != nil {
			t.Fatalf("op %d: %v / %v", i, err1, err2)
		}
		if id1 != id2 || col1 != col2 {
			t.Fatalf("op %d diverged: (%d,%d) vs (%d,%d)", i, id1, col1, id2, col2)
		}
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreValidation pins the rejection paths: mismatched sizes,
// improper colorings, palette disagreements, and missing repairers.
func TestRestoreValidation(t *testing.T) {
	g := graph.Cycle(6)
	colors := seqColors(t, g, 3)
	active := make([]bool, g.M())
	for e := range active {
		active[e] = true
	}
	if _, err := Restore(g, active[:3], colors, 3, Options{}); err == nil {
		t.Fatal("short active accepted")
	}
	if _, err := Restore(g, active, colors, 0, Options{}); err == nil {
		t.Fatal("zero live palette accepted")
	}
	if _, err := Restore(g, active, colors, 4, Options{Palette: 5, Repair: greedyRepairer}); err == nil {
		t.Fatal("live palette disagreeing with fixed palette accepted")
	}
	if _, err := Restore(g, active, colors, 3, Options{Palette: 3}); err == nil {
		t.Fatal("fixed palette without repairer accepted")
	}
	if _, err := Restore(g, active, colors, 1, Options{}); err == nil {
		t.Fatal("colors outside the live palette accepted")
	}
	bad := append([]int(nil), colors...)
	bad[0] = bad[1]
	if _, err := Restore(g, active, bad, 3, Options{}); err == nil {
		t.Fatal("improper coloring accepted")
	}
	// A coloring improper only among tombstoned edges is fine: tombstones
	// carry no color.
	tomb := append([]int(nil), colors...)
	tomb[0] = tomb[1]
	inactive := append([]bool(nil), active...)
	inactive[0] = false
	r, err := Restore(g, inactive, tomb, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Color(0) != -1 {
		t.Fatalf("tombstone color %d, want -1", r.Color(0))
	}
	if got := r.Stats().ActiveEdges; got != g.M()-1 {
		t.Fatalf("active edges %d, want %d", got, g.M()-1)
	}
}
