package local

import (
	"testing"

	"github.com/distec/distec/internal/graph"
)

func TestInducedSubsetOnly(t *testing.T) {
	g := graph.Complete(6)
	tp := EdgeConflict(g)
	keep := make([]bool, tp.N())
	for i := 0; i < tp.N(); i += 2 {
		keep[i] = true
	}
	sub, orig, back := Induced(tp, keep, nil)
	if err := sub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := (tp.N() + 1) / 2
	if sub.N() != want {
		t.Fatalf("sub.N = %d, want %d", sub.N(), want)
	}
	for ni, oi := range orig {
		if back[oi] != ni {
			t.Fatalf("mapping mismatch at new=%d orig=%d", ni, oi)
		}
		if !keep[oi] {
			t.Fatalf("dropped entity %d appears in subtopology", oi)
		}
	}
	for oi, ni := range back {
		if !keep[oi] && ni != -1 {
			t.Fatalf("dropped entity %d has mapping %d", oi, ni)
		}
	}
	// Every surviving link must exist in the original.
	for ni := range sub.Ports {
		for _, nj := range sub.Ports[ni] {
			oi, oj := orig[ni], orig[nj]
			found := false
			for _, p := range tp.Ports[oi] {
				if int(p) == oj {
					found = true
				}
			}
			if !found {
				t.Fatalf("link %d-%d not present in original", oi, oj)
			}
		}
	}
}

func TestInducedKeepLink(t *testing.T) {
	g := graph.Complete(5)
	tp := EdgeConflict(g)
	keep := make([]bool, tp.N())
	for i := range keep {
		keep[i] = true
	}
	// Keep only links whose endpoints have the same parity.
	keepLink := func(i, p int) bool { return i%2 == int(tp.Ports[i][p])%2 }
	sub, orig, _ := Induced(tp, keep, keepLink)
	if err := sub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for ni := range sub.Ports {
		for _, nj := range sub.Ports[ni] {
			if orig[ni]%2 != orig[nj]%2 {
				t.Fatalf("link %d-%d survived keepLink filter", orig[ni], orig[nj])
			}
		}
	}
}

func TestInducedMetaCarriedOver(t *testing.T) {
	g := graph.Star(5)
	tp := EdgeConflict(g)
	keep := []bool{true, false, true, true}
	sub, orig, _ := Induced(tp, keep, nil)
	for ni, oi := range orig {
		if sub.Meta[ni] != tp.Meta[oi] {
			t.Fatalf("meta pointer not carried for entity %d", oi)
		}
	}
}

func TestPairConflictMultiLink(t *testing.T) {
	// Two items occupying the same two keys: a virtual-graph multigraph.
	pairs := [][2]int64{{10, 20}, {10, 20}, {20, 30}}
	tp := PairConflict(pairs)
	if err := tp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Items 0 and 1 share BOTH keys: two parallel links.
	count := 0
	for _, j := range tp.Ports[0] {
		if j == 1 {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("items sharing two keys have %d links, want 2", count)
	}
	if tp.Degree(0) != 3 { // item 1 twice + item 2 once
		t.Fatalf("degree of item 0 = %d, want 3", tp.Degree(0))
	}
}

func TestPairConflictRejectsSelfKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PairConflict accepted an item with equal keys")
		}
	}()
	PairConflict([][2]int64{{5, 5}})
}

func TestPairConflictMatchesEdgeConflict(t *testing.T) {
	g := graph.RandomRegular(24, 4, 3)
	a := EdgeConflict(g)
	pairs := make([][2]int64, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		pairs[e] = [2]int64{int64(u), int64(v)}
	}
	b := PairConflict(pairs)
	if a.N() != b.N() || a.MaxDeg != b.MaxDeg {
		t.Fatalf("mismatch: %d/%d vs %d/%d", a.N(), a.MaxDeg, b.N(), b.MaxDeg)
	}
	for i := range a.Ports {
		if len(a.Ports[i]) != len(b.Ports[i]) {
			t.Fatalf("entity %d degree differs", i)
		}
		for p := range a.Ports[i] {
			if a.Ports[i][p] != b.Ports[i][p] || a.Back[i][p] != b.Back[i][p] {
				t.Fatalf("entity %d port %d wiring differs", i, p)
			}
		}
	}
}
