package local

import (
	"testing"

	"github.com/distec/distec/internal/graph"
)

// sleepy is a Sleeper protocol: entity i stays silent until round i+1, then
// announces its index to all neighbors and halts. It exercises skipping,
// waking by schedule, and waking by message arrival.
type sleepy struct {
	v     View
	heard int
	out   []int
}

func (s *sleepy) Send(r int) []Message {
	if r != s.v.Index+1 {
		return nil
	}
	msgs := make([]Message, s.v.Degree)
	for p := range msgs {
		msgs[p] = s.v.Index
	}
	return msgs
}

func (s *sleepy) Receive(r int, inbox []Message) bool {
	for _, m := range inbox {
		if m != nil {
			s.heard++
		}
	}
	return s.finished(r)
}

func (s *sleepy) ReceiveNone(r int) bool { return s.finished(r) }

func (s *sleepy) NextWake(r int) int { return s.v.Index + 1 }

func (s *sleepy) finished(r int) bool {
	if r >= s.v.Index+1 {
		s.out[s.v.Index] = s.heard
		return true
	}
	return false
}

func TestSleeperContractBothEngines(t *testing.T) {
	g := graph.Complete(9)
	tp := FromGraph(g)
	run := func(rn Runner) ([]int, Stats) {
		out := make([]int, tp.N())
		stats, err := rn(tp, func(v View) Protocol { return &sleepy{v: v, out: out} }, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out, stats
	}
	seqOut, seqStats := run(RunSequential)
	gorOut, gorStats := run(RunGoroutines)
	if seqStats != gorStats {
		t.Fatalf("stats differ: %+v vs %+v", seqStats, gorStats)
	}
	for i := range seqOut {
		if seqOut[i] != gorOut[i] {
			t.Fatalf("entity %d: seq %d vs gor %d", i, seqOut[i], gorOut[i])
		}
		// Entity i halts in round i+1 having heard announcements of all
		// lower-index neighbors (each announced in an earlier or equal
		// round; equal-round announcements are delivered that round).
		if seqOut[i] != i {
			t.Fatalf("entity %d heard %d announcements, want %d", i, seqOut[i], i)
		}
	}
	if seqStats.Rounds != tp.N() {
		t.Fatalf("rounds = %d, want %d", seqStats.Rounds, tp.N())
	}
}

// A Sleeper must still be woken early by an incoming message: entity 0
// broadcasts in round 1; all sleepers (wake round 10) must count it then,
// not at wake time.
type lateSleeper struct {
	v      View
	wokeAt int
	out    []int
}

func (l *lateSleeper) Send(r int) []Message {
	if l.v.Index == 0 && r == 1 {
		msgs := make([]Message, l.v.Degree)
		for p := range msgs {
			msgs[p] = 99
		}
		return msgs
	}
	return nil
}

func (l *lateSleeper) Receive(r int, inbox []Message) bool {
	got := false
	for _, m := range inbox {
		if m != nil {
			got = true
		}
	}
	if got && l.wokeAt == 0 {
		l.wokeAt = r
	}
	return l.finished(r)
}

func (l *lateSleeper) ReceiveNone(r int) bool { return l.finished(r) }
func (l *lateSleeper) NextWake(r int) int     { return 10 }

func (l *lateSleeper) finished(r int) bool {
	if r >= 10 || (l.v.Index == 0 && r >= 1) {
		l.out[l.v.Index] = l.wokeAt
		return true
	}
	return false
}

func TestSleeperWokenByMessage(t *testing.T) {
	g := graph.Star(6) // center 0 broadcasts round 1
	tp := FromGraph(g)
	out := make([]int, tp.N())
	if _, err := RunSequential(tp, func(v View) Protocol { return &lateSleeper{v: v, out: out} }, nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tp.N(); i++ {
		if out[i] != 1 {
			t.Fatalf("leaf %d woke at round %d, want 1 (message must override sleep)", i, out[i])
		}
	}
}
