package local

// Induced builds the subtopology containing the entities with keep[i]=true
// and, among the surviving links, those for which keepLink(i, p) returns true
// when evaluated at either endpoint (keepLink may be nil to keep all links
// between kept entities). Links are kept only if both endpoints are kept.
//
// It returns the new topology, orig (mapping new entity index -> original
// index) and sub (mapping original index -> new index, −1 if dropped).
// Meta pointers are carried over unchanged.
//
// In the LOCAL model, running a protocol on an induced subtopology is
// exactly the standard "run on the subgraph" step: non-participating
// entities stay silent, and participating entities ignore links to
// non-participants, which each entity can decide locally.
func Induced(t *Topology, keep []bool, keepLink func(i, p int) bool) (*Topology, []int, []int) {
	n := t.N()
	sub := make([]int, n)
	orig := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if keep[i] {
			sub[i] = len(orig)
			orig = append(orig, i)
		} else {
			sub[i] = -1
		}
	}
	nt := &Topology{
		Ports: make([][]int32, len(orig)),
		Back:  make([][]int32, len(orig)),
	}
	if t.Meta != nil {
		nt.Meta = make([]any, len(orig))
		for ni, oi := range orig {
			nt.Meta[ni] = t.Meta[oi]
		}
	}
	// newPort[original entity][original port] = new port index or -1.
	// Built on the fly: for entity i, the kept ports in original order get
	// consecutive new indices, so a link's new back-pointer is the rank of
	// the original back-port among kept ports at the neighbor.
	kept := func(i, p int) bool {
		j := int(t.Ports[i][p])
		if !keep[i] || !keep[j] {
			return false
		}
		if keepLink == nil {
			return true
		}
		return keepLink(i, p) && keepLink(j, int(t.Back[i][p]))
	}
	rank := make([][]int32, n) // rank[i][p] = new port index at i, or -1
	for _, oi := range orig {
		r := make([]int32, len(t.Ports[oi]))
		c := int32(0)
		for p := range t.Ports[oi] {
			if kept(oi, p) {
				r[p] = c
				c++
			} else {
				r[p] = -1
			}
		}
		rank[oi] = r
		ni := sub[oi]
		nt.Ports[ni] = make([]int32, 0, c)
		nt.Back[ni] = make([]int32, 0, c)
	}
	for _, oi := range orig {
		ni := sub[oi]
		for p := range t.Ports[oi] {
			if rank[oi][p] < 0 {
				continue
			}
			oj := int(t.Ports[oi][p])
			nt.Ports[ni] = append(nt.Ports[ni], int32(sub[oj]))
			nt.Back[ni] = append(nt.Back[ni], rank[oj][t.Back[oi][p]])
		}
		if d := len(nt.Ports[ni]); d > nt.MaxDeg {
			nt.MaxDeg = d
		}
	}
	return nt, orig, sub
}
