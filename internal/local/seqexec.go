package local

import (
	"fmt"
	"time"

	"github.com/distec/distec/internal/trace"
)

// SeqExec is the step-driven form of the sequential engine: Prepare the
// state once, then call Round (one synchronous round, exactly one iteration
// of RunSequential's loop) until it reports completion. RunSequential is a
// thin wrapper over it, so the two are bit-identical by construction.
//
// The step form exists for the serving layer: a shared worker lane can run
// a large execution in bounded time slices (Rounds) instead of holding the
// lane for the whole run, at full sequential speed — no barriers, no
// cross-goroutine handoff. Not safe for concurrent use.
type SeqExec struct {
	t        *Topology
	opts     *Options
	procs    []Protocol
	sparse   []SparseReceiver
	sleepers []Sleeper
	wake     []int
	inboxes  [][]Message
	next     [][]Message
	touched  [2][]slot
	cur      int
	gotMsg   []int32
	order    []int32
	limit    int

	r     int
	stats Stats
	err   error
	done  bool
	// span is the trace span for this execution (nil when tracing is off;
	// every use is behind a nil test, the whole disabled cost).
	span *trace.Span
}

// NewSeqExec constructs the per-entity protocol state for a step-driven
// sequential execution. The returned SeqExec has executed zero rounds.
func NewSeqExec(t *Topology, f Factory, opts *Options) *SeqExec {
	n := t.N()
	x := &SeqExec{
		t:        t,
		opts:     opts,
		procs:    make([]Protocol, n),
		sparse:   make([]SparseReceiver, n),
		sleepers: make([]Sleeper, n),
		wake:     make([]int, n),
		inboxes:  make([][]Message, n),
		next:     make([][]Message, n),
		gotMsg:   make([]int32, n),
		order:    make([]int32, n),
		limit:    opts.RoundLimit(),
		span:     opts.Tracer().StartSpan("sequential", n),
	}
	for i := 0; i < n; i++ {
		x.procs[i] = f(t.ViewOf(i))
		if sr, ok := x.procs[i].(SparseReceiver); ok {
			x.sparse[i] = sr
		}
		if sl, ok := x.procs[i].(Sleeper); ok {
			x.sleepers[i] = sl
		}
		x.inboxes[i] = make([]Message, len(t.Ports[i]))
		x.next[i] = make([]Message, len(t.Ports[i]))
		x.order[i] = int32(i)
	}
	return x
}

// Done reports whether the execution has finished (successfully or not).
func (x *SeqExec) Done() bool { return x.done }

// Stats returns the execution cost so far and the first error, exactly what
// RunSequential would have returned; final once Done reports true.
func (x *SeqExec) Stats() (Stats, error) { return x.stats, x.err }

// finish marks the execution done and closes the trace span; it always
// returns true so the Round early-exits can tail-call it.
func (x *SeqExec) finish() bool {
	x.done = true
	x.span.End(x.err)
	return true
}

// Round executes one synchronous round. It returns true once the execution
// has finished; further calls are no-ops.
//
//distec:hotpath
func (x *SeqExec) Round() bool {
	if x.done {
		return true
	}
	if len(x.order) == 0 {
		return x.finish()
	}
	r := x.r + 1
	x.r = r
	if r > x.limit {
		x.err = fmt.Errorf("%w (limit %d)", ErrRoundLimit, x.limit)
		return x.finish()
	}
	if err := x.opts.Interrupted(); err != nil {
		x.err = err
		return x.finish()
	}
	var roundStart time.Time
	prevMsgs := x.stats.Messages
	if x.span != nil {
		roundStart = time.Now()
	}
	x.stats.Rounds = r
	t, cur := x.t, x.cur
	// Clear the stale entries of the buffer about to be written and the
	// previous round's delivery counters.
	for _, s := range x.touched[cur] {
		x.next[s.entity][s.port] = nil
	}
	x.touched[cur] = x.touched[cur][:0]
	for _, s := range x.touched[1-cur] {
		x.gotMsg[s.entity] = 0
	}
	for _, i32 := range x.order {
		i := int(i32)
		if x.wake[i] > r {
			continue
		}
		out := x.procs[i].Send(r)
		if out == nil {
			continue
		}
		if len(out) != len(t.Ports[i]) {
			x.err = fmt.Errorf("local: entity %d sent %d messages, has %d ports", i, len(out), len(t.Ports[i]))
			return x.finish()
		}
		for p, msg := range out {
			if msg == nil {
				continue
			}
			j := t.Ports[i][p]
			back := t.Back[i][p]
			x.next[j][back] = msg
			x.touched[cur] = append(x.touched[cur], slot{entity: j, port: back})
			x.gotMsg[j]++
			x.stats.Messages++
		}
	}
	x.inboxes, x.next = x.next, x.inboxes
	x.cur = 1 - cur
	w := 0
	received := 0
	before := len(x.order)
	for _, i32 := range x.order {
		i := int(i32)
		got := x.gotMsg[i]
		if x.wake[i] > r && got == 0 {
			// Sleeping and nothing arrived: skip by contract.
			x.order[w] = i32
			w++
			continue
		}
		if got != 0 {
			received++
		}
		var done bool
		if got == 0 && x.sparse[i] != nil {
			done = x.sparse[i].ReceiveNone(r)
			if !done && x.sleepers[i] != nil {
				x.wake[i] = x.sleepers[i].NextWake(r)
			}
		} else {
			done = x.procs[i].Receive(r, x.inboxes[i])
			x.wake[i] = 0
		}
		if !done {
			x.order[w] = i32
			w++
		}
	}
	x.order = x.order[:w]
	if x.span != nil {
		x.span.Round(trace.RoundEvent{
			Round:    r,
			Duration: time.Since(roundStart),
			Messages: x.stats.Messages - prevMsgs,
			Received: received,
			Halted:   before - w,
			Active:   w,
		})
	}
	if len(x.order) == 0 {
		return x.finish()
	}
	return false
}

// Rounds executes rounds until the execution finishes or the time budget
// elapses, whichever is first, and reports whether it finished. At least
// one round is executed per call. A budget ≤0 means "until finished".
func (x *SeqExec) Rounds(budget time.Duration) bool {
	if x.done {
		return true
	}
	var until time.Time
	if budget > 0 {
		until = time.Now().Add(budget)
	}
	for {
		if x.Round() {
			return true
		}
		if budget > 0 && !time.Now().Before(until) {
			return false
		}
	}
}
