package local

import "github.com/distec/distec/internal/trace"

// Engine executes a Protocol on a Topology until every entity halts. The
// three engines in the repository — Sequential, Goroutines, and the sharded
// worker-pool engine in internal/sharded — implement identical synchronous
// LOCAL semantics: for deterministic protocols, error-free runs produce
// bit-identical results and stats, differing only in wall-clock cost. (On a
// protocol error the engines agree on the error and the round it occurred
// in, but the partial stats returned alongside it are engine-specific.)
//
// Algorithm packages are parameterized by Engine so that the same protocol
// code runs unchanged on any of them.
type Engine interface {
	// Name identifies the engine (for logs, benchmarks, and CLI flags).
	Name() string
	// Run executes the protocol built by f on t and returns the LOCAL cost.
	Run(t *Topology, f Factory, opts *Options) (Stats, error)
}

// Runner is the signature shared by RunSequential and RunGoroutines. It is
// the functional form of Engine; wrap one with EngineFunc.
type Runner func(t *Topology, f Factory, opts *Options) (Stats, error)

// EngineFunc adapts a Runner function to the Engine interface.
func EngineFunc(name string, run Runner) Engine {
	return engineFunc{name: name, run: run}
}

type engineFunc struct {
	name string
	run  Runner
}

func (e engineFunc) Name() string { return e.name }

func (e engineFunc) Run(t *Topology, f Factory, opts *Options) (Stats, error) {
	return e.run(t, f, opts)
}

// Sequential is the deterministic single-goroutine engine (RunSequential):
// the workhorse for experiments and the reference semantics the other
// engines are tested against.
var Sequential Engine = EngineFunc("sequential", RunSequential)

// Goroutines is the one-goroutine-per-entity engine (RunGoroutines): real
// channels per link and barrier-synchronized rounds. It demonstrates that
// the protocols are honest message-passing programs.
var Goroutines Engine = EngineFunc("goroutines", RunGoroutines)

// Traced wraps an engine so every Run it executes reports to tr: the
// wrapper copies the caller's Options (nil included) and injects the
// tracer, which each engine hands to StartSpan. This is how tracing
// reaches algorithm packages, which call run.Run with their own Options
// — the tracer rides on the engine value, not on any one Options
// struct. A nil tr returns e unchanged, so untraced paths keep the
// exact engine value (and its type assertions) they had.
func Traced(e Engine, tr *trace.Trace) Engine {
	if tr == nil {
		return e
	}
	return &tracedEngine{inner: e, tr: tr}
}

type tracedEngine struct {
	inner Engine
	tr    *trace.Trace
}

func (e *tracedEngine) Name() string { return e.inner.Name() }

func (e *tracedEngine) Run(t *Topology, f Factory, opts *Options) (Stats, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.Trace = e.tr
	return e.inner.Run(t, f, &o)
}

// SetLabel stamps spans started from here on with a phase label (the
// hook SetSpanLabel reaches through).
func (e *tracedEngine) SetLabel(label string) { e.tr.SetLabel(label) }

// Interrupt forwards to the inner engine's interrupt hook when it has
// one (the serving layer's job engine does; the Vizing path polls it by
// type assertion, which must keep working through the wrapper).
func (e *tracedEngine) Interrupt() error {
	if ir, ok := e.inner.(interface{ Interrupt() error }); ok {
		return ir.Interrupt()
	}
	return nil
}

// SetSpanLabel tags subsequent protocol executions on run with a phase
// label when run is a traced engine, and is a no-op otherwise. Algorithm
// packages call it at phase boundaries ("linial", "defective", "chain",
// "base") without knowing whether tracing is on.
func SetSpanLabel(run Engine, label string) {
	if l, ok := run.(interface{ SetLabel(string) }); ok {
		l.SetLabel(label)
	}
}

// ViewOf returns the static local knowledge of entity i, as handed to the
// Factory by every engine.
func (t *Topology) ViewOf(i int) View {
	var meta any
	if t.Meta != nil {
		meta = t.Meta[i]
	}
	return View{
		Index:     i,
		N:         t.N(),
		Degree:    len(t.Ports[i]),
		MaxDegree: t.MaxDeg,
		Meta:      meta,
	}
}
