package local

// Engine executes a Protocol on a Topology until every entity halts. The
// three engines in the repository — Sequential, Goroutines, and the sharded
// worker-pool engine in internal/sharded — implement identical synchronous
// LOCAL semantics: for deterministic protocols, error-free runs produce
// bit-identical results and stats, differing only in wall-clock cost. (On a
// protocol error the engines agree on the error and the round it occurred
// in, but the partial stats returned alongside it are engine-specific.)
//
// Algorithm packages are parameterized by Engine so that the same protocol
// code runs unchanged on any of them.
type Engine interface {
	// Name identifies the engine (for logs, benchmarks, and CLI flags).
	Name() string
	// Run executes the protocol built by f on t and returns the LOCAL cost.
	Run(t *Topology, f Factory, opts *Options) (Stats, error)
}

// Runner is the signature shared by RunSequential and RunGoroutines. It is
// the functional form of Engine; wrap one with EngineFunc.
type Runner func(t *Topology, f Factory, opts *Options) (Stats, error)

// EngineFunc adapts a Runner function to the Engine interface.
func EngineFunc(name string, run Runner) Engine {
	return engineFunc{name: name, run: run}
}

type engineFunc struct {
	name string
	run  Runner
}

func (e engineFunc) Name() string { return e.name }

func (e engineFunc) Run(t *Topology, f Factory, opts *Options) (Stats, error) {
	return e.run(t, f, opts)
}

// Sequential is the deterministic single-goroutine engine (RunSequential):
// the workhorse for experiments and the reference semantics the other
// engines are tested against.
var Sequential Engine = EngineFunc("sequential", RunSequential)

// Goroutines is the one-goroutine-per-entity engine (RunGoroutines): real
// channels per link and barrier-synchronized rounds. It demonstrates that
// the protocols are honest message-passing programs.
var Goroutines Engine = EngineFunc("goroutines", RunGoroutines)

// ViewOf returns the static local knowledge of entity i, as handed to the
// Factory by every engine.
func (t *Topology) ViewOf(i int) View {
	var meta any
	if t.Meta != nil {
		meta = t.Meta[i]
	}
	return View{
		Index:     i,
		N:         t.N(),
		Degree:    len(t.Ports[i]),
		MaxDegree: t.MaxDeg,
		Meta:      meta,
	}
}
