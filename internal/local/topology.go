package local

import (
	"fmt"

	"github.com/distec/distec/internal/graph"
)

// FromGraph builds the node topology of g: entity i is node i, and port p of
// node v leads to the p-th neighbor in v's incidence order.
func FromGraph(g *graph.Graph) *Topology {
	n := g.N()
	t := &Topology{
		Ports: make([][]int32, n),
		Back:  make([][]int32, n),
	}
	// posAt[e][0] = port of e at its U endpoint, posAt[e][1] at its V endpoint.
	posAt := make([][2]int32, g.M())
	for v := 0; v < n; v++ {
		inc := g.Incident(v)
		t.Ports[v] = make([]int32, len(inc))
		t.Back[v] = make([]int32, len(inc))
		for p, e := range inc {
			u, _ := g.Endpoints(e)
			if u == v {
				posAt[e][0] = int32(p)
			} else {
				posAt[e][1] = int32(p)
			}
		}
	}
	for v := 0; v < n; v++ {
		for p, e := range g.Incident(v) {
			w := g.OtherEnd(e, v)
			t.Ports[v][p] = int32(w)
			u, _ := g.Endpoints(e)
			if u == w {
				t.Back[v][p] = posAt[e][0]
			} else {
				t.Back[v][p] = posAt[e][1]
			}
		}
		if len(t.Ports[v]) > t.MaxDeg {
			t.MaxDeg = len(t.Ports[v])
		}
	}
	return t
}

// EdgeMeta is the local knowledge of an item in a pair-conflict topology:
// the two side keys it occupies, the number of items on each side, and its
// position within each side's item list.
//
// For the edge-conflict topology of a graph, the side keys are the two
// endpoint node IDs, so EdgeMeta is exactly what the two endpoints of the
// edge know without communication. The paper's node-driven constructions
// (grouping incident edges in the defective coloring of §4.1, splitting
// nodes into virtual copies in §4.2) are deterministic functions of this
// data — and because virtual graphs are themselves pair systems (side key =
// virtual copy), the same machinery runs unchanged on them.
type EdgeMeta struct {
	// A, B are the two side keys (for graphs: endpoint node IDs, A < B).
	A, B int64
	// DegA, DegB are the number of items on side A and side B (for graphs:
	// endpoint degrees).
	DegA, DegB int
	// PosA, PosB are this item's positions in the side item lists.
	PosA, PosB int
	// Item is the index of this item in the pair list (for graphs: the
	// graph.EdgeID), for mapping results back.
	Item int
}

// EdgeDegree returns the conflict degree deg(e) = DegA+DegB−2 (paper §2.1).
func (m *EdgeMeta) EdgeDegree() int { return m.DegA + m.DegB - 2 }

// ViaA reports whether port p connects through side A.
// Port layout: ports 0..DegA−2 are side A's other items in side order;
// ports DegA−1..DegA+DegB−3 are side B's other items.
func (m *EdgeMeta) ViaA(p int) bool { return p < m.DegA-1 }

// SharedKey returns the side key shared with the neighbor on port p.
func (m *EdgeMeta) SharedKey(p int) int64 {
	if m.ViaA(p) {
		return m.A
	}
	return m.B
}

// NeighborPos returns the position, within the shared side's item list, of
// the item reached via port p. Together with PosA/PosB this lets an item
// reconstruct the full ordered item list of each of its sides locally.
func (m *EdgeMeta) NeighborPos(p int) int {
	if m.ViaA(p) {
		if p < m.PosA {
			return p
		}
		return p + 1
	}
	q := p - (m.DegA - 1)
	if q < m.PosB {
		return q
	}
	return q + 1
}

// SidePorts returns the half-open port range [lo, hi) of the links passing
// through the given side (0 = A, 1 = B).
func (m *EdgeMeta) SidePorts(side int) (lo, hi int) {
	if side == 0 {
		return 0, m.DegA - 1
	}
	return m.DegA - 1, m.DegA - 1 + m.DegB - 1
}

// PairConflict builds the conflict topology of a pair system: item i
// occupies the two side keys pairs[i][0] and pairs[i][1], and two items are
// linked iff they share a key. Ports are ordered side-A first (in side item
// order) then side-B. Each item's Meta is an *EdgeMeta.
//
// Pairs with equal keys are rejected with a panic: they would be self-loops,
// which the paper's graphs exclude. Two items may share both keys only
// through distinct key order; for graphs this cannot happen (simple graphs),
// and for virtual systems the builder keeps multi-links consistent.
func PairConflict(pairs [][2]int64) *Topology {
	m := len(pairs)
	t := &Topology{
		Ports: make([][]int32, m),
		Back:  make([][]int32, m),
		Meta:  make([]any, m),
	}
	// Side incidence: key -> items occupying it, in item order.
	side := make(map[int64][]int32)
	for i, pr := range pairs {
		if pr[0] == pr[1] {
			panic(fmt.Sprintf("local: item %d occupies key %d on both sides", i, pr[0]))
		}
		side[pr[0]] = append(side[pr[0]], int32(i))
		side[pr[1]] = append(side[pr[1]], int32(i))
	}
	metas := make([]EdgeMeta, m)
	pos := make([][2]int32, m) // position of item within side A / side B list
	for key, items := range side {
		for p, it := range items {
			if pairs[it][0] == key {
				pos[it][0] = int32(p)
			} else {
				pos[it][1] = int32(p)
			}
		}
	}
	for i, pr := range pairs {
		metas[i] = EdgeMeta{
			A:    pr[0],
			B:    pr[1],
			DegA: len(side[pr[0]]),
			DegB: len(side[pr[1]]),
			PosA: int(pos[i][0]),
			PosB: int(pos[i][1]),
			Item: i,
		}
		t.Meta[i] = &metas[i]
	}
	// portAt returns the port index at item f for its link to the item at
	// position posOther of shared key k.
	portAt := func(f int32, k int64, posOther int32) int32 {
		var ownPos, offset int32
		if pairs[f][0] == k {
			ownPos = pos[f][0]
			offset = 0
		} else {
			ownPos = pos[f][1]
			offset = int32(len(side[pairs[f][0]])) - 1
		}
		if posOther < ownPos {
			return offset + posOther
		}
		return offset + posOther - 1
	}
	for i := range pairs {
		me := &metas[i]
		deg := me.EdgeDegree()
		t.Ports[i] = make([]int32, 0, deg)
		t.Back[i] = make([]int32, 0, deg)
		appendSide := func(k int64, ownPos int32) {
			for _, f := range side[k] {
				if int(f) == i {
					continue
				}
				t.Ports[i] = append(t.Ports[i], f)
				t.Back[i] = append(t.Back[i], portAt(f, k, ownPos))
			}
		}
		appendSide(me.A, pos[i][0])
		appendSide(me.B, pos[i][1])
		if deg > t.MaxDeg {
			t.MaxDeg = deg
		}
	}
	return t
}

// EdgeConflict builds the edge topology of g: entity e is edge e of g, and
// two entities are linked iff the edges share an endpoint (the line graph of
// g, with side keys = endpoint node IDs).
//
// An r-round protocol on this topology is simulable in at most 2r+O(1)
// rounds on the node network of g (each edge is simulated by its two
// endpoints); all round counts reported by the experiments are edge rounds,
// and the node bound follows by this standard translation.
func EdgeConflict(g *graph.Graph) *Topology {
	pairs := make([][2]int64, g.M())
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		pairs[e] = [2]int64{int64(u), int64(v)}
	}
	return PairConflict(pairs)
}

// MetaOf extracts the *EdgeMeta from a view of a pair-conflict topology.
// It panics with a descriptive message when used on the wrong topology,
// which is always a programming error.
func MetaOf(v View) *EdgeMeta {
	m, ok := v.Meta.(*EdgeMeta)
	if !ok {
		panic(fmt.Sprintf("local: entity %d has no EdgeMeta (topology is not a pair-conflict topology)", v.Index))
	}
	return m
}
