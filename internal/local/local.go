// Package local implements the synchronous LOCAL model of distributed
// computing (Linial 1987, Peleg 2000) used by the paper.
//
// A Topology fixes a set of communication entities (graph nodes, or graph
// edges communicating with conflicting edges), each with a unique identifier
// and port-numbered links. A Protocol is the per-entity state machine: in
// every synchronous round each entity produces one message per port, the
// engine delivers all messages, and each entity consumes its inbox and
// decides whether to halt. Messages are arbitrary Go values — the LOCAL
// model does not charge for bandwidth, only rounds.
//
// Three engines execute the same Protocol with identical semantics (see the
// Engine interface):
//
//   - RunSequential: a deterministic loop; the workhorse for experiments.
//   - RunGoroutines: one goroutine per entity, real channels per link, and
//     barrier-synchronized rounds; demonstrates that the protocols are
//     honest message-passing programs and cross-checks the sequential engine.
//   - internal/sharded: a worker pool (one shard of entities per core) with
//     double-buffered batch mailboxes; the engine for large instances.
//
// Entities know, at start: their own ID, their degree, the global entity
// count and the global maximum degree (standard LOCAL assumptions; the paper
// additionally lets every node know n and Δ). They do NOT know neighbor IDs
// until a neighbor sends them.
package local

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/distec/distec/internal/trace"
)

// Message is an arbitrary LOCAL-model message. A nil Message means
// "nothing sent on this port this round".
type Message any

// View is the static local knowledge of one entity.
type View struct {
	// Index is the entity's index in the topology, in {0..N-1}. It also
	// serves as the unique identifier required by the LOCAL model.
	Index int
	// N is the total number of entities (nodes know n).
	N int
	// Degree is the number of ports of this entity.
	Degree int
	// MaxDegree is the maximum degree over all entities (nodes know Δ).
	MaxDegree int
	// Meta carries topology-specific local knowledge (e.g. *EdgeMeta for
	// edge-conflict topologies). Nil for plain node topologies.
	Meta any
}

// Protocol is the per-entity algorithm. The engine drives it as:
//
//	for r := 1; ...; r++ {
//	    out := Send(r)            // for every active entity
//	    deliver all messages
//	    done := Receive(r, inbox) // for every active entity
//	}
//
// until every entity has returned done=true. A halted entity sends nothing
// in later rounds and its Receive is not called again.
type Protocol interface {
	// Send returns the messages for round r, indexed by port. The returned
	// slice must have length Degree (use View.Degree); nil entries send
	// nothing. Returning a nil slice sends nothing at all.
	Send(r int) []Message
	// Receive consumes the messages delivered in round r (inbox[p] is the
	// message from the neighbor on port p, nil if it sent nothing) and
	// reports whether the entity halts.
	Receive(r int, inbox []Message) (done bool)
}

// SparseReceiver is an optional fast path for protocols with long quiet
// stretches (e.g. the one-class-per-round greedy phase): when an entity
// received no message in a round, the engines call ReceiveNone instead of
// Receive, sparing the O(degree) inbox scan. ReceiveNone must behave exactly
// like Receive with an all-nil inbox.
type SparseReceiver interface {
	ReceiveNone(r int) (done bool)
}

// Sleeper is an optional event-driven fast path: after a quiet round r (no
// messages received), NextWake(r) promises that — absent incoming messages —
// the entity will send nothing and its ReceiveNone will not halt it before
// round NextWake(r). The sequential engine then skips the entity entirely
// until that round or until a message arrives, turning long deterministic
// schedules (one class per round) into event-driven simulation. The
// goroutine engine ignores Sleeper (its barrier already ticks every entity);
// results are identical because skipped calls are no-ops by contract.
type Sleeper interface {
	SparseReceiver
	NextWake(r int) int
}

// Topology is a fixed port-numbered communication structure.
type Topology struct {
	// Ports[i][p] is the entity reached from entity i via port p.
	Ports [][]int32
	// Back[i][p] is the port at entity Ports[i][p] that leads back to i.
	Back [][]int32
	// Meta[i] is per-entity metadata exposed through View.Meta (may be nil).
	Meta []any
	// MaxDeg is the maximum entity degree, precomputed.
	MaxDeg int
}

// N returns the number of entities.
func (t *Topology) N() int { return len(t.Ports) }

// Degree returns the degree of entity i.
func (t *Topology) Degree(i int) int { return len(t.Ports[i]) }

// Validate checks the port structure for internal consistency: every link
// must be bidirectional with matching back-pointers.
func (t *Topology) Validate() error {
	for i := range t.Ports {
		if len(t.Back[i]) != len(t.Ports[i]) {
			return fmt.Errorf("local: entity %d has %d ports but %d back-pointers", i, len(t.Ports[i]), len(t.Back[i]))
		}
		for p, j := range t.Ports[i] {
			b := t.Back[i][p]
			if int(j) < 0 || int(j) >= len(t.Ports) {
				return fmt.Errorf("local: entity %d port %d points to unknown entity %d", i, p, j)
			}
			if int(b) < 0 || int(b) >= len(t.Ports[j]) {
				return fmt.Errorf("local: entity %d port %d has bad back-port %d", i, p, b)
			}
			if int(t.Ports[j][b]) != i {
				return fmt.Errorf("local: link %d.%d -> %d.%d is not symmetric", i, p, j, b)
			}
		}
	}
	return nil
}

// Stats aggregates the cost of a protocol execution.
type Stats struct {
	// Rounds is the number of synchronous rounds until all entities halted.
	Rounds int
	// Messages is the total number of non-nil messages delivered.
	Messages int64
}

// Factory constructs the protocol instance for one entity from its view.
type Factory func(v View) Protocol

// ErrRoundLimit is returned when a protocol exceeds the engine's round cap,
// which indicates a livelocked or diverging protocol.
var ErrRoundLimit = errors.New("local: round limit exceeded")

// ErrPanic marks (via errors.Is) run errors produced by converting a panic
// during protocol execution — a server-side defect, never a property of the
// input. The serving layer's isolated executions wrap recovered panics with
// it so callers (e.g. an HTTP daemon) can classify them as internal errors.
var ErrPanic = errors.New("local: panic during protocol execution")

// Options tunes an engine run.
type Options struct {
	// MaxRounds caps the execution (default DefaultMaxRounds). Exceeding it
	// returns ErrRoundLimit.
	MaxRounds int
	// Interrupt, when non-nil, is polled by every engine about once per
	// round; the first non-nil error aborts the run and is returned as the
	// run error. It is how callers plumb context cancellation and deadlines
	// into an execution (see internal/serve). Interrupt must be safe for
	// concurrent use: the parallel engines may poll it from worker
	// goroutines.
	Interrupt func() error
	// Trace, when non-nil, receives one span per engine run carrying
	// per-round events (duration, messages, deliveries, halts). Nil — the
	// default — disables tracing; the disabled cost is one pointer test
	// per run plus one per round, which is what keeps the engines inside
	// the ≤2% overhead gate.
	Trace *trace.Trace
}

// DefaultMaxRounds is the round cap applied when Options.MaxRounds is unset.
const DefaultMaxRounds = 1 << 20

// RoundLimit returns the effective round cap of o (DefaultMaxRounds when o
// is nil or MaxRounds is unset). All engines enforce the same cap.
func (o *Options) RoundLimit() int {
	if o == nil || o.MaxRounds <= 0 {
		return DefaultMaxRounds
	}
	return o.MaxRounds
}

// Interrupted polls the Interrupt hook, tolerating a nil receiver and a nil
// hook (both mean "never interrupted"). Engines call it about once per round.
func (o *Options) Interrupted() error {
	if o == nil || o.Interrupt == nil {
		return nil
	}
	return o.Interrupt()
}

// Tracer returns the configured tracer, tolerating a nil receiver (nil
// means "tracing off"). Engines call it once per run and hand the result
// straight to trace.Trace.StartSpan, which is itself nil-safe.
func (o *Options) Tracer() *trace.Trace {
	if o == nil {
		return nil
	}
	return o.Trace
}

// slot identifies one inbox cell for sparse clearing.
type slot struct {
	entity int32
	port   int32
}

// RunSequential executes the protocol deterministically on a single
// goroutine and returns the execution stats. It is the reference engine:
// one full iteration of its loop per round, driven by SeqExec (the step
// form the serving layer slices).
//
// Inbox buffers are cleared sparsely (only slots written in a buffer's
// previous use), so a round's cost is O(active entities + messages) rather
// than O(total ports) — essential for long, sparse schedules such as the
// one-class-per-round greedy phases.
func RunSequential(t *Topology, f Factory, opts *Options) (Stats, error) {
	x := NewSeqExec(t, f, opts)
	for !x.Round() {
	}
	return x.Stats()
}

// RunGoroutines executes the protocol with one goroutine per entity and one
// buffered channel per directed link, synchronizing rounds with barriers.
// Results are identical to RunSequential for deterministic protocols.
func RunGoroutines(t *Topology, f Factory, opts *Options) (Stats, error) {
	n := t.N()
	span := opts.Tracer().StartSpan("goroutines", n)
	if n == 0 {
		span.End(nil)
		return Stats{}, nil
	}
	// One channel per directed link, capacity 1: within a round each link
	// carries at most one message.
	chans := make([][]chan Message, n)
	for i := 0; i < n; i++ {
		chans[i] = make([]chan Message, len(t.Ports[i]))
		for p := range chans[i] {
			chans[i][p] = make(chan Message, 1)
		}
	}
	var (
		mu       sync.Mutex
		firstErr error
		messages int64
		rounds   int
	)
	limit := opts.RoundLimit()
	barrier := newBarrier(n)
	// Tracing hooks: entities accumulate the round's sends and deliveries
	// in two atomics, and the LAST arrival at the second-phase barrier —
	// which already holds the barrier mutex, so every entity's writes
	// this round happen-before it — emits the round event and resets
	// them. Untraced runs never touch the atomics and pay one nil test
	// per round at the barrier.
	var rSent, rReceived atomic.Int64
	traced := span != nil
	if traced {
		prevDone := 0
		lastEnd := time.Now()
		round := 0
		barrier.onEnd = func() {
			round++
			now := time.Now()
			halted := barrier.doneCount - prevDone
			prevDone = barrier.doneCount
			span.Round(trace.RoundEvent{
				Round:    round,
				Duration: now.Sub(lastEnd),
				Messages: rSent.Swap(0),
				Received: int(rReceived.Swap(0)),
				Halted:   halted,
				Active:   n - barrier.doneCount,
			})
			lastEnd = now
		}
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			proc := f(t.ViewOf(i))
			sparse, _ := proc.(SparseReceiver)
			inbox := make([]Message, len(t.Ports[i]))
			done := false
			var sent int64
			maxRound := 0
			for r := 1; ; r++ {
				if r > limit {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%w (limit %d)", ErrRoundLimit, limit)
					}
					mu.Unlock()
					barrier.cancel()
					break
				}
				// Entity 0 polls the interrupt hook on behalf of the run (one
				// poll per round, like the other engines); cancellation then
				// propagates to every goroutine through the barrier.
				if i == 0 {
					if err := opts.Interrupted(); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						barrier.cancel()
						break
					}
				}
				if !done {
					out := proc.Send(r)
					if out != nil && len(out) != len(t.Ports[i]) {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("local: entity %d sent %d messages, has %d ports", i, len(out), len(t.Ports[i]))
						}
						mu.Unlock()
						barrier.cancel()
						break
					}
					prevSent := sent
					for p, msg := range out {
						if msg == nil {
							continue
						}
						chans[t.Ports[i][p]][t.Back[i][p]] <- msg
						sent++
					}
					if traced && sent > prevSent {
						rSent.Add(sent - prevSent)
					}
				}
				// Barrier 1: all sends for round r complete.
				if !barrier.wait() {
					break
				}
				// Drain this entity's channels even when halted, so that
				// neighbors that keep sending never block on a full link.
				drained := 0
				for p := range inbox {
					select {
					case m := <-chans[i][p]:
						inbox[p] = m
						drained++
					default:
						inbox[p] = nil
					}
				}
				if !done {
					if traced && drained > 0 {
						rReceived.Add(1)
					}
					if drained == 0 && sparse != nil {
						done = sparse.ReceiveNone(r)
					} else {
						done = proc.Receive(r, inbox)
					}
					if done {
						maxRound = r
						barrier.arriveDone()
					}
				}
				// Barrier 2: all receives for round r complete; engine-wide
				// halt detection.
				allDone, ok := barrier.waitEnd()
				if !ok {
					break
				}
				if allDone {
					break
				}
			}
			mu.Lock()
			messages += sent
			if maxRound > rounds {
				rounds = maxRound
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	span.End(firstErr)
	if firstErr != nil {
		return Stats{}, firstErr
	}
	return Stats{Rounds: rounds, Messages: messages}, nil
}

// barrier is a reusable two-phase barrier with a "done" population count and
// cooperative cancellation.
type barrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	n         int // total participants
	arrived   int
	phase     uint64
	doneCount int
	cancelled bool
	// onEnd, when non-nil, is invoked by the LAST second-phase arrival of
	// every completed round, while the barrier mutex is held — the
	// engine's per-round trace emission point. It must not block.
	onEnd func()
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all n participants arrive. Returns false if cancelled.
func (b *barrier) wait() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cancelled {
		return false
	}
	phase := b.phase
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.phase++
		b.cond.Broadcast()
		return !b.cancelled
	}
	for b.phase == phase && !b.cancelled {
		b.cond.Wait()
	}
	return !b.cancelled
}

// arriveDone marks the calling participant as permanently done. It must be
// called between the two barrier phases of the round in which the entity
// halts; the entity continues to participate in barriers (but not messaging)
// so the phases stay aligned.
func (b *barrier) arriveDone() {
	b.mu.Lock()
	b.doneCount++
	b.mu.Unlock()
}

// waitEnd is the second-phase barrier; it reports (allDone, ok).
func (b *barrier) waitEnd() (bool, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cancelled {
		return false, false
	}
	phase := b.phase
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.phase++
		if b.onEnd != nil {
			b.onEnd()
		}
		b.cond.Broadcast()
		return b.doneCount == b.n, !b.cancelled
	}
	for b.phase == phase && !b.cancelled {
		b.cond.Wait()
	}
	return b.doneCount == b.n, !b.cancelled
}

func (b *barrier) cancel() {
	b.mu.Lock()
	b.cancelled = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
