package local

import (
	"errors"
	"testing"

	"github.com/distec/distec/internal/graph"
)

// floodMax is a test protocol: every entity broadcasts the largest entity
// index it has seen for a fixed number of rounds, then halts. On a connected
// topology with rounds ≥ diameter every entity learns the global maximum.
type floodMax struct {
	v      View
	rounds int
	best   int
	out    []int // result sink, indexed by entity (each writes only its own)
}

func (f *floodMax) Send(r int) []Message {
	msgs := make([]Message, f.v.Degree)
	for p := range msgs {
		msgs[p] = f.best
	}
	return msgs
}

func (f *floodMax) Receive(r int, inbox []Message) bool {
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if x := m.(int); x > f.best {
			f.best = x
		}
	}
	if r >= f.rounds {
		f.out[f.v.Index] = f.best
		return true
	}
	return false
}

func floodFactory(rounds int, out []int) Factory {
	return func(v View) Protocol {
		return &floodMax{v: v, rounds: rounds, best: v.Index, out: out}
	}
}

func TestTopologyFromGraphValid(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(10), graph.Star(8), graph.Complete(6),
		graph.Grid(4, 5), graph.RandomRegular(30, 4, 1), graph.Path(2),
	} {
		tp := FromGraph(g)
		if err := tp.Validate(); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if tp.N() != g.N() {
			t.Fatalf("entity count %d != n %d", tp.N(), g.N())
		}
		if tp.MaxDeg != g.MaxDegree() {
			t.Fatalf("MaxDeg %d != Δ %d", tp.MaxDeg, g.MaxDegree())
		}
	}
}

func TestEdgeConflictValid(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(9), graph.Star(8), graph.Complete(6),
		graph.Grid(3, 4), graph.RandomRegular(24, 5, 2), graph.Path(3),
	} {
		tp := EdgeConflict(g)
		if err := tp.Validate(); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if tp.N() != g.M() {
			t.Fatalf("entity count %d != m %d", tp.N(), g.M())
		}
		if tp.MaxDeg != g.MaxEdgeDegree() {
			t.Fatalf("MaxDeg %d != Δ̄ %d", tp.MaxDeg, g.MaxEdgeDegree())
		}
		for e := 0; e < tp.N(); e++ {
			me := tp.Meta[e].(*EdgeMeta)
			if tp.Degree(e) != me.EdgeDegree() {
				t.Fatalf("edge %d: %d ports, EdgeDegree %d", e, tp.Degree(e), me.EdgeDegree())
			}
		}
	}
}

// TestEdgeMetaPortStructure verifies that the port layout documented on
// EdgeMeta matches the actual links: the neighbor on port p shares exactly
// the endpoint SharedEndpoint(p) and sits at incidence position
// NeighborPos(p) of that endpoint.
func TestEdgeMetaPortStructure(t *testing.T) {
	g := graph.RandomRegular(20, 4, 7)
	tp := EdgeConflict(g)
	for e := 0; e < tp.N(); e++ {
		me := tp.Meta[e].(*EdgeMeta)
		for p, fj := range tp.Ports[e] {
			f := graph.EdgeID(fj)
			s := int(me.SharedKey(p))
			fu, fv := g.Endpoints(f)
			if fu != s && fv != s {
				t.Fatalf("edge %d port %d: neighbor %d does not touch shared endpoint %d", e, p, f, s)
			}
			want := me.NeighborPos(p)
			found := -1
			for pos, id := range g.Incident(s) {
				if id == f {
					found = pos
				}
			}
			if found != want {
				t.Fatalf("edge %d port %d: NeighborPos=%d, actual position %d", e, p, want, found)
			}
		}
	}
}

func TestFloodMaxBothEngines(t *testing.T) {
	g := graph.RandomRegular(40, 3, 3)
	tp := FromGraph(g)
	rounds := 40 // ≥ diameter

	outSeq := make([]int, tp.N())
	statsSeq, err := RunSequential(tp, floodFactory(rounds, outSeq), nil)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	outGo := make([]int, tp.N())
	statsGo, err := RunGoroutines(tp, floodFactory(rounds, outGo), nil)
	if err != nil {
		t.Fatalf("goroutines: %v", err)
	}
	for i := range outSeq {
		if outSeq[i] != tp.N()-1 {
			t.Fatalf("entity %d learned max %d, want %d", i, outSeq[i], tp.N()-1)
		}
		if outSeq[i] != outGo[i] {
			t.Fatalf("engines disagree at entity %d: %d vs %d", i, outSeq[i], outGo[i])
		}
	}
	if statsSeq.Rounds != rounds || statsGo.Rounds != rounds {
		t.Fatalf("rounds: seq=%d go=%d, want %d", statsSeq.Rounds, statsGo.Rounds, rounds)
	}
	if statsSeq.Messages != statsGo.Messages {
		t.Fatalf("message counts differ: seq=%d go=%d", statsSeq.Messages, statsGo.Messages)
	}
}

// portEcho verifies the Back-pointer wiring: each entity sends its own index
// on every port and checks that what it receives on port p is exactly the
// index of the neighbor that port p points to.
type portEcho struct {
	v        View
	expected []int32
	t        *testing.T
}

func (pe *portEcho) Send(r int) []Message {
	msgs := make([]Message, pe.v.Degree)
	for p := range msgs {
		msgs[p] = pe.v.Index
	}
	return msgs
}

func (pe *portEcho) Receive(r int, inbox []Message) bool {
	for p, m := range inbox {
		if m == nil {
			pe.t.Errorf("entity %d port %d: no message", pe.v.Index, p)
			continue
		}
		if got := m.(int); got != int(pe.expected[p]) {
			pe.t.Errorf("entity %d port %d: got %d, want %d", pe.v.Index, p, got, pe.expected[p])
		}
	}
	return true
}

func TestPortWiring(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Star(6), graph.Complete(5), graph.Grid(3, 3)} {
		for _, tp := range []*Topology{FromGraph(g), EdgeConflict(g)} {
			f := func(v View) Protocol {
				return &portEcho{v: v, expected: tp.Ports[v.Index], t: t}
			}
			if _, err := RunSequential(tp, f, nil); err != nil {
				t.Fatalf("sequential: %v", err)
			}
			if _, err := RunGoroutines(tp, f, nil); err != nil {
				t.Fatalf("goroutines: %v", err)
			}
		}
	}
}

// neverHalt exercises the round limit.
type neverHalt struct{ v View }

func (nh *neverHalt) Send(r int) []Message        { return nil }
func (nh *neverHalt) Receive(int, []Message) bool { return false }
func neverFactory(v View) Protocol                { return &neverHalt{v: v} }

func TestRoundLimit(t *testing.T) {
	tp := FromGraph(graph.Cycle(4))
	opts := &Options{MaxRounds: 10}
	if _, err := RunSequential(tp, neverFactory, opts); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("sequential: err = %v, want ErrRoundLimit", err)
	}
	if _, err := RunGoroutines(tp, neverFactory, opts); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("goroutines: err = %v, want ErrRoundLimit", err)
	}
}

// staggeredHalt halts entity i after i+1 rounds, exercising the engines'
// handling of messages arriving at already-halted entities.
type staggeredHalt struct{ v View }

func (s *staggeredHalt) Send(r int) []Message {
	msgs := make([]Message, s.v.Degree)
	for p := range msgs {
		msgs[p] = r
	}
	return msgs
}

func (s *staggeredHalt) Receive(r int, inbox []Message) bool {
	return r > s.v.Index
}

func TestStaggeredHalting(t *testing.T) {
	tp := FromGraph(graph.Complete(8))
	f := func(v View) Protocol { return &staggeredHalt{v: v} }
	seq, err := RunSequential(tp, f, nil)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	gor, err := RunGoroutines(tp, f, nil)
	if err != nil {
		t.Fatalf("goroutines: %v", err)
	}
	if seq.Rounds != 8 || gor.Rounds != 8 {
		t.Fatalf("rounds seq=%d go=%d, want 8 (last entity halts after round 8)", seq.Rounds, gor.Rounds)
	}
	if seq.Messages != gor.Messages {
		t.Fatalf("messages differ: seq=%d go=%d", seq.Messages, gor.Messages)
	}
}

func TestEmptyTopology(t *testing.T) {
	g := graph.New(5) // nodes, no edges
	tp := EdgeConflict(g)
	stats, err := RunSequential(tp, neverFactory, &Options{MaxRounds: 1})
	if err != nil {
		t.Fatalf("sequential on empty: %v", err)
	}
	if stats.Rounds != 0 {
		t.Fatalf("rounds = %d, want 0", stats.Rounds)
	}
	if _, err := RunGoroutines(tp, neverFactory, &Options{MaxRounds: 1}); err != nil {
		t.Fatalf("goroutines on empty: %v", err)
	}
}

func TestSendLengthMismatchRejected(t *testing.T) {
	tp := FromGraph(graph.Cycle(4))
	bad := func(v View) Protocol { return badSender{} }
	if _, err := RunSequential(tp, bad, nil); err == nil {
		t.Fatal("sequential accepted wrong outbox length")
	}
	if _, err := RunGoroutines(tp, bad, nil); err == nil {
		t.Fatal("goroutines accepted wrong outbox length")
	}
}

type badSender struct{}

func (badSender) Send(r int) []Message        { return make([]Message, 1) }
func (badSender) Receive(int, []Message) bool { return false }
