package local

import (
	"errors"
	"testing"
	"time"

	"github.com/distec/distec/internal/graph"
)

// TestSeqExecRoundsBudget drives a SeqExec in microscopic time slices and
// demands bit-identical results and stats to the one-call RunSequential —
// the property the serving layer's single-lane slicing relies on.
func TestSeqExecRoundsBudget(t *testing.T) {
	tp := EdgeConflict(graph.Cycle(40))
	want := make([]int, tp.N())
	wantStats, err := RunSequential(tp, floodFactory(50, want), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, tp.N())
	x := NewSeqExec(tp, floodFactory(50, got), nil)
	slices := 0
	for !x.Rounds(time.Microsecond) {
		slices++
		if slices > 1000 {
			t.Fatal("budget slicing does not terminate")
		}
	}
	gotStats, err := x.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if gotStats != wantStats {
		t.Fatalf("stats %+v, want %+v", gotStats, wantStats)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entity %d: %d, want %d", i, got[i], want[i])
		}
	}
	if !x.Rounds(0) || !x.Done() {
		t.Fatal("finished SeqExec must stay finished")
	}
}

func TestSeqExecInterruptAndLimit(t *testing.T) {
	boom := errors.New("deadline")
	polls := 0
	opts := &Options{Interrupt: func() error {
		polls++
		if polls > 3 {
			return boom
		}
		return nil
	}}
	x := NewSeqExec(FromGraph(graph.Cycle(6)), func(v View) Protocol { return &neverHalt{v: v} }, opts)
	for !x.Round() {
	}
	if stats, err := x.Stats(); !errors.Is(err, boom) || stats.Rounds != 3 {
		t.Fatalf("stats %+v, err %v; want 3 rounds then interrupt", stats, err)
	}

	x = NewSeqExec(FromGraph(graph.Cycle(6)), func(v View) Protocol { return &neverHalt{v: v} }, &Options{MaxRounds: 7})
	for !x.Round() {
	}
	if stats, err := x.Stats(); !errors.Is(err, ErrRoundLimit) || stats.Rounds != 7 {
		t.Fatalf("stats %+v, err %v; want 7 rounds then limit", stats, err)
	}
}
