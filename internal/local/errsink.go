package local

import "sync"

// ErrorSink records the first error reported by any entity of a protocol.
// Protocols cannot return errors from Send/Receive (a distributed algorithm
// has no global error channel), so algorithm packages pass a shared sink into
// every per-entity instance and check it after the run. Safe for concurrent
// use by the goroutine engine.
type ErrorSink struct {
	mu  sync.Mutex
	err error
}

// Set records err if it is the first one.
func (s *ErrorSink) Set(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Err returns the first recorded error, if any.
func (s *ErrorSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
