package persist

import (
	"io"
	"os"
)

// FS is the filesystem seam every mutating operation of a Log goes through:
// file creation and appends, fsyncs, the tmp+rename commits, and removals.
// Read paths (ScanDir, recovery scans) read the real filesystem directly —
// the seam exists so tests can inject write/fsync/rename faults at exact
// operation counts (see internal/persist/errfs) while recovery still sees
// whatever bytes actually landed. A nil Options.FS selects the real
// filesystem.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// File is the subset of *os.File the log's write paths need.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// osFS is the default FS: the real filesystem.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (o Options) fs() FS {
	if o.FS == nil {
		return osFS{}
	}
	return o.FS
}
