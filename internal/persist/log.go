package persist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// File names inside a session directory. SnapshotFile and WALFile are the
// durable pair; DiffFile holds differential snapshots appended between full
// snapshot rewrites; the others are transient compaction state (a stale tmp
// is removed on open, a leftover wal.prev is merged).
const (
	SnapshotFile    = "snapshot"
	snapshotTmpFile = "snapshot.tmp"
	WALFile         = "wal"
	walPrevFile     = "wal.prev"
	walTmpFile      = "wal.tmp"
	DiffFile        = "diff"
	diffTmpFile     = "diff.tmp"
)

// DefaultCompactBytes is the WAL size past which a compaction is suggested
// when Options.CompactBytes is zero.
const DefaultCompactBytes = 1 << 20

// DefaultDiffMaxChain is the differential-snapshot chain length past which
// a compaction falls back to a full snapshot rewrite when
// Options.DiffMaxChain is zero. Bounding the chain bounds both recovery's
// merge work and the lost-space of superseded diff records.
const DefaultDiffMaxChain = 8

// Options configures a Log.
type Options struct {
	// Fsync selects durable mode: every append and snapshot is fsynced, so
	// committed batches survive OS crashes and power loss. Without it,
	// writes still reach the kernel per batch — surviving a process crash
	// or kill, the failure recovery is designed around — but an OS crash
	// can lose the tail (which recovery then discards cleanly).
	Fsync bool
	// CompactBytes is the WAL size past which NeedsCompaction reports true
	// (0: DefaultCompactBytes).
	CompactBytes int64
	// DiffCompact enables differential compaction: when the delta since the
	// last persisted state encodes to less than half the full snapshot, a
	// compaction appends one diff record instead of rewriting the whole
	// snapshot. Every DiffMaxChain'th compaction (and any compaction whose
	// delta is not small enough) falls back to a full rewrite, which also
	// retires the diff file.
	DiffCompact bool
	// DiffMaxChain bounds the diff chain length (0: DefaultDiffMaxChain).
	DiffMaxChain int
	// FS, when set, routes the log's mutating filesystem operations (file
	// creation, appends, fsyncs, renames, removals) through a test double;
	// nil selects the real filesystem. Read paths always read the real
	// files. See internal/persist/errfs.
	FS FS
	// Metrics, when set, receives the log's persistence counters (WAL
	// appends and bytes, fsyncs, snapshot writes, compactions, recovery
	// outcomes). One Metrics set is shared across all the process's logs.
	Metrics *Metrics
}

func (o Options) compactBytes() int64 {
	if o.CompactBytes <= 0 {
		return DefaultCompactBytes
	}
	return o.CompactBytes
}

func (o Options) diffMaxChain() int {
	if o.DiffMaxChain <= 0 {
		return DefaultDiffMaxChain
	}
	return o.DiffMaxChain
}

// Log is one session's durability state on disk: the snapshot file (plus
// any differential-snapshot chain) and the append-only WAL. Appends are
// serialized internally; compaction can run in the background
// (CompactAsync) with only its rotation step synchronous.
type Log struct {
	dir  string
	opts Options
	fsys FS

	mu         sync.Mutex
	wal        File
	walSize    int64
	enc        []byte // append scratch, reused across batches
	compacting bool
	// poisoned is the first unrecoverable write failure (a failed or
	// partial append, a failed background compaction). It fails every later
	// append loudly: after a partial record, silently appending more would
	// bury acknowledged batches behind a mid-log tear that recovery must
	// treat as the end of the log.
	poisoned error
	closed   bool
	// head is the highest sequence number durably appended (or covered by
	// the snapshot at open); headC is closed and replaced on every advance,
	// waking WaitHead long-polls.
	head  uint64
	headC chan struct{}
	bg    sync.WaitGroup

	// Differential-compaction state, touched only while a compaction is in
	// flight (compactions are serialized by the compacting flag) or during
	// construction: the parsed state as of the last compaction point
	// (lazily loaded from disk), the number of live diff records, and the
	// diff file's size.
	base      *Snapshot
	diffChain int
	diffSize  int64
}

func newLog(dir string, opts Options) *Log {
	return &Log{dir: dir, opts: opts, fsys: opts.fs(), headC: make(chan struct{})}
}

// CreateLog initializes dir (created if needed) with the snapshot written
// by writeSnap and an empty WAL, and returns the log ready for appends. If
// the snapshot covers a nonzero sequence number, follow with SetHead.
func CreateLog(dir string, writeSnap func(io.Writer) error, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	l := newLog(dir, opts)
	if err := l.writeSnapshotFile(writeSnap); err != nil {
		return nil, err
	}
	if err := l.resetWAL(nil); err != nil {
		return nil, err
	}
	return l, nil
}

// ScanInfo summarizes what a read-only directory scan found, for
// inspection tooling.
type ScanInfo struct {
	// WALBytes is the live WAL's size; PrevBytes the leftover wal.prev's
	// (0 when absent — the normal state); DiffBytes the diff file's.
	WALBytes, PrevBytes, DiffBytes int64
	// Records counts the surviving replayable records; Stale the records
	// skipped as already covered by the snapshot (compaction leftovers);
	// TornTail reports a discarded torn final record.
	Records, Stale int
	TornTail       bool
	// Diffs counts the differential snapshots merged over the base
	// snapshot; StaleDiffs those skipped as already covered by it;
	// TornDiff reports a discarded torn final diff record.
	Diffs, StaleDiffs int
	TornDiff          bool
}

// ScanDir reads a session directory without modifying anything: the
// effective snapshot (the base snapshot with every differential snapshot
// merged over it), the records to replay over it (seq-filtered, contiguous,
// torn tail discarded, an interrupted compaction's wal.prev merged), and a
// scan summary. OpenLog performs the same recovery and then repairs the
// files; inspection tooling uses ScanDir alone.
func ScanDir(dir string) (*Snapshot, []Record, ScanInfo, error) {
	snap, _, replay, info, err := scanDirFull(dir)
	return snap, replay, info, err
}

// scanDirFull is ScanDir plus the surviving diff records, which OpenLog
// needs to repair the diff file.
func scanDirFull(dir string) (*Snapshot, []*diff, []Record, ScanInfo, error) {
	var info ScanInfo
	f, err := os.Open(filepath.Join(dir, SnapshotFile))
	if err != nil {
		return nil, nil, nil, info, fmt.Errorf("persist: %w", err)
	}
	snap, err := ReadSnapshot(f)
	f.Close()
	if err != nil {
		return nil, nil, nil, info, err
	}
	// Merge the differential-snapshot chain first: the effective snapshot
	// is base ⊕ diffs, and the WAL's seq filter keys off the merged seq.
	// Diff records at or below the base's seq are compaction leftovers
	// (a crash between a full compaction's snapshot rename and diff-file
	// removal) and are skipped like stale WAL records.
	var live []*diff
	if sc, err := readDiffFile(filepath.Join(dir, DiffFile)); err == nil {
		info.TornDiff = !sc.clean
		for _, d := range sc.diffs {
			if d.seq <= snap.Seq {
				info.StaleDiffs++
				continue
			}
			if err := applyDiff(snap, d); err != nil {
				return nil, nil, nil, info, err
			}
			live = append(live, d)
		}
		info.Diffs = len(live)
		if fi, err := os.Stat(filepath.Join(dir, DiffFile)); err == nil {
			info.DiffBytes = fi.Size()
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil, info, err
	}
	// wal.prev (if an async compaction was cut down mid-flight) strictly
	// precedes wal: rotation creates the fresh wal only after wal.prev is
	// complete, so the prev file can only hold a torn tail if no later
	// records exist at all.
	var recs []Record
	prevClean := true
	if prev, err := readWALFile(filepath.Join(dir, walPrevFile)); err == nil {
		recs, prevClean = prev.records, prev.clean
		if fi, err := os.Stat(filepath.Join(dir, walPrevFile)); err == nil {
			info.PrevBytes = fi.Size()
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil, info, err
	}
	cur, err := readWALFile(filepath.Join(dir, WALFile))
	if errors.Is(err, os.ErrNotExist) {
		// A missing WAL (crash between a rotation's rename and the fresh
		// file) holds nothing and tears nothing.
		cur = walScan{clean: true}
	} else if err != nil {
		return nil, nil, nil, info, err
	}
	if fi, err := os.Stat(filepath.Join(dir, WALFile)); err == nil {
		info.WALBytes = fi.Size()
	}
	if !prevClean && len(cur.records) > 0 {
		return nil, nil, nil, info, fmt.Errorf("persist: wal.prev torn at seq %d yet wal holds later records", lastSeq(recs))
	}
	info.TornTail = !prevClean || !cur.clean
	recs = append(recs, cur.records...)
	// Keep the records beyond the snapshot; everything they skip must chain
	// contiguously from it (a gap means lost records, not a clean tear).
	replay := recs[:0]
	next := snap.Seq + 1
	for _, rec := range recs {
		if rec.Seq <= snap.Seq {
			info.Stale++
			continue
		}
		if rec.Seq != next {
			return nil, nil, nil, info, fmt.Errorf("persist: WAL gap: want seq %d, found %d (snapshot at %d)", next, rec.Seq, snap.Seq)
		}
		replay = append(replay, rec)
		next++
	}
	info.Records = len(replay)
	return snap, live, replay, info, nil
}

// OpenLog recovers dir: it parses the snapshot, merges the differential
// chain and any interrupted compaction's wal.prev with the current WAL,
// discards torn tails, rewrites the WAL (and, when damaged, the diff file)
// to exactly the surviving records, and returns the log (ready for
// appends), the effective snapshot, and the records to replay over it —
// the records with sequence numbers beyond the snapshot's, contiguous and
// in order.
func OpenLog(dir string, opts Options) (*Log, *Snapshot, []Record, error) {
	l := newLog(dir, opts)
	l.fsys.Remove(filepath.Join(dir, snapshotTmpFile)) // stray tmp from a crashed compaction
	l.fsys.Remove(filepath.Join(dir, walTmpFile))      // stray tmp from a crashed open
	l.fsys.Remove(filepath.Join(dir, diffTmpFile))     // stray tmp from a crashed diff repair
	snap, diffs, replay, info, err := scanDirFull(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	opts.Metrics.countRecovery(len(replay), info.TornTail)
	// Rewrite the WAL to exactly the surviving records (tail repair + merge
	// in one step), via tmp+rename so a crash mid-open is itself safe.
	if err := l.resetWAL(replay); err != nil {
		return nil, nil, nil, err
	}
	l.fsys.Remove(filepath.Join(dir, walPrevFile))
	if info.TornDiff || info.StaleDiffs > 0 || (info.DiffBytes > 0 && info.Diffs == 0) {
		if err := l.resetDiff(diffs); err != nil {
			return nil, nil, nil, err
		}
	} else {
		l.diffChain = len(diffs)
		l.diffSize = info.DiffBytes
	}
	if opts.Fsync {
		syncDir(dir)
	}
	l.head = snap.Seq
	if s := lastSeq(replay); s > l.head {
		l.head = s
	}
	return l, snap, replay, nil
}

type walScan struct {
	records []Record
	clean   bool
}

func readWALFile(path string) (walScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return walScan{}, err
	}
	defer f.Close()
	if err := checkWALMagic(f); err != nil {
		if errors.Is(err, errTorn) {
			return walScan{clean: false}, nil // crash before the magic landed
		}
		return walScan{}, fmt.Errorf("persist: %s: %w", path, err)
	}
	recs, clean, err := scanWAL(f)
	if err != nil {
		return walScan{}, fmt.Errorf("persist: %s: %w", path, err)
	}
	return walScan{records: recs, clean: clean}, nil
}

func lastSeq(recs []Record) uint64 {
	if len(recs) == 0 {
		return 0
	}
	return recs[len(recs)-1].Seq
}

// resetWAL replaces the WAL with one holding exactly recs, atomically via
// tmp+rename, and leaves l.wal open for appends. Caller must not hold l.mu
// with appends in flight (used only at construction).
func (l *Log) resetWAL(recs []Record) error {
	if l.wal != nil {
		l.wal.Close()
	}
	path := filepath.Join(l.dir, WALFile)
	tmp := filepath.Join(l.dir, walTmpFile)
	buf := walMagic[:]
	for _, rec := range recs {
		buf = appendRecord(buf, rec)
	}
	if err := writeFileSync(l.fsys, tmp, buf, l.opts.Fsync); err != nil {
		return err
	}
	if err := l.fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if l.opts.Fsync {
		syncDir(l.dir)
	}
	f, err := l.fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	l.wal, l.walSize = f, int64(len(buf))
	return nil
}

// resetDiff rewrites the diff file to exactly the surviving diff records
// (removing it when none survive), atomically via tmp+rename. Used only at
// construction, like resetWAL.
func (l *Log) resetDiff(diffs []*diff) error {
	path := filepath.Join(l.dir, DiffFile)
	if len(diffs) == 0 {
		if err := l.fsys.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("persist: %w", err)
		}
		l.diffChain, l.diffSize = 0, 0
		return nil
	}
	buf := diffMagic[:]
	for _, d := range diffs {
		buf = appendDiffRecord(buf, d)
	}
	tmp := filepath.Join(l.dir, diffTmpFile)
	if err := writeFileSync(l.fsys, tmp, buf, l.opts.Fsync); err != nil {
		return err
	}
	if err := l.fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	l.diffChain, l.diffSize = len(diffs), int64(len(buf))
	return nil
}

// Append journals one applied batch. The write reaches the kernel before
// Append returns (and stable storage in Fsync mode), so an acknowledged
// batch survives a process crash. A failed write poisons the log: a partial
// record is a tear recovery treats as end-of-log, so appending past it
// would silently bury every later batch behind it.
//
//distec:hotpath
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("persist: log closed")
	}
	if l.poisoned != nil {
		return fmt.Errorf("persist: log poisoned: %w", l.poisoned)
	}
	if size := recordHeaderBytes + recordPayloadFixed + updateBytes*len(rec.Updates); size > maxRecordBytes {
		// An oversized record would be written whole yet rejected by the
		// reader's corruption bound — acknowledged but unrecoverable, along
		// with everything after it. Refuse it up front.
		return fmt.Errorf("persist: record of %d bytes exceeds the WAL record limit %d", size, maxRecordBytes)
	}
	l.enc = appendRecord(l.enc[:0], rec)
	// Writing (and fsyncing) under l.mu is this type's design, not an
	// accident: the lock is the WAL's serialization point, and the
	// durability contract is exactly "the write completed before Append
	// returned". Callers own the latency tradeoff via Options.Fsync.
	//distec:nolint lockio
	n, err := l.wal.Write(l.enc)
	l.walSize += int64(n)
	if err != nil {
		l.poisoned = fmt.Errorf("WAL append wrote %d of %d bytes: %w", n, len(l.enc), err)
		return fmt.Errorf("persist: %w", l.poisoned)
	}
	if l.opts.Fsync {
		//distec:nolint lockio
		if err := l.wal.Sync(); err != nil {
			// The record's durability is unknown; no later append may be
			// acknowledged on top of it.
			l.poisoned = fmt.Errorf("WAL fsync: %w", err)
			return fmt.Errorf("persist: %w", l.poisoned)
		}
	}
	l.opts.Metrics.countAppend(n, l.opts.Fsync)
	if rec.Seq > l.head {
		l.head = rec.Seq
		l.broadcastHeadLocked()
	}
	return nil
}

func (l *Log) broadcastHeadLocked() {
	close(l.headC)
	l.headC = make(chan struct{})
}

// Head returns the highest sequence number the log has durably appended
// (or that the snapshot covered at open).
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// SetHead records the sequence number a freshly created log's snapshot
// covers. CreateLog writes the snapshot opaquely and assumes sequence 0;
// callers creating a log from a session that has already applied batches
// (a promoted replica, a re-homed session) call SetHead once right after.
func (l *Log) SetHead(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.head {
		l.head = seq
		l.broadcastHeadLocked()
	}
}

// WaitHead blocks until the log's head sequence exceeds after, the log
// closes or is poisoned, or ctx is done, and returns the head it observed
// last — the long-poll primitive behind WAL streaming replication.
func (l *Log) WaitHead(ctx context.Context, after uint64) uint64 {
	l.mu.Lock()
	for l.head <= after && !l.closed && l.poisoned == nil && ctx.Err() == nil {
		c := l.headC
		l.mu.Unlock()
		select {
		case <-ctx.Done():
		case <-c:
		}
		l.mu.Lock()
	}
	head := l.head
	l.mu.Unlock()
	return head
}

// WALSize returns the WAL's current size in bytes.
func (l *Log) WALSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.walSize
}

// Dir returns the session directory the log manages.
func (l *Log) Dir() string { return l.dir }

// NeedsCompaction reports whether the WAL has outgrown the compaction
// threshold and no compaction is already in flight.
func (l *Log) NeedsCompaction() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.compacting && l.poisoned == nil && !l.closed && l.walSize >= l.opts.compactBytes()
}

// Compact persists the state encodedSnap (a WriteSnapshot-encoded state
// that must cover every record currently in the WAL) and retires the WAL,
// synchronously — as a full snapshot rewrite, or as one appended diff
// record when Options.DiffCompact is set and the delta is small. The caller
// guarantees no concurrent Append (the distec journal hook runs under the
// session lock, which serializes both).
func (l *Log) Compact(encodedSnap []byte) error {
	if err := l.rotate(); err != nil {
		return err
	}
	err := l.finishCompaction(encodedSnap)
	l.opts.Metrics.countCompaction(err)
	l.mu.Lock()
	l.compacting = false
	if err != nil && l.poisoned == nil {
		l.poisoned = err
	}
	l.mu.Unlock()
	return err
}

// CompactAsync is Compact with only the rotation step synchronous: the
// snapshot write and old-WAL removal run in the background (serialized with
// Close). A background failure poisons the log — the next Append reports it.
func (l *Log) CompactAsync(encodedSnap []byte) error {
	if err := l.rotate(); err != nil {
		return err
	}
	l.bg.Add(1)
	go func() {
		defer l.bg.Done()
		err := l.finishCompaction(encodedSnap)
		l.opts.Metrics.countCompaction(err)
		l.mu.Lock()
		l.compacting = false
		if err != nil && l.poisoned == nil {
			l.poisoned = err
		}
		l.mu.Unlock()
	}()
	return nil
}

// rotate moves the live WAL aside (wal → wal.prev) and opens a fresh one,
// marking a compaction in flight.
func (l *Log) rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("persist: log closed")
	}
	if l.compacting {
		return fmt.Errorf("persist: compaction already in flight")
	}
	if l.poisoned != nil {
		return fmt.Errorf("persist: log poisoned: %w", l.poisoned)
	}
	// Rotation swaps files under l.mu on purpose: no Append may land
	// between retiring the old WAL and opening the fresh one, or it would
	// be lost to both. Rotation is rare (one per compaction) and brief.
	//distec:nolint lockio
	l.wal.Close()
	//distec:nolint lockio
	if err := l.fsys.Rename(filepath.Join(l.dir, WALFile), filepath.Join(l.dir, walPrevFile)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	path := filepath.Join(l.dir, WALFile)
	//distec:nolint lockio
	if err := writeFileSync(l.fsys, path, walMagic[:], l.opts.Fsync); err != nil {
		return err
	}
	//distec:nolint lockio
	f, err := l.fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	l.wal, l.walSize = f, int64(len(walMagic))
	l.compacting = true
	return nil
}

// finishCompaction lands the new state — an appended diff record when
// differential compaction applies, a full snapshot rewrite otherwise — and
// removes the retired WAL. If it fails partway, recovery still works: the
// old state plus wal.prev plus the live WAL replay to the same point, and
// stale records (WAL and diff alike) are skipped by sequence number.
func (l *Log) finishCompaction(encodedSnap []byte) error {
	if l.opts.DiffCompact {
		if done, err := l.tryDiffCompaction(encodedSnap); done || err != nil {
			return err
		}
	}
	if err := l.writeSnapshotFile(func(w io.Writer) error {
		_, err := w.Write(encodedSnap)
		return err
	}); err != nil {
		return err
	}
	// The snapshot now covers the whole diff chain; retire it. A crash
	// before this removal leaves stale diff records recovery skips.
	if err := l.fsys.Remove(filepath.Join(l.dir, DiffFile)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("persist: %w", err)
	}
	l.diffChain, l.diffSize = 0, 0
	if cur, err := ReadSnapshot(bytes.NewReader(encodedSnap)); err == nil {
		l.base = cur
	} else {
		l.base = nil
	}
	if err := l.fsys.Remove(filepath.Join(l.dir, walPrevFile)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if l.opts.Fsync {
		syncDir(l.dir)
	}
	return nil
}

// tryDiffCompaction attempts the differential path: compute the delta from
// the last persisted state to encodedSnap and append it to the diff file.
// It reports done=true when the compaction completed differentially; (false,
// nil) falls back to a full rewrite — because the chain is at its bound,
// the delta is not small enough to pay, or the base state is unusable. A
// torn diff append also falls back: the full rewrite retires the diff file,
// healing the tear.
func (l *Log) tryDiffCompaction(encodedSnap []byte) (bool, error) {
	if l.diffChain >= l.opts.diffMaxChain() {
		return false, nil
	}
	cur, err := ReadSnapshot(bytes.NewReader(encodedSnap))
	if err != nil {
		return false, nil
	}
	base, err := l.loadBase()
	if err != nil {
		return false, nil
	}
	if cur.Seq <= base.Seq {
		// Nothing new since the last compaction point (an explicit compact
		// of an idle session): the retired WAL holds only stale records.
		if err := l.fsys.Remove(filepath.Join(l.dir, walPrevFile)); err != nil {
			return true, fmt.Errorf("persist: %w", err)
		}
		if l.opts.Fsync {
			syncDir(l.dir)
		}
		return true, nil
	}
	d, err := computeDiff(base, cur)
	if err != nil {
		return false, nil
	}
	size := encodedDiffSize(d)
	if size > maxRecordBytes || 2*size >= len(encodedSnap) {
		return false, nil
	}
	if err := l.appendDiffFile(d, size); err != nil {
		return false, nil
	}
	l.base = cur
	if err := l.fsys.Remove(filepath.Join(l.dir, walPrevFile)); err != nil {
		return true, fmt.Errorf("persist: %w", err)
	}
	if l.opts.Fsync {
		syncDir(l.dir)
	}
	return true, nil
}

// loadBase returns the state as of the last compaction point: the cached
// copy when a compaction already ran, else the on-disk snapshot with the
// diff chain merged (without the WAL — exactly what compaction supersedes).
func (l *Log) loadBase() (*Snapshot, error) {
	if l.base != nil {
		return l.base, nil
	}
	f, err := os.Open(filepath.Join(l.dir, SnapshotFile))
	if err != nil {
		return nil, err
	}
	snap, err := ReadSnapshot(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	if sc, err := readDiffFile(filepath.Join(l.dir, DiffFile)); err == nil {
		for _, d := range sc.diffs {
			if d.seq <= snap.Seq {
				continue
			}
			if err := applyDiff(snap, d); err != nil {
				return nil, err
			}
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	l.base = snap
	return snap, nil
}

// appendDiffFile appends one framed diff record (creating the file, magic
// first, when absent) and makes it durable in Fsync mode. The caller
// treats any failure as a torn tail and falls back to a full rewrite.
func (l *Log) appendDiffFile(d *diff, size int) error {
	path := filepath.Join(l.dir, DiffFile)
	buf := make([]byte, 0, size+len(diffMagic))
	if l.diffSize == 0 {
		buf = append(buf, diffMagic[:]...)
	}
	buf = appendDiffRecord(buf, d)
	f, err := l.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if l.opts.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	l.diffChain++
	l.diffSize += int64(len(buf))
	l.opts.Metrics.countDiffCompaction(len(buf))
	return nil
}

// writeSnapshotFile writes the snapshot via tmp+rename so the previous
// snapshot stays intact until the new one is durably complete.
func (l *Log) writeSnapshotFile(writeSnap func(io.Writer) error) error {
	tmp := filepath.Join(l.dir, snapshotTmpFile)
	f, err := l.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := writeSnap(f); err != nil {
		f.Close()
		l.fsys.Remove(tmp)
		return err
	}
	if l.opts.Fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if err := l.fsys.Rename(tmp, filepath.Join(l.dir, SnapshotFile)); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if l.opts.Fsync {
		syncDir(l.dir)
	}
	l.opts.Metrics.countSnapshot()
	return nil
}

// Close waits for any background compaction and closes the WAL. The first
// background failure, if any, is returned.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.broadcastHeadLocked() // wake replication long-polls for a clean exit
	l.mu.Unlock()
	l.bg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.wal != nil {
		// Closing under l.mu keeps a racing Append from writing into a
		// closed descriptor; the log is already marked closed, so nothing
		// else can queue behind this.
		//distec:nolint lockio
		err = l.wal.Close()
	}
	if l.poisoned != nil {
		return l.poisoned
	}
	return err
}

func writeFileSync(fsys FS, path string, data []byte, fsync bool) error {
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("persist: %w", err)
	}
	if fsync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("persist: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so renames within it are durable; best effort
// (some filesystems reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
