package persist_test

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"github.com/distec/distec/internal/persist"
	"github.com/distec/distec/internal/persist/errfs"
)

// The single-fault durability property: whatever one write, fsync, or
// rename the filesystem fails — torn mid-write or failed outright — no
// batch whose Append returned nil may be missing after recovery, and the
// repaired log must serve appends again. The script below is journaled
// once over a clean errfs to enumerate its operations, then replayed in a
// fresh directory once per (operation kind, index, tear shape) with that
// single fault armed.

const (
	scriptBatches   = 12
	scriptCompactAt = 6
)

// scriptSnapshot is the session state after seq batches: edges (i, i+1)
// for i = 1..seq, all active.
func scriptSnapshot(seq uint64) *persist.Snapshot {
	s := &persist.Snapshot{Algorithm: "bko", LivePalette: 3, Seq: seq, N: 32}
	for i := uint64(1); i <= seq; i++ {
		s.EdgeU = append(s.EdgeU, int32(i))
		s.EdgeV = append(s.EdgeV, int32(i+1))
		s.Active = append(s.Active, true)
		s.Colors = append(s.Colors, 0)
	}
	return s
}

// runScript journals batches until the first error and returns the highest
// acknowledged sequence number (0 when even creation failed). Batch seq
// inserts edge (seq, seq+1); a compaction covering 1..scriptCompactAt runs
// mid-stream, exercising rotation, snapshot rewrite (or diff append), and
// retirement under fault.
func runScript(dir string, fsys persist.FS, diffCompact bool) uint64 {
	opts := persist.Options{Fsync: true, FS: fsys, DiffCompact: diffCompact}
	l, err := persist.CreateLog(dir, func(w io.Writer) error {
		return persist.WriteSnapshot(w, scriptSnapshot(0))
	}, opts)
	if err != nil {
		return 0
	}
	defer l.Close()
	var acked uint64
	for seq := uint64(1); seq <= scriptBatches; seq++ {
		rec := persist.Record{Seq: seq, Updates: []persist.Update{
			{Op: persist.OpInsert, U: int32(seq), V: int32(seq + 1)},
		}}
		if err := l.Append(rec); err != nil {
			return acked
		}
		acked = seq
		if seq == scriptCompactAt {
			var buf bytes.Buffer
			if err := persist.WriteSnapshot(&buf, scriptSnapshot(seq)); err != nil {
				return acked
			}
			if err := l.Compact(buf.Bytes()); err != nil {
				// A failed compaction poisons the log: later appends fail and
				// stay unacknowledged. Everything acked so far must survive.
				return acked
			}
		}
	}
	return acked
}

// verifyRecovered asserts the recovery invariant on dir: a clean scan
// whose head covers every acked batch, state exactly matching the batch
// stream at that head, and a log that accepts appends after repair.
func verifyRecovered(t *testing.T, dir string, acked uint64, label string) {
	t.Helper()
	snap, replay, _, err := persist.ScanDir(dir)
	if err != nil {
		t.Fatalf("%s: recovery scan failed with %d acked batches: %v", label, acked, err)
	}
	head := snap.Seq
	if n := len(replay); n > 0 {
		head = replay[n-1].Seq
	}
	if head < acked {
		t.Fatalf("%s: acked through seq %d but recovery reaches only %d", label, acked, head)
	}
	// The state at head must be exactly edges (1,2)..(head,head+1): an
	// unacknowledged-but-durable tail record is fine (head advances), a
	// half-applied or mangled batch is not.
	set := map[[2]int32]bool{}
	for e := range snap.EdgeU {
		if snap.Active[e] {
			set[[2]int32{snap.EdgeU[e], snap.EdgeV[e]}] = true
		}
	}
	for _, rec := range replay {
		for _, up := range rec.Updates {
			key := [2]int32{up.U, up.V}
			if up.Op == persist.OpInsert {
				set[key] = true
			} else {
				delete(set, key)
			}
		}
	}
	if uint64(len(set)) != head {
		t.Fatalf("%s: %d edges recovered at head %d (acked %d)", label, len(set), head, acked)
	}
	for i := uint64(1); i <= head; i++ {
		if !set[[2]int32{int32(i), int32(i + 1)}] {
			t.Fatalf("%s: edge (%d,%d) lost (head %d, acked %d)", label, i, i+1, head, acked)
		}
	}
	l, snap2, replay2, err := persist.OpenLog(dir, persist.Options{})
	if err != nil {
		t.Fatalf("%s: OpenLog after fault: %v", label, err)
	}
	defer l.Close()
	head2 := snap2.Seq
	if n := len(replay2); n > 0 {
		head2 = replay2[n-1].Seq
	}
	if head2 != head {
		t.Fatalf("%s: OpenLog head %d != ScanDir head %d", label, head2, head)
	}
	if err := l.Append(persist.Record{Seq: head + 1}); err != nil {
		t.Fatalf("%s: append after repair: %v", label, err)
	}
}

func TestSingleFaultNeverLosesAckedBatch(t *testing.T) {
	for _, mode := range []struct {
		name string
		diff bool
	}{{"full-compaction", false}, {"diff-compaction", true}} {
		t.Run(mode.name, func(t *testing.T) {
			probe := errfs.New()
			probeDir := filepath.Join(t.TempDir(), "probe")
			if acked := runScript(probeDir, probe, mode.diff); acked != scriptBatches {
				t.Fatalf("fault-free probe acked %d of %d batches", acked, scriptBatches)
			}
			verifyRecovered(t, probeDir, scriptBatches, "probe")
			writes, syncs, renames := probe.Ops()
			if writes == 0 || syncs == 0 || renames == 0 {
				t.Fatalf("probe counted writes=%d syncs=%d renames=%d — the seam is not wired", writes, syncs, renames)
			}

			base := t.TempDir()
			check := func(label string, fsys *errfs.FS) {
				t.Helper()
				dir := filepath.Join(base, label)
				acked := runScript(dir, fsys, mode.diff)
				if fsys.Fired() == "" {
					t.Fatalf("%s: fault never fired", label)
				}
				if _, err := os.Stat(filepath.Join(dir, persist.SnapshotFile)); err != nil {
					// Creation died before the first snapshot landed: nothing
					// was ever acknowledged, so nothing can be lost.
					if acked > 0 {
						t.Fatalf("%s: %d batches acked with no snapshot on disk", label, acked)
					}
					return
				}
				verifyRecovered(t, dir, acked, label)
			}

			for k := 1; k <= writes; k++ {
				// partial 0: the op fails before any byte; 1 and 7 land torn
				// prefixes mid-header and mid-payload (the PR 5 cut shapes).
				for _, partial := range []int{0, 1, 7} {
					fsys := errfs.New()
					fsys.FailWrite(k, partial)
					check(fmt.Sprintf("write-%d-p%d", k, partial), fsys)
				}
			}
			for k := 1; k <= syncs; k++ {
				fsys := errfs.New()
				fsys.FailSync(k)
				check(fmt.Sprintf("sync-%d", k), fsys)
			}
			for k := 1; k <= renames; k++ {
				fsys := errfs.New()
				fsys.FailRename(k)
				check(fmt.Sprintf("rename-%d", k), fsys)
			}
		})
	}
}
