package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// walMagic opens every WAL file; the trailing byte is the format version.
var walMagic = [8]byte{'D', 'E', 'C', 'W', 'A', 'L', 0, 1}

// maxRecordBytes bounds one WAL record's payload; a length prefix beyond it
// is treated as corruption, not an allocation request. It comfortably holds
// the largest update batch any caller submits (the daemon caps batches at
// 10⁵ updates ≈ 0.9 MB).
const maxRecordBytes = 1 << 26

// Op is one update's kind in a WAL record.
type Op uint8

const (
	// OpInsert adds the active edge {U, V}.
	OpInsert Op = 1
	// OpDelete removes the active edge {U, V}.
	OpDelete Op = 2
)

// Update is one edge update of a WAL record.
type Update struct {
	Op   Op
	U, V int32
}

// Record is one applied update batch: Seq is its 1-based position in the
// session's applied-batch sequence (contiguous, no gaps), Updates the batch
// body — exactly the applied prefix when the originating batch failed
// midway, so replay reproduces precisely the state the session reached.
type Record struct {
	Seq     uint64
	Updates []Update
}

// record wire format, after the file magic:
//
//	u32 payload length | u32 CRC-32C(payload) | payload
//	payload = u64 seq | u32 count | count × (u8 op, u32 u, u32 v)
const (
	recordHeaderBytes  = 8
	recordPayloadFixed = 12
	updateBytes        = 9
)

// appendRecord encodes rec onto buf and returns the extended slice. Every
// byte of the extension is overwritten, so a recycled buffer (Log.enc) is
// extended without the per-call allocation a make-and-append would cost on
// the hot append path.
//
//distec:hotpath
func appendRecord(buf []byte, rec Record) []byte {
	payloadLen := recordPayloadFixed + updateBytes*len(rec.Updates)
	start := len(buf)
	need := start + recordHeaderBytes + payloadLen
	if cap(buf) < need {
		buf = append(buf, make([]byte, need-start)...)
	} else {
		buf = buf[:need]
	}
	payload := buf[start+recordHeaderBytes : need]
	binary.LittleEndian.PutUint64(payload[0:], rec.Seq)
	binary.LittleEndian.PutUint32(payload[8:], uint32(len(rec.Updates)))
	off := recordPayloadFixed
	for _, up := range rec.Updates {
		payload[off] = byte(up.Op)
		binary.LittleEndian.PutUint32(payload[off+1:], uint32(up.U))
		binary.LittleEndian.PutUint32(payload[off+5:], uint32(up.V))
		off += updateBytes
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// errTorn marks the end of the valid prefix of a WAL file: a record whose
// length, payload, or checksum is incomplete or wrong. Scanning treats it
// as end-of-log (a crash tears at most the final record; everything after a
// tear is untrusted by construction).
var errTorn = errors.New("persist: torn WAL record")

// readRecord parses one record from r. It returns errTorn for any
// incomplete or checksum-failing record and io.EOF at a clean end.
func readRecord(r io.Reader) (Record, error) {
	var header [recordHeaderBytes]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, errTorn // partial header
	}
	payloadLen := binary.LittleEndian.Uint32(header[0:])
	wantCRC := binary.LittleEndian.Uint32(header[4:])
	if payloadLen < recordPayloadFixed || payloadLen > maxRecordBytes {
		return Record{}, errTorn
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, errTorn
	}
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return Record{}, errTorn
	}
	rec := Record{Seq: binary.LittleEndian.Uint64(payload[0:])}
	count := binary.LittleEndian.Uint32(payload[8:])
	if uint64(recordPayloadFixed)+uint64(count)*updateBytes != uint64(payloadLen) {
		return Record{}, errTorn
	}
	rec.Updates = make([]Update, count)
	off := recordPayloadFixed
	for i := range rec.Updates {
		rec.Updates[i] = Update{
			Op: Op(payload[off]),
			U:  int32(binary.LittleEndian.Uint32(payload[off+1:])),
			V:  int32(binary.LittleEndian.Uint32(payload[off+5:])),
		}
		off += updateBytes
	}
	return rec, nil
}

// scanWAL parses a WAL stream after its magic: the records of the valid
// prefix, and clean=false when a torn record (or trailing garbage) was
// discarded at the end.
func scanWAL(r io.Reader) (recs []Record, clean bool, err error) {
	for {
		rec, err := readRecord(r)
		if err == io.EOF {
			return recs, true, nil
		}
		if errors.Is(err, errTorn) {
			return recs, false, nil
		}
		if err != nil {
			return recs, false, err
		}
		recs = append(recs, rec)
	}
}

// checkWALMagic consumes and verifies the file magic. A short file is a
// tear (the crash hit the very first write); a present-but-wrong magic is
// corruption.
func checkWALMagic(r io.Reader) error {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return errTorn
	}
	if magic != walMagic {
		return fmt.Errorf("persist: bad WAL magic %q", magic[:])
	}
	return nil
}
