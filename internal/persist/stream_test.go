package persist

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	snap := sampleSnapshot(4)
	recs := []Record{
		{Seq: 5, Updates: []Update{{Op: OpInsert, U: 1, V: 3}}},
		{Seq: 6, Updates: []Update{{Op: OpDelete, U: 1, V: 3}, {Op: OpInsert, U: 0, V: 2}}},
	}
	for _, withSnap := range []bool{true, false} {
		var buf bytes.Buffer
		s := snap
		if !withSnap {
			s = nil
		}
		if err := WriteStream(&buf, s, recs); err != nil {
			t.Fatal(err)
		}
		gotSnap, gotRecs, err := ReadStream(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if (gotSnap != nil) != withSnap {
			t.Fatalf("withSnap=%v: snapshot presence %v", withSnap, gotSnap != nil)
		}
		if withSnap && fmt.Sprintf("%+v", gotSnap) != fmt.Sprintf("%+v", snap) {
			t.Fatalf("snapshot mismatch")
		}
		if fmt.Sprintf("%+v", gotRecs) != fmt.Sprintf("%+v", recs) {
			t.Fatalf("records mismatch: %+v", gotRecs)
		}
		// A truncation landing mid-record or mid-header is an error — a
		// failed transfer, never data. (A cut at an exact record boundary
		// reads as a shorter valid stream; the follower re-polls from its
		// head, so nothing is lost.)
		data := buf.Bytes()
		for _, cut := range []int{len(data) - 1, len(data) - 5, 13, 3} {
			if cut < 0 || cut >= len(data) {
				continue
			}
			if _, _, err := ReadStream(bytes.NewReader(data[:cut])); err == nil {
				t.Fatalf("withSnap=%v cut=%d: truncation accepted", withSnap, cut)
			}
		}
	}
	// Empty stream (no snapshot, no records) round-trips: the long-poll
	// timeout response.
	var buf bytes.Buffer
	if err := WriteStream(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	gotSnap, gotRecs, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil || gotSnap != nil || len(gotRecs) != 0 {
		t.Fatalf("empty stream: snap=%v recs=%d err=%v", gotSnap, len(gotRecs), err)
	}
}

func TestReadState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, sampleSnapshot(0), Options{})
	appendN(t, l, 1, 5)

	// Bootstrap: the follower holds nothing, so the snapshot comes along
	// even though it sits at seq 0.
	snap, recs, err := ReadState(dir, 0, true)
	if err != nil || snap == nil || len(recs) != 5 {
		t.Fatalf("bootstrap: snap=%v recs=%d err=%v", snap != nil, len(recs), err)
	}
	// Caught-up tail: records beyond from only.
	snap, recs, err = ReadState(dir, 3, false)
	if err != nil || snap != nil || len(recs) != 2 || recs[0].Seq != 4 {
		t.Fatalf("tail: snap=%v recs=%+v err=%v", snap != nil, recs, err)
	}
	// Fully caught up: empty.
	snap, recs, err = ReadState(dir, 5, false)
	if err != nil || snap != nil || len(recs) != 0 {
		t.Fatalf("caught up: snap=%v recs=%d err=%v", snap != nil, len(recs), err)
	}

	// After compaction past the follower's position, the snapshot comes
	// back.
	state := sampleSnapshot(5)
	if err := l.Compact(encodeSnapshot(t, state)); err != nil {
		t.Fatal(err)
	}
	l.Close()
	snap, recs, err = ReadState(dir, 3, false)
	if err != nil || snap == nil || snap.Seq != 5 || len(recs) != 0 {
		t.Fatalf("post-compaction: snap=%v recs=%d err=%v", snap, len(recs), err)
	}
}
