package persist

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleSnapshot builds a small but non-trivial snapshot: a 6-cycle with
// one tombstoned edge.
func sampleSnapshot(seq uint64) *Snapshot {
	s := &Snapshot{
		Algorithm:     "bko",
		Seed:          42,
		ConfigPalette: 0,
		LivePalette:   3,
		Seq:           seq,
		N:             6,
	}
	for i := 0; i < 6; i++ {
		u, v := int32(i), int32((i+1)%6)
		if u > v {
			u, v = v, u
		}
		s.EdgeU = append(s.EdgeU, u)
		s.EdgeV = append(s.EdgeV, v)
		s.Active = append(s.Active, i != 3)
		if i == 3 {
			s.Colors = append(s.Colors, -1)
		} else {
			s.Colors = append(s.Colors, int32(i%3))
		}
	}
	return s
}

func encodeSnapshot(t *testing.T, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot(7)
	data := encodeSnapshot(t, want)
	got, err := ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Snapshots compose with surrounding stream content: reading must stop
	// exactly at the trailer.
	r := bytes.NewReader(append(append([]byte(nil), data...), "tail"...))
	if _, err := ReadSnapshot(r); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(r)
	if string(rest) != "tail" {
		t.Fatalf("reader consumed past the snapshot: %q left", rest)
	}
	// Odd edge counts exercise the color-array framing.
	odd := sampleSnapshot(1)
	odd.EdgeU = append(odd.EdgeU, 0)
	odd.EdgeV = append(odd.EdgeV, 2)
	odd.Active = append(odd.Active, true)
	odd.Colors = append(odd.Colors, 2)
	got, err = ReadSnapshot(bytes.NewReader(encodeSnapshot(t, odd)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Colors) != 7 || got.Colors[6] != 2 {
		t.Fatalf("odd-m colors: %v", got.Colors)
	}
}

// TestSnapshotCorruption flips, truncates, and oversizes snapshots: every
// mutation must yield an error, never a silent wrong read or a panic.
func TestSnapshotCorruption(t *testing.T) {
	data := encodeSnapshot(t, sampleSnapshot(3))
	t.Run("every-bit-flip", func(t *testing.T) {
		for i := range data {
			for bit := 0; bit < 8; bit++ {
				bad := append([]byte(nil), data...)
				bad[i] ^= 1 << bit
				got, err := ReadSnapshot(bytes.NewReader(bad))
				if err == nil {
					t.Fatalf("byte %d bit %d: corruption accepted: %+v", i, bit, got)
				}
			}
		}
	})
	t.Run("every-truncation", func(t *testing.T) {
		for cut := 0; cut < len(data); cut++ {
			if _, err := ReadSnapshot(bytes.NewReader(data[:cut])); err == nil {
				t.Fatalf("truncation at %d accepted", cut)
			}
		}
	})
	t.Run("oversized-header", func(t *testing.T) {
		huge := sampleSnapshot(1)
		huge.N = MaxSnapshotNodes + 1
		if err := WriteSnapshot(io.Discard, huge); err == nil {
			t.Fatal("oversized node count written")
		}
	})
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Updates: []Update{{Op: OpInsert, U: 0, V: 1}}},
		{Seq: 2, Updates: []Update{{Op: OpDelete, U: 0, V: 1}, {Op: OpInsert, U: 2, V: 5}}},
		{Seq: 3, Updates: nil},
	}
	var buf []byte
	boundaries := map[int]bool{0: true}
	for _, rec := range recs {
		buf = appendRecord(buf, rec)
		boundaries[len(buf)] = true
	}
	got, clean, err := scanWAL(bytes.NewReader(buf))
	if err != nil || !clean {
		t.Fatalf("scan: clean=%v err=%v", clean, err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", recs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, recs)
	}
	// Any truncation point drops at most the final record and is reported
	// as unclean; earlier records always survive intact.
	for cut := 0; cut < len(buf); cut++ {
		got, clean, err := scanWAL(bytes.NewReader(buf[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if clean != boundaries[cut] {
			t.Fatalf("cut %d: clean=%v, want %v (record boundary)", cut, clean, boundaries[cut])
		}
		for i, rec := range got {
			if rec.Seq != recs[i].Seq || len(rec.Updates) != len(recs[i].Updates) {
				t.Fatalf("cut %d: surviving record %d mangled: %+v", cut, i, rec)
			}
		}
	}
	// A bit flip invalidates the record it lands in (and ends the log there).
	for i := range buf {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x40
		got, clean, err := scanWAL(bytes.NewReader(bad))
		if err != nil {
			t.Fatalf("flip %d: %v", i, err)
		}
		if clean && len(got) == len(recs) {
			// The flip must have corrupted something; only flips inside a
			// record's own bytes are required to kill it, but none may pass
			// through unnoticed with identical content.
			same := true
			for j := range got {
				if fmt.Sprintf("%+v", got[j]) != fmt.Sprintf("%+v", recs[j]) {
					same = false
				}
			}
			if same {
				t.Fatalf("flip %d: checksum missed the corruption", i)
			}
		}
	}
}

func mustCreateLog(t *testing.T, dir string, snap *Snapshot, opts Options) *Log {
	t.Helper()
	l, err := CreateLog(dir, func(w io.Writer) error { return WriteSnapshot(w, snap) }, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func appendN(t *testing.T, l *Log, from, count uint64) {
	t.Helper()
	for seq := from; seq < from+count; seq++ {
		rec := Record{Seq: seq, Updates: []Update{{Op: OpInsert, U: int32(seq), V: int32(seq + 1)}}}
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLogCreateAppendRecover(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, sampleSnapshot(0), Options{})
	appendN(t, l, 1, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, snap, replay, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if snap.Seq != 0 || len(replay) != 5 {
		t.Fatalf("snap.Seq=%d replay=%d", snap.Seq, len(replay))
	}
	for i, rec := range replay {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("replay[%d].Seq = %d", i, rec.Seq)
		}
	}
	// Appends continue after recovery.
	appendN(t, l2, 6, 1)
	l2.Close()
	_, _, replay, err = OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 6 {
		t.Fatalf("replay after reopen+append: %d records", len(replay))
	}
}

// TestLogTornTail cuts the WAL at every byte offset inside its final
// record: recovery must keep the earlier records and discard the tear, and
// the repaired WAL must accept appends cleanly.
func TestLogTornTail(t *testing.T) {
	base := t.TempDir()
	build := func(name string) string {
		dir := filepath.Join(base, name)
		l := mustCreateLog(t, dir, sampleSnapshot(0), Options{})
		appendN(t, l, 1, 3)
		l.Close()
		return dir
	}
	ref := build("ref")
	full, err := os.ReadFile(filepath.Join(ref, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	// The final record starts after magic + two records of equal size.
	recSize := (len(full) - len(walMagic)) / 3
	lastStart := len(full) - recSize
	for cut := lastStart; cut < len(full); cut++ {
		dir := build(fmt.Sprintf("cut%d", cut))
		if err := os.Truncate(filepath.Join(dir, WALFile), int64(cut)); err != nil {
			t.Fatal(err)
		}
		l, snap, replay, err := OpenLog(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if snap.Seq != 0 || len(replay) != 2 {
			t.Fatalf("cut %d: snap.Seq=%d replay=%d, want 2 surviving records", cut, snap.Seq, len(replay))
		}
		appendN(t, l, 3, 1)
		l.Close()
		_, _, replay, err = OpenLog(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		if len(replay) != 3 {
			t.Fatalf("cut %d: %d records after repair+append", cut, len(replay))
		}
	}
}

func TestLogCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, sampleSnapshot(0), Options{CompactBytes: 64})
	appendN(t, l, 1, 4)
	if !l.NeedsCompaction() {
		t.Fatalf("WAL at %d bytes past threshold 64 not flagged", l.WALSize())
	}
	if err := l.Compact(encodeSnapshot(t, sampleSnapshot(4))); err != nil {
		t.Fatal(err)
	}
	if l.NeedsCompaction() {
		t.Fatal("fresh WAL flagged for compaction")
	}
	appendN(t, l, 5, 1)
	l.Close()
	_, snap, replay, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 4 || len(replay) != 1 || replay[0].Seq != 5 {
		t.Fatalf("after compaction: snap.Seq=%d replay=%+v", snap.Seq, replay)
	}
	if _, err := os.Stat(filepath.Join(dir, walPrevFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("wal.prev left behind: %v", err)
	}
}

func TestLogCompactAsync(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, sampleSnapshot(0), Options{CompactBytes: 64})
	appendN(t, l, 1, 4)
	if err := l.CompactAsync(encodeSnapshot(t, sampleSnapshot(4))); err != nil {
		t.Fatal(err)
	}
	// Appends interleave with the background snapshot write.
	appendN(t, l, 5, 2)
	if err := l.Close(); err != nil { // Close waits for the background work
		t.Fatal(err)
	}
	_, snap, replay, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 4 || len(replay) != 2 {
		t.Fatalf("after async compaction: snap.Seq=%d replay=%d", snap.Seq, len(replay))
	}
}

// TestLogCompactionCrashPoints simulates a crash at each stage of an
// interrupted compaction by reconstructing the on-disk state it leaves, and
// requires recovery to reach the same final state from every one.
func TestLogCompactionCrashPoints(t *testing.T) {
	type stage struct {
		name string
		muck func(t *testing.T, dir string, newSnap []byte)
	}
	stages := []stage{
		{"after-rotation", func(t *testing.T, dir string, _ []byte) {
			// wal renamed to wal.prev, fresh wal created, snapshot still old.
		}},
		{"snapshot-tmp-written", func(t *testing.T, dir string, newSnap []byte) {
			if err := os.WriteFile(filepath.Join(dir, snapshotTmpFile), newSnap, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"snapshot-renamed", func(t *testing.T, dir string, newSnap []byte) {
			if err := os.WriteFile(filepath.Join(dir, SnapshotFile), newSnap, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "sess")
			l := mustCreateLog(t, dir, sampleSnapshot(0), Options{})
			appendN(t, l, 1, 3)
			// Crash mid-compaction: rotate happened, then the stage's extra
			// progress; post-rotation appends land in the fresh wal.
			if err := l.rotate(); err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 4, 2)
			l.mu.Lock()
			l.compacting = false
			l.mu.Unlock()
			l.Close()
			st.muck(t, dir, encodeSnapshot(t, sampleSnapshot(3)))
			l2, snap, replay, err := OpenLog(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer l2.Close()
			// Whatever the snapshot generation, snapshot.Seq + replay must
			// reach exactly seq 5.
			if got := snap.Seq + uint64(len(replay)); got != 5 {
				t.Fatalf("recovered to seq %d (snap %d + %d records), want 5", got, snap.Seq, len(replay))
			}
			for i, rec := range replay {
				if rec.Seq != snap.Seq+uint64(i)+1 {
					t.Fatalf("replay[%d].Seq = %d after snap %d", i, rec.Seq, snap.Seq)
				}
			}
			if _, err := os.Stat(filepath.Join(dir, walPrevFile)); !errors.Is(err, os.ErrNotExist) {
				t.Fatal("recovery left wal.prev behind")
			}
			if _, err := os.Stat(filepath.Join(dir, snapshotTmpFile)); !errors.Is(err, os.ErrNotExist) {
				t.Fatal("recovery left snapshot.tmp behind")
			}
		})
	}
}

func TestLogSeqGapRejected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, sampleSnapshot(0), Options{})
	if err := l.Append(Record{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Seq: 3}); err != nil { // gap: 2 missing
		t.Fatal(err)
	}
	l.Close()
	if _, _, _, err := OpenLog(dir, Options{}); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("gap not rejected: %v", err)
	}
}

func TestLogFsyncMode(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, sampleSnapshot(0), Options{Fsync: true, CompactBytes: 64})
	appendN(t, l, 1, 3)
	if err := l.Compact(encodeSnapshot(t, sampleSnapshot(3))); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 1)
	l.Close()
	_, snap, replay, err := OpenLog(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Seq != 3 || len(replay) != 1 {
		t.Fatalf("fsync mode: snap.Seq=%d replay=%d", snap.Seq, len(replay))
	}
}

func TestOpenLogMissingPieces(t *testing.T) {
	t.Run("no-snapshot", func(t *testing.T) {
		dir := t.TempDir()
		if _, _, _, err := OpenLog(dir, Options{}); err == nil {
			t.Fatal("opened a directory with no snapshot")
		}
	})
	t.Run("no-wal", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "sess")
		l := mustCreateLog(t, dir, sampleSnapshot(2), Options{})
		l.Close()
		if err := os.Remove(filepath.Join(dir, WALFile)); err != nil {
			t.Fatal(err)
		}
		l2, snap, replay, err := OpenLog(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		if snap.Seq != 2 || len(replay) != 0 {
			t.Fatalf("snapshot-only recovery: seq=%d replay=%d", snap.Seq, len(replay))
		}
	})
	t.Run("stray-tmp", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "sess")
		l := mustCreateLog(t, dir, sampleSnapshot(0), Options{})
		l.Close()
		os.WriteFile(filepath.Join(dir, snapshotTmpFile), []byte("junk"), 0o644)
		l2, _, _, err := OpenLog(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		if _, err := os.Stat(filepath.Join(dir, snapshotTmpFile)); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("stray snapshot.tmp not removed")
		}
	})
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, sampleSnapshot(0), Options{})
	l.Close()
	if err := l.Append(Record{Seq: 1}); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Compact(nil); err == nil {
		t.Fatal("compact after close succeeded")
	}
}

// TestAppendFailurePoisonsLog pins the mid-log-tear guard: once an append
// fails (possibly leaving a partial record), every later append must fail
// too — appending past a tear would bury acknowledged batches behind bytes
// recovery treats as end-of-log.
func TestAppendFailurePoisonsLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, sampleSnapshot(0), Options{})
	appendN(t, l, 1, 1)
	l.wal.Close() // forces the next write to fail mid-append
	if err := l.Append(Record{Seq: 2}); err == nil {
		t.Fatal("append on a failing file succeeded")
	}
	if err := l.Append(Record{Seq: 3}); err == nil || !strings.Contains(err.Error(), "poisoned") {
		t.Fatalf("append after failure: %v, want poisoned", err)
	}
	if l.NeedsCompaction() {
		t.Fatal("poisoned log offered for compaction")
	}
	if err := l.Compact(nil); err == nil {
		t.Fatal("compaction of a poisoned log succeeded")
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close hid the poison")
	}
	// The durable prefix survives: recovery returns record 1 only.
	_, _, replay, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 1 || replay[0].Seq != 1 {
		t.Fatalf("recovered %+v, want the pre-failure record", replay)
	}
}

// TestAppendRejectsOversizedRecord pins the size guard: a record the reader
// would refuse as corrupt must be refused at append time, not written,
// acknowledged, and then silently discarded on recovery.
func TestAppendRejectsOversizedRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, sampleSnapshot(0), Options{})
	defer l.Close()
	huge := Record{Seq: 1, Updates: make([]Update, maxRecordBytes/updateBytes+1)}
	if err := l.Append(huge); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized record: %v", err)
	}
	// The refusal is clean, not a poison: normal appends still work.
	appendN(t, l, 1, 1)
}

// TestScanDirMissingWALNotTorn: a missing WAL file (crash between a
// rotation's rename and the fresh file) holds nothing and tears nothing.
func TestScanDirMissingWALNotTorn(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, sampleSnapshot(2), Options{})
	l.Close()
	if err := os.Remove(filepath.Join(dir, WALFile)); err != nil {
		t.Fatal(err)
	}
	_, replay, info, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.TornTail {
		t.Fatal("missing WAL reported as a torn record")
	}
	if len(replay) != 0 {
		t.Fatalf("missing WAL yielded %d records", len(replay))
	}
}
