// Package persist is the durability layer behind dynamic edge-coloring
// sessions: binary point-in-time snapshots of a session's state (graph,
// active-edge overlay, coloring, palette/algorithm header) plus an
// append-only write-ahead log of applied update batches, managed per
// session as a directory of files by Log.
//
// The recovery contract is snapshot ⊕ WAL: a session's state is its most
// recent snapshot with every WAL record whose sequence number exceeds the
// snapshot's replayed over it, in order. Both files are checksummed
// (CRC-32C): a corrupt snapshot fails recovery loudly, and a torn final WAL
// record — the footprint of a crash mid-append — is detected and discarded,
// never half-applied. Because WAL records carry sequence numbers and
// recovery skips records the snapshot already covers, compaction (write a
// fresh snapshot, retire the old WAL) needs no atomicity between its two
// steps: a crash between them merely leaves stale records that the next
// recovery skips.
//
// The package is deliberately self-contained (no dependency on the coloring
// machinery): it stores raw edge lists, overlays, and colors. The distec
// package maps sessions to and from these types.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Format limits: parsers of untrusted files must not let a tiny header
// drive an enormous allocation. These mirror the graph parser's bounds.
const (
	// MaxSnapshotNodes bounds the node count a snapshot may declare.
	MaxSnapshotNodes = 1 << 24
	// MaxSnapshotEdges bounds the edge count a snapshot may declare.
	MaxSnapshotEdges = 1 << 28
	// maxAlgorithmLen bounds the algorithm-name field.
	maxAlgorithmLen = 64
)

// snapshotMagic opens every snapshot file; the trailing byte is the format
// version.
var snapshotMagic = [8]byte{'D', 'E', 'C', 'S', 'N', 'A', 'P', 1}

// castagnoli is the CRC-32C table shared by snapshots and WAL records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is one session's full durable state at a sequence point.
type Snapshot struct {
	// Algorithm, Seed, and ConfigPalette reproduce the session's configured
	// options ("" and 0 select the defaults, exactly as at creation);
	// LivePalette is the palette actually in force (auto palettes grow with
	// Δ, so it can exceed a zero ConfigPalette's initial value).
	Algorithm     string
	Seed          uint64
	ConfigPalette int
	LivePalette   int
	// Seq is the number of update batches applied to the session when the
	// snapshot was taken; WAL records with sequence numbers beyond it are
	// replayed on recovery, the rest are skipped as already included.
	Seq uint64
	// N is the node count; EdgeU/EdgeV the endpoints of every edge in
	// EdgeID order, tombstoned edges included (EdgeIDs must survive
	// recovery: WAL replay revives tombstones by identity).
	N            int
	EdgeU, EdgeV []int32
	// Active marks the live edges; Colors holds one color per edge, −1 for
	// tombstones.
	Active []bool
	Colors []int32
}

// validate checks the structural invariants shared by writer and reader.
func (s *Snapshot) validate() error {
	if len(s.Algorithm) > maxAlgorithmLen {
		return fmt.Errorf("persist: algorithm name of %d bytes exceeds %d", len(s.Algorithm), maxAlgorithmLen)
	}
	if s.N < 0 || s.N > MaxSnapshotNodes {
		return fmt.Errorf("persist: node count %d outside [0,%d]", s.N, MaxSnapshotNodes)
	}
	m := len(s.EdgeU)
	if m > MaxSnapshotEdges {
		return fmt.Errorf("persist: edge count %d exceeds %d", m, MaxSnapshotEdges)
	}
	if len(s.EdgeV) != m || len(s.Active) != m || len(s.Colors) != m {
		return fmt.Errorf("persist: edge arrays sized %d/%d/%d/%d disagree",
			len(s.EdgeU), len(s.EdgeV), len(s.Active), len(s.Colors))
	}
	if s.ConfigPalette < 0 || s.LivePalette < 1 {
		return fmt.Errorf("persist: palettes config=%d live=%d invalid", s.ConfigPalette, s.LivePalette)
	}
	return nil
}

// crcWriter tees writes through a CRC-32C hash.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc.Write(p[:n])
	return n, err
}

// WriteSnapshot emits s in the binary snapshot format: magic, header,
// edges, active bitmap, colors, CRC-32C trailer over everything before it.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if err := s.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := &crcWriter{w: bw, crc: crc32.New(castagnoli)}
	if _, err := cw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var scratch [8]byte
	wu64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := cw.Write(scratch[:8])
		return err
	}
	m := len(s.EdgeU)
	if err := wu64(uint64(len(s.Algorithm))); err != nil {
		return err
	}
	if _, err := io.WriteString(cw, s.Algorithm); err != nil {
		return err
	}
	for _, v := range []uint64{s.Seed, uint64(s.ConfigPalette), uint64(s.LivePalette), s.Seq, uint64(s.N), uint64(m)} {
		if err := wu64(v); err != nil {
			return err
		}
	}
	buf := make([]byte, 0, 8*1024)
	flush := func() error {
		_, err := cw.Write(buf)
		buf = buf[:0]
		return err
	}
	put32 := func(v int32) error {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
		if len(buf) >= cap(buf)-4 {
			return flush()
		}
		return nil
	}
	for e := 0; e < m; e++ {
		if err := put32(s.EdgeU[e]); err != nil {
			return err
		}
		if err := put32(s.EdgeV[e]); err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	bitmap := make([]byte, (m+7)/8)
	for e, a := range s.Active {
		if a {
			bitmap[e/8] |= 1 << (e % 8)
		}
	}
	if _, err := cw.Write(bitmap); err != nil {
		return err
	}
	for e := 0; e < m; e++ {
		if err := put32(s.Colors[e]); err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(scratch[:4], cw.crc.Sum32())
	if _, err := bw.Write(scratch[:4]); err != nil { // trailer: not part of its own checksum
		return err
	}
	return bw.Flush()
}

// ReadSnapshot parses one snapshot from r, verifying the checksum. It reads
// exactly the snapshot's bytes and not beyond, so snapshots compose with
// other stream content. Every malformed input yields an error; none panic.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	// No internal buffering: body reads are already chunked, and an exact
	// read keeps snapshots composable with other stream content.
	cr := &crcReader{r: r, crc: crc32.New(castagnoli)}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("persist: snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("persist: bad snapshot magic %q", magic[:])
	}
	var scratch [8]byte
	ru64 := func(what string) (uint64, error) {
		if _, err := io.ReadFull(cr, scratch[:8]); err != nil {
			return 0, fmt.Errorf("persist: snapshot %s: %w", what, err)
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	algLen, err := ru64("algorithm length")
	if err != nil {
		return nil, err
	}
	if algLen > maxAlgorithmLen {
		return nil, fmt.Errorf("persist: algorithm name of %d bytes exceeds %d", algLen, maxAlgorithmLen)
	}
	alg := make([]byte, algLen)
	if _, err := io.ReadFull(cr, alg); err != nil {
		return nil, fmt.Errorf("persist: snapshot algorithm: %w", err)
	}
	s := &Snapshot{Algorithm: string(alg)}
	var confP, liveP, n64, m64 uint64
	for _, h := range []struct {
		what string
		dst  *uint64
	}{{"seed", &s.Seed}, {"config palette", &confP}, {"live palette", &liveP}, {"seq", &s.Seq}, {"node count", &n64}, {"edge count", &m64}} {
		v, err := ru64(h.what)
		if err != nil {
			return nil, err
		}
		*h.dst = v
	}
	if n64 > MaxSnapshotNodes {
		return nil, fmt.Errorf("persist: node count %d exceeds %d", n64, MaxSnapshotNodes)
	}
	if m64 > MaxSnapshotEdges {
		return nil, fmt.Errorf("persist: edge count %d exceeds %d", m64, MaxSnapshotEdges)
	}
	if confP > 1<<31 || liveP > 1<<31 {
		return nil, fmt.Errorf("persist: palettes config=%d live=%d out of range", confP, liveP)
	}
	s.ConfigPalette, s.LivePalette, s.N = int(confP), int(liveP), int(n64)
	m := int(m64)
	// Body arrays are grown as bytes actually arrive (not allocated up
	// front from the declared count), so a corrupted header inside the size
	// bounds cannot drive a huge allocation before the checksum rejects it.
	buf := make([]byte, 8*1024)
	pair, err := readWords(cr, buf, nil, 2*m)
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot edges: %w", err)
	}
	s.EdgeU, s.EdgeV = make([]int32, m), make([]int32, m)
	for e := 0; e < m; e++ {
		s.EdgeU[e], s.EdgeV[e] = pair[2*e], pair[2*e+1]
	}
	s.Active = make([]bool, 0, 1024)
	for read := 0; read < (m+7)/8; {
		chunk := (m+7)/8 - read
		if chunk > len(buf) {
			chunk = len(buf)
		}
		if _, err := io.ReadFull(cr, buf[:chunk]); err != nil {
			return nil, fmt.Errorf("persist: snapshot overlay: %w", err)
		}
		for j := 0; j < chunk; j++ {
			for bit := 0; bit < 8 && len(s.Active) < m; bit++ {
				s.Active = append(s.Active, buf[j]&(1<<bit) != 0)
			}
		}
		read += chunk
	}
	colors, err := readWords(cr, buf, nil, m)
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot colors: %w", err)
	}
	s.Colors = colors
	sum := cr.crc.Sum32()
	if _, err := io.ReadFull(cr.r, scratch[:4]); err != nil {
		return nil, fmt.Errorf("persist: snapshot checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(scratch[:4]); got != sum {
		return nil, fmt.Errorf("persist: snapshot checksum mismatch (file %08x, computed %08x)", got, sum)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// crcReader tees reads through a CRC-32C hash.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}

// readWords appends count little-endian int32 words onto dst, reading
// through the shared buffer so allocation tracks delivered bytes.
func readWords(r io.Reader, buf []byte, dst []int32, count int) ([]int32, error) {
	for read := 0; read < count; {
		chunk := count - read
		if chunk > len(buf)/4 {
			chunk = len(buf) / 4
		}
		if _, err := io.ReadFull(r, buf[:chunk*4]); err != nil {
			return dst, err
		}
		for j := 0; j < chunk; j++ {
			dst = append(dst, int32(binary.LittleEndian.Uint32(buf[j*4:])))
		}
		read += chunk
	}
	return dst, nil
}
