package persist

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// wideSnapshot builds a snapshot with m path edges, big enough that a
// small diff clearly beats a full rewrite.
func wideSnapshot(seq uint64, m int) *Snapshot {
	s := &Snapshot{Algorithm: "bko", Seed: 1, LivePalette: 3, Seq: seq, N: m + 1}
	for i := 0; i < m; i++ {
		s.EdgeU = append(s.EdgeU, int32(i))
		s.EdgeV = append(s.EdgeV, int32(i+1))
		s.Active = append(s.Active, true)
		s.Colors = append(s.Colors, int32(i%3))
	}
	return s
}

func cloneSnapshot(s *Snapshot) *Snapshot {
	c := *s
	c.EdgeU = append([]int32(nil), s.EdgeU...)
	c.EdgeV = append([]int32(nil), s.EdgeV...)
	c.Active = append([]bool(nil), s.Active...)
	c.Colors = append([]int32(nil), s.Colors...)
	return &c
}

func TestComputeApplyDiffRoundTrip(t *testing.T) {
	base := wideSnapshot(3, 40)
	cur := cloneSnapshot(base)
	cur.Seq = 9
	cur.LivePalette = 5
	cur.Colors[4] = 4
	cur.Active[7] = false
	cur.Colors[7] = -1
	cur.EdgeU = append(cur.EdgeU, 2, 5)
	cur.EdgeV = append(cur.EdgeV, 9, 11)
	cur.Active = append(cur.Active, true, false)
	cur.Colors = append(cur.Colors, 2, -1)

	d, err := computeDiff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.newU) != 2 || len(d.chID) != 2 {
		t.Fatalf("diff shape: %d new, %d changed", len(d.newU), len(d.chID))
	}
	got := cloneSnapshot(base)
	if err := applyDiff(got, d); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", cur) {
		t.Fatalf("merge mismatch:\n got %+v\nwant %+v", got, cur)
	}
	// A stale diff must be rejected (callers skip it by seq first).
	if err := applyDiff(got, d); err == nil {
		t.Fatal("stale diff applied twice")
	}
	// A base whose edges disagree cannot be diffed against.
	bad := cloneSnapshot(base)
	bad.EdgeV[0] = 7
	if _, err := computeDiff(bad, cur); err == nil {
		t.Fatal("diff across disagreeing edge prefixes accepted")
	}
}

func TestDiffRecordTornAndCorrupt(t *testing.T) {
	base := wideSnapshot(0, 10)
	cur := cloneSnapshot(base)
	cur.Seq = 2
	cur.Colors[3] = 2
	d1, err := computeDiff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	cur2 := cloneSnapshot(cur)
	cur2.Seq = 5
	cur2.Active[1] = false
	cur2.Colors[1] = -1
	d2, err := computeDiff(cur, cur2)
	if err != nil {
		t.Fatal(err)
	}
	buf := diffMagic[:]
	buf = appendDiffRecord(buf, d1)
	mid := len(buf)
	buf = appendDiffRecord(buf, d2)

	dir := t.TempDir()
	path := filepath.Join(dir, DiffFile)
	write := func(b []byte) {
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(buf)
	sc, err := readDiffFile(path)
	if err != nil || !sc.clean || len(sc.diffs) != 2 {
		t.Fatalf("full read: clean=%v diffs=%d err=%v", sc.clean, len(sc.diffs), err)
	}
	// Any truncation inside the second record keeps the first and reports
	// the tear.
	for cut := mid + 1; cut < len(buf); cut++ {
		write(buf[:cut])
		sc, err := readDiffFile(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if sc.clean || len(sc.diffs) != 1 || sc.diffs[0].seq != 2 {
			t.Fatalf("cut %d: clean=%v diffs=%d", cut, sc.clean, len(sc.diffs))
		}
	}
	// A flipped byte inside a record's payload or frame kills that record.
	for i := len(diffMagic); i < len(buf); i++ {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0x10
		write(bad)
		sc, err := readDiffFile(path)
		if err != nil {
			continue // bounds violation detected loudly — fine
		}
		if sc.clean && len(sc.diffs) == 2 &&
			fmt.Sprintf("%+v %+v", sc.diffs[0], sc.diffs[1]) == fmt.Sprintf("%+v %+v", d1, d2) {
			t.Fatalf("flip %d passed unnoticed", i)
		}
	}
}

// TestLogDiffCompaction drives the differential path end to end: small
// deltas append diff records (leaving the base snapshot untouched),
// recovery merges them, the chain bound forces a periodic full rewrite
// that retires the diff file, and an oversized delta falls back to full.
func TestLogDiffCompaction(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	var met Metrics
	opts := Options{DiffCompact: true, DiffMaxChain: 3, Metrics: &met}
	snap := wideSnapshot(0, 120)
	l := mustCreateLog(t, dir, snap, opts)

	state := cloneSnapshot(snap)
	seq := uint64(0)
	step := func(mutate func(*Snapshot)) {
		t.Helper()
		seq++
		if err := l.Append(Record{Seq: seq, Updates: []Update{{Op: OpInsert, U: 0, V: 1}}}); err != nil {
			t.Fatal(err)
		}
		state.Seq = seq
		mutate(state)
		if err := l.Compact(encodeSnapshot(t, state)); err != nil {
			t.Fatal(err)
		}
	}

	// Three small deltas ride the diff chain.
	for i := 0; i < 3; i++ {
		step(func(s *Snapshot) { s.Colors[i] = int32((int(s.Colors[i]) + 1) % 3) })
		if got := met.diffCompacts.Load(); got != uint64(i+1) {
			t.Fatalf("step %d: %d diff compactions", i, got)
		}
		raw, err := os.Open(filepath.Join(dir, SnapshotFile))
		if err != nil {
			t.Fatal(err)
		}
		baseSnap, err := ReadSnapshot(raw)
		raw.Close()
		if err != nil {
			t.Fatal(err)
		}
		if baseSnap.Seq != 0 {
			t.Fatalf("step %d: base snapshot rewritten to seq %d", i, baseSnap.Seq)
		}
	}
	// Recovery merges the chain.
	merged, replay, info, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Seq != 3 || len(replay) != 0 || info.Diffs != 3 {
		t.Fatalf("merged seq=%d replay=%d diffs=%d", merged.Seq, len(replay), info.Diffs)
	}
	if fmt.Sprintf("%v", merged.Colors) != fmt.Sprintf("%v", state.Colors) {
		t.Fatalf("merged colors diverge from the compacted state")
	}
	// The fourth compaction hits the chain bound: full rewrite, diff file
	// retired.
	step(func(s *Snapshot) { s.Colors[10] = 0 })
	if met.diffCompacts.Load() != 3 {
		t.Fatalf("chain bound did not force a full rewrite")
	}
	if _, err := os.Stat(filepath.Join(dir, DiffFile)); !os.IsNotExist(err) {
		t.Fatalf("diff file survived a full compaction: %v", err)
	}
	merged, _, _, err = ScanDir(dir)
	if err != nil || merged.Seq != 4 {
		t.Fatalf("after full rewrite: seq=%d err=%v", merged.Seq, err)
	}
	// A delta touching most of the state is not worth a diff record.
	step(func(s *Snapshot) {
		for i := range s.Colors {
			s.Colors[i] = int32((int(s.Colors[i]) + 1) % 3)
		}
	})
	if met.diffCompacts.Load() != 3 {
		t.Fatalf("whole-state delta still compacted differentially")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen mid-chain: diff state must carry over (chain counted, next
	// compactions keep chaining until the bound).
	l2, merged, _, err := OpenLog(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Seq != 5 {
		t.Fatalf("reopened at seq %d", merged.Seq)
	}
	seq = 5
	state.Seq = 5
	step2 := func() {
		seq++
		if err := l2.Append(Record{Seq: seq, Updates: []Update{{Op: OpInsert, U: 0, V: 1}}}); err != nil {
			t.Fatal(err)
		}
		state.Seq = seq
		state.Colors[0] = int32((int(state.Colors[0]) + 1) % 3)
		if err := l2.Compact(encodeSnapshot(t, state)); err != nil {
			t.Fatal(err)
		}
	}
	l = l2
	step2()
	if met.diffCompacts.Load() != 4 {
		t.Fatalf("diff chaining did not resume after reopen")
	}
	l2.Close()
	merged, _, _, err = ScanDir(dir)
	if err != nil || merged.Seq != 6 {
		t.Fatalf("final state: seq=%d err=%v", merged.Seq, err)
	}
}

// TestLogDiffCrashArtifacts checks the two crash footprints specific to the
// diff chain: a stale diff file left by a crash between a full compaction's
// snapshot rename and diff removal, and a torn final diff record from a
// crash mid diff-append. Both must recover cleanly, and OpenLog must repair
// the files.
func TestLogDiffCrashArtifacts(t *testing.T) {
	t.Run("stale-diff-after-full-compaction", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "sess")
		opts := Options{DiffCompact: true}
		snap := wideSnapshot(0, 60)
		l := mustCreateLog(t, dir, snap, opts)
		state := cloneSnapshot(snap)
		state.Seq = 1
		state.Colors[0] = 0
		if err := l.Append(Record{Seq: 1, Updates: []Update{{Op: OpInsert, U: 0, V: 1}}}); err != nil {
			t.Fatal(err)
		}
		if err := l.Compact(encodeSnapshot(t, state)); err != nil {
			t.Fatal(err)
		}
		l.Close()
		diffBytes, err := os.ReadFile(filepath.Join(dir, DiffFile))
		if err != nil {
			t.Fatal(err)
		}
		// "Crash" between full-compaction steps: snapshot already covers the
		// diff, but the diff file was never removed.
		if err := os.WriteFile(filepath.Join(dir, SnapshotFile), encodeSnapshot(t, state), 0o644); err != nil {
			t.Fatal(err)
		}
		merged, _, info, err := ScanDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if merged.Seq != 1 || info.StaleDiffs != 1 || info.Diffs != 0 {
			t.Fatalf("seq=%d stale=%d live=%d", merged.Seq, info.StaleDiffs, info.Diffs)
		}
		l2, _, _, err := OpenLog(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		l2.Close()
		if _, err := os.Stat(filepath.Join(dir, DiffFile)); !os.IsNotExist(err) {
			t.Fatalf("OpenLog left the stale diff file: %v", err)
		}
		_ = diffBytes
	})

	t.Run("torn-diff-tail", func(t *testing.T) {
		dir := filepath.Join(t.TempDir(), "sess")
		opts := Options{DiffCompact: true}
		snap := wideSnapshot(0, 60)
		l := mustCreateLog(t, dir, snap, opts)
		appendN(t, l, 1, 4)
		l.Close()
		// "Crash" mid diff-append: magic plus half a record. The WAL still
		// holds records 1..4 (wal.prev removal happens only after the diff
		// record is durable), so nothing is lost.
		state := cloneSnapshot(snap)
		state.Seq = 2
		state.Colors[0] = 1
		d, err := computeDiff(snap, state)
		if err != nil {
			t.Fatal(err)
		}
		frame := appendDiffRecord(nil, d)
		torn := append(append([]byte(nil), diffMagic[:]...), frame[:len(frame)/2]...)
		if err := os.WriteFile(filepath.Join(dir, DiffFile), torn, 0o644); err != nil {
			t.Fatal(err)
		}
		merged, replay, info, err := ScanDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !info.TornDiff || merged.Seq != 0 || len(replay) != 4 {
			t.Fatalf("torn=%v seq=%d replay=%d", info.TornDiff, merged.Seq, len(replay))
		}
		l2, _, replay, err := OpenLog(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(replay) != 4 {
			t.Fatalf("OpenLog replay=%d", len(replay))
		}
		l2.Close()
		if _, err := os.Stat(filepath.Join(dir, DiffFile)); !os.IsNotExist(err) {
			t.Fatalf("OpenLog left the torn diff file: %v", err)
		}
	})
}

func TestComputeDiffRejectsZeroAdvance(t *testing.T) {
	// computeDiff tolerates equal seqs (tryDiffCompaction short-circuits
	// them before calling it); applyDiff is the gate that refuses them.
	base := wideSnapshot(3, 8)
	cur := cloneSnapshot(base)
	d, err := computeDiff(base, cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := applyDiff(cloneSnapshot(base), d); err == nil {
		t.Fatal("zero-advance diff applied")
	}
}

func TestLogHeadAndWaitHead(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sess")
	l := mustCreateLog(t, dir, wideSnapshot(0, 4), Options{})
	if got := l.Head(); got != 0 {
		t.Fatalf("fresh head %d", got)
	}
	done := make(chan uint64, 1)
	go func() {
		done <- l.WaitHead(context.Background(), 0)
	}()
	select {
	case h := <-done:
		t.Fatalf("WaitHead returned %d before any append", h)
	case <-time.After(20 * time.Millisecond):
	}
	appendN(t, l, 1, 2)
	select {
	case h := <-done:
		if h < 1 {
			t.Fatalf("woke at head %d", h)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitHead missed the append")
	}
	// A bounded wait returns at the deadline when nothing advances.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if h := l.WaitHead(ctx, 99); h != 2 {
		t.Fatalf("timed-out wait returned head %d", h)
	}
	// Close wakes waiters.
	go func() {
		done <- l.WaitHead(context.Background(), 99)
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake WaitHead")
	}

	// Reopen: head resumes at the last durable record; SetHead only moves
	// forward.
	l2, _, _, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Head(); got != 2 {
		t.Fatalf("reopened head %d", got)
	}
	l2.SetHead(1)
	if got := l2.Head(); got != 2 {
		t.Fatalf("SetHead moved head backwards to %d", got)
	}
	l2.SetHead(7)
	if got := l2.Head(); got != 7 {
		t.Fatalf("SetHead(7) → head %d", got)
	}
}
