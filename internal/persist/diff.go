package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Differential snapshots: instead of rewriting the whole snapshot at every
// compaction, a compaction may append one *diff record* — the overlay delta
// since the last persisted state — to a "diff" file beside the snapshot.
// The effective snapshot is then snapshot ⊕ diffs (applied in order), and
// the recovery contract becomes (snapshot ⊕ diffs) ⊕ seq-filtered WAL.
//
// Diff records use the WAL's CRC framing (u32 length | u32 CRC-32C |
// payload), so the crash calculus is identical: a torn final diff record is
// discarded, and because wal.prev is only removed after the diff record is
// durable, the records it summarized are still replayable. Stale diff
// records (seq at or below the snapshot's — the footprint of a crash
// between a full compaction's snapshot rename and its diff-file removal)
// are skipped exactly like stale WAL records.
//
// Because a session's graph is append-only (EdgeIDs are stable and
// tombstones persist), a diff is small: the edges appended since the base
// state, the (EdgeID, color, active) triples that changed, and the new
// sequence number and live palette.

// diffMagic opens every diff file; the trailing byte is the format version.
var diffMagic = [8]byte{'D', 'E', 'C', 'D', 'I', 'F', 'F', 1}

// diff payload wire format, inside the WAL-style record framing:
//
//	u64 seq | u32 livePalette | u32 prevM | u32 newM
//	u32 nNew     | nNew × (u32 u, u32 v, u32 color, u8 active)
//	u32 nChanged | nChanged × (u32 edgeID, u32 color, u8 active)
const (
	diffPayloadFixed = 24
	diffNewBytes     = 13
	diffChangedBytes = 9
)

// diff is one decoded diff record: the delta from a base state at prevM
// edges to the state at seq with newM edges.
type diff struct {
	seq         uint64
	livePalette int
	prevM, newM int
	// appended edges, in EdgeID order starting at prevM
	newU, newV, newColors []int32
	newActive             []bool
	// existing edges whose color or overlay bit changed
	chID, chColors []int32
	chActive       []bool
}

// computeDiff derives the delta between base and cur, which must describe
// the same session (same node count, same edge prefix) with cur at or past
// base. Any structural disagreement is an error — the caller falls back to
// a full snapshot.
func computeDiff(base, cur *Snapshot) (*diff, error) {
	if cur.N != base.N {
		return nil, fmt.Errorf("persist: diff base has %d nodes, current %d", base.N, cur.N)
	}
	if cur.Seq < base.Seq {
		return nil, fmt.Errorf("persist: diff base at seq %d is ahead of current %d", base.Seq, cur.Seq)
	}
	prevM, newM := len(base.EdgeU), len(cur.EdgeU)
	if newM < prevM {
		return nil, fmt.Errorf("persist: diff base has %d edges, current %d (graphs are append-only)", prevM, newM)
	}
	d := &diff{seq: cur.Seq, livePalette: cur.LivePalette, prevM: prevM, newM: newM}
	for e := 0; e < prevM; e++ {
		if cur.EdgeU[e] != base.EdgeU[e] || cur.EdgeV[e] != base.EdgeV[e] {
			return nil, fmt.Errorf("persist: diff base edge %d is {%d,%d}, current {%d,%d}",
				e, base.EdgeU[e], base.EdgeV[e], cur.EdgeU[e], cur.EdgeV[e])
		}
		if cur.Colors[e] != base.Colors[e] || cur.Active[e] != base.Active[e] {
			d.chID = append(d.chID, int32(e))
			d.chColors = append(d.chColors, cur.Colors[e])
			d.chActive = append(d.chActive, cur.Active[e])
		}
	}
	for e := prevM; e < newM; e++ {
		d.newU = append(d.newU, cur.EdgeU[e])
		d.newV = append(d.newV, cur.EdgeV[e])
		d.newColors = append(d.newColors, cur.Colors[e])
		d.newActive = append(d.newActive, cur.Active[e])
	}
	return d, nil
}

// applyDiff merges d into s in place. The diff must chain: its prevM must
// equal s's current edge count and its seq must advance past s's.
func applyDiff(s *Snapshot, d *diff) error {
	if d.seq <= s.Seq {
		return fmt.Errorf("persist: diff at seq %d does not advance snapshot seq %d", d.seq, s.Seq)
	}
	if d.prevM != len(s.EdgeU) {
		return fmt.Errorf("persist: diff chains from %d edges, snapshot holds %d", d.prevM, len(s.EdgeU))
	}
	if d.newM != d.prevM+len(d.newU) {
		return fmt.Errorf("persist: diff declares %d edges but appends %d to %d", d.newM, len(d.newU), d.prevM)
	}
	for i, id := range d.chID {
		if int(id) >= d.prevM {
			return fmt.Errorf("persist: diff changes edge %d beyond base %d", id, d.prevM)
		}
		s.Colors[id] = d.chColors[i]
		s.Active[id] = d.chActive[i]
	}
	s.EdgeU = append(s.EdgeU, d.newU...)
	s.EdgeV = append(s.EdgeV, d.newV...)
	s.Colors = append(s.Colors, d.newColors...)
	s.Active = append(s.Active, d.newActive...)
	s.Seq = d.seq
	s.LivePalette = d.livePalette
	return nil
}

// encodedDiffSize returns the framed size of d on disk. The changed-edge
// count is a fourth trailing u32 outside diffPayloadFixed because it sits
// after the variable new-edge section.
func encodedDiffSize(d *diff) int {
	return recordHeaderBytes + diffPayloadFixed + diffNewBytes*len(d.newU) + 4 + diffChangedBytes*len(d.chID)
}

// appendDiffRecord encodes d onto buf in the WAL record framing and returns
// the extended slice.
func appendDiffRecord(buf []byte, d *diff) []byte {
	payloadLen := diffPayloadFixed + diffNewBytes*len(d.newU) + 4 + diffChangedBytes*len(d.chID)
	start := len(buf)
	need := start + recordHeaderBytes + payloadLen
	if cap(buf) < need {
		buf = append(buf, make([]byte, need-start)...)
	} else {
		buf = buf[:need]
	}
	payload := buf[start+recordHeaderBytes : need]
	binary.LittleEndian.PutUint64(payload[0:], d.seq)
	binary.LittleEndian.PutUint32(payload[8:], uint32(d.livePalette))
	binary.LittleEndian.PutUint32(payload[12:], uint32(d.prevM))
	binary.LittleEndian.PutUint32(payload[16:], uint32(d.newM))
	binary.LittleEndian.PutUint32(payload[20:], uint32(len(d.newU)))
	off := diffPayloadFixed
	for i := range d.newU {
		binary.LittleEndian.PutUint32(payload[off:], uint32(d.newU[i]))
		binary.LittleEndian.PutUint32(payload[off+4:], uint32(d.newV[i]))
		binary.LittleEndian.PutUint32(payload[off+8:], uint32(d.newColors[i]))
		payload[off+12] = 0
		if d.newActive[i] {
			payload[off+12] = 1
		}
		off += diffNewBytes
	}
	// changed-count sits after the new-edge section, so it is located by
	// arithmetic on nNew rather than a second fixed offset
	tail := payload[off:]
	binary.LittleEndian.PutUint32(tail[0:], uint32(len(d.chID)))
	off2 := 4
	for i := range d.chID {
		binary.LittleEndian.PutUint32(tail[off2:], uint32(d.chID[i]))
		binary.LittleEndian.PutUint32(tail[off2+4:], uint32(d.chColors[i]))
		tail[off2+8] = 0
		if d.chActive[i] {
			tail[off2+8] = 1
		}
		off2 += diffChangedBytes
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// readDiffRecord parses one framed diff record from r: errTorn for an
// incomplete or checksum-failing record, io.EOF at a clean end.
func readDiffRecord(r io.Reader) (*diff, error) {
	var header [recordHeaderBytes]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn
	}
	payloadLen := binary.LittleEndian.Uint32(header[0:])
	wantCRC := binary.LittleEndian.Uint32(header[4:])
	if payloadLen < diffPayloadFixed+4 || payloadLen > maxRecordBytes {
		return nil, errTorn
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTorn
	}
	if crc32.Checksum(payload, castagnoli) != wantCRC {
		return nil, errTorn
	}
	d := &diff{
		seq:         binary.LittleEndian.Uint64(payload[0:]),
		livePalette: int(binary.LittleEndian.Uint32(payload[8:])),
		prevM:       int(binary.LittleEndian.Uint32(payload[12:])),
		newM:        int(binary.LittleEndian.Uint32(payload[16:])),
	}
	nNew := binary.LittleEndian.Uint32(payload[20:])
	if d.prevM > MaxSnapshotEdges || d.newM > MaxSnapshotEdges || d.livePalette > 1<<31 {
		return nil, fmt.Errorf("persist: diff record bounds exceeded (prevM=%d newM=%d)", d.prevM, d.newM)
	}
	need := uint64(diffPayloadFixed) + uint64(nNew)*diffNewBytes + 4
	if need > uint64(payloadLen) {
		return nil, errTorn
	}
	off := diffPayloadFixed
	for i := uint32(0); i < nNew; i++ {
		d.newU = append(d.newU, int32(binary.LittleEndian.Uint32(payload[off:])))
		d.newV = append(d.newV, int32(binary.LittleEndian.Uint32(payload[off+4:])))
		d.newColors = append(d.newColors, int32(binary.LittleEndian.Uint32(payload[off+8:])))
		d.newActive = append(d.newActive, payload[off+12] != 0)
		off += diffNewBytes
	}
	nChanged := binary.LittleEndian.Uint32(payload[off:])
	off += 4
	if uint64(off)+uint64(nChanged)*diffChangedBytes != uint64(payloadLen) {
		return nil, errTorn
	}
	for i := uint32(0); i < nChanged; i++ {
		d.chID = append(d.chID, int32(binary.LittleEndian.Uint32(payload[off:])))
		d.chColors = append(d.chColors, int32(binary.LittleEndian.Uint32(payload[off+4:])))
		d.chActive = append(d.chActive, payload[off+8] != 0)
		off += diffChangedBytes
	}
	return d, nil
}

// diffScan is one diff file's parse: the records of the valid prefix, and
// clean=false when a torn final record was discarded.
type diffScan struct {
	diffs []*diff
	clean bool
}

// readDiffFile parses a diff file; os.ErrNotExist passes through (the
// normal state — most sessions never compact differentially).
func readDiffFile(path string) (diffScan, error) {
	f, err := os.Open(path)
	if err != nil {
		return diffScan{}, err
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return diffScan{clean: false}, nil // crash before the magic landed
	}
	if magic != diffMagic {
		return diffScan{}, fmt.Errorf("persist: %s: bad diff magic %q", path, magic[:])
	}
	sc := diffScan{clean: true}
	for {
		d, err := readDiffRecord(f)
		if err == io.EOF {
			return sc, nil
		}
		if errors.Is(err, errTorn) {
			sc.clean = false
			return sc, nil
		}
		if err != nil {
			return diffScan{}, fmt.Errorf("persist: %s: %w", path, err)
		}
		sc.diffs = append(sc.diffs, d)
	}
}
