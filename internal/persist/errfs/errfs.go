// Package errfs is a fault-injecting persist.FS for crash and durability
// testing: it passes every operation through to the real filesystem, but
// can be armed to fail the Nth write, fsync, or rename it sees — writing a
// configurable partial prefix first, so a failed append leaves exactly the
// torn tail a real crash mid-write leaves. Because the files are real,
// recovery code (ScanDir, OpenLog) then reads whatever bytes actually
// landed, with no simulation gap.
//
// The intended shape of a test is counting-then-replaying: run a script
// once over a clean FS to count its operations, then re-run it in a fresh
// directory once per operation index with a fault armed there, and assert
// the recovery invariant (no acknowledged batch lost) after every run.
package errfs

import (
	"errors"
	"fmt"
	"os"
	"sync"

	"github.com/distec/distec/internal/persist"
)

// ErrInjected is the error every armed fault returns (via errors.Is).
var ErrInjected = errors.New("errfs: injected fault")

// FS is a fault-injecting persist.FS. Arm at most one fault per run; the
// zero FS injects nothing. Safe for concurrent use.
type FS struct {
	mu      sync.Mutex
	writes  int
	syncs   int
	renames int

	failWriteAt  int // 1-based write index to fail; 0 = never
	partialBytes int // bytes the failing write lands before erroring
	failSyncAt   int
	failRenameAt int

	fired string
}

// New returns an FS with no fault armed.
func New() *FS { return &FS{} }

// FailWrite arms the nth (1-based) file write to fail after landing
// partial bytes of its buffer — the torn tail of a crash mid-write.
func (f *FS) FailWrite(n, partial int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWriteAt, f.partialBytes = n, partial
}

// FailSync arms the nth (1-based) fsync to fail.
func (f *FS) FailSync(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncAt = n
}

// FailRename arms the nth (1-based) rename to fail.
func (f *FS) FailRename(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failRenameAt = n
}

// Ops returns the operations counted so far: a probe run over a clean FS
// enumerates the fault points a crash table then iterates.
func (f *FS) Ops() (writes, syncs, renames int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.syncs, f.renames
}

// Fired describes the fault that fired ("" when none has).
func (f *FS) Fired() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (persist.File, error) {
	file, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: file}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	f.renames++
	if f.renames == f.failRenameAt {
		f.fired = fmt.Sprintf("rename %d (%s -> %s)", f.renames, oldpath, newpath)
		f.mu.Unlock()
		return fmt.Errorf("%w: rename %s", ErrInjected, newpath)
	}
	f.mu.Unlock()
	return os.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error { return os.Remove(name) }

// faultFile wraps a real file, routing Write and Sync through the fault
// counters.
type faultFile struct {
	fs *FS
	f  *os.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	ff.fs.writes++
	if ff.fs.writes == ff.fs.failWriteAt {
		partial := ff.fs.partialBytes
		if partial > len(p) {
			partial = len(p)
		}
		ff.fs.fired = fmt.Sprintf("write %d (%s, %d of %d bytes)", ff.fs.writes, ff.f.Name(), partial, len(p))
		ff.fs.mu.Unlock()
		n, _ := ff.f.Write(p[:partial])
		return n, fmt.Errorf("%w: write %s", ErrInjected, ff.f.Name())
	}
	ff.fs.mu.Unlock()
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	ff.fs.syncs++
	if ff.fs.syncs == ff.fs.failSyncAt {
		ff.fs.fired = fmt.Sprintf("fsync %d (%s)", ff.fs.syncs, ff.f.Name())
		ff.fs.mu.Unlock()
		return fmt.Errorf("%w: fsync %s", ErrInjected, ff.f.Name())
	}
	ff.fs.mu.Unlock()
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// Truncate chops n bytes off the end of path — the on-demand torn tail for
// crash tables that damage files after the fact rather than during writes.
func Truncate(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipByte XORs one byte of path at offset off — the bit-rot injection for
// corruption tables.
func FlipByte(path string, off int64, mask byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= mask
	_, err = f.WriteAt(b[:], off)
	return err
}
