package persist

import (
	"errors"
	"fmt"
	"io"
)

// Replication stream: the wire format a leader uses to ship one session's
// durable state to a tailing follower. A stream is the magic, one flag
// byte, an optional full snapshot (sent when the follower's position
// precedes the leader's effective snapshot — e.g. on first contact or
// after the leader compacted past it), and zero or more WAL-framed records
// to the end of the stream. Both halves reuse the on-disk encodings
// (ReadSnapshot is self-delimiting; records carry the WAL's CRC framing),
// so a follower applies exactly what recovery would.

// streamMagic opens every replication stream; the trailing byte is the
// format version.
var streamMagic = [8]byte{'D', 'E', 'C', 'R', 'E', 'P', 'L', 1}

const streamFlagSnapshot = 1

// WriteStream emits snap (when non-nil) and recs as one replication
// stream.
func WriteStream(w io.Writer, snap *Snapshot, recs []Record) error {
	if _, err := w.Write(streamMagic[:]); err != nil {
		return err
	}
	var flags [1]byte
	if snap != nil {
		flags[0] |= streamFlagSnapshot
	}
	if _, err := w.Write(flags[:]); err != nil {
		return err
	}
	if snap != nil {
		if err := WriteSnapshot(w, snap); err != nil {
			return err
		}
	}
	var buf []byte
	for _, rec := range recs {
		buf = appendRecord(buf[:0], rec)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadStream parses one replication stream to its end. Unlike WAL
// scanning, a torn record here is an error, not an end-of-log: the stream
// crossed a network, so truncation means a failed transfer the follower
// must retry, never state to be trusted.
func ReadStream(r io.Reader) (*Snapshot, []Record, error) {
	var header [9]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return nil, nil, fmt.Errorf("persist: replication stream header: %w", err)
	}
	if [8]byte(header[:8]) != streamMagic {
		return nil, nil, fmt.Errorf("persist: bad replication stream magic %q", header[:8])
	}
	var snap *Snapshot
	if header[8]&streamFlagSnapshot != 0 {
		var err error
		if snap, err = ReadSnapshot(r); err != nil {
			return nil, nil, err
		}
	}
	var recs []Record
	for {
		rec, err := readRecord(r)
		if err == io.EOF {
			return snap, recs, nil
		}
		if errors.Is(err, errTorn) {
			return nil, nil, fmt.Errorf("persist: truncated replication stream")
		}
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, rec)
	}
}

// ReadState reads a session directory for replication from a follower at
// position from: when the follower precedes the effective snapshot (or
// holds nothing at all — mustSnap, the bootstrap case), the snapshot plus
// every replayable record; otherwise just the records with sequence
// numbers beyond from. Reading races benignly with a concurrent append
// (the scan sees a prefix) — by construction it can never return records
// that fail to chain from what it returns alongside them.
func ReadState(dir string, from uint64, mustSnap bool) (*Snapshot, []Record, error) {
	snap, replay, _, err := ScanDir(dir)
	if err != nil {
		return nil, nil, err
	}
	if mustSnap || from < snap.Seq {
		return snap, replay, nil
	}
	i := 0
	for i < len(replay) && replay[i].Seq <= from {
		i++
	}
	return nil, replay[i:], nil
}
