package persist

import (
	"sync/atomic"

	"github.com/distec/distec/internal/metrics"
)

// Metrics collects persistence counters across every Log that shares it
// (one set per daemon, passed via Options.Metrics): session directories
// come and go with their sessions, but the WAL/compaction totals are a
// property of the process. All methods are safe on a nil receiver, so an
// un-instrumented Log pays only a nil check per event.
type Metrics struct {
	appends       atomic.Uint64
	appendedBytes atomic.Uint64
	walFsyncs     atomic.Uint64
	snapshots     atomic.Uint64
	compactions   atomic.Uint64
	compactFails  atomic.Uint64
	recoveries    atomic.Uint64
	recoveredRecs atomic.Uint64
	tornTails     atomic.Uint64
	diffCompacts  atomic.Uint64
	diffBytes     atomic.Uint64
}

// Register exposes the counters on reg as the distec_persist_* families.
func (m *Metrics) Register(reg *metrics.Registry) {
	reg.CounterFunc("distec_persist_wal_appends_total", "WAL records appended (one per journaled batch).", m.appends.Load)
	reg.CounterFunc("distec_persist_wal_appended_bytes_total", "Bytes appended to WALs.", m.appendedBytes.Load)
	reg.CounterFunc("distec_persist_wal_fsyncs_total", "WAL fsyncs (Fsync mode only).", m.walFsyncs.Load)
	reg.CounterFunc("distec_persist_snapshot_writes_total", "Snapshot files written (session creation and compaction).", m.snapshots.Load)
	reg.CounterFunc("distec_persist_compactions_total", "Completed WAL compactions.", m.compactions.Load)
	reg.CounterFunc("distec_persist_compaction_failures_total", "Failed WAL compactions (the log is poisoned afterwards).", m.compactFails.Load)
	reg.CounterFunc("distec_persist_recoveries_total", "Session logs opened through crash recovery (OpenLog).", m.recoveries.Load)
	reg.CounterFunc("distec_persist_recovered_records_total", "WAL records surviving recovery, across sessions.", m.recoveredRecs.Load)
	reg.CounterFunc("distec_persist_torn_tails_total", "Recoveries that discarded a torn trailing record.", m.tornTails.Load)
	reg.CounterFunc("distec_persist_diff_compactions_total", "Compactions served by an appended differential snapshot instead of a full rewrite.", m.diffCompacts.Load)
	reg.CounterFunc("distec_persist_diff_appended_bytes_total", "Bytes appended to differential-snapshot files.", m.diffBytes.Load)
}

func (m *Metrics) countDiffCompaction(bytes int) {
	if m == nil {
		return
	}
	m.diffCompacts.Add(1)
	m.diffBytes.Add(uint64(bytes))
}

func (m *Metrics) countAppend(bytes int, fsynced bool) {
	if m == nil {
		return
	}
	m.appends.Add(1)
	m.appendedBytes.Add(uint64(bytes))
	if fsynced {
		m.walFsyncs.Add(1)
	}
}

func (m *Metrics) countSnapshot() {
	if m == nil {
		return
	}
	m.snapshots.Add(1)
}

func (m *Metrics) countCompaction(err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.compactFails.Add(1)
		return
	}
	m.compactions.Add(1)
}

func (m *Metrics) countRecovery(records int, torn bool) {
	if m == nil {
		return
	}
	m.recoveries.Add(1)
	m.recoveredRecs.Add(uint64(records))
	if torn {
		m.tornTails.Add(1)
	}
}
