package gf

import (
	"testing"
	"testing/quick"
)

func TestIsPrime(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 97, 101, 7919}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false", p)
		}
	}
	composites := []int{-7, 0, 1, 4, 9, 15, 91, 7917, 7921}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true", c)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {90, 97}, {7908, 7919},
	}
	for _, tc := range cases {
		if got := NextPrime(tc.in); got != tc.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	f := func(v uint16, qRaw uint8) bool {
		q := int(qRaw%29) + 2
		width := CeilLog(q, int(v)+1)
		if width == 0 {
			width = 1
		}
		d := Digits(int(v), q, width)
		back, mult := 0, 1
		for _, x := range d {
			if x < 0 || x >= q {
				return false
			}
			back += x * mult
			mult *= q
		}
		return back == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigitsOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Digits(100, 10, 1) did not panic")
		}
	}()
	Digits(100, 10, 1)
}

func TestEvalMatchesNaive(t *testing.T) {
	f := func(c0, c1, c2 uint8, aRaw uint8) bool {
		q := 101
		coeffs := []int{int(c0) % q, int(c1) % q, int(c2) % q}
		a := int(aRaw) % q
		naive := (coeffs[0] + coeffs[1]*a + coeffs[2]*a*a) % q
		return Eval(coeffs, a, q) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Two distinct degree-d polynomials over GF(q) agree on at most d points:
// the cover-free property Linial's reduction depends on.
func TestPolynomialAgreementBound(t *testing.T) {
	q := 13
	d := 2
	width := d + 1
	for x := 0; x < q*q*q; x += 7 {
		for y := x + 1; y < q*q*q; y += 97 {
			cx := Digits(x, q, width)
			cy := Digits(y, q, width)
			agree := 0
			for a := 0; a < q; a++ {
				if Eval(cx, a, q) == Eval(cy, a, q) {
					agree++
				}
			}
			if agree > d {
				t.Fatalf("colors %d and %d agree on %d > d=%d points", x, y, agree, d)
			}
		}
	}
}

func TestPow(t *testing.T) {
	if got := Pow(2, 10, 1000003); got != 1024 {
		t.Fatalf("Pow(2,10) = %d", got)
	}
	if got := Pow(5, 0, 7); got != 1 {
		t.Fatalf("Pow(5,0) = %d", got)
	}
	// Fermat: a^(p-1) = 1 mod p.
	for a := 1; a < 13; a++ {
		if got := Pow(a, 12, 13); got != 1 {
			t.Fatalf("Fermat fails: %d^12 mod 13 = %d", a, got)
		}
	}
}

func TestCeilLog(t *testing.T) {
	cases := []struct{ base, x, want int }{
		{2, 1, 0}, {2, 2, 1}, {2, 3, 2}, {2, 8, 3}, {2, 9, 4},
		{10, 1000, 3}, {10, 1001, 4}, {3, 27, 3},
	}
	for _, tc := range cases {
		if got := CeilLog(tc.base, tc.x); got != tc.want {
			t.Errorf("CeilLog(%d,%d) = %d, want %d", tc.base, tc.x, got, tc.want)
		}
	}
}
