// Package gf provides the small finite-field toolkit behind Linial's
// cover-free-family color reduction: primality testing, next-prime search,
// base-q digit decomposition of color values, and polynomial evaluation over
// GF(q) for prime q.
//
// Linial's construction identifies a color c < q^(d+1) with the polynomial
// whose coefficients are the base-q digits of c; two distinct colors map to
// polynomials that agree on at most d points of GF(q), which is the
// cover-free property the reduction step needs.
package gf

import "fmt"

// IsPrime reports whether x is prime. Trial division: every q used by the
// reduction is O(Δ·log n), far below any range where this matters.
func IsPrime(x int) bool {
	if x < 2 {
		return false
	}
	if x%2 == 0 {
		return x == 2
	}
	for f := 3; f*f <= x; f += 2 {
		if x%f == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime ≥ x (and 2 for x ≤ 2).
func NextPrime(x int) int {
	if x <= 2 {
		return 2
	}
	if x%2 == 0 {
		x++
	}
	for !IsPrime(x) {
		x += 2
	}
	return x
}

// Digits decomposes value into exactly width base-q digits, least significant
// first. It panics if value does not fit, which is always a parameter bug in
// the caller.
func Digits(value, q, width int) []int {
	if value < 0 {
		panic(fmt.Sprintf("gf: negative value %d", value))
	}
	out := make([]int, width)
	for i := 0; i < width; i++ {
		out[i] = value % q
		value /= q
	}
	if value != 0 {
		panic(fmt.Sprintf("gf: value does not fit in %d base-%d digits", width, q))
	}
	return out
}

// Eval evaluates the polynomial with the given coefficients (least
// significant first) at point a over GF(q): Σ coeffs[i]·a^i mod q.
// Coefficients and the point must already be reduced mod q.
func Eval(coeffs []int, a, q int) int {
	// Horner's rule, highest coefficient first.
	acc := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = (acc*a + coeffs[i]) % q
	}
	return acc
}

// Pow returns b^e mod q for e ≥ 0.
func Pow(b, e, q int) int {
	b %= q
	if b < 0 {
		b += q
	}
	acc := 1 % q
	for e > 0 {
		if e&1 == 1 {
			acc = acc * b % q
		}
		b = b * b % q
		e >>= 1
	}
	return acc
}

// CeilLog returns ⌈log_base(x)⌉ for x ≥ 1, base ≥ 2: the smallest w with
// base^w ≥ x. CeilLog(base, 1) = 0.
func CeilLog(base, x int) int {
	if x < 1 || base < 2 {
		panic(fmt.Sprintf("gf: CeilLog(%d, %d)", base, x))
	}
	w, p := 0, 1
	for p < x {
		// Overflow guard: widths beyond 62 bits cannot occur with sane inputs.
		if p > (1<<62)/base {
			panic("gf: CeilLog overflow")
		}
		p *= base
		w++
	}
	return w
}
