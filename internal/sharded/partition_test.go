package sharded

import (
	"math/rand"
	"testing"
)

func checkPartition(t *testing.T, weights []int, shards int) []int {
	t.Helper()
	bounds := Partition(weights, shards)
	n := len(weights)
	eff := len(bounds) - 1
	if bounds[0] != 0 || bounds[eff] != n {
		t.Fatalf("bounds %v do not cover [0,%d)", bounds, n)
	}
	want := shards
	if want > n {
		want = n
	}
	if want < 1 {
		want = 1
	}
	if eff != want {
		t.Fatalf("effective shards = %d, want %d (n=%d, requested %d)", eff, want, n, shards)
	}
	for s := 0; s < eff; s++ {
		if bounds[s+1] <= bounds[s] && n > 0 {
			t.Fatalf("block %d empty: bounds %v", s, bounds)
		}
	}
	return bounds
}

func TestPartitionEmpty(t *testing.T) {
	for _, shards := range []int{1, 4} {
		bounds := Partition(nil, shards)
		if len(bounds) != 2 || bounds[0] != 0 || bounds[1] != 0 {
			t.Fatalf("Partition(nil, %d) = %v, want [0 0]", shards, bounds)
		}
	}
}

func TestPartitionCoversAndNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		weights := make([]int, n)
		for i := range weights {
			weights[i] = 1 + rng.Intn(20)
		}
		for _, shards := range []int{1, 2, 3, n - 1, n, n + 1, 4 * n} {
			if shards < 1 {
				continue
			}
			checkPartition(t, weights, shards)
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	// Uniform weights must split into blocks within one entity of each other.
	weights := make([]int, 1000)
	for i := range weights {
		weights[i] = 1
	}
	bounds := checkPartition(t, weights, 8)
	for s := 0; s+1 < len(bounds); s++ {
		size := bounds[s+1] - bounds[s]
		if size < 125 || size > 126 {
			t.Fatalf("block %d has %d entities, want 125±1", s, size)
		}
	}
	// Skewed weights: no block may exceed the ideal share by more than the
	// largest single weight (the partitioner cuts at the first overshoot).
	rng := rand.New(rand.NewSource(4))
	maxW := 0
	var total int64
	for i := range weights {
		weights[i] = 1 + rng.Intn(50)
		if weights[i] > maxW {
			maxW = weights[i]
		}
		total += int64(weights[i])
	}
	bounds = checkPartition(t, weights, 8)
	ideal := total / 8
	for s := 0; s+1 < len(bounds); s++ {
		var w int64
		for i := bounds[s]; i < bounds[s+1]; i++ {
			w += int64(weights[i])
		}
		if w > ideal+int64(maxW) {
			t.Fatalf("block %d weight %d exceeds ideal %d + max %d", s, w, ideal, maxW)
		}
	}
}

func TestShardMapMonotone(t *testing.T) {
	weights := make([]int, 37)
	for i := range weights {
		weights[i] = 1 + i%5
	}
	bounds := Partition(weights, 5)
	m := shardMap(bounds, len(weights))
	if len(m) != len(weights) {
		t.Fatalf("map length %d", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i] < m[i-1] || m[i] > m[i-1]+1 {
			t.Fatalf("shard map not a monotone step function at %d: %v", i, m)
		}
	}
	for s := 0; s+1 < len(bounds); s++ {
		for i := bounds[s]; i < bounds[s+1]; i++ {
			if m[i] != int32(s) {
				t.Fatalf("entity %d mapped to %d, bounds say %d", i, m[i], s)
			}
		}
	}
}
