package sharded

import "github.com/distec/distec/internal/local"

// delivery is one message batched for handoff between shards: the
// destination entity, the destination port, and the payload. Batching
// replaces the goroutine engine's per-message channel operation with an
// append to a slice that is handed over wholesale at the round boundary.
type delivery struct {
	to   int32
	port int32
	msg  local.Message
}

// outbox is the double-buffered mail of one source shard: buf[par][dst] is
// the batch of messages this shard produced for destination shard dst in
// rounds of parity par.
//
// A buffer of parity p written in round r is read by the destination worker
// after the send barrier and reused (truncated, capacity retained) in round
// r+2, so steady-state rounds allocate nothing. Strictly, the current round
// structure would admit a single buffer — the halt-detection barrier at the
// end of every round already separates the last read of round r from the
// reset in round r+1 — but the parity scheme keeps the mailbox's safety
// independent of that barrier: it only relies on the send barrier, so halt
// detection can later be relaxed (e.g. lagged or tree-reduced) without
// touching message-passing correctness.
type outbox struct {
	buf [2][][]delivery
}

func newOutbox(shards int) outbox {
	var ob outbox
	ob.buf[0] = make([][]delivery, shards)
	ob.buf[1] = make([][]delivery, shards)
	return ob
}

// reset truncates the parity-par batches for reuse, keeping capacity.
func (ob *outbox) reset(par int) {
	for d := range ob.buf[par] {
		ob.buf[par][d] = ob.buf[par][d][:0]
	}
}

// put appends one message to the parity-par batch for shard dst.
//
//distec:hotpath
func (ob *outbox) put(par int, dst int32, d delivery) {
	ob.buf[par][dst] = append(ob.buf[par][dst], d)
}

// batch returns the parity-par batch destined for shard dst.
func (ob *outbox) batch(par int, dst int) []delivery {
	return ob.buf[par][dst]
}
