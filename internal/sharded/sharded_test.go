package sharded

import (
	"errors"
	"strings"
	"testing"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/linial"
	"github.com/distec/distec/internal/local"
)

// floodMax mirrors the reference protocol of the local package: broadcast
// the largest index seen for a fixed number of rounds, then halt.
type floodMax struct {
	v      local.View
	rounds int
	best   int
	out    []int
}

func (f *floodMax) Send(r int) []local.Message {
	msgs := make([]local.Message, f.v.Degree)
	for p := range msgs {
		msgs[p] = f.best
	}
	return msgs
}

func (f *floodMax) Receive(r int, inbox []local.Message) bool {
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if x := m.(int); x > f.best {
			f.best = x
		}
	}
	if r >= f.rounds {
		f.out[f.v.Index] = f.best
		return true
	}
	return false
}

// sleepy exercises the Sleeper fast path: entity i sleeps until round i+1,
// then announces its index and halts; it counts announcements heard.
type sleepy struct {
	v     local.View
	heard int
	out   []int
}

func (s *sleepy) Send(r int) []local.Message {
	if r != s.v.Index+1 {
		return nil
	}
	msgs := make([]local.Message, s.v.Degree)
	for p := range msgs {
		msgs[p] = s.v.Index
	}
	return msgs
}

func (s *sleepy) Receive(r int, inbox []local.Message) bool {
	for _, m := range inbox {
		if m != nil {
			s.heard++
		}
	}
	return s.finished(r)
}

func (s *sleepy) ReceiveNone(r int) bool { return s.finished(r) }
func (s *sleepy) NextWake(r int) int     { return s.v.Index + 1 }

func (s *sleepy) finished(r int) bool {
	if r >= s.v.Index+1 {
		s.out[s.v.Index] = s.heard
		return true
	}
	return false
}

// staggered halts entity i after round i+1, exercising delivery to halted
// entities.
type staggered struct{ v local.View }

func (s *staggered) Send(r int) []local.Message {
	msgs := make([]local.Message, s.v.Degree)
	for p := range msgs {
		msgs[p] = r
	}
	return msgs
}

func (s *staggered) Receive(r int, inbox []local.Message) bool { return r > s.v.Index }

// shardCounts is the matrix of worker counts the equivalence tests sweep,
// including the degenerate single-shard pool and counts exceeding the
// entity count.
func shardCounts(n int) []int {
	return []int{1, 2, 3, 4, n, n + 5}
}

func TestFloodMaxMatchesSequential(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Cycle(30), graph.Star(17), graph.Complete(12),
		graph.RandomRegular(48, 4, 3), graph.Path(2),
	} {
		for _, tp := range []*local.Topology{local.FromGraph(g), local.EdgeConflict(g)} {
			rounds := 40
			want := make([]int, tp.N())
			f := func(out []int) local.Factory {
				return func(v local.View) local.Protocol {
					return &floodMax{v: v, rounds: rounds, best: v.Index, out: out}
				}
			}
			wantStats, err := local.RunSequential(tp, f(want), nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range shardCounts(tp.N()) {
				got := make([]int, tp.N())
				gotStats, err := New(Config{Shards: shards}).Run(tp, f(got), nil)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if gotStats != wantStats {
					t.Fatalf("shards=%d: stats %+v, want %+v", shards, gotStats, wantStats)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("shards=%d entity %d: got %d, want %d", shards, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestSleeperMatchesSequential(t *testing.T) {
	tp := local.FromGraph(graph.Complete(9))
	f := func(out []int) local.Factory {
		return func(v local.View) local.Protocol { return &sleepy{v: v, out: out} }
	}
	want := make([]int, tp.N())
	wantStats, err := local.RunSequential(tp, f(want), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts(tp.N()) {
		got := make([]int, tp.N())
		gotStats, err := New(Config{Shards: shards}).Run(tp, f(got), nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if gotStats != wantStats {
			t.Fatalf("shards=%d: stats %+v, want %+v", shards, gotStats, wantStats)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d entity %d: heard %d, want %d", shards, i, got[i], want[i])
			}
		}
	}
}

func TestStaggeredHaltMatchesSequential(t *testing.T) {
	tp := local.FromGraph(graph.Complete(8))
	f := func(v local.View) local.Protocol { return &staggered{v: v} }
	want, err := local.RunSequential(tp, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts(tp.N()) {
		got, err := New(Config{Shards: shards}).Run(tp, f, nil)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got != want {
			t.Fatalf("shards=%d: stats %+v, want %+v", shards, got, want)
		}
	}
}

func TestLinialMatchesSequential(t *testing.T) {
	g := graph.RandomRegular(60, 4, 11)
	tp := local.EdgeConflict(g)
	init := make([]int, tp.N())
	for i := range init {
		init[i] = i
	}
	want, wantStats, err := linial.Reduce(tp, init, tp.N(), local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts(tp.N()) {
		got, gotStats, err := linial.Reduce(tp, init, tp.N(), New(Config{Shards: shards}))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if gotStats != wantStats {
			t.Fatalf("shards=%d: stats %+v, want %+v", shards, gotStats, wantStats)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d entity %d: color %d, want %d", shards, i, got[i], want[i])
			}
		}
	}
}

type neverHalt struct{}

func (neverHalt) Send(r int) []local.Message        { return nil }
func (neverHalt) Receive(int, []local.Message) bool { return false }
func neverFactory(v local.View) local.Protocol      { return neverHalt{} }

func TestRoundLimit(t *testing.T) {
	tp := local.FromGraph(graph.Cycle(4))
	for _, shards := range []int{1, 2, 4} {
		stats, err := New(Config{Shards: shards}).Run(tp, neverFactory, &local.Options{MaxRounds: 10})
		if !errors.Is(err, local.ErrRoundLimit) {
			t.Fatalf("shards=%d: err = %v, want ErrRoundLimit", shards, err)
		}
		if stats.Rounds != 10 {
			t.Fatalf("shards=%d: rounds = %d, want 10", shards, stats.Rounds)
		}
	}
}

func TestEmptyTopology(t *testing.T) {
	tp := local.EdgeConflict(graph.New(5)) // nodes, no edges
	stats, err := New(Config{}).Run(tp, neverFactory, &local.Options{MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats != (local.Stats{}) {
		t.Fatalf("stats = %+v, want zero", stats)
	}
}

// badSender returns a wrong-length outbox from every entity; the reported
// error must name the lowest entity index regardless of worker interleaving.
type badSender struct{}

func (badSender) Send(r int) []local.Message        { return make([]local.Message, 100) }
func (badSender) Receive(int, []local.Message) bool { return false }

func TestSendLengthMismatchDeterministic(t *testing.T) {
	tp := local.FromGraph(graph.Complete(8))
	for _, shards := range []int{1, 3, 8} {
		_, err := New(Config{Shards: shards}).Run(tp, func(local.View) local.Protocol { return badSender{} }, nil)
		if err == nil {
			t.Fatalf("shards=%d: accepted wrong outbox length", shards)
		}
		if !strings.Contains(err.Error(), "entity 0 ") {
			t.Fatalf("shards=%d: error %q does not blame the lowest entity", shards, err)
		}
	}
}

func TestRunStatsCollected(t *testing.T) {
	g := graph.RandomRegular(40, 4, 5)
	tp := local.FromGraph(g)
	var rs *RunStats
	eng := New(Config{Shards: 4, Collect: func(s *RunStats) { rs = s }})
	f := func(v local.View) local.Protocol {
		return &floodMax{v: v, rounds: 5, best: v.Index, out: make([]int, tp.N())}
	}
	stats, err := eng.Run(tp, f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs == nil {
		t.Fatal("Collect not called")
	}
	if rs.Shards != 4 || len(rs.PerShard) != 4 {
		t.Fatalf("shards = %d / %d entries, want 4", rs.Shards, len(rs.PerShard))
	}
	if rs.Rounds != stats.Rounds || rs.Messages != stats.Messages {
		t.Fatalf("RunStats %d/%d disagrees with Stats %d/%d", rs.Rounds, rs.Messages, stats.Rounds, stats.Messages)
	}
	var ents int
	var sent, delivered int64
	for _, s := range rs.PerShard {
		if s.Entities == 0 {
			t.Fatal("empty shard in partition")
		}
		ents += s.Entities
		sent += s.Sent
		delivered += s.Delivered
	}
	if ents != tp.N() {
		t.Fatalf("shard entities sum to %d, want %d", ents, tp.N())
	}
	if sent != stats.Messages || delivered != stats.Messages {
		t.Fatalf("sent=%d delivered=%d, want both %d", sent, delivered, stats.Messages)
	}
	if rs.Wall <= 0 {
		t.Fatal("wall time not measured")
	}
}

func TestEngineName(t *testing.T) {
	if got := New(Config{}).Name(); got != "sharded" {
		t.Fatalf("Name() = %q", got)
	}
	if got := New(Config{Shards: 7}).Name(); got != "sharded-7" {
		t.Fatalf("Name() = %q", got)
	}
	var _ local.Engine = Default
}
