package sharded

import (
	"errors"
	"strings"
	"testing"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/linial"
	"github.com/distec/distec/internal/local"
)

// laneExecutor runs tasks on a fixed pool of worker goroutines, the shape
// internal/serve feeds an Exec from.
type laneExecutor struct {
	tasks chan func()
	done  chan struct{}
}

func newLaneExecutor(workers int) *laneExecutor {
	e := &laneExecutor{tasks: make(chan func(), 64), done: make(chan struct{})}
	for i := 0; i < workers; i++ {
		go func() {
			for t := range e.tasks {
				t()
			}
		}()
	}
	return e
}

func (e *laneExecutor) Execute(task func()) { e.tasks <- task }
func (e *laneExecutor) Close()              { close(e.tasks) }

// drive runs an Exec to completion through the given executor.
func drive(x *Exec, exec Executor) (local.Stats, error) {
	for !x.Round(exec) {
	}
	return x.Stats()
}

// TestExecMatchesSequential drives the step scheduler over the same protocol
// matrix as the Run tests and demands bit-identical results and stats, for
// inline execution, fresh-goroutine execution, and a shared lane pool.
func TestExecMatchesSequential(t *testing.T) {
	lanes := newLaneExecutor(3)
	defer lanes.Close()
	execs := map[string]Executor{"inline": nil, "go": GoExecutor, "lanes": lanes}
	for _, g := range []*graph.Graph{
		graph.Cycle(30), graph.Star(17), graph.Complete(12), graph.RandomRegular(48, 4, 3),
	} {
		for _, tp := range []*local.Topology{local.FromGraph(g), local.EdgeConflict(g)} {
			rounds := 40
			want := make([]int, tp.N())
			f := func(out []int) local.Factory {
				return func(v local.View) local.Protocol {
					return &floodMax{v: v, rounds: rounds, best: v.Index, out: out}
				}
			}
			wantStats, err := local.RunSequential(tp, f(want), nil)
			if err != nil {
				t.Fatal(err)
			}
			for name, exec := range execs {
				for _, shards := range shardCounts(tp.N()) {
					got := make([]int, tp.N())
					x := Prepare(tp, f(got), nil, shards, exec)
					gotStats, err := drive(x, exec)
					if err != nil {
						t.Fatalf("%s shards=%d: %v", name, shards, err)
					}
					if gotStats != wantStats {
						t.Fatalf("%s shards=%d: stats %+v, want %+v", name, shards, gotStats, wantStats)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s shards=%d entity %d: got %d, want %d", name, shards, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestExecSleeperAndLinial covers the sleeper fast path and a real protocol
// through the step scheduler.
func TestExecSleeperAndLinial(t *testing.T) {
	tp := local.FromGraph(graph.Complete(9))
	f := func(out []int) local.Factory {
		return func(v local.View) local.Protocol { return &sleepy{v: v, out: out} }
	}
	want := make([]int, tp.N())
	wantStats, err := local.RunSequential(tp, f(want), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts(tp.N()) {
		got := make([]int, tp.N())
		gotStats, err := drive(Prepare(tp, f(got), nil, shards, GoExecutor), GoExecutor)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if gotStats != wantStats {
			t.Fatalf("shards=%d: stats %+v, want %+v", shards, gotStats, wantStats)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d entity %d: heard %d, want %d", shards, i, got[i], want[i])
			}
		}
	}

	g := graph.RandomRegular(60, 4, 11)
	ec := local.EdgeConflict(g)
	init := make([]int, ec.N())
	for i := range init {
		init[i] = i
	}
	wantC, wantS, err := linial.Reduce(ec, init, ec.N(), local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	stepEngine := local.EngineFunc("exec-4", func(tp *local.Topology, f local.Factory, opts *local.Options) (local.Stats, error) {
		return drive(Prepare(tp, f, opts, 4, GoExecutor), GoExecutor)
	})
	gotC, gotS, err := linial.Reduce(ec, init, ec.N(), stepEngine)
	if err != nil {
		t.Fatal(err)
	}
	if gotS != wantS {
		t.Fatalf("stats %+v, want %+v", gotS, wantS)
	}
	for i := range wantC {
		if gotC[i] != wantC[i] {
			t.Fatalf("entity %d: color %d, want %d", i, gotC[i], wantC[i])
		}
	}
}

func TestExecRoundLimitAndErrors(t *testing.T) {
	tp := local.FromGraph(graph.Cycle(4))
	x := Prepare(tp, neverFactory, &local.Options{MaxRounds: 10}, 2, nil)
	stats, err := drive(x, nil)
	if !errors.Is(err, local.ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if stats.Rounds != 10 {
		t.Fatalf("rounds = %d, want 10", stats.Rounds)
	}
	if !x.Round(nil) || !x.Done() {
		t.Fatal("finished Exec must stay finished")
	}

	bad := local.FromGraph(graph.Complete(8))
	for _, shards := range []int{1, 3, 8} {
		_, err := drive(Prepare(bad, func(local.View) local.Protocol { return badSender{} }, nil, shards, GoExecutor), GoExecutor)
		if err == nil {
			t.Fatalf("shards=%d: accepted wrong outbox length", shards)
		}
		if !strings.Contains(err.Error(), "entity 0 ") {
			t.Fatalf("shards=%d: error %q does not blame the lowest entity", shards, err)
		}
	}
}

func TestExecEmptyTopology(t *testing.T) {
	x := Prepare(local.EdgeConflict(graph.New(5)), neverFactory, nil, 4, nil)
	if !x.Done() {
		t.Fatal("empty topology should be done immediately")
	}
	if stats, err := x.Stats(); err != nil || stats != (local.Stats{}) {
		t.Fatalf("stats = %+v, %v; want zero, nil", stats, err)
	}
}

func TestExecInterrupt(t *testing.T) {
	boom := errors.New("deadline")
	rounds := 0
	opts := &local.Options{Interrupt: func() error {
		rounds++
		if rounds > 3 {
			return boom
		}
		return nil
	}}
	x := Prepare(local.FromGraph(graph.Cycle(6)), neverFactory, opts, 2, nil)
	_, err := drive(x, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want interrupt error", err)
	}
	if stats, _ := x.Stats(); stats.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3 completed before interrupt", stats.Rounds)
	}
}

// TestRunInterrupt covers the interrupt seam of the persistent-worker Run
// loop (checked in the end-of-round hook).
func TestRunInterrupt(t *testing.T) {
	boom := errors.New("cancelled")
	polls := 0
	opts := &local.Options{Interrupt: func() error {
		polls++
		if polls >= 5 {
			return boom
		}
		return nil
	}}
	for _, shards := range []int{1, 3} {
		polls = 0
		_, err := New(Config{Shards: shards}).Run(local.FromGraph(graph.Cycle(6)), neverFactory, opts)
		if !errors.Is(err, boom) {
			t.Fatalf("shards=%d: err = %v, want interrupt error", shards, err)
		}
	}
}
