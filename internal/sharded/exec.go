package sharded

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/trace"
)

// Executor schedules tasks onto workers owned by someone else. It is the
// seam that detaches the sharded scheduler from a single Run: an Exec fans
// its per-shard phase work out through an Executor instead of spawning its
// own goroutines, so one long-lived worker pool (internal/serve) can
// multiplex the rounds of many concurrent executions.
//
// Execute must run every task exactly once, on any goroutine, and may block
// until a worker is free. Tasks of one phase are independent; the Exec
// provides the barrier between phases itself.
type Executor interface {
	Execute(task func())
}

// goExecutor is the trivial executor: one fresh goroutine per task. It is
// what tests use when no shared pool is around.
type goExecutor struct{}

func (goExecutor) Execute(task func()) { go task() }

// GoExecutor runs every task on a fresh goroutine.
var GoExecutor Executor = goExecutor{}

// Exec is one in-flight execution whose rounds are driven externally: build
// it with Prepare, then call Round (or Rounds) until it reports completion,
// then read Stats. In contrast to Engine.Run — which owns its workers for
// the whole execution and synchronizes them with persistent barriers — an
// Exec holds no goroutines at all between steps, so many Execs can share
// one worker pool, interleaving at round granularity.
//
// Error-free executions are bit-identical to Engine.Run and to
// local.RunSequential: identical colors, rounds, and message counts.
//
// The driving goroutine must not call Round concurrently with itself; the
// parallelism is inside a round, across shards.
type Exec struct {
	t       *local.Topology
	opts    *local.Options
	st      *runState
	workers []*worker
	shardOf []int32
	par     int
	r       int
	done    bool
	stats   local.Stats
	// span is the trace span of this execution (nil when tracing is off);
	// prevSent tracks the workers' cumulative send counters between
	// rounds. Only the driving goroutine touches either.
	span     *trace.Span
	prevSent int64
	// sendTask and recvTask are the per-shard phase bodies, bound once at
	// Prepare: they read the round number and parity from the struct, so
	// Round fans them out without allocating a closure per round. The
	// driver writes x.r/x.par strictly before each fan-out and the
	// WaitGroup barrier in each orders those writes against the tasks.
	sendTask func(s int, w *worker)
	recvTask func(s int, w *worker)
}

// Prepare partitions the topology into at most shards blocks (≤0 selects
// one per core, clamped to the entity count as in Engine.Run) and constructs
// the per-shard protocol state, fanning construction out through exec (nil
// runs it inline). The returned Exec has executed zero rounds.
func Prepare(t *local.Topology, f local.Factory, opts *local.Options, shards int, exec Executor) *Exec {
	n := t.N()
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	x := &Exec{t: t, opts: opts, span: opts.Tracer().StartSpan("sharded", n)}
	if n == 0 {
		x.done = true
		x.span.End(nil)
		return x
	}
	weights := make([]int, n)
	for i := range weights {
		weights[i] = len(t.Ports[i]) + 1
	}
	bounds := Partition(weights, shards)
	shards = len(bounds) - 1
	x.shardOf = shardMap(bounds, n)
	x.st = &runState{limit: opts.RoundLimit(), interrupt: interruptOf(opts), active: make([]int64, shards)}
	x.workers = make([]*worker, shards)
	x.each(exec, func(s int, _ *worker) {
		x.workers[s] = newWorker(s, bounds[s], bounds[s+1], shards, t, f)
	})
	x.sendTask = func(_ int, w *worker) {
		w.sendPhase(x.r, x.par, x.t, x.shardOf, x.st)
	}
	x.recvTask = func(_ int, w *worker) {
		w.deliverPhase(x.par, x.workers)
		w.receivePhase(x.r, x.par)
	}
	return x
}

// interruptOf extracts the interrupt hook of opts (nil-safe) in the closure
// form runState wants.
func interruptOf(opts *local.Options) func() error {
	if opts == nil || opts.Interrupt == nil {
		return nil
	}
	return opts.Interrupt
}

// Shards returns the effective shard count.
func (x *Exec) Shards() int { return len(x.workers) }

// Done reports whether the execution has finished (successfully or not).
func (x *Exec) Done() bool { return x.done }

// Stats returns the execution cost so far and the first error, mirroring
// what Engine.Run would have returned. It may be called between rounds (not
// concurrently with one); the result is final once Done reports true.
func (x *Exec) Stats() (local.Stats, error) {
	if x.st == nil {
		return local.Stats{}, nil
	}
	s := x.stats
	if !x.done {
		for _, w := range x.workers {
			s.Messages += w.sent
		}
	}
	return s, x.st.getErr()
}

// each runs f for every shard and waits for all of them: through exec when
// given and more than one shard exists, inline otherwise. The WaitGroup is
// the inter-phase barrier; its Wait/Done edges give the same happens-before
// guarantees the phaser gives Engine.Run.
//
// A panic on a fanned-out task is recorded as the execution's error rather
// than unwinding the executor's worker goroutine (which, on a shared pool,
// would kill every tenant): the next barrier check sees the error and the
// execution halts. Inline execution lets panics propagate to the caller,
// who owns the goroutine.
func (x *Exec) each(exec Executor, f func(s int, w *worker)) {
	if exec == nil || len(x.workers) <= 1 {
		for s := range x.workers {
			f(s, x.workers[s])
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(x.workers))
	for s := range x.workers {
		s, w := s, x.workers[s]
		exec.Execute(func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					x.st.recordErr(-1, fmt.Errorf("%w: shard %d: %v", local.ErrPanic, s, r))
				}
			}()
			f(s, w)
		})
	}
	wg.Wait()
}

// Round executes one synchronous round — send phase, barrier, deliver and
// receive phase, barrier, halt decision — fanning the per-shard work out
// through exec (nil runs inline on the caller). It returns true once the
// execution has finished; further calls are no-ops.
//
//distec:hotpath
func (x *Exec) Round(exec Executor) bool {
	if x.done {
		return true
	}
	r := x.r + 1
	x.r = r
	st := x.st
	if r > st.limit {
		st.recordErr(-1, fmt.Errorf("%w (limit %d)", local.ErrRoundLimit, st.limit))
		return x.finish()
	}
	if st.interrupt != nil {
		if err := st.interrupt(); err != nil {
			st.recordErr(-1, err)
			return x.finish()
		}
	}
	var roundStart time.Time
	if x.span != nil {
		roundStart = time.Now()
	}
	x.stats.Rounds = r
	x.each(exec, x.sendTask)
	if st.getErr() == nil {
		x.each(exec, x.recvTask)
	}
	total := 0
	for _, w := range x.workers {
		total += len(w.active)
	}
	if x.span != nil && st.getErr() == nil {
		var msgs int64
		received, halted := 0, 0
		for _, w := range x.workers {
			msgs += w.sent
			received += w.rReceived
			halted += w.rHalted
		}
		msgs, x.prevSent = msgs-x.prevSent, msgs
		x.span.Round(trace.RoundEvent{
			Round:    r,
			Duration: time.Since(roundStart),
			Messages: msgs,
			Received: received,
			Halted:   halted,
			Active:   total,
		})
	}
	if total == 0 || st.getErr() != nil {
		return x.finish()
	}
	x.par = 1 - x.par
	return false
}

// finish seals the execution: message totals are aggregated once, so Stats
// stays O(shards) and matches Engine.Run exactly.
func (x *Exec) finish() bool {
	x.done = true
	for _, w := range x.workers {
		x.stats.Messages += w.sent
	}
	x.span.End(x.st.getErr())
	return true
}
