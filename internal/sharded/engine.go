// Package sharded implements the worker-pool execution engine for LOCAL
// protocols: entities are partitioned into contiguous shards (one worker
// goroutine per shard, one shard per core by default), messages travel in
// double-buffered per-shard batches handed over at round boundaries, and all
// per-round buffers are reused, keeping the hot path allocation-free.
//
// Compared to the goroutine-per-entity engine, the synchronization cost of a
// round drops from Θ(entities) barrier operations and one channel operation
// per message to two barriers across the worker pool and one slice append
// per message. Compared to the sequential engine, rounds run in parallel
// across shards. Error-free runs are bit-identical to local.RunSequential
// for every protocol in the repository (on a protocol error, each shard
// stops sending at its own first bad entity, so the partial message count
// returned with the error may differ from the sequential engine's): the
// receive order within a shard is ascending
// entity order, inboxes are port-indexed (so delivery order is immaterial),
// and the sparse/sleeper fast paths mirror the sequential engine exactly.
package sharded

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/distec/distec/internal/local"
)

// Config tunes the engine.
type Config struct {
	// Shards is the worker count; ≤0 selects runtime.GOMAXPROCS(0) (one
	// shard per core). The effective count never exceeds the entity count.
	Shards int
	// Collect, when non-nil, receives the detailed execution stats of every
	// Run, including runs that end in an error (the stats then cover the
	// rounds executed up to it). Enabling it adds four monotonic clock reads
	// per worker per round (one pair around each of the two work phases).
	Collect func(*RunStats)
}

// Engine is the sharded execution engine. The zero value is valid and uses
// one shard per core. Engines are stateless between runs and safe for
// concurrent use.
type Engine struct {
	cfg Config
}

// New returns a sharded engine with the given configuration.
func New(cfg Config) *Engine { return &Engine{cfg: cfg} }

// Default is the sharded engine with one shard per core.
var Default local.Engine = New(Config{})

// Name implements local.Engine.
func (e *Engine) Name() string {
	if e.cfg.Shards > 0 {
		return fmt.Sprintf("sharded-%d", e.cfg.Shards)
	}
	return "sharded"
}

// ShardStats is the per-shard breakdown of one execution.
type ShardStats struct {
	// Entities is the number of entities owned by the shard.
	Entities int
	// Weight is the partitioner's work estimate for the shard (Σ degree+1).
	Weight int64
	// Sent is the number of messages produced by the shard's entities.
	Sent int64
	// Delivered is the number of messages delivered into the shard.
	Delivered int64
	// Busy is the time spent in send/deliver/receive phases (excludes
	// barrier waits). Zero unless Config.Collect is set.
	Busy time.Duration
}

// RunStats reports one execution in detail (see Config.Collect).
type RunStats struct {
	// Shards is the effective worker count.
	Shards int
	// Rounds and Messages match the local.Stats returned by Run.
	Rounds   int
	Messages int64
	// Wall is the total wall-clock time of the run.
	Wall time.Duration
	// PerShard holds one entry per shard.
	PerShard []ShardStats
}

// Run implements local.Engine. It executes the protocol with the configured
// worker pool; error-free runs return stats bit-identical to
// local.RunSequential.
func (e *Engine) Run(t *local.Topology, f local.Factory, opts *local.Options) (local.Stats, error) {
	start := time.Now()
	n := t.N()
	span := opts.Tracer().StartSpan(e.Name(), n)
	shards := e.cfg.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	if n == 0 {
		if e.cfg.Collect != nil {
			e.cfg.Collect(&RunStats{Wall: time.Since(start)})
		}
		span.End(nil)
		return local.Stats{}, nil
	}

	weights := make([]int, n)
	for i := range weights {
		weights[i] = len(t.Ports[i]) + 1
	}
	bounds := Partition(weights, shards)
	shards = len(bounds) - 1
	shardOf := shardMap(bounds, n)

	workers := make([]*worker, shards)
	st := &runState{limit: opts.RoundLimit(), interrupt: interruptOf(opts), active: make([]int64, shards), span: span, lastEnd: start}
	ph := newPhaser(shards)
	// Tracing needs the phase timers on: per-round ShardBusy is the busy
	// deltas, and skew between shards is the partitioner's imbalance.
	timed := e.cfg.Collect != nil || span != nil
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			defer wg.Done()
			// Protocol construction is part of the parallel region: factories
			// are concurrency-safe by the goroutine engine's existing contract.
			w := newWorker(s, bounds[s], bounds[s+1], shards, t, f)
			workers[s] = w
			ph.arrive(nil) // all workers constructed before any round starts
			w.loop(t, st, ph, shardOf, workers, timed)
		}(s)
	}
	wg.Wait()

	stats := local.Stats{Rounds: st.rounds}
	for _, w := range workers {
		stats.Messages += w.sent
	}
	if e.cfg.Collect != nil {
		rs := &RunStats{
			Shards:   shards,
			Rounds:   stats.Rounds,
			Messages: stats.Messages,
			Wall:     time.Since(start),
			PerShard: make([]ShardStats, shards),
		}
		for s, w := range workers {
			var weight int64
			for i := w.lo; i < w.hi; i++ {
				weight += int64(weights[i])
			}
			rs.PerShard[s] = ShardStats{
				Entities:  w.hi - w.lo,
				Weight:    weight,
				Sent:      w.sent,
				Delivered: w.delivered,
				Busy:      w.busy,
			}
		}
		e.cfg.Collect(rs)
	}
	err := st.getErr()
	span.End(err)
	return stats, err
}
