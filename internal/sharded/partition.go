package sharded

// Partition splits the entities 0..len(weights)-1 into at most shards
// contiguous blocks of near-equal total weight, and returns the block
// boundaries: block s is the half-open range [bounds[s], bounds[s+1]).
//
// Contiguous blocks keep each worker's entities dense in memory (protocol
// state, inboxes, and counters of one shard share cache lines) and make the
// entity→shard map a monotone step function. Weights are per-entity work
// estimates (degree-proportional for LOCAL protocols, since both Send and
// Receive touch every port); a zero-weight entity still costs one unit of
// scheduling, so callers should use degree+1.
//
// Every block is non-empty: when shards exceeds the entity count, the count
// of blocks is clamped. len(bounds)-1 is the effective shard count. With no
// entities at all the result is a single empty block.
func Partition(weights []int, shards int) []int {
	n := len(weights)
	if n == 0 {
		return []int{0, 0}
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	var total int64
	for _, w := range weights {
		total += int64(w)
	}
	bounds := make([]int, shards+1)
	i := 0
	var cum int64
	for s := 0; s < shards; s++ {
		bounds[s] = i
		// The block ends at the first entity where the cumulative weight
		// reaches the s-th equal share — but it always takes at least one
		// entity and leaves at least one per remaining block.
		target := total * int64(s+1) / int64(shards)
		maxEnd := n - (shards - s - 1)
		cum += int64(weights[i])
		end := i + 1
		for end < maxEnd && cum < target {
			cum += int64(weights[end])
			end++
		}
		i = end
	}
	bounds[shards] = n
	return bounds
}

// shardMap expands block boundaries into a dense entity→shard lookup table,
// the form the delivery hot path wants (one array read per message).
func shardMap(bounds []int, n int) []int32 {
	m := make([]int32, n)
	for s := 0; s+1 < len(bounds); s++ {
		for i := bounds[s]; i < bounds[s+1]; i++ {
			m[i] = int32(s)
		}
	}
	return m
}
