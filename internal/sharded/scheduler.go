package sharded

import (
	"fmt"
	"sync"
	"time"

	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/trace"
)

// phaser is a reusable barrier for the worker pool. The last worker to
// arrive runs the supplied hook while holding the lock, which is where the
// per-round global decisions (halt detection, error propagation) happen
// without any extra synchronization. With one participant it degenerates to
// a plain function call.
type phaser struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
}

func newPhaser(parties int) *phaser {
	p := &phaser{parties: parties}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// arrive blocks until all parties have arrived; the last arrival runs
// onLast (may be nil) before releasing the others. The phaser's lock gives
// every value written before an arrive a happens-before edge to every read
// after it returns, which is what makes the engine's shared round state
// safe to read barrier-to-barrier without atomics.
func (p *phaser) arrive(onLast func()) {
	p.mu.Lock()
	gen := p.gen
	p.arrived++
	if p.arrived == p.parties {
		if onLast != nil {
			onLast()
		}
		p.arrived = 0
		p.gen++
		p.cond.Broadcast()
		p.mu.Unlock()
		return
	}
	for gen == p.gen {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// runState is the cross-shard state of one execution. Fields below errMu are
// written under errMu; stop/rounds are written only inside phaser hooks and
// read only after the corresponding arrive, so the phaser orders them.
type runState struct {
	limit     int
	interrupt func() error // polled once per round (end-of-round hook)
	active    []int64      // per-shard count of still-active entities
	stop      bool
	rounds    int

	// span, when non-nil, receives one event per completed round, emitted
	// from the end-of-round phaser hook (lastEnd tracks the previous
	// emission time). The hook holds the phaser lock, so every worker's
	// per-round counters are visible without extra synchronization.
	span    *trace.Span
	lastEnd time.Time

	errMu     sync.Mutex
	err       error
	errEntity int // lowest-index entity that reported err, for determinism
}

// emitRound rolls the workers' per-round counters into one trace event.
// Called only from a phaser onLast hook (phaser lock held) and only when
// span is non-nil and the round completed without error.
func (st *runState) emitRound(r int, workers []*worker, timed bool) {
	now := time.Now()
	var msgs int64
	received, halted, active := 0, 0, 0
	var busy []time.Duration
	if timed {
		busy = make([]time.Duration, len(workers))
	}
	for s, w := range workers {
		msgs += w.sent - w.prevSent
		w.prevSent = w.sent
		received += w.rReceived
		halted += w.rHalted
		active += len(w.active)
		if timed {
			busy[s] = w.busy - w.prevBusy
			w.prevBusy = w.busy
		}
	}
	st.span.Round(trace.RoundEvent{
		Round:     r,
		Duration:  now.Sub(st.lastEnd),
		Messages:  msgs,
		Received:  received,
		Halted:    halted,
		Active:    active,
		ShardBusy: busy,
	})
	st.lastEnd = now
}

// recordErr keeps the error of the lowest-index reporting entity so the
// engine's error is deterministic regardless of worker interleaving.
// entity −1 flags engine-level errors (round limit), which win outright.
func (st *runState) recordErr(entity int, err error) {
	st.errMu.Lock()
	if st.err == nil || entity < st.errEntity {
		st.err, st.errEntity = err, entity
	}
	st.errMu.Unlock()
}

func (st *runState) getErr() error {
	st.errMu.Lock()
	defer st.errMu.Unlock()
	return st.err
}

// slot marks one written inbox cell (shard-local entity index + port) for
// sparse clearing, mirroring the sequential engine's touched lists.
type slot struct {
	ent  int32
	port int32
}

// worker owns one contiguous block of entities: their protocol state, their
// double-buffered inboxes, and the outbox batches they produce. All mutation
// of a worker's fields happens on its own goroutine; cross-shard data flows
// only through outbox batches read strictly after a barrier.
type worker struct {
	id     int
	lo, hi int // owned entity range [lo, hi)

	procs    []local.Protocol
	sparse   []local.SparseReceiver
	sleepers []local.Sleeper

	active  []int32 // still-active owned entities, ascending
	wake    []int   // shard-local: round before which the entity sleeps
	gotMsg  []int32 // shard-local: deliveries this round
	inbox   [2][][]local.Message
	touched [2][]slot
	out     outbox

	sent      int64
	delivered int64
	busy      time.Duration

	// Per-round trace counters: receivePhase records the entities that had
	// a delivery and the entities that halted; the end-of-round hook reads
	// them and tracks cumulative-counter deltas via prevSent/prevBusy.
	rReceived int
	rHalted   int
	prevSent  int64
	prevBusy  time.Duration
}

func newWorker(id, lo, hi, shards int, t *local.Topology, f local.Factory) *worker {
	n := hi - lo
	w := &worker{
		id:       id,
		lo:       lo,
		hi:       hi,
		procs:    make([]local.Protocol, n),
		sparse:   make([]local.SparseReceiver, n),
		sleepers: make([]local.Sleeper, n),
		active:   make([]int32, n),
		wake:     make([]int, n),
		gotMsg:   make([]int32, n),
		out:      newOutbox(shards),
	}
	w.inbox[0] = make([][]local.Message, n)
	w.inbox[1] = make([][]local.Message, n)
	for li := 0; li < n; li++ {
		i := lo + li
		w.procs[li] = f(t.ViewOf(i))
		if sr, ok := w.procs[li].(local.SparseReceiver); ok {
			w.sparse[li] = sr
		}
		if sl, ok := w.procs[li].(local.Sleeper); ok {
			w.sleepers[li] = sl
		}
		deg := len(t.Ports[i])
		w.inbox[0][li] = make([]local.Message, deg)
		w.inbox[1][li] = make([]local.Message, deg)
		w.active[li] = int32(i)
	}
	return w
}

// sendPhase runs Send for every awake owned entity and batches the output
// into the parity-par outbox buffers by destination shard.
//
//distec:hotpath
func (w *worker) sendPhase(r, par int, t *local.Topology, shardOf []int32, st *runState) {
	w.out.reset(par)
	for _, i32 := range w.active {
		i := int(i32)
		if w.wake[i-w.lo] > r {
			continue
		}
		out := w.procs[i-w.lo].Send(r)
		if out == nil {
			continue
		}
		if len(out) != len(t.Ports[i]) {
			st.recordErr(i, fmt.Errorf("local: entity %d sent %d messages, has %d ports", i, len(out), len(t.Ports[i])))
			return
		}
		for p, msg := range out {
			if msg == nil {
				continue
			}
			j := t.Ports[i][p]
			w.out.put(par, shardOf[j], delivery{to: j, port: t.Back[i][p], msg: msg})
			w.sent++
		}
	}
}

// deliverPhase drains the parity-par batches addressed to this shard from
// every source worker into the owned entities' parity-par inboxes. Stale
// slots from the buffer's previous use (round r−2) and last round's delivery
// counters are cleared sparsely first, exactly like the sequential engine.
//
//distec:hotpath
func (w *worker) deliverPhase(par int, workers []*worker) {
	for _, s := range w.touched[1-par] {
		w.gotMsg[s.ent] = 0
	}
	tb := w.touched[par]
	for _, s := range tb {
		w.inbox[par][s.ent][s.port] = nil
	}
	tb = tb[:0]
	for _, src := range workers {
		for _, d := range src.out.batch(par, w.id) {
			li := d.to - int32(w.lo)
			w.inbox[par][li][d.port] = d.msg
			w.gotMsg[li]++
			tb = append(tb, slot{ent: li, port: d.port})
			w.delivered++
		}
	}
	w.touched[par] = tb
}

// receivePhase runs Receive/ReceiveNone for the owned entities and compacts
// the active list, preserving ascending order. The sleep/sparse logic is a
// line-for-line mirror of RunSequential so results stay bit-identical.
//
//distec:hotpath
func (w *worker) receivePhase(r, par int) {
	keep := w.active[:0]
	received := 0
	before := len(w.active)
	for _, i32 := range w.active {
		li := int(i32) - w.lo
		got := w.gotMsg[li]
		if w.wake[li] > r && got == 0 {
			keep = append(keep, i32)
			continue
		}
		if got != 0 {
			received++
		}
		var done bool
		if got == 0 && w.sparse[li] != nil {
			done = w.sparse[li].ReceiveNone(r)
			if !done && w.sleepers[li] != nil {
				w.wake[li] = w.sleepers[li].NextWake(r)
			}
		} else {
			done = w.procs[li].Receive(r, w.inbox[par][li])
			w.wake[li] = 0
		}
		if !done {
			keep = append(keep, i32)
		}
	}
	w.active = keep
	w.rReceived, w.rHalted = received, before-len(keep)
}

// loop is the per-worker round loop. Each round costs two barriers across
// the worker pool (not across entities): one after the send phase, so every
// batch is complete before any shard drains, and one after the receive
// phase, where the last arrival aggregates active counts and decides
// whether the execution halts.
func (w *worker) loop(t *local.Topology, st *runState, ph *phaser, shardOf []int32, workers []*worker, timed bool) {
	par := 0
	var mark time.Time
	begin := func() {
		if timed {
			mark = time.Now()
		}
	}
	end := func() {
		if timed {
			w.busy += time.Since(mark)
		}
	}
	for r := 1; ; r++ {
		if r > st.limit {
			// Every worker computes the same r and breaks here together, so
			// no barrier is pending.
			st.recordErr(-1, fmt.Errorf("%w (limit %d)", local.ErrRoundLimit, st.limit))
			return
		}
		begin()
		w.sendPhase(r, par, t, shardOf, st)
		end()
		ph.arrive(nil)
		if st.getErr() == nil {
			begin()
			w.deliverPhase(par, workers)
			w.receivePhase(r, par)
			end()
		}
		st.active[w.id] = int64(len(w.active))
		ph.arrive(func() {
			st.rounds = r
			if st.err == nil && st.interrupt != nil {
				if err := st.interrupt(); err != nil {
					st.recordErr(-1, err)
				}
			}
			if st.span != nil && st.err == nil {
				st.emitRound(r, workers, timed)
			}
			var total int64
			for _, c := range st.active {
				total += c
			}
			if total == 0 || st.err != nil {
				st.stop = true
			}
		})
		if st.stop {
			return
		}
		par = 1 - par
	}
}
