// Package vertexcolor implements the classical deterministic (Δ+1)-vertex
// coloring and (deg(v)+1)-list vertex coloring in O(Δ² + log* n) rounds
// ([Lin87, SV93]), as context for the paper: (2Δ−1)-edge coloring is the
// special case of (Δ+1)-vertex coloring on the line graph (paper §1), and
// the fastest known vertex algorithm is still polynomial in Δ while the
// paper pushes edge coloring to quasi-polylogarithmic in Δ.
package vertexcolor

import (
	"fmt"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
)

// SolveList solves the (deg(v)+1)-list vertex coloring problem on g: each
// node must be colored from lists[v] (|lists[v]| > deg(v)) so that adjacent
// nodes differ. Runs in O(Δ² + log* n) rounds.
func SolveList(g *graph.Graph, lists [][]int, run local.Engine) ([]int, local.Stats, error) {
	t := local.FromGraph(g)
	initial := make([]int, g.N())
	for v := range initial {
		initial[v] = v
	}
	return listcolor.SolveOnTopology(t, initial, g.N(), lists, run)
}

// Solve computes a (Δ+1)-vertex coloring of g in O(Δ² + log* n) rounds.
func Solve(g *graph.Graph, run local.Engine) ([]int, local.Stats, error) {
	c := g.MaxDegree() + 1
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.N())
	for v := range lists {
		lists[v] = palette
	}
	return SolveList(g, lists, run)
}

// Verify checks that colors is a proper vertex coloring of g.
func Verify(g *graph.Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("vertexcolor: %d colors for %d nodes", len(colors), g.N())
	}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		if colors[u] < 0 || colors[v] < 0 {
			return fmt.Errorf("vertexcolor: uncolored endpoint of edge {%d,%d}", u, v)
		}
		if colors[u] == colors[v] {
			return fmt.Errorf("vertexcolor: nodes %d and %d share color %d", u, v, colors[u])
		}
	}
	return nil
}

// EdgeColoringViaLineGraph demonstrates the paper's framing: a (2Δ−1)-edge
// coloring obtained by running the VERTEX algorithm on the line graph
// (edge-conflict topology). It returns per-edge colors over the palette
// {0..2Δ−2}; the rounds are edge-entity rounds.
func EdgeColoringViaLineGraph(g *graph.Graph, run local.Engine) ([]int, local.Stats, error) {
	t := local.EdgeConflict(g)
	c := 2*g.MaxDegree() - 1
	if c < 1 {
		c = 1
	}
	palette := make([]int, c)
	for i := range palette {
		palette[i] = i
	}
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = palette
	}
	initial := make([]int, g.M())
	for e := range initial {
		initial[e] = e
	}
	return listcolor.SolveOnTopology(t, initial, g.M(), lists, run)
}
