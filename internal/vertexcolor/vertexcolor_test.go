package vertexcolor

import (
	"testing"
	"testing/quick"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/verify"
)

func TestSolveFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(30)},
		{"complete", graph.Complete(9)},
		{"star", graph.Star(12)},
		{"regular", graph.RandomRegular(60, 6, 2)},
		{"grid", graph.Grid(6, 6)},
		{"tree", graph.RandomTree(50, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			colors, stats, err := Solve(tc.g, local.Sequential)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if err := Verify(tc.g, colors); err != nil {
				t.Fatal(err)
			}
			limit := tc.g.MaxDegree() + 1
			for v, c := range colors {
				if c < 0 || c >= limit {
					t.Fatalf("node %d color %d outside Δ+1=%d", v, c, limit)
				}
			}
			if stats.Rounds <= 0 {
				t.Fatal("no rounds")
			}
		})
	}
}

func TestSolveListRejectsSmallList(t *testing.T) {
	g := graph.Star(4)
	lists := [][]int{{0}, {0, 1}, {0, 1}, {0, 1}} // center list too small
	if _, _, err := SolveList(g, lists, nil); err == nil {
		t.Fatal("accepted |L| ≤ deg")
	}
}

func TestEdgeColoringViaLineGraph(t *testing.T) {
	g := graph.RandomRegular(40, 5, 8)
	colors, _, err := EdgeColoringViaLineGraph(g, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.EdgeColoring(g, nil, colors); err != nil {
		t.Fatal(err)
	}
	if err := verify.PaletteRespected(colors, 2*g.MaxDegree()-1); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := graph.Path(3)
	if err := Verify(g, []int{0, 1, 0}); err != nil {
		t.Fatalf("valid rejected: %v", err)
	}
	if err := Verify(g, []int{0, 0, 1}); err == nil {
		t.Fatal("conflict not caught")
	}
	if err := Verify(g, []int{0, 1}); err == nil {
		t.Fatal("length mismatch not caught")
	}
}

func TestEnginesAgree(t *testing.T) {
	g := graph.RandomRegular(36, 5, 4)
	a, sa, err := Solve(g, local.Sequential)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := Solve(g, local.Goroutines)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("stats differ: %+v vs %+v", sa, sb)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d differs", v)
		}
	}
}

// Property: random graphs always get proper (Δ+1)-colorings.
func TestSolveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(40, 0.12, seed)
		colors, _, err := Solve(g, local.Sequential)
		if err != nil {
			return false
		}
		return Verify(g, colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
