// Package linial implements Linial's deterministic color reduction in the
// LOCAL model [Lin87], the substrate the paper invokes as "compute an
// O(Δ̄²)-edge coloring in O(log* n) rounds".
//
// Given any proper coloring of a conflict system with X colors and maximum
// conflict degree Δ, the algorithm reaches O(Δ²) colors in O(log* X) rounds.
// Each round applies the cover-free-family step: the current color c < q^(d+1)
// is read as a degree-d polynomial over GF(q) (its base-q digits); because two
// distinct polynomials agree on at most d of the q points and q > Δ·d, every
// entity can pick a point a where its polynomial differs from all neighbors'
// polynomials, and adopt the pair (a, f(a)) — one of q² colors — as its new
// color. The schedule of (q, d) pairs is a pure function of (X, Δ), so all
// entities run in lockstep without coordination.
//
// The package also provides the standard one-class-per-round reduction to any
// target ≥ Δ+1 colors (used to 3-color the max-degree-2 conflict paths/cycles
// of the paper's defective coloring, §4.1).
package linial

import (
	"fmt"
	"math"

	"github.com/distec/distec/internal/gf"
	"github.com/distec/distec/internal/local"
)

// Step is one Linial reduction round: colors < Q^(D+1) become colors < Q².
type Step struct {
	Q int // field size (prime, > maxDeg·D)
	D int // polynomial degree
}

// ceilRoot returns the smallest r ≥ 1 with r^k ≥ m.
func ceilRoot(m, k int) int {
	if m <= 1 {
		return 1
	}
	r := int(math.Pow(float64(m), 1/float64(k)))
	for r > 1 && pow64(r-1, k) >= m {
		r--
	}
	for pow64(r, k) < m {
		r++
	}
	return r
}

// pow64 computes r^k, saturating at math.MaxInt64 to avoid overflow.
func pow64(r, k int) int {
	acc := 1
	for i := 0; i < k; i++ {
		if acc > math.MaxInt64/max(r, 1) {
			return math.MaxInt64
		}
		acc *= r
	}
	return acc
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// bestStep returns the step minimizing the resulting color count q² for the
// current color count m and conflict degree maxDeg, or ok=false when no step
// makes progress (m is already at the fixpoint).
func bestStep(m, maxDeg int) (Step, bool) {
	bestQ := -1
	var best Step
	for d := 1; d <= 62; d++ {
		lo := maxDeg*d + 1
		root := ceilRoot(m, d+1)
		q := gf.NextPrime(max(lo, root))
		if bestQ < 0 || q < bestQ {
			bestQ = q
			best = Step{Q: q, D: d}
		}
		// Larger d only helps while the root term dominates; once lo ≥ root
		// the q value can only grow with d.
		if lo >= root {
			break
		}
	}
	if bestQ*bestQ >= m {
		return Step{}, false
	}
	return best, true
}

// Plan returns the deterministic (q, d) schedule that reduces X colors to the
// fixpoint on conflict systems of maximum degree maxDeg. The schedule length
// is O(log* X).
func Plan(X, maxDeg int) []Step {
	if maxDeg <= 0 {
		return nil
	}
	var plan []Step
	m := X
	for {
		s, ok := bestStep(m, maxDeg)
		if !ok {
			return plan
		}
		plan = append(plan, s)
		m = s.Q * s.Q
	}
}

// Colors returns the number of colors after running Plan(X, maxDeg):
// O(maxDeg²), concretely at most NextPrime(maxDeg+1)² ≤ 4(maxDeg+1)².
func Colors(X, maxDeg int) int {
	if maxDeg <= 0 {
		return min(X, 1)
	}
	plan := Plan(X, maxDeg)
	if len(plan) == 0 {
		return X
	}
	last := plan[len(plan)-1]
	return last.Q * last.Q
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// reducer is the per-entity protocol: len(plan) Linial rounds followed by
// (K − target) class-elimination rounds when target ≥ 0.
type reducer struct {
	v      local.View
	color  int
	plan   []Step
	k      int // colors after the plan
	target int // −1: no class reduction
	out    []int
	errs   *local.ErrorSink
	dead   bool // a protocol error occurred; idle out the schedule
}

func (rd *reducer) Send(r int) []local.Message {
	msgs := make([]local.Message, rd.v.Degree)
	for p := range msgs {
		msgs[p] = rd.color
	}
	return msgs
}

func (rd *reducer) Receive(r int, inbox []local.Message) bool {
	if rd.dead {
		// Keep pace with the lockstep schedule but stop computing.
	} else if r <= len(rd.plan) {
		rd.linialStep(rd.plan[r-1], inbox)
	} else if rd.target >= 0 {
		c := rd.k - (r - len(rd.plan))
		if rd.color == c {
			rd.recolorBelow(rd.target, inbox)
		}
	}
	total := len(rd.plan)
	if rd.target >= 0 && rd.k > rd.target {
		total += rd.k - rd.target
	}
	if r >= total {
		rd.out[rd.v.Index] = rd.color
		return true
	}
	return false
}

// linialStep applies one cover-free reduction: find a point of GF(q) where
// this entity's color-polynomial differs from every neighbor's.
func (rd *reducer) linialStep(s Step, inbox []local.Message) {
	q, d := s.Q, s.D
	mine := gf.Digits(rd.color, q, d+1)
	nbr := make([][]int, 0, len(inbox))
	for _, m := range inbox {
		if m == nil {
			continue
		}
		c := m.(int)
		if c == rd.color {
			rd.errs.Set(fmt.Errorf("linial: entity %d and a neighbor share color %d (input coloring not proper)", rd.v.Index, c))
			rd.dead = true
			rd.color = 0
			return
		}
		nbr = append(nbr, gf.Digits(c, q, d+1))
	}
	for a := 0; a < q; a++ {
		fa := gf.Eval(mine, a, q)
		ok := true
		for _, nc := range nbr {
			if gf.Eval(nc, a, q) == fa {
				ok = false
				break
			}
		}
		if ok {
			rd.color = a*q + fa
			return
		}
	}
	rd.errs.Set(fmt.Errorf("linial: entity %d found no conflict-free point (q=%d d=%d deg=%d)", rd.v.Index, q, d, rd.v.Degree))
	rd.dead = true
	rd.color = 0
}

// recolorBelow picks the smallest color < target not used by any neighbor.
func (rd *reducer) recolorBelow(target int, inbox []local.Message) {
	used := make([]bool, target)
	for _, m := range inbox {
		if m == nil {
			continue
		}
		if c := m.(int); c < target {
			used[c] = true
		}
	}
	for c := 0; c < target; c++ {
		if !used[c] {
			rd.color = c
			return
		}
	}
	rd.errs.Set(fmt.Errorf("linial: entity %d cannot recolor below %d with degree %d", rd.v.Index, target, rd.v.Degree))
}

// Reduce runs Linial's reduction on topology t, starting from the proper
// coloring initial (values < X), and returns the resulting coloring with
// fewer than Colors(X, t.MaxDeg) colors.
func Reduce(t *local.Topology, initial []int, x int, run local.Engine) ([]int, local.Stats, error) {
	return reduce(t, initial, x, -1, run)
}

// ReduceToTarget runs Linial's reduction and then eliminates color classes
// one round at a time until only target colors remain. Requires
// target ≥ t.MaxDeg+1 (otherwise a greedy recoloring step can get stuck).
func ReduceToTarget(t *local.Topology, initial []int, x, target int, run local.Engine) ([]int, local.Stats, error) {
	if target < t.MaxDeg+1 {
		return nil, local.Stats{}, fmt.Errorf("linial: target %d < maxDeg+1 = %d", target, t.MaxDeg+1)
	}
	return reduce(t, initial, x, target, run)
}

func reduce(t *local.Topology, initial []int, x, target int, run local.Engine) ([]int, local.Stats, error) {
	n := t.N()
	if len(initial) != n {
		return nil, local.Stats{}, fmt.Errorf("linial: %d initial colors for %d entities", len(initial), n)
	}
	for i, c := range initial {
		if c < 0 || c >= x {
			return nil, local.Stats{}, fmt.Errorf("linial: initial color %d of entity %d outside [0,%d)", c, i, x)
		}
	}
	// Input validation (not communication): the reduction is only defined on
	// proper colorings, so reject improper input up front.
	for i := range t.Ports {
		for _, j := range t.Ports[i] {
			if initial[i] == initial[int(j)] {
				return nil, local.Stats{}, fmt.Errorf("linial: input coloring improper: entities %d and %d share color %d", i, j, initial[i])
			}
		}
	}
	if run == nil {
		run = local.Sequential
	}
	out := make([]int, n)
	if t.MaxDeg == 0 {
		// No conflicts anywhere: color 0 everywhere, zero rounds.
		return out, local.Stats{}, nil
	}
	plan := Plan(x, t.MaxDeg)
	k := x
	if len(plan) > 0 {
		last := plan[len(plan)-1]
		k = last.Q * last.Q
	}
	if len(plan) == 0 && (target < 0 || k <= target) {
		// Already at (or below) the requested color count: nothing to do.
		copy(out, initial)
		return out, local.Stats{}, nil
	}
	errs := &local.ErrorSink{}
	factory := func(v local.View) local.Protocol {
		return &reducer{
			v:      v,
			color:  initial[v.Index],
			plan:   plan,
			k:      k,
			target: target,
			out:    out,
			errs:   errs,
		}
	}
	stats, err := run.Run(t, factory, nil)
	if err != nil {
		return nil, stats, err
	}
	if err := errs.Err(); err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}
