package linial

import (
	"testing"
	"testing/quick"

	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/local"
)

// properOn checks that colors is a proper coloring of topology t.
func properOn(t *local.Topology, colors []int) bool {
	for i := range t.Ports {
		for _, j := range t.Ports[i] {
			if colors[i] == colors[j] {
				return false
			}
		}
	}
	return true
}

func identityColors(n int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = i
	}
	return c
}

func TestPlanTerminatesAndShrinks(t *testing.T) {
	for _, x := range []int{10, 1000, 1 << 20, 1 << 40} {
		for _, deg := range []int{1, 2, 3, 8, 100, 500} {
			plan := Plan(x, deg)
			m := x
			for _, s := range plan {
				if s.Q <= deg*s.D {
					t.Fatalf("X=%d deg=%d: step q=%d not > deg*d=%d", x, deg, s.Q, deg*s.D)
				}
				if pow64(s.Q, s.D+1) < m {
					t.Fatalf("X=%d deg=%d: q^(d+1) < current colors %d", x, deg, m)
				}
				next := s.Q * s.Q
				if next >= m {
					t.Fatalf("X=%d deg=%d: step does not shrink (%d -> %d)", x, deg, m, next)
				}
				m = next
			}
			if len(plan) > 10 {
				t.Fatalf("X=%d deg=%d: plan length %d, want O(log*) (≤10)", x, deg, len(plan))
			}
		}
	}
}

func TestColorsIsQuadraticInDegree(t *testing.T) {
	for _, deg := range []int{2, 4, 16, 64, 256, 1024} {
		k := Colors(1<<40, deg)
		// Fixpoint is at most NextPrime(·)² with the q of the last useful
		// step; assert the O(deg²) envelope with an explicit constant.
		if k > 9*(deg+1)*(deg+1) {
			t.Fatalf("deg=%d: fixpoint %d colors exceeds 9(deg+1)²=%d", deg, k, 9*(deg+1)*(deg+1))
		}
		if k < deg+1 {
			t.Fatalf("deg=%d: fixpoint %d colors below chromatic lower bound", deg, k)
		}
	}
}

func TestReduceOnFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(64)},
		{"complete", graph.Complete(9)},
		{"star", graph.Star(12)},
		{"regular4", graph.RandomRegular(60, 4, 5)},
		{"grid", graph.Grid(6, 7)},
		{"gnp", graph.GNP(70, 0.07, 9)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tp := local.FromGraph(tc.g)
			init := identityColors(tp.N())
			colors, stats, err := Reduce(tp, init, tp.N(), local.Sequential)
			if err != nil {
				t.Fatalf("Reduce: %v", err)
			}
			if !properOn(tp, colors) {
				t.Fatal("result is not a proper coloring")
			}
			want := Colors(tp.N(), tp.MaxDeg)
			for i, c := range colors {
				if c < 0 || c >= want {
					t.Fatalf("entity %d color %d outside [0,%d)", i, c, want)
				}
			}
			if stats.Rounds != len(Plan(tp.N(), tp.MaxDeg)) && len(Plan(tp.N(), tp.MaxDeg)) > 0 {
				t.Fatalf("rounds = %d, want plan length %d", stats.Rounds, len(Plan(tp.N(), tp.MaxDeg)))
			}
		})
	}
}

func TestReduceOnEdgeTopology(t *testing.T) {
	g := graph.RandomRegular(48, 5, 6)
	tp := local.EdgeConflict(g)
	colors, _, err := Reduce(tp, identityColors(tp.N()), tp.N(), local.Sequential)
	if err != nil {
		t.Fatalf("Reduce: %v", err)
	}
	if !properOn(tp, colors) {
		t.Fatal("edge coloring not proper on line graph")
	}
	if got, bound := maxOf(colors)+1, Colors(tp.N(), tp.MaxDeg); got > bound {
		t.Fatalf("used %d colors, bound %d", got, bound)
	}
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestEnginesAgree(t *testing.T) {
	g := graph.RandomRegular(40, 4, 11)
	tp := local.EdgeConflict(g)
	init := identityColors(tp.N())
	seqColors, seqStats, err := Reduce(tp, init, tp.N(), local.Sequential)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	goColors, goStats, err := Reduce(tp, init, tp.N(), local.Goroutines)
	if err != nil {
		t.Fatalf("goroutines: %v", err)
	}
	if seqStats != goStats {
		t.Fatalf("stats differ: %+v vs %+v", seqStats, goStats)
	}
	for i := range seqColors {
		if seqColors[i] != goColors[i] {
			t.Fatalf("entity %d: %d vs %d", i, seqColors[i], goColors[i])
		}
	}
}

func TestReduceToTarget(t *testing.T) {
	g := graph.RandomRegular(50, 3, 4)
	tp := local.FromGraph(g) // max degree 3
	colors, _, err := ReduceToTarget(tp, identityColors(tp.N()), tp.N(), 4, local.Sequential)
	if err != nil {
		t.Fatalf("ReduceToTarget: %v", err)
	}
	if !properOn(tp, colors) {
		t.Fatal("not proper")
	}
	for _, c := range colors {
		if c >= 4 {
			t.Fatalf("color %d ≥ target 4", c)
		}
	}
}

func TestReduceToTargetRejectsTooFewColors(t *testing.T) {
	tp := local.FromGraph(graph.Complete(5))
	if _, _, err := ReduceToTarget(tp, identityColors(5), 5, 4, nil); err == nil {
		t.Fatal("accepted target < maxDeg+1")
	}
}

func TestThreeColorPaths(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Cycle(100), graph.Path(77), graph.Cycle(3)} {
		tp := local.FromGraph(g)
		colors, stats, err := ThreeColorPaths(tp, identityColors(tp.N()), tp.N(), local.Sequential)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !properOn(tp, colors) {
			t.Fatalf("%v: not proper", g)
		}
		for _, c := range colors {
			if c > 2 {
				t.Fatalf("%v: color %d > 2", g, c)
			}
		}
		// O(log* n): generous constant envelope.
		if stats.Rounds > 30 {
			t.Fatalf("%v: %d rounds for 3-coloring, want O(log* n)", g, stats.Rounds)
		}
	}
}

func TestThreeColorPathsRejectsHighDegree(t *testing.T) {
	tp := local.FromGraph(graph.Star(5))
	if _, _, err := ThreeColorPaths(tp, identityColors(5), 5, nil); err == nil {
		t.Fatal("accepted max degree > 2")
	}
}

func TestImproperInputDetected(t *testing.T) {
	tp := local.FromGraph(graph.Complete(4))
	bad := []int{0, 0, 1, 2} // entities 0,1 adjacent with same color
	if _, _, err := Reduce(tp, bad, 4, local.Sequential); err == nil {
		t.Fatal("improper input coloring not detected")
	}
}

func TestInputValidation(t *testing.T) {
	tp := local.FromGraph(graph.Cycle(4))
	if _, _, err := Reduce(tp, []int{0, 1}, 4, nil); err == nil {
		t.Fatal("accepted wrong-length initial coloring")
	}
	if _, _, err := Reduce(tp, []int{0, 1, 2, 9}, 4, nil); err == nil {
		t.Fatal("accepted out-of-range initial color")
	}
}

// Property: Reduce preserves properness and lands under the color bound for
// random sparse graphs (the Lemma the whole pipeline relies on).
func TestReduceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNP(36, 0.09, seed)
		if g.M() == 0 {
			return true
		}
		tp := local.EdgeConflict(g)
		colors, _, err := Reduce(tp, identityColors(tp.N()), tp.N(), local.Sequential)
		if err != nil {
			return false
		}
		if !properOn(tp, colors) {
			return false
		}
		return maxOf(colors) < Colors(tp.N(), tp.MaxDeg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Rounds must grow like log*: doubling X repeatedly should add O(1) steps.
func TestPlanGrowthIsLogStar(t *testing.T) {
	l1 := len(Plan(1<<10, 16))
	l2 := len(Plan(1<<20, 16))
	l3 := len(Plan(1<<40, 16))
	if l2 > l1+2 || l3 > l2+2 {
		t.Fatalf("plan lengths %d, %d, %d grow faster than log*", l1, l2, l3)
	}
}
