package linial

import (
	"fmt"

	"github.com/distec/distec/internal/local"
)

// ThreeColorPaths 3-colors a conflict system whose maximum degree is at most
// 2 — disjoint paths and cycles — in O(log* X) rounds. This is the primitive
// the paper's defective edge coloring uses: "edges that have the same color
// and are incident to the same group form paths or cycles. We can 3-color the
// edges of these paths and cycles independently in O(log* X) rounds" (§4.1).
func ThreeColorPaths(t *local.Topology, initial []int, x int, run local.Engine) ([]int, local.Stats, error) {
	if t.MaxDeg > 2 {
		return nil, local.Stats{}, fmt.Errorf("linial: ThreeColorPaths on topology with max degree %d > 2", t.MaxDeg)
	}
	return ReduceToTarget(t, initial, x, 3, run)
}
