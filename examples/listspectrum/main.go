// Spectrum assignment with per-link channel lists — the (deg(e)+1)-LIST
// edge coloring problem the paper actually solves, which plain (2Δ−1)
// coloring cannot express.
//
// Scenario: a backbone of point-to-point microwave links. Regulation and
// hardware limit every link to its own list of licensed channels (different
// bands, different regions, different radios). Two links meeting at a site
// must use different channels. As long as every link has at least deg(e)+1
// allowed channels, the paper's algorithm finds an assignment — and because
// it solves LIST instances, it can extend a pre-existing partial assignment
// (legacy links keep their channels), the use case that motivated list
// coloring in the paper's introduction [Bar15].
package main

import (
	"fmt"
	"log"

	"github.com/distec/distec"
)

func main() {
	// Backbone: power-law-ish topology, 200 sites.
	g := distec.PowerLaw(200, 2.5, 14, 11)
	fmt.Printf("backbone: %d sites, %d links, max site degree %d\n", g.N(), g.M(), g.MaxDegree())

	const channels = 64 // global license pool

	// Legacy links: every 7th link already operates on a fixed channel.
	// Make the legacy assignment proper by construction (bump on conflict).
	partial := make([]int, g.M())
	for e := range partial {
		partial[e] = -1
	}
	for e := 0; e < g.M(); e += 7 {
		ch := (e * 13) % channels
		for conflicts(g, partial, e, ch) {
			ch = (ch + 1) % channels
		}
		partial[e] = ch
	}

	// Per-link channel lists: a deterministic pseudo-random subset of the
	// licensed channels of size deg(e)+1. ExtendColoring prunes the channels
	// taken by fixed neighbors; each fixed neighbor also lowers the
	// uncolored degree by one, so solvability is preserved.
	lists := make([][]int, g.M())
	for e := 0; e < g.M(); e++ {
		need := g.EdgeDegree(distec.EdgeID(e)) + 1
		s := uint64(e)*0x9e3779b97f4a7c15 + 17
		for len(lists[e]) < need {
			s = s*6364136223846793005 + 1442695040888963407
			ch := int(s % channels)
			if !contains(lists[e], ch) {
				lists[e] = insertSorted(lists[e], ch)
			}
		}
	}

	res, err := distec.ExtendColoring(g, partial, lists, channels, distec.Options{Algorithm: distec.BKO})
	if err != nil {
		log.Fatal(err)
	}
	if err := distec.Verify(g, res.Colors); err != nil {
		log.Fatal(err)
	}

	legacy, kept := 0, 0
	for e := range partial {
		if partial[e] >= 0 {
			legacy++
			if res.Colors[e] == partial[e] {
				kept++
			}
		}
	}
	fmt.Printf("assigned channels to all %d links in %d LOCAL rounds\n", g.M(), res.Rounds)
	fmt.Printf("legacy links kept their channels: %d/%d\n", kept, legacy)
	fmt.Printf("distinct channels in use: %d of %d licensed\n", res.ColorsUsed, channels)

	// Show a busy site's assignment.
	site := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(site) {
			site = v
		}
	}
	fmt.Printf("\nchannels at busiest site %d (degree %d):\n", site, g.Degree(site))
	for _, e := range g.Incident(site) {
		u, v := g.Endpoints(e)
		tag := ""
		if partial[e] >= 0 {
			tag = " (legacy, fixed)"
		}
		fmt.Printf("  link %d–%d: channel %d%s\n", u, v, res.Colors[e], tag)
	}
}

func conflicts(g *distec.Graph, partial []int, e, ch int) bool {
	bad := false
	g.ForEachEdgeNeighbor(distec.EdgeID(e), func(f distec.EdgeID) {
		if partial[f] == ch {
			bad = true
		}
	})
	return bad
}

func contains(l []int, x int) bool {
	for _, v := range l {
		if v == x {
			return true
		}
	}
	return false
}

func insertSorted(l []int, x int) []int {
	i := 0
	for i < len(l) && l[i] < x {
		i++
	}
	l = append(l, 0)
	copy(l[i+1:], l[i:])
	l[i] = x
	return l
}
