// Walkthrough reproduces the story of Figures 1–4 of the paper on a small
// concrete instance, printing the state after each step of the Lemma 4.2
// machinery:
//
//	Figure 1: a list coloring instance with a defective edge coloring g(e)
//	Figure 2: the slack-β algorithm colors the active edges of class "red"
//	Figure 3: the next class — every edge still has a large list, all active
//	Figure 4: a class where most lists shrank below deg(e)/2 → recurse
//
// The figures' exact drawing is decorative; what is reproduced is the
// quantitative invariant at each boundary: active edges have |Le| >
// deg(e)/2, colored classes never conflict, and the uncolored remainder's
// maximum degree halves.
package main

import (
	"fmt"
	"log"

	"github.com/distec/distec/internal/defective"
	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/listcolor"
	"github.com/distec/distec/internal/local"
	"github.com/distec/distec/internal/verify"
)

func main() {
	// A small dense instance, in the spirit of the figures.
	g := graph.GNP(18, 0.33, 5)
	c := 2*g.MaxDegree() - 1
	in := listcolor.NewUniform(g, c)
	fmt.Printf("instance: %v, palette 2Δ−1 = %d (uniform lists)\n\n", g, c)

	// ---- Figure 1: defective edge coloring with parameter β. ----
	beta := 1
	def, err := defective.ColorGraph(g, nil, beta, local.Sequential)
	if err != nil {
		log.Fatal(err)
	}
	classes := map[int][]graph.EdgeID{}
	for e := 0; e < g.M(); e++ {
		classes[def.Colors[e]] = append(classes[def.Colors[e]], graph.EdgeID(e))
	}
	fmt.Printf("Figure 1 — deg(e)/2β-defective coloring: %d non-empty classes of palette %d, max defect %d, %d rounds\n",
		len(classes), def.Palette, defective.MaxDefect(g, nil, def.Colors), def.Stats.Rounds)

	// ---- Figures 2–4: iterate over the classes. ----
	colors := make([]int, g.M())
	for e := range colors {
		colors[e] = -1
	}
	uncolored := g.M()
	degAtStart := make([]int, g.M())
	for e := 0; e < g.M(); e++ {
		degAtStart[e] = g.EdgeDegree(graph.EdgeID(e))
	}
	fig := 2
	for class := 0; class < def.Palette && uncolored > 0; class++ {
		members := classes[class]
		if len(members) == 0 {
			continue
		}
		// Prune lists by colors used next to each member; mark active those
		// with |Le| > deg(e)/2.
		subActive := make([]bool, g.M())
		subLists := make([][]int, g.M())
		marked := 0
		for _, e := range members {
			if colors[e] >= 0 {
				continue
			}
			used := map[int]bool{}
			g.ForEachEdgeNeighbor(e, func(f graph.EdgeID) {
				if colors[f] >= 0 {
					used[colors[f]] = true
				}
			})
			var pruned []int
			for _, col := range in.Lists[e] {
				if !used[col] {
					pruned = append(pruned, col)
				}
			}
			if 2*len(pruned) > degAtStart[e] {
				subActive[e] = true
				subLists[e] = pruned
				marked++
			}
		}
		if marked == 0 {
			fmt.Printf("Figure 4 — class %d: every member's list shrank to ≤ deg(e)/2 → deferred to the recursion\n", class)
			continue
		}
		got, _, err := listcolor.SolvePairs(defective.GraphPairs(g), subActive, subLists, nil, 0, local.Sequential)
		if err != nil {
			log.Fatal(err)
		}
		newly := 0
		for e := range got {
			if subActive[e] && got[e] >= 0 {
				colors[e] = got[e]
				uncolored--
				newly++
			}
		}
		if fig <= 3 {
			fmt.Printf("Figure %d — class %d: %d members, %d marked active (|Le| > deg(e)/2), %d colored (bold edges)\n",
				fig, class, len(members), marked, newly)
			fig++
		}
	}

	// ---- The recursion boundary of Figure 4. ----
	remaining := 0
	maxDeg := 0
	for e := 0; e < g.M(); e++ {
		if colors[e] >= 0 {
			continue
		}
		remaining++
		d := 0
		g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
			if colors[f] < 0 {
				d++
			}
		})
		if d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("\nafter one sweep: %d/%d edges colored; uncolored remainder has max degree %d (started at Δ̄ = %d — Lemma 4.2 guarantees ≤ %d)\n",
		g.M()-remaining, g.M(), maxDeg, g.MaxEdgeDegree(), g.MaxEdgeDegree()/2)

	// ---- "Recurse": finish the remainder and verify everything. ----
	if remaining > 0 {
		cur := make([]bool, g.M())
		lists := make([][]int, g.M())
		for e := 0; e < g.M(); e++ {
			if colors[e] >= 0 {
				continue
			}
			cur[e] = true
			used := map[int]bool{}
			g.ForEachEdgeNeighbor(graph.EdgeID(e), func(f graph.EdgeID) {
				if colors[f] >= 0 {
					used[colors[f]] = true
				}
			})
			for _, col := range in.Lists[e] {
				if !used[col] {
					lists[e] = append(lists[e], col)
				}
			}
		}
		got, _, err := listcolor.SolvePairs(defective.GraphPairs(g), cur, lists, nil, 0, local.Sequential)
		if err != nil {
			log.Fatal(err)
		}
		for e := range got {
			if cur[e] {
				colors[e] = got[e]
			}
		}
	}
	if err := verify.EdgeColoring(g, nil, colors); err != nil {
		log.Fatal(err)
	}
	if err := verify.ListRespecting(g, nil, in.Lists, colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: all %d edges properly colored from their lists ✓ (%d distinct colors of %d)\n",
		g.M(), verify.CountColors(colors), c)
}
