// Switch scheduling: the classic application of bipartite edge coloring.
//
// A crossbar switch moves packets from input ports to output ports; in one
// time slot each input can feed at most one output and each output can
// receive from at most one input. A batch of transfer demands is a bipartite
// graph (inputs × outputs), and a conflict-free schedule is exactly an edge
// coloring: color = time slot. The number of slots used is the schedule
// length, and König's theorem says Δ slots suffice for bipartite demands —
// so the (2Δ−1) guarantee is within 2× of optimal, computed distributedly.
package main

import (
	"fmt"
	"log"

	"github.com/distec/distec"
)

const (
	ports  = 16 // 16×16 crossbar
	demand = 6  // each input talks to 6 outputs
)

func main() {
	// Random demand matrix: a 6-regular bipartite graph on 16+16 ports.
	g := distec.RandomBipartiteRegular(ports, demand, 2024)

	res, err := distec.ColorEdges(g, distec.Options{Algorithm: distec.BKO})
	if err != nil {
		log.Fatal(err)
	}
	if err := distec.Verify(g, res.Colors); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("crossbar %dx%d, %d transfer demands (Δ = %d)\n", ports, ports, g.M(), g.MaxDegree())
	fmt.Printf("schedule length: %d slots (palette bound %d, König optimum %d)\n",
		res.ColorsUsed, res.Palette, g.MaxDegree())
	fmt.Printf("computed in %d LOCAL rounds\n\n", res.Rounds)

	// Render the first few slots as matchings.
	slots := make(map[int][][2]int)
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(distec.EdgeID(e))
		c := res.Colors[e]
		slots[c] = append(slots[c], [2]int{u, v - ports})
	}
	shown := 0
	for c := 0; c < res.Palette && shown < 4; c++ {
		if len(slots[c]) == 0 {
			continue
		}
		fmt.Printf("slot %2d: ", c)
		for _, pair := range slots[c] {
			fmt.Printf("in%d→out%d ", pair[0], pair[1])
		}
		fmt.Println()
		shown++
	}
	fmt.Printf("... (%d slots total; each slot is a matching — no port appears twice)\n", res.ColorsUsed)
}
