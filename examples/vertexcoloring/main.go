// Vertex coloring context: the paper frames (2Δ−1)-edge coloring as the
// special case of (Δ+1)-VERTEX coloring on the line graph (§1), and its
// contribution is that the edge case can now be solved in rounds
// quasi-polylogarithmic in Δ while the vertex case remains polynomial
// (O(√Δ·polylog Δ + log* n) is the best known, [FHK16, BEG18]).
//
// This example demonstrates the framing concretely:
//
//  1. a classical (Δ+1)-vertex coloring of a graph (frequency assignment to
//     the NODES of an interference graph),
//  2. the same vertex machinery run on the line graph = a (2Δ−1)-edge
//     coloring, showing the two problems are literally the same code path,
//  3. the paper's specialized edge algorithm on the same graph for contrast.
package main

import (
	"fmt"
	"log"

	"github.com/distec/distec"
)

func main() {
	// An interference graph: transmitters within range conflict.
	g := distec.RandomGeometric(300, 0.1, 17)
	fmt.Printf("interference graph: %d transmitters, %d conflicts, Δ = %d\n",
		g.N(), g.M(), g.MaxDegree())

	// (1) Color the transmitters with Δ+1 frequencies.
	vres, err := distec.ColorVertices(g, distec.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := distec.VerifyVertices(g, vres.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n(Δ+1)-vertex coloring: %d frequencies of %d, %d LOCAL rounds\n",
		vres.ColorsUsed, vres.Palette, vres.Rounds)

	// (2) The same classical machinery colors EDGES via the line graph
	// (this is distec.GreedyClasses: Linial classes + greedy, O(Δ̄²+log*n)).
	eres, err := distec.ColorEdges(g, distec.Options{Algorithm: distec.GreedyClasses})
	if err != nil {
		log.Fatal(err)
	}
	if err := distec.Verify(g, eres.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge coloring via line graph (vertex machinery): %d colors, %d rounds\n",
		eres.ColorsUsed, eres.Rounds)

	// (3) The paper's edge-specialized algorithm on the same instance.
	bres, err := distec.ColorEdges(g, distec.Options{Algorithm: distec.BKO})
	if err != nil {
		log.Fatal(err)
	}
	if err := distec.Verify(g, bres.Colors); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edge coloring via BKO (the paper):                %d colors, %d rounds\n",
		bres.ColorsUsed, bres.Rounds)

	fmt.Println("\nthe asymmetry the paper exploits: the edge problem has extra structure")
	fmt.Println("(each conflict clique is one node's edge set), which the vertex problem lacks —")
	fmt.Println("hence quasi-polylog-in-Δ for edges while vertices remain poly-in-Δ.")
}
