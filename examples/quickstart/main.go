// Quickstart: color the edges of a random 16-regular graph with the paper's
// algorithm, verify the result, and print the LOCAL-model cost.
package main

import (
	"fmt"
	"log"

	"github.com/distec/distec"
)

func main() {
	// A 1024-node, 16-regular network: every edge must get one of 2Δ−1 = 31
	// colors so that edges sharing an endpoint differ.
	g := distec.RandomRegular(1024, 16, 42)

	res, err := distec.ColorEdges(g, distec.Options{Algorithm: distec.BKO})
	if err != nil {
		log.Fatal(err)
	}
	if err := distec.Verify(g, res.Colors); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("colored %d edges of %s\n", g.M(), g)
	fmt.Printf("palette %d, used %d colors\n", res.Palette, res.ColorsUsed)
	fmt.Printf("LOCAL rounds: %d (messages: %d)\n", res.Rounds, res.Messages)
	fmt.Printf("recursion: %d sweeps, %d defective colorings, %d class instances, %d chain levels\n",
		res.Diagnostics.OuterSweeps, res.Diagnostics.DefectiveCalls,
		res.Diagnostics.ClassInstances, res.Diagnostics.ChainLevels)
	fmt.Printf("max uncolored degree per sweep (halving, Lemma 4.2): %v\n", res.Diagnostics.SweepDegrees)

	// The same API runs every baseline.
	for _, alg := range []distec.Algorithm{distec.PR01, distec.Randomized} {
		r, err := distec.ColorEdges(g, distec.Options{Algorithm: alg, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline %-11s rounds=%-5d colors=%d\n", alg, r.Rounds, r.ColorsUsed)
	}
}
