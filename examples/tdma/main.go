// TDMA link scheduling on a wireless network.
//
// In a time-division MAC, two radio links that share an endpoint cannot be
// active in the same slot (a radio cannot talk to two peers at once). A
// conflict-free periodic schedule over the links is therefore an edge
// coloring of the connectivity graph: color = slot within the TDMA frame,
// frame length = number of colors. The LOCAL model matches the deployment
// reality — each node only coordinates with its radio neighbors — which is
// why distributed edge coloring is the textbook solution, and why the round
// complexity (time until the schedule is agreed) matters.
package main

import (
	"fmt"
	"log"

	"github.com/distec/distec"
)

func main() {
	// 400 sensor nodes scattered in the unit square, radio range 0.09.
	g := distec.RandomGeometric(400, 0.09, 7)
	fmt.Printf("wireless network: %d nodes, %d links, max radio degree %d\n",
		g.N(), g.M(), g.MaxDegree())

	type row struct {
		name distec.Algorithm
		res  *distec.Result
	}
	var rows []row
	for _, alg := range []distec.Algorithm{distec.BKO, distec.PR01, distec.Randomized} {
		res, err := distec.ColorEdges(g, distec.Options{Algorithm: alg, Seed: 99})
		if err != nil {
			log.Fatal(err)
		}
		if err := distec.Verify(g, res.Colors); err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{alg, res})
	}

	fmt.Printf("\n%-12s %10s %12s %10s\n", "algorithm", "frame len", "setup rounds", "messages")
	for _, r := range rows {
		fmt.Printf("%-12s %10d %12d %10d\n", r.name, r.res.ColorsUsed, r.res.Rounds, r.res.Messages)
	}

	// Per-link duty cycle: 1/frame. Longest frame = worst throughput.
	best := rows[0].res
	for _, r := range rows[1:] {
		if r.res.ColorsUsed < best.ColorsUsed {
			best = r.res
		}
	}
	fmt.Printf("\nbest frame: %d slots → per-link duty cycle %.1f%% (lower bound Δ = %d slots)\n",
		best.ColorsUsed, 100.0/float64(best.ColorsUsed), g.MaxDegree())

	// Show one node's local schedule.
	node := busiestNode(g)
	fmt.Printf("\nschedule at busiest node %d (degree %d):\n", node, g.Degree(node))
	for _, e := range g.Incident(node) {
		u, v := g.Endpoints(e)
		fmt.Printf("  link %d–%d: slot %d\n", u, v, best.Colors[e])
	}
}

func busiestNode(g *distec.Graph) int {
	best, bestDeg := 0, -1
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	return best
}
