package distec

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolCacheHit checks that a repeated identical request is served from
// the cache, bit-identical, without resubmitting a job — and that a cache
// hit never aliases the stored slices.
func TestPoolCacheHit(t *testing.T) {
	pool := NewPool(PoolOptions{Workers: 1})
	defer pool.Close()
	ctx := context.Background()
	g := RandomRegular(48, 6, 17)

	first, err := pool.ColorEdges(ctx, g, Options{Algorithm: PR01})
	if err != nil {
		t.Fatal(err)
	}
	firstColors := append([]int(nil), first.Colors...)
	first.Colors[0] = -99 // a hostile caller mutating its result

	second, err := pool.ColorEdges(ctx, g, Options{Algorithm: PR01})
	if err != nil {
		t.Fatal(err)
	}
	for e := range firstColors {
		if second.Colors[e] != firstColors[e] {
			t.Fatalf("edge %d: cached %d, want %d", e, second.Colors[e], firstColors[e])
		}
	}
	second.Colors[1] = -99
	third, err := pool.ColorEdges(ctx, g, Options{Algorithm: PR01})
	if err != nil {
		t.Fatal(err)
	}
	if third.Colors[1] == -99 {
		t.Fatal("cache hit aliases a previously returned slice")
	}

	s := pool.Stats()
	if s.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want 2", s.CacheHits)
	}
	if s.Submitted != 1 {
		t.Fatalf("submitted = %d, want 1 (repeats must not recompute)", s.Submitted)
	}

	// After Close, even a cached request must fail per the Close contract.
	pool.Close()
	if _, err := pool.ColorEdges(ctx, g, Options{Algorithm: PR01}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("cached request after Close: err = %v, want ErrPoolClosed", err)
	}
}

// TestPoolCacheKeys checks that every request parameter participates in the
// cache key.
func TestPoolCacheKeys(t *testing.T) {
	pool := NewPool(PoolOptions{Workers: 1})
	defer pool.Close()
	ctx := context.Background()
	g := RandomRegular(48, 6, 17)
	h := RandomRegular(48, 6, 18) // same shape, different edges

	requests := []struct {
		g    *Graph
		opts Options
	}{
		{g, Options{Algorithm: PR01}},
		{g, Options{Algorithm: GreedyClasses}},
		{g, Options{Algorithm: PR01, Palette: 2*g.MaxDegree() + 1}},
		{g, Options{Algorithm: Randomized, Seed: 1}},
		{g, Options{Algorithm: Randomized, Seed: 2}},
		{h, Options{Algorithm: PR01}},
	}
	for i, r := range requests {
		if _, err := pool.ColorEdges(ctx, r.g, r.opts); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	s := pool.Stats()
	if s.CacheHits != 0 {
		t.Fatalf("cache hits = %d, want 0 (all requests distinct)", s.CacheHits)
	}
	if s.Submitted != uint64(len(requests)) {
		t.Fatalf("submitted = %d, want %d", s.Submitted, len(requests))
	}
}

// TestPoolCacheKeyNormalization is the regression test for equivalent
// requests hashing to different keys: a defaulted palette vs. an explicit
// 2Δ−1, a seed on a deterministic algorithm, and a defaulted algorithm name
// are all the same computation and must hit.
func TestPoolCacheKeyNormalization(t *testing.T) {
	pool := NewPool(PoolOptions{Workers: 1})
	defer pool.Close()
	ctx := context.Background()
	g := RandomRegular(48, 6, 17)

	base, err := pool.ColorEdges(ctx, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	equivalents := []Options{
		{Palette: 2*g.MaxDegree() - 1}, // explicit default palette
		{Algorithm: BKO},               // explicit default algorithm
		{Seed: 42},                     // seed is ignored by BKO
		{Algorithm: BKO, Palette: 2*g.MaxDegree() - 1, Seed: 7},
	}
	for i, opts := range equivalents {
		res, err := pool.ColorEdges(ctx, g, opts)
		if err != nil {
			t.Fatalf("equivalent %d: %v", i, err)
		}
		for e := range base.Colors {
			if res.Colors[e] != base.Colors[e] {
				t.Fatalf("equivalent %d: edge %d colored %d, want %d", i, e, res.Colors[e], base.Colors[e])
			}
		}
	}
	s := pool.Stats()
	if s.CacheHits != uint64(len(equivalents)) {
		t.Fatalf("cache hits = %d, want %d (equivalent requests must hit)", s.CacheHits, len(equivalents))
	}
	if s.Submitted != 1 {
		t.Fatalf("submitted = %d, want 1", s.Submitted)
	}

	// Distinctions that matter must keep missing: a different Randomized
	// seed is a different computation.
	if _, err := pool.ColorEdges(ctx, g, Options{Algorithm: Randomized, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.ColorEdges(ctx, g, Options{Algorithm: Randomized, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.CacheHits != uint64(len(equivalents)) {
		t.Fatalf("randomized seeds collided: hits = %d, want %d", s.CacheHits, len(equivalents))
	}
}

func TestPoolCacheDisabledAndEviction(t *testing.T) {
	// Disabled: repeats recompute.
	pool := NewPool(PoolOptions{Workers: 1, CacheSize: -1})
	g := RandomRegular(36, 4, 3)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := pool.ColorEdges(ctx, g, Options{Algorithm: PR01}); err != nil {
			t.Fatal(err)
		}
	}
	if s := pool.Stats(); s.CacheHits != 0 || s.Submitted != 2 {
		t.Fatalf("disabled cache: %+v", s)
	}
	pool.Close()

	// Capacity 1: alternating requests evict each other.
	pool = NewPool(PoolOptions{Workers: 1, CacheSize: 1})
	defer pool.Close()
	h := RandomRegular(36, 4, 4)
	for _, gr := range []*Graph{g, h, g, h} {
		if _, err := pool.ColorEdges(ctx, gr, Options{Algorithm: PR01}); err != nil {
			t.Fatal(err)
		}
	}
	if s := pool.Stats(); s.CacheHits != 0 || s.Submitted != 4 {
		t.Fatalf("eviction: %+v", s)
	}
	// A repeat within capacity still hits.
	if _, err := pool.ColorEdges(ctx, h, Options{Algorithm: PR01}); err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.CacheHits != 1 {
		t.Fatalf("repeat within capacity: %+v", s)
	}
}

// TestPoolSingleFlight checks that identical requests in flight at the same
// time are computed once.
func TestPoolSingleFlight(t *testing.T) {
	pool := NewPool(PoolOptions{Workers: 1})
	defer pool.Close()
	ctx := context.Background()
	g := Cycle(20000) // large enough to still be in flight when the others arrive

	var wg sync.WaitGroup
	results := make([]*Result, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = pool.ColorEdges(ctx, g, Options{Algorithm: GreedyClasses})
		}(i)
		if i == 0 {
			time.Sleep(20 * time.Millisecond) // let the first insert its flight
		}
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		for e := range results[0].Colors {
			if results[i].Colors[e] != results[0].Colors[e] {
				t.Fatalf("request %d, edge %d: %d != %d", i, e, results[i].Colors[e], results[0].Colors[e])
			}
		}
	}
	s := pool.Stats()
	if s.Submitted != 1 {
		t.Fatalf("submitted = %d, want 1 (single-flight)", s.Submitted)
	}
	if s.CacheHits != 3 {
		t.Fatalf("cache hits = %d, want 3", s.CacheHits)
	}
}

// TestPoolCacheFailedFlight checks that a failed computation is not cached
// and that its waiters recover by computing independently.
func TestPoolCacheFailedFlight(t *testing.T) {
	pool := NewPool(PoolOptions{Workers: 1})
	defer pool.Close()
	g := RandomRegular(36, 4, 3)

	// Fails: palette not greater than Δ̄.
	if _, err := pool.ColorEdges(context.Background(), g, Options{Palette: 1}); err == nil {
		t.Fatal("accepted bad palette")
	}
	// The failure must not be cached.
	if _, err := pool.ColorEdges(context.Background(), g, Options{Palette: 1}); err == nil {
		t.Fatal("accepted bad palette on repeat")
	}
	if s := pool.Stats(); s.CacheHits != 0 {
		t.Fatalf("failure was served from cache: %+v", s)
	}

	// A waiter whose context expires while waiting on a slow flight gets
	// its own ctx error instead of blocking for the full computation.
	slow := Cycle(50000)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := pool.ColorEdges(context.Background(), slow, Options{Algorithm: GreedyClasses}); err != nil {
			t.Errorf("flight owner: %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // flight now inserted and computing
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := pool.ColorEdges(ctx, slow, Options{Algorithm: GreedyClasses}); err == nil {
		t.Error("waiter ignored its deadline")
	}
	wg.Wait()
}
