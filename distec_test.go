package distec

import (
	"testing"
)

func TestColorEdgesDefault(t *testing.T) {
	g := RandomRegular(128, 8, 1)
	res, err := ColorEdges(g, Options{})
	if err != nil {
		t.Fatalf("ColorEdges: %v", err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Palette != 2*g.MaxDegree()-1 {
		t.Fatalf("palette %d, want %d", res.Palette, 2*g.MaxDegree()-1)
	}
	if res.ColorsUsed > res.Palette {
		t.Fatalf("used %d colors over palette %d", res.ColorsUsed, res.Palette)
	}
	if res.Rounds <= 0 || res.Messages <= 0 {
		t.Fatalf("missing cost accounting: %+v", res)
	}
	if res.Diagnostics == nil {
		t.Fatal("BKO run missing diagnostics")
	}
}

func TestAllAlgorithms(t *testing.T) {
	g := RandomRegular(96, 8, 3)
	for _, alg := range []Algorithm{BKO, BKOTheory, PR01, GreedyClasses, Randomized} {
		t.Run(string(alg), func(t *testing.T) {
			res, err := ColorEdges(g, Options{Algorithm: alg, Seed: 7})
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if err := Verify(g, res.Colors); err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
		})
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	g := Cycle(5)
	if _, err := ColorEdges(g, Options{Algorithm: "nope"}); err == nil {
		t.Fatal("accepted unknown algorithm")
	}
}

func TestPaletteValidation(t *testing.T) {
	g := Complete(6)
	if _, err := ColorEdges(g, Options{Palette: 3}); err == nil {
		t.Fatal("accepted palette ≤ Δ̄")
	}
	res, err := ColorEdges(g, Options{Palette: 2 * g.MaxEdgeDegree()})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestColorEdgesList(t *testing.T) {
	g := Star(6)
	// Each edge of a 5-star has degree 4: lists of 5 colors.
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = []int{e, e + 1, e + 2, e + 3, e + 4}
	}
	res, err := ColorEdgesList(g, lists, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyList(g, lists, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestColorEdgesListRejectsSlack(t *testing.T) {
	g := Star(6)
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = []int{0, 1} // too small for degree 4
	}
	if _, err := ColorEdgesList(g, lists, 5, Options{}); err == nil {
		t.Fatal("accepted slack violation")
	}
}

func TestGoroutineEngineMatches(t *testing.T) {
	g := RandomRegular(64, 6, 5)
	a, err := ColorEdges(g, Options{Engine: Sequential})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColorEdges(g, Options{Engine: Goroutines})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Messages != b.Messages {
		t.Fatalf("engines differ: %+v vs %+v", a, b)
	}
	for e := range a.Colors {
		if a.Colors[e] != b.Colors[e] {
			t.Fatalf("edge %d differs", e)
		}
	}
}

func TestGraphBuilding(t *testing.T) {
	g := NewGraph(4)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	res, err := ColorEdges(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(g, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsSmoke(t *testing.T) {
	gs := []*Graph{
		Cycle(5), Path(5), Star(5), Complete(5), CompleteBipartite(3, 3),
		Grid(3, 3), Torus(3, 3), Hypercube(3), RandomRegular(16, 3, 1),
		RandomBipartiteRegular(8, 3, 1), GNP(20, 0.2, 1), PowerLaw(20, 2.5, 6, 1),
		RandomGeometric(20, 0.4, 1), RandomTree(20, 1), Caterpillar(4, 3), CliqueChain(3, 4),
	}
	for i, g := range gs {
		if g.N() == 0 {
			t.Fatalf("generator %d produced empty graph", i)
		}
		if g.M() == 0 {
			continue
		}
		res, err := ColorEdges(g, Options{Algorithm: PR01})
		if err != nil {
			t.Fatalf("generator %d: %v", i, err)
		}
		if err := Verify(g, res.Colors); err != nil {
			t.Fatalf("generator %d: %v", i, err)
		}
	}
}

func TestColorVertices(t *testing.T) {
	g := RandomRegular(80, 7, 9)
	res, err := ColorVertices(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyVertices(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Palette != g.MaxDegree()+1 {
		t.Fatalf("palette %d, want Δ+1=%d", res.Palette, g.MaxDegree()+1)
	}
	for v, c := range res.Colors {
		if c < 0 || c >= res.Palette {
			t.Fatalf("node %d color %d outside palette", v, c)
		}
	}
}
