package distec

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"

	"github.com/distec/distec/internal/trace"
)

// TestEngineEquivalence is the cross-engine harness: every Algorithm on a
// matrix of generator workloads must produce identical colorings, round
// counts, and message counts on the Sequential, Goroutines, and Sharded
// engines — the latter across shard counts 1, 2, NumCPU, and one more than
// the entity count (edge-entity topologies have one entity per edge).
// The engines promise bit-identical executions, not merely equally valid
// colorings, so equality is exact.
func TestEngineEquivalence(t *testing.T) {
	workloads := []struct {
		name string
		g    *Graph
	}{
		{"ring", Cycle(64)},
		{"regular", RandomRegular(48, 6, 17)},
		{"bipartite", CompleteBipartite(9, 7)},
		{"gnp", GNP(40, 0.12, 23)},
		{"tree", RandomTree(50, 29)},
	}
	// Vizing is sequential whatever the engine, so its inclusion pins the
	// weaker (but still required) property that engine selection cannot
	// change its output.
	algorithms := []Algorithm{BKO, BKOTheory, PR01, GreedyClasses, Randomized, Vizing}
	for _, w := range workloads {
		for _, alg := range algorithms {
			t.Run(fmt.Sprintf("%s/%s", w.name, alg), func(t *testing.T) {
				base := Options{Algorithm: alg, Seed: 5}
				want, err := ColorEdges(w.g, base)
				if err != nil {
					t.Fatalf("sequential: %v", err)
				}
				if err := Verify(w.g, want.Colors); err != nil {
					t.Fatalf("sequential coloring invalid: %v", err)
				}
				variants := []Options{
					{Algorithm: alg, Seed: 5, Engine: Goroutines},
					{Algorithm: alg, Seed: 5, Engine: Sharded, Shards: 1},
					{Algorithm: alg, Seed: 5, Engine: Sharded, Shards: 2},
					{Algorithm: alg, Seed: 5, Engine: Sharded, Shards: runtime.NumCPU()},
					{Algorithm: alg, Seed: 5, Engine: Sharded, Shards: w.g.M() + 1},
				}
				for _, opts := range variants {
					name := string(opts.Engine)
					if opts.Engine == Sharded {
						name = fmt.Sprintf("sharded-%d", opts.Shards)
					}
					got, err := ColorEdges(w.g, opts)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if got.Rounds != want.Rounds {
						t.Errorf("%s: rounds %d, want %d", name, got.Rounds, want.Rounds)
					}
					if got.Messages != want.Messages {
						t.Errorf("%s: messages %d, want %d", name, got.Messages, want.Messages)
					}
					for e := range want.Colors {
						if got.Colors[e] != want.Colors[e] {
							t.Fatalf("%s: edge %d colored %d, want %d", name, e, got.Colors[e], want.Colors[e])
						}
					}
				}
			})
		}
	}
}

// TestEngineEquivalenceListInstance runs the harder (deg(e)+1)-list problem
// through all three engines on the public list API.
func TestEngineEquivalenceListInstance(t *testing.T) {
	g := RandomRegular(36, 5, 41)
	dbar := g.MaxEdgeDegree()
	c := dbar + 3
	lists := make([][]int, g.M())
	for e := range lists {
		// Staggered lists: deg(e)+1 colors starting at a per-edge offset.
		lists[e] = make([]int, 0, dbar+1)
		for k := 0; k <= dbar; k++ {
			lists[e] = append(lists[e], (e+k)%c)
		}
		sort.Ints(lists[e])
	}
	want, err := ColorEdgesList(g, lists, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Engine: Goroutines},
		{Engine: Sharded, Shards: 3},
		{Engine: Sharded},
	} {
		got, err := ColorEdgesList(g, lists, c, opts)
		if err != nil {
			t.Fatalf("%s: %v", opts.Engine, err)
		}
		if got.Rounds != want.Rounds || got.Messages != want.Messages {
			t.Fatalf("%s: stats %d/%d, want %d/%d", opts.Engine, got.Rounds, got.Messages, want.Rounds, want.Messages)
		}
		for e := range want.Colors {
			if got.Colors[e] != want.Colors[e] {
				t.Fatalf("%s: edge %d colored %d, want %d", opts.Engine, e, got.Colors[e], want.Colors[e])
			}
		}
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	if _, err := ColorEdges(Cycle(8), Options{Engine: "warp-drive"}); err == nil {
		t.Fatal("accepted unknown engine")
	}
}

// TestEngineTraceEquivalence extends the equivalence promise to the
// execution trace: every engine must report the same span sequence
// (phase label, entity count, round count) and, round by round, the same
// engine-invariant counters — messages sent, entities with deliveries,
// entities halted, entities still active. Durations and per-shard busy
// times are timing, not semantics, and are excluded.
func TestEngineTraceEquivalence(t *testing.T) {
	workloads := []struct {
		name string
		g    *Graph
	}{
		{"ring", Cycle(48)},
		{"regular", RandomRegular(40, 6, 17)},
		{"gnp", GNP(36, 0.12, 23)},
	}
	algorithms := []Algorithm{BKO, PR01, Randomized}
	for _, w := range workloads {
		for _, alg := range algorithms {
			t.Run(fmt.Sprintf("%s/%s", w.name, alg), func(t *testing.T) {
				profile := func(opts Options) []string {
					tr := trace.New()
					opts.Trace = tr
					if _, err := ColorEdges(w.g, opts); err != nil {
						t.Fatalf("%s/%d: %v", opts.Engine, opts.Shards, err)
					}
					var out []string
					for si, sp := range tr.Spans() {
						if sp.Err != "" {
							t.Fatalf("%s/%d: span %d errored: %s", opts.Engine, opts.Shards, si, sp.Err)
						}
						out = append(out, fmt.Sprintf("span %d label=%q entities=%d rounds=%d",
							si, sp.Label, sp.Entities, len(sp.Rounds)))
						for _, ev := range sp.Rounds {
							out = append(out, fmt.Sprintf("  round %d msgs=%d recv=%d halted=%d active=%d quiescent=%v",
								ev.Round, ev.Messages, ev.Received, ev.Halted, ev.Active, ev.Quiescent()))
						}
					}
					return out
				}
				want := profile(Options{Algorithm: alg, Seed: 5})
				if len(want) == 0 {
					t.Fatal("sequential run produced an empty trace")
				}
				variants := []Options{
					{Algorithm: alg, Seed: 5, Engine: Goroutines},
					{Algorithm: alg, Seed: 5, Engine: Sharded, Shards: 1},
					{Algorithm: alg, Seed: 5, Engine: Sharded, Shards: 3},
					{Algorithm: alg, Seed: 5, Engine: Sharded, Shards: w.g.M() + 1},
				}
				for _, opts := range variants {
					name := string(opts.Engine)
					if opts.Engine == Sharded {
						name = fmt.Sprintf("sharded-%d", opts.Shards)
					}
					got := profile(opts)
					if len(got) != len(want) {
						t.Fatalf("%s: trace has %d lines, want %d\ngot:\n%s\nwant:\n%s",
							name, len(got), len(want), strings.Join(got, "\n"), strings.Join(want, "\n"))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s: trace line %d = %q, want %q", name, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}
