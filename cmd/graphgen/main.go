// Command graphgen emits workload graphs in the plain edge-list interchange
// format consumed by cmd/edgecolor ("n m" header, one "u v" per line).
//
// Usage:
//
//	graphgen -family regular -n 1024 -d 16 -seed 7 > g.txt
//	graphgen -family geometric -n 500 -p 0.08 | edgecolor -alg bko
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/distec/distec"
)

func main() {
	var (
		family = flag.String("family", "regular", "regular|bipartite|gnp|geometric|powerlaw|complete|cycle|grid|torus|hypercube|tree|barabasi|caterpillar")
		n      = flag.Int("n", 256, "node count (or side length for grid/torus, dimension for hypercube)")
		d      = flag.Int("d", 8, "degree parameter")
		p      = flag.Float64("p", 0.05, "probability / radius for gnp and geometric")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	var g *distec.Graph
	switch *family {
	case "regular":
		g = distec.RandomRegular(*n, *d, *seed)
	case "bipartite":
		g = distec.RandomBipartiteRegular(*n/2, *d, *seed)
	case "gnp":
		g = distec.GNP(*n, *p, *seed)
	case "geometric":
		g = distec.RandomGeometric(*n, *p, *seed)
	case "powerlaw":
		g = distec.PowerLaw(*n, 2.5, *d, *seed)
	case "complete":
		g = distec.Complete(*n)
	case "cycle":
		g = distec.Cycle(*n)
	case "grid":
		g = distec.Grid(*n, *n)
	case "torus":
		g = distec.Torus(*n, *n)
	case "hypercube":
		g = distec.Hypercube(*n)
	case "tree":
		g = distec.RandomTree(*n, *seed)
	case "barabasi":
		g = distec.BarabasiAlbert(*n, *d, *seed)
	case "caterpillar":
		g = distec.Caterpillar(*n, *d)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown family %q\n", *family)
		os.Exit(1)
	}
	if _, err := g.WriteTo(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}
