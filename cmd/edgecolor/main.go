// Command edgecolor colors the edges of a graph with a chosen distributed
// algorithm and reports the LOCAL-model cost.
//
// Usage:
//
//	edgecolor -gen regular -n 1024 -d 16 -alg bko
//	edgecolor -in graph.txt -alg pr01 -engine goroutines
//	edgecolor -gen regular -n 30000 -d 8 -alg pr01 -engine sharded -shards 4
//	edgecolor -gen complete -n 64 -alg vizing        # Δ+1 colors, guaranteed
//	graphgen -family gnp -n 500 -p 0.02 | edgecolor -alg randomized
//
// The input format is the plain edge list of cmd/graphgen ("n m" header,
// one "u v" line per edge). With -dump the per-edge colors are printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/distec/distec"
	"github.com/distec/distec/internal/graph"
	"github.com/distec/distec/internal/trace"
)

func main() {
	var (
		inFile   = flag.String("in", "", "read graph from file (edge list; \"-\" or empty with piped stdin)")
		gen      = flag.String("gen", "", "generate a graph: regular|gnp|geometric|powerlaw|complete|cycle|bipartite|tree")
		n        = flag.Int("n", 256, "node count for -gen")
		d        = flag.Int("d", 8, "degree parameter for -gen")
		p        = flag.Float64("p", 0.05, "edge probability / radius for -gen gnp|geometric")
		seed     = flag.Uint64("seed", 1, "generator / randomized-algorithm seed")
		alg      = flag.String("alg", "bko", "algorithm: bko|bko-theory|pr01|greedy-classes|randomized|vizing")
		engine   = flag.String("engine", "sequential", "engine: sequential|goroutines|sharded")
		shards   = flag.Int("shards", 0, "worker count for -engine sharded (default: one per core)")
		palette  = flag.Int("palette", 0, "palette size (default 2Δ−1; Δ+1 for -alg vizing)")
		dump     = flag.Bool("dump", false, "print per-edge colors")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the coloring run to this file (view with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file after the run")
		traceOut = flag.String("trace", "", "write a round-resolved execution trace to this file (Chrome trace-event JSON; load in ui.perfetto.dev or chrome://tracing)")
		traceSum = flag.Bool("trace-summary", false, "print the solve summary (rounds, quiescent rounds, messages, per-phase breakdown)")
	)
	flag.Parse()

	if err := validateFlags(*engine, *shards, *alg); err != nil {
		fmt.Fprintln(os.Stderr, "edgecolor:", err)
		flag.Usage()
		os.Exit(2)
	}
	g, err := loadGraph(*inFile, *gen, *n, *d, *p, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgecolor:", err)
		os.Exit(1)
	}
	opts := distec.Options{
		Algorithm: distec.Algorithm(*alg),
		Engine:    distec.Engine(*engine),
		Shards:    *shards,
		Palette:   *palette,
		Seed:      *seed,
	}
	var tr *trace.Trace
	if *traceOut != "" || *traceSum {
		tr = trace.New()
		opts.Trace = tr
	}
	// Profile the coloring run alone: graph loading and output are not what
	// -cpuprofile users are tuning.
	stopProfile, err := startCPUProfile(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgecolor:", err)
		os.Exit(1)
	}
	res, err := distec.ColorEdges(g, opts)
	stopProfile()
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgecolor:", err)
		os.Exit(1)
	}
	if err := writeHeapProfile(*memProf); err != nil {
		fmt.Fprintln(os.Stderr, "edgecolor:", err)
		os.Exit(1)
	}
	if err := writeTrace(*traceOut, tr); err != nil {
		fmt.Fprintln(os.Stderr, "edgecolor:", err)
		os.Exit(1)
	}
	if err := distec.Verify(g, res.Colors); err != nil {
		fmt.Fprintln(os.Stderr, "edgecolor: OUTPUT INVALID:", err)
		os.Exit(1)
	}
	fmt.Printf("graph: n=%d m=%d Δ=%d Δ̄=%d\n", g.N(), g.M(), g.MaxDegree(), g.MaxEdgeDegree())
	fmt.Printf("algorithm: %s (engine %s)\n", *alg, *engine)
	fmt.Printf("palette: %d, colors used: %d\n", res.Palette, res.ColorsUsed)
	fmt.Printf("LOCAL rounds: %d, messages: %d\n", res.Rounds, res.Messages)
	fmt.Println("verification: proper edge coloring ✓")
	if res.Diagnostics != nil {
		dgn := res.Diagnostics
		fmt.Printf("bko: sweeps=%d defective=%d classes=%d chain-levels=%d phases=%d deferred=%d sweep-degrees=%v\n",
			dgn.OuterSweeps, dgn.DefectiveCalls, dgn.ClassInstances, dgn.ChainLevels, dgn.PhaseInstances, dgn.Deferred, dgn.SweepDegrees)
	}
	if *traceSum {
		tr.Summary().Format(os.Stdout)
	}
	if *dump {
		for e := 0; e < g.M(); e++ {
			u, v := g.Endpoints(graph.EdgeID(e))
			fmt.Printf("%d %d %d\n", u, v, res.Colors[e])
		}
	}
}

// validateFlags rejects flag values the run could only fail on later, so
// mistakes surface as usage errors before any work starts. The cases spell
// out the distec constants; when the library gains an engine or algorithm,
// extend the matching case list (and the flag help text) here.
func validateFlags(engine string, shards int, alg string) error {
	switch distec.Engine(engine) {
	case distec.Sequential, distec.Goroutines, distec.Sharded:
	default:
		return fmt.Errorf("unknown -engine %q (want sequential, goroutines, or sharded)", engine)
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be ≥ 0, got %d", shards)
	}
	switch distec.Algorithm(alg) {
	case distec.BKO, distec.BKOTheory, distec.PR01, distec.GreedyClasses, distec.Randomized, distec.Vizing:
	default:
		return fmt.Errorf("unknown -alg %q (want bko, bko-theory, pr01, greedy-classes, randomized, or vizing)", alg)
	}
	return nil
}

func loadGraph(inFile, gen string, n, d int, p float64, seed uint64) (*distec.Graph, error) {
	if gen != "" {
		switch gen {
		case "regular":
			return distec.RandomRegular(n, d, seed), nil
		case "gnp":
			return distec.GNP(n, p, seed), nil
		case "geometric":
			return distec.RandomGeometric(n, p, seed), nil
		case "powerlaw":
			return distec.PowerLaw(n, 2.5, d, seed), nil
		case "complete":
			return distec.Complete(n), nil
		case "cycle":
			return distec.Cycle(n), nil
		case "bipartite":
			return distec.CompleteBipartite(n/2, n/2), nil
		case "tree":
			return distec.RandomTree(n, seed), nil
		}
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
	if inFile == "" || inFile == "-" {
		return graph.Read(os.Stdin)
	}
	f, err := os.Open(inFile)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f)
}

// startCPUProfile begins CPU profiling into path ("" is a no-op) and
// returns the function that stops it and closes the file.
func startCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeTrace exports the run's trace as Chrome trace-event JSON to path
// ("" is a no-op). The document embeds the solve summary under the
// "summary" key (viewers ignore unknown top-level keys).
func writeTrace(path string, tr *trace.Trace) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeHeapProfile dumps the heap to path ("" is a no-op), forcing a GC
// first so the profile reflects live objects, not garbage.
func writeHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}
