package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadGraphGenerators(t *testing.T) {
	cases := []struct {
		gen  string
		n, d int
		p    float64
	}{
		{"regular", 32, 4, 0},
		{"gnp", 40, 0, 0.1},
		{"geometric", 40, 0, 0.2},
		{"powerlaw", 40, 8, 0},
		{"complete", 8, 0, 0},
		{"cycle", 9, 0, 0},
		{"bipartite", 10, 0, 0},
		{"tree", 20, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.gen, func(t *testing.T) {
			g, err := loadGraph("", tc.gen, tc.n, tc.d, tc.p, 1)
			if err != nil {
				t.Fatalf("loadGraph: %v", err)
			}
			if g.N() == 0 {
				t.Fatal("empty graph")
			}
		})
	}
}

func TestLoadGraphUnknownGenerator(t *testing.T) {
	if _, err := loadGraph("", "nope", 10, 3, 0, 1); err == nil {
		t.Fatal("accepted unknown generator")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("3 2\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path, "", 0, 0, 0, 0)
	if err != nil {
		t.Fatalf("loadGraph(file): %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
}

func TestLoadGraphMissingFile(t *testing.T) {
	if _, err := loadGraph("/definitely/not/here.txt", "", 0, 0, 0, 0); err == nil {
		t.Fatal("accepted missing file")
	}
}
