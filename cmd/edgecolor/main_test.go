package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/distec/distec/internal/trace"
)

func TestLoadGraphGenerators(t *testing.T) {
	cases := []struct {
		gen  string
		n, d int
		p    float64
	}{
		{"regular", 32, 4, 0},
		{"gnp", 40, 0, 0.1},
		{"geometric", 40, 0, 0.2},
		{"powerlaw", 40, 8, 0},
		{"complete", 8, 0, 0},
		{"cycle", 9, 0, 0},
		{"bipartite", 10, 0, 0},
		{"tree", 20, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.gen, func(t *testing.T) {
			g, err := loadGraph("", tc.gen, tc.n, tc.d, tc.p, 1)
			if err != nil {
				t.Fatalf("loadGraph: %v", err)
			}
			if g.N() == 0 {
				t.Fatal("empty graph")
			}
		})
	}
}

func TestLoadGraphUnknownGenerator(t *testing.T) {
	if _, err := loadGraph("", "nope", 10, 3, 0, 1); err == nil {
		t.Fatal("accepted unknown generator")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("3 2\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := loadGraph(path, "", 0, 0, 0, 0)
	if err != nil {
		t.Fatalf("loadGraph(file): %v", err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
}

func TestLoadGraphMissingFile(t *testing.T) {
	if _, err := loadGraph("/definitely/not/here.txt", "", 0, 0, 0, 0); err == nil {
		t.Fatal("accepted missing file")
	}
}

func TestValidateFlags(t *testing.T) {
	ok := []struct {
		engine string
		shards int
		alg    string
	}{
		{"sequential", 0, "bko"},
		{"goroutines", 0, "bko-theory"},
		{"sharded", 4, "pr01"},
		{"sharded", 0, "greedy-classes"},
		{"sequential", 2, "randomized"}, // -shards is inert but valid here
		{"sequential", 0, "vizing"},
	}
	for _, tc := range ok {
		if err := validateFlags(tc.engine, tc.shards, tc.alg); err != nil {
			t.Errorf("validateFlags(%q, %d, %q) = %v, want nil", tc.engine, tc.shards, tc.alg, err)
		}
	}
	bad := []struct {
		engine string
		shards int
		alg    string
	}{
		{"warp-drive", 0, "bko"}, // unknown engine
		{"Sharded", 0, "bko"},    // case matters
		{"sharded", -1, "bko"},   // negative shards
		{"sequential", 0, "bk0"}, // unknown algorithm
		{"", 0, "bko"},           // empty engine is not a default here
	}
	for _, tc := range bad {
		if err := validateFlags(tc.engine, tc.shards, tc.alg); err == nil {
			t.Errorf("validateFlags(%q, %d, %q) accepted bad flags", tc.engine, tc.shards, tc.alg)
		}
	}
}

// TestProfileHelpers: the -cpuprofile/-memprofile plumbing writes real,
// nonempty pprof files and surfaces bad paths as errors.
func TestProfileHelpers(t *testing.T) {
	stop, err := startCPUProfile("")
	if err != nil {
		t.Fatal(err)
	}
	stop() // empty path: no-op closure, must not panic

	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.pprof")
	stop, err = startCPUProfile(cpuPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1e6; i++ {
		_ = i * i
	}
	stop()
	if fi, err := os.Stat(cpuPath); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile: %v (size %v)", err, fi)
	}

	if err := writeHeapProfile(""); err != nil {
		t.Fatal(err)
	}
	heapPath := filepath.Join(dir, "heap.pprof")
	if err := writeHeapProfile(heapPath); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heapPath); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile: %v (size %v)", err, fi)
	}

	bad := filepath.Join(dir, "missing", "out.pprof")
	if _, err := startCPUProfile(bad); err == nil {
		t.Error("startCPUProfile into missing dir: no error")
	}
	if err := writeHeapProfile(bad); err == nil {
		t.Error("writeHeapProfile into missing dir: no error")
	}
}

// TestWriteTrace pins the -trace export helper: "" is a no-op, a real
// path gets well-formed Chrome trace-event JSON with the embedded
// summary, and an unwritable path reports the error.
func TestWriteTrace(t *testing.T) {
	if err := writeTrace("", nil); err != nil {
		t.Fatalf("empty path: %v", err)
	}

	tr := trace.New()
	tr.SetLabel("base")
	s := tr.StartSpan("sequential", 4)
	s.Round(trace.RoundEvent{Round: 1, Messages: 8, Received: 4, Halted: 4})
	s.End(nil)

	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	if err := writeTrace(path, tr); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		Summary     *trace.Summary    `json:"summary"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not JSON: %v", err)
	}
	if doc.Summary == nil || doc.Summary.Rounds != 1 || doc.Summary.Messages != 8 {
		t.Errorf("embedded summary = %+v, want 1 round / 8 messages", doc.Summary)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}

	if err := writeTrace(filepath.Join(dir, "missing", "t.json"), tr); err == nil {
		t.Error("writeTrace into missing dir: no error")
	}
}
