package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("color=4, cached=3,churn=0,storm=1")
	if err != nil {
		t.Fatal(err)
	}
	want := []classWeight{{0, 4}, {1, 3}, {3, 1}} // churn=0 dropped
	if len(mix) != len(want) {
		t.Fatalf("mix %v, want %v", mix, want)
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Fatalf("mix[%d] = %v, want %v", i, mix[i], want[i])
		}
	}
	for _, bad := range []string{"", "color", "nope=3", "color=-1", "color=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q): no error", bad)
		}
	}
}

func TestParseSLOs(t *testing.T) {
	slos, err := parseSLOs("color:p99=500ms, churn:p999=1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 2 || slos[0] != (slo{"color", "p99", 500}) || slos[1] != (slo{"churn", "p999", 1000}) {
		t.Fatalf("slos = %+v", slos)
	}
	if got, err := parseSLOs("  "); err != nil || got != nil {
		t.Fatalf("empty spec: %v, %v", got, err)
	}
	for _, bad := range []string{"color:p98=1s", "nope:p99=1s", "color=1s", "color:p99=zebra", "color:p99=-1s"} {
		if _, err := parseSLOs(bad); err == nil {
			t.Errorf("parseSLOs(%q): no error", bad)
		}
	}
}

// TestWRRInterleaves checks the smooth weighted round-robin hits exact
// proportions over one period and never emits a class's quota as one burst.
func TestWRRInterleaves(t *testing.T) {
	mix, err := parseMix("color=3,cached=1")
	if err != nil {
		t.Fatal(err)
	}
	w := newWRR(mix)
	var seq []int
	counts := map[int]int{}
	for i := 0; i < 8; i++ {
		c := w.next()
		seq = append(seq, c)
		counts[c]++
	}
	if counts[0] != 6 || counts[1] != 2 {
		t.Fatalf("counts %v over two periods, want 6/2 (seq %v)", counts, seq)
	}
	// Smoothness: the singleton class appears once per period of 4, not
	// back to back at the period boundary.
	for i := 1; i < len(seq); i++ {
		if seq[i] == 1 && seq[i-1] == 1 {
			t.Fatalf("class 1 emitted back to back: %v", seq)
		}
	}
}

func TestQuantile(t *testing.T) {
	lats := make([]time.Duration, 1000)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 500}, {0.99, 990}, {0.999, 999}, {1, 1000}} {
		if got := quantile(lats, tc.q); got != tc.want {
			t.Errorf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

// stubDaemon is a minimal edgecolord wire-format double: instant answers,
// optional injected latency/failures, so the open-loop machinery is
// testable without the real server.
func stubDaemon(t *testing.T, failColor *atomic.Bool) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var sessions atomic.Int64
	var nextID atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/color", func(w http.ResponseWriter, r *http.Request) {
		if failColor != nil && failColor.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"colors": []int{}})
	})
	mux.HandleFunc("POST /v1/session", func(w http.ResponseWriter, r *http.Request) {
		sessions.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"session_id": fmt.Sprint(nextID.Add(1))})
	})
	mux.HandleFunc("POST /v1/session/{id}/update", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"results": []any{}})
	})
	mux.HandleFunc("DELETE /v1/session/{id}", func(w http.ResponseWriter, r *http.Request) {
		sessions.Add(-1)
		json.NewEncoder(w).Encode(map[string]bool{"deleted": true})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &sessions
}

// TestOpenLoopRun drives the full pipeline against the stub: the schedule
// must fire the configured number of requests, split per the mix, with no
// errors, and the storm class must leave no sessions behind.
func TestOpenLoopRun(t *testing.T) {
	ts, sessions := stubDaemon(t, nil)
	gen := newWorkload(ts.URL, 32, 4, 8, 5*time.Second)
	if err := gen.prepare(); err != nil {
		t.Fatal(err)
	}
	defer gen.cleanup()
	mix, _ := parseMix("color=2,cached=1,churn=1,storm=1")
	rep := run(gen, mix, 500, 400*time.Millisecond)
	if rep.Requests != 200 {
		t.Fatalf("scheduled %d requests, want 200", rep.Requests)
	}
	if errs := rep.totalErrors(); errs != 0 {
		t.Fatalf("%d errors: %+v", errs, rep.Classes)
	}
	if got := rep.Classes["color"].Count; got != 80 {
		t.Errorf("color count %d, want 80 (weight 2 of 5)", got)
	}
	for _, name := range classes {
		cr := rep.Classes[name]
		if cr == nil || cr.Count == 0 {
			t.Errorf("class %s saw no traffic", name)
		} else if cr.P50ms <= 0 || cr.P999ms < cr.P50ms {
			t.Errorf("class %s has nonsense quantiles: %+v", name, cr)
		}
	}
	// storm creates paired with deletes; only the churn session may remain
	// (cleanup not yet run at this point).
	if n := sessions.Load(); n != 1 {
		t.Errorf("%d sessions left on daemon, want 1 (the churn session)", n)
	}
	if len(rep.checkSLOs([]slo{{"color", "p99", 60_000}})) != 0 {
		t.Error("lenient SLO reported violated")
	}
	if v := rep.checkSLOs([]slo{{"color", "p999", 1e-9}}); len(v) != 1 {
		t.Error("impossible SLO not reported")
	}
	// An SLO against a class with no traffic must violate, not pass.
	if v := rep.checkSLOs([]slo{{"color", "p99", 1000}, {"cached", "p99", 1000}}); len(v) != 0 {
		t.Errorf("unexpected violations: %+v", v)
	}
	empty := &report{Classes: map[string]*classReport{}}
	if v := empty.checkSLOs([]slo{{"color", "p99", 1000}}); len(v) != 1 {
		t.Error("SLO on silent class must violate")
	}
}

// TestErrorsAreCounted: failed requests land in the error column (and the
// exit-1 path), not in the latency population.
func TestErrorsAreCounted(t *testing.T) {
	var failColor atomic.Bool
	ts, _ := stubDaemon(t, &failColor)
	gen := newWorkload(ts.URL, 32, 4, 4, 5*time.Second)
	if err := gen.prepare(); err != nil {
		t.Fatal(err)
	}
	defer gen.cleanup()
	failColor.Store(true)
	mix, _ := parseMix("color=1")
	rep := run(gen, mix, 200, 100*time.Millisecond)
	if rep.totalErrors() != 20 {
		t.Fatalf("errors %d, want 20", rep.totalErrors())
	}
	if rep.Classes["color"].Count != 0 {
		t.Fatalf("failed requests counted as latencies: %+v", rep.Classes["color"])
	}
}

// TestReportOutput covers the human table, the violation lines, and the
// -bench-out JSON round trip.
func TestReportOutput(t *testing.T) {
	rep := &report{
		RatePerS: 100, DurationS: 2, Requests: 200, AchievedPerS: 99.5,
		SchedulerLate: 3, Mix: "color=1",
		Classes: map[string]*classReport{
			"color": {Count: 200, Errors: 2, P50ms: 5, P99ms: 20, P999ms: 30, MaxMs: 40},
		},
	}
	violations := rep.checkSLOs([]slo{{"color", "p99", 10}, {"storm", "p50", 1}})
	if len(violations) != 2 {
		t.Fatalf("violations %+v", violations)
	}
	var buf strings.Builder
	rep.print(&buf, violations)
	out := buf.String()
	for _, want := range []string{
		"achieved 99.5/s", "scheduler late on 3 slots",
		"SLO VIOLATED: color:p99 = 20.00ms > 10.00ms",
		"SLO VIOLATED: storm:p50 — class saw no traffic",
		"ERRORS: 2 requests failed",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.writeJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Benchmark string `json:"benchmark"`
		Date      string `json:"date"`
		Requests  int    `json:"requests"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Benchmark == "" || doc.Date == "" || doc.Requests != 200 {
		t.Fatalf("bench doc %+v", doc)
	}
	if err := rep.writeJSON(filepath.Join(path, "nope", "bench.json")); err == nil {
		t.Error("writeJSON into a file-as-dir path: no error")
	}
}

// TestPrepareFailure: a daemon that rejects session creation must surface
// through prepare with the status and body, not hang or succeed.
func TestPrepareFailure(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "registry full", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	gen := newWorkload(ts.URL, 16, 2, 2, time.Second)
	err := gen.prepare()
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("prepare error = %v, want 503", err)
	}
	gen.cleanup() // no session: must be a no-op, not a panic
}

func TestParseArgsDefaults(t *testing.T) {
	cfg, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.rate != 200 || cfg.duration != 10*time.Second || cfg.graphN != 256 || cfg.graphD != 8 || cfg.bodies != 64 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if len(cfg.mix) == 0 {
		t.Fatal("default mix not parsed")
	}
	if len(cfg.slos) != 0 {
		t.Fatalf("default slos = %v, want none", cfg.slos)
	}
}

// TestParseArgsRejectsBadValues pins the validation sweep: every
// malformed flag or out-of-range numeric value is a parse error (which
// main turns into exit 2), never a silent zero-request run.
func TestParseArgsRejectsBadValues(t *testing.T) {
	bad := [][]string{
		{"-bogus"},
		{"extra", "operand"},
		{"-rate", "0"},
		{"-rate", "-5"},
		{"-duration", "0s"},
		{"-duration", "-1s"},
		{"-n", "1"},
		{"-n", "0"},
		{"-d", "0"},
		{"-n", "8", "-d", "8"},
		{"-bodies", "0"},
		{"-bodies", "-3"},
		{"-timeout", "0s"},
		{"-timeout", "-2s"},
		{"-mix", "color"},
		{"-mix", "nope=3"},
		{"-slo", "color:p98=1ms"},
	}
	for _, args := range bad {
		if cfg, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%q) accepted: %+v", args, cfg)
		}
	}
}

func TestParseArgsOverrides(t *testing.T) {
	cfg, err := parseArgs([]string{
		"-addr", "http://x:1", "-rate", "50", "-duration", "2s",
		"-n", "32", "-d", "4", "-bodies", "3", "-timeout", "1s",
		"-mix", "cached=1", "-slo", "cached:p50=100ms", "-bench-out", "out.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "http://x:1" || cfg.rate != 50 || cfg.duration != 2*time.Second ||
		cfg.graphN != 32 || cfg.graphD != 4 || cfg.bodies != 3 ||
		cfg.timeout != time.Second || cfg.benchOut != "out.json" {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if len(cfg.mix) != 1 || classes[cfg.mix[0].class] != "cached" {
		t.Fatalf("mix = %v", cfg.mix)
	}
	if len(cfg.slos) != 1 || cfg.slos[0].class != "cached" || cfg.slos[0].quantile != "p50" {
		t.Fatalf("slos = %v", cfg.slos)
	}
}
