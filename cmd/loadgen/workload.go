package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/distec/distec"
)

// graphSpec and the request bodies mirror the daemon's wire format (the
// daemon's own types are unexported; the JSON shape is the contract).
type graphSpec struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

type colorBody struct {
	Graph graphSpec `json:"graph"`
	Seed  uint64    `json:"seed,omitempty"`
}

type updateBody struct {
	Updates []edgeUpdate `json:"updates"`
}

type edgeUpdate struct {
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v"`
}

// workload owns the pre-encoded request bodies and the shared HTTP client.
// Everything allocation-heavy happens in prepare(), before the clock
// starts: the firing path is lookup, POST, drain.
type workload struct {
	addr   string
	client *http.Client

	colorBodies [][]byte // distinct rotating graphs: cache-miss traffic
	colorIdx    atomic.Uint64
	cachedBody  []byte // one fixed graph: cache-hit traffic
	stormBody   []byte // small session graph for create+delete pairs

	churnSession string
	churnPairs   [][2]int
	churnBodies  [][]byte
	churnIdx     atomic.Uint64
}

func newWorkload(addr string, n, d, bodies int, timeout time.Duration) *workload {
	// The default transport caps idle conns per host at 2; at hundreds of
	// concurrent requests against one host that means constant reconnect
	// churn in the client — measurement noise, not daemon latency.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 1024
	tr.MaxIdleConnsPerHost = 1024
	return &workload{
		addr:        addr,
		client:      &http.Client{Timeout: timeout, Transport: tr},
		colorBodies: make([][]byte, 0, bodies),
		stormBody:   mustJSON(colorBody{Graph: toSpec(distec.RandomRegular(32, 4, 7))}),
		cachedBody:  mustJSON(colorBody{Graph: toSpec(distec.RandomRegular(n, d, 1))}),
	}
}

func toSpec(g *distec.Graph) graphSpec {
	spec := graphSpec{N: g.N(), Edges: make([][2]int, 0, g.M())}
	for _, e := range g.Edges() {
		spec.Edges = append(spec.Edges, [2]int{int(e.U), int(e.V)})
	}
	return spec
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return data
}

// prepare pre-encodes every request body and creates the long-lived churn
// session on the daemon. Called once before the schedule starts.
func (w *workload) prepare() error {
	n, d := dims(w.cachedBody)
	for i := cap(w.colorBodies); i > 0; i-- {
		g := distec.RandomRegular(n, d, uint64(1000+i))
		w.colorBodies = append(w.colorBodies, mustJSON(colorBody{Graph: toSpec(g)}))
	}
	// The churn session's graph: every request deletes and reinserts one
	// rotating edge, so the session ends each batch in its base state and
	// concurrent batches touch distinct edges.
	churnGraph := distec.RandomRegular(n, d, 999)
	spec := toSpec(churnGraph)
	var created struct {
		SessionID string `json:"session_id"`
	}
	if err := w.postJSON("/v1/session", mustJSON(colorBody{Graph: spec}), &created); err != nil {
		return err
	}
	w.churnSession = created.SessionID
	w.churnPairs = spec.Edges
	w.churnBodies = make([][]byte, len(w.churnPairs))
	for i, p := range w.churnPairs {
		w.churnBodies[i] = mustJSON(updateBody{Updates: []edgeUpdate{
			{Op: "delete", U: p[0], V: p[1]},
			{Op: "insert", U: p[0], V: p[1]},
		}})
	}
	return nil
}

// dims recovers (n, d) from the cached body so prepare doesn't need the
// flags threaded through again.
func dims(body []byte) (n, d int) {
	var b colorBody
	if err := json.Unmarshal(body, &b); err != nil {
		panic(err)
	}
	n = b.Graph.N
	if n > 0 {
		d = 2 * len(b.Graph.Edges) / n
	}
	return n, d
}

func (w *workload) cleanup() {
	if w.churnSession != "" {
		req, err := http.NewRequest(http.MethodDelete, w.addr+"/v1/session/"+w.churnSession, nil)
		if err == nil {
			if resp, err := w.client.Do(req); err == nil {
				drain(resp)
			}
		}
	}
}

// fire issues one request of the given class and returns its error, if
// any. Non-200 statuses are errors: under open-loop overload the daemon's
// 503s must count against it, not vanish.
func (w *workload) fire(class int) error {
	switch classes[class] {
	case "color":
		i := w.colorIdx.Add(1)
		return w.post("/v1/color", w.colorBodies[i%uint64(len(w.colorBodies))])
	case "cached":
		return w.post("/v1/color", w.cachedBody)
	case "churn":
		i := w.churnIdx.Add(1)
		return w.post("/v1/session/"+w.churnSession+"/update", w.churnBodies[i%uint64(len(w.churnBodies))])
	case "storm":
		var created struct {
			SessionID string `json:"session_id"`
		}
		if err := w.postJSON("/v1/session", w.stormBody, &created); err != nil {
			return err
		}
		req, err := http.NewRequest(http.MethodDelete, w.addr+"/v1/session/"+created.SessionID, nil)
		if err != nil {
			return err
		}
		resp, err := w.client.Do(req)
		if err != nil {
			return err
		}
		return drain(resp)
	}
	panic("unknown class")
}

func (w *workload) post(path string, body []byte) error {
	resp, err := w.client.Post(w.addr+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return drain(resp)
}

func (w *workload) postJSON(path string, body []byte, out any) error {
	resp, err := w.client.Post(w.addr+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 200))
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, snippet)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// drain consumes and closes the response so the connection is reusable,
// turning non-200s into errors.
func drain(resp *http.Response) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 200))
		return fmt.Errorf("%s: status %d: %s", resp.Request.URL.Path, resp.StatusCode, snippet)
	}
	_, err := io.Copy(io.Discard, resp.Body)
	return err
}
