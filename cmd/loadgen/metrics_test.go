package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestParseMetricLine(t *testing.T) {
	cases := []struct {
		line  string
		name  string
		value float64
		ok    bool
	}{
		{"distec_serve_rounds_total 42", "distec_serve_rounds_total", 42, true},
		{`distec_serve_jobs_total{outcome="completed"} 7`, `distec_serve_jobs_total{outcome="completed"}`, 7, true},
		{"distec_serve_job_seconds_bucket{le=\"0.1\"} 3", "distec_serve_job_seconds_bucket{le=\"0.1\"}", 3, true},
		{"distec_uptime_seconds 12.75", "distec_uptime_seconds", 12.75, true},
		{"# HELP distec_serve_rounds_total LOCAL rounds served.", "", 0, false},
		{"# TYPE distec_serve_rounds_total counter", "", 0, false},
		{"", "", 0, false},
		{"justaname", "", 0, false},
		{"name notanumber", "", 0, false},
	}
	for _, c := range cases {
		name, value, ok := parseMetricLine(c.line)
		if ok != c.ok || name != c.name || value != c.value {
			t.Errorf("parseMetricLine(%q) = (%q, %v, %v), want (%q, %v, %v)",
				c.line, name, value, ok, c.name, c.value, c.ok)
		}
	}
}

func TestScrapeAndDiff(t *testing.T) {
	exposition := func(rounds, hits int) string {
		return strings.Join([]string{
			"# HELP distec_serve_rounds_total LOCAL rounds served.",
			"# TYPE distec_serve_rounds_total counter",
			"distec_serve_rounds_total " + strconv.Itoa(rounds),
			"distec_cache_hits_total " + strconv.Itoa(hits),
			`distec_serve_jobs_total{outcome="completed"} 5`,
			"distec_serve_queue_waiting 2",
			"",
		}, "\n")
	}
	body := exposition(100, 3)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(body))
	}))
	defer srv.Close()

	before, err := scrapeMetrics(srv.Client(), srv.URL)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body = exposition(175, 10)
	after, err := scrapeMetrics(srv.Client(), srv.URL)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	d := diffMetrics(before, after)
	if d.Rounds != 75 {
		t.Errorf("Rounds delta = %v, want 75", d.Rounds)
	}
	if d.CacheHits != 7 {
		t.Errorf("CacheHits delta = %v, want 7", d.CacheHits)
	}
	if d.JobsCompleted != 0 {
		t.Errorf("JobsCompleted delta = %v, want 0", d.JobsCompleted)
	}
	// Gauges report the end-of-run reading, not a delta.
	if d.QueueWaiting != 2 {
		t.Errorf("QueueWaiting = %v, want 2", d.QueueWaiting)
	}
	// Families absent from both scrapes fold to zero, not NaN or panic.
	if d.SessionEvictions != 0 {
		t.Errorf("SessionEvictions = %v, want 0", d.SessionEvictions)
	}
}

// TestDaemonReportPrint checks the human-readable daemon block carries
// the server-side counters the scrape diff produced.
func TestDaemonReportPrint(t *testing.T) {
	d := &daemonReport{
		JobsSubmitted: 12, JobsCompleted: 10, JobsFailed: 1, AdmissionRejected: 1,
		Rounds: 75, Messages: 4200,
		CacheHits: 7, CacheMisses: 3, CacheCoalesced: 2, CacheEntries: 3,
		SessionCreates: 4, SessionDeletes: 4, SessionEvictions: 1,
		QueueWaiting: 2, QueueRunning: 1,
	}
	var buf bytes.Buffer
	d.print(&buf)
	out := buf.String()
	for _, want := range []string{
		"12 submitted", "10 completed", "1 failed", "1 rejected",
		"rounds 75", "messages 4200",
		"7 hits", "3 misses", "2 coalesced",
		"2 waiting", "1 running",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("daemon block missing %q:\n%s", want, out)
		}
	}
}

// TestScrapeMetricsErrors: a non-200 exposition endpoint and an
// unreachable daemon must both surface as scrape errors (the caller
// degrades to a client-only report).
func TestScrapeMetricsErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	if _, err := scrapeMetrics(srv.Client(), srv.URL); err == nil {
		t.Error("scrape of a 503 endpoint reported no error")
	}
	if _, err := scrapeMetrics(http.DefaultClient, "http://127.0.0.1:1"); err == nil {
		t.Error("scrape of an unreachable daemon reported no error")
	}
}

// TestQuantileEdges pins the nearest-rank readout at the boundaries the
// report leans on: empty set, single sample, and q=1 as the max.
func TestQuantileEdges(t *testing.T) {
	if got := quantile(nil, 0.99); got != 0 {
		t.Errorf("quantile(nil) = %v, want 0", got)
	}
	one := []time.Duration{5 * time.Millisecond}
	if got := quantile(one, 0.01); got != 5 {
		t.Errorf("quantile(one, 0.01) = %v, want 5", got)
	}
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := quantile(lats, 0.50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := quantile(lats, 1); got != 100 {
		t.Errorf("max = %v, want 100", got)
	}
}

// TestWriteJSONError: an unwritable -bench-out path must report, not
// silently drop the run record.
func TestWriteJSONError(t *testing.T) {
	r := &report{}
	if err := r.writeJSON(filepath.Join(t.TempDir(), "missing", "out.json")); err == nil {
		t.Error("writeJSON into a missing dir reported no error")
	}
	path := filepath.Join(t.TempDir(), "out.json")
	if err := r.writeJSON(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
