package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// classes fixes the traffic-class order used everywhere: indices into the
// collector array, report rows, and the smooth weighted round-robin.
var classes = []string{"color", "cached", "churn", "storm"}

func classIndex(name string) int {
	for i, c := range classes {
		if c == name {
			return i
		}
	}
	return -1
}

type classWeight struct {
	class  int
	weight int
}

// parseMix parses "color=4,cached=3,churn=2,storm=1". Unlisted classes get
// weight 0 (disabled); at least one weight must be positive.
func parseMix(spec string) ([]classWeight, error) {
	var out []classWeight
	total := 0
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-mix: %q is not class=weight", part)
		}
		idx := classIndex(strings.TrimSpace(name))
		if idx < 0 {
			return nil, fmt.Errorf("-mix: unknown class %q (want %s)", name, strings.Join(classes, ", "))
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-mix: bad weight %q for %s", val, name)
		}
		if w > 0 {
			out = append(out, classWeight{idx, w})
			total += w
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("-mix: no class has positive weight")
	}
	return out, nil
}

// wrr is smooth weighted round-robin: deterministic, and it interleaves
// classes instead of emitting each one's whole quota in a burst — an
// open-loop schedule should mix traffic the way production does.
type wrr struct {
	mix     []classWeight
	credits []int
	total   int
}

func newWRR(mix []classWeight) *wrr {
	w := &wrr{mix: mix, credits: make([]int, len(mix))}
	for _, cw := range mix {
		w.total += cw.weight
	}
	return w
}

func (w *wrr) next() int {
	best := 0
	for i, cw := range w.mix {
		w.credits[i] += cw.weight
		if w.credits[i] > w.credits[best] {
			best = i
		}
	}
	w.credits[best] -= w.total
	return w.mix[best].class
}

// slo is one declared objective: quantile of a class must not exceed wantMs.
type slo struct {
	class    string
	quantile string
	wantMs   float64
}

// parseSLOs parses "color:p99=500ms,churn:p999=1s". Durations use Go
// syntax; quantiles are p50, p99, or p999.
func parseSLOs(spec string) ([]slo, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []slo
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		classQ, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("-slo: %q is not class:quantile=duration", part)
		}
		class, q, ok := strings.Cut(classQ, ":")
		if !ok || classIndex(class) < 0 {
			return nil, fmt.Errorf("-slo: %q needs a known class before ':'", part)
		}
		switch q {
		case "p50", "p99", "p999":
		default:
			return nil, fmt.Errorf("-slo: quantile %q (want p50, p99, or p999)", q)
		}
		d, err := time.ParseDuration(strings.TrimSpace(val))
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("-slo: bad duration %q in %q", val, part)
		}
		out = append(out, slo{class, q, float64(d) / float64(time.Millisecond)})
	}
	return out, nil
}
