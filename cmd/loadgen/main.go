// Command loadgen drives an edgecolord daemon with open-loop load — a
// fixed arrival rate, scheduled in advance, that does NOT slow down when
// the server does — and reports latency quantiles per traffic class
// against declared SLOs.
//
// Open loop is the point: a closed-loop client (fire, wait, fire again)
// self-throttles under congestion, so its latencies hide exactly the
// overload it should be measuring (coordinated omission). Here every
// request has an arrival time fixed before the run starts, latency is
// measured from that scheduled arrival — queueing delay included, even
// when the client fell behind — and a saturated daemon shows up as the
// p99/p999 blowup it really is.
//
// Usage:
//
//	edgecolord -listen :8080 &
//	loadgen -addr http://localhost:8080 -rate 200 -duration 10s
//	loadgen -rate 500 -mix color=4,cached=4,churn=1,storm=1 \
//	        -slo color:p99=250ms,cached:p99=50ms -bench-out BENCH_serve.json
//
// Traffic classes (weights set by -mix):
//
//	color:  one-shot POST /v1/color over a rotating set of distinct
//	        graphs — cache-miss traffic that exercises the full pipeline
//	cached: the identical request every time — cache-hit epochs
//	churn:  update batches against one long-lived dynamic session
//	        (delete+reinsert of a rotating edge)
//	storm:  session create immediately followed by delete — registry
//	        and persistence lifecycle pressure
//
// Exit status: 0 when every request succeeded and every SLO held;
// 1 on request errors or SLO violations; 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// config is the validated result of flag parsing, separated from main so
// the validation sweep is testable without spawning the process.
type config struct {
	addr     string
	rate     float64
	duration time.Duration
	mixSpec  string
	sloSpec  string
	graphN   int
	graphD   int
	bodies   int
	timeout  time.Duration
	benchOut string
	mix      []classWeight
	slos     []slo
}

// parseArgs parses and validates the command line. Every returned error
// is a usage error (exit 2): malformed flags, malformed -mix/-slo specs,
// or non-positive numeric parameters that would otherwise surface as a
// zero-request run or a divide-by-zero deep in the scheduler.
func parseArgs(args []string) (*config, error) {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", "http://localhost:8080", "daemon base URL")
	fs.Float64Var(&cfg.rate, "rate", 200, "total arrival rate, requests per second (open loop)")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "run length")
	fs.StringVar(&cfg.mixSpec, "mix", "color=4,cached=3,churn=2,storm=1", "traffic mix as class=weight, comma-separated (weight 0 disables a class)")
	fs.StringVar(&cfg.sloSpec, "slo", "", "SLOs as class:quantile=duration, comma-separated (e.g. color:p99=500ms,churn:p999=1s)")
	fs.IntVar(&cfg.graphN, "n", 256, "node count of the workload graphs")
	fs.IntVar(&cfg.graphD, "d", 8, "degree of the workload graphs")
	fs.IntVar(&cfg.bodies, "bodies", 64, "distinct rotating graphs for the color class (more than the daemon cache holds, so they stay misses)")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request client timeout")
	fs.StringVar(&cfg.benchOut, "bench-out", "", "write the machine-readable run report to this JSON file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(fs.Args()) > 0 {
		return nil, fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	var err error
	if cfg.mix, err = parseMix(cfg.mixSpec); err != nil {
		return nil, err
	}
	if cfg.slos, err = parseSLOs(cfg.sloSpec); err != nil {
		return nil, err
	}
	if cfg.rate <= 0 || cfg.duration <= 0 {
		return nil, fmt.Errorf("-rate and -duration must be positive")
	}
	if cfg.graphN < 2 || cfg.graphD < 1 || cfg.graphD >= cfg.graphN {
		return nil, fmt.Errorf("-n and -d must describe a real graph (need n ≥ 2 and 1 ≤ d < n, got n=%d d=%d)", cfg.graphN, cfg.graphD)
	}
	if cfg.bodies < 1 {
		return nil, fmt.Errorf("-bodies must be at least 1, got %d", cfg.bodies)
	}
	if cfg.timeout <= 0 {
		return nil, fmt.Errorf("-timeout must be positive, got %v", cfg.timeout)
	}
	return cfg, nil
}

func main() {
	cfg, err := parseArgs(os.Args[1:])
	if err != nil {
		fail(2, err)
	}

	gen := newWorkload(cfg.addr, cfg.graphN, cfg.graphD, cfg.bodies, cfg.timeout)
	if err := gen.prepare(); err != nil {
		fail(1, fmt.Errorf("preparing workload (is the daemon up at %s?): %w", cfg.addr, err))
	}
	defer gen.cleanup()

	// Bracket the run with /metrics scrapes (after prepare, before
	// cleanup) so the daemon-side deltas cover exactly the scheduled
	// load, not the workload setup or teardown. A failed scrape degrades
	// to the client-side-only report rather than failing the run.
	before, scrapeErr := scrapeMetrics(gen.client, cfg.addr)
	rep := run(gen, cfg.mix, cfg.rate, cfg.duration)
	rep.Mix, rep.SLOSpec = cfg.mixSpec, cfg.sloSpec
	if scrapeErr == nil {
		if after, err := scrapeMetrics(gen.client, cfg.addr); err == nil {
			rep.Daemon = diffMetrics(before, after)
		}
	}
	violations := rep.checkSLOs(cfg.slos)
	rep.print(os.Stdout, violations)
	if cfg.benchOut != "" {
		if err := rep.writeJSON(cfg.benchOut); err != nil {
			fail(1, err)
		}
	}
	if len(violations) > 0 || rep.totalErrors() > 0 {
		os.Exit(1)
	}
}

func fail(code int, err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(code)
}

// run fires requests at the fixed arrival schedule and aggregates samples.
func run(gen *workload, mix []classWeight, rate float64, duration time.Duration) *report {
	interval := float64(time.Second) / rate
	total := int(float64(duration) / interval)
	picker := newWRR(mix)
	var wg sync.WaitGroup
	cols := make([]*collector, len(classes))
	for i := range cols {
		cols[i] = &collector{}
	}
	var late atomic.Int64
	start := time.Now()
	for i := 0; i < total; i++ {
		arrival := start.Add(time.Duration(float64(i) * interval))
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		} else if d < -time.Duration(interval) {
			// The scheduler itself fell behind by more than one slot
			// (dispatch overhead, not server latency): note it — latencies
			// are still measured from the scheduled arrival, so the report
			// stays honest either way.
			late.Add(1)
		}
		class := picker.next()
		wg.Add(1)
		go func(class int, arrival time.Time) {
			defer wg.Done()
			err := gen.fire(class)
			cols[class].add(time.Since(arrival), err)
		}(class, arrival)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		RatePerS:      rate,
		DurationS:     duration.Seconds(),
		Requests:      total,
		AchievedPerS:  float64(total) / elapsed.Seconds(),
		SchedulerLate: late.Load(),
		Classes:       map[string]*classReport{},
	}
	for i, c := range cols {
		if cr := c.summarize(); cr != nil {
			rep.Classes[classes[i]] = cr
		}
	}
	return rep
}

// collector accumulates one class's samples under a lock; summarize sorts
// once at the end.
type collector struct {
	mu   sync.Mutex
	lats []time.Duration
	errs int
}

func (c *collector) add(lat time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.errs++
		return
	}
	c.lats = append(c.lats, lat)
}

func (c *collector) summarize() *classReport {
	if len(c.lats) == 0 && c.errs == 0 {
		return nil
	}
	sort.Slice(c.lats, func(i, j int) bool { return c.lats[i] < c.lats[j] })
	return &classReport{
		Count:  len(c.lats),
		Errors: c.errs,
		P50ms:  quantile(c.lats, 0.50),
		P99ms:  quantile(c.lats, 0.99),
		P999ms: quantile(c.lats, 0.999),
		MaxMs:  quantile(c.lats, 1),
	}
}

// quantile reads q from sorted lats in milliseconds (nearest-rank).
func quantile(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	idx := int(q*float64(len(lats))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lats) {
		idx = len(lats) - 1
	}
	return float64(lats[idx]) / float64(time.Millisecond)
}

// report is the run summary — printed for humans and written as the
// BENCH_serve.json payload with -bench-out.
type report struct {
	RatePerS      float64                 `json:"rate_per_s"`
	DurationS     float64                 `json:"duration_s"`
	Requests      int                     `json:"requests"`
	AchievedPerS  float64                 `json:"achieved_rate_per_s"`
	SchedulerLate int64                   `json:"scheduler_late_slots"`
	Mix           string                  `json:"mix"`
	SLOSpec       string                  `json:"slo,omitempty"`
	Classes       map[string]*classReport `json:"classes"`
	// Daemon holds the server-side counter deltas scraped from GET
	// /metrics around the run; nil when the scrape failed.
	Daemon *daemonReport `json:"daemon,omitempty"`
}

type classReport struct {
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50ms  float64 `json:"p50_ms"`
	P99ms  float64 `json:"p99_ms"`
	P999ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
}

type violation struct {
	class, quantile string
	got, want       float64 // milliseconds
}

// checkSLOs evaluates every declared SLO against the measured quantiles.
// An SLO on a class that saw no traffic is a violation too: a mix typo
// must not silently pass.
func (r *report) checkSLOs(slos []slo) []violation {
	var out []violation
	for _, s := range slos {
		cr := r.Classes[s.class]
		if cr == nil {
			out = append(out, violation{s.class, s.quantile, -1, s.wantMs})
			continue
		}
		got := map[string]float64{"p50": cr.P50ms, "p99": cr.P99ms, "p999": cr.P999ms}[s.quantile]
		if got > s.wantMs {
			out = append(out, violation{s.class, s.quantile, got, s.wantMs})
		}
	}
	return out
}

func (r *report) totalErrors() int {
	n := 0
	for _, c := range r.Classes {
		n += c.Errors
	}
	return n
}

func (r *report) print(w io.Writer, violations []violation) {
	fmt.Fprintf(w, "open-loop: %d requests scheduled at %.0f/s over %.1fs (achieved %.1f/s", r.Requests, r.RatePerS, r.DurationS, r.AchievedPerS)
	if r.SchedulerLate > 0 {
		fmt.Fprintf(w, ", scheduler late on %d slots", r.SchedulerLate)
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintf(w, "%-8s %8s %7s %9s %9s %9s %9s\n", "class", "count", "errors", "p50", "p99", "p999", "max")
	for _, name := range classes {
		c := r.Classes[name]
		if c == nil {
			continue
		}
		fmt.Fprintf(w, "%-8s %8d %7d %8.2fms %8.2fms %8.2fms %8.2fms\n",
			name, c.Count, c.Errors, c.P50ms, c.P99ms, c.P999ms, c.MaxMs)
	}
	if r.Daemon != nil {
		r.Daemon.print(w)
	}
	for _, v := range violations {
		if v.got < 0 {
			fmt.Fprintf(w, "SLO VIOLATED: %s:%s — class saw no traffic\n", v.class, v.quantile)
		} else {
			fmt.Fprintf(w, "SLO VIOLATED: %s:%s = %.2fms > %.2fms\n", v.class, v.quantile, v.got, v.wantMs())
		}
	}
	if n := r.totalErrors(); n > 0 {
		fmt.Fprintf(w, "ERRORS: %d requests failed\n", n)
	}
}

func (v violation) wantMs() float64 { return v.want }

func (r *report) writeJSON(path string) error {
	doc := struct {
		Benchmark string `json:"benchmark"`
		Date      string `json:"date"`
		*report
	}{"loadgen open-loop SLO run", time.Now().UTC().Format("2006-01-02"), r}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
