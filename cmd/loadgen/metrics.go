// Daemon-side observability for a load run: loadgen scrapes the
// daemon's GET /metrics endpoint before and after the open-loop run and
// reports counter deltas next to the client-side latency quantiles.
// Client-side numbers alone cannot distinguish "the daemon computed
// every request" from "the cache absorbed most of them" or "admission
// rejected the overflow" — the server-side deltas can.
package main

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// scrapeMetrics fetches and parses one Prometheus text exposition from
// base+/metrics into series-name → value (labels kept verbatim in the
// key, so distec_serve_jobs_total{outcome="completed"} and its siblings
// stay distinct). Histogram series are parsed like any other line.
func scrapeMetrics(client *http.Client, base string) (map[string]float64, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		name, value, ok := parseMetricLine(sc.Text())
		if ok {
			out[name] = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseMetricLine splits one exposition line into series name (labels
// included) and value. Comments, blank lines, and malformed lines
// report ok=false — a scrape must tolerate families it doesn't know.
func parseMetricLine(line string) (name string, value float64, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", 0, false
	}
	// The value is the last space-separated field; the series name is
	// everything before it (label values may themselves contain spaces,
	// but never unescaped newlines, so splitting from the right is safe).
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return "", 0, false
	}
	v, err := strconv.ParseFloat(line[i+1:], 64)
	if err != nil {
		return "", 0, false
	}
	return strings.TrimSpace(line[:i]), v, true
}

// daemonReport is the server-side view of one load run: counter deltas
// across the run (before/after scrape), plus end-of-run gauge readings.
// A nil report means the scrape failed (older daemon, endpoint off) —
// the run report stays client-side only, as before.
type daemonReport struct {
	// Pool scheduler deltas.
	JobsSubmitted     float64 `json:"jobs_submitted"`
	JobsCompleted     float64 `json:"jobs_completed"`
	JobsFailed        float64 `json:"jobs_failed"`
	JobsCancelled     float64 `json:"jobs_cancelled"`
	AdmissionRejected float64 `json:"admission_rejected"`
	Rounds            float64 `json:"rounds"`
	Messages          float64 `json:"messages"`
	// Result-cache deltas: how much of the run the daemon never had to
	// compute.
	CacheHits      float64 `json:"cache_hits"`
	CacheMisses    float64 `json:"cache_misses"`
	CacheCoalesced float64 `json:"cache_coalesced"`
	// Session lifecycle deltas (the storm class exercises these).
	SessionCreates   float64 `json:"session_creates"`
	SessionDeletes   float64 `json:"session_deletes"`
	SessionEvictions float64 `json:"session_evictions"`
	// End-of-run gauges (not deltas): queue state the run left behind.
	QueueWaiting float64 `json:"queue_waiting"`
	QueueRunning float64 `json:"queue_running"`
	QueueDepth   float64 `json:"queue_depth"`
	CacheEntries float64 `json:"cache_entries"`
}

// diffMetrics folds a before/after scrape pair into the daemon report.
func diffMetrics(before, after map[string]float64) *daemonReport {
	d := func(name string) float64 { return after[name] - before[name] }
	return &daemonReport{
		JobsSubmitted:     d("distec_serve_jobs_submitted_total"),
		JobsCompleted:     d(`distec_serve_jobs_total{outcome="completed"}`),
		JobsFailed:        d(`distec_serve_jobs_total{outcome="failed"}`),
		JobsCancelled:     d(`distec_serve_jobs_total{outcome="cancelled"}`),
		AdmissionRejected: d("distec_serve_admission_rejected_total"),
		Rounds:            d("distec_serve_rounds_total"),
		Messages:          d("distec_serve_messages_total"),
		CacheHits:         d("distec_cache_hits_total"),
		CacheMisses:       d("distec_cache_misses_total"),
		CacheCoalesced:    d("distec_cache_coalesced_total"),
		SessionCreates:    d("distec_session_creates_total"),
		SessionDeletes:    d("distec_session_deletes_total"),
		SessionEvictions:  d("distec_session_evictions_total"),
		QueueWaiting:      after["distec_serve_queue_waiting"],
		QueueRunning:      after["distec_serve_queue_running"],
		QueueDepth:        after["distec_serve_queue_depth"],
		CacheEntries:      after["distec_cache_entries"],
	}
}

// print renders the daemon block of the human report.
func (d *daemonReport) print(w io.Writer) {
	fmt.Fprintf(w, "daemon:   jobs %0.f submitted, %0.f completed, %0.f failed, %0.f rejected; rounds %0.f, messages %0.f\n",
		d.JobsSubmitted, d.JobsCompleted, d.JobsFailed, d.AdmissionRejected, d.Rounds, d.Messages)
	fmt.Fprintf(w, "          cache %0.f hits / %0.f misses (%0.f coalesced), %0.f entries; sessions +%0.f/−%0.f (evicted %0.f); queue %0.f waiting, %0.f running\n",
		d.CacheHits, d.CacheMisses, d.CacheCoalesced, d.CacheEntries,
		d.SessionCreates, d.SessionDeletes, d.SessionEvictions, d.QueueWaiting, d.QueueRunning)
}
