// Command benchtables regenerates every experiment table of EXPERIMENTS.md
// (the per-claim reproduction index is in DESIGN.md §2).
//
// Usage:
//
//	benchtables                 # standard scale, ~minutes
//	benchtables -scale smoke    # seconds (CI)
//	benchtables -scale full     # the largest documented sizes
//	benchtables -o EXPERIMENTS-tables.md
//	benchtables -render BENCH_vizing.json,BENCH_dynamic.json
//
// -render skips the experiment runners and instead renders recorded
// benchmark documents (the BENCH_*.json files at the repository root) as
// markdown tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/distec/distec/internal/bench"
)

func main() {
	var (
		scaleFlag = flag.String("scale", "standard", "smoke|standard|full")
		outFile   = flag.String("o", "", "write tables to file (default stdout)")
		render    = flag.String("render", "", "render recorded BENCH_*.json files (comma-separated) instead of running experiments")
	)
	flag.Parse()

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	var w io.Writer = os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *render != "" {
		for _, path := range strings.Split(*render, ",") {
			if err := bench.RenderBenchFile(w, strings.TrimSpace(path)); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
		}
		return
	}
	start := time.Now()
	fmt.Fprintf(w, "# Experiment tables (scale: %s, generated %s)\n\n", *scaleFlag, time.Now().Format(time.RFC3339))
	if err := bench.WriteAll(w, scale); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchtables: done in %v\n", time.Since(start).Round(time.Millisecond))
}
