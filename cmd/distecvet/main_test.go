package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"github.com/distec/distec/internal/analysis"
)

func TestListExitsCleanAndNamesEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, stderr.String())
	}
	for _, name := range analysis.AnalyzerNames() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownFlagIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-bogus) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: distecvet") {
		t.Errorf("stderr missing usage text: %q", stderr.String())
	}
}

func TestMissingModuleIsLoadError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-C emptydir) = %d, want 2; stderr %q", code, stderr.String())
	}
}

// TestFindingsExitOneWithJSON drives the binary end to end over the
// analysis fixtures: findings must surface as valid JSON and exit 1.
// The sentinel fixture is used because sentinelerr fires under the
// default configuration (the other fixture packages need the test
// suite's path-suffix overrides).
func TestFindingsExitOneWithJSON(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "analysis", "testdata", "src")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtures, "-json", "./sentinel"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run over fixtures = %d, want 1; stderr %q", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected findings in the sentinel fixture, got none")
	}
	for _, d := range diags {
		if d.Analyzer != "sentinelerr" {
			t.Errorf("unexpected analyzer %q in ./sentinel run: %s", d.Analyzer, d)
		}
	}
}
