package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"github.com/distec/distec/internal/analysis"
)

func TestListExitsCleanAndNamesEveryAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, stderr.String())
	}
	for _, name := range analysis.AnalyzerNames() {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

// TestListGolden pins the exact -list output: sorted by analyzer name,
// one line each with the one-line doc. A new analyzer, a rename, or a
// doc rewrite must update this golden deliberately.
func TestListGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, stderr.String())
	}
	want := strings.Join([]string{
		"atomicmix    flags fields accessed both through sync/atomic and with plain reads/writes anywhere in the module",
		"ctxflow      enforces context discipline: ctx first param, no ctx struct fields, cancel called on all paths, no fresh roots in request-scoped code",
		"determinism  flags nondeterminism sources (map-order-dependent writes, wall clock, global rand, multi-way select) in solver packages",
		"goroleak     flags go statements whose goroutine reaches an infinite loop with no return, break, or Goexit on any path",
		"hotpath      flags fmt, capturing closures, map allocation, fresh-slice append, and unguarded trace calls inside (or statically reachable from) //distec:hotpath functions",
		"lockio       flags blocking I/O (file writes, fsync, os calls, journal hooks) reachable, directly or through static callees, while a mutex locked in the same function is held",
		"lockorder    builds the module-wide mutex acquired-while-held graph across static call chains and reports cycles as deadlock candidates",
		"metricnames  validates metric registration names, flags duplicates, and cross-checks the README metric catalog",
		"sentinelerr  flags ==/!= comparisons against module sentinel errors and fmt.Errorf wrapping a sentinel without %w",
		"",
	}, "\n")
	if got := stdout.String(); got != want {
		t.Errorf("-list output:\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestUnknownFlagIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-bogus) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage: distecvet") {
		t.Errorf("stderr missing usage text: %q", stderr.String())
	}
}

func TestMissingModuleIsLoadError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", t.TempDir()}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(-C emptydir) = %d, want 2; stderr %q", code, stderr.String())
	}
}

// TestFindingsExitOneWithJSON drives the binary end to end over the
// analysis fixtures: findings must surface as valid JSON and exit 1.
// The sentinel fixture is used because sentinelerr fires under the
// default configuration (the other fixture packages need the test
// suite's path-suffix overrides).
func TestFindingsExitOneWithJSON(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "analysis", "testdata", "src")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", fixtures, "-json", "./sentinel"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run over fixtures = %d, want 1; stderr %q", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) == 0 {
		t.Fatal("expected findings in the sentinel fixture, got none")
	}
	for _, d := range diags {
		if d.Analyzer != "sentinelerr" {
			t.Errorf("unexpected analyzer %q in ./sentinel run: %s", d.Analyzer, d)
		}
	}
}
