// Command distecvet runs distec's repo-specific static-analysis suite:
// nine analyzers (atomicmix, ctxflow, determinism, goroleak, hotpath,
// lockio, lockorder, metricnames, sentinelerr) that machine-check the
// conventions the codebase's correctness rests on — including the
// interprocedural ones built on the module-wide call graph. It is the
// CI gate beside go vet.
//
// Usage:
//
//	distecvet [-C dir] [-json] [packages...]
//	distecvet -list
//
// Package patterns resolve against the module under -C (default "."):
// no patterns or "./..." analyzes everything; "./internal/core" one
// package; "./internal/..." a subtree.
//
// Exit status: 0 clean, 1 findings, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/distec/distec/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("distecvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dir     = fs.String("C", ".", "module root to analyze (directory containing go.mod)")
		jsonOut = fs.Bool("json", false, "emit findings as a JSON array instead of vet-style lines")
		list    = fs.Bool("list", false, "list the analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: distecvet [-C dir] [-json] [packages...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		as := analysis.Analyzers()
		sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
		for _, a := range as {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	m, err := analysis.LoadModule(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "distecvet:", err)
		return 2
	}
	pkgs, err := m.Select(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "distecvet:", err)
		return 2
	}
	diags, err := analysis.Run(m, pkgs, analysis.DefaultConfig())
	if err != nil {
		fmt.Fprintln(stderr, "distecvet:", err)
		return 2
	}

	// Positions print relative to the working directory when possible,
	// matching go vet; JSON keeps them verbatim for tooling.
	if !*jsonOut {
		if wd, err := os.Getwd(); err == nil {
			for i := range diags {
				if rel, err := filepath.Rel(wd, diags[i].File); err == nil && !filepath.IsAbs(rel) {
					diags[i].File = rel
				}
			}
		}
	}

	if *jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "distecvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "distecvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
