package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"github.com/distec/distec"
	"github.com/distec/distec/internal/persist"
	"github.com/distec/distec/internal/persist/errfs"
)

// TestRehydrationFailureSurfaces injects corruption into a passivated
// session's snapshot: the next touch must fail loudly (500, never a wrong
// coloring), leave the files in place for sessionctl, and leave the other
// sessions serving.
func TestRehydrationFailureSurfaces(t *testing.T) {
	dataDir := t.TempDir()
	ts, d, _ := newTestServerCfg(t, daemonConfig{dataDir: dataDir, maxResident: 1})
	var ids []string
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(4))})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create: status %d: %s", resp.StatusCode, body)
		}
		var sr sessionResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sr.SessionID)
	}
	if d.residentCount.Load() != 1 {
		t.Fatalf("%d resident, want 1", d.residentCount.Load())
	}
	// ids[0] is passivated; flip one byte inside its snapshot body.
	snapPath := filepath.Join(dataDir, ids[0], persist.SnapshotFile)
	if err := errfs.FlipByte(snapPath, 40, 0x10); err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(ts.URL + "/v1/session/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt rehydration answered %d, want 500", r.StatusCode)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("corrupt session files removed, want kept for offline repair: %v", err)
	}
	// The resident session is untouched by the neighbor's corruption.
	resp, body := postJSON(t, ts.URL+"/v1/session/"+ids[1]+"/update", updateRequest{
		Updates: []distec.Update{{Op: distec.InsertEdge, U: 0, V: 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy session update: status %d: %s", resp.StatusCode, body)
	}
}

// TestThousandSessionsBoundedResidency is the passivation acceptance pin:
// a daemon with the default limits holds 1000 durable sessions while
// never keeping more than -max-resident (64) of them in memory, keeps
// serving all of them transparently, and reboots over the same data dir
// into the same bounded shape via lazy recovery.
func TestThousandSessionsBoundedResidency(t *testing.T) {
	const nSessions = 1000
	dataDir := t.TempDir()
	ts, d, _ := newTestServerCfg(t, daemonConfig{dataDir: dataDir})
	if got := d.maxResidentLimit(); got != 64 {
		t.Fatalf("default max-resident = %d, want 64", got)
	}
	if got := d.maxSessionsLimit(); got != 4096 {
		t.Fatalf("default max-sessions with a data dir = %d, want 4096", got)
	}

	ids := make([]string, 0, nSessions)
	for i := 0; i < nSessions; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(4))})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create %d: status %d: %s", i, resp.StatusCode, body)
		}
		var sr sessionResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sr.SessionID)
		// The bound holds throughout the fill, not just at the end.
		if i%100 == 99 {
			if r := d.residentCount.Load(); r > 64 {
				t.Fatalf("after %d creates: %d resident, want <= 64", i+1, r)
			}
		}
	}
	if got := d.sessionCount(); got != nSessions {
		t.Fatalf("registry holds %d sessions, want %d", got, nSessions)
	}
	if r := d.residentCount.Load(); r > 64 {
		t.Fatalf("%d resident after fill, want <= 64", r)
	}
	if p := d.passivations.Load(); p < nSessions-64 {
		t.Fatalf("passivations = %d, want >= %d", p, nSessions-64)
	}

	// The stats surface reports the same shape.
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	var stats statsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != nSessions || stats.SessionsResident > 64 {
		t.Fatalf("stats sessions=%d resident=%d, want %d/<=64", stats.Sessions, stats.SessionsResident, nSessions)
	}

	// The first session created is long passivated; touching it rehydrates
	// transparently and the batch applies exactly as on a resident session.
	resp, body := postJSON(t, ts.URL+"/v1/session/"+ids[0]+"/update", updateRequest{
		Updates: []distec.Update{{Op: distec.InsertEdge, U: 0, V: 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update passivated session: status %d: %s", resp.StatusCode, body)
	}
	if d.rehydrations.Load() == 0 {
		t.Fatal("update of a passivated session did not count a rehydration")
	}
	r, err = http.Get(ts.URL + "/v1/session/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(r.Body)
	r.Body.Close()
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Seq != 1 || !sr.Verified {
		t.Fatalf("rehydrated session: seq=%d verified=%v, want 1/true", sr.Seq, sr.Verified)
	}
	if rc := d.residentCount.Load(); rc > 64 {
		t.Fatalf("%d resident after rehydration, want <= 64", rc)
	}

	// Reboot over the same data dir: lazy recovery registers all 1000
	// (eagerly loading at most 64) and a never-loaded session still serves.
	ts.Close()
	d.close()
	ts2, d2, crash2 := startDiskDaemon(t, dataDir)
	defer crash2()
	if got := d2.sessionCount(); got != nSessions {
		t.Fatalf("recovered registry holds %d sessions, want %d", got, nSessions)
	}
	if rc := d2.residentCount.Load(); rc > 64 {
		t.Fatalf("%d resident after recovery, want <= 64", rc)
	}
	r, err = http.Get(ts2.URL + "/v1/session/" + ids[nSessions-1])
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("adopted session after reboot: status %d: %s", r.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Verified {
		t.Fatal("adopted session served an unverified coloring")
	}
}

// TestPassivatedSessionTransparentAccess drives a tiny residency limit and
// checks every session keeps answering correctly as it cycles in and out
// of memory.
func TestPassivatedSessionTransparentAccess(t *testing.T) {
	ts, d, _ := newTestServerCfg(t, daemonConfig{dataDir: t.TempDir(), maxResident: 2})
	const n = 6
	ids := make([]string, 0, n)
	for i := 0; i < n; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(8))})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create %d: status %d: %s", i, resp.StatusCode, body)
		}
		var sr sessionResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sr.SessionID)
	}
	// Distinct chords of the 8-cycle, so every inserted edge is fresh.
	var chords []distec.Update
	for u := 0; u < 8; u++ {
		for v := u + 2; v < 8; v++ {
			if u == 0 && v == 7 {
				continue // cycle edge
			}
			chords = append(chords, distec.Update{Op: distec.InsertEdge, U: u, V: v})
		}
	}
	// Round-robin updates force constant rehydration; every batch must
	// apply with a verified coloring.
	for round := 0; round < 3; round++ {
		for i, id := range ids {
			resp, body := postJSON(t, ts.URL+"/v1/session/"+id+"/update", updateRequest{
				Updates: []distec.Update{chords[round]},
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d session %d: status %d: %s", round, i, resp.StatusCode, body)
			}
			var ur updateResponse
			if err := json.Unmarshal(body, &ur); err != nil {
				t.Fatal(err)
			}
			if !ur.Verified {
				t.Fatalf("round %d session %d: unverified coloring after rehydrated batch", round, i)
			}
			if rc := d.residentCount.Load(); rc > 2 {
				t.Fatalf("round %d session %d: %d resident, want <= 2", round, i, rc)
			}
		}
	}
	if d.rehydrations.Load() == 0 || d.passivations.Load() == 0 {
		t.Fatalf("rehydrations=%d passivations=%d, want both > 0",
			d.rehydrations.Load(), d.passivations.Load())
	}
	// Sequence numbers survived the churn: each session saw exactly 3
	// batches.
	for i, id := range ids {
		r, err := http.Get(ts.URL + "/v1/session/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		var sr sessionResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Seq != 3 {
			t.Fatalf("session %d: seq %d, want 3", i, sr.Seq)
		}
	}
}

// TestPassivatedSessionDelete checks a session deleted while passivated
// releases its files and answers 404 afterwards — the dropped flag closes
// the delete-vs-rehydrate race.
func TestPassivatedSessionDelete(t *testing.T) {
	dataDir := t.TempDir()
	ts, d, _ := newTestServerCfg(t, daemonConfig{dataDir: dataDir, maxResident: 1})
	var ids []string
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(4))})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("create: status %d: %s", resp.StatusCode, body)
		}
		var sr sessionResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, sr.SessionID)
	}
	if d.residentCount.Load() != 1 {
		t.Fatalf("%d resident, want 1", d.residentCount.Load())
	}
	// ids[0] is the passivated one (LRU). Delete it cold.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+ids[0], nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("delete passivated session: status %d", r.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dataDir, ids[0])); !os.IsNotExist(err) {
		t.Fatalf("session dir survived delete: %v", err)
	}
	r, err = http.Get(ts.URL + "/v1/session/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session answered %d, want 404", r.StatusCode)
	}
	// The survivor still works.
	resp, body := postJSON(t, ts.URL+"/v1/session/"+ids[1]+"/update", updateRequest{
		Updates: []distec.Update{{Op: distec.InsertEdge, U: 0, V: 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("surviving session update: status %d: %s", resp.StatusCode, body)
	}
}

// TestRehydrationHonorsCallerContext pins the context threading through
// acquire → rehydrateLocked → ReplayRecords: a caller that has already
// given up must not pay for (or pin the session lock through) a full
// replay, while a live caller still rehydrates transparently.
func TestRehydrationHonorsCallerContext(t *testing.T) {
	dataDir := t.TempDir()
	ts, srv, _ := newTestServerCfg(t, daemonConfig{dataDir: dataDir, maxResident: 1})
	resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(4))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	// One journaled batch so the passivated session has records to replay.
	resp, body = postJSON(t, ts.URL+"/v1/session/"+sr.SessionID+"/update", updateRequest{
		Updates: []distec.Update{{Op: distec.InsertEdge, U: 0, V: 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d: %s", resp.StatusCode, body)
	}
	// A second session evicts the first (maxResident: 1).
	resp, body = postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(4))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create second: status %d: %s", resp.StatusCode, body)
	}
	sess, ok := srv.session(sr.SessionID)
	if !ok {
		t.Fatalf("session %s gone from registry", sr.SessionID)
	}
	if sess.resident.Load() {
		t.Fatal("first session still resident; passivation did not trigger")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.acquire(ctx, sess); !errors.Is(err, context.Canceled) {
		t.Fatalf("acquire with cancelled ctx: err = %v, want context.Canceled", err)
	}
	if sess.resident.Load() {
		t.Fatal("aborted rehydration left the session marked resident")
	}
	// A live caller rehydrates through the same path.
	d, err := srv.acquire(context.Background(), sess)
	if err != nil {
		t.Fatalf("acquire after aborted rehydration: %v", err)
	}
	if err := d.Verify(); err != nil {
		t.Fatalf("rehydrated coloring invalid: %v", err)
	}
}
