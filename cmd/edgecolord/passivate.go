package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"time"

	"github.com/distec/distec"
	"github.com/distec/distec/internal/persist"
)

// Passivation keeps the daemon's resident set bounded while the registry
// holds thousands of durable sessions: the least-recently-used sessions
// beyond -max-resident drop their in-memory coloring (the truth stays on
// disk — every acknowledged batch is journaled before its 200), and the
// next touch rehydrates them through the same open-replay-verify pipeline
// boot recovery uses. Correctness never depends on the victim being idle:
// a batch interrupted by passivation fails with ErrSessionPassivated
// having journaled nothing, and the handler's single retry replays it
// in full against the rehydrated state — exactly once end to end.

// acquire returns the session's live Dynamic, rehydrating it from disk
// first when passivated. ctx bounds the rehydration replay (it is the
// request's context: a caller that gave up must not pin the session lock
// through a long replay). The caller must hold a registry reference (from
// s.session); a session deleted concurrently fails with ErrSessionClosed.
func (s *server) acquire(ctx context.Context, sess *session) (*distec.Dynamic, error) {
	sess.mu.Lock()
	if sess.dropped {
		sess.mu.Unlock()
		return nil, distec.ErrSessionClosed
	}
	if sess.resident.Load() {
		d := sess.d
		sess.mu.Unlock()
		return d, nil
	}
	// Rehydration I/O under sess.mu is the design, not an accident: the
	// session must not serve (or passivate again) while half-restored, and
	// every waiter needs exactly this state before proceeding.
	//distec:nolint lockio
	d, err := s.rehydrateLocked(ctx, sess)
	sess.mu.Unlock()
	if err == nil {
		// The rehydrated session may push the resident set past the limit;
		// make room by passivating the coldest others.
		s.enforceResidency(sess)
	}
	return d, err
}

// rehydrateLocked rebuilds a passivated session from its directory —
// open (repairing any torn tail), restore the merged snapshot, replay,
// verify — and reinstalls it as resident. ctx aborts the replay (the
// requester's deadline governs how long a rehydration may run). Caller
// holds sess.mu.
func (s *server) rehydrateLocked(ctx context.Context, sess *session) (*distec.Dynamic, error) {
	start := time.Now()
	dir := filepath.Join(s.cfg.dataDir, sess.id)
	lg, snap, records, err := persist.OpenLog(dir, s.persistOptions())
	if err != nil {
		return nil, fmt.Errorf("rehydrate %s: %w", sess.id, err)
	}
	d, err := distec.NewDynamicFromState(snap, distec.DynamicOptions{Pool: s.pool})
	if err != nil {
		lg.Close()
		return nil, fmt.Errorf("rehydrate %s: %w", sess.id, err)
	}
	if err := distec.ReplayRecords(ctx, d, records); err != nil {
		lg.Close()
		return nil, fmt.Errorf("rehydrate %s: %w", sess.id, err)
	}
	// Same contract as boot recovery: never serve a coloring that does not
	// independently verify.
	if err := d.Verify(); err != nil {
		lg.Close()
		return nil, fmt.Errorf("rehydrate %s: coloring invalid: %v", sess.id, err)
	}
	d.SetJournal(s.journalFunc(lg))
	sess.d, sess.log = d, lg
	sess.resident.Store(true)
	s.residentCount.Add(1)
	s.rehydrations.Inc()
	s.rehydrateTime.Observe(time.Since(start).Seconds())
	s.logger.Info("session rehydrated", "session", sess.id, "seq", d.Seq(),
		"duration_ms", float64(time.Since(start).Microseconds())/1000)
	return d, nil
}

// enforceResidency passivates least-recently-touched resident sessions
// until the resident count is back under the limit, never touching keep
// (the session whose access triggered the enforcement). Best effort: a
// victim that turns busy between selection and passivation is skipped,
// leaving the set transiently over the limit until the next access.
func (s *server) enforceResidency(keep *session) {
	if s.cfg.dataDir == "" {
		return // memory-only sessions have no disk state to passivate to
	}
	limit := int64(s.maxResidentLimit())
	if s.residentCount.Load() <= limit {
		return
	}
	s.sessMu.Lock()
	victims := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		if sess != keep && sess.resident.Load() {
			victims = append(victims, sess)
		}
	}
	s.sessMu.Unlock()
	sort.Slice(victims, func(i, j int) bool { return victims[i].last.Load() < victims[j].last.Load() })
	for _, victim := range victims {
		if s.residentCount.Load() <= limit {
			return
		}
		s.passivate(victim)
	}
}

// passivate evicts one session's in-memory state, keeping its files: the
// Dynamic is marked (in-flight batches stop at their next boundary having
// journaled nothing new) and dropped, and the WAL closes. Returns false
// when the session is busy, already passivated, or dropped.
func (s *server) passivate(sess *session) bool {
	sess.mu.Lock()
	if sess.dropped || !sess.resident.Load() || sess.inflight.Load() > 0 {
		sess.mu.Unlock()
		return false
	}
	// Passivate blocks until any in-progress apply releases the session
	// lock, so the Dynamic is quiescent when dropped.
	sess.d.Passivate()
	lg := sess.log
	sess.d, sess.log = nil, nil
	sess.resident.Store(false)
	sess.mu.Unlock()
	lg.Close()
	s.residentCount.Add(-1)
	s.passivations.Inc()
	s.logger.Info("session passivated", "session", sess.id)
	return true
}

// failAcquire maps a rehydration failure onto the API: a session deleted
// mid-request is gone (410), anything else is a server-side recovery
// problem (500) with the files left intact for sessionctl.
func (s *server) failAcquire(w http.ResponseWriter, err error) {
	if errors.Is(err, distec.ErrSessionClosed) {
		s.closedRejects.Inc()
		s.fail(w, http.StatusGone, err)
		return
	}
	s.fail(w, http.StatusInternalServerError, err)
}
