package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/distec/distec/internal/metrics"
	"github.com/distec/distec/internal/persist"
)

// WAL streaming replication: a leader exposes every session's durable
// state (snapshot + records, the same bytes recovery reads) over
// /v1/replicate, and a warm standby started with -follow tails it into
// its own data dir — bootstrapping each session from a full snapshot,
// then long-polling for records as they are acknowledged. On promotion
// (explicit POST /v1/promote, or automatic after the leader has been
// unreachable for -promote-after) the standby recovers the replicated
// state exactly as a reboot would and starts serving.

// replLongPoll is how long GET /v1/replicate/{id}?from= holds a caught-up
// request open waiting for the session's head to advance. Passivated
// sessions have no live log to signal through, so their watchers wait the
// whole window flat — at worst one window of extra lag if the session
// rehydrates mid-wait.
const replLongPoll = 5 * time.Second

// rejectFollowing answers 503 while the daemon is a warm standby: the
// replicated sessions are not serveable until promotion, and accepting a
// write here would fork history from the leader.
func (s *server) rejectFollowing(w http.ResponseWriter) bool {
	if !s.following.Load() {
		return false
	}
	s.fail(w, http.StatusServiceUnavailable,
		errors.New("following a leader; not serving session traffic until promoted (POST /v1/promote)"))
	return true
}

// liveLog returns the session's open log, or nil while passivated.
func (sess *session) liveLog() *persist.Log {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.log
}

// validSessionID rejects path-traversal-shaped ids before they reach
// filepath.Join (real ids are 16 hex chars).
func validSessionID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// replicateListResponse is the body of GET /v1/replicate.
type replicateListResponse struct {
	Sessions []string `json:"sessions"`
}

// handleReplicateList enumerates replicable sessions straight from the
// data dir — registry-independent, so retired sessions still replicate
// and a promoted-or-chained follower can serve the same endpoint.
func (s *server) handleReplicateList(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	entries, err := os.ReadDir(s.cfg.dataDir)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	resp := replicateListResponse{Sessions: []string{}}
	for _, e := range entries {
		if e.IsDir() {
			resp.Sessions = append(resp.Sessions, e.Name())
		}
	}
	s.respond(w, http.StatusOK, resp)
}

// handleReplicateSession streams one session's durable state from the
// follower's position: without ?from, the bootstrap case, a full snapshot
// plus every replayable record; with it, the records past that sequence
// (or a snapshot when compaction moved past the follower). A caught-up
// request long-polls until the session's head advances or the window
// closes (an empty stream is a valid answer: poll again).
func (s *server) handleReplicateSession(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	if !validSessionID(id) {
		s.fail(w, http.StatusBadRequest, errors.New("bad session id"))
		return
	}
	dir := filepath.Join(s.cfg.dataDir, id)
	fromStr := r.URL.Query().Get("from")
	mustSnap := fromStr == ""
	var from uint64
	if !mustSnap {
		v, err := strconv.ParseUint(fromStr, 10, 64)
		if err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad from: %w", err))
			return
		}
		from = v
	}
	snap, recs, err := persist.ReadState(dir, from, mustSnap)
	if err == nil && !mustSnap && snap == nil && len(recs) == 0 {
		// Caught up: park until something is acknowledged. The scan races
		// benignly with concurrent appends and compactions — a scan error
		// below is transient, and the follower simply retries.
		ctx, cancel := context.WithTimeout(r.Context(), replLongPoll)
		if sess, ok := s.session(id); ok {
			if lg := sess.liveLog(); lg != nil {
				lg.WaitHead(ctx, from)
			} else {
				<-ctx.Done()
			}
		} else {
			<-ctx.Done()
		}
		cancel()
		snap, recs, err = persist.ReadState(dir, from, false)
	}
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.fail(w, http.StatusNotFound, errors.New("no such session"))
		} else {
			s.fail(w, http.StatusInternalServerError, err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	s.respond2(w)
	if err := persist.WriteStream(w, snap, recs); err != nil {
		// Mid-stream write failure: the follower sees a truncated stream,
		// discards it, and retries. Nothing to salvage here.
		s.logger.Warn("replication stream aborted", "session", id, "err", err)
	}
}

// respond2 extends the write deadline like respond, for a raw-body reply.
func (s *server) respond2(w http.ResponseWriter) {
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(responseWriteBudget))
}

// replicationStatus is the body of GET /v1/replication/status.
type replicationStatus struct {
	Role   string `json:"role"`
	Leader string `json:"leader,omitempty"`
	// Sessions maps session IDs to the follower's locally durable head —
	// the watermark a failover test (or operator) compares against the
	// leader's acknowledged sequence numbers.
	Sessions map[string]uint64 `json:"sessions,omitempty"`
	// LagSeconds is the time since the last completed session-list sync
	// against the leader.
	LagSeconds    float64 `json:"lag_seconds"`
	LeaderHealthy bool    `json:"leader_healthy"`
}

func (s *server) handleReplicationStatus(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if f := s.repl; f != nil && s.following.Load() {
		s.respond(w, http.StatusOK, f.status())
		return
	}
	s.respond(w, http.StatusOK, replicationStatus{Role: "leader", LeaderHealthy: true})
}

// handlePromote flips a follower to serving: replication stops, the
// replicated state is recovered exactly as a reboot would, and the
// response arrives once the daemon is the leader. Idempotent; a no-op on
// a daemon that already leads.
func (s *server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	f := s.repl
	if f == nil || !s.following.Load() {
		s.respond(w, http.StatusOK, map[string]string{"role": "leader"})
		return
	}
	f.requestPromote()
	select {
	case <-f.promoted:
		s.respond(w, http.StatusOK, map[string]string{"role": "leader"})
	case <-f.done:
		s.fail(w, http.StatusServiceUnavailable, errors.New("follower shut down before promotion"))
	case <-r.Context().Done():
		s.respond(w, http.StatusAccepted, map[string]string{"role": "promoting"})
	}
}

// follower is the warm-standby replication loop: a list poller that keeps
// one tailer goroutine per leader session, each long-polling the leader
// and appending the received records to a local log. The maps are guarded
// by mu; each session's log and files are touched only by its own tailer
// (or by the list poller strictly after that tailer exits), so file
// operations stay outside the lock.
type follower struct {
	s            *server
	leader       string
	poll         time.Duration
	promoteAfter time.Duration
	client       *http.Client

	polls *metrics.Counter
	recs  *metrics.Counter
	snaps *metrics.Counter

	mu        sync.Mutex
	logs      map[string]*persist.Log
	pos       map[string]uint64
	tailers   map[string]chan struct{}
	lastSync  time.Time
	firstFail time.Time

	// ctx cancels in-flight HTTP polls the instant the follower stops or
	// promotes, so shutdown never waits out a leader-side long poll. The
	// field is the follower's own lifecycle root, created and cancelled by
	// this struct — not a stored caller context, so its deadline cannot go
	// stale.
	//distec:nolint ctxflow
	ctx    context.Context
	cancel context.CancelFunc

	wg          sync.WaitGroup
	stopOnce    sync.Once
	stop        chan struct{}
	done        chan struct{}
	promoteOnce sync.Once
	promoteC    chan struct{}
	promoted    chan struct{}
}

func newFollower(s *server) *follower {
	poll := s.cfg.followPoll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	f := &follower{
		s:            s,
		leader:       strings.TrimRight(s.cfg.follow, "/"),
		poll:         poll,
		promoteAfter: s.cfg.promoteAfter,
		client:       &http.Client{Timeout: replLongPoll + 30*time.Second},
		logs:         make(map[string]*persist.Log),
		pos:          make(map[string]uint64),
		tailers:      make(map[string]chan struct{}),
		lastSync:     time.Now(),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		promoteC:     make(chan struct{}),
		promoted:     make(chan struct{}),
	}
	// The follower is a daemon-lifetime component: its root deliberately
	// outlives any request, and Stop/promotion cancel it.
	//distec:nolint ctxflow
	f.ctx, f.cancel = context.WithCancel(context.Background())
	reg := s.reg
	f.polls = reg.Counter("distec_replication_polls_total", "Replication fetches issued against the leader (session lists and per-session tails).")
	f.recs = reg.Counter("distec_replication_records_total", "WAL records received from the leader and made locally durable.")
	f.snaps = reg.Counter("distec_replication_snapshots_total", "Full snapshots received from the leader (bootstraps and post-compaction resyncs).")
	reg.GaugeFunc("distec_replication_lag_seconds", "Seconds since the follower last completed a session-list sync against the leader (0 when leading).", func() float64 {
		if !s.following.Load() {
			return 0
		}
		f.mu.Lock()
		defer f.mu.Unlock()
		return time.Since(f.lastSync).Seconds()
	})
	return f
}

// run is the follower's main loop: poll the leader's session list on a
// ticker, reconcile the tailer set, and watch for the promotion triggers
// (explicit request, or leader unreachable past the threshold).
func (f *follower) run() {
	defer close(f.done)
	t := time.NewTicker(f.poll)
	defer t.Stop()
	for {
		f.syncList()
		if f.shouldPromote() {
			f.promote()
			return
		}
		select {
		case <-f.stop:
			f.wg.Wait()
			f.closeLogs()
			return
		case <-f.promoteC:
			f.promote()
			return
		case <-t.C:
		}
	}
}

// stopAndWait shuts the replication loop down without promoting; the
// replicated files stay for the next boot.
func (f *follower) stopAndWait() {
	f.stopOnce.Do(func() { close(f.stop); f.cancel() })
	<-f.done
}

// requestPromote asks the run loop to promote; wait on f.promoted.
func (f *follower) requestPromote() {
	f.promoteOnce.Do(func() { close(f.promoteC) })
}

// get issues one poll against the leader, bound to the follower's
// lifetime.
func (f *follower) get(url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return f.client.Do(req)
}

// syncList fetches the leader's session list, starts tailers for new
// sessions, and stops (and locally deletes) sessions the leader dropped.
// Leader-unreachable streaks are tracked here for auto-promotion.
func (f *follower) syncList() {
	f.polls.Inc()
	resp, err := f.get(f.leader + "/v1/replicate")
	now := time.Now()
	var list replicateListResponse
	if err == nil {
		if resp.StatusCode == http.StatusOK {
			err = json.NewDecoder(resp.Body).Decode(&list)
		} else {
			err = fmt.Errorf("leader replied %d to list", resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if err != nil {
		f.mu.Lock()
		if f.firstFail.IsZero() {
			f.firstFail = now
		}
		f.mu.Unlock()
		return
	}
	f.mu.Lock()
	f.firstFail = time.Time{}
	f.lastSync = now
	want := make(map[string]bool, len(list.Sessions))
	for _, id := range list.Sessions {
		if !validSessionID(id) {
			continue
		}
		want[id] = true
		if _, ok := f.tailers[id]; !ok {
			stop := make(chan struct{})
			f.tailers[id] = stop
			f.wg.Add(1)
			go f.tail(id, stop)
		}
	}
	for id, stop := range f.tailers {
		if !want[id] {
			// Deleted on the leader: the tailer removes the local copy on
			// its way out (it owns the session's files).
			close(stop)
			delete(f.tailers, id)
		}
	}
	f.mu.Unlock()
}

// tail replicates one session until stopped: long-poll the leader from
// the local position, append what arrives, back off on errors. A close of
// stop means the leader deleted the session (drop the local copy); a
// close of f.stop means shutdown or promotion (keep it).
func (f *follower) tail(id string, stop chan struct{}) {
	defer f.wg.Done()
	for {
		select {
		case <-stop:
			f.dropLocal(id)
			return
		case <-f.stop:
			return
		default:
		}
		n, err := f.syncSession(id)
		if err != nil {
			// Transient by construction (leader restarting, a scan racing a
			// compaction, divergent local state already dropped): wait one
			// interval and re-poll; a dropped position re-bootstraps.
			f.sleep(stop, f.poll)
			continue
		}
		if n == 0 {
			// Caught up. The leader's long poll paces us, but a fast empty
			// answer (e.g. a passivated session) still idles briefly so an
			// idle session never turns into a tight request loop.
			f.sleep(stop, f.poll/4+time.Millisecond)
		}
	}
}

func (f *follower) sleep(stop chan struct{}, d time.Duration) {
	select {
	case <-stop:
	case <-f.stop:
	case <-time.After(d):
	}
}

// syncSession performs one replication fetch for id and applies the
// result, returning how many records were applied.
func (f *follower) syncSession(id string) (int, error) {
	f.mu.Lock()
	pos, have := f.pos[id]
	f.mu.Unlock()
	url := f.leader + "/v1/replicate/" + id
	if have {
		url += "?from=" + strconv.FormatUint(pos, 10)
	}
	f.polls.Inc()
	resp, err := f.get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return 0, nil // deleted on the leader; the list sync prunes us
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("leader replied %d", resp.StatusCode)
	}
	snap, recs, err := persist.ReadStream(resp.Body)
	if err != nil {
		return 0, err
	}
	n, err := f.apply(id, snap, recs)
	if err != nil {
		// The local copy can no longer chain from the leader's stream.
		// Drop it; the next poll bootstraps from a fresh snapshot.
		f.dropLocal(id)
		return 0, err
	}
	return n, nil
}

// apply makes one replication response locally durable: a snapshot
// restarts the session's local log from scratch, records append beyond
// the current position (duplicates from scan races are skipped, gaps are
// an error that forces a re-bootstrap).
func (f *follower) apply(id string, snap *persist.Snapshot, recs []persist.Record) (int, error) {
	dir := filepath.Join(f.s.cfg.dataDir, id)
	f.mu.Lock()
	lg := f.logs[id]
	pos := f.pos[id]
	f.mu.Unlock()
	if snap != nil {
		f.mu.Lock()
		delete(f.logs, id)
		delete(f.pos, id)
		f.mu.Unlock()
		if lg != nil {
			lg.Close()
		}
		if err := os.RemoveAll(dir); err != nil {
			return 0, err
		}
		var err error
		lg, err = persist.CreateLog(dir, func(w io.Writer) error {
			return persist.WriteSnapshot(w, snap)
		}, f.s.persistOptions())
		if err != nil {
			return 0, err
		}
		// The local log's head starts where the snapshot does, so appends
		// chain from the leader's sequence numbers, not from zero.
		lg.SetHead(snap.Seq)
		pos = snap.Seq
		f.snaps.Inc()
	}
	if lg == nil {
		return 0, fmt.Errorf("no local log for %s and no snapshot in stream", id)
	}
	applied := 0
	var applyErr error
	for _, rec := range recs {
		if rec.Seq <= pos {
			continue
		}
		if rec.Seq != pos+1 {
			applyErr = fmt.Errorf("replication gap: local head %d, next record %d", pos, rec.Seq)
			break
		}
		if err := lg.Append(rec); err != nil {
			applyErr = err
			break
		}
		pos = rec.Seq
		applied++
	}
	f.mu.Lock()
	f.logs[id] = lg
	f.pos[id] = pos
	f.mu.Unlock()
	if applied > 0 {
		f.recs.Add(uint64(applied))
	}
	return applied, applyErr
}

// dropLocal discards one session's local copy (log, position, files).
// Called only from the session's own tailer, which owns its files.
func (f *follower) dropLocal(id string) {
	f.mu.Lock()
	lg := f.logs[id]
	delete(f.logs, id)
	delete(f.pos, id)
	f.mu.Unlock()
	if lg != nil {
		lg.Close()
	}
	os.RemoveAll(filepath.Join(f.s.cfg.dataDir, id))
}

func (f *follower) closeLogs() {
	f.mu.Lock()
	logs := f.logs
	f.logs = make(map[string]*persist.Log)
	f.mu.Unlock()
	for _, lg := range logs {
		lg.Close()
	}
}

// shouldPromote reports whether the leader has been unreachable past the
// auto-promotion threshold.
func (f *follower) shouldPromote() bool {
	if f.promoteAfter <= 0 {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.firstFail.IsZero() && time.Since(f.firstFail) >= f.promoteAfter
}

// promote stops replication and brings the replicated state live: every
// tailer drains, logs close, and recovery re-registers the sessions
// exactly as a reboot over the same data dir would — verified colorings,
// residency-bounded, original IDs. Only then does session traffic open.
func (f *follower) promote() {
	f.s.logger.Info("promoting: recovering replicated sessions", "leader", f.leader)
	f.stopOnce.Do(func() { close(f.stop); f.cancel() })
	f.wg.Wait()
	f.closeLogs()
	f.s.recoverSessions()
	f.s.following.Store(false)
	close(f.promoted)
	f.s.logger.Info("promoted to leader", "sessions", f.s.sessionCount(),
		"recovered", f.s.recovered, "failed", f.s.recoveryFailures)
}

// status snapshots the follower's replication positions for the status
// endpoint.
func (f *follower) status() replicationStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	sessions := make(map[string]uint64, len(f.pos))
	for id, p := range f.pos {
		sessions[id] = p
	}
	return replicationStatus{
		Role:          "follower",
		Leader:        f.leader,
		Sessions:      sessions,
		LagSeconds:    time.Since(f.lastSync).Seconds(),
		LeaderHealthy: f.firstFail.IsZero(),
	}
}
