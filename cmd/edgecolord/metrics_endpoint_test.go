package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/distec/distec"
	"github.com/distec/distec/internal/metrics"
)

// newMetricsServer builds a daemon whose pool shares its registry — the
// production wiring, where /metrics carries the serve, cache, session, and
// persistence families side by side.
func newMetricsServer(t *testing.T) (*httptest.Server, *server) {
	t.Helper()
	reg := metrics.New()
	pool := distec.NewPool(distec.PoolOptions{Workers: 2, Metrics: reg})
	d, err := newDaemon(pool, daemonConfig{dataDir: t.TempDir(), metrics: reg})
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.mux)
	t.Cleanup(func() {
		ts.Close()
		d.close()
		pool.Close()
	})
	return ts, d
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

// TestMetricsEndpoint drives one of every traffic kind through the daemon
// and asserts the scrape carries every subsystem's families with values
// that match what happened.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newMetricsServer(t)
	g := distec.RandomRegular(32, 4, 7)
	spec := graphToSpec(g)

	// One-shot colors: the same request twice is a miss then a cache hit.
	for i := 0; i < 2; i++ {
		resp, body := postColor(t, ts, colorRequest{Graph: spec})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("color %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	// A session with one update batch, then deleted.
	body, _ := json.Marshal(sessionRequest{Graph: spec})
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sess sessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: status %d", resp.StatusCode)
	}
	upd, _ := json.Marshal(updateRequest{Updates: []distec.Update{
		{Op: distec.DeleteEdge, U: int(g.Edges()[0].U), V: int(g.Edges()[0].V)},
		{Op: distec.InsertEdge, U: int(g.Edges()[0].U), V: int(g.Edges()[0].V)},
	}})
	resp, err = http.Post(ts.URL+"/v1/session/"+sess.SessionID+"/update", "application/json", bytes.NewReader(upd))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session update: status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+sess.SessionID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	out := scrape(t, ts)
	for _, want := range []string{
		// Scheduler and cache (pool shares the registry).
		"# TYPE distec_serve_jobs_submitted_total counter",
		"distec_serve_jobs_total{outcome=\"completed\"}",
		"# TYPE distec_serve_job_seconds histogram",
		// The repeated one-shot is one hit; the session create serves its
		// initial coloring from the same entry for the second.
		"distec_cache_hits_total 2",
		"distec_cache_misses_total 1",
		// Daemon HTTP and session lifecycle.
		"# TYPE distec_http_requests_total counter",
		"distec_session_creates_total 1",
		"distec_session_deletes_total 1",
		"distec_session_updates_total{tier=\"delete\"} 1",
		"distec_session_updates_total{tier=\"greedy\"}",
		"# TYPE distec_session_update_seconds histogram",
		// Persistence (dataDir set, so the WAL saw the batch).
		"distec_persist_wal_appends_total",
		"distec_persist_snapshot_writes_total",
		// Process identity.
		"# TYPE distec_build_info gauge",
		"distec_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", out)
	}
}

// TestStatsMatchesMetrics asserts /v1/stats and /metrics are views over the
// same counters: after traffic quiesces, the JSON counter block must equal
// the rendered samples.
func TestStatsMatchesMetrics(t *testing.T) {
	ts, _ := newMetricsServer(t)
	g := distec.RandomRegular(24, 3, 5)
	spec := graphToSpec(g)
	for i := 0; i < 3; i++ {
		resp, body := postColor(t, ts, colorRequest{Graph: spec, Seed: uint64(i), Algorithm: "randomized"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("color %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.GoVersion == "" || st.UptimeSeconds <= 0 {
		t.Fatalf("stats missing build identity: %+v", st)
	}
	if st.Submitted != 3 || st.Completed != 3 {
		t.Fatalf("submitted/completed %d/%d, want 3/3", st.Submitted, st.Completed)
	}
	out := scrape(t, ts)
	for _, want := range []string{
		fmt.Sprintf("distec_serve_jobs_submitted_total %d", st.Submitted),
		fmt.Sprintf("distec_serve_jobs_total{outcome=\"completed\"} %d", st.Completed),
		fmt.Sprintf("distec_cache_misses_total %d", st.CacheMisses),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape disagrees with /v1/stats: missing %q\n%s", want, out)
		}
	}
}

// TestPprofGated asserts /debug/pprof/ exists only behind -pprof.
func TestPprofGated(t *testing.T) {
	ts, _, _ := newTestServerCfg(t, daemonConfig{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without flag: status %d, want 404", resp.StatusCode)
	}
	ts2, _, _ := newTestServerCfg(t, daemonConfig{pprof: true})
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with flag: status %d, want 200", resp.StatusCode)
	}
}
