package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/distec/distec"
)

func newTestServer(t *testing.T) (*httptest.Server, *distec.Pool) {
	ts, _, pool := newTestServerCfg(t, daemonConfig{})
	return ts, pool
}

// newTestServerCfg builds a daemon with the given config, exposing the
// *server for tests that poke lifecycle internals.
func newTestServerCfg(t *testing.T, cfg daemonConfig) (*httptest.Server, *server, *distec.Pool) {
	t.Helper()
	pool := distec.NewPool(distec.PoolOptions{Workers: 2})
	d, err := newDaemon(pool, cfg)
	if err != nil {
		pool.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.mux)
	t.Cleanup(func() {
		ts.Close()
		d.close()
		pool.Close()
	})
	return ts, d, pool
}

func postColor(t *testing.T, ts *httptest.Server, req colorRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/color", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestColorEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	g := distec.RandomRegular(48, 6, 17)
	spec := graphToSpec(g)

	resp, body := postColor(t, ts, colorRequest{Graph: spec, Algorithm: "pr01"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr colorResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Verified {
		t.Fatal("response not verified")
	}
	if err := distec.Verify(g, cr.Colors); err != nil {
		t.Fatalf("returned coloring invalid: %v", err)
	}
	// Bit-identical to the one-shot sequential API.
	want, err := distec.ColorEdges(g, distec.Options{Algorithm: distec.PR01})
	if err != nil {
		t.Fatal(err)
	}
	if cr.Rounds != want.Rounds || cr.Messages != want.Messages {
		t.Fatalf("stats %d/%d, want %d/%d", cr.Rounds, cr.Messages, want.Rounds, want.Messages)
	}
	for e := range want.Colors {
		if cr.Colors[e] != want.Colors[e] {
			t.Fatalf("edge %d: %d, want %d", e, cr.Colors[e], want.Colors[e])
		}
	}
}

func TestColorListAndExtend(t *testing.T) {
	ts, _ := newTestServer(t)
	g := distec.Cycle(12)
	spec := graphToSpec(g)
	palette := 5
	lists := make([][]int, g.M())
	for e := range lists {
		lists[e] = []int{0, 1, 2, 3, 4}
	}

	resp, body := postColor(t, ts, colorRequest{Graph: spec, Lists: lists, Palette: palette})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d: %s", resp.StatusCode, body)
	}
	var cr colorResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if err := distec.VerifyList(g, lists, cr.Colors); err != nil {
		t.Fatalf("list coloring invalid: %v", err)
	}

	partial := make([]int, g.M())
	for e := range partial {
		partial[e] = -1
	}
	partial[0] = 3
	resp, body = postColor(t, ts, colorRequest{Graph: spec, Lists: lists, Partial: partial, Palette: palette})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("extend: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Colors[0] != 3 {
		t.Fatalf("extension dropped the fixed color: %v", cr.Colors[0])
	}
	if err := distec.Verify(g, cr.Colors); err != nil {
		t.Fatalf("extension invalid: %v", err)
	}
}

func TestColorBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"bad edge", `{"graph":{"n":3,"edges":[[0,7]]}}`, http.StatusBadRequest},
		{"self loop", `{"graph":{"n":3,"edges":[[1,1]]}}`, http.StatusBadRequest},
		{"unknown algorithm", `{"graph":{"n":3,"edges":[[0,1]]},"algorithm":"warp"}`, http.StatusBadRequest},
		{"lists without palette", `{"graph":{"n":3,"edges":[[0,1]]},"lists":[[0,1]]}`, http.StatusBadRequest},
		{"partial without lists", `{"graph":{"n":3,"edges":[[0,1]]},"partial":[-1],"palette":3}`, http.StatusBadRequest},
		{"bad palette", `{"graph":{"n":3,"edges":[[0,1],[1,2]]},"palette":1}`, http.StatusBadRequest},
		// A tiny body must not be able to force an O(n) or O(palette)
		// allocation.
		{"oversized n", `{"graph":{"n":2000000000,"edges":[[0,1]]}}`, http.StatusBadRequest},
		{"oversized palette", `{"graph":{"n":3,"edges":[[0,1]]},"palette":2000000000}`, http.StatusBadRequest},
		{"oversized extend palette", `{"graph":{"n":2,"edges":[[0,1]]},"lists":[[0]],"partial":[-1],"palette":2000000000}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/color", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	// GET is not allowed on /v1/color.
	resp, err := http.Get(ts.URL + "/v1/color")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
}

func TestHealthzAndStats(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	postColor(t, ts, colorRequest{Graph: graphToSpec(distec.Cycle(10))})
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Submitted == 0 || stats.Workers == 0 || stats.HTTPRequests == 0 {
		t.Fatalf("stats look empty: %+v", stats)
	}
}

func TestColorTimeout(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postColor(t, ts, colorRequest{
		Graph:     graphToSpec(distec.Cycle(30000)),
		Algorithm: "greedy-classes",
		TimeoutMS: 1,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestSessionLifecycle drives a dynamic session end to end: create, update
// with inserts and deletes, read back, delete, and require a verified
// proper coloring at every step.
func TestSessionLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	g := distec.RandomRegular(32, 4, 5)

	resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(g)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.SessionID == "" || !sr.Verified {
		t.Fatalf("create response: %+v", sr)
	}
	if err := distec.Verify(g, sr.Colors); err != nil {
		t.Fatalf("initial coloring invalid: %v", err)
	}

	// A batch mixing an insert of a fresh edge and a delete of edge 0.
	u0, v0 := g.Endpoints(0)
	var iu, iv int
	for u := 0; u < g.N() && iu == iv; u++ {
		for v := u + 1; v < g.N(); v++ {
			if _, ok := g.HasEdge(u, v); !ok {
				iu, iv = u, v
				break
			}
		}
	}
	resp, body = postJSON(t, ts.URL+"/v1/session/"+sr.SessionID+"/update", updateRequest{
		Updates: []distec.Update{
			{Op: distec.InsertEdge, U: iu, V: iv},
			{Op: distec.DeleteEdge, U: u0, V: v0},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d: %s", resp.StatusCode, body)
	}
	var ur updateResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if !ur.Verified || len(ur.Results) != 2 {
		t.Fatalf("update response: %+v", ur)
	}
	if ur.Results[0].Color < 0 || ur.Results[1].Color != -1 {
		t.Fatalf("update results: %+v", ur.Results)
	}
	if ur.Stats.Inserts != 1 || ur.Stats.Deletes != 1 {
		t.Fatalf("session stats: %+v", ur.Stats)
	}

	// Read back: the deleted edge is tombstoned, the inserted one colored.
	resp, body = func() (*http.Response, []byte) {
		r, err := http.Get(ts.URL + "/v1/session/" + sr.SessionID)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(r.Body)
		return r, buf.Bytes()
	}()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Colors[0] != -1 {
		t.Fatalf("deleted edge still colored %d", sr.Colors[0])
	}

	// Delete the session; further use must 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+sr.SessionID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", dresp.StatusCode)
	}
	resp, body = postJSON(t, ts.URL+"/v1/session/"+sr.SessionID+"/update", updateRequest{
		Updates: []distec.Update{{Op: distec.InsertEdge, U: 0, V: 1}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("update after delete: status %d: %s", resp.StatusCode, body)
	}
}

// TestSessionBadRequests pins validation on the session surface.
func TestSessionBadRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphSpec{N: 2, Edges: [][2]int{{0, 5}}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad graph: status %d: %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/session/nope/update", updateRequest{
		Updates: []distec.Update{{Op: distec.InsertEdge, U: 0, V: 1}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", resp.StatusCode)
	}
	// Create a real session, then exercise update validation on it.
	resp, body = postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(8))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		req  updateRequest
		want int
	}{
		{"empty batch", updateRequest{}, http.StatusBadRequest},
		{"unknown op", updateRequest{Updates: []distec.Update{{Op: "warp", U: 0, V: 1}}}, http.StatusBadRequest},
		{"duplicate insert", updateRequest{Updates: []distec.Update{{Op: distec.InsertEdge, U: 0, V: 1}}}, http.StatusBadRequest},
		{"delete non-edge", updateRequest{Updates: []distec.Update{{Op: distec.DeleteEdge, U: 0, V: 4}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/session/"+sr.SessionID+"/update", tc.req)
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
		})
	}
}

// TestSessionRequestLimits pins the request-validation edges of the
// session API: palette and batch-size caps, malformed bodies, and the
// palette-exhausted conflict when a fixed palette runs out of colors.
func TestSessionRequestLimits(t *testing.T) {
	ts, _, _ := newTestServerCfg(t, daemonConfig{})
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	r, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{
		Graph: graphToSpec(distec.Cycle(4)), Palette: maxPalette + 1,
	})
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized palette: status %d: %s", r.StatusCode, body)
	}

	// A fixed palette of 3 satisfies 2Δ−1 on the 6-cycle, but inserting a
	// fan at one node pushes its degree past what 3 colors can serve: the
	// batch must fail as a conflict, not a server error.
	r, body = postJSON(t, ts.URL+"/v1/session", sessionRequest{
		Graph: graphToSpec(distec.Cycle(6)), Palette: 3,
	})
	if r.StatusCode != http.StatusOK {
		t.Fatalf("create with fixed palette: status %d: %s", r.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	r, body = postJSON(t, ts.URL+"/v1/session/"+sr.SessionID+"/update", updateRequest{
		Updates: []distec.Update{
			{Op: distec.InsertEdge, U: 0, V: 2},
			{Op: distec.InsertEdge, U: 0, V: 3},
			{Op: distec.InsertEdge, U: 0, V: 4},
		},
	})
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("palette exhaustion: status %d, want 409: %s", r.StatusCode, body)
	}

	// A batch past maxUpdatesPerBatch is rejected before any work.
	huge := make([]distec.Update, maxUpdatesPerBatch+1)
	for i := range huge {
		huge[i] = distec.Update{Op: distec.InsertEdge, U: 0, V: 2}
	}
	r, body = postJSON(t, ts.URL+"/v1/session/"+sr.SessionID+"/update", updateRequest{Updates: huge})
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400: %s", r.StatusCode, body)
	}
}

// TestSessionLimit pins the registry bound.
func TestSessionLimit(t *testing.T) {
	ts, d, _ := newTestServerCfg(t, daemonConfig{})
	// Fill the registry directly (creating maxSessions real colorings is
	// needless work); the daemon must refuse the next create. Entries are
	// fresh, so no TTL sweep can reclaim them.
	d.sessMu.Lock()
	for i := 0; i < d.maxSessionsLimit(); i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i/26))
		sess := &session{id: id}
		sess.touch()
		d.sessions[id] = sess
	}
	d.sessMu.Unlock()
	resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(4))})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	// Empty the fake registry so the shared cleanup does not close nil
	// sessions.
	d.sessMu.Lock()
	d.sessions = make(map[string]*session)
	d.sessMu.Unlock()
}

// TestWriteDeadlineExtension is the regression test for the write-timeout
// bug: a job that consumes more than the server's WriteTimeout used to
// compute a result the connection could no longer write. The handler now
// extends the write deadline per-request once the result is in hand, so a
// response must still arrive when the job outlives WriteTimeout.
func TestWriteDeadlineExtension(t *testing.T) {
	pool := distec.NewPool(distec.PoolOptions{Workers: 1})
	defer pool.Close()
	d, err := newDaemon(pool, daemonConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.close()
	d.afterJob = func() { time.Sleep(600 * time.Millisecond) } // the "slow job"
	ts := httptest.NewUnstartedServer(d.mux)
	ts.Config.WriteTimeout = 250 * time.Millisecond // job outlives the write window
	ts.Start()
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/color", colorRequest{Graph: graphToSpec(distec.Cycle(6))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr colorResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("response unreadable after slow job: %v (%q)", err, body)
	}
	if !cr.Verified {
		t.Fatal("response not verified")
	}
}

func TestParseMix(t *testing.T) {
	classes, err := parseMix("small=2,large=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 || classes[0].name != "small" || classes[0].weight != 2 {
		t.Fatalf("classes: %+v", classes)
	}
	for _, bad := range []string{"", "small", "small=x", "small=-1", "warp=1", "small=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("accepted mix %q", bad)
		}
	}
}

func TestDriveLoadRejectsBadRate(t *testing.T) {
	classes, err := parseMix("small=1")
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0, -1, 2e9, math.Inf(1), math.NaN()} {
		if _, err := driveLoad("http://127.0.0.1:1/", rate, time.Millisecond, classes, io.Discard); err == nil {
			t.Fatalf("accepted rate %v", rate)
		}
	}
}

func TestDriveLoad(t *testing.T) {
	ts, _ := newTestServer(t)
	classes, err := parseMix("small=3")
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	sum, err := driveLoad(ts.URL, 50, 300*time.Millisecond, classes, &out)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Requests == 0 {
		t.Fatal("no requests driven")
	}
	if sum.Errors != 0 {
		t.Fatalf("%d drive errors: %s", sum.Errors, out.String())
	}
	if !strings.Contains(out.String(), "daemon stats") {
		t.Fatalf("summary missing daemon stats: %s", out.String())
	}
	if _, err := driveLoad("http://127.0.0.1:1/", 10, time.Millisecond, classes, &out); err == nil {
		t.Fatal("drove an unreachable daemon")
	}
}

// TestSessionIdleEviction is the regression test for the registry leak: an
// abandoned session used to occupy one of the 64 slots forever, bricking
// POST /v1/session with permanent 503s once enough clients crashed. The TTL
// sweeper must reclaim it.
func TestSessionIdleEviction(t *testing.T) {
	ts, _, _ := newTestServerCfg(t, daemonConfig{sessionTTL: 40 * time.Millisecond})
	resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(8))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	// Abandon the session; the sweeper must evict it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/session/" + sr.SessionID)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusNotFound {
			break
		}
		// Touching the session via GET resets its clock, so only poll a few
		// times per TTL.
		if time.Now().After(deadline) {
			t.Fatalf("session not evicted after 5s (status %d)", r.StatusCode)
		}
		time.Sleep(60 * time.Millisecond)
	}
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.SessionEvictions == 0 {
		t.Fatalf("eviction not counted: %+v", stats)
	}
	if stats.Sessions != 0 {
		t.Fatalf("%d sessions left after eviction", stats.Sessions)
	}
}

// TestSessionCreateSweepsWhenFull pins the deterministic half of the fix: a
// full registry holding an expired session must evict it inline and admit
// the new create, not 503 until the sweeper's next tick.
func TestSessionCreateSweepsWhenFull(t *testing.T) {
	ts, d, _ := newTestServerCfg(t, daemonConfig{sessionTTL: time.Hour})
	resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(8))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	// Backdate the session past the TTL and fill the rest of the registry
	// with fresh entries: the cap is reached, but one slot is reclaimable.
	d.sessMu.Lock()
	d.sessions[sr.SessionID].last.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	for i := 0; len(d.sessions) < d.maxSessionsLimit(); i++ {
		id := fmt.Sprintf("filler%d", i)
		sess := &session{id: id}
		sess.touch()
		d.sessions[id] = sess
	}
	d.sessMu.Unlock()
	resp, body = postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(6))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create at full registry with an expired slot: status %d: %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/session/"+sr.SessionID+"/update", updateRequest{
		Updates: []distec.Update{{Op: distec.InsertEdge, U: 0, V: 2}},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session answered update with %d", resp.StatusCode)
	}
	// Drop the filler entries so cleanup doesn't close nil sessions.
	d.sessMu.Lock()
	for id, sess := range d.sessions {
		if sess.d == nil {
			delete(d.sessions, id)
		}
	}
	d.sessMu.Unlock()
}

// TestSessionDeleteUpdateRace is the regression test for the delete/update
// race: a handler that looked a session up right before DELETE dropped it
// used to keep mutating (and journaling) the dropped session. The batch
// must now fail with ErrSessionClosed, surfaced as 410 Gone.
func TestSessionDeleteUpdateRace(t *testing.T) {
	ts, d, _ := newTestServerCfg(t, daemonConfig{})
	resp, body := postJSON(t, ts.URL+"/v1/session", sessionRequest{Graph: graphToSpec(distec.Cycle(8))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	var sr sessionResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	// Between the update handler's registry lookup and its batch, delete
	// the session — the exact race window, held open deterministically.
	deleted := false
	d.beforeUpdate = func() {
		if deleted {
			return
		}
		deleted = true
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+sr.SessionID, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("racing delete: status %d", r.StatusCode)
		}
	}
	resp, body = postJSON(t, ts.URL+"/v1/session/"+sr.SessionID+"/update", updateRequest{
		Updates: []distec.Update{{Op: distec.InsertEdge, U: 0, V: 2}},
	})
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("racing update: status %d, want 410: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "session closed") {
		t.Fatalf("racing update error body: %s", body)
	}
}
