package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/distec/distec"
)

// TestRequestIDPropagation pins the access-log middleware's ID contract:
// a client-supplied X-Request-Id is echoed back verbatim; a request
// without one gets a fresh 16-hex-char ID minted for it.
func TestRequestIDPropagation(t *testing.T) {
	ts, _ := newTestServer(t)
	body, _ := json.Marshal(colorRequest{Graph: graphToSpec(distec.Cycle(8))})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/color", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "client-chose-this")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-chose-this" {
		t.Errorf("echoed X-Request-Id = %q, want client-chose-this", got)
	}

	resp2, err := http.Post(ts.URL+"/healthz", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("minted X-Request-Id = %q, want 16 hex chars", got)
	}
}

// TestColorTraced drives POST /v1/color?trace=1: the response must carry
// an inline round summary joined to the request ID, repeated traced
// requests must keep tracing (they bypass the result cache — a cache
// hit runs zero rounds), and the solve must feed the convergence
// histograms on /metrics.
func TestColorTraced(t *testing.T) {
	ts, _ := newTestServer(t)
	body, _ := json.Marshal(colorRequest{Graph: graphToSpec(distec.RandomRegular(48, 6, 17))})

	post := func() colorResponse {
		t.Helper()
		req, _ := http.NewRequest("POST", ts.URL+"/v1/color?trace=1", bytes.NewReader(body))
		req.Header.Set("X-Request-Id", "trace-join-id")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var cr colorResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		return cr
	}

	first := post()
	if first.Trace == nil {
		t.Fatal("traced request returned no trace summary")
	}
	if first.Trace.RequestID != "trace-join-id" {
		t.Errorf("trace request_id = %q, want trace-join-id", first.Trace.RequestID)
	}
	if first.Trace.Rounds == 0 || first.Trace.Spans == 0 || first.Trace.Messages == 0 {
		t.Errorf("trace summary empty: %+v", first.Trace)
	}
	if len(first.Trace.TopRounds) == 0 {
		t.Error("trace summary has no top rounds")
	}

	// The identical request again: an untraced repeat would be a cache
	// hit, but ?trace=1 must still see a real execution.
	second := post()
	if second.Trace == nil || second.Trace.Rounds != first.Trace.Rounds {
		t.Fatalf("repeat traced request: %+v, want %d rounds", second.Trace, first.Trace.Rounds)
	}

	// An untraced request must not grow a trace key.
	resp, raw := postColor(t, ts, colorRequest{Graph: graphToSpec(distec.Cycle(8))})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("untraced status %d", resp.StatusCode)
	}
	if bytes.Contains(raw, []byte(`"trace"`)) {
		t.Error("untraced response carries a trace key")
	}

	// The traced solves must have fed the aggregate convergence metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	metricsText := buf.String()
	for _, want := range []string{"distec_solve_rounds_count 2", "distec_solve_quiescent_rounds_count 2", "distec_round_duration_seconds_count"} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestSessionUpdateTraced checks ?trace=1 on session updates: the tracer
// rides the request context into the repair engine and the summary comes
// back inline.
func TestSessionUpdateTraced(t *testing.T) {
	ts, _ := newTestServer(t)
	body, _ := json.Marshal(sessionRequest{Graph: graphToSpec(distec.RandomRegular(24, 4, 9))})
	resp, err := http.Post(ts.URL+"/v1/session", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sr sessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ub, _ := json.Marshal(updateRequest{Updates: []distec.Update{
		{Op: distec.InsertEdge, U: 0, V: 13},
		{Op: distec.InsertEdge, U: 1, V: 17},
	}})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/session/"+sr.SessionID+"/update?trace=1", bytes.NewReader(ub))
	req.Header.Set("X-Request-Id", "update-trace-id")
	uresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer uresp.Body.Close()
	if uresp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", uresp.StatusCode)
	}
	var ur updateResponse
	if err := json.NewDecoder(uresp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	// Greedy-tier inserts legitimately run zero protocol rounds, so the
	// strong assertion is presence and identity, not a round count.
	if ur.Trace == nil {
		t.Fatal("traced update returned no trace summary")
	}
	if ur.Trace.RequestID != "update-trace-id" {
		t.Errorf("update trace request_id = %q, want update-trace-id", ur.Trace.RequestID)
	}
}

// syncBuffer is a locked bytes.Buffer: the access log writes from the
// server's handler goroutine while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLog checks the one-line-per-request contract: request ID,
// method, route, status, duration, and the decoded job size.
func TestAccessLog(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	ts, _, _ := newTestServerCfg(t, daemonConfig{logger: logger})

	g := distec.Cycle(10)
	body, _ := json.Marshal(colorRequest{Graph: graphToSpec(g)})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/color", bytes.NewReader(body))
	req.Header.Set("X-Request-Id", "log-line-id")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The log line lands after the response is written; poll briefly.
	var line map[string]any
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, l := range strings.Split(logBuf.String(), "\n") {
			if strings.Contains(l, "log-line-id") {
				if err := json.Unmarshal([]byte(l), &line); err != nil {
					t.Fatalf("access log line is not JSON: %v\n%s", err, l)
				}
			}
		}
		if line != nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if line == nil {
		t.Fatalf("no access-log line for the request; log:\n%s", logBuf.String())
	}
	checks := map[string]any{
		"msg":        "request",
		"request_id": "log-line-id",
		"method":     "POST",
		"route":      "/v1/color",
		"status":     float64(http.StatusOK),
		"job_size":   float64(g.M()),
	}
	for k, want := range checks {
		if got := line[k]; got != want {
			t.Errorf("access log %s = %v, want %v", k, got, want)
		}
	}
	if _, ok := line["duration_ms"]; !ok {
		t.Error("access log line has no duration_ms")
	}
}

// TestNewLogger covers the -log-format switch: both formats build a
// logger, anything else is rejected at startup.
func TestNewLogger(t *testing.T) {
	for _, format := range []string{"text", "json"} {
		if logger, err := newLogger(format); err != nil || logger == nil {
			t.Errorf("newLogger(%q) = %v, %v", format, logger, err)
		}
	}
	if _, err := newLogger("yaml"); err == nil {
		t.Error("newLogger accepted an unknown format")
	}
}

// TestObserveTraceNil: an untraced request (nil tracer) must not touch
// the convergence histograms or produce a summary.
func TestObserveTraceNil(t *testing.T) {
	_, srv, _ := newTestServerCfg(t, daemonConfig{})
	if sum := srv.observeTrace(nil); sum != nil {
		t.Errorf("observeTrace(nil) = %+v, want nil", sum)
	}
}

// TestFailJobStatusMapping pins the job-error → HTTP-status table the
// color and session handlers share.
func TestFailJobStatusMapping(t *testing.T) {
	_, srv, _ := newTestServerCfg(t, daemonConfig{})
	cases := []struct {
		err  error
		want int
	}{
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, 499},
		{distec.ErrPoolClosed, http.StatusServiceUnavailable},
		{distec.ErrProtocolPanic, http.StatusInternalServerError},
		{distec.ErrRoundLimit, http.StatusInternalServerError},
		{errors.New("bad palette"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		srv.failJob(rec, tc.err)
		if rec.Code != tc.want {
			t.Errorf("failJob(%v) = %d, want %d", tc.err, rec.Code, tc.want)
		}
	}
}
