// Command edgecolord is the edge-coloring daemon: an HTTP/JSON front end
// over the shared serving pool (distec.NewPool), plus a load-driving client
// mode for exercising a running daemon.
//
// Serve (default):
//
//	edgecolord -addr :8405 -workers 0 -queue 0 -cache 32
//
//	POST /v1/color   color a graph (JSON; see colorRequest)
//	GET  /v1/stats   pool metrics + daemon counters
//	GET  /healthz    liveness
//
// One coloring per POST: the graph as an edge list, optionally an
// algorithm, palette, seed, per-edge lists (list coloring), and a partial
// coloring (extension). Every response is verified server-side before it is
// returned. Example:
//
//	curl -s localhost:8405/v1/color -d '{"graph":{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}'
//
// Drive (client mode): replay a synthetic request mix against a daemon at a
// fixed rate and report throughput and latency quantiles:
//
//	edgecolord -drive http://localhost:8405 -rate 20 -duration 10s -mix small=6,medium=3,large=1
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/distec/distec"
)

func main() {
	var (
		addr    = flag.String("addr", ":8405", "listen address (serve mode)")
		workers = flag.Int("workers", 0, "pool worker lanes (0: one per core)")
		queue   = flag.Int("queue", 0, "pool queue depth (0: 4x workers)")
		small   = flag.Int("small", 0, "small-job entity threshold (0: default)")
		cache   = flag.Int("cache", 0, "result cache entries (0: default, <0: disabled)")

		drive    = flag.String("drive", "", "drive mode: base URL of a running daemon")
		rate     = flag.Float64("rate", 20, "drive: requests per second")
		duration = flag.Duration("duration", 5*time.Second, "drive: how long to drive")
		mix      = flag.String("mix", "small=6,medium=3,large=1", "drive: request mix weights (small,medium,large)")
	)
	flag.Parse()

	if *drive != "" {
		classes, err := parseMix(*mix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgecolord:", err)
			os.Exit(2)
		}
		sum, err := driveLoad(*drive, *rate, *duration, classes, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgecolord:", err)
			os.Exit(1)
		}
		if sum.Errors > 0 {
			os.Exit(1)
		}
		return
	}

	pool := distec.NewPool(distec.PoolOptions{
		Workers:    *workers,
		QueueDepth: *queue,
		SmallJob:   *small,
		CacheSize:  *cache,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: newServer(pool),
		// Slow-client bounds: a stalled or trickling connection must not
		// pin a handler goroutine (and up to maxBodyBytes of buffer)
		// forever. Reads are generous because bodies can carry 10⁶-edge
		// graphs; writes cover the job bound (60 s default) plus transfer.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Shutdown returns only once in-flight requests have drained (or
		// the grace period expires); ListenAndServe returns immediately.
		srv.Shutdown(ctx)
	}()
	fmt.Printf("edgecolord: serving on %s (workers=%d queue=%d)\n",
		*addr, pool.Stats().Workers, pool.Stats().QueueDepth)
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		// Graceful path: wait for the drain before tearing down the pool,
		// so in-flight handlers finish their jobs and write their responses.
		<-drained
		err = nil
	}
	pool.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgecolord:", err)
		os.Exit(1)
	}
}

// maxBodyBytes bounds one request body (a 10⁶-edge graph is ~16 MB of JSON).
const maxBodyBytes = 64 << 20

// maxGraphNodes bounds graph.n: the node count allocates O(n) regardless of
// body size, so without a cap a 40-byte request naming n=2·10⁹ would OOM
// the daemon. 2²² nodes comfortably covers any graph maxBodyBytes can carry
// edges for.
const maxGraphNodes = 1 << 22

// maxPalette bounds the requested palette for the same reason: the library
// allocates O(palette) scratch (uniform lists, extension pruning) before
// any palette-vs-graph sanity check can reject it. Meaningful palettes are
// at most 2Δ−1 < 2·maxGraphNodes.
const maxPalette = 1 << 23

// maxJobTimeout is the ceiling on client-requested timeout_ms: without it,
// a handful of requests naming day-long timeouts would pin lanes and
// admission slots for as long as their connections stay open.
const maxJobTimeout = 5 * time.Minute

// colorRequest is the body of POST /v1/color.
type colorRequest struct {
	Graph graphSpec `json:"graph"`
	// Algorithm is one of bko, bko-theory, pr01, greedy-classes, randomized
	// (default bko).
	Algorithm string `json:"algorithm,omitempty"`
	// Palette overrides the palette size (default 2Δ−1; required with
	// lists).
	Palette int `json:"palette,omitempty"`
	// Seed feeds the randomized algorithm.
	Seed uint64 `json:"seed,omitempty"`
	// Lists, when present, selects (deg(e)+1)-list coloring: one ascending
	// color list per edge. Requires palette.
	Lists [][]int `json:"lists,omitempty"`
	// Partial, when present, selects extension: partial[e] ≥ 0 keeps that
	// color, −1 marks an edge to complete. Requires lists and palette.
	Partial []int `json:"partial,omitempty"`
	// TimeoutMS bounds the job (0: the server's default of 60 s; values
	// above the server's 5-minute ceiling are clamped to it, so clients
	// cannot pin lanes and admission slots indefinitely).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// graphSpec is a plain edge-list graph.
type graphSpec struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// colorResponse is the body of a successful POST /v1/color.
type colorResponse struct {
	Colors     []int   `json:"colors"`
	Rounds     int     `json:"rounds"`
	Messages   int64   `json:"messages"`
	Palette    int     `json:"palette"`
	ColorsUsed int     `json:"colors_used"`
	Verified   bool    `json:"verified"`
	DurationMS float64 `json:"duration_ms"`
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	distec.PoolStats
	UptimeSeconds float64 `json:"uptime_seconds"`
	HTTPRequests  uint64  `json:"http_requests"`
	HTTPErrors    uint64  `json:"http_errors"`
}

// server is the daemon's HTTP state: the shared pool plus request counters.
type server struct {
	pool     *distec.Pool
	start    time.Time
	requests atomic.Uint64
	errors   atomic.Uint64
}

// newServer returns the daemon's handler over a shared pool (separated from
// main for tests).
func newServer(pool *distec.Pool) http.Handler {
	s := &server{pool: pool, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/color", s.handleColor)
	return mux
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsResponse{
		PoolStats:     s.pool.Stats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		HTTPRequests:  s.requests.Load(),
		HTTPErrors:    s.errors.Load(),
	})
}

func (s *server) handleColor(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req colorRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	g, err := buildGraph(req.Graph)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.Palette > maxPalette {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("palette %d exceeds the daemon's limit of %d", req.Palette, maxPalette))
		return
	}
	timeout := 60 * time.Second
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > maxJobTimeout {
			timeout = maxJobTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	opts := distec.Options{Algorithm: distec.Algorithm(req.Algorithm), Palette: req.Palette, Seed: req.Seed}
	start := time.Now()
	var res *distec.Result
	switch {
	case req.Partial != nil:
		if req.Lists == nil || req.Palette <= 0 {
			s.fail(w, http.StatusBadRequest, errors.New("partial requires lists and palette"))
			return
		}
		res, err = s.pool.ExtendColoring(ctx, g, req.Partial, req.Lists, req.Palette, opts)
	case req.Lists != nil:
		if req.Palette <= 0 {
			s.fail(w, http.StatusBadRequest, errors.New("lists require palette"))
			return
		}
		res, err = s.pool.ColorEdgesList(ctx, g, req.Lists, req.Palette, opts)
	default:
		res, err = s.pool.ColorEdges(ctx, g, opts)
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.fail(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, context.Canceled):
			s.fail(w, 499, err) // client closed request
		case errors.Is(err, distec.ErrPoolClosed):
			s.fail(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, distec.ErrProtocolPanic), errors.Is(err, distec.ErrRoundLimit):
			// Server-side defects (a panicking protocol, a diverging run),
			// not properties of the request: report as internal errors so
			// monitoring and retry policies classify them correctly.
			s.fail(w, http.StatusInternalServerError, err)
		default:
			s.fail(w, http.StatusBadRequest, err)
		}
		return
	}
	// Never hand out an unverified coloring: the check is O(m + messages
	// already paid) and turns any engine regression into a loud 500.
	switch {
	case req.Partial != nil:
		// Properness for everyone; list membership only for the edges the
		// server colored (fixed partial entries are legitimately exempt).
		err = distec.Verify(g, res.Colors)
		if err == nil {
			err = verifyExtension(req.Partial, req.Lists, res.Colors)
		}
	case req.Lists != nil:
		err = distec.VerifyList(g, req.Lists, res.Colors)
	default:
		err = distec.Verify(g, res.Colors)
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("OUTPUT INVALID: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, colorResponse{
		Colors:     res.Colors,
		Rounds:     res.Rounds,
		Messages:   res.Messages,
		Palette:    res.Palette,
		ColorsUsed: res.ColorsUsed,
		Verified:   true,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// verifyExtension checks that every edge the server colored (partial[e] < 0)
// received a color from its list. Membership is a linear scan: the library
// only validates the PRUNED lists as sorted, so the client's original list
// may be unsorted yet still yield a valid (sorted-after-pruning) instance.
func verifyExtension(partial []int, lists [][]int, colors []int) error {
	for e, fixed := range partial {
		if fixed >= 0 {
			continue
		}
		found := false
		for _, c := range lists[e] {
			if c == colors[e] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("edge %d colored %d outside its list", e, colors[e])
		}
	}
	return nil
}

func buildGraph(spec graphSpec) (*distec.Graph, error) {
	if spec.N < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", spec.N)
	}
	if spec.N > maxGraphNodes {
		return nil, fmt.Errorf("graph: node count %d exceeds the daemon's limit of %d", spec.N, maxGraphNodes)
	}
	g := distec.NewGraph(spec.N)
	for i, e := range spec.Edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("graph edge %d: %w", i, err)
		}
	}
	return g, nil
}

// --- drive mode ---

// driveClass is one request class of the drive mix.
type driveClass struct {
	name   string
	weight int
	body   []byte
}

// parseMix parses "small=6,medium=3,large=1" into request classes with
// pre-encoded bodies. Classes with weight 0 are dropped; unknown class
// names are an error.
func parseMix(mix string) ([]driveClass, error) {
	graphs := map[string]graphSpec{
		"small":  graphToSpec(distec.RandomRegular(100, 6, 11)),  // 300 edges
		"medium": graphToSpec(distec.RandomRegular(1000, 8, 12)), // 4000 edges
		"large":  graphToSpec(distec.Cycle(20000)),               // 20k edges
	}
	algs := map[string]string{"small": "bko", "medium": "pr01", "large": "randomized"}
	var classes []driveClass
	for _, part := range strings.Split(mix, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		weight, err := strconv.Atoi(val)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		spec, ok := graphs[name]
		if !ok {
			return nil, fmt.Errorf("unknown mix class %q (have small, medium, large)", name)
		}
		if weight == 0 {
			continue
		}
		body, err := json.Marshal(colorRequest{Graph: spec, Algorithm: algs[name], Seed: 1})
		if err != nil {
			return nil, err
		}
		classes = append(classes, driveClass{name: name, weight: weight, body: body})
	}
	if len(classes) == 0 {
		return nil, errors.New("empty mix")
	}
	return classes, nil
}

func graphToSpec(g *distec.Graph) graphSpec {
	spec := graphSpec{N: g.N(), Edges: make([][2]int, 0, g.M())}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(distec.EdgeID(e))
		spec.Edges = append(spec.Edges, [2]int{u, v})
	}
	return spec
}

// driveSummary is what a drive run reports.
type driveSummary struct {
	Requests int
	Errors   int
	Wall     time.Duration
	P50, P99 time.Duration
}

// driveLoad replays the weighted mix against base at the given rate for the
// given duration and prints a summary plus the daemon's own stats.
func driveLoad(base string, rate float64, duration time.Duration, classes []driveClass, out io.Writer) (driveSummary, error) {
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) || rate > 1e6 {
		return driveSummary{}, fmt.Errorf("rate must be in (0, 1e6], got %v", rate)
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return driveSummary{}, fmt.Errorf("daemon not reachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		errCount  int
		wg        sync.WaitGroup
	)
	// Weighted round-robin over an expanded schedule keeps the mix exact.
	var schedule []int
	for ci, c := range classes {
		for i := 0; i < c.weight; i++ {
			schedule = append(schedule, ci)
		}
	}
	interval := time.Duration(float64(time.Second) / rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(duration)
	start := time.Now()
	for i := 0; time.Now().Before(deadline); i++ {
		<-ticker.C
		c := classes[schedule[i%len(schedule)]]
		wg.Add(1)
		go func(c driveClass) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post(base+"/v1/color", "application/json", bytes.NewReader(c.body))
			lat := time.Since(t0)
			ok := err == nil && resp.StatusCode == http.StatusOK
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			mu.Lock()
			if ok {
				latencies = append(latencies, lat)
			} else {
				errCount++
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	sum := driveSummary{Requests: len(latencies) + errCount, Errors: errCount, Wall: time.Since(start)}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		sum.P50 = latencies[len(latencies)/2]
		sum.P99 = latencies[len(latencies)*99/100]
	}
	fmt.Fprintf(out, "drive: %d requests in %v (%.1f req/s), %d errors, latency p50=%v p99=%v\n",
		sum.Requests, sum.Wall.Round(time.Millisecond),
		float64(sum.Requests)/sum.Wall.Seconds(), sum.Errors, sum.P50, sum.P99)
	if resp, err := client.Get(base + "/v1/stats"); err == nil {
		defer resp.Body.Close()
		var stats json.RawMessage
		if json.NewDecoder(resp.Body).Decode(&stats) == nil {
			fmt.Fprintf(out, "daemon stats: %s\n", stats)
		}
	}
	return sum, nil
}
