// Command edgecolord is the edge-coloring daemon: an HTTP/JSON front end
// over the shared serving pool (distec.NewPool), plus a load-driving client
// mode for exercising a running daemon.
//
// Serve (default):
//
//	edgecolord -addr :8405 -workers 0 -queue 0 -cache 32
//
//	POST   /v1/color                color a graph (JSON; see colorRequest)
//	POST   /v1/session              create a dynamic session (color + maintain)
//	GET    /v1/session/{id}         session coloring + stats
//	POST   /v1/session/{id}/update  apply a batch of edge inserts/deletes
//	DELETE /v1/session/{id}         drop a session
//	GET    /v1/stats                pool metrics + daemon counters
//	GET    /healthz                 liveness
//
// One coloring per POST /v1/color: the graph as an edge list, optionally an
// algorithm, palette, seed, per-edge lists (list coloring), and a partial
// coloring (extension). Every response is verified server-side before it is
// returned. Example:
//
//	curl -s localhost:8405/v1/color -d '{"graph":{"n":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}'
//
// A dynamic session keeps a live network's coloring server-side and repairs
// it incrementally under edge updates (distec.NewDynamic over the shared
// pool), so a small update never recolors the whole graph:
//
//	curl -s localhost:8405/v1/session -d '{"graph":{"n":4,"edges":[[0,1],[1,2]]}}'
//	curl -s localhost:8405/v1/session/<id>/update -d '{"updates":[{"op":"insert","u":2,"v":3}]}'
//
// Drive (client mode): replay a synthetic request mix against a daemon at a
// fixed rate and report throughput and latency quantiles:
//
//	edgecolord -drive http://localhost:8405 -rate 20 -duration 10s -mix small=6,medium=3,large=1
package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/distec/distec"
)

func main() {
	var (
		addr    = flag.String("addr", ":8405", "listen address (serve mode)")
		workers = flag.Int("workers", 0, "pool worker lanes (0: one per core)")
		queue   = flag.Int("queue", 0, "pool queue depth (0: 4x workers)")
		small   = flag.Int("small", 0, "small-job entity threshold (0: default)")
		cache   = flag.Int("cache", 0, "result cache entries (0: default, <0: disabled)")

		drive    = flag.String("drive", "", "drive mode: base URL of a running daemon")
		rate     = flag.Float64("rate", 20, "drive: requests per second")
		duration = flag.Duration("duration", 5*time.Second, "drive: how long to drive")
		mix      = flag.String("mix", "small=6,medium=3,large=1", "drive: request mix weights (small,medium,large)")
	)
	flag.Parse()

	if *drive != "" {
		classes, err := parseMix(*mix)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgecolord:", err)
			os.Exit(2)
		}
		sum, err := driveLoad(*drive, *rate, *duration, classes, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgecolord:", err)
			os.Exit(1)
		}
		if sum.Errors > 0 {
			os.Exit(1)
		}
		return
	}

	pool := distec.NewPool(distec.PoolOptions{
		Workers:    *workers,
		QueueDepth: *queue,
		SmallJob:   *small,
		CacheSize:  *cache,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: newServer(pool),
		// Slow-client bounds: a stalled or trickling connection must not
		// pin a handler goroutine (and up to maxBodyBytes of buffer)
		// forever. Reads are generous because bodies can carry 10⁶-edge
		// graphs. The write deadline here only bounds the job phase; once a
		// result is in hand, the handler extends the deadline per-request
		// (see server.respond) so a job that legitimately used its full
		// 5-minute budget still gets the response-transfer budget on top —
		// with a shared deadline, exactly those responses were computed and
		// then lost on a connection that could no longer write.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      maxJobTimeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Shutdown returns only once in-flight requests have drained (or
		// the grace period expires); ListenAndServe returns immediately.
		srv.Shutdown(ctx)
	}()
	fmt.Printf("edgecolord: serving on %s (workers=%d queue=%d)\n",
		*addr, pool.Stats().Workers, pool.Stats().QueueDepth)
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		// Graceful path: wait for the drain before tearing down the pool,
		// so in-flight handlers finish their jobs and write their responses.
		<-drained
		err = nil
	}
	pool.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgecolord:", err)
		os.Exit(1)
	}
}

// maxBodyBytes bounds one request body (a 10⁶-edge graph is ~16 MB of JSON).
const maxBodyBytes = 64 << 20

// maxGraphNodes bounds graph.n: the node count allocates O(n) regardless of
// body size, so without a cap a 40-byte request naming n=2·10⁹ would OOM
// the daemon. 2²² nodes comfortably covers any graph maxBodyBytes can carry
// edges for.
const maxGraphNodes = 1 << 22

// maxPalette bounds the requested palette for the same reason: the library
// allocates O(palette) scratch (uniform lists, extension pruning) before
// any palette-vs-graph sanity check can reject it. Meaningful palettes are
// at most 2Δ−1 < 2·maxGraphNodes.
const maxPalette = 1 << 23

// maxJobTimeout is the ceiling on client-requested timeout_ms: without it,
// a handful of requests naming day-long timeouts would pin lanes and
// admission slots for as long as their connections stay open.
const maxJobTimeout = 5 * time.Minute

// responseWriteBudget is the per-request write budget granted once a result
// is ready: the job phase is bounded by maxJobTimeout separately, so the
// response transfer gets its own window instead of whatever the job left
// of the connection's shared WriteTimeout.
const responseWriteBudget = 2 * time.Minute

// maxSessions bounds the number of live dynamic sessions: each pins a graph
// and its coloring in memory for as long as the client keeps it.
const maxSessions = 64

// maxUpdatesPerBatch bounds one session update batch; longer streams are
// split by the client into multiple requests, each with its own timeout.
const maxUpdatesPerBatch = 100000

// maxSessionEdges bounds a session's cumulative graph size, tombstones
// included: the underlying graph is append-only, so without this cap a
// single session could grow the daemon's memory without limit through
// insert batches (every insert appends permanently; deletes only
// tombstone).
const maxSessionEdges = 1 << 22

// colorRequest is the body of POST /v1/color.
type colorRequest struct {
	Graph graphSpec `json:"graph"`
	// Algorithm is one of bko, bko-theory, pr01, greedy-classes, randomized,
	// vizing (default bko).
	Algorithm string `json:"algorithm,omitempty"`
	// Palette overrides the palette size (default 2Δ−1, or Δ+1 for vizing;
	// required with lists).
	Palette int `json:"palette,omitempty"`
	// Seed feeds the randomized algorithm.
	Seed uint64 `json:"seed,omitempty"`
	// Lists, when present, selects (deg(e)+1)-list coloring: one ascending
	// color list per edge. Requires palette.
	Lists [][]int `json:"lists,omitempty"`
	// Partial, when present, selects extension: partial[e] ≥ 0 keeps that
	// color, −1 marks an edge to complete. Requires lists and palette.
	Partial []int `json:"partial,omitempty"`
	// TimeoutMS bounds the job (0: the server's default of 60 s; values
	// above the server's 5-minute ceiling are clamped to it, so clients
	// cannot pin lanes and admission slots indefinitely).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// graphSpec is a plain edge-list graph.
type graphSpec struct {
	N     int      `json:"n"`
	Edges [][2]int `json:"edges"`
}

// colorResponse is the body of a successful POST /v1/color.
type colorResponse struct {
	Colors     []int   `json:"colors"`
	Rounds     int     `json:"rounds"`
	Messages   int64   `json:"messages"`
	Palette    int     `json:"palette"`
	ColorsUsed int     `json:"colors_used"`
	Verified   bool    `json:"verified"`
	DurationMS float64 `json:"duration_ms"`
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	distec.PoolStats
	UptimeSeconds float64 `json:"uptime_seconds"`
	HTTPRequests  uint64  `json:"http_requests"`
	HTTPErrors    uint64  `json:"http_errors"`
	Sessions      int     `json:"sessions"`
}

// sessionRequest is the body of POST /v1/session: the graph to keep live,
// with the same knobs as colorRequest minus lists/partial (sessions maintain
// uniform-palette colorings).
type sessionRequest struct {
	Graph     graphSpec `json:"graph"`
	Algorithm string    `json:"algorithm,omitempty"`
	Palette   int       `json:"palette,omitempty"`
	Seed      uint64    `json:"seed,omitempty"`
	TimeoutMS int       `json:"timeout_ms,omitempty"`
}

// sessionResponse is the body of session create/get responses.
type sessionResponse struct {
	SessionID  string              `json:"session_id"`
	Colors     []int               `json:"colors"`
	Palette    int                 `json:"palette"`
	Stats      distec.DynamicStats `json:"stats"`
	Verified   bool                `json:"verified"`
	DurationMS float64             `json:"duration_ms"`
}

// updateRequest is the body of POST /v1/session/{id}/update: an ordered
// batch of edge updates applied as one job on the pool's shared lanes.
type updateRequest struct {
	Updates   []distec.Update `json:"updates"`
	TimeoutMS int             `json:"timeout_ms,omitempty"`
}

// updateResponse reports one applied batch. Results holds one entry per
// applied update, in order (on error, the applied prefix's length arrives
// in the error body instead).
type updateResponse struct {
	Results    []distec.UpdateResult `json:"results"`
	Stats      distec.DynamicStats   `json:"stats"`
	Verified   bool                  `json:"verified"`
	DurationMS float64               `json:"duration_ms"`
}

// server is the daemon's HTTP state: the shared pool, request counters, and
// the dynamic-session registry.
type server struct {
	pool     *distec.Pool
	start    time.Time
	requests atomic.Uint64
	errors   atomic.Uint64

	mux http.Handler

	sessMu   sync.Mutex
	sessions map[string]*distec.Dynamic

	// afterJob, when non-nil, runs after a handler's compute phase and
	// before its response is written — a test seam standing in for a job
	// that consumed the connection's whole write window.
	afterJob func()
}

// newDaemon builds the daemon state over a shared pool (separated from main
// for tests that need the *server).
func newDaemon(pool *distec.Pool) *server {
	s := &server{pool: pool, start: time.Now(), sessions: make(map[string]*distec.Dynamic)}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/color", s.handleColor)
	mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	mux.HandleFunc("GET /v1/session/{id}", s.handleSessionGet)
	mux.HandleFunc("POST /v1/session/{id}/update", s.handleSessionUpdate)
	mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux = mux
	return s
}

// newServer returns the daemon's handler over a shared pool.
func newServer(pool *distec.Pool) http.Handler {
	return newDaemon(pool).mux
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.respond(w, http.StatusOK, statsResponse{
		PoolStats:     s.pool.Stats(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		HTTPRequests:  s.requests.Load(),
		HTTPErrors:    s.errors.Load(),
		Sessions:      s.sessionCount(),
	})
}

func (s *server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}

func (s *server) handleColor(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req colorRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	g, err := buildGraph(req.Graph)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.Palette > maxPalette {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("palette %d exceeds the daemon's limit of %d", req.Palette, maxPalette))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), jobTimeout(req.TimeoutMS))
	defer cancel()

	opts := distec.Options{Algorithm: distec.Algorithm(req.Algorithm), Palette: req.Palette, Seed: req.Seed}
	start := time.Now()
	var res *distec.Result
	switch {
	case req.Partial != nil:
		if req.Lists == nil || req.Palette <= 0 {
			s.fail(w, http.StatusBadRequest, errors.New("partial requires lists and palette"))
			return
		}
		res, err = s.pool.ExtendColoring(ctx, g, req.Partial, req.Lists, req.Palette, opts)
	case req.Lists != nil:
		if req.Palette <= 0 {
			s.fail(w, http.StatusBadRequest, errors.New("lists require palette"))
			return
		}
		res, err = s.pool.ColorEdgesList(ctx, g, req.Lists, req.Palette, opts)
	default:
		res, err = s.pool.ColorEdges(ctx, g, opts)
	}
	if s.afterJob != nil {
		s.afterJob()
	}
	if err != nil {
		// Timeouts/cancellation map to 504/499; server-side defects (a
		// panicking protocol, a diverging run) to 500 so monitoring and
		// retry policies classify them correctly; the rest are properties
		// of the request.
		s.failJob(w, err)
		return
	}
	// Never hand out an unverified coloring: the check is O(m + messages
	// already paid) and turns any engine regression into a loud 500.
	switch {
	case req.Partial != nil:
		// Properness for everyone; list membership only for the edges the
		// server colored (fixed partial entries are legitimately exempt).
		err = distec.Verify(g, res.Colors)
		if err == nil {
			err = verifyExtension(req.Partial, req.Lists, res.Colors)
		}
	case req.Lists != nil:
		err = distec.VerifyList(g, req.Lists, res.Colors)
	default:
		err = distec.Verify(g, res.Colors)
	}
	if err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("OUTPUT INVALID: %w", err))
		return
	}
	s.respond(w, http.StatusOK, colorResponse{
		Colors:     res.Colors,
		Rounds:     res.Rounds,
		Messages:   res.Messages,
		Palette:    res.Palette,
		ColorsUsed: res.ColorsUsed,
		Verified:   true,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleSessionCreate colors the posted graph on the pool and registers a
// dynamic session maintaining that coloring under updates.
func (s *server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.sessionCount() >= maxSessions {
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("session limit %d reached", maxSessions))
		return
	}
	var req sessionRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	g, err := buildGraph(req.Graph)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if g.M() > maxSessionEdges {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("graph of %d edges exceeds the daemon's session limit of %d", g.M(), maxSessionEdges))
		return
	}
	if req.Palette > maxPalette {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("palette %d exceeds the daemon's limit of %d", req.Palette, maxPalette))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), jobTimeout(req.TimeoutMS))
	defer cancel()

	opts := distec.Options{Algorithm: distec.Algorithm(req.Algorithm), Palette: req.Palette, Seed: req.Seed}
	start := time.Now()
	res, err := s.pool.ColorEdges(ctx, g, opts)
	if s.afterJob != nil {
		s.afterJob()
	}
	if err != nil {
		s.failJob(w, err)
		return
	}
	if err := distec.Verify(g, res.Colors); err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("OUTPUT INVALID: %w", err))
		return
	}
	d, err := distec.NewDynamicFrom(g, res.Colors, distec.DynamicOptions{Options: opts, Pool: s.pool})
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	id, err := newSessionID()
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.sessMu.Lock()
	// Re-check under the lock: concurrent creates may have raced past the
	// early bound.
	if len(s.sessions) >= maxSessions {
		s.sessMu.Unlock()
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("session limit %d reached", maxSessions))
		return
	}
	s.sessions[id] = d
	s.sessMu.Unlock()
	s.respond(w, http.StatusOK, sessionResponse{
		SessionID:  id,
		Colors:     d.Colors(),
		Palette:    d.Palette(),
		Stats:      d.Stats(),
		Verified:   true,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleSessionUpdate applies one update batch to a session as a job on the
// pool's shared lanes, verifying the maintained coloring before responding.
func (s *server) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	d, ok := s.session(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	var req updateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Updates) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty update batch"))
		return
	}
	if len(req.Updates) > maxUpdatesPerBatch {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("batch of %d updates exceeds the daemon's limit of %d", len(req.Updates), maxUpdatesPerBatch))
		return
	}
	if d.Edges()+len(req.Updates) > maxSessionEdges {
		s.fail(w, http.StatusConflict, fmt.Errorf("session graph at %d edges (tombstones included) would exceed the daemon's limit of %d; recreate the session to compact it", d.Edges(), maxSessionEdges))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), jobTimeout(req.TimeoutMS))
	defer cancel()

	start := time.Now()
	results, err := d.ApplyBatch(ctx, req.Updates)
	if s.afterJob != nil {
		s.afterJob()
	}
	if err != nil {
		// The applied prefix holds (the coloring reflects exactly it); tell
		// the client how far the batch got.
		err = fmt.Errorf("applied %d/%d updates: %w", len(results), len(req.Updates), err)
		if errors.Is(err, distec.ErrPaletteExhausted) {
			s.fail(w, http.StatusConflict, err)
			return
		}
		s.failJob(w, err)
		return
	}
	// Never report an unverified maintained coloring: the incremental
	// repair machinery is re-checked against the full graph on every batch.
	if err := d.Verify(); err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("OUTPUT INVALID: %w", err))
		return
	}
	s.respond(w, http.StatusOK, updateResponse{
		Results:    results,
		Stats:      d.Stats(),
		Verified:   true,
		DurationMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleSessionGet reports a session's current coloring and stats.
func (s *server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	d, ok := s.session(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	if err := d.Verify(); err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("OUTPUT INVALID: %w", err))
		return
	}
	s.respond(w, http.StatusOK, sessionResponse{
		SessionID: r.PathValue("id"),
		Colors:    d.Colors(),
		Palette:   d.Palette(),
		Stats:     d.Stats(),
		Verified:  true,
	})
}

// handleSessionDelete drops a session.
func (s *server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	id := r.PathValue("id")
	s.sessMu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.sessMu.Unlock()
	if !ok {
		s.fail(w, http.StatusNotFound, errors.New("no such session"))
		return
	}
	s.respond(w, http.StatusOK, map[string]bool{"deleted": true})
}

// decodeBody reads one size-bounded JSON request body into req, writing the
// error response (413 for oversized bodies, 400 otherwise) itself; a false
// return means the handler is done.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, req any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, err)
			return false
		}
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *server) session(id string) (*distec.Dynamic, bool) {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	d, ok := s.sessions[id]
	return d, ok
}

// failJob maps job errors to HTTP statuses, shared by the color and session
// handlers.
func (s *server) failJob(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		s.fail(w, 499, err) // client closed request
	case errors.Is(err, distec.ErrPoolClosed):
		s.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, distec.ErrProtocolPanic), errors.Is(err, distec.ErrRoundLimit):
		s.fail(w, http.StatusInternalServerError, err)
	default:
		s.fail(w, http.StatusBadRequest, err)
	}
}

// jobTimeout resolves a client timeout_ms to the job deadline, clamped to
// the server ceiling.
func jobTimeout(ms int) time.Duration {
	timeout := 60 * time.Second
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > maxJobTimeout {
			timeout = maxJobTimeout
		}
	}
	return timeout
}

// newSessionID returns an unguessable session handle.
func newSessionID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("session id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func (s *server) fail(w http.ResponseWriter, status int, err error) {
	s.errors.Add(1)
	s.respond(w, status, map[string]string{"error": err.Error()})
}

// respond writes one JSON response, first extending the connection's write
// deadline: the server's WriteTimeout clock starts when the request header
// is read, so a job that legitimately used its full budget would otherwise
// compute a result the connection can no longer write. Extension is best
// effort — test recorders don't support deadlines.
func (s *server) respond(w http.ResponseWriter, status int, v any) {
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(responseWriteBudget))
	writeJSON(w, status, v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// verifyExtension checks that every edge the server colored (partial[e] < 0)
// received a color from its list. Membership is a linear scan: the library
// only validates the PRUNED lists as sorted, so the client's original list
// may be unsorted yet still yield a valid (sorted-after-pruning) instance.
func verifyExtension(partial []int, lists [][]int, colors []int) error {
	for e, fixed := range partial {
		if fixed >= 0 {
			continue
		}
		found := false
		for _, c := range lists[e] {
			if c == colors[e] {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("edge %d colored %d outside its list", e, colors[e])
		}
	}
	return nil
}

func buildGraph(spec graphSpec) (*distec.Graph, error) {
	if spec.N < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", spec.N)
	}
	if spec.N > maxGraphNodes {
		return nil, fmt.Errorf("graph: node count %d exceeds the daemon's limit of %d", spec.N, maxGraphNodes)
	}
	g := distec.NewGraph(spec.N)
	for i, e := range spec.Edges {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("graph edge %d: %w", i, err)
		}
	}
	return g, nil
}

// --- drive mode ---

// driveClass is one request class of the drive mix.
type driveClass struct {
	name   string
	weight int
	body   []byte
}

// parseMix parses "small=6,medium=3,large=1" into request classes with
// pre-encoded bodies. Classes with weight 0 are dropped; unknown class
// names are an error.
func parseMix(mix string) ([]driveClass, error) {
	graphs := map[string]graphSpec{
		"small":  graphToSpec(distec.RandomRegular(100, 6, 11)),  // 300 edges
		"medium": graphToSpec(distec.RandomRegular(1000, 8, 12)), // 4000 edges
		"large":  graphToSpec(distec.Cycle(20000)),               // 20k edges
	}
	algs := map[string]string{"small": "bko", "medium": "pr01", "large": "randomized"}
	var classes []driveClass
	for _, part := range strings.Split(mix, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		weight, err := strconv.Atoi(val)
		if err != nil || weight < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		spec, ok := graphs[name]
		if !ok {
			return nil, fmt.Errorf("unknown mix class %q (have small, medium, large)", name)
		}
		if weight == 0 {
			continue
		}
		body, err := json.Marshal(colorRequest{Graph: spec, Algorithm: algs[name], Seed: 1})
		if err != nil {
			return nil, err
		}
		classes = append(classes, driveClass{name: name, weight: weight, body: body})
	}
	if len(classes) == 0 {
		return nil, errors.New("empty mix")
	}
	return classes, nil
}

func graphToSpec(g *distec.Graph) graphSpec {
	spec := graphSpec{N: g.N(), Edges: make([][2]int, 0, g.M())}
	for e := 0; e < g.M(); e++ {
		u, v := g.Endpoints(distec.EdgeID(e))
		spec.Edges = append(spec.Edges, [2]int{u, v})
	}
	return spec
}

// driveSummary is what a drive run reports.
type driveSummary struct {
	Requests int
	Errors   int
	Wall     time.Duration
	P50, P99 time.Duration
}

// driveLoad replays the weighted mix against base at the given rate for the
// given duration and prints a summary plus the daemon's own stats.
func driveLoad(base string, rate float64, duration time.Duration, classes []driveClass, out io.Writer) (driveSummary, error) {
	if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) || rate > 1e6 {
		return driveSummary{}, fmt.Errorf("rate must be in (0, 1e6], got %v", rate)
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return driveSummary{}, fmt.Errorf("daemon not reachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	var (
		mu        sync.Mutex
		latencies []time.Duration
		errCount  int
		wg        sync.WaitGroup
	)
	// Weighted round-robin over an expanded schedule keeps the mix exact.
	var schedule []int
	for ci, c := range classes {
		for i := 0; i < c.weight; i++ {
			schedule = append(schedule, ci)
		}
	}
	interval := time.Duration(float64(time.Second) / rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(duration)
	start := time.Now()
	for i := 0; time.Now().Before(deadline); i++ {
		<-ticker.C
		c := classes[schedule[i%len(schedule)]]
		wg.Add(1)
		go func(c driveClass) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post(base+"/v1/color", "application/json", bytes.NewReader(c.body))
			lat := time.Since(t0)
			ok := err == nil && resp.StatusCode == http.StatusOK
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			mu.Lock()
			if ok {
				latencies = append(latencies, lat)
			} else {
				errCount++
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	sum := driveSummary{Requests: len(latencies) + errCount, Errors: errCount, Wall: time.Since(start)}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		sum.P50 = latencies[len(latencies)/2]
		sum.P99 = latencies[len(latencies)*99/100]
	}
	fmt.Fprintf(out, "drive: %d requests in %v (%.1f req/s), %d errors, latency p50=%v p99=%v\n",
		sum.Requests, sum.Wall.Round(time.Millisecond),
		float64(sum.Requests)/sum.Wall.Seconds(), sum.Errors, sum.P50, sum.P99)
	if resp, err := client.Get(base + "/v1/stats"); err == nil {
		defer resp.Body.Close()
		var stats json.RawMessage
		if json.NewDecoder(resp.Body).Decode(&stats) == nil {
			fmt.Fprintf(out, "daemon stats: %s\n", stats)
		}
	}
	return sum, nil
}
